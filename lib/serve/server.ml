(* The aprof ingest daemon.

   Thread/domain layout:

   - one accept systhread per listener (Unix and/or TCP);
   - one front systhread per connection: it routes on the first four
     bytes ("ATRC" -> ingest stream, anything else -> one-line control
     command) and, for ingest, becomes the connection's reader loop —
     [read] into a recycled slice, [Inbox.push] (the backpressure
     point), mark the connection runnable;
   - a pool of ingest workers (domains on OCaml 5, systhreads on 4.x
     via [Serve_backend]): each claims a runnable connection, drains
     its inbox through [Trace_net.feed] -> [Ingest_driver], and at each
     completed trace folds the profile into the sharded accumulators;
   - one snapshot systhread polling the timer / SIGHUP-style requests.

   Scheduling: a connection is in the run queue at most once
   (Idle/Queued/Running/Running_dirty), so exactly one worker ever
   touches a connection's decoder and driver — they need no locks of
   their own.  A reader that outruns its worker blocks in [Inbox.push];
   the kernel socket buffer and then the peer absorb the pressure, so
   per-connection memory stays bounded no matter how slow aggregation
   is.

   Failure isolation: a decode error poisons only its own connection —
   the worker aborts the partial trace (never folded), the connection
   is killed, and every other stream is untouched.  With [salvage] the
   per-chunk drop trichotomy of the file reader applies on the wire
   instead. *)

module Trace_net = Aprof_trace.Trace_net
module Trace_stream = Aprof_trace.Trace_stream
module Ingest_driver = Aprof_tools.Ingest_driver
module Profile = Aprof_core.Profile
module Profile_io = Aprof_core.Profile_io

let now () = Unix.gettimeofday ()

type config = {
  unix_path : string option;  (* Unix-domain listener path *)
  tcp : (string * int) option;  (* TCP listener (host, port; 0 = any) *)
  profiler : Aprof_tools.Replay_driver.profiler;
  shards : int;  (* profile accumulator shards *)
  jobs : int;  (* ingest workers *)
  snapshot_every : float;  (* seconds; 0 = only on request *)
  snapshot_profile : string option;  (* profile CSV written per snapshot *)
  fleet_csv : string option;  (* fleet CSV written per snapshot *)
  max_frame_bytes : int;
  inbox_bytes : int;  (* per-connection queued-byte bound *)
  read_bytes : int;  (* read slice size *)
  idle_timeout : float;  (* seconds without bytes kills a conn; 0 = off *)
  salvage : bool;
  log : string -> unit;
}

let default_config =
  {
    unix_path = None;
    tcp = None;
    profiler = `Drms;
    shards = 8;
    jobs = max 1 (Serve_backend.cpu_count () - 1);
    snapshot_every = 0.;
    snapshot_profile = None;
    fleet_csv = None;
    max_frame_bytes = 1 lsl 26;
    inbox_bytes = 256 * 1024;
    read_bytes = 64 * 1024;
    idle_timeout = 0.;
    salvage = false;
    log = ignore;
  }

type conn_state = Idle | Queued | Running | Running_dirty

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_peer : string;
  c_inbox : Inbox.t;
  mutable c_state : conn_state;  (* sched_m *)
  mutable c_net : Trace_net.t option;  (* worker-private after setup *)
  mutable c_driver : Ingest_driver.t option;  (* worker-private *)
  c_started : float;
  (* Counters below are under stats_m. *)
  mutable c_events : int;  (* events of completed (folded) traces *)
  mutable c_traces : int;
  mutable c_drops : int;
  mutable c_bytes : int;
  mutable c_finished : float;  (* 0. while live *)
  mutable c_error : string option;
  mutable c_done : bool;  (* finished (cleanly or not), live-- happened *)
  mutable c_reader_done : bool;  (* reader thread exited its loop *)
  mutable c_fd_closed : bool;
}

type t = {
  cfg : config;
  acc : Shard_acc.t;
  started : float;
  (* Scheduler state, under sched_m. *)
  sched_m : Mutex.t;
  sched_c : Condition.t;
  runq : conn Queue.t;
  mutable live : int;
  mutable stop_requested : bool;
  mutable workers_stop : bool;
  mutable snap_stop : bool;
  mutable stop_running : bool;  (* one thread owns the stop sequence *)
  mutable stopped : bool;
  mutable snapshot_requested : bool;
  (* Bookkeeping, under stats_m. *)
  stats_m : Mutex.t;
  mutable conns : conn list;  (* every ingest conn ever, newest first *)
  mutable next_id : int;
  mutable threads : Thread.t list;  (* accept + front/reader + snapshot *)
  mutable workers : Serve_backend.handle list;
  mutable listeners : (Unix.file_descr * string) list;
}

type stats = {
  s_live : int;
  s_conns : int;
  s_traces : int;
  s_events : int;
  s_drops : int;
  s_folds : int;
}

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
  in
  try go 0 with Unix.Unix_error _ -> ()

(* tmp + rename so snapshot consumers never observe a half file *)
let write_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc);
  Sys.rename tmp path

let add_thread t th =
  Mutex.lock t.stats_m;
  t.threads <- th :: t.threads;
  Mutex.unlock t.stats_m

(* ------------------------------------------------------------------ *)
(* Connection lifecycle *)

let shutdown_fd t c =
  Mutex.lock t.stats_m;
  if not c.c_fd_closed then
    (try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock t.stats_m

(* Only the reader thread closes the fd, and only through here, so a
   concurrent [shutdown_fd] can never hit a closed (possibly reused)
   descriptor. *)
let close_fd t c =
  Mutex.lock t.stats_m;
  if not c.c_fd_closed then begin
    c.c_fd_closed <- true;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.stats_m

(* Terminal transition of a connection; idempotent, callable from the
   reader (idle timeout), a worker (EOF or decode error) or the stop
   sequence (forced shutdown).  Never touches the decoder or driver —
   those stay worker-private. *)
let finish t ?error c =
  Mutex.lock t.stats_m;
  let first = not c.c_done in
  if first then begin
    c.c_done <- true;
    c.c_finished <- now ();
    (match error with Some e when c.c_error = None -> c.c_error <- Some e | _ -> ())
  end;
  Mutex.unlock t.stats_m;
  if first then begin
    (match error with
    | Some e -> t.cfg.log (Printf.sprintf "conn %d (%s): %s" c.c_id c.c_peer e)
    | None -> ());
    Inbox.close c.c_inbox;
    shutdown_fd t c;
    Mutex.lock t.sched_m;
    t.live <- t.live - 1;
    Condition.broadcast t.sched_c;
    Mutex.unlock t.sched_m
  end

let conn_error t c =
  Mutex.lock t.stats_m;
  let e = c.c_error in
  Mutex.unlock t.stats_m;
  e

let mark_runnable t c =
  Mutex.lock t.sched_m;
  (match c.c_state with
  | Idle ->
    c.c_state <- Queued;
    Queue.push c t.runq;
    Condition.broadcast t.sched_c
  | Running -> c.c_state <- Running_dirty
  | Queued | Running_dirty -> ());
  Mutex.unlock t.sched_m

let make_conn t fd peer =
  Mutex.lock t.stats_m;
  let id = t.next_id in
  t.next_id <- id + 1;
  Mutex.unlock t.stats_m;
  let c =
    {
      c_id = id;
      c_fd = fd;
      c_peer = peer;
      c_inbox =
        Inbox.create ~capacity:t.cfg.inbox_bytes
          ~buffer_bytes:t.cfg.read_bytes ();
      c_state = Idle;
      c_net = None;
      c_driver = None;
      c_started = now ();
      c_events = 0;
      c_traces = 0;
      c_drops = 0;
      c_bytes = 0;
      c_finished = 0.;
      c_error = None;
      c_done = false;
      c_reader_done = false;
      c_fd_closed = false;
    }
  in
  let driver =
    Ingest_driver.create ~profiler:t.cfg.profiler
      ~on_profile:(fun ~profile ~events ->
        Shard_acc.fold t.acc profile;
        Mutex.lock t.stats_m;
        c.c_traces <- c.c_traces + 1;
        c.c_events <- c.c_events + events;
        Mutex.unlock t.stats_m)
      ()
  in
  let cb =
    {
      Trace_net.on_batch = (fun b -> Ingest_driver.on_batch driver b);
      on_define = (fun rid name -> Shard_acc.define t.acc rid name);
      on_trace_end = (fun () -> Ingest_driver.trace_end driver);
      on_drop =
        (fun d ->
          Ingest_driver.note_drop driver;
          Mutex.lock t.stats_m;
          c.c_drops <- c.c_drops + 1;
          Mutex.unlock t.stats_m;
          t.cfg.log
            (Printf.sprintf "conn %d (%s): dropped chunk %d (%d bytes): %s"
               c.c_id c.c_peer d.Aprof_trace.Trace_codec.drop_chunk
               d.Aprof_trace.Trace_codec.drop_bytes
               d.Aprof_trace.Trace_codec.drop_reason));
    }
  in
  c.c_driver <- Some driver;
  c.c_net <-
    Some
      (Trace_net.create ~salvage:t.cfg.salvage
         ~max_frame_bytes:t.cfg.max_frame_bytes cb);
  Mutex.lock t.stats_m;
  t.conns <- c :: t.conns;
  Mutex.unlock t.stats_m;
  Mutex.lock t.sched_m;
  t.live <- t.live + 1;
  Mutex.unlock t.sched_m;
  c

(* ------------------------------------------------------------------ *)
(* Ingest workers *)

(* Feed everything queued to the connection's decoder.  Exactly one
   worker runs this for a given connection at a time (scheduler
   invariant), so the decoder and driver need no locking. *)
let drain t c =
  let net = Option.get c.c_net in
  let driver = Option.get c.c_driver in
  let continue = ref true in
  while !continue do
    match Inbox.pop c.c_inbox with
    | None -> continue := false
    | Some Inbox.Eof ->
      continue := false;
      (if conn_error t c = None then begin
         match Trace_net.close net with
         | () -> finish t c
         | exception Trace_stream.Decode_error msg ->
           Ingest_driver.abort driver;
           finish t ~error:msg c
       end
       else finish t c);
      (* An Eof item means the reader saw read = 0 and will never touch
         the socket again, so closing here is safe — and it is what
         turns the peer's pending read into EOF: a client that waits
         for EOF after shutdown knows its whole stream was decoded and
         folded. *)
      close_fd t c
    | Some (Inbox.Data (b, n)) ->
      if conn_error t c = None then begin
        Mutex.lock t.stats_m;
        c.c_bytes <- c.c_bytes + n;
        Mutex.unlock t.stats_m;
        match Trace_net.feed net b ~pos:0 ~len:n with
        | () -> Inbox.recycle c.c_inbox b
        | exception Trace_stream.Decode_error msg ->
          continue := false;
          Ingest_driver.abort driver;
          finish t ~error:msg c;
          (* If the reader already exited (its Eof was just cleared by
             [finish]'s inbox close), the fd is ours to release; if it
             is still in its loop, it will observe [c_done] on waking
             and close on its side. *)
          Mutex.lock t.stats_m;
          let reader_done = c.c_reader_done in
          Mutex.unlock t.stats_m;
          if reader_done then close_fd t c
      end
  done

let worker_loop t () =
  let rec next () =
    Mutex.lock t.sched_m;
    while Queue.is_empty t.runq && not t.workers_stop do
      Condition.wait t.sched_c t.sched_m
    done;
    if Queue.is_empty t.runq then Mutex.unlock t.sched_m
    else begin
      let c = Queue.pop t.runq in
      c.c_state <- Running;
      Mutex.unlock t.sched_m;
      (try drain t c
       with e ->
         finish t ~error:("internal error: " ^ Printexc.to_string e) c);
      Mutex.lock t.sched_m;
      (match c.c_state with
      | Running_dirty ->
        c.c_state <- Queued;
        Queue.push c t.runq;
        Condition.broadcast t.sched_c
      | _ -> c.c_state <- Idle);
      Mutex.unlock t.sched_m;
      next ()
    end
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let clients t =
  Mutex.lock t.stats_m;
  let cs = List.rev t.conns in
  let rows =
    List.map
      (fun c ->
        let until = if c.c_done then c.c_finished else now () in
        {
          Fleet.name = Printf.sprintf "%s#%d" c.c_peer c.c_id;
          events = c.c_events;
          traces = c.c_traces;
          drops = c.c_drops;
          bytes = c.c_bytes;
          seconds = until -. c.c_started;
          error = c.c_error;
        })
      cs
  in
  Mutex.unlock t.stats_m;
  rows

let snapshot t = Shard_acc.snapshot t.acc

(* Write the configured snapshot artifacts; [Error] when none are
   configured (the control client gets told, rather than a silent OK
   that wrote nothing). *)
let write_snapshot t =
  if t.cfg.snapshot_profile = None && t.cfg.fleet_csv = None then
    Error "no snapshot outputs configured (--out / --fleet-csv)"
  else begin
    let profile, names = snapshot t in
    let name_of r =
      match Hashtbl.find_opt names r with
      | Some n -> n
      | None -> Printf.sprintf "routine_%d" r
    in
    (match t.cfg.snapshot_profile with
    | Some path ->
      write_atomic path (fun oc ->
          Profile_io.save oc ~routine_name:name_of profile)
    | None -> ());
    (match t.cfg.fleet_csv with
    | Some path ->
      let doc =
        Fleet.render
          ~seconds:(now () -. t.started)
          ~name_of ~profile (clients t)
      in
      write_atomic path (fun oc -> output_string oc doc)
    | None -> ());
    Ok ()
  end

let request_snapshot t =
  Mutex.lock t.sched_m;
  t.snapshot_requested <- true;
  Mutex.unlock t.sched_m

let snapshot_loop t () =
  let last = ref (now ()) in
  let rec loop () =
    Mutex.lock t.sched_m;
    let stop = t.snap_stop in
    let requested = t.snapshot_requested in
    t.snapshot_requested <- false;
    Mutex.unlock t.sched_m;
    if not stop then begin
      let due =
        t.cfg.snapshot_every > 0.
        && now () -. !last >= t.cfg.snapshot_every
      in
      if requested || due then begin
        last := now ();
        match write_snapshot t with
        | Ok () -> ()
        | Error e -> if requested then t.cfg.log ("snapshot: " ^ e)
        | exception e ->
          t.cfg.log ("snapshot failed: " ^ Printexc.to_string e)
      end;
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Stats / control protocol *)

let stats t =
  Mutex.lock t.sched_m;
  let live = t.live in
  Mutex.unlock t.sched_m;
  Mutex.lock t.stats_m;
  let conns = List.length t.conns in
  let traces, events, drops =
    List.fold_left
      (fun (tr, ev, dr) c -> (tr + c.c_traces, ev + c.c_events, dr + c.c_drops))
      (0, 0, 0) t.conns
  in
  Mutex.unlock t.stats_m;
  {
    s_live = live;
    s_conns = conns;
    s_traces = traces;
    s_events = events;
    s_drops = drops;
    s_folds = Shard_acc.folds t.acc;
  }

let request_stop t =
  Mutex.lock t.sched_m;
  t.stop_requested <- true;
  Condition.broadcast t.sched_c;
  Mutex.unlock t.sched_m

let handle_control t fd line =
  let line = String.trim line in
  let cmd = String.uppercase_ascii line in
  let reply =
    match cmd with
    | "PING" -> "PONG\n"
    | "STATS" ->
      let s = stats t in
      Printf.sprintf "OK live=%d conns=%d traces=%d events=%d drops=%d folds=%d\n"
        s.s_live s.s_conns s.s_traces s.s_events s.s_drops s.s_folds
    | "SNAPSHOT" -> (
      match write_snapshot t with
      | Ok () -> "OK\n"
      | Error e -> "ERR " ^ e ^ "\n"
      | exception e -> "ERR " ^ Printexc.to_string e ^ "\n")
    | "STOP" ->
      request_stop t;
      "OK\n"
    | _ -> "ERR unknown command\n"
  in
  write_all fd reply

(* ------------------------------------------------------------------ *)
(* Per-connection front thread: route, then read *)

let rec read_exact fd b off len =
  if len = 0 then true
  else
    match Unix.read fd b off len with
    | 0 -> false
    | n -> read_exact fd b (off + n) (len - n)

(* Reader loop of one ingest connection.  Push blocks when the worker
   is behind — that is the backpressure: we stop calling [read]. *)
let reader_loop t c =
  let rec loop () =
    let b = Inbox.take_buffer c.c_inbox in
    match Unix.read c.c_fd b 0 (Bytes.length b) with
    | 0 ->
      Inbox.push_eof c.c_inbox;
      mark_runnable t c
    | n ->
      Inbox.push c.c_inbox b n;
      mark_runnable t c;
      if conn_error t c = None then loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      finish t ~error:"idle timeout" c;
      mark_runnable t c
    | exception Unix.Unix_error (e, _, _) ->
      (* [shutdown] from [finish] lands here on some platforms; a real
         socket error is terminal either way. *)
      finish t ~error:("read: " ^ Unix.error_message e) c;
      mark_runnable t c
  in
  loop ();
  (* Clean EOF leaves the close to the worker's Eof handling (see
     [drain]); on an error path the connection is already finished and
     this thread — sole user of the fd — closes it.  Never close a
     still-live fd from here: the worker could be racing us and a
     reused descriptor must not be touched. *)
  Mutex.lock t.stats_m;
  c.c_reader_done <- true;
  let conn_done = c.c_done in
  Mutex.unlock t.stats_m;
  if conn_done then close_fd t c

let read_control_line fd first =
  let b = Buffer.create 64 in
  Buffer.add_string b first;
  let one = Bytes.create 1 in
  let rec loop () =
    if Buffer.length b > 256 || String.contains (Buffer.contents b) '\n' then
      Buffer.contents b
    else
      match Unix.read fd one 0 1 with
      | 0 -> Buffer.contents b
      | _ ->
        Buffer.add_char b (Bytes.get one 0);
        loop ()
      | exception Unix.Unix_error _ -> Buffer.contents b
  in
  loop ()

let front t fd peer () =
  let cleanup_plain () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    if t.cfg.idle_timeout > 0. then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
    let first4 = Bytes.create 4 in
    if not (read_exact fd first4 0 4) then `Close
    else if Bytes.to_string first4 = "ATRC" then `Ingest first4
    else `Control (Bytes.to_string first4)
  with
  | `Close -> cleanup_plain ()
  | `Control first ->
    let line = read_control_line fd first in
    handle_control t fd line;
    cleanup_plain ()
  | `Ingest first4 ->
    let c = make_conn t fd peer in
    Inbox.push c.c_inbox first4 4;
    mark_runnable t c;
    reader_loop t c
  | exception Unix.Unix_error _ -> cleanup_plain ()

(* ------------------------------------------------------------------ *)
(* Listeners *)

let open_unix_listener path =
  (try if Sys.file_exists path then Unix.unlink path
   with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  (fd, "unix:" ^ path)

let open_tcp_listener host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith ("cannot resolve " ^ host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 128;
  let desc =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p
    | _ -> "tcp:?"
  in
  (fd, desc)

(* Poll with a timeout instead of blocking in accept(2): closing an fd
   does not wake a blocked accept on Linux, and the stop sequence must
   be able to join this thread. *)
let accept_loop t lfd () =
  Unix.set_nonblock lfd;
  let stopping () =
    Mutex.lock t.sched_m;
    let s = t.stop_requested in
    Mutex.unlock t.sched_m;
    s
  in
  let rec loop () =
    if not (stopping ()) then begin
      match Unix.select [ lfd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept lfd with
        | fd, sa ->
          Unix.clear_nonblock fd;
          let peer = string_of_sockaddr sa in
          let th = Thread.create (front t fd peer) () in
          add_thread t th;
          loop ()
        | exception
            Unix.Unix_error
              ( ( Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN
                | Unix.EWOULDBLOCK ),
                _,
                _ ) ->
          loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed *)
    end
  in
  (* The stop sequence closes the listener concurrently; any EBADF that
     slips past the per-call handlers just ends the loop. *)
  try loop () with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Start / stop *)

let addresses t = List.map snd t.listeners

let tcp_port t =
  List.fold_left
    (fun acc (_, d) ->
      match acc with
      | Some _ -> acc
      | None ->
        if String.length d > 4 && String.sub d 0 4 = "tcp:" then
          match String.rindex_opt d ':' with
          | Some i ->
            int_of_string_opt (String.sub d (i + 1) (String.length d - i - 1))
          | None -> None
        else None)
    None t.listeners

let start cfg =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Server.start: no listener configured";
  if cfg.jobs < 1 || cfg.shards < 1 then invalid_arg "Server.start";
  let t =
    {
      cfg;
      acc = Shard_acc.create ~shards:cfg.shards ();
      started = now ();
      sched_m = Mutex.create ();
      sched_c = Condition.create ();
      runq = Queue.create ();
      live = 0;
      stop_requested = false;
      workers_stop = false;
      snap_stop = false;
      stop_running = false;
      stopped = false;
      snapshot_requested = false;
      stats_m = Mutex.create ();
      conns = [];
      next_id = 0;
      threads = [];
      workers = [];
      listeners = [];
    }
  in
  let listeners =
    (match cfg.unix_path with
    | Some p -> [ open_unix_listener p ]
    | None -> [])
    @
    match cfg.tcp with
    | Some (host, port) -> [ open_tcp_listener host port ]
    | None -> []
  in
  t.listeners <- listeners;
  List.iter
    (fun (lfd, _) -> add_thread t (Thread.create (accept_loop t lfd) ()))
    listeners;
  t.workers <-
    List.init cfg.jobs (fun _ -> Serve_backend.spawn (worker_loop t));
  add_thread t (Thread.create (snapshot_loop t) ());
  t.cfg.log
    (Printf.sprintf "serving on %s (%d workers, %d shards%s)"
       (String.concat ", " (addresses t))
       cfg.jobs cfg.shards
       (if Serve_backend.parallel then "" else ", no parallelism"));
  t

let live_conns t =
  Mutex.lock t.sched_m;
  let n = t.live in
  Mutex.unlock t.sched_m;
  n

let poll_drained t ~timeout =
  let deadline = now () +. timeout in
  let rec loop () =
    if live_conns t = 0 then true
    else if now () > deadline then false
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

let wait t =
  (* Block until someone requests a stop... *)
  Mutex.lock t.sched_m;
  while not t.stop_requested do
    Condition.wait t.sched_c t.sched_m
  done;
  let mine = (not t.stopped) && not t.stop_running in
  if mine then t.stop_running <- true;
  Mutex.unlock t.sched_m;
  if mine then begin
    (* ...then run the stop sequence on this thread. *)
    (* 1. no new connections *)
    List.iter
      (fun (lfd, _) -> try Unix.close lfd with Unix.Unix_error _ -> ())
      t.listeners;
    (* 2. let live streams drain; then force the stragglers *)
    if not (poll_drained t ~timeout:10.) then begin
      t.cfg.log "forcing open connections closed";
      Mutex.lock t.stats_m;
      let open_conns = List.filter (fun c -> not c.c_done) t.conns in
      Mutex.unlock t.stats_m;
      List.iter (fun c -> finish t ~error:"server shutdown" c) open_conns;
      ignore (poll_drained t ~timeout:5.)
    end;
    (* 3. stop workers after the queue is quiet, then the aux threads *)
    Mutex.lock t.sched_m;
    t.workers_stop <- true;
    t.snap_stop <- true;
    Condition.broadcast t.sched_c;
    Mutex.unlock t.sched_m;
    List.iter Serve_backend.join t.workers;
    Mutex.lock t.stats_m;
    let threads = t.threads in
    Mutex.unlock t.stats_m;
    List.iter (fun th -> try Thread.join th with _ -> ()) threads;
    (* 4. final snapshot — every fold is in, nothing can race it *)
    (match write_snapshot t with
    | Ok () | Error _ -> ()
    | exception e ->
      t.cfg.log ("final snapshot failed: " ^ Printexc.to_string e));
    (match t.cfg.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ());
    Mutex.lock t.sched_m;
    t.stopped <- true;
    Condition.broadcast t.sched_c;
    Mutex.unlock t.sched_m
  end
  else begin
    (* another thread is (or was) stopping; wait for it to complete *)
    Mutex.lock t.sched_m;
    while not t.stopped do
      Condition.wait t.sched_c t.sched_m
    done;
    Mutex.unlock t.sched_m
  end

let stop t =
  request_stop t;
  wait t
