(* Bounded per-connection byte queue: the backpressure point between a
   connection's reader thread (producer) and the worker that decodes its
   bytes (consumer).

   The invariant is "never buffer unboundedly": [push] blocks while the
   queued payload exceeds [capacity], so a reader that outruns its
   worker stops calling [read] and the kernel socket buffer — and then
   the peer — absorbs the pressure.  A queue that is empty always
   accepts one slice regardless of size, so capacity can never deadlock
   a producer.

   Consumers never block here ([pop] is non-blocking): the server's
   scheduler wakes a worker when a connection becomes runnable, and the
   worker drains whatever is queued.  Buffers are recycled through a
   free list so steady-state ingest allocates no fresh slices. *)

type item = Data of Bytes.t * int | Eof

type t = {
  capacity : int;  (* max queued payload bytes once non-empty *)
  buffer_bytes : int;  (* size of the recycled read slices *)
  q : item Queue.t;
  free : Bytes.t Queue.t;
  m : Mutex.t;
  not_full : Condition.t;
  mutable bytes : int;
  mutable closed : bool;
}

let create ?(capacity = 256 * 1024) ?(buffer_bytes = 64 * 1024) () =
  if capacity < 1 || buffer_bytes < 1 then invalid_arg "Inbox.create";
  {
    capacity;
    buffer_bytes;
    q = Queue.create ();
    free = Queue.create ();
    m = Mutex.create ();
    not_full = Condition.create ();
    bytes = 0;
    closed = false;
  }

(* A buffer for the next [read]: recycled when the consumer returned
   one, fresh otherwise.  Wrong-sized recycled buffers (none today) are
   simply not handed out. *)
let take_buffer t =
  Mutex.lock t.m;
  let b =
    if Queue.is_empty t.free then Bytes.create t.buffer_bytes
    else Queue.pop t.free
  in
  Mutex.unlock t.m;
  b

let recycle t b =
  if Bytes.length b = t.buffer_bytes then begin
    Mutex.lock t.m;
    (* Cap the free list at the queue capacity's worth of slices. *)
    if Queue.length t.free * t.buffer_bytes < t.capacity then Queue.push b t.free;
    Mutex.unlock t.m
  end

(* Blocks while the queue is non-empty and over capacity; drops the
   slice once the consumer side has closed (the connection is dead —
   nothing downstream will ever pop again). *)
let push t b n =
  Mutex.lock t.m;
  while (not t.closed) && t.bytes > 0 && t.bytes + n > t.capacity do
    Condition.wait t.not_full t.m
  done;
  if not t.closed then begin
    Queue.push (Data (b, n)) t.q;
    t.bytes <- t.bytes + n
  end;
  Mutex.unlock t.m

let push_eof t =
  Mutex.lock t.m;
  if not t.closed then Queue.push Eof t.q;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  let item =
    if Queue.is_empty t.q then None
    else begin
      let it = Queue.pop t.q in
      (match it with
      | Data (_, n) ->
        t.bytes <- t.bytes - n;
        Condition.signal t.not_full
      | Eof -> ());
      Some it
    end
  in
  Mutex.unlock t.m;
  item

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Queue.clear t.q;
  t.bytes <- 0;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m

let queued_bytes t =
  Mutex.lock t.m;
  let n = t.bytes in
  Mutex.unlock t.m;
  n

let is_empty t =
  Mutex.lock t.m;
  let e = Queue.is_empty t.q in
  Mutex.unlock t.m;
  e
