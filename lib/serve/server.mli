(** The aprof ingest daemon: always-on concurrent ATRC aggregation.

    {!start} opens Unix-domain and/or TCP listeners and accepts any
    number of concurrent connections.  A connection whose first four
    bytes are ["ATRC"] is an ingest stream: the wire format is exactly
    the trace file format (several traces may follow back-to-back), a
    per-connection reader thread feeds a bounded inbox, and a pool of
    ingest workers (domains on OCaml 5) decodes and profiles the bytes,
    folding each completed trace's profile into key-hashed shard
    accumulators.  Any other first bytes start a one-line text control
    exchange: [PING], [STATS], [SNAPSHOT], [STOP].

    Guarantees:

    - {b Bounded memory}: per-connection buffering is capped by
      [inbox_bytes] plus one decoder frame; when a worker falls behind,
      the reader stops reading and the socket/peer absorb the pressure.
    - {b Exact aggregation}: profiles are folded only at trace
      boundaries, and snapshots are trace-atomic (the fold/snapshot
      gate of {!Shard_acc}), so any snapshot equals the offline
      [aprof merge] of the traces completed so far.
    - {b Corruption isolation}: a malformed stream poisons only its own
      connection; its partial trace is aborted, never folded.  With
      [salvage] damaged chunks are dropped per the salvage trichotomy
      and the stream continues. *)

module Profile = Aprof_core.Profile

type config = {
  unix_path : string option;  (** Unix-domain listener path *)
  tcp : (string * int) option;  (** TCP listener (host, port; 0 = any) *)
  profiler : Aprof_tools.Replay_driver.profiler;
  shards : int;  (** profile accumulator shards *)
  jobs : int;  (** ingest workers (domains on OCaml 5) *)
  snapshot_every : float;  (** seconds; 0 = snapshot only on request *)
  snapshot_profile : string option;  (** profile CSV written per snapshot *)
  fleet_csv : string option;  (** fleet CSV written per snapshot *)
  max_frame_bytes : int;  (** largest acceptable chunk payload *)
  inbox_bytes : int;  (** per-connection queued-byte bound *)
  read_bytes : int;  (** read slice size *)
  idle_timeout : float;  (** kill a silent connection after this; 0 = off *)
  salvage : bool;  (** drop damaged chunks instead of failing the conn *)
  log : string -> unit;
}

val default_config : config

type t

type stats = {
  s_live : int;  (** ingest connections currently open *)
  s_conns : int;  (** ingest connections ever accepted *)
  s_traces : int;  (** completed traces folded *)
  s_events : int;  (** events of completed traces *)
  s_drops : int;  (** salvage chunk drops *)
  s_folds : int;  (** shard-accumulator folds *)
}

(** [start cfg] opens the listeners and spawns the accept threads,
    worker pool and snapshot thread.  Raises [Invalid_argument] when no
    listener is configured, and [Unix.Unix_error] when binding fails. *)
val start : config -> t

(** The listener addresses, e.g. ["unix:/tmp/aprof.sock"],
    ["tcp:127.0.0.1:4025"] — with the actual port when 0 was asked. *)
val addresses : t -> string list

(** The bound TCP port, if a TCP listener is up. *)
val tcp_port : t -> int option

(** Ask the server to shut down (non-blocking; {!wait} does the work). *)
val request_stop : t -> unit

(** [wait t] blocks until a stop is requested, then runs the shutdown
    sequence: close listeners, drain live connections (bounded wait,
    then forced), stop workers, join every thread, write a final
    snapshot, unlink the Unix socket.  Returns when the server is fully
    stopped; concurrent callers return together. *)
val wait : t -> unit

(** {!request_stop} + {!wait}. *)
val stop : t -> unit

(** Ask the snapshot thread to write the configured artifacts soon. *)
val request_snapshot : t -> unit

(** Write the configured snapshot artifacts now (atomically, via
    tmp+rename); [Error] when neither output path is configured. *)
val write_snapshot : t -> (unit, string) result

(** A consistent in-memory snapshot: the merged profile and routine
    names (trace-atomic — see {!Shard_acc}). *)
val snapshot : t -> Profile.t * (int, string) Hashtbl.t

val stats : t -> stats

(** Per-connection fleet rows (live connections report their window so
    far). *)
val clients : t -> Fleet.client list
