(** Bounded per-connection byte queue with producer backpressure.

    The reader thread of one connection pushes received slices; the
    worker that owns the connection pops and decodes them.  {!push}
    blocks while the queued payload exceeds the capacity, which stops
    the reader from calling [read] — the kernel socket buffer and then
    the peer absorb the pressure, so per-connection memory never grows
    with a slow consumer.  An empty queue accepts one slice of any
    size, so a producer can never deadlock on capacity alone.

    Consumers never block: {!pop} is non-blocking (the server's
    scheduler wakes a worker when a connection has queued bytes).
    Buffers cycle through an internal free list via {!take_buffer} /
    {!recycle}, so steady-state ingest allocates no fresh slices. *)

type item = Data of Bytes.t * int | Eof

type t

(** [create ()] builds an inbox.
    @param capacity queued-payload bound in bytes (default 256 KiB)
    @param buffer_bytes size of recycled read slices (default 64 KiB) *)
val create : ?capacity:int -> ?buffer_bytes:int -> unit -> t

(** A slice for the producer's next [read]: recycled if available. *)
val take_buffer : t -> Bytes.t

(** Return a popped slice to the free list. *)
val recycle : t -> Bytes.t -> unit

(** [push t b n] queues the first [n] bytes of [b], blocking while the
    queue is non-empty and over capacity.  After {!close}, slices are
    silently dropped (the connection is dead). *)
val push : t -> Bytes.t -> int -> unit

(** Queue the end-of-stream marker. *)
val push_eof : t -> unit

(** Non-blocking pop; [None] when nothing is queued. *)
val pop : t -> item option

(** Consumer side is gone: drop queued items, unblock and neuter
    producers. *)
val close : t -> unit

val queued_bytes : t -> int
val is_empty : t -> bool
