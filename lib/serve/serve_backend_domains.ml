(* OCaml >= 5 worker backend: one domain per ingest worker, so decode
   and profiling run in parallel with the reader systhreads (which only
   block on sockets).  Selected by a dune copy rule; the 4.x twin runs
   workers as systhreads — same semantics, no parallelism. *)

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join = Domain.join
let parallel = true
let cpu_count () = Domain.recommended_domain_count ()
