(** Sharded profile accumulators for concurrent ingest.

    [N] partial {!Aprof_core.Profile.t}s, each behind its own mutex,
    partitioned by routine hash.  Connections {!fold} the profile of
    each *completed* trace across the shards; {!snapshot} merges all
    shards into one consistent profile.

    Consistency model: folds and snapshots are the two sides of a
    readers-writer gate.  Folds run concurrently with each other
    (contending only on per-shard mutexes, and only when two
    connections' routines hash alike); a snapshot waits for in-flight
    folds to finish and blocks new ones, so it observes every folded
    trace either entirely or not at all — never half a trace.  Since
    profiles form a commutative monoid and folding happens only at
    trace boundaries, any snapshot equals the offline merge of the
    traces folded so far. *)

module Profile = Aprof_core.Profile

type t

(** [create ~shards ()] builds an accumulator with [shards] (default 8)
    independently-locked partial profiles. *)
val create : ?shards:int -> unit -> t

val shard_count : t -> int

(** The shard index a routine's cells land on. *)
val shard_of : t -> int -> int

(** Record a routine-name definition (last definition wins, as in
    sequential replay). *)
val define : t -> int -> string -> unit

(** [defines t pairs] records many definitions under one lock hold. *)
val defines : t -> (int * string) list -> unit

(** [fold t src] splits [src] — one completed trace's profile — across
    the shards.  Blocks while a snapshot is in progress.  [src] is not
    modified. *)
val fold : t -> Profile.t -> unit

(** [snapshot t] waits for in-flight folds, blocks new ones, and merges
    every shard (plus a copy of the name table) into a fresh profile. *)
val snapshot : t -> Profile.t * (int, string) Hashtbl.t

(** Total completed folds so far. *)
val folds : t -> int

(** Test hook: the keys currently stored on shard [i]. *)
val shard_keys : t -> int -> Profile.key list
