(* Fleet cost-throughput CSV: one flat table describing what a serve
   run (or an offline set of profiles) ingested.  Three row kinds share
   the column set:

     kind=client     one per connection / input file: ingest volume and
                     rate, plus its terminal status
     kind=aggregate  one row: fleet-wide totals
     kind=routine    top-K cost movers of the merged profile, ranked by
                     total cost, with each routine's share of the fleet's
                     cost

   Pure string building — no IO, no locking — so it is trivially
   testable and callable from the snapshot thread with data it already
   copied out. *)

module Profile = Aprof_core.Profile

type client = {
  name : string;
  events : int;
  traces : int;
  drops : int;
  bytes : int;
  seconds : float;
  error : string option;
}

let header =
  "kind,name,events,traces,drops,bytes,seconds,mev_per_s,status,activations,total_cost,cost_share"

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    b
    |> Buffer.contents
  end

let fnum x = Printf.sprintf "%.6f" x

let mev_per_s ~events ~seconds =
  if seconds > 0. then float_of_int events /. seconds /. 1e6 else 0.

let client_row c =
  let status = match c.error with None -> "ok" | Some e -> "error: " ^ e in
  Printf.sprintf "client,%s,%d,%d,%d,%d,%s,%s,%s,,,"
    (csv_field c.name) c.events c.traces c.drops c.bytes (fnum c.seconds)
    (fnum (mev_per_s ~events:c.events ~seconds:c.seconds))
    (csv_field status)

let aggregate_row ~seconds clients =
  let sum f = List.fold_left (fun a c -> a + f c) 0 clients in
  let events = sum (fun c -> c.events) in
  Printf.sprintf "aggregate,all,%d,%d,%d,%d,%s,%s,%s,,," events
    (sum (fun c -> c.traces))
    (sum (fun c -> c.drops))
    (sum (fun c -> c.bytes))
    (fnum seconds)
    (fnum (mev_per_s ~events ~seconds))
    (Printf.sprintf "%d clients" (List.length clients) |> csv_field)

(* Top-K routines by total cost across the merged (thread-folded)
   profile: the fleet's "cost movers". *)
let routine_rows ?(top = 20) ~name_of profile =
  let per_routine = Profile.merge_threads profile in
  let total =
    List.fold_left
      (fun a (_, d) -> a +. d.Profile.total_cost)
      0. per_routine
  in
  let ranked =
    List.sort
      (fun (_, a) (_, b) ->
        compare b.Profile.total_cost a.Profile.total_cost)
      per_routine
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  List.map
    (fun (r, d) ->
      let share = if total > 0. then d.Profile.total_cost /. total else 0. in
      Printf.sprintf "routine,%s,,,,,,,,%d,%s,%s"
        (csv_field (name_of r))
        d.Profile.activations
        (fnum d.Profile.total_cost)
        (fnum share))
    (take top ranked)

(* The whole document.  [seconds] is the fleet wall-clock window the
   aggregate throughput is computed over. *)
let render ?top ~seconds ~name_of ~profile clients =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun c ->
      Buffer.add_string b (client_row c);
      Buffer.add_char b '\n')
    clients;
  Buffer.add_string b (aggregate_row ~seconds clients);
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b row;
      Buffer.add_char b '\n')
    (routine_rows ?top ~name_of profile);
  Buffer.contents b
