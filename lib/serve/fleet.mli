(** Fleet cost-throughput CSV.

    One flat table summarizing a serve run (or an offline profile set):
    per-client ingest volume and rate, a fleet aggregate, and the top-K
    cost-moving routines of the merged profile.  Row kinds share the
    column set — consumers filter on the [kind] column:

    {v
    kind,name,events,traces,drops,bytes,seconds,mev_per_s,status,activations,total_cost,cost_share
    v}

    Pure string building: no IO, no locking. *)

module Profile = Aprof_core.Profile

(** Per-connection (daemon) or per-input-file (offline) summary. *)
type client = {
  name : string;  (** peer address or file name *)
  events : int;
  traces : int;  (** completed traces folded *)
  drops : int;  (** salvage drops *)
  bytes : int;  (** wire/file bytes consumed *)
  seconds : float;  (** active window of this client *)
  error : string option;  (** terminal failure, if the stream died *)
}

(** The CSV header line (no trailing newline). *)
val header : string

(** RFC-4180-style quoting of one field. *)
val csv_field : string -> string

(** [render ~seconds ~name_of ~profile clients] is the full document:
    header, one [client] row each, an [aggregate] row over the fleet
    window [seconds], and up to [top] (default 20) [routine] rows ranked
    by total cost with their cost share. *)
val render :
  ?top:int ->
  seconds:float ->
  name_of:(int -> string) ->
  profile:Profile.t ->
  client list ->
  string
