(* Sharded profile accumulators: N independently-locked partial
   profiles, keyed by routine hash, so concurrent connections folding
   completed traces contend on different locks and merge never
   serializes ingest.

   Consistency: a fold is trace-atomic with respect to snapshots.  Every
   fold splits one *completed* trace's profile across the shards while
   holding the fold side of a gate; a snapshot takes the exclusive side,
   so it can never observe half a trace (some shards folded, others
   not).  Folds exclude only snapshots, never each other — the per-shard
   mutexes are the only contention between connections. *)

module Profile = Aprof_core.Profile

type t = {
  shards : (Mutex.t * Profile.t) array;
  names : (int, string) Hashtbl.t;
  names_m : Mutex.t;
  (* The fold/snapshot gate: a readers-writer lock where folds are the
     (concurrent) readers and snapshots the (exclusive) writer. *)
  gate_m : Mutex.t;
  gate_c : Condition.t;
  mutable active_folds : int;
  mutable snapshotting : bool;
  mutable folds : int;  (* total folds, for stats *)
}

let create ?(shards = 8) () =
  if shards < 1 then invalid_arg "Shard_acc.create";
  {
    shards = Array.init shards (fun _ -> (Mutex.create (), Profile.create ()));
    names = Hashtbl.create 64;
    names_m = Mutex.create ();
    gate_m = Mutex.create ();
    gate_c = Condition.create ();
    active_folds = 0;
    snapshotting = false;
    folds = 0;
  }

let shard_count t = Array.length t.shards

(* Routine-hashed: every cell of one routine (all threads) lands on one
   shard, so per-routine aggregation after a snapshot never crosses
   shard boundaries mid-history. *)
let shard_of t routine = Hashtbl.hash routine mod Array.length t.shards

let define t id name =
  Mutex.lock t.names_m;
  Hashtbl.replace t.names id name;
  Mutex.unlock t.names_m

let defines t pairs =
  Mutex.lock t.names_m;
  List.iter (fun (id, name) -> Hashtbl.replace t.names id name) pairs;
  Mutex.unlock t.names_m

let fold_enter t =
  Mutex.lock t.gate_m;
  while t.snapshotting do
    Condition.wait t.gate_c t.gate_m
  done;
  t.active_folds <- t.active_folds + 1;
  Mutex.unlock t.gate_m

let fold_exit t =
  Mutex.lock t.gate_m;
  t.active_folds <- t.active_folds - 1;
  t.folds <- t.folds + 1;
  if t.active_folds = 0 then Condition.broadcast t.gate_c;
  Mutex.unlock t.gate_m

let fold t src =
  fold_enter t;
  Fun.protect
    ~finally:(fun () -> fold_exit t)
    (fun () ->
      Array.iteri
        (fun i (m, dst) ->
          Mutex.lock m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock m)
            (fun () ->
              Profile.merge_into
                ~keep:(fun k -> shard_of t k.Profile.routine = i)
                ~into:dst src))
        t.shards)

let snap_enter t =
  Mutex.lock t.gate_m;
  while t.snapshotting do
    Condition.wait t.gate_c t.gate_m
  done;
  t.snapshotting <- true;
  while t.active_folds > 0 do
    Condition.wait t.gate_c t.gate_m
  done;
  Mutex.unlock t.gate_m

let snap_exit t =
  Mutex.lock t.gate_m;
  t.snapshotting <- false;
  Condition.broadcast t.gate_c;
  Mutex.unlock t.gate_m

let snapshot t =
  snap_enter t;
  Fun.protect
    ~finally:(fun () -> snap_exit t)
    (fun () ->
      let out = Profile.create () in
      Array.iter (fun (_, p) -> Profile.merge_into ~into:out p) t.shards;
      let names = Hashtbl.create 64 in
      Mutex.lock t.names_m;
      Hashtbl.iter (fun k v -> Hashtbl.replace names k v) t.names;
      Mutex.unlock t.names_m;
      (out, names))

let folds t =
  Mutex.lock t.gate_m;
  let n = t.folds in
  Mutex.unlock t.gate_m;
  n

(* Test hook: the keys currently on shard [i], proving the partition. *)
let shard_keys t i =
  let m, p = t.shards.(i) in
  Mutex.lock m;
  let keys = Profile.keys p in
  Mutex.unlock m;
  keys
