(* OCaml 4.x worker backend: workers are systhreads under the one
   runtime lock — every scheduling and backpressure property of the
   server holds, ingest just does not scale across cores.  Selected by
   a dune copy rule; the OCaml 5 twin spawns domains. *)

type handle = Thread.t

let spawn f = Thread.create f ()
let join = Thread.join
let parallel = false
let cpu_count () = 1
