type tid = int
type addr = int
type routine = int

type t =
  | Call of { tid : tid; routine : routine }
  | Return of { tid : tid }
  | Read of { tid : tid; addr : addr }
  | Write of { tid : tid; addr : addr }
  | Block of { tid : tid; units : int }
  | User_to_kernel of { tid : tid; addr : addr; len : int }
  | Kernel_to_user of { tid : tid; addr : addr; len : int }
  | Acquire of { tid : tid; lock : int }
  | Release of { tid : tid; lock : int }
  | Alloc of { tid : tid; addr : addr; len : int }
  | Free of { tid : tid; addr : addr; len : int }
  | Thread_start of { tid : tid }
  | Thread_exit of { tid : tid }
  | Switch_thread of { tid : tid }

(* Decode-edge bounds on identifier payloads.  Consumers trust these:
   tools keep per-thread state dense in [tid] and pack it into 16-bit
   epoch fields (Helgrind_lite), and lockset memo keys pack the lock id
   below bit 31 (Lockset) — so the trace contract bounds both, and every
   decoder turns an out-of-range value into a clean decode error instead
   of an exception (or an unsafe access) deep inside a tool. *)
let max_tid = 0xFFFF
let max_lock = (1 lsl 31) - 1

let tid = function
  | Call { tid; _ }
  | Return { tid }
  | Read { tid; _ }
  | Write { tid; _ }
  | Block { tid; _ }
  | User_to_kernel { tid; _ }
  | Kernel_to_user { tid; _ }
  | Acquire { tid; _ }
  | Release { tid; _ }
  | Alloc { tid; _ }
  | Free { tid; _ }
  | Thread_start { tid }
  | Thread_exit { tid }
  | Switch_thread { tid } ->
    tid

let is_switch = function
  | Switch_thread _ -> true
  | Call _ | Return _ | Read _ | Write _ | Block _ | User_to_kernel _
  | Kernel_to_user _ | Acquire _ | Release _ | Alloc _ | Free _
  | Thread_start _ | Thread_exit _ ->
    false

let pp ppf = function
  | Call { tid; routine } -> Format.fprintf ppf "call(t%d, r%d)" tid routine
  | Return { tid } -> Format.fprintf ppf "return(t%d)" tid
  | Read { tid; addr } -> Format.fprintf ppf "read(t%d, %#x)" tid addr
  | Write { tid; addr } -> Format.fprintf ppf "write(t%d, %#x)" tid addr
  | Block { tid; units } -> Format.fprintf ppf "block(t%d, %d)" tid units
  | User_to_kernel { tid; addr; len } ->
    Format.fprintf ppf "userToKernel(t%d, %#x, %d)" tid addr len
  | Kernel_to_user { tid; addr; len } ->
    Format.fprintf ppf "kernelToUser(t%d, %#x, %d)" tid addr len
  | Acquire { tid; lock } -> Format.fprintf ppf "acquire(t%d, l%d)" tid lock
  | Release { tid; lock } -> Format.fprintf ppf "release(t%d, l%d)" tid lock
  | Alloc { tid; addr; len } ->
    Format.fprintf ppf "alloc(t%d, %#x, %d)" tid addr len
  | Free { tid; addr; len } ->
    Format.fprintf ppf "free(t%d, %#x, %d)" tid addr len
  | Thread_start { tid } -> Format.fprintf ppf "threadStart(t%d)" tid
  | Thread_exit { tid } -> Format.fprintf ppf "threadExit(t%d)" tid
  | Switch_thread { tid } -> Format.fprintf ppf "switchThread(t%d)" tid

let to_string e = Format.asprintf "%a" pp e

let to_line = function
  | Call { tid; routine } -> Printf.sprintf "C %d %d" tid routine
  | Return { tid } -> Printf.sprintf "R %d" tid
  | Read { tid; addr } -> Printf.sprintf "L %d %d" tid addr
  | Write { tid; addr } -> Printf.sprintf "S %d %d" tid addr
  | Block { tid; units } -> Printf.sprintf "B %d %d" tid units
  | User_to_kernel { tid; addr; len } -> Printf.sprintf "U %d %d %d" tid addr len
  | Kernel_to_user { tid; addr; len } -> Printf.sprintf "K %d %d %d" tid addr len
  | Acquire { tid; lock } -> Printf.sprintf "A %d %d" tid lock
  | Release { tid; lock } -> Printf.sprintf "E %d %d" tid lock
  | Alloc { tid; addr; len } -> Printf.sprintf "M %d %d %d" tid addr len
  | Free { tid; addr; len } -> Printf.sprintf "F %d %d %d" tid addr len
  | Thread_start { tid } -> Printf.sprintf "T %d" tid
  | Thread_exit { tid } -> Printf.sprintf "X %d" tid
  | Switch_thread { tid } -> Printf.sprintf "W %d" tid

let of_line line =
  let fail () = Error (Printf.sprintf "Event.of_line: malformed %S" line) in
  (* The text edge validates identifier payloads exactly like the binary
     one (Batch.validate): shadow-memory, per-thread and lockset
     consumers carry no per-access guard, so no decoder may admit a
     negative address or an out-of-range thread or lock id. *)
  let ok ev =
    let t = tid ev in
    if t < 0 || t > max_tid then
      Error (Printf.sprintf "Event.of_line: thread id %d out of range in %S" t line)
    else
      match ev with
      | (Acquire { lock; _ } | Release { lock; _ })
        when lock < 0 || lock > max_lock ->
        Error
          (Printf.sprintf "Event.of_line: lock id %d out of range in %S" lock
             line)
      | _ -> Ok ev
  in
  let addr_ok a ev =
    if a >= 0 then ok ev
    else Error (Printf.sprintf "Event.of_line: negative address in %S" line)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "C"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some routine -> ok (Call { tid; routine })
    | _ -> fail ())
  | [ "R"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> ok (Return { tid })
    | None -> fail ())
  | [ "L"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some addr -> addr_ok addr (Read { tid; addr })
    | _ -> fail ())
  | [ "S"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some addr -> addr_ok addr (Write { tid; addr })
    | _ -> fail ())
  | [ "B"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some units -> ok (Block { tid; units })
    | _ -> fail ())
  | [ "U"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len ->
      addr_ok addr (User_to_kernel { tid; addr; len })
    | _ -> fail ())
  | [ "K"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len ->
      addr_ok addr (Kernel_to_user { tid; addr; len })
    | _ -> fail ())
  | [ "A"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some lock -> ok (Acquire { tid; lock })
    | _ -> fail ())
  | [ "E"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some lock -> ok (Release { tid; lock })
    | _ -> fail ())
  | [ "M"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len -> addr_ok addr (Alloc { tid; addr; len })
    | _ -> fail ())
  | [ "F"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len -> addr_ok addr (Free { tid; addr; len })
    | _ -> fail ())
  | [ "T"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> ok (Thread_start { tid })
    | None -> fail ())
  | [ "X"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> ok (Thread_exit { tid })
    | None -> fail ())
  | [ "W"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> ok (Switch_thread { tid })
    | None -> fail ())
  | _ -> fail ()

let equal (a : t) (b : t) = a = b

(* ----- packed batches -------------------------------------------------- *)

module Batch = struct
  type event = t

  (* Struct-of-arrays: one int per field, so the hot path (VM emission,
     codec, profiler dispatch) moves events as four machine words and
     never constructs a variant.  [args] holds the routine / addr /
     units / lock payload, [lens] the length of range events; both are 0
     for events without that field. *)
  type t = {
    tags : int array;
    tids : int array;
    args : int array;
    lens : int array;
    mutable len : int;
  }

  let default_capacity = 8192

  let create ?(capacity = default_capacity) () =
    if capacity <= 0 then
      invalid_arg "Event.Batch.create: capacity must be positive";
    {
      tags = Array.make capacity 0;
      tids = Array.make capacity 0;
      args = Array.make capacity 0;
      lens = Array.make capacity 0;
      len = 0;
    }

  let capacity b = Array.length b.tags
  let length b = b.len
  let is_empty b = b.len = 0
  let is_full b = b.len = Array.length b.tags
  let clear b = b.len <- 0

  (* Event tags.  The numbering is shared with the binary codec's record
     tags (Trace_codec), so a decoded record's tag byte is stored as-is. *)
  let tag_call = 1
  let tag_return = 2
  let tag_read = 3
  let tag_write = 4
  let tag_block = 5
  let tag_user_to_kernel = 6
  let tag_kernel_to_user = 7
  let tag_acquire = 8
  let tag_release = 9
  let tag_alloc = 10
  let tag_free = 11
  let tag_thread_start = 12
  let tag_thread_exit = 13
  let tag_switch_thread = 14
  let max_tag = 14

  (* Field-presence masks, bit [tag] set when the field exists: payload
     for Call/Read/Write/Block/ranges/locks (1, 3-11), length for the
     range events (6, 7, 10, 11).  Exposed so decoders can test presence
     with a shift instead of a cross-module call per record. *)
  let arg_mask = 0b1111_1111_1010
  let len_mask = 0b1100_1100_0000

  let tag_has_arg tag = (arg_mask lsr tag) land 1 = 1
  let tag_has_len tag = (len_mask lsr tag) land 1 = 1

  (* Tags whose payload is a memory address: Read/Write (3, 4), the
     kernel transfers (6, 7), Alloc/Free (10, 11). *)
  let addr_mask = 0b1100_1101_1000

  (* Tags whose payload is a lock id: Acquire/Release (8, 9). *)
  let lock_mask = 0b0011_0000_0000

  (* Consumers trust batch fields: shadow-memory page tables are indexed
     with the raw address, per-thread tool state is dense in (and packed
     by) the tid, and lockset memo keys pack the lock id below bit 31 —
     so a negative address, a tid outside [0, max_tid] or a lock id
     outside [0, max_lock] must never cross the batch edge.  Decoders
     and other untrusted producers validate once per batch here, and the
     tools' hot paths drop their per-access guards. *)
  let validate b =
    for i = 0 to b.len - 1 do
      let tag = Array.unsafe_get b.tags i in
      let tid = Array.unsafe_get b.tids i in
      if tid < 0 || tid > max_tid then
        invalid_arg
          (Printf.sprintf "Event.Batch: thread id %d out of range at event %d"
             tid i);
      let arg = Array.unsafe_get b.args i in
      if (addr_mask lsr tag) land 1 = 1 && arg < 0 then
        invalid_arg
          (Printf.sprintf "Event.Batch: negative address %d at event %d" arg i);
      if (lock_mask lsr tag) land 1 = 1 && (arg < 0 || arg > max_lock) then
        invalid_arg
          (Printf.sprintf "Event.Batch: lock id %d out of range at event %d"
             arg i)
    done

  let tags b = b.tags
  let tids b = b.tids
  let args b = b.args
  let lens b = b.lens

  let unsafe_push b ~tag ~tid ~arg ~len =
    let i = b.len in
    Array.unsafe_set b.tags i tag;
    Array.unsafe_set b.tids i tid;
    Array.unsafe_set b.args i arg;
    Array.unsafe_set b.lens i len;
    b.len <- i + 1

  (* For bulk fillers that write through the field arrays directly;
     [n] must count rows actually written. *)
  let unsafe_set_length b n = b.len <- n

  let tag_of_event : event -> int = function
    | Call _ -> tag_call
    | Return _ -> tag_return
    | Read _ -> tag_read
    | Write _ -> tag_write
    | Block _ -> tag_block
    | User_to_kernel _ -> tag_user_to_kernel
    | Kernel_to_user _ -> tag_kernel_to_user
    | Acquire _ -> tag_acquire
    | Release _ -> tag_release
    | Alloc _ -> tag_alloc
    | Free _ -> tag_free
    | Thread_start _ -> tag_thread_start
    | Thread_exit _ -> tag_thread_exit
    | Switch_thread _ -> tag_switch_thread

  let push b ev =
    if is_full b then invalid_arg "Event.Batch.push: batch is full";
    match ev with
    | Call { tid; routine } ->
      unsafe_push b ~tag:tag_call ~tid ~arg:routine ~len:0
    | Return { tid } -> unsafe_push b ~tag:tag_return ~tid ~arg:0 ~len:0
    | Read { tid; addr } -> unsafe_push b ~tag:tag_read ~tid ~arg:addr ~len:0
    | Write { tid; addr } -> unsafe_push b ~tag:tag_write ~tid ~arg:addr ~len:0
    | Block { tid; units } ->
      unsafe_push b ~tag:tag_block ~tid ~arg:units ~len:0
    | User_to_kernel { tid; addr; len } ->
      unsafe_push b ~tag:tag_user_to_kernel ~tid ~arg:addr ~len
    | Kernel_to_user { tid; addr; len } ->
      unsafe_push b ~tag:tag_kernel_to_user ~tid ~arg:addr ~len
    | Acquire { tid; lock } ->
      unsafe_push b ~tag:tag_acquire ~tid ~arg:lock ~len:0
    | Release { tid; lock } ->
      unsafe_push b ~tag:tag_release ~tid ~arg:lock ~len:0
    | Alloc { tid; addr; len } -> unsafe_push b ~tag:tag_alloc ~tid ~arg:addr ~len
    | Free { tid; addr; len } -> unsafe_push b ~tag:tag_free ~tid ~arg:addr ~len
    | Thread_start { tid } ->
      unsafe_push b ~tag:tag_thread_start ~tid ~arg:0 ~len:0
    | Thread_exit { tid } ->
      unsafe_push b ~tag:tag_thread_exit ~tid ~arg:0 ~len:0
    | Switch_thread { tid } ->
      unsafe_push b ~tag:tag_switch_thread ~tid ~arg:0 ~len:0

  let unpack b i : event =
    let tid = Array.unsafe_get b.tids i in
    let arg = Array.unsafe_get b.args i in
    let len = Array.unsafe_get b.lens i in
    match Array.unsafe_get b.tags i with
    | 1 -> Call { tid; routine = arg }
    | 2 -> Return { tid }
    | 3 -> Read { tid; addr = arg }
    | 4 -> Write { tid; addr = arg }
    | 5 -> Block { tid; units = arg }
    | 6 -> User_to_kernel { tid; addr = arg; len }
    | 7 -> Kernel_to_user { tid; addr = arg; len }
    | 8 -> Acquire { tid; lock = arg }
    | 9 -> Release { tid; lock = arg }
    | 10 -> Alloc { tid; addr = arg; len }
    | 11 -> Free { tid; addr = arg; len }
    | 12 -> Thread_start { tid }
    | 13 -> Thread_exit { tid }
    | 14 -> Switch_thread { tid }
    | tag -> invalid_arg (Printf.sprintf "Event.Batch: corrupt tag %d" tag)

  let check b i =
    if i < 0 || i >= b.len then
      invalid_arg
        (Printf.sprintf "Event.Batch: index %d out of bounds [0,%d)" i b.len)

  let get b i =
    check b i;
    unpack b i

  let set b i ev =
    check b i;
    let saved = b.len in
    b.len <- i;
    push b ev;
    b.len <- saved

  let iter f b =
    for i = 0 to b.len - 1 do
      f
        (Array.unsafe_get b.tags i)
        (Array.unsafe_get b.tids i)
        (Array.unsafe_get b.args i)
        (Array.unsafe_get b.lens i)
    done

  let iter_events f b =
    for i = 0 to b.len - 1 do
      f (unpack b i)
    done

  let map_in_place f b =
    for i = 0 to b.len - 1 do
      set b i (f (unpack b i))
    done

  let filter_in_place p b =
    let w = ref 0 in
    for i = 0 to b.len - 1 do
      if p (unpack b i) then begin
        let j = !w in
        if j <> i then begin
          Array.unsafe_set b.tags j (Array.unsafe_get b.tags i);
          Array.unsafe_set b.tids j (Array.unsafe_get b.tids i);
          Array.unsafe_set b.args j (Array.unsafe_get b.args i);
          Array.unsafe_set b.lens j (Array.unsafe_get b.lens i)
        end;
        incr w
      end
    done;
    b.len <- !w

  (* Raw twin of [filter_in_place] for the parallel replay path: the
     predicate sees the packed tag/tid fields, so filtering a batch down
     to one shard's threads unpacks nothing. *)
  let keep_in_place p b =
    let w = ref 0 in
    for i = 0 to b.len - 1 do
      let tag = Array.unsafe_get b.tags i in
      let tid = Array.unsafe_get b.tids i in
      if p tag tid then begin
        let j = !w in
        if j <> i then begin
          Array.unsafe_set b.tags j tag;
          Array.unsafe_set b.tids j tid;
          Array.unsafe_set b.args j (Array.unsafe_get b.args i);
          Array.unsafe_set b.lens j (Array.unsafe_get b.lens i)
        end;
        incr w
      end
    done;
    b.len <- !w

  let of_trace (tr : event Aprof_util.Vec.t) =
    let n = Aprof_util.Vec.length tr in
    let b = create ~capacity:(max n 1) () in
    Aprof_util.Vec.iter (push b) tr;
    b

  let to_trace b =
    let tr = Aprof_util.Vec.create () in
    iter_events (Aprof_util.Vec.push tr) b;
    tr
end
