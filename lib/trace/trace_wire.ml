(* Wire primitives shared by every codec layer: zigzag varints (records),
   plain varints (frame lengths), little-endian fixed-width fields, and
   the [Decode_error] helper.  Extracted from the monolithic codec so the
   frame / transform / event layers sit on one vocabulary. *)

let bad fmt =
  Printf.ksprintf (fun s -> raise (Trace_stream.Decode_error s)) fmt

(* ----- zigzag varints ------------------------------------------------- *)

(* Zigzag maps the signed int onto the non-negative range so that values
   of small magnitude — the common case — encode in one byte, while the
   full [min_int, max_int] range still round-trips: the shifted value is
   treated as an unsigned machine word ([lsr] is logical). *)

(* Both directions run a few times per event, so they are written as
   top-level tail recursions over plain int arguments: an inner closure
   (capturing the byte source) or a local [ref] would cost a minor
   allocation per call and dominate the decode profile. *)

let rec add_varint_rest buf v =
  let b = v land 0x7f in
  let v = v lsr 7 in
  if v = 0 then Buffer.add_char buf (Char.unsafe_chr b)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (b lor 0x80));
    add_varint_rest buf v
  end

let add_varint buf n =
  add_varint_rest buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

(* Decoding rejects every encoding the encoder above cannot produce, so
   the byte representation of a value is unique (the byte-diffability
   contract: distinct byte streams decode to distinct traces).  Two
   guards, both checked before the shift so no [lsl] ever runs with an
   out-of-range count: a byte whose significant bits would fall off the
   top of the int overflows, and a terminating byte that contributes no
   bits (a redundant [0x80 0x00]-style tail) is non-canonical. *)

let[@inline] check_varint_bits bits shift =
  if
    shift >= Sys.int_size
    || (shift > Sys.int_size - 7 && bits lsr (Sys.int_size - shift) <> 0)
  then bad "varint overflows the int range"

(* [read_byte] yields the next byte or -1 at end of input. *)
let rec read_varint_rest read_byte shift acc =
  match read_byte () with
  | -1 -> bad "truncated varint"
  | b ->
    let bits = b land 0x7f in
    check_varint_bits bits shift;
    let acc = acc lor (bits lsl shift) in
    if b land 0x80 <> 0 then read_varint_rest read_byte (shift + 7) acc
    else if bits = 0 && shift > 0 then bad "non-canonical varint encoding"
    else acc

let read_varint read_byte =
  let v = read_varint_rest read_byte 0 0 in
  (v lsr 1) lxor (- (v land 1))

(* Same decode, but straight off a byte buffer through a position ref —
   the chunked reader's fast path.  Callers must guarantee the buffer
   holds a complete varint starting at [!pos]; the [check_varint_bits]
   guard bounds a varint at ten bytes, which is what makes the caller's
   margin check sufficient for [unsafe_get].  Only entered from the
   second byte on (shift >= 7), so a zero terminating byte is always
   non-canonical here. *)
let rec read_varint_bytes_rest chunk pos shift acc =
  let b = Char.code (Bytes.unsafe_get chunk !pos) in
  incr pos;
  let bits = b land 0x7f in
  check_varint_bits bits shift;
  let acc = acc lor (bits lsl shift) in
  if b land 0x80 <> 0 then read_varint_bytes_rest chunk pos (shift + 7) acc
  else if bits = 0 then bad "non-canonical varint encoding"
  else acc

(* One-byte varints — small tids, small deltas — are the overwhelmingly
   common case, so decode them without entering the loop. *)
let[@inline always] read_varint_bytes_fast chunk pos =
  let b0 = Char.code (Bytes.unsafe_get chunk !pos) in
  incr pos;
  if b0 < 0x80 then (b0 lsr 1) lxor (- (b0 land 1))
  else
    let v = read_varint_bytes_rest chunk pos 7 (b0 land 0x7f) in
    (v lsr 1) lxor (- (v land 1))

(* Bounds-checked twin of [read_varint_bytes_fast] for the tail of a
   buffer where the [max_record_bytes] margin no longer holds. *)
let read_varint_bytes_checked chunk pos limit =
  let rec go shift acc =
    if !pos >= limit then bad "truncated varint"
    else begin
      let b = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      let bits = b land 0x7f in
      check_varint_bits bits shift;
      let acc = acc lor (bits lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc
      else if bits = 0 && shift > 0 then bad "non-canonical varint encoding"
      else acc
    end
  in
  let v = go 0 0 in
  (v lsr 1) lxor (- (v land 1))

(* Advance past one varint without assembling its value — the fields of
   events the keep filter discards.  Bounded like the strict reader (a
   canonical 63-bit varint is at most 9 bytes); canonicality itself is
   not checked, which is covered by the chunk checksum and by the
   sequential path validating every event. *)
let[@inline always] skip_varint_bytes chunk pos =
  if Char.code (Bytes.unsafe_get chunk !pos) < 0x80 then incr pos
  else begin
    let stop = !pos + 10 in
    incr pos;
    while Char.code (Bytes.unsafe_get chunk !pos) >= 0x80 do
      incr pos;
      if !pos >= stop then bad "varint too long"
    done;
    incr pos
  end

(* A record is at most 1 tag byte + 3 varints of at most 10 bytes (a
   canonical varint of a 63-bit int is 9 bytes; 10 is a safe margin). *)
let max_record_bytes = 34

(* ----- plain (non-zigzag) varints ------------------------------------- *)

(* These frame the version >= 2 chunks. *)

let rec add_uvarint buf v =
  if v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (v land 0x7f lor 0x80));
    add_uvarint buf (v lsr 7)
  end

let rec output_uvarint oc v =
  if v < 0x80 then output_char oc (Char.unsafe_chr v)
  else begin
    output_char oc (Char.unsafe_chr (v land 0x7f lor 0x80));
    output_uvarint oc (v lsr 7)
  end

let rec uvarint_size v = if v < 0x80 then 1 else 1 + uvarint_size (v lsr 7)

(* [read_byte] convention as above; canonical, like the record varints. *)
let read_uvarint read_byte =
  let rec go shift acc =
    match read_byte () with
    | -1 -> bad "truncated chunk header"
    | b ->
      let bits = b land 0x7f in
      check_varint_bits bits shift;
      let acc = acc lor (bits lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc
      else if bits = 0 && shift > 0 then bad "non-canonical chunk length"
      else acc
  in
  go 0 0

(* ----- little-endian fixed-width fields ------------------------------- *)

let add_le32 buf n =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

let output_le32 oc n =
  for i = 0 to 3 do
    output_char oc (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

let add_le64 buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done
