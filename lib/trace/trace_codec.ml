module Vec = Aprof_util.Vec
module Crc32c = Aprof_util.Crc32c
module Batch = Event.Batch

let magic = "ATRC"

(* Version 2 frames every flushed chunk with its byte length and a
   CRC32C of the payload, so readers verify integrity before any varint
   decoding touches the bytes; version 1 (a bare record stream) remains
   readable.  Writers emit version 2 unless asked otherwise. *)
let version = 2
let default_chunk = 64 * 1024

(* A frame length takes at most ten varint bytes, but anything near
   that is corruption, not a trace: cap what a reader will allocate. *)
let max_chunk_payload = 1 lsl 30

(* The shard-index footer appended after the end-of-trace marker; see
   the .mli for the layout.  Its own magic differs from the header's so
   a footer can never be mistaken for the start of a trace.  The index
   version always equals the trace version: version-2 entries carry the
   chunk's CRC32C so a seeking reader needs no second look at the chunk
   frame header. *)
let index_magic = "ATRI"
let index_trailer_bytes = 8 + 4 (* LE64 footer offset + magic *)

let bad fmt =
  Printf.ksprintf (fun s -> raise (Trace_stream.Decode_error s)) fmt

(* ----- varints ------------------------------------------------------- *)

(* Zigzag maps the signed int onto the non-negative range so that values
   of small magnitude — the common case — encode in one byte, while the
   full [min_int, max_int] range still round-trips: the shifted value is
   treated as an unsigned machine word ([lsr] is logical). *)

(* Both directions run a few times per event, so they are written as
   top-level tail recursions over plain int arguments: an inner closure
   (capturing the byte source) or a local [ref] would cost a minor
   allocation per call and dominate the decode profile. *)

let rec add_varint_rest buf v =
  let b = v land 0x7f in
  let v = v lsr 7 in
  if v = 0 then Buffer.add_char buf (Char.unsafe_chr b)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (b lor 0x80));
    add_varint_rest buf v
  end

let add_varint buf n =
  add_varint_rest buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

(* Decoding rejects every encoding the encoder above cannot produce, so
   the byte representation of a value is unique (the byte-diffability
   contract: distinct byte streams decode to distinct traces).  Two
   guards, both checked before the shift so no [lsl] ever runs with an
   out-of-range count: a byte whose significant bits would fall off the
   top of the int overflows, and a terminating byte that contributes no
   bits (a redundant [0x80 0x00]-style tail) is non-canonical. *)

let[@inline] check_varint_bits bits shift =
  if
    shift >= Sys.int_size
    || (shift > Sys.int_size - 7 && bits lsr (Sys.int_size - shift) <> 0)
  then bad "varint overflows the int range"

(* [read_byte] yields the next byte or -1 at end of input. *)
let rec read_varint_rest read_byte shift acc =
  match read_byte () with
  | -1 -> bad "truncated varint"
  | b ->
    let bits = b land 0x7f in
    check_varint_bits bits shift;
    let acc = acc lor (bits lsl shift) in
    if b land 0x80 <> 0 then read_varint_rest read_byte (shift + 7) acc
    else if bits = 0 && shift > 0 then bad "non-canonical varint encoding"
    else acc

let read_varint read_byte =
  let v = read_varint_rest read_byte 0 0 in
  (v lsr 1) lxor (- (v land 1))

(* Same decode, but straight off a byte buffer through a position ref —
   the chunked reader's fast path.  Callers must guarantee the buffer
   holds a complete varint starting at [!pos]; the [check_varint_bits]
   guard bounds a varint at ten bytes, which is what makes the caller's
   margin check sufficient for [unsafe_get].  Only entered from the
   second byte on (shift >= 7), so a zero terminating byte is always
   non-canonical here. *)
let rec read_varint_bytes_rest chunk pos shift acc =
  let b = Char.code (Bytes.unsafe_get chunk !pos) in
  incr pos;
  let bits = b land 0x7f in
  check_varint_bits bits shift;
  let acc = acc lor (bits lsl shift) in
  if b land 0x80 <> 0 then read_varint_bytes_rest chunk pos (shift + 7) acc
  else if bits = 0 then bad "non-canonical varint encoding"
  else acc

(* One-byte varints — small tids, small deltas — are the overwhelmingly
   common case, so decode them without entering the loop. *)
let[@inline always] read_varint_bytes_fast chunk pos =
  let b0 = Char.code (Bytes.unsafe_get chunk !pos) in
  incr pos;
  if b0 < 0x80 then (b0 lsr 1) lxor (- (b0 land 1))
  else
    let v = read_varint_bytes_rest chunk pos 7 (b0 land 0x7f) in
    (v lsr 1) lxor (- (v land 1))

(* Advance past one varint without assembling its value — the fields of
   events the keep filter discards.  Bounded like the strict reader (a
   canonical 63-bit varint is at most 9 bytes); canonicality itself is
   not checked, which is covered by the chunk checksum and by the
   sequential path validating every event. *)
let[@inline always] skip_varint_bytes chunk pos =
  if Char.code (Bytes.unsafe_get chunk !pos) < 0x80 then incr pos
  else begin
    let stop = !pos + 10 in
    incr pos;
    while Char.code (Bytes.unsafe_get chunk !pos) >= 0x80 do
      incr pos;
      if !pos >= stop then bad "varint too long"
    done;
    incr pos
  end

(* A record is at most 1 tag byte + 3 varints of at most 10 bytes (a
   canonical varint of a 63-bit int is 9 bytes; 10 is a safe margin). *)
let max_record_bytes = 34

(* Plain (non-zigzag) varints frame the version-2 chunks. *)
let rec add_uvarint buf v =
  if v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (v land 0x7f lor 0x80));
    add_uvarint buf (v lsr 7)
  end

let rec output_uvarint oc v =
  if v < 0x80 then output_char oc (Char.unsafe_chr v)
  else begin
    output_char oc (Char.unsafe_chr (v land 0x7f lor 0x80));
    output_uvarint oc (v lsr 7)
  end

let rec uvarint_size v = if v < 0x80 then 1 else 1 + uvarint_size (v lsr 7)

(* [read_byte] convention as above; canonical, like the record varints. *)
let read_uvarint read_byte =
  let rec go shift acc =
    match read_byte () with
    | -1 -> bad "truncated chunk header"
    | b ->
      let bits = b land 0x7f in
      check_varint_bits bits shift;
      let acc = acc lor (bits lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc
      else if bits = 0 && shift > 0 then bad "non-canonical chunk length"
      else acc
  in
  go 0 0

let add_le32 buf n =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

let output_le32 oc n =
  for i = 0 to 3 do
    output_char oc (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

let add_le64 buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

(* ----- records -------------------------------------------------------- *)

let def_tag = 15
let end_tag = 0

(* Event record tags are exactly {!Event.Batch}'s tags (1–14), so both
   encode and decode work on the raw packed fields: tid always, then the
   primary payload when the kind has one, then the length when it has
   one.  This is the single encoder; every writer entry point funnels
   into it. *)
let add_record buf ~tag ~tid ~arg ~len =
  Buffer.add_char buf (Char.unsafe_chr tag);
  add_varint buf tid;
  if Batch.tag_has_arg tag then add_varint buf arg;
  if Batch.tag_has_len tag then add_varint buf len

let add_def buf id name =
  Buffer.add_char buf (Char.unsafe_chr def_tag);
  add_varint buf id;
  add_varint buf (String.length name);
  Buffer.add_string buf name

(* [encoder buf ~routine_name] is the raw per-record encoder, interning
   routine names: the first [Call] of each routine is preceded by its
   definition record.  Matches {!Event.Batch.iter}'s field order. *)
let encoder buf ~routine_name =
  let defined = Hashtbl.create 64 in
  fun tag tid arg len ->
    if tag = Batch.tag_call && not (Hashtbl.mem defined arg) then begin
      Hashtbl.add defined arg ();
      add_def buf arg (routine_name arg)
    end;
    add_record buf ~tag ~tid ~arg ~len

(* Consume exactly one record through the generic byte source, pushing
   event records into [b].  Returns [true] when the record was the
   end-of-trace marker.  [read_string n] must return exactly [n] bytes.
   Plain end of input is a truncation — a complete trace always carries
   the marker, which is what lets truncation at a record boundary be
   told apart from a genuine end. *)
let step_record ~read_byte ~read_string ~define b =
  match read_byte () with
  | -1 -> bad "truncated trace (missing end-of-trace marker)"
  | tag when tag = end_tag ->
    (match read_byte () with
    | -1 -> ()
    | b when b = Char.code index_magic.[0] ->
      (* A shard-index footer may follow the marker.  Sequential readers
         check its magic and skip the rest; the seekable path ({!shards})
         is the one that validates and uses it. *)
      for i = 1 to 3 do
        if read_byte () <> Char.code index_magic.[i] then
          bad "trailing data after end-of-trace marker"
      done;
      while read_byte () <> -1 do
        ()
      done
    | _ -> bad "trailing data after end-of-trace marker");
    true
  | tag when tag = def_tag ->
    let id = read_varint read_byte in
    let len = read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    false
  | tag when tag >= 1 && tag <= Batch.max_tag ->
    let tid = read_varint read_byte in
    let arg = if Batch.tag_has_arg tag then read_varint read_byte else 0 in
    let len = if Batch.tag_has_len tag then read_varint read_byte else 0 in
    Batch.unsafe_push b ~tag ~tid ~arg ~len;
    false
  | tag -> bad "unknown record tag %d" tag

(* One record off a chunk's byte range.  A chunk never contains the
   end-of-trace marker, so tag 0 falls through to the error arm.  With
   [?keep], event records failing [keep tag tid] are parsed (the cursor
   always advances past them) but not stored; definitions are always
   processed. *)
let chunk_step ?keep ~read_byte ~read_string ~define b =
  match read_byte () with
  | -1 -> true (* chunk exhausted at a record boundary *)
  | tag when tag = def_tag ->
    let id = read_varint read_byte in
    let len = read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    false
  | tag when tag >= 1 && tag <= Batch.max_tag ->
    let tid = read_varint read_byte in
    let arg = if Batch.tag_has_arg tag then read_varint read_byte else 0 in
    let len = if Batch.tag_has_len tag then read_varint read_byte else 0 in
    (match keep with
    | None -> Batch.unsafe_push b ~tag ~tid ~arg ~len
    | Some keep ->
      if keep tag tid then Batch.unsafe_push b ~tag ~tid ~arg ~len);
    false
  | tag -> bad "unknown record tag %d in chunk" tag

(* Decoded bytes are untrusted; downstream tools index shadow pages,
   dense per-thread state and lockset memo keys with the raw fields and
   no per-access guard, so the batch edge is where negative addresses
   and out-of-range thread/lock ids must die.  Every fill site calls
   this once per refilled batch. *)
let validate_batch b =
  try Batch.validate b
  with Invalid_argument msg -> bad "%s" msg

let fill_batch ~read_byte ~read_string ~define b =
  let finished = ref false in
  while (not !finished) && not (Batch.is_full b) do
    finished := step_record ~read_byte ~read_string ~define b
  done;
  validate_batch b;
  !finished

(* Bulk fast path over a chunk: decode plain event records directly off
   the bytes while a whole record is guaranteed to fit below [limit],
   without going through the [read_byte] closure.  Stops — leaving [pos]
   on the offending tag — at definition records, the end marker, or any
   malformed tag, which the generic [step_record] then handles. *)
let fill_batch_bytes b chunk pos limit =
  let tags = Batch.tags b and tids = Batch.tids b in
  let args = Batch.args b and lens = Batch.lens b in
  let cap = Array.length tags in
  let arg_mask = Batch.arg_mask and len_mask = Batch.len_mask in
  (* [!p <= last_start] guarantees a whole record fits before [limit]. *)
  let last_start = limit - max_record_bytes in
  let i = ref (Batch.length b) in
  let p = ref !pos in
  let stop = ref false in
  while (not !stop) && !i < cap && !p <= last_start do
    let tag = Char.code (Bytes.unsafe_get chunk !p) in
    if tag >= 1 && tag <= Batch.max_tag then begin
      incr p;
      let tid = read_varint_bytes_fast chunk p in
      let arg =
        if (arg_mask lsr tag) land 1 = 1 then read_varint_bytes_fast chunk p
        else 0
      in
      let len =
        if (len_mask lsr tag) land 1 = 1 then read_varint_bytes_fast chunk p
        else 0
      in
      let j = !i in
      Array.unsafe_set tags j tag;
      Array.unsafe_set tids j tid;
      Array.unsafe_set args j arg;
      Array.unsafe_set lens j len;
      i := j + 1
    end
    else stop := true
  done;
  Batch.unsafe_set_length b !i;
  pos := !p

(* Keep-filtered twin of [fill_batch_bytes]: every record is parsed at
   full speed, but only those satisfying [keep tag tid] are stored into
   the batch.  The parallel replay engine pushes its per-shard filter
   down here so that a foreign, non-broadcast event costs only its
   varint decode — it is never materialized, validated, or re-filtered
   from the batch afterwards. *)
let fill_batch_bytes_keep b chunk pos limit ~keep =
  let tags = Batch.tags b and tids = Batch.tids b in
  let args = Batch.args b and lens = Batch.lens b in
  let cap = Array.length tags in
  let arg_mask = Batch.arg_mask and len_mask = Batch.len_mask in
  let last_start = limit - max_record_bytes in
  let i = ref (Batch.length b) in
  let p = ref !pos in
  let stop = ref false in
  while (not !stop) && !i < cap && !p <= last_start do
    let tag = Char.code (Bytes.unsafe_get chunk !p) in
    if tag >= 1 && tag <= Batch.max_tag then begin
      incr p;
      let tid = read_varint_bytes_fast chunk p in
      if keep tag tid then begin
        let arg =
          if (arg_mask lsr tag) land 1 = 1 then read_varint_bytes_fast chunk p
          else 0
        in
        let len =
          if (len_mask lsr tag) land 1 = 1 then read_varint_bytes_fast chunk p
          else 0
        in
        let j = !i in
        Array.unsafe_set tags j tag;
        Array.unsafe_set tids j tid;
        Array.unsafe_set args j arg;
        Array.unsafe_set lens j len;
        i := j + 1
      end
      else begin
        (* Discarded: step over the remaining fields without decoding. *)
        if (arg_mask lsr tag) land 1 = 1 then skip_varint_bytes chunk p;
        if (len_mask lsr tag) land 1 = 1 then skip_varint_bytes chunk p
      end
    end
    else stop := true
  done;
  Batch.unsafe_set_length b !i;
  pos := !p

(* Header validation shared by the channel and string entry points;
   returns the format version (1 or 2). *)
let parse_header hdr =
  if String.length hdr < 5 then bad "truncated header";
  if String.sub hdr 0 4 <> magic then bad "bad magic: not a binary trace";
  match Char.code hdr.[4] with
  | (1 | 2) as v -> v
  | v -> bad "unsupported trace format version %d (expected 1..%d)" v version

let input_header ic =
  match really_input_string ic 5 with
  | hdr -> parse_header hdr
  | exception End_of_file -> bad "truncated header"

let default_routine_name id = Printf.sprintf "routine_%d" id

(* ----- streaming writer ----------------------------------------------- *)

(* What the writer remembers about one flushed chunk, to be serialized
   into the footer on close.  [c_crc] is -1 for version-1 output. *)
type chunk_entry = {
  c_bytes : int;
  c_events : int;
  c_tag_mask : int;
  c_crc : int;
  c_tids : int array; (* distinct, ascending *)
}

let add_footer buf ~format_version chunks =
  Buffer.add_string buf index_magic;
  Buffer.add_char buf (Char.chr format_version);
  add_varint buf (List.length chunks);
  List.iter
    (fun c ->
      add_varint buf c.c_bytes;
      add_varint buf c.c_events;
      add_varint buf c.c_tag_mask;
      if format_version >= 2 then add_varint buf c.c_crc;
      add_varint buf (Array.length c.c_tids);
      (* Ascending tids delta-encode into one byte each in practice. *)
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          add_varint buf (tid - !prev);
          prev := tid)
        c.c_tids)
    chunks

let check_format_version v =
  if v < 1 || v > version then
    invalid_arg
      (Printf.sprintf "Trace_codec: cannot write format version %d (1..%d)" v
         version)

let batch_writer ?(chunk_bytes = default_chunk) ?(index = true)
    ?(format_version = version) ?(routine_name = default_routine_name) oc =
  check_format_version format_version;
  (* The header goes straight to the channel so that the buffer — and
     therefore each recorded chunk length — holds record bytes only. *)
  output_string oc magic;
  output_char oc (Char.chr format_version);
  let buf = Buffer.create (chunk_bytes + 256) in
  let encode = encoder buf ~routine_name in
  (* Per-chunk stats for the index.  The last-tid cache keeps the table
     lookup off the hot path: consecutive events of one thread are the
     overwhelmingly common case. *)
  let chunks = ref [] in
  let events = ref 0 in
  let tag_mask = ref 0 in
  let tid_set : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let last_tid = ref min_int in
  let flush_chunk () =
    if Buffer.length buf > 0 then begin
      let tids =
        Hashtbl.fold (fun tid () acc -> tid :: acc) tid_set []
        |> List.sort compare |> Array.of_list
      in
      let payload = Buffer.to_bytes buf in
      let nbytes = Bytes.length payload in
      let crc =
        if format_version >= 2 then Crc32c.digest payload ~pos:0 ~len:nbytes
        else -1
      in
      chunks :=
        {
          c_bytes = nbytes;
          c_events = !events;
          c_tag_mask = !tag_mask;
          c_crc = crc;
          c_tids = tids;
        }
        :: !chunks;
      events := 0;
      tag_mask := 0;
      Hashtbl.reset tid_set;
      last_tid := min_int;
      if format_version >= 2 then begin
        output_uvarint oc nbytes;
        output_le32 oc crc
      end;
      output_bytes oc payload;
      Buffer.clear buf
    end
  in
  let emit_batch b =
    Batch.iter
      (fun tag tid arg len ->
        encode tag tid arg len;
        incr events;
        tag_mask := !tag_mask lor (1 lsl tag);
        if tid <> !last_tid then begin
          last_tid := tid;
          Hashtbl.replace tid_set tid ()
        end;
        if Buffer.length buf >= chunk_bytes then flush_chunk ())
      b
  in
  let close_batch () =
    flush_chunk ();
    (* Chunk [i]'s payload starts at [5 + earlier frames]; a version-2
       frame adds a length varint and a 4-byte CRC before the payload. *)
    let frame_bytes c =
      if format_version >= 2 then uvarint_size c.c_bytes + 4 + c.c_bytes
      else c.c_bytes
    in
    let marker_off = 5 + List.fold_left (fun a c -> a + frame_bytes c) 0 !chunks in
    output_char oc (Char.chr end_tag);
    if index then begin
      let footer_off = marker_off + 1 in
      add_footer buf ~format_version (List.rev !chunks);
      add_le64 buf footer_off;
      Buffer.add_string buf index_magic;
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  { Trace_stream.emit_batch; close_batch }

let writer ?chunk_bytes ?index ?format_version ?routine_name oc =
  Trace_stream.sink_of_batches
    (batch_writer ?chunk_bytes ?index ?format_version ?routine_name oc)

(* ----- streaming reader ----------------------------------------------- *)

(* Version 1: a bare record stream read through a sliding window of
   [chunk_bytes]; nothing in the format marks the writer's flush
   boundaries, so the window is just an I/O buffer. *)
let batch_reader_v1 ~chunk_bytes ~batch_size ic =
  let chunk = Bytes.create (max 1 chunk_bytes) in
  let pos = ref 0 in
  let len = ref 0 in
  let refill () =
    len := In_channel.input ic chunk 0 (Bytes.length chunk);
    pos := 0
  in
  let read_byte () =
    if !pos >= !len then refill ();
    if !len = 0 then -1
    else begin
      let b = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    let b = Bytes.create n in
    let filled = ref 0 in
    while !filled < n do
      if !pos >= !len then begin
        refill ();
        if !len = 0 then bad "truncated name"
      end;
      let take = min (n - !filled) (!len - !pos) in
      Bytes.blit chunk !pos b !filled take;
      pos := !pos + take;
      filled := !filled + take
    done;
    Bytes.unsafe_to_string b
  in
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let finished = ref false in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      fill_batch_bytes b chunk pos !len;
      if not (Batch.is_full b) then
        fin := step_record ~read_byte ~read_string ~define b
    done;
    validate_batch b;
    !fin
  in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

(* Version 2: the stream is a sequence of length-prefixed, checksummed
   frames.  Each frame's payload is read whole and verified against its
   CRC32C *before* any record decoding, so the [unsafe_get] fast path
   never runs over corrupt bytes; records never span frames. *)
let batch_reader_v2 ~batch_size ic =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let chunk = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let file_off = ref 5 in
  let ordinal = ref (-1) in
  let frames_done = ref false in
  (* (payload bytes, crc) of every frame streamed so far, newest first:
     cross-checked against the index footer at the end of the trace. *)
  let frames = ref [] in
  let input_byte () =
    match In_channel.input_byte ic with
    | Some c ->
      incr file_off;
      c
    | None -> -1
  in
  let skip_footer () =
    (* After the marker: end of file, or an index footer.  A duplicated,
       deleted or reordered frame is internally self-consistent — its
       own checksum still matches — so the streamed frame sequence is
       verified against the footer, the one record of what the writer
       actually flushed.  (The seekable paths re-validate the footer
       themselves in {!shards}.) *)
    let footer_off = !file_off in
    match input_byte () with
    | -1 -> ()
    | c when c = Char.code index_magic.[0] ->
      for i = 1 to 3 do
        if input_byte () <> Char.code index_magic.[i] then
          bad "trailing data after end-of-trace marker"
      done;
      let rb () =
        match input_byte () with
        | -1 -> bad "truncated shard index footer"
        | b -> b
      in
      (match rb () with
      | 2 -> ()
      | v -> bad "shard index version %d does not match trace version 2" v);
      let streamed = Array.of_list (List.rev !frames) in
      let nchunks = read_varint rb in
      if nchunks <> Array.length streamed then
        bad "shard index describes %d chunks, the stream carried %d" nchunks
          (Array.length streamed);
      for k = 0 to nchunks - 1 do
        let bytes = read_varint rb in
        (* events and tag_mask steer seeking readers, not this one. *)
        let _events = read_varint rb in
        let _tag_mask = read_varint rb in
        let crc = read_varint rb in
        let ntids = read_varint rb in
        if ntids < 0 || ntids > 0x10000 then
          bad "corrupt shard index entry %d" k;
        for _ = 1 to ntids do
          ignore (read_varint rb)
        done;
        let sbytes, scrc = streamed.(k) in
        if bytes <> sbytes || crc <> scrc then
          bad "chunk %d does not match its shard index entry" k
      done;
      let off = ref 0 in
      for i = 0 to 7 do
        off := !off lor (rb () lsl (8 * i))
      done;
      if !off <> footer_off then
        bad "shard index trailer points at byte %d, footer is at byte %d" !off
          footer_off;
      for i = 0 to 3 do
        if rb () <> Char.code index_magic.[i] then
          bad "bad shard index trailer magic"
      done;
      if input_byte () <> -1 then bad "trailing data after shard index"
    | _ -> bad "trailing data after end-of-trace marker"
  in
  (* Pull the next frame into [chunk]; false once the marker is seen. *)
  let advance () =
    let frame_off = !file_off in
    let paylen =
      try read_uvarint input_byte
      with Trace_stream.Decode_error _ when !file_off = frame_off ->
        bad "truncated trace (missing end-of-trace marker)"
    in
    if paylen = 0 then begin
      skip_footer ();
      frames_done := true;
      false
    end
    else begin
      if paylen > max_chunk_payload then
        bad "chunk %d at byte %d: implausible length %d" (!ordinal + 1)
          frame_off paylen;
      let stored = ref 0 in
      for i = 0 to 3 do
        match input_byte () with
        | -1 -> bad "chunk %d at byte %d: truncated header" (!ordinal + 1) frame_off
        | c -> stored := !stored lor (c lsl (8 * i))
      done;
      if Bytes.length !chunk < paylen then chunk := Bytes.create paylen;
      (try really_input ic !chunk 0 paylen
       with End_of_file ->
         bad "chunk %d at byte %d: truncated payload" (!ordinal + 1) frame_off);
      file_off := !file_off + paylen;
      incr ordinal;
      let computed = Crc32c.digest !chunk ~pos:0 ~len:paylen in
      if computed <> !stored then
        bad "chunk %d at byte %d: checksum mismatch (stored %08x, computed %08x)"
          !ordinal frame_off !stored computed;
      frames := (paylen, !stored) :: !frames;
      pos := 0;
      len := paylen;
      true
    end
  in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let c = Char.code (Bytes.unsafe_get !chunk !pos) in
      incr pos;
      c
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !chunk !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then begin
        if !frames_done || not (advance ()) then fin := true
      end
      else begin
        fill_batch_bytes b !chunk pos !len;
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

let batch_reader ?(chunk_bytes = default_chunk)
    ?(batch_size = Batch.default_capacity) ic =
  match input_header ic with
  | 1 -> batch_reader_v1 ~chunk_bytes ~batch_size ic
  | _ -> batch_reader_v2 ~batch_size ic

let reader ?chunk_bytes ic =
  let names, batches = batch_reader ?chunk_bytes ic in
  (names, Trace_stream.events_of_batches batches)

(* ----- shard index ----------------------------------------------------- *)

type shard = {
  offset : int;
  bytes : int;
  events : int;
  tag_mask : int;
  crc : int;
  tids : int array;
}

let shards ?(path = "trace") ic =
  In_channel.seek ic 0L;
  let trace_version = input_header ic in
  let total = Int64.to_int (In_channel.length ic) in
  (* Smallest indexed trace: header, marker, footer magic+version+count,
     trailer.  Anything shorter is an old index-less (or text) file. *)
  if total < 5 + 1 + 6 + index_trailer_bytes then None
  else begin
    In_channel.seek ic (Int64.of_int (total - index_trailer_bytes));
    let trailer = really_input_string ic index_trailer_bytes in
    if String.sub trailer 8 4 <> index_magic then None
    else begin
      let footer_off = ref 0 in
      for i = 7 downto 0 do
        footer_off := (!footer_off lsl 8) lor Char.code trailer.[i]
      done;
      let footer_off = !footer_off in
      let footer_len = total - index_trailer_bytes - footer_off in
      if footer_off < 5 + 1 || footer_len < 6 then
        bad "cannot read shard index of %s: bad footer offset %d" path
          footer_off;
      In_channel.seek ic (Int64.of_int footer_off);
      let footer = really_input_string ic footer_len in
      let pos = ref 0 in
      let read_byte () =
        if !pos >= footer_len then
          bad "cannot read shard index of %s: truncated at byte %d" path
            (footer_off + !pos)
        else begin
          let b = Char.code (String.unsafe_get footer !pos) in
          incr pos;
          b
        end
      in
      String.iter
        (fun c ->
          if read_byte () <> Char.code c then
            bad "cannot read shard index of %s: bad footer magic at byte %d"
              path
              (footer_off + !pos - 1))
        index_magic;
      (match read_byte () with
      | v when v = trace_version -> ()
      | v ->
        bad
          "cannot read shard index of %s: index version %d does not match \
           trace version %d"
          path v trace_version);
      let nchunks = read_varint read_byte in
      if nchunks < 0 || nchunks > footer_len then
        bad "cannot read shard index of %s: implausible chunk count %d" path
          nchunks;
      let off = ref 5 in
      (* Explicit loops: the parse order must match the byte order. *)
      let out = ref [] in
      for _ = 1 to nchunks do
        let bytes = read_varint read_byte in
        let events = read_varint read_byte in
        let tag_mask = read_varint read_byte in
        let crc = if trace_version >= 2 then read_varint read_byte else -1 in
        let ntids = read_varint read_byte in
        if
          bytes < 0 || events < 0 || ntids < 0 || ntids > footer_len
          || (trace_version >= 2 && (crc < 0 || crc > 0xFFFFFFFF))
        then
          bad "cannot read shard index of %s: corrupt chunk entry at byte %d"
            path
            (footer_off + !pos);
        let tids = Array.make ntids 0 in
        let prev = ref 0 in
        for i = 0 to ntids - 1 do
          prev := !prev + read_varint read_byte;
          tids.(i) <- !prev
        done;
        (* [offset]/[bytes] delimit the records; a version-2 frame puts
           a length varint and 4 CRC bytes in front of them. *)
        let payload_off =
          if trace_version >= 2 then !off + uvarint_size bytes + 4 else !off
        in
        out := { offset = payload_off; bytes; events; tag_mask; crc; tids } :: !out;
        off := payload_off + bytes
      done;
      let out = Array.of_list (List.rev !out) in
      if !pos <> footer_len then
        bad "cannot read shard index of %s: %d trailing bytes at byte %d" path
          (footer_len - !pos)
          (footer_off + !pos);
      (* The chunks plus the end-of-trace marker must account for every
         byte up to the footer. *)
      if !off + 1 <> footer_off then
        bad "cannot read shard index of %s: chunks cover %d bytes, footer at %d"
          path !off footer_off;
      Some out
    end
  end

let sharded_reader ?(path = "trace") ?(batch_size = Batch.default_capacity) ic
    shs ~select =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let remaining = ref (List.filter select (Array.to_list shs)) in
  let chunk = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let advance () =
    match !remaining with
    | [] -> false
    | sh :: rest ->
      remaining := rest;
      In_channel.seek ic (Int64.of_int sh.offset);
      let c = Bytes.create sh.bytes in
      (try really_input ic c 0 sh.bytes
       with End_of_file ->
         bad "cannot replay %s: chunk at byte %d truncated" path sh.offset);
      (* Verify before decoding: the fast path trusts these bytes. *)
      if sh.crc >= 0 then begin
        let computed = Crc32c.digest c ~pos:0 ~len:sh.bytes in
        if computed <> sh.crc then
          bad
            "cannot replay %s: chunk at byte %d: checksum mismatch (stored \
             %08x, computed %08x)"
            path sh.offset sh.crc computed
      end;
      chunk := c;
      pos := 0;
      len := sh.bytes;
      true
  in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let b = Char.code (Bytes.unsafe_get !chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !chunk !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then begin
        if not (advance ()) then fin := true
      end
      else begin
        fill_batch_bytes b !chunk pos !len;
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

let seek_chunk ?path ?batch_size ic sh =
  sharded_reader ?path ?batch_size ic [| sh |] ~select:(fun _ -> true)

(* [sharded_reader] with the chunk list supplied one chunk at a time,
   and the batch / byte buffer / name table reused across chunks: the
   work-stealing engine does not know its chunk sequence up front, and a
   fresh seek_chunk per claimed chunk would re-allocate all three. *)
let chunk_session ?(batch_size = Batch.default_capacity) ?keep ic =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let buf = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let c = Char.code (Bytes.unsafe_get !buf !pos) in
      incr pos;
      c
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !buf !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then fin := true
      else begin
        (match keep with
        | None -> fill_batch_bytes b !buf pos !len
        | Some keep -> fill_batch_bytes_keep b !buf pos !len ~keep);
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ?keep ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let read (sh : shard) =
    if Bytes.length !buf < sh.bytes then buf := Bytes.create sh.bytes;
    In_channel.seek ic (Int64.of_int sh.offset);
    (try really_input ic !buf 0 sh.bytes
     with End_of_file -> bad "chunk at byte %d truncated" sh.offset);
    if sh.crc >= 0 then begin
      let computed = Crc32c.digest !buf ~pos:0 ~len:sh.bytes in
      if computed <> sh.crc then
        bad "chunk at byte %d: checksum mismatch (stored %08x, computed %08x)"
          sh.offset sh.crc computed
    end;
    pos := 0;
    len := sh.bytes;
    let finished = ref false in
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end
  in
  (names, read)

(* ----- salvage reader -------------------------------------------------- *)

type drop = {
  drop_chunk : int;
  drop_offset : int;
  drop_bytes : int;
  drop_events : int;
  drop_reason : string;
}

(* Decode the whole payload [chunk[0..n)] into [stage] (grown to hold
   every possible record: the smallest event record is two bytes), so a
   chunk is delivered all-or-nothing.  Definitions are staged into
   [defs] and only committed by the caller once the chunk decodes
   cleanly.  Raises [Decode_error] on any malformation. *)
let decode_whole_chunk ~stage ~defs chunk n =
  let need = (n / 2) + 1 in
  if Batch.capacity !stage < need then stage := Batch.create ~capacity:need ();
  let b = !stage in
  Batch.clear b;
  let pos = ref 0 in
  let read_byte () =
    if !pos >= n then -1
    else begin
      let c = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      c
    end
  in
  let read_string k =
    if !pos + k > n then bad "truncated name";
    let s = Bytes.sub_string chunk !pos k in
    pos := !pos + k;
    s
  in
  let define id name = defs := (id, name) :: !defs in
  let fin = ref false in
  while not !fin do
    fill_batch_bytes b chunk pos n;
    if !pos >= n then fin := true
    else ignore (chunk_step ~read_byte ~read_string ~define b)
  done;
  validate_batch b;
  b

(* Salvage over a usable index: every chunk's boundaries are known, so a
   corrupt chunk is skipped exactly and the next one re-synchronizes the
   stream.  The footer's own CRC (version 2) is authoritative; on
   version-1 files detection falls back to decode errors and the
   index's event count. *)
let salvage_indexed ~report ic shs =
  let names = Hashtbl.create 64 in
  let stage = ref (Batch.create ~capacity:1024 ()) in
  let buf = ref Bytes.empty in
  let idx = ref 0 in
  let rec next () =
    if !idx >= Array.length shs then None
    else begin
      let ordinal = !idx in
      let sh = shs.(ordinal) in
      incr idx;
      let drop reason =
        report
          {
            drop_chunk = ordinal;
            drop_offset = sh.offset;
            drop_bytes = sh.bytes;
            drop_events = sh.events;
            drop_reason = reason;
          };
        next ()
      in
      In_channel.seek ic (Int64.of_int sh.offset);
      if Bytes.length !buf < sh.bytes then buf := Bytes.create sh.bytes;
      match really_input ic !buf 0 sh.bytes with
      | exception End_of_file -> drop "chunk truncated"
      | () ->
        let checksum_ok =
          sh.crc < 0 || Crc32c.digest !buf ~pos:0 ~len:sh.bytes = sh.crc
        in
        if not checksum_ok then
          drop
            (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
               sh.crc
               (Crc32c.digest !buf ~pos:0 ~len:sh.bytes))
        else begin
          let defs = ref [] in
          match decode_whole_chunk ~stage ~defs !buf sh.bytes with
          | exception Trace_stream.Decode_error msg -> drop msg
          | b ->
            if Batch.length b <> sh.events then
              drop
                (Printf.sprintf "decoded %d events where the index says %d"
                   (Batch.length b) sh.events)
            else begin
              List.iter
                (fun (id, name) -> Hashtbl.replace names id name)
                (List.rev !defs);
              Some b
            end
        end
    end
  in
  (names, next)

(* Salvage without an index, version 2: the frames are self-delimiting,
   so a checksum or record failure inside a frame skips exactly that
   frame.  Once the framing itself breaks (a corrupt length, a truncated
   payload) there is no boundary left to re-synchronize on: the rest of
   the file is reported as a single terminal drop. *)
let salvage_frames_v2 ~report ic =
  In_channel.seek ic 5L;
  let names = Hashtbl.create 64 in
  let stage = ref (Batch.create ~capacity:1024 ()) in
  let buf = ref Bytes.empty in
  let file_off = ref 5 in
  let ordinal = ref (-1) in
  let finished = ref false in
  let input_byte () =
    match In_channel.input_byte ic with
    | Some c ->
      incr file_off;
      c
    | None -> -1
  in
  let terminal offset reason =
    finished := true;
    report
      {
        drop_chunk = !ordinal + 1;
        drop_offset = offset;
        drop_bytes = -1;
        drop_events = -1;
        drop_reason = reason;
      };
    None
  in
  let rec next () =
    if !finished then None
    else begin
      let frame_off = !file_off in
      match read_uvarint input_byte with
      | exception Trace_stream.Decode_error msg -> terminal frame_off msg
      | 0 ->
        finished := true;
        (* Trailing bytes after the marker are the footer (already known
           to be unusable, or absent) — nothing left to salvage. *)
        None
      | paylen when paylen > max_chunk_payload ->
        terminal frame_off (Printf.sprintf "implausible chunk length %d" paylen)
      | paylen -> (
        let stored = ref 0 in
        let truncated = ref false in
        for i = 0 to 3 do
          match input_byte () with
          | -1 -> truncated := true
          | c -> stored := !stored lor (c lsl (8 * i))
        done;
        if !truncated then terminal frame_off "truncated chunk header"
        else begin
          if Bytes.length !buf < paylen then buf := Bytes.create paylen;
          match really_input ic !buf 0 paylen with
          | exception End_of_file -> terminal frame_off "truncated payload"
          | () ->
            file_off := !file_off + paylen;
            incr ordinal;
            let skip reason =
              report
                {
                  drop_chunk = !ordinal;
                  drop_offset = frame_off;
                  drop_bytes = paylen;
                  drop_events = -1;
                  drop_reason = reason;
                };
              next ()
            in
            let computed = Crc32c.digest !buf ~pos:0 ~len:paylen in
            if computed <> !stored then
              skip
                (Printf.sprintf
                   "checksum mismatch (stored %08x, computed %08x)" !stored
                   computed)
            else begin
              let defs = ref [] in
              match decode_whole_chunk ~stage ~defs !buf paylen with
              | exception Trace_stream.Decode_error msg -> skip msg
              | b ->
                List.iter
                  (fun (id, name) -> Hashtbl.replace names id name)
                  (List.rev !defs);
                Some b
            end
        end)
    end
  in
  (names, next)

(* Salvage of a version-1 stream without an index: there are no chunk
   boundaries to re-synchronize on, so the first malformation drops the
   rest of the file as one terminal region.  Batches delivered before
   the failure stand. *)
let salvage_v1_stream ~report ~chunk_bytes ~batch_size ic =
  In_channel.seek ic 5L;
  let names, src = batch_reader_v1 ~chunk_bytes ~batch_size ic in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else
        match src () with
        | batch -> batch
        | exception Trace_stream.Decode_error msg ->
          finished := true;
          report
            {
              drop_chunk = -1;
              drop_offset = -1;
              drop_bytes = -1;
              drop_events = -1;
              drop_reason = msg;
            };
          None )

let read ?(chunk_bytes = default_chunk) ?(batch_size = Batch.default_capacity)
    ?path ~on_corrupt ic =
  match on_corrupt with
  | `Fail -> batch_reader ~chunk_bytes ~batch_size ic
  | `Skip report -> (
    let trace_version = input_header ic in
    let total = Int64.to_int (In_channel.length ic) in
    let has_trailer =
      total >= 5 + 1 + 6 + index_trailer_bytes
      && begin
           In_channel.seek ic (Int64.of_int (total - 4));
           match really_input_string ic 4 with
           | s -> s = index_magic
           | exception End_of_file -> false
         end
    in
    if has_trailer then
      (* The trailer promises an index; it is the authority on chunk
         boundaries, so an unreadable footer is fatal even in salvage
         mode — without trusted boundaries a skip could deliver
         re-framed garbage as events. *)
      match shards ?path ic with
      | Some shs -> salvage_indexed ~report ic shs
      | None ->
        bad "cannot salvage %s: trailer present but index unreadable"
          (Option.value path ~default:"trace")
    else if trace_version >= 2 then salvage_frames_v2 ~report ic
    else salvage_v1_stream ~report ~chunk_bytes ~batch_size ic)

(* ----- whole-trace convenience ---------------------------------------- *)

let to_string ?(format_version = version)
    ?(routine_name = default_routine_name) (tr : Event.t Vec.t) =
  check_format_version format_version;
  let out = Buffer.create (16 + (4 * Vec.length tr)) in
  Buffer.add_string out magic;
  Buffer.add_char out (Char.chr format_version);
  let buf = Buffer.create 4096 in
  let encode = encoder buf ~routine_name in
  let flush_frame () =
    if format_version >= 2 && Buffer.length buf > 0 then begin
      let payload = Buffer.contents buf in
      let n = String.length payload in
      add_uvarint out n;
      add_le32 out (Crc32c.digest_string payload ~pos:0 ~len:n);
      Buffer.add_string out payload;
      Buffer.clear buf
    end
  in
  let batches = Trace_stream.batches_of_trace tr in
  let rec loop () =
    match batches () with
    | None -> ()
    | Some b ->
      Batch.iter
        (fun tag tid arg len ->
          encode tag tid arg len;
          if Buffer.length buf >= default_chunk then flush_frame ())
        b;
      loop ()
  in
  loop ();
  if format_version >= 2 then flush_frame () else Buffer.add_buffer out buf;
  Buffer.add_char out (Char.chr end_tag);
  Buffer.contents out

let of_string_v1 s =
  let pos = ref 5 in
  let read_byte () =
    if !pos >= String.length s then -1
    else begin
      let b = Char.code (String.unsafe_get s !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > String.length s then bad "truncated name";
    let sub = String.sub s !pos n in
    pos := !pos + n;
    sub
  in
  let names = ref [] in
  let define id name = names := (id, name) :: !names in
  let out = Vec.create () in
  let b = Batch.create () in
  let finished = ref false in
  while not !finished do
    Batch.clear b;
    finished := fill_batch ~read_byte ~read_string ~define b;
    Batch.iter_events (Vec.push out) b
  done;
  (out, List.rev !names)

let of_string_v2 s =
  let total = String.length s in
  let pos = ref 5 in
  let read_byte () =
    if !pos >= total then -1
    else begin
      let b = Char.code (String.unsafe_get s !pos) in
      incr pos;
      b
    end
  in
  let names = ref [] in
  let out = Vec.create () in
  let stage = ref (Batch.create ~capacity:1024 ()) in
  let finished = ref false in
  while not !finished do
    let frame_off = !pos in
    match read_uvarint read_byte with
    | exception Trace_stream.Decode_error _ when !pos = frame_off ->
      bad "truncated trace (missing end-of-trace marker)"
    | 0 ->
      (* End marker; accept end of input or a skipped footer. *)
      (match read_byte () with
      | -1 -> ()
      | c when c = Char.code index_magic.[0] ->
        for i = 1 to 3 do
          if read_byte () <> Char.code index_magic.[i] then
            bad "trailing data after end-of-trace marker"
        done;
        pos := total
      | _ -> bad "trailing data after end-of-trace marker");
      finished := true
    | paylen ->
      if paylen > max_chunk_payload then
        bad "chunk at byte %d: implausible length %d" frame_off paylen;
      if !pos + 4 + paylen > total then
        bad "chunk at byte %d: truncated" frame_off;
      let stored = ref 0 in
      for i = 0 to 3 do
        stored := !stored lor (Char.code s.[!pos + i] lsl (8 * i))
      done;
      pos := !pos + 4;
      let computed = Crc32c.digest_string s ~pos:!pos ~len:paylen in
      if computed <> !stored then
        bad "chunk at byte %d: checksum mismatch (stored %08x, computed %08x)"
          frame_off !stored computed;
      let defs = ref [] in
      let b =
        decode_whole_chunk ~stage ~defs
          (Bytes.unsafe_of_string (String.sub s !pos paylen))
          paylen
      in
      pos := !pos + paylen;
      (* [!defs] is newest-first within the chunk; prepending keeps the
         whole accumulator newest-first, undone by the final [rev]. *)
      names := !defs @ !names;
      Batch.iter_events (Vec.push out) b
  done;
  (out, List.rev !names)

let of_string s =
  try
    match parse_header s with
    | 1 -> Ok (of_string_v1 s)
    | _ -> Ok (of_string_v2 s)
  with Trace_stream.Decode_error msg -> Error msg

let detect ic =
  let start = In_channel.pos ic in
  let head = really_input_string ic (min 4 (String.length magic)) in
  In_channel.seek ic start;
  if head = magic then `Binary else `Text

let detect ic = try detect ic with End_of_file -> `Text
