(* Facade over the layered trace codec.  The layers, bottom up:

     {!Trace_wire}       varints, little-endian fields, [Decode_error]
     {!Trace_frame}      length + CRC32C framing of chunk payloads
     {!Trace_transform}  version-3 payload transforms (packing + entropy)
     {!Trace_record}     plain event records (versions 1 and 2)
     {!Trace_packed}     packed event coding (version 3)
     {!Trace_container}  header/version negotiation, ATRI shard index

   This module wires them into the public reader/writer surface and owns
   the policies that cut across layers: when chunks flush, how salvage
   re-synchronizes, and how the version dispatch picks an event layer.
   Formats 1 and 2 are byte-for-byte what the pre-split codec produced
   (pinned by the golden tests); format 3 reuses the v2 framing and
   index around transformed payloads. *)

module Vec = Aprof_util.Vec
module Crc32c = Aprof_util.Crc32c
module Batch = Event.Batch

let magic = Trace_container.magic
let version = Trace_container.version
let max_version = Trace_container.max_version
let default_chunk = Trace_frame.default_chunk
let max_chunk_payload = Trace_frame.max_chunk_payload
let index_magic = Trace_container.index_magic
let index_trailer_bytes = Trace_container.index_trailer_bytes
let bad = Trace_wire.bad
let read_uvarint = Trace_wire.read_uvarint
let uvarint_size = Trace_wire.uvarint_size
let end_tag = Trace_record.end_tag
let step_record = Trace_record.step_record
let chunk_step = Trace_record.chunk_step
let validate_batch = Trace_record.validate_batch
let fill_batch = Trace_record.fill_batch
let fill_batch_bytes = Trace_record.fill_batch_bytes
let fill_batch_bytes_keep = Trace_record.fill_batch_bytes_keep
let parse_header = Trace_container.parse_header
let input_header = Trace_container.input_header
let default_routine_name = Trace_record.default_routine_name
let file_version ic =
  In_channel.seek ic 0L;
  input_header ic

(* A version-3 chunk also flushes on event count: repeat suppression can
   swallow millions of events into a few bytes, and an unbounded chunk
   would destroy the granularity the work-stealing replay shards by.
   The decode side caps how far one chunk may expand, bounding what a
   corrupt repeat count can make a reader allocate. *)
let v3_chunk_events = 1 lsl 16
let max_chunk_events = 1 lsl 27

(* ----- streaming writer ----------------------------------------------- *)

(* Version 3: events flow through the packed encoder; each flushed chunk
   is sealed by the transform layer and framed exactly like a version-2
   chunk, so the index entries describe the *stored* payload. *)
let batch_writer_v3 ~chunk_bytes ~index ~entropy ~routine_name oc =
  output_string oc magic;
  output_char oc (Char.chr 3);
  let enc = Trace_packed.create_encoder () in
  let defined = Hashtbl.create 64 in
  let chunks = ref [] in
  let events = ref 0 in
  let tag_mask = ref 0 in
  let tid_set : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let last_tid = ref min_int in
  let flush_chunk () =
    if !events > 0 then begin
      let tids =
        Hashtbl.fold (fun tid () acc -> tid :: acc) tid_set []
        |> List.sort compare |> Array.of_list
      in
      let packed = Trace_packed.take_chunk enc in
      let stored = Trace_transform.seal ~entropy packed in
      let crc = Trace_frame.output_frame oc stored in
      chunks :=
        {
          Trace_container.c_bytes = Bytes.length stored;
          c_events = !events;
          c_tag_mask = !tag_mask;
          c_crc = crc;
          c_tids = tids;
        }
        :: !chunks;
      events := 0;
      tag_mask := 0;
      Hashtbl.reset tid_set;
      last_tid := min_int
    end
  in
  let emit_batch b =
    Batch.iter
      (fun tag tid arg len ->
        if tag = Batch.tag_call && not (Hashtbl.mem defined arg) then begin
          Hashtbl.add defined arg ();
          Trace_packed.add_def enc arg (routine_name arg)
        end;
        Trace_packed.add_event enc ~tag ~tid ~arg ~len;
        incr events;
        tag_mask := !tag_mask lor (1 lsl tag);
        if tid <> !last_tid then begin
          last_tid := tid;
          Hashtbl.replace tid_set tid ()
        end;
        if
          Trace_packed.chunk_length enc >= chunk_bytes
          || !events >= v3_chunk_events
        then flush_chunk ())
      b
  in
  let close_batch () =
    flush_chunk ();
    let frame_bytes (c : Trace_container.chunk_entry) =
      uvarint_size c.c_bytes + 4 + c.c_bytes
    in
    let marker_off =
      5 + List.fold_left (fun a c -> a + frame_bytes c) 0 !chunks
    in
    output_char oc (Char.chr end_tag);
    if index then begin
      let footer_off = marker_off + 1 in
      let buf = Buffer.create 512 in
      Trace_container.add_footer buf ~format_version:3 (List.rev !chunks);
      Trace_wire.add_le64 buf footer_off;
      Buffer.add_string buf index_magic;
      Buffer.output_buffer oc buf
    end
  in
  { Trace_stream.emit_batch; close_batch }

let batch_writer ?(chunk_bytes = default_chunk) ?(index = true)
    ?(format_version = version) ?(entropy = false)
    ?(routine_name = default_routine_name) oc =
  Trace_container.check_format_version format_version;
  if format_version >= 3 then
    batch_writer_v3 ~chunk_bytes ~index ~entropy ~routine_name oc
  else begin
    (* The header goes straight to the channel so that the buffer — and
       therefore each recorded chunk length — holds record bytes only. *)
    output_string oc magic;
    output_char oc (Char.chr format_version);
    let buf = Buffer.create (chunk_bytes + 256) in
    let encode = Trace_record.encoder buf ~routine_name in
    (* Per-chunk stats for the index.  The last-tid cache keeps the table
       lookup off the hot path: consecutive events of one thread are the
       overwhelmingly common case. *)
    let chunks = ref [] in
    let events = ref 0 in
    let tag_mask = ref 0 in
    let tid_set : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let last_tid = ref min_int in
    let flush_chunk () =
      if Buffer.length buf > 0 then begin
        let tids =
          Hashtbl.fold (fun tid () acc -> tid :: acc) tid_set []
          |> List.sort compare |> Array.of_list
        in
        let payload = Buffer.to_bytes buf in
        let nbytes = Bytes.length payload in
        let crc =
          if format_version >= 2 then Crc32c.digest payload ~pos:0 ~len:nbytes
          else -1
        in
        chunks :=
          {
            Trace_container.c_bytes = nbytes;
            c_events = !events;
            c_tag_mask = !tag_mask;
            c_crc = crc;
            c_tids = tids;
          }
          :: !chunks;
        events := 0;
        tag_mask := 0;
        Hashtbl.reset tid_set;
        last_tid := min_int;
        if format_version >= 2 then begin
          Trace_wire.output_uvarint oc nbytes;
          Trace_wire.output_le32 oc crc
        end;
        output_bytes oc payload;
        Buffer.clear buf
      end
    in
    let emit_batch b =
      Batch.iter
        (fun tag tid arg len ->
          encode tag tid arg len;
          incr events;
          tag_mask := !tag_mask lor (1 lsl tag);
          if tid <> !last_tid then begin
            last_tid := tid;
            Hashtbl.replace tid_set tid ()
          end;
          if Buffer.length buf >= chunk_bytes then flush_chunk ())
        b
    in
    let close_batch () =
      flush_chunk ();
      (* Chunk [i]'s payload starts at [5 + earlier frames]; a version-2
         frame adds a length varint and a 4-byte CRC before the payload. *)
      let frame_bytes (c : Trace_container.chunk_entry) =
        if format_version >= 2 then uvarint_size c.c_bytes + 4 + c.c_bytes
        else c.c_bytes
      in
      let marker_off =
        5 + List.fold_left (fun a c -> a + frame_bytes c) 0 !chunks
      in
      output_char oc (Char.chr end_tag);
      if index then begin
        let footer_off = marker_off + 1 in
        Trace_container.add_footer buf ~format_version (List.rev !chunks);
        Trace_wire.add_le64 buf footer_off;
        Buffer.add_string buf index_magic;
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end
    in
    { Trace_stream.emit_batch; close_batch }
  end

let writer ?chunk_bytes ?index ?format_version ?entropy ?routine_name oc =
  Trace_stream.sink_of_batches
    (batch_writer ?chunk_bytes ?index ?format_version ?entropy ?routine_name
       oc)

(* ----- streaming reader ----------------------------------------------- *)

(* Version 1: a bare record stream read through a sliding window of
   [chunk_bytes]; nothing in the format marks the writer's flush
   boundaries, so the window is just an I/O buffer. *)
let batch_reader_v1 ~chunk_bytes ~batch_size ic =
  let chunk = Bytes.create (max 1 chunk_bytes) in
  let pos = ref 0 in
  let len = ref 0 in
  let refill () =
    len := In_channel.input ic chunk 0 (Bytes.length chunk);
    pos := 0
  in
  let read_byte () =
    if !pos >= !len then refill ();
    if !len = 0 then -1
    else begin
      let b = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    let b = Bytes.create n in
    let filled = ref 0 in
    while !filled < n do
      if !pos >= !len then begin
        refill ();
        if !len = 0 then bad "truncated name"
      end;
      let take = min (n - !filled) (!len - !pos) in
      Bytes.blit chunk !pos b !filled take;
      pos := !pos + take;
      filled := !filled + take
    done;
    Bytes.unsafe_to_string b
  in
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let finished = ref false in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      fill_batch_bytes b chunk pos !len;
      if not (Batch.is_full b) then
        fin := step_record ~read_byte ~read_string ~define b
    done;
    validate_batch b;
    !fin
  in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

(* Version 2: the stream is a sequence of length-prefixed, checksummed
   frames.  Each frame's payload is read whole and verified against its
   CRC32C *before* any record decoding, so the [unsafe_get] fast path
   never runs over corrupt bytes; records never span frames. *)
let batch_reader_v2 ~batch_size ic =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let chunk = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let file_off = ref 5 in
  let ordinal = ref (-1) in
  let frames_done = ref false in
  (* (payload bytes, crc) of every frame streamed so far, newest first:
     cross-checked against the index footer at the end of the trace. *)
  let frames = ref [] in
  let input_byte () =
    match In_channel.input_byte ic with
    | Some c ->
      incr file_off;
      c
    | None -> -1
  in
  (* Pull the next frame into [chunk]; false once the marker is seen. *)
  let advance () =
    let frame_off = !file_off in
    let paylen =
      try read_uvarint input_byte
      with Trace_stream.Decode_error _ when !file_off = frame_off ->
        bad "truncated trace (missing end-of-trace marker)"
    in
    if paylen = 0 then begin
      Trace_container.check_streamed_footer ~trace_version:2 ~input_byte
        ~footer_off:!file_off ~frames:(List.rev !frames);
      frames_done := true;
      false
    end
    else begin
      if paylen > max_chunk_payload then
        bad "chunk %d at byte %d: implausible length %d" (!ordinal + 1)
          frame_off paylen;
      let stored = ref 0 in
      for i = 0 to 3 do
        match input_byte () with
        | -1 ->
          bad "chunk %d at byte %d: truncated header" (!ordinal + 1) frame_off
        | c -> stored := !stored lor (c lsl (8 * i))
      done;
      if Bytes.length !chunk < paylen then chunk := Bytes.create paylen;
      (try really_input ic !chunk 0 paylen
       with End_of_file ->
         bad "chunk %d at byte %d: truncated payload" (!ordinal + 1) frame_off);
      file_off := !file_off + paylen;
      incr ordinal;
      let computed = Crc32c.digest !chunk ~pos:0 ~len:paylen in
      if computed <> !stored then
        bad
          "chunk %d at byte %d: checksum mismatch (stored %08x, computed %08x)"
          !ordinal frame_off !stored computed;
      frames := (paylen, !stored) :: !frames;
      pos := 0;
      len := paylen;
      true
    end
  in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let c = Char.code (Bytes.unsafe_get !chunk !pos) in
      incr pos;
      c
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !chunk !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then begin
        if !frames_done || not (advance ()) then fin := true
      end
      else begin
        fill_batch_bytes b !chunk pos !len;
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

(* Version 3: same frame walk as version 2, but each verified payload is
   opened by the transform layer and decoded by the packed event layer,
   which keeps its own cursor — the fill loop just alternates between
   "drain the open chunk into the batch" and "advance to the next
   frame". *)
let batch_reader_v3 ~batch_size ic =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:(max batch_size Trace_packed.pat_kmax) () in
  let dec = Trace_packed.create_decoder () in
  let scratch = ref Bytes.empty in
  let chunk = ref Bytes.empty in
  let file_off = ref 5 in
  let ordinal = ref (-1) in
  let frames_done = ref false in
  let chunk_active = ref false in
  let frames = ref [] in
  let input_byte () =
    match In_channel.input_byte ic with
    | Some c ->
      incr file_off;
      c
    | None -> -1
  in
  let advance () =
    let frame_off = !file_off in
    let paylen =
      try read_uvarint input_byte
      with Trace_stream.Decode_error _ when !file_off = frame_off ->
        bad "truncated trace (missing end-of-trace marker)"
    in
    if paylen = 0 then begin
      Trace_container.check_streamed_footer ~trace_version:3 ~input_byte
        ~footer_off:!file_off ~frames:(List.rev !frames);
      frames_done := true;
      false
    end
    else begin
      if paylen > max_chunk_payload then
        bad "chunk %d at byte %d: implausible length %d" (!ordinal + 1)
          frame_off paylen;
      let stored = ref 0 in
      for i = 0 to 3 do
        match input_byte () with
        | -1 ->
          bad "chunk %d at byte %d: truncated header" (!ordinal + 1) frame_off
        | c -> stored := !stored lor (c lsl (8 * i))
      done;
      if Bytes.length !chunk < paylen then chunk := Bytes.create paylen;
      (try really_input ic !chunk 0 paylen
       with End_of_file ->
         bad "chunk %d at byte %d: truncated payload" (!ordinal + 1) frame_off);
      file_off := !file_off + paylen;
      incr ordinal;
      let computed = Crc32c.digest !chunk ~pos:0 ~len:paylen in
      if computed <> !stored then
        bad
          "chunk %d at byte %d: checksum mismatch (stored %08x, computed %08x)"
          !ordinal frame_off !stored computed;
      frames := (paylen, !stored) :: !frames;
      let pbuf, ppos, plen =
        Trace_transform.open_payload !chunk ~pos:0 ~len:paylen ~scratch
      in
      Trace_packed.start_chunk dec pbuf ~pos:ppos ~len:plen;
      chunk_active := true;
      true
    end
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    let full = ref false in
    while (not !fin) && not !full do
      if !chunk_active then begin
        if Trace_packed.fill dec ~define b then chunk_active := false
        else full := true
      end
      else if !frames_done || not (advance ()) then fin := true
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

let batch_reader ?(chunk_bytes = default_chunk)
    ?(batch_size = Batch.default_capacity) ic =
  match input_header ic with
  | 1 -> batch_reader_v1 ~chunk_bytes ~batch_size ic
  | 2 -> batch_reader_v2 ~batch_size ic
  | _ -> batch_reader_v3 ~batch_size ic

let reader ?chunk_bytes ic =
  let names, batches = batch_reader ?chunk_bytes ic in
  (names, Trace_stream.events_of_batches batches)

(* ----- shard index ----------------------------------------------------- *)

type shard = Trace_container.shard = {
  offset : int;
  bytes : int;
  events : int;
  tag_mask : int;
  crc : int;
  tids : int array;
}

let shards = Trace_container.shards

(* Version <= 2 seeking reader over an explicit chunk list. *)
let sharded_reader_v2 ~path ~batch_size ic shs ~select =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let remaining = ref (List.filter select (Array.to_list shs)) in
  let chunk = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let advance () =
    match !remaining with
    | [] -> false
    | sh :: rest ->
      remaining := rest;
      In_channel.seek ic (Int64.of_int sh.offset);
      let c = Bytes.create sh.bytes in
      (try really_input ic c 0 sh.bytes
       with End_of_file ->
         bad "cannot replay %s: chunk at byte %d truncated" path sh.offset);
      (* Verify before decoding: the fast path trusts these bytes. *)
      if sh.crc >= 0 then begin
        let computed = Crc32c.digest c ~pos:0 ~len:sh.bytes in
        if computed <> sh.crc then
          bad
            "cannot replay %s: chunk at byte %d: checksum mismatch (stored \
             %08x, computed %08x)"
            path sh.offset sh.crc computed
      end;
      chunk := c;
      pos := 0;
      len := sh.bytes;
      true
  in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let b = Char.code (Bytes.unsafe_get !chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !chunk !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then begin
        if not (advance ()) then fin := true
      end
      else begin
        fill_batch_bytes b !chunk pos !len;
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

(* Version 3 twin: payloads go through the transform layer and the
   packed decoder between the seek and the batch. *)
let sharded_reader_v3 ~path ~batch_size ic shs ~select =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:(max batch_size Trace_packed.pat_kmax) () in
  let dec = Trace_packed.create_decoder () in
  let scratch = ref Bytes.empty in
  let remaining = ref (List.filter select (Array.to_list shs)) in
  let chunk_active = ref false in
  let advance () =
    match !remaining with
    | [] -> false
    | sh :: rest ->
      remaining := rest;
      In_channel.seek ic (Int64.of_int sh.offset);
      let c = Bytes.create sh.bytes in
      (try really_input ic c 0 sh.bytes
       with End_of_file ->
         bad "cannot replay %s: chunk at byte %d truncated" path sh.offset);
      if sh.crc >= 0 then begin
        let computed = Crc32c.digest c ~pos:0 ~len:sh.bytes in
        if computed <> sh.crc then
          bad
            "cannot replay %s: chunk at byte %d: checksum mismatch (stored \
             %08x, computed %08x)"
            path sh.offset sh.crc computed
      end;
      let pbuf, ppos, plen =
        Trace_transform.open_payload c ~pos:0 ~len:sh.bytes ~scratch
      in
      Trace_packed.start_chunk dec pbuf ~pos:ppos ~len:plen;
      chunk_active := true;
      true
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    let full = ref false in
    while (not !fin) && not !full do
      if !chunk_active then begin
        if Trace_packed.fill dec ~define b then chunk_active := false
        else full := true
      end
      else if not (advance ()) then fin := true
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

let sharded_reader ?(path = "trace") ?(batch_size = Batch.default_capacity) ic
    shs ~select =
  let trace_version = file_version ic in
  if trace_version >= 3 then sharded_reader_v3 ~path ~batch_size ic shs ~select
  else sharded_reader_v2 ~path ~batch_size ic shs ~select

let seek_chunk ?path ?batch_size ic sh =
  sharded_reader ?path ?batch_size ic [| sh |] ~select:(fun _ -> true)

(* [sharded_reader] with the chunk list supplied one chunk at a time,
   and the batch / byte buffer / name table reused across chunks: the
   work-stealing engine does not know its chunk sequence up front, and a
   fresh seek_chunk per claimed chunk would re-allocate all three. *)
let chunk_session_v2 ~batch_size ?keep ic =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let buf = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let c = Char.code (Bytes.unsafe_get !buf !pos) in
      incr pos;
      c
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !buf !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then fin := true
      else begin
        (match keep with
        | None -> fill_batch_bytes b !buf pos !len
        | Some keep -> fill_batch_bytes_keep b !buf pos !len ~keep);
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ?keep ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let read (sh : shard) =
    if Bytes.length !buf < sh.bytes then buf := Bytes.create sh.bytes;
    In_channel.seek ic (Int64.of_int sh.offset);
    (try really_input ic !buf 0 sh.bytes
     with End_of_file -> bad "chunk at byte %d truncated" sh.offset);
    if sh.crc >= 0 then begin
      let computed = Crc32c.digest !buf ~pos:0 ~len:sh.bytes in
      if computed <> sh.crc then
        bad "chunk at byte %d: checksum mismatch (stored %08x, computed %08x)"
          sh.offset sh.crc computed
    end;
    pos := 0;
    len := sh.bytes;
    let finished = ref false in
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end
  in
  (names, read)

let chunk_session_v3 ~batch_size ?keep ic =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:(max batch_size Trace_packed.pat_kmax) () in
  let dec = Trace_packed.create_decoder () in
  let scratch = ref Bytes.empty in
  let buf = ref Bytes.empty in
  let read (sh : shard) =
    if Bytes.length !buf < sh.bytes then buf := Bytes.create sh.bytes;
    In_channel.seek ic (Int64.of_int sh.offset);
    (try really_input ic !buf 0 sh.bytes
     with End_of_file -> bad "chunk at byte %d truncated" sh.offset);
    if sh.crc >= 0 then begin
      let computed = Crc32c.digest !buf ~pos:0 ~len:sh.bytes in
      if computed <> sh.crc then
        bad "chunk at byte %d: checksum mismatch (stored %08x, computed %08x)"
          sh.offset sh.crc computed
    end;
    let pbuf, ppos, plen =
      Trace_transform.open_payload !buf ~pos:0 ~len:sh.bytes ~scratch
    in
    Trace_packed.start_chunk dec pbuf ~pos:ppos ~len:plen;
    let finished = ref false in
    fun () ->
      if !finished then None
      else begin
        Batch.clear b;
        finished := Trace_packed.fill dec ?keep ~define b;
        validate_batch b;
        if Batch.is_empty b then None else Some b
      end
  in
  (names, read)

let chunk_session ?(batch_size = Batch.default_capacity) ?keep ic =
  let trace_version = file_version ic in
  if trace_version >= 3 then chunk_session_v3 ~batch_size ?keep ic
  else chunk_session_v2 ~batch_size ?keep ic

(* ----- salvage reader -------------------------------------------------- *)

type drop = {
  drop_chunk : int;
  drop_offset : int;
  drop_bytes : int;
  drop_events : int;
  drop_reason : string;
}

(* Decode the whole plain payload [chunk[0..n)] into [stage] (grown to
   hold every possible record: the smallest event record is two bytes),
   so a chunk is delivered all-or-nothing.  Definitions are staged into
   [defs] and only committed by the caller once the chunk decodes
   cleanly.  Raises [Decode_error] on any malformation. *)
let decode_whole_chunk ~stage ~defs chunk n =
  let need = (n / 2) + 1 in
  if Batch.capacity !stage < need then stage := Batch.create ~capacity:need ();
  let b = !stage in
  Batch.clear b;
  let pos = ref 0 in
  let read_byte () =
    if !pos >= n then -1
    else begin
      let c = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      c
    end
  in
  let read_string k =
    if !pos + k > n then bad "truncated name";
    let s = Bytes.sub_string chunk !pos k in
    pos := !pos + k;
    s
  in
  let define id name = defs := (id, name) :: !defs in
  let fin = ref false in
  while not !fin do
    fill_batch_bytes b chunk pos n;
    if !pos >= n then fin := true
    else ignore (chunk_step ~read_byte ~read_string ~define b)
  done;
  validate_batch b;
  b

(* Version-3 twin: open the transform envelope, then drain the packed
   decoder into [stage], doubling it as repeats expand — up to a hard
   cap, so a corrupt repeat count cannot make salvage allocate without
   bound. *)
let decode_whole_chunk_v3 ~dec ~scratch ~stage ~defs ~events_hint chunk n =
  let pbuf, ppos, plen =
    Trace_transform.open_payload chunk ~pos:0 ~len:n ~scratch
  in
  Trace_packed.start_chunk dec pbuf ~pos:ppos ~len:plen;
  let want =
    if events_hint > 0 then min events_hint max_chunk_events else 1024
  in
  if Batch.capacity !stage < max want 1024 then
    stage := Batch.create ~capacity:(max want 1024) ();
  Batch.clear !stage;
  let define id name = defs := (id, name) :: !defs in
  let fin = ref false in
  while not !fin do
    if Trace_packed.fill dec ~define !stage then fin := true
    else begin
      let b = !stage in
      let cap = Batch.capacity b in
      if cap >= max_chunk_events then
        bad "packed chunk decodes to more than %d events" max_chunk_events;
      let grown =
        Batch.create ~capacity:(min (2 * cap) max_chunk_events) ()
      in
      let len = Batch.length b in
      Array.blit (Batch.tags b) 0 (Batch.tags grown) 0 len;
      Array.blit (Batch.tids b) 0 (Batch.tids grown) 0 len;
      Array.blit (Batch.args b) 0 (Batch.args grown) 0 len;
      Array.blit (Batch.lens b) 0 (Batch.lens grown) 0 len;
      Batch.unsafe_set_length grown len;
      stage := grown
    end
  done;
  validate_batch !stage;
  !stage

(* [decode ~defs chunk n ~events_hint] closures bind the right event
   layer (and its reusable buffers) for the trace version being
   salvaged. *)
let v2_chunk_decoder () =
  let stage = ref (Batch.create ~capacity:1024 ()) in
  fun ~defs chunk n ~events_hint:_ -> decode_whole_chunk ~stage ~defs chunk n

let v3_chunk_decoder () =
  let dec = Trace_packed.create_decoder () in
  let scratch = ref Bytes.empty in
  let stage = ref (Batch.create ~capacity:1024 ()) in
  fun ~defs chunk n ~events_hint ->
    decode_whole_chunk_v3 ~dec ~scratch ~stage ~defs ~events_hint chunk n

(* The whole-chunk decoders, exported for consumers that receive framed
   chunks from somewhere other than a seekable file — the socket-fed
   reader ({!Trace_net}) hands each CRC-verified payload to one of
   these. *)
let chunk_decoder ~version () =
  if version >= 3 then v3_chunk_decoder () else v2_chunk_decoder ()

(* Salvage over a usable index: every chunk's boundaries are known, so a
   corrupt chunk is skipped exactly and the next one re-synchronizes the
   stream.  The footer's own CRC (version >= 2) is authoritative; on
   version-1 files detection falls back to decode errors and the
   index's event count. *)
let salvage_indexed ~report ~decode ic shs =
  let names = Hashtbl.create 64 in
  let buf = ref Bytes.empty in
  let idx = ref 0 in
  let rec next () =
    if !idx >= Array.length shs then None
    else begin
      let ordinal = !idx in
      let sh = shs.(ordinal) in
      incr idx;
      let drop reason =
        report
          {
            drop_chunk = ordinal;
            drop_offset = sh.offset;
            drop_bytes = sh.bytes;
            drop_events = sh.events;
            drop_reason = reason;
          };
        next ()
      in
      In_channel.seek ic (Int64.of_int sh.offset);
      if Bytes.length !buf < sh.bytes then buf := Bytes.create sh.bytes;
      match really_input ic !buf 0 sh.bytes with
      | exception End_of_file -> drop "chunk truncated"
      | () ->
        let checksum_ok =
          sh.crc < 0 || Crc32c.digest !buf ~pos:0 ~len:sh.bytes = sh.crc
        in
        if not checksum_ok then
          drop
            (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
               sh.crc
               (Crc32c.digest !buf ~pos:0 ~len:sh.bytes))
        else begin
          let defs = ref [] in
          match decode ~defs !buf sh.bytes ~events_hint:sh.events with
          | exception Trace_stream.Decode_error msg -> drop msg
          | b ->
            if Batch.length b <> sh.events then
              drop
                (Printf.sprintf "decoded %d events where the index says %d"
                   (Batch.length b) sh.events)
            else begin
              List.iter
                (fun (id, name) -> Hashtbl.replace names id name)
                (List.rev !defs);
              Some b
            end
        end
    end
  in
  (names, next)

(* Salvage without an index, version >= 2: the frames are
   self-delimiting, so a checksum or payload failure inside a frame
   skips exactly that frame.  Once the framing itself breaks (a corrupt
   length, a truncated payload) there is no boundary left to
   re-synchronize on: the rest of the file is reported as a single
   terminal drop. *)
let salvage_frames ~report ~decode ic =
  In_channel.seek ic 5L;
  let names = Hashtbl.create 64 in
  let buf = ref Bytes.empty in
  let file_off = ref 5 in
  let ordinal = ref (-1) in
  let finished = ref false in
  let input_byte () =
    match In_channel.input_byte ic with
    | Some c ->
      incr file_off;
      c
    | None -> -1
  in
  let terminal offset reason =
    finished := true;
    report
      {
        drop_chunk = !ordinal + 1;
        drop_offset = offset;
        drop_bytes = -1;
        drop_events = -1;
        drop_reason = reason;
      };
    None
  in
  let rec next () =
    if !finished then None
    else begin
      let frame_off = !file_off in
      match read_uvarint input_byte with
      | exception Trace_stream.Decode_error msg -> terminal frame_off msg
      | 0 ->
        finished := true;
        (* Trailing bytes after the marker are the footer (already known
           to be unusable, or absent) — nothing left to salvage. *)
        None
      | paylen when paylen > max_chunk_payload ->
        terminal frame_off (Printf.sprintf "implausible chunk length %d" paylen)
      | paylen -> (
        let stored = ref 0 in
        let truncated = ref false in
        for i = 0 to 3 do
          match input_byte () with
          | -1 -> truncated := true
          | c -> stored := !stored lor (c lsl (8 * i))
        done;
        if !truncated then terminal frame_off "truncated chunk header"
        else begin
          if Bytes.length !buf < paylen then buf := Bytes.create paylen;
          match really_input ic !buf 0 paylen with
          | exception End_of_file -> terminal frame_off "truncated payload"
          | () ->
            file_off := !file_off + paylen;
            incr ordinal;
            let skip reason =
              report
                {
                  drop_chunk = !ordinal;
                  drop_offset = frame_off;
                  drop_bytes = paylen;
                  drop_events = -1;
                  drop_reason = reason;
                };
              next ()
            in
            let computed = Crc32c.digest !buf ~pos:0 ~len:paylen in
            if computed <> !stored then
              skip
                (Printf.sprintf
                   "checksum mismatch (stored %08x, computed %08x)" !stored
                   computed)
            else begin
              let defs = ref [] in
              match decode ~defs !buf paylen ~events_hint:(-1) with
              | exception Trace_stream.Decode_error msg -> skip msg
              | b ->
                List.iter
                  (fun (id, name) -> Hashtbl.replace names id name)
                  (List.rev !defs);
                Some b
            end
        end)
    end
  in
  (names, next)

(* Salvage of a version-1 stream without an index: there are no chunk
   boundaries to re-synchronize on, so the first malformation drops the
   rest of the file as one terminal region.  Batches delivered before
   the failure stand. *)
let salvage_v1_stream ~report ~chunk_bytes ~batch_size ic =
  In_channel.seek ic 5L;
  let names, src = batch_reader_v1 ~chunk_bytes ~batch_size ic in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else
        match src () with
        | batch -> batch
        | exception Trace_stream.Decode_error msg ->
          finished := true;
          report
            {
              drop_chunk = -1;
              drop_offset = -1;
              drop_bytes = -1;
              drop_events = -1;
              drop_reason = msg;
            };
          None )

let read ?(chunk_bytes = default_chunk) ?(batch_size = Batch.default_capacity)
    ?path ~on_corrupt ic =
  match on_corrupt with
  | `Fail -> batch_reader ~chunk_bytes ~batch_size ic
  | `Skip report -> (
    let trace_version = input_header ic in
    let total = Int64.to_int (In_channel.length ic) in
    let has_trailer =
      total >= 5 + 1 + 6 + index_trailer_bytes
      && begin
           In_channel.seek ic (Int64.of_int (total - 4));
           match really_input_string ic 4 with
           | s -> s = index_magic
           | exception End_of_file -> false
         end
    in
    let decode =
      if trace_version >= 3 then v3_chunk_decoder () else v2_chunk_decoder ()
    in
    if has_trailer then
      (* The trailer promises an index; it is the authority on chunk
         boundaries, so an unreadable footer is fatal even in salvage
         mode — without trusted boundaries a skip could deliver
         re-framed garbage as events. *)
      match shards ?path ic with
      | Some shs -> salvage_indexed ~report ~decode ic shs
      | None ->
        bad "cannot salvage %s: trailer present but index unreadable"
          (Option.value path ~default:"trace")
    else if trace_version >= 2 then salvage_frames ~report ~decode ic
    else salvage_v1_stream ~report ~chunk_bytes ~batch_size ic)

(* ----- whole-trace convenience ---------------------------------------- *)

let to_string ?(format_version = version) ?(entropy = false)
    ?(routine_name = default_routine_name) (tr : Event.t Vec.t) =
  Trace_container.check_format_version format_version;
  if format_version >= 3 then begin
    let out = Buffer.create (16 + (4 * Vec.length tr)) in
    Buffer.add_string out magic;
    Buffer.add_char out (Char.chr 3);
    let enc = Trace_packed.create_encoder () in
    let defined = Hashtbl.create 64 in
    let events = ref 0 in
    let flush_frame () =
      if !events > 0 then begin
        let packed = Trace_packed.take_chunk enc in
        let stored = Trace_transform.seal ~entropy packed in
        Trace_frame.add_frame out (Bytes.unsafe_to_string stored);
        events := 0
      end
    in
    let batches = Trace_stream.batches_of_trace tr in
    let rec loop () =
      match batches () with
      | None -> ()
      | Some b ->
        Batch.iter
          (fun tag tid arg len ->
            if tag = Batch.tag_call && not (Hashtbl.mem defined arg) then begin
              Hashtbl.add defined arg ();
              Trace_packed.add_def enc arg (routine_name arg)
            end;
            Trace_packed.add_event enc ~tag ~tid ~arg ~len;
            incr events;
            if
              Trace_packed.chunk_length enc >= default_chunk
              || !events >= v3_chunk_events
            then flush_frame ())
          b;
        loop ()
    in
    loop ();
    flush_frame ();
    Buffer.add_char out (Char.chr end_tag);
    Buffer.contents out
  end
  else begin
    let out = Buffer.create (16 + (4 * Vec.length tr)) in
    Buffer.add_string out magic;
    Buffer.add_char out (Char.chr format_version);
    let buf = Buffer.create 4096 in
    let encode = Trace_record.encoder buf ~routine_name in
    let flush_frame () =
      if format_version >= 2 && Buffer.length buf > 0 then begin
        let payload = Buffer.contents buf in
        Trace_frame.add_frame out payload;
        Buffer.clear buf
      end
    in
    let batches = Trace_stream.batches_of_trace tr in
    let rec loop () =
      match batches () with
      | None -> ()
      | Some b ->
        Batch.iter
          (fun tag tid arg len ->
            encode tag tid arg len;
            if Buffer.length buf >= default_chunk then flush_frame ())
          b;
        loop ()
    in
    loop ();
    if format_version >= 2 then flush_frame () else Buffer.add_buffer out buf;
    Buffer.add_char out (Char.chr end_tag);
    Buffer.contents out
  end

let of_string_v1 s =
  let pos = ref 5 in
  let read_byte () =
    if !pos >= String.length s then -1
    else begin
      let b = Char.code (String.unsafe_get s !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > String.length s then bad "truncated name";
    let sub = String.sub s !pos n in
    pos := !pos + n;
    sub
  in
  let names = ref [] in
  let define id name = names := (id, name) :: !names in
  let out = Vec.create () in
  let b = Batch.create () in
  let finished = ref false in
  while not !finished do
    Batch.clear b;
    finished := fill_batch ~read_byte ~read_string ~define b;
    Batch.iter_events (Vec.push out) b
  done;
  (out, List.rev !names)

let of_string_framed ~decode s =
  let total = String.length s in
  let pos = ref 5 in
  let read_byte () =
    if !pos >= total then -1
    else begin
      let b = Char.code (String.unsafe_get s !pos) in
      incr pos;
      b
    end
  in
  let names = ref [] in
  let out = Vec.create () in
  let finished = ref false in
  while not !finished do
    let frame_off = !pos in
    match read_uvarint read_byte with
    | exception Trace_stream.Decode_error _ when !pos = frame_off ->
      bad "truncated trace (missing end-of-trace marker)"
    | 0 ->
      (* End marker; accept end of input or a skipped footer. *)
      (match read_byte () with
      | -1 -> ()
      | c when c = Char.code index_magic.[0] ->
        for i = 1 to 3 do
          if read_byte () <> Char.code index_magic.[i] then
            bad "trailing data after end-of-trace marker"
        done;
        pos := total
      | _ -> bad "trailing data after end-of-trace marker");
      finished := true
    | paylen ->
      if paylen > max_chunk_payload then
        bad "chunk at byte %d: implausible length %d" frame_off paylen;
      if !pos + 4 + paylen > total then
        bad "chunk at byte %d: truncated" frame_off;
      let stored = ref 0 in
      for i = 0 to 3 do
        stored := !stored lor (Char.code s.[!pos + i] lsl (8 * i))
      done;
      pos := !pos + 4;
      let computed = Crc32c.digest_string s ~pos:!pos ~len:paylen in
      if computed <> !stored then
        bad "chunk at byte %d: checksum mismatch (stored %08x, computed %08x)"
          frame_off !stored computed;
      let defs = ref [] in
      let b =
        decode ~defs
          (Bytes.unsafe_of_string (String.sub s !pos paylen))
          paylen ~events_hint:(-1)
      in
      pos := !pos + paylen;
      (* [!defs] is newest-first within the chunk; prepending keeps the
         whole accumulator newest-first, undone by the final [rev]. *)
      names := !defs @ !names;
      Batch.iter_events (Vec.push out) b
  done;
  (out, List.rev !names)

let of_string s =
  try
    match parse_header s with
    | 1 -> Ok (of_string_v1 s)
    | 2 -> Ok (of_string_framed ~decode:(v2_chunk_decoder ()) s)
    | _ -> Ok (of_string_framed ~decode:(v3_chunk_decoder ()) s)
  with Trace_stream.Decode_error msg -> Error msg

let detect ic =
  let start = In_channel.pos ic in
  let head = really_input_string ic (min 4 (String.length magic)) in
  In_channel.seek ic start;
  if head = magic then `Binary else `Text

let detect ic = try detect ic with End_of_file -> `Text
