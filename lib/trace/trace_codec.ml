module Vec = Aprof_util.Vec

let magic = "ATRC"
let version = 1
let default_chunk = 64 * 1024

let bad fmt =
  Printf.ksprintf (fun s -> raise (Trace_stream.Decode_error s)) fmt

(* ----- varints ------------------------------------------------------- *)

(* Zigzag maps the signed int onto the non-negative range so that values
   of small magnitude — the common case — encode in one byte, while the
   full [min_int, max_int] range still round-trips: the shifted value is
   treated as an unsigned machine word ([lsr] is logical). *)

let add_varint buf n =
  let v = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
  let fits = ref false in
  while not !fits do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.unsafe_chr b);
      fits := true
    end
    else Buffer.add_char buf (Char.unsafe_chr (b lor 0x80))
  done

(* [read_byte] yields the next byte or -1 at end of input. *)
let read_varint read_byte =
  let rec go shift acc =
    match read_byte () with
    | -1 -> bad "truncated varint"
    | b ->
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then begin
        if shift > Sys.int_size then bad "varint too long";
        go (shift + 7) acc
      end
      else acc
  in
  let v = go 0 0 in
  (v lsr 1) lxor (- (v land 1))

(* ----- event records -------------------------------------------------- *)

let def_tag = 15
let end_tag = 0

let tag_of_event : Event.t -> int = function
  | Event.Call _ -> 1
  | Event.Return _ -> 2
  | Event.Read _ -> 3
  | Event.Write _ -> 4
  | Event.Block _ -> 5
  | Event.User_to_kernel _ -> 6
  | Event.Kernel_to_user _ -> 7
  | Event.Acquire _ -> 8
  | Event.Release _ -> 9
  | Event.Alloc _ -> 10
  | Event.Free _ -> 11
  | Event.Thread_start _ -> 12
  | Event.Thread_exit _ -> 13
  | Event.Switch_thread _ -> 14

let add_event buf ev =
  Buffer.add_char buf (Char.unsafe_chr (tag_of_event ev));
  match ev with
  | Event.Call { tid; routine } ->
    add_varint buf tid;
    add_varint buf routine
  | Event.Return { tid }
  | Event.Thread_start { tid }
  | Event.Thread_exit { tid }
  | Event.Switch_thread { tid } ->
    add_varint buf tid
  | Event.Read { tid; addr } | Event.Write { tid; addr } ->
    add_varint buf tid;
    add_varint buf addr
  | Event.Block { tid; units } ->
    add_varint buf tid;
    add_varint buf units
  | Event.Acquire { tid; lock } | Event.Release { tid; lock } ->
    add_varint buf tid;
    add_varint buf lock
  | Event.User_to_kernel { tid; addr; len }
  | Event.Kernel_to_user { tid; addr; len }
  | Event.Alloc { tid; addr; len }
  | Event.Free { tid; addr; len } ->
    add_varint buf tid;
    add_varint buf addr;
    add_varint buf len

let add_def buf id name =
  Buffer.add_char buf (Char.unsafe_chr def_tag);
  add_varint buf id;
  add_varint buf (String.length name);
  Buffer.add_string buf name

(* Decode records until an event (or the end-of-trace marker), feeding
   definition records to [define].  [read_string n] must return exactly
   [n] bytes.  Plain end of input is a truncation — a complete trace
   always carries the marker, which is what lets truncation at a record
   boundary be told apart from a genuine end. *)
let rec read_record ~read_byte ~read_string ~define =
  match read_byte () with
  | -1 -> bad "truncated trace (missing end-of-trace marker)"
  | tag when tag = end_tag ->
    if read_byte () <> -1 then bad "trailing data after end-of-trace marker";
    None
  | tag when tag = def_tag ->
    let id = read_varint read_byte in
    let len = read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    read_record ~read_byte ~read_string ~define
  | tag ->
    let i () = read_varint read_byte in
    let ev =
      match tag with
      | 1 ->
        let tid = i () in
        Event.Call { tid; routine = i () }
      | 2 -> Event.Return { tid = i () }
      | 3 ->
        let tid = i () in
        Event.Read { tid; addr = i () }
      | 4 ->
        let tid = i () in
        Event.Write { tid; addr = i () }
      | 5 ->
        let tid = i () in
        Event.Block { tid; units = i () }
      | 6 ->
        let tid = i () in
        let addr = i () in
        Event.User_to_kernel { tid; addr; len = i () }
      | 7 ->
        let tid = i () in
        let addr = i () in
        Event.Kernel_to_user { tid; addr; len = i () }
      | 8 ->
        let tid = i () in
        Event.Acquire { tid; lock = i () }
      | 9 ->
        let tid = i () in
        Event.Release { tid; lock = i () }
      | 10 ->
        let tid = i () in
        let addr = i () in
        Event.Alloc { tid; addr; len = i () }
      | 11 ->
        let tid = i () in
        let addr = i () in
        Event.Free { tid; addr; len = i () }
      | 12 -> Event.Thread_start { tid = i () }
      | 13 -> Event.Thread_exit { tid = i () }
      | 14 -> Event.Switch_thread { tid = i () }
      | t -> bad "unknown record tag %d" t
    in
    Some ev

let check_header read_byte =
  String.iter
    (fun c ->
      match read_byte () with
      | b when b = Char.code c -> ()
      | -1 -> bad "truncated header"
      | _ -> bad "bad magic: not a binary trace")
    magic;
  match read_byte () with
  | v when v = version -> ()
  | -1 -> bad "truncated header"
  | v -> bad "unsupported trace format version %d (expected %d)" v version

let default_routine_name id = Printf.sprintf "routine_%d" id

(* ----- streaming writer ----------------------------------------------- *)

let writer ?(chunk_bytes = default_chunk) ?(routine_name = default_routine_name)
    oc =
  let buf = Buffer.create (chunk_bytes + 256) in
  let defined = Hashtbl.create 64 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  let flush_chunk () =
    Buffer.output_buffer oc buf;
    Buffer.clear buf
  in
  let emit ev =
    (match ev with
    | Event.Call { routine; _ } when not (Hashtbl.mem defined routine) ->
      Hashtbl.add defined routine ();
      add_def buf routine (routine_name routine)
    | _ -> ());
    add_event buf ev;
    if Buffer.length buf >= chunk_bytes then flush_chunk ()
  in
  let close () =
    Buffer.add_char buf (Char.chr end_tag);
    flush_chunk ()
  in
  { Trace_stream.emit; close }

(* ----- streaming reader ----------------------------------------------- *)

let reader ?(chunk_bytes = default_chunk) ic =
  let chunk = Bytes.create (max 1 chunk_bytes) in
  let pos = ref 0 in
  let len = ref 0 in
  let refill () =
    len := In_channel.input ic chunk 0 (Bytes.length chunk);
    pos := 0
  in
  let read_byte () =
    if !pos >= !len then refill ();
    if !len = 0 then -1
    else begin
      let b = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    let b = Bytes.create n in
    let filled = ref 0 in
    while !filled < n do
      if !pos >= !len then begin
        refill ();
        if !len = 0 then bad "truncated name"
      end;
      let take = min (n - !filled) (!len - !pos) in
      Bytes.blit chunk !pos b !filled take;
      pos := !pos + take;
      filled := !filled + take
    done;
    Bytes.unsafe_to_string b
  in
  check_header read_byte;
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else
        match read_record ~read_byte ~read_string ~define with
        | None ->
          finished := true;
          None
        | some -> some )

(* ----- whole-trace convenience ---------------------------------------- *)

let to_string ?(routine_name = default_routine_name) (tr : Event.t Vec.t) =
  let buf = Buffer.create (16 + (4 * Vec.length tr)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  let defined = Hashtbl.create 64 in
  Vec.iter
    (fun ev ->
      (match ev with
      | Event.Call { routine; _ } when not (Hashtbl.mem defined routine) ->
        Hashtbl.add defined routine ();
        add_def buf routine (routine_name routine)
      | _ -> ());
      add_event buf ev)
    tr;
  Buffer.add_char buf (Char.chr end_tag);
  Buffer.contents buf

let of_string s =
  let pos = ref 0 in
  let read_byte () =
    if !pos >= String.length s then -1
    else begin
      let b = Char.code (String.unsafe_get s !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > String.length s then bad "truncated name";
    let sub = String.sub s !pos n in
    pos := !pos + n;
    sub
  in
  try
    check_header read_byte;
    let names = ref [] in
    let define id name = names := (id, name) :: !names in
    let out = Vec.create () in
    let rec loop () =
      match read_record ~read_byte ~read_string ~define with
      | None -> ()
      | Some ev ->
        Vec.push out ev;
        loop ()
    in
    loop ();
    Ok (out, List.rev !names)
  with Trace_stream.Decode_error msg -> Error msg

let detect ic =
  let start = In_channel.pos ic in
  let head = really_input_string ic (min 4 (String.length magic)) in
  In_channel.seek ic start;
  if head = magic then `Binary else `Text

let detect ic = try detect ic with End_of_file -> `Text
