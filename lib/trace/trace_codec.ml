module Vec = Aprof_util.Vec
module Batch = Event.Batch

let magic = "ATRC"
let version = 1
let default_chunk = 64 * 1024

(* The shard-index footer appended after the end-of-trace marker; see
   the .mli for the layout.  Its own magic differs from the header's so
   a footer can never be mistaken for the start of a trace. *)
let index_magic = "ATRI"
let index_version = 1
let index_trailer_bytes = 8 + 4 (* LE64 footer offset + magic *)

let bad fmt =
  Printf.ksprintf (fun s -> raise (Trace_stream.Decode_error s)) fmt

(* ----- varints ------------------------------------------------------- *)

(* Zigzag maps the signed int onto the non-negative range so that values
   of small magnitude — the common case — encode in one byte, while the
   full [min_int, max_int] range still round-trips: the shifted value is
   treated as an unsigned machine word ([lsr] is logical). *)

(* Both directions run a few times per event, so they are written as
   top-level tail recursions over plain int arguments: an inner closure
   (capturing the byte source) or a local [ref] would cost a minor
   allocation per call and dominate the decode profile. *)

let rec add_varint_rest buf v =
  let b = v land 0x7f in
  let v = v lsr 7 in
  if v = 0 then Buffer.add_char buf (Char.unsafe_chr b)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (b lor 0x80));
    add_varint_rest buf v
  end

let add_varint buf n =
  add_varint_rest buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

(* [read_byte] yields the next byte or -1 at end of input. *)
let rec read_varint_rest read_byte shift acc =
  match read_byte () with
  | -1 -> bad "truncated varint"
  | b ->
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then begin
      if shift > Sys.int_size then bad "varint too long";
      read_varint_rest read_byte (shift + 7) acc
    end
    else acc

let read_varint read_byte =
  let v = read_varint_rest read_byte 0 0 in
  (v lsr 1) lxor (- (v land 1))

(* Same decode, but straight off a byte buffer through a position ref —
   the chunked reader's fast path.  Callers must guarantee the buffer
   holds a complete varint starting at [!pos]; the [shift] guard bounds
   a varint at 11 bytes, which is what makes the caller's margin check
   sufficient for [unsafe_get]. *)
let rec read_varint_bytes_rest chunk pos shift acc =
  let b = Char.code (Bytes.unsafe_get chunk !pos) in
  incr pos;
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 <> 0 then begin
    if shift > Sys.int_size then bad "varint too long";
    read_varint_bytes_rest chunk pos (shift + 7) acc
  end
  else acc

(* One-byte varints — small tids, small deltas — are the overwhelmingly
   common case, so decode them without entering the loop. *)
let[@inline always] read_varint_bytes_fast chunk pos =
  let b0 = Char.code (Bytes.unsafe_get chunk !pos) in
  incr pos;
  if b0 < 0x80 then (b0 lsr 1) lxor (- (b0 land 1))
  else
    let v = read_varint_bytes_rest chunk pos 7 (b0 land 0x7f) in
    (v lsr 1) lxor (- (v land 1))

(* A record is at most 1 tag byte + 3 varints of at most 11 bytes. *)
let max_record_bytes = 34

(* ----- records -------------------------------------------------------- *)

let def_tag = 15
let end_tag = 0

(* Event record tags are exactly {!Event.Batch}'s tags (1–14), so both
   encode and decode work on the raw packed fields: tid always, then the
   primary payload when the kind has one, then the length when it has
   one.  This is the single encoder; every writer entry point funnels
   into it. *)
let add_record buf ~tag ~tid ~arg ~len =
  Buffer.add_char buf (Char.unsafe_chr tag);
  add_varint buf tid;
  if Batch.tag_has_arg tag then add_varint buf arg;
  if Batch.tag_has_len tag then add_varint buf len

let add_def buf id name =
  Buffer.add_char buf (Char.unsafe_chr def_tag);
  add_varint buf id;
  add_varint buf (String.length name);
  Buffer.add_string buf name

(* [encoder buf ~routine_name] is the raw per-record encoder, interning
   routine names: the first [Call] of each routine is preceded by its
   definition record.  Matches {!Event.Batch.iter}'s field order. *)
let encoder buf ~routine_name =
  let defined = Hashtbl.create 64 in
  fun tag tid arg len ->
    if tag = Batch.tag_call && not (Hashtbl.mem defined arg) then begin
      Hashtbl.add defined arg ();
      add_def buf arg (routine_name arg)
    end;
    add_record buf ~tag ~tid ~arg ~len

(* The single decoder: refill a cleared batch with raw records until it
   is full or the end-of-trace marker is consumed, feeding definition
   records to [define].  Returns [true] when the marker was seen.
   [read_string n] must return exactly [n] bytes.  Plain end of input is
   a truncation — a complete trace always carries the marker, which is
   what lets truncation at a record boundary be told apart from a
   genuine end. *)
(* Consume exactly one record through the generic byte source, pushing
   event records into [b].  Returns [true] when the record was the
   end-of-trace marker. *)
let step_record ~read_byte ~read_string ~define b =
  match read_byte () with
  | -1 -> bad "truncated trace (missing end-of-trace marker)"
  | tag when tag = end_tag ->
    (match read_byte () with
    | -1 -> ()
    | b when b = Char.code index_magic.[0] ->
      (* A shard-index footer may follow the marker.  Sequential readers
         check its magic and skip the rest; the seekable path ({!shards})
         is the one that validates and uses it. *)
      for i = 1 to 3 do
        if read_byte () <> Char.code index_magic.[i] then
          bad "trailing data after end-of-trace marker"
      done;
      while read_byte () <> -1 do
        ()
      done
    | _ -> bad "trailing data after end-of-trace marker");
    true
  | tag when tag = def_tag ->
    let id = read_varint read_byte in
    let len = read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    false
  | tag when tag >= 1 && tag <= Batch.max_tag ->
    let tid = read_varint read_byte in
    let arg = if Batch.tag_has_arg tag then read_varint read_byte else 0 in
    let len = if Batch.tag_has_len tag then read_varint read_byte else 0 in
    Batch.unsafe_push b ~tag ~tid ~arg ~len;
    false
  | tag -> bad "unknown record tag %d" tag

(* Decoded bytes are untrusted; downstream tools index shadow pages,
   dense per-thread state and lockset memo keys with the raw fields and
   no per-access guard, so the batch edge is where negative addresses
   and out-of-range thread/lock ids must die.  Every fill site calls
   this once per refilled batch. *)
let validate_batch b =
  try Batch.validate b
  with Invalid_argument msg -> bad "%s" msg

let fill_batch ~read_byte ~read_string ~define b =
  let finished = ref false in
  while (not !finished) && not (Batch.is_full b) do
    finished := step_record ~read_byte ~read_string ~define b
  done;
  validate_batch b;
  !finished

(* Bulk fast path over a chunk: decode plain event records directly off
   the bytes while a whole record is guaranteed to fit below [limit],
   without going through the [read_byte] closure.  Stops — leaving [pos]
   on the offending tag — at definition records, the end marker, or any
   malformed tag, which the generic [step_record] then handles. *)
let fill_batch_bytes b chunk pos limit =
  let tags = Batch.tags b and tids = Batch.tids b in
  let args = Batch.args b and lens = Batch.lens b in
  let cap = Array.length tags in
  let arg_mask = Batch.arg_mask and len_mask = Batch.len_mask in
  (* [!p <= last_start] guarantees a whole record fits before [limit]. *)
  let last_start = limit - max_record_bytes in
  let i = ref (Batch.length b) in
  let p = ref !pos in
  let stop = ref false in
  while (not !stop) && !i < cap && !p <= last_start do
    let tag = Char.code (Bytes.unsafe_get chunk !p) in
    if tag >= 1 && tag <= Batch.max_tag then begin
      incr p;
      let tid = read_varint_bytes_fast chunk p in
      let arg =
        if (arg_mask lsr tag) land 1 = 1 then read_varint_bytes_fast chunk p
        else 0
      in
      let len =
        if (len_mask lsr tag) land 1 = 1 then read_varint_bytes_fast chunk p
        else 0
      in
      let j = !i in
      Array.unsafe_set tags j tag;
      Array.unsafe_set tids j tid;
      Array.unsafe_set args j arg;
      Array.unsafe_set lens j len;
      i := j + 1
    end
    else stop := true
  done;
  Batch.unsafe_set_length b !i;
  pos := !p

let check_header read_byte =
  String.iter
    (fun c ->
      match read_byte () with
      | b when b = Char.code c -> ()
      | -1 -> bad "truncated header"
      | _ -> bad "bad magic: not a binary trace")
    magic;
  match read_byte () with
  | v when v = version -> ()
  | -1 -> bad "truncated header"
  | v -> bad "unsupported trace format version %d (expected %d)" v version

let default_routine_name id = Printf.sprintf "routine_%d" id

(* ----- streaming writer ----------------------------------------------- *)

(* What the writer remembers about one flushed chunk, to be serialized
   into the footer on close. *)
type chunk_entry = {
  c_bytes : int;
  c_events : int;
  c_tag_mask : int;
  c_tids : int array; (* distinct, ascending *)
}

let add_le64 buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

let add_footer buf chunks =
  Buffer.add_string buf index_magic;
  Buffer.add_char buf (Char.chr index_version);
  add_varint buf (List.length chunks);
  List.iter
    (fun c ->
      add_varint buf c.c_bytes;
      add_varint buf c.c_events;
      add_varint buf c.c_tag_mask;
      add_varint buf (Array.length c.c_tids);
      (* Ascending tids delta-encode into one byte each in practice. *)
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          add_varint buf (tid - !prev);
          prev := tid)
        c.c_tids)
    chunks

let batch_writer ?(chunk_bytes = default_chunk) ?(index = true)
    ?(routine_name = default_routine_name) oc =
  (* The header goes straight to the channel so that the buffer — and
     therefore each recorded chunk length — holds record bytes only:
     chunk [i]'s first byte sits at [5 + sum of earlier chunk lengths]. *)
  output_string oc magic;
  output_char oc (Char.chr version);
  let buf = Buffer.create (chunk_bytes + 256) in
  let encode = encoder buf ~routine_name in
  (* Per-chunk stats for the index.  The last-tid cache keeps the table
     lookup off the hot path: consecutive events of one thread are the
     overwhelmingly common case. *)
  let chunks = ref [] in
  let events = ref 0 in
  let tag_mask = ref 0 in
  let tid_set : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let last_tid = ref min_int in
  let flush_chunk () =
    if Buffer.length buf > 0 then begin
      let tids =
        Hashtbl.fold (fun tid () acc -> tid :: acc) tid_set []
        |> List.sort compare |> Array.of_list
      in
      chunks :=
        {
          c_bytes = Buffer.length buf;
          c_events = !events;
          c_tag_mask = !tag_mask;
          c_tids = tids;
        }
        :: !chunks;
      events := 0;
      tag_mask := 0;
      Hashtbl.reset tid_set;
      last_tid := min_int;
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  let emit_batch b =
    Batch.iter
      (fun tag tid arg len ->
        encode tag tid arg len;
        incr events;
        tag_mask := !tag_mask lor (1 lsl tag);
        if tid <> !last_tid then begin
          last_tid := tid;
          Hashtbl.replace tid_set tid ()
        end;
        if Buffer.length buf >= chunk_bytes then flush_chunk ())
      b
  in
  let close_batch () =
    flush_chunk ();
    let marker_off = 5 + List.fold_left (fun a c -> a + c.c_bytes) 0 !chunks in
    output_char oc (Char.chr end_tag);
    if index then begin
      let footer_off = marker_off + 1 in
      add_footer buf (List.rev !chunks);
      add_le64 buf footer_off;
      Buffer.add_string buf index_magic;
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  { Trace_stream.emit_batch; close_batch }

let writer ?chunk_bytes ?index ?routine_name oc =
  Trace_stream.sink_of_batches (batch_writer ?chunk_bytes ?index ?routine_name oc)

(* ----- streaming reader ----------------------------------------------- *)

let batch_reader ?(chunk_bytes = default_chunk)
    ?(batch_size = Batch.default_capacity) ic =
  let chunk = Bytes.create (max 1 chunk_bytes) in
  let pos = ref 0 in
  let len = ref 0 in
  let refill () =
    len := In_channel.input ic chunk 0 (Bytes.length chunk);
    pos := 0
  in
  let read_byte () =
    if !pos >= !len then refill ();
    if !len = 0 then -1
    else begin
      let b = Char.code (Bytes.unsafe_get chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    let b = Bytes.create n in
    let filled = ref 0 in
    while !filled < n do
      if !pos >= !len then begin
        refill ();
        if !len = 0 then bad "truncated name"
      end;
      let take = min (n - !filled) (!len - !pos) in
      Bytes.blit chunk !pos b !filled take;
      pos := !pos + take;
      filled := !filled + take
    done;
    Bytes.unsafe_to_string b
  in
  check_header read_byte;
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let finished = ref false in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      fill_batch_bytes b chunk pos !len;
      if not (Batch.is_full b) then
        fin := step_record ~read_byte ~read_string ~define b
    done;
    validate_batch b;
    !fin
  in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

let reader ?chunk_bytes ic =
  let names, batches = batch_reader ?chunk_bytes ic in
  (names, Trace_stream.events_of_batches batches)

(* ----- shard index ----------------------------------------------------- *)

type shard = {
  offset : int;
  bytes : int;
  events : int;
  tag_mask : int;
  tids : int array;
}

let shards ?(path = "trace") ic =
  let total = Int64.to_int (In_channel.length ic) in
  (* Smallest indexed trace: header, marker, footer magic+version+count,
     trailer.  Anything shorter is an old index-less (or text) file. *)
  if total < 5 + 1 + 6 + index_trailer_bytes then None
  else begin
    In_channel.seek ic (Int64.of_int (total - index_trailer_bytes));
    let trailer = really_input_string ic index_trailer_bytes in
    if String.sub trailer 8 4 <> index_magic then None
    else begin
      let footer_off = ref 0 in
      for i = 7 downto 0 do
        footer_off := (!footer_off lsl 8) lor Char.code trailer.[i]
      done;
      let footer_off = !footer_off in
      let footer_len = total - index_trailer_bytes - footer_off in
      if footer_off < 5 + 1 || footer_len < 6 then
        bad "cannot read shard index of %s: bad footer offset %d" path
          footer_off;
      In_channel.seek ic (Int64.of_int footer_off);
      let footer = really_input_string ic footer_len in
      let pos = ref 0 in
      let read_byte () =
        if !pos >= footer_len then
          bad "cannot read shard index of %s: truncated at byte %d" path
            (footer_off + !pos)
        else begin
          let b = Char.code (String.unsafe_get footer !pos) in
          incr pos;
          b
        end
      in
      String.iter
        (fun c ->
          if read_byte () <> Char.code c then
            bad "cannot read shard index of %s: bad footer magic at byte %d"
              path
              (footer_off + !pos - 1))
        index_magic;
      (match read_byte () with
      | v when v = index_version -> ()
      | v ->
        bad "cannot read shard index of %s: unsupported index version %d" path
          v);
      let nchunks = read_varint read_byte in
      if nchunks < 0 || nchunks > footer_len then
        bad "cannot read shard index of %s: implausible chunk count %d" path
          nchunks;
      let off = ref 5 in
      (* Explicit loops: the parse order must match the byte order. *)
      let out = ref [] in
      for _ = 1 to nchunks do
        let bytes = read_varint read_byte in
        let events = read_varint read_byte in
        let tag_mask = read_varint read_byte in
        let ntids = read_varint read_byte in
        if bytes < 0 || events < 0 || ntids < 0 || ntids > footer_len then
          bad "cannot read shard index of %s: corrupt chunk entry at byte %d"
            path
            (footer_off + !pos);
        let tids = Array.make ntids 0 in
        let prev = ref 0 in
        for i = 0 to ntids - 1 do
          prev := !prev + read_varint read_byte;
          tids.(i) <- !prev
        done;
        out := { offset = !off; bytes; events; tag_mask; tids } :: !out;
        off := !off + bytes
      done;
      let out = Array.of_list (List.rev !out) in
      if !pos <> footer_len then
        bad "cannot read shard index of %s: %d trailing bytes at byte %d" path
          (footer_len - !pos)
          (footer_off + !pos);
      (* The chunks plus the end-of-trace marker must account for every
         byte up to the footer. *)
      if !off + 1 <> footer_off then
        bad "cannot read shard index of %s: chunks cover %d bytes, footer at %d"
          path !off footer_off;
      Some out
    end
  end

(* One record off a chunk's byte range.  A chunk never contains the
   end-of-trace marker, so tag 0 falls through to the error arm. *)
let chunk_step ~read_byte ~read_string ~define b =
  match read_byte () with
  | -1 -> true (* chunk exhausted at a record boundary *)
  | tag when tag = def_tag ->
    let id = read_varint read_byte in
    let len = read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    false
  | tag when tag >= 1 && tag <= Batch.max_tag ->
    let tid = read_varint read_byte in
    let arg = if Batch.tag_has_arg tag then read_varint read_byte else 0 in
    let len = if Batch.tag_has_len tag then read_varint read_byte else 0 in
    Batch.unsafe_push b ~tag ~tid ~arg ~len;
    false
  | tag -> bad "unknown record tag %d in indexed chunk" tag

let sharded_reader ?(path = "trace") ?(batch_size = Batch.default_capacity) ic
    shs ~select =
  let names = Hashtbl.create 64 in
  let define id name = Hashtbl.replace names id name in
  let b = Batch.create ~capacity:batch_size () in
  let remaining = ref (List.filter select (Array.to_list shs)) in
  let chunk = ref Bytes.empty in
  let pos = ref 0 in
  let len = ref 0 in
  let advance () =
    match !remaining with
    | [] -> false
    | sh :: rest ->
      remaining := rest;
      In_channel.seek ic (Int64.of_int sh.offset);
      let c = Bytes.create sh.bytes in
      (try really_input ic c 0 sh.bytes
       with End_of_file ->
         bad "cannot replay %s: chunk at byte %d truncated" path sh.offset);
      chunk := c;
      pos := 0;
      len := sh.bytes;
      true
  in
  let read_byte () =
    if !pos >= !len then -1
    else begin
      let b = Char.code (Bytes.unsafe_get !chunk !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > !len then bad "truncated name";
    let s = Bytes.sub_string !chunk !pos n in
    pos := !pos + n;
    s
  in
  let fill () =
    Batch.clear b;
    let fin = ref false in
    while (not !fin) && not (Batch.is_full b) do
      if !pos >= !len then begin
        if not (advance ()) then fin := true
      end
      else begin
        fill_batch_bytes b !chunk pos !len;
        if (not (Batch.is_full b)) && !pos < !len then
          ignore (chunk_step ~read_byte ~read_string ~define b)
      end
    done;
    validate_batch b;
    !fin
  in
  let finished = ref false in
  ( names,
    fun () ->
      if !finished then None
      else begin
        finished := fill ();
        if Batch.is_empty b then None else Some b
      end )

let seek_chunk ?path ?batch_size ic sh =
  sharded_reader ?path ?batch_size ic [| sh |] ~select:(fun _ -> true)

(* ----- whole-trace convenience ---------------------------------------- *)

let to_string ?(routine_name = default_routine_name) (tr : Event.t Vec.t) =
  let buf = Buffer.create (16 + (4 * Vec.length tr)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  let encode = encoder buf ~routine_name in
  let batches = Trace_stream.batches_of_trace tr in
  let rec loop () =
    match batches () with
    | None -> ()
    | Some b ->
      Batch.iter encode b;
      loop ()
  in
  loop ();
  Buffer.add_char buf (Char.chr end_tag);
  Buffer.contents buf

let of_string s =
  let pos = ref 0 in
  let read_byte () =
    if !pos >= String.length s then -1
    else begin
      let b = Char.code (String.unsafe_get s !pos) in
      incr pos;
      b
    end
  in
  let read_string n =
    if !pos + n > String.length s then bad "truncated name";
    let sub = String.sub s !pos n in
    pos := !pos + n;
    sub
  in
  try
    check_header read_byte;
    let names = ref [] in
    let define id name = names := (id, name) :: !names in
    let out = Vec.create () in
    let b = Batch.create () in
    let finished = ref false in
    while not !finished do
      Batch.clear b;
      finished := fill_batch ~read_byte ~read_string ~define b;
      Batch.iter_events (Vec.push out) b
    done;
    Ok (out, List.rev !names)
  with Trace_stream.Decode_error msg -> Error msg

let detect ic =
  let start = In_channel.pos ic in
  let head = really_input_string ic (min 4 (String.length magic)) in
  In_channel.seek ic start;
  if head = magic then `Binary else `Text

let detect ic = try detect ic with End_of_file -> `Text
