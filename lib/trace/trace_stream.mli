(** Incremental event streams.

    A {!t} is a pull-based source of events: calling it yields the next
    event, or [None] when the stream is exhausted.  Streams let the
    profilers and tools consume traces of unbounded length — from a live
    VM run, a trace file, or an in-memory {!Trace.t} — without ever
    materializing the whole event sequence, mirroring how the paper's
    Valgrind tool observes billions of events online.

    Streams are single-use: once exhausted (or partially consumed) they
    cannot be rewound.  Re-create the source to replay again.

    The dual {!sink} is a push-based consumer; {!connect} drains a source
    into a sink. *)

type t = unit -> Event.t option

(** Raised by decoding sources ({!of_text_channel},
    {!Trace_codec.reader}) on malformed input. *)
exception Decode_error of string

(** {1 Sources} *)

val empty : t

(** [of_trace tr] yields the events of an in-memory trace in order. *)
val of_trace : Event.t Aprof_util.Vec.t -> t

val of_list : Event.t list -> t

(** [of_fun f] is [f] itself; documents intent at call sites. *)
val of_fun : (unit -> Event.t option) -> t

(** [of_text_channel ic] streams the one-event-per-line text format
    ({!Event.of_line}), skipping blank lines.  The channel is read
    lazily; the caller keeps ownership.
    @raise Decode_error on the first malformed line. *)
val of_text_channel : in_channel -> t

(** {1 Transformers} *)

val map : (Event.t -> Event.t) -> t -> t
val filter : (Event.t -> bool) -> t -> t

(** [take n s] yields at most the first [n] events of [s]. *)
val take : int -> t -> t

(** {1 Consumers} *)

val iter : (Event.t -> unit) -> t -> unit
val fold : ('acc -> Event.t -> 'acc) -> 'acc -> t -> 'acc

(** [to_trace s] materializes the remainder of [s]. *)
val to_trace : t -> Event.t Aprof_util.Vec.t

val to_list : t -> Event.t list

(** [length s] consumes [s] and returns how many events it yielded. *)
val length : t -> int

(** {1 Sinks} *)

type sink = {
  emit : Event.t -> unit;
  close : unit -> unit;
      (** flush buffered output; must be called exactly once, after the
          last [emit].  Never closes an underlying channel — the channel's
          owner does. *)
}

(** [null_sink] discards events. *)
val null_sink : sink

(** [sink_of_fun f] emits through [f]; [close] is a no-op. *)
val sink_of_fun : (Event.t -> unit) -> sink

(** [sink_to_trace tr] pushes events onto [tr]. *)
val sink_to_trace : Event.t Aprof_util.Vec.t -> sink

(** [text_sink oc] writes the one-event-per-line text format. *)
val text_sink : out_channel -> sink

(** [tee a b] duplicates every event (and the close) to both sinks. *)
val tee : sink -> sink -> sink

(** [connect src dst] drains [src] into [dst], closes [dst], and returns
    the number of events transferred.  [dst] is closed (exactly once)
    even when the source or an interposed stage raises, so buffered
    output — e.g. a binary trace's end marker — is flushed before the
    exception propagates. *)
val connect : t -> sink -> int

(** {1 Batched streams}

    The allocation-free transport: the unit of transfer is a packed
    {!Event.Batch.t} rather than a boxed event.  A {!batch_source}
    recycles its buffer — the returned batch is only valid until the
    next pull, so consumers must finish with (or copy) a batch before
    pulling again.  Use the batch API on hot paths (replay, codec,
    profiler dispatch); use the per-event API for glue and tests. *)

type batch_source = unit -> Event.Batch.t option

type batch_sink = {
  emit_batch : Event.Batch.t -> unit;
      (** Consume one batch.  The batch belongs to the producer and may
          be recycled after the call returns. *)
  close_batch : unit -> unit;
      (** Flush buffered output; called exactly once, after the last
          [emit_batch]. *)
}

(** [batches_of_trace ?batch_size tr] packs an in-memory trace into a
    recycled batch, [batch_size] events per pull. *)
val batches_of_trace : ?batch_size:int -> Event.t Aprof_util.Vec.t -> batch_source

(** [batches_of_events ?batch_size s] groups a per-event stream into
    recycled batches (the last batch may be partial). *)
val batches_of_events : ?batch_size:int -> t -> batch_source

(** [events_of_batches bs] is the per-event view of a batch source:
    each pull unpacks one event (this edge allocates). *)
val events_of_batches : batch_source -> t

(** {!map}/{!filter} lifted onto batches; the transformation is applied
    in place on the recycled buffer.  [filter_batches] never yields an
    empty batch. *)
val map_batches : (Event.t -> Event.t) -> batch_source -> batch_source

val filter_batches : (Event.t -> bool) -> batch_source -> batch_source

val batch_null_sink : batch_sink
val batch_sink_of_fun : (Event.Batch.t -> unit) -> batch_sink
val batch_sink_to_trace : Event.t Aprof_util.Vec.t -> batch_sink

(** [batch_sink_of_sink s] unpacks each batch into the per-event sink
    [s]; closing closes [s]. *)
val batch_sink_of_sink : sink -> batch_sink

(** [sink_of_batches ?batch_size bs] is a per-event sink that packs
    events into a recycled batch and hands full batches (and, on close,
    the final partial batch) to [bs]; closing closes [bs]. *)
val sink_of_batches : ?batch_size:int -> batch_sink -> sink

(** [tee_batches a b] duplicates every batch (and the close) to both
    sinks. *)
val tee_batches : batch_sink -> batch_sink -> batch_sink

(** [connect_batches src dst] drains [src] into [dst], closes [dst]
    (exactly once, even on raise, as {!connect}), and returns the number
    of events transferred. *)
val connect_batches : batch_source -> batch_sink -> int
