(* Order-0 canonical Huffman coding of a chunk payload — the optional
   entropy stage of the version-3 transform layer.  The coded form is

     lengths[128]  code length of each byte value, packed two 4-bit
                   nibbles per byte (value 2i low, 2i+1 high; 0 = absent)
     raw_len       zigzag varint, length of the decoded payload
     bitstream     canonical codes, MSB-first, zero-padded to a byte

   Code lengths are capped at 15 so they pack into nibbles and so the
   decoder's prefix table stays small; a distribution whose optimal tree
   is deeper is flattened by frequency halving until it fits
   ({!limited_code_lengths}), so every chunk gets *a* code — the
   transform layer still stores raw when the coded form is not smaller.
   Canonical assignment makes the bytes a pure function of the length
   table, which keeps the format byte-diffable: equal payloads code to
   equal bytes. *)

let bad = Trace_wire.bad
let max_code_len = 15

(* Encoding is refused below this size: the 128-byte length table would
   dominate, and the transform layer falls back to storing raw. *)
let min_encode_len = 64

(* ----- code length computation ----------------------------------------- *)

(* Plain Huffman merge over the live symbols with O(n^2) min selection —
   at most 256 leaves, so the scan cost is noise next to the frequency
   count.  Returns the depth of every leaf, or [None] if any depth
   exceeds [max_code_len]. *)
let code_lengths freq =
  let nsym = 256 in
  (* node arrays: leaves 0..255, internal nodes appended after. *)
  let nf = Array.make (2 * nsym) 0 in
  let parent = Array.make (2 * nsym) (-1) in
  let live = ref [] in
  for s = 0 to nsym - 1 do
    if freq.(s) > 0 then begin
      nf.(s) <- freq.(s);
      live := s :: !live
    end
  done;
  let lengths = Array.make nsym 0 in
  match !live with
  | [] -> Some lengths (* empty payload: no codes *)
  | [ s ] ->
    lengths.(s) <- 1;
    Some lengths
  | _ ->
    let active = ref !live in
    let next = ref nsym in
    while List.length !active > 1 do
      (* take the two smallest-frequency nodes *)
      let take lst =
        let best =
          List.fold_left
            (fun acc n ->
              match acc with
              | None -> Some n
              | Some m -> if nf.(n) < nf.(m) then Some n else acc)
            None lst
        in
        match best with
        | None -> assert false
        | Some n -> (n, List.filter (fun m -> m <> n) lst)
      in
      let a, rest = take !active in
      let b, rest = take rest in
      let id = !next in
      incr next;
      nf.(id) <- nf.(a) + nf.(b);
      parent.(a) <- id;
      parent.(b) <- id;
      active := id :: rest
    done;
    let too_deep = ref false in
    List.iter
      (fun s ->
        let d = ref 0 in
        let n = ref s in
        while parent.(!n) >= 0 do
          incr d;
          n := parent.(!n)
        done;
        if !d > max_code_len then too_deep := true else lengths.(s) <- !d)
      !live;
    if !too_deep then None else Some lengths

(* Length-limited lengths: when the optimal tree is deeper than
   [max_code_len] (a heavily skewed chunk), flatten the distribution by
   halving every live frequency and retry — the standard zlib trick.
   Halving keeps every live symbol live (minimum stays 1) and strictly
   shrinks the spread, so the loop reaches an all-ones distribution
   (depth <= 8 for 256 symbols) in the worst case and always returns. *)
let rec limited_code_lengths freq =
  match code_lengths freq with
  | Some lengths -> lengths
  | None -> limited_code_lengths (Array.map (fun f -> (f + 1) / 2) freq)

(* Canonical codes from lengths: symbols sorted by (length, value) get
   consecutive codes, shifted left when the length steps up. *)
let canonical_codes lengths =
  let count = Array.make (max_code_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count.(l) <- count.(l) + 1) lengths;
  let first = Array.make (max_code_len + 2) 0 in
  for l = 1 to max_code_len do
    first.(l + 1) <- (first.(l) + count.(l)) lsl 1
  done;
  let codes = Array.make 256 0 in
  let next = Array.copy first in
  for s = 0 to 255 do
    let l = lengths.(s) in
    if l > 0 then begin
      let c = next.(l) in
      if c lsr l <> 0 then bad "invalid Huffman code lengths";
      codes.(s) <- c;
      next.(l) <- c + 1
    end
  done;
  codes

(* ----- encode ----------------------------------------------------------- *)

let encode src ~pos ~len =
  if len < min_encode_len then None
  else begin
    let freq = Array.make 256 0 in
    for i = pos to pos + len - 1 do
      let c = Char.code (Bytes.unsafe_get src i) in
      freq.(c) <- freq.(c) + 1
    done;
    let lengths = limited_code_lengths freq in
    let codes = canonical_codes lengths in
    let out = Buffer.create (len / 2) in
    for i = 0 to 127 do
      Buffer.add_char out
        (Char.unsafe_chr (lengths.(2 * i) lor (lengths.((2 * i) + 1) lsl 4)))
    done;
    Trace_wire.add_varint out len;
    let bitbuf = ref 0 in
    let bitcnt = ref 0 in
    for i = pos to pos + len - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      let l = lengths.(s) in
      bitbuf := (!bitbuf lsl l) lor codes.(s);
      bitcnt := !bitcnt + l;
      while !bitcnt >= 8 do
        bitcnt := !bitcnt - 8;
        Buffer.add_char out
          (Char.unsafe_chr ((!bitbuf lsr !bitcnt) land 0xff))
      done
    done;
    if !bitcnt > 0 then
      Buffer.add_char out
        (Char.unsafe_chr ((!bitbuf lsl (8 - !bitcnt)) land 0xff));
    Some (Buffer.contents out)
  end

(* ----- decode ----------------------------------------------------------- *)

(* Decode the coded region [src[pos..pos+len)] into [!scratch] (grown as
   needed), returning the decoded length.  All malformations raise
   {!Trace_stream.Decode_error}: the coded bytes sit behind the frame
   CRC, so a failure here means the *writer* never produced them. *)
let decode src ~pos ~len ~scratch =
  if len < 129 then bad "truncated entropy-coded chunk";
  let lengths = Array.make 256 0 in
  let maxlen = ref 0 in
  for i = 0 to 127 do
    let b = Char.code (Bytes.unsafe_get src (pos + i)) in
    let l0 = b land 0xf and l1 = b lsr 4 in
    lengths.(2 * i) <- l0;
    lengths.((2 * i) + 1) <- l1;
    if l0 > !maxlen then maxlen := l0;
    if l1 > !maxlen then maxlen := l1
  done;
  let p = ref (pos + 128) in
  let limit = pos + len in
  let raw_len = Trace_wire.read_varint_bytes_checked src p limit in
  if raw_len < 0 || raw_len > Trace_frame.max_chunk_payload then
    bad "entropy-coded chunk: implausible decoded length %d" raw_len;
  if raw_len = 0 then 0
  else begin
    let maxlen = !maxlen in
    if maxlen = 0 then bad "entropy-coded chunk: empty code table";
    (* Prefix table: every [maxlen]-bit window maps to (symbol, length).
       Canonical order fills it densely; overlap or overflow means the
       length table is not a prefix code. *)
    let table = Array.make (1 lsl maxlen) (-1) in
    let codes = canonical_codes lengths in
    for s = 0 to 255 do
      let l = lengths.(s) in
      if l > 0 then begin
        let span = 1 lsl (maxlen - l) in
        let base = codes.(s) lsl (maxlen - l) in
        if base + span > Array.length table then
          bad "invalid Huffman code lengths";
        for j = base to base + span - 1 do
          if table.(j) <> -1 then bad "invalid Huffman code lengths";
          table.(j) <- (s lsl 4) lor l
        done
      end
    done;
    if Bytes.length !scratch < raw_len then
      scratch := Bytes.create (max raw_len (2 * Bytes.length !scratch));
    let dst = !scratch in
    let bitbuf = ref 0 in
    let bitcnt = ref 0 in
    let total_bits = (limit - !p) * 8 in
    let used_bits = ref 0 in
    for i = 0 to raw_len - 1 do
      while !bitcnt < maxlen do
        (* zero-pad past the end; the bit budget check below catches a
           genuinely truncated stream. *)
        let b =
          if !p < limit then begin
            let c = Char.code (Bytes.unsafe_get src !p) in
            incr p;
            c
          end
          else 0
        in
        bitbuf := ((!bitbuf lsl 8) lor b) land 0x3FFFFFFF;
        bitcnt := !bitcnt + 8
      done;
      let peek = (!bitbuf lsr (!bitcnt - maxlen)) land ((1 lsl maxlen) - 1) in
      let entry = table.(peek) in
      if entry < 0 then bad "entropy-coded chunk: invalid code";
      let l = entry land 0xf in
      bitcnt := !bitcnt - l;
      used_bits := !used_bits + l;
      if !used_bits > total_bits then bad "entropy-coded chunk: truncated";
      Bytes.unsafe_set dst i (Char.unsafe_chr (entry lsr 4))
    done;
    (* Everything after the last code must be padding within the final
       byte — trailing coded bytes would make the stored form ambiguous. *)
    if total_bits - !used_bits >= 8 then
      bad "entropy-coded chunk: trailing bytes";
    raw_len
  end
