(* Frame layer: length + CRC32C framing of chunk payloads (format
   versions >= 2) and the end-of-trace marker.  A frame is

     frame := paylen:uvarint crc32c:le32 payload[paylen]

   [paylen] is never 0, so the single-zero end marker is unambiguous.
   The CRC covers the stored payload bytes exactly as they sit in the
   file — for version 3 that is the transformed payload, so integrity is
   checked before the transform layer ever touches the bytes. *)

module Crc32c = Aprof_util.Crc32c

let bad = Trace_wire.bad
let default_chunk = 64 * 1024

(* A frame length takes at most ten varint bytes, but anything near
   that is corruption, not a trace: cap what a reader will allocate. *)
let max_chunk_payload = 1 lsl 30

let frame_overhead paylen = Trace_wire.uvarint_size paylen + 4

(* [output_frame oc payload] frames one chunk payload onto the channel,
   returning the CRC it stored (for the shard index). *)
let output_frame oc payload =
  let n = Bytes.length payload in
  let crc = Crc32c.digest payload ~pos:0 ~len:n in
  Trace_wire.output_uvarint oc n;
  Trace_wire.output_le32 oc crc;
  output_bytes oc payload;
  crc

let add_frame buf payload =
  let n = String.length payload in
  Trace_wire.add_uvarint buf n;
  Trace_wire.add_le32 buf (Crc32c.digest_string payload ~pos:0 ~len:n);
  Buffer.add_string buf payload

(* [check_payload bytes ~pos ~len ~crc] verifies a chunk's checksum
   before any decoding touches the bytes; [context] prefixes the error
   message (typically "chunk N at byte B" or a file path). *)
let check_payload ~context bytes ~pos ~len ~crc =
  let computed = Crc32c.digest bytes ~pos ~len in
  if computed <> crc then
    bad "%s: checksum mismatch (stored %08x, computed %08x)" (context ())
      crc computed

(* What one streaming [read_frame_header] step found. *)
type header = End_marker | Frame of { paylen : int; crc : int }

(* Read one frame header (or the end marker) through [input_byte]
   ([-1] at end of file).  [frame_off] and [ordinal] feed the error
   messages; truncation before any length byte is reported as a missing
   end-of-trace marker, matching the record-layer contract that a
   complete trace always carries the marker. *)
let read_frame_header ~input_byte ~ordinal ~frame_off =
  let before = ref true in
  let first_byte () =
    let b = input_byte () in
    if b <> -1 then before := false;
    b
  in
  let paylen =
    try
      Trace_wire.read_uvarint (fun () ->
          if !before then first_byte () else input_byte ())
    with Trace_stream.Decode_error _ when !before ->
      bad "truncated trace (missing end-of-trace marker)"
  in
  if paylen = 0 then End_marker
  else begin
    if paylen > max_chunk_payload then
      bad "chunk %d at byte %d: implausible length %d" ordinal frame_off
        paylen;
    let crc = ref 0 in
    for i = 0 to 3 do
      match input_byte () with
      | -1 -> bad "chunk %d at byte %d: truncated header" ordinal frame_off
      | c -> crc := !crc lor (c lsl (8 * i))
    done;
    Frame { paylen; crc = !crc }
  end
