(** Wire primitives shared by the codec layers: canonical zigzag varints
    for record fields, plain canonical varints for frame lengths, and
    little-endian fixed-width fields.  Everything raises
    {!Trace_stream.Decode_error} (via {!bad}) on malformed input; both
    varint flavors reject non-canonical encodings, so each value has
    exactly one byte representation. *)

(** [bad fmt ...] raises {!Trace_stream.Decode_error} with the formatted
    message. *)
val bad : ('a, unit, string, 'b) format4 -> 'a

(** {1 Zigzag varints (record fields)} *)

val add_varint : Buffer.t -> int -> unit

(** [read_varint read_byte] decodes one zigzag varint; [read_byte]
    yields the next byte or [-1] at end of input. *)
val read_varint : (unit -> int) -> int

(** Guard shared by every varint decoder: rejects a byte whose
    significant bits would overflow the int at [shift]. *)
val check_varint_bits : int -> int -> unit

(** Buffer fast path: decode a zigzag varint at [!pos], advancing it.
    The caller must guarantee a complete varint fits (see
    {!max_record_bytes}); bytes are read with [unsafe_get]. *)
val read_varint_bytes_fast : Bytes.t -> int ref -> int

(** Bounds-checked twin of {!read_varint_bytes_fast} for buffer tails
    where the margin no longer holds; never reads at or past [limit]. *)
val read_varint_bytes_checked : Bytes.t -> int ref -> int -> int

(** Advance past one varint without assembling its value (bounded at ten
    bytes); canonicality is not checked. *)
val skip_varint_bytes : Bytes.t -> int ref -> unit

(** Upper bound on one encoded record: 1 tag byte + 3 varints with
    margin.  The bulk decode loops use [limit - max_record_bytes] as the
    last safe start offset for unchecked reads. *)
val max_record_bytes : int

(** {1 Plain varints (frame lengths)} *)

val add_uvarint : Buffer.t -> int -> unit
val output_uvarint : out_channel -> int -> unit
val uvarint_size : int -> int
val read_uvarint : (unit -> int) -> int

(** {1 Little-endian fixed-width fields} *)

val add_le32 : Buffer.t -> int -> unit
val output_le32 : out_channel -> int -> unit
val add_le64 : Buffer.t -> int -> unit
