(** Socket-fed ATRC decoding.

    An incremental, sans-IO state machine for the bytes of one
    connection: {!feed} it arbitrary slices as they arrive and it
    decodes complete items — framed chunks (versions 2/3), bare records
    (version 1), end-of-trace markers, shard-index footers — driving the
    callbacks as it goes.  The wire format is exactly the file format,
    so a client can stream a recorded trace file verbatim, and several
    traces may follow back-to-back on one connection (each delimited by
    its own header and end marker).

    Peak buffered memory is one frame (plus the feed slice): bytes are
    held only until the item under the cursor is complete, then decoded
    and released.  The machine never queues decoded work — callbacks run
    inside {!feed} — so callers implement backpressure by not feeding.

    Corruption follows the salvage trichotomy of {!Trace_codec.read}:
    strict mode fails the connection on the first malformation; with
    [~salvage:true] a damaged v2/v3 chunk is dropped whole and reported
    (the frame length re-synchronizes), while damage to the framing
    itself, and any version-1 malformation, remains fatal.  After a
    failure the machine is poisoned: every later call re-raises. *)

type callbacks = {
  on_batch : Event.Batch.t -> unit;
      (** One validated decoded chunk (or a batch of v1 records).  The
          batch is recycled: it is valid only until the callback
          returns. *)
  on_define : int -> string -> unit;
      (** A routine-name definition, in stream order, always before the
          first delivered batch that could reference it. *)
  on_trace_end : unit -> unit;
      (** The end-of-trace marker was consumed; every batch of that
          trace has been delivered. *)
  on_drop : Trace_codec.drop -> unit;
      (** Salvage mode only: a damaged chunk was skipped.  Offsets are
          relative to the current trace's first byte, so they line up
          with file offsets when the client streams a file verbatim. *)
}

type t

(** [create callbacks] is a fresh connection decoder.
    @param salvage drop damaged v2/v3 chunks (reported through
    [on_drop]) instead of failing the connection (default [false]).
    @param max_frame_bytes largest acceptable chunk payload; a frame
    announcing more is treated as framing damage and fails the
    connection even under salvage (default 64 MiB).
    @param batch_size capacity of the recycled batch used for version-1
    records (framed chunks always arrive as one whole-chunk batch). *)
val create : ?salvage:bool -> ?max_frame_bytes:int -> ?batch_size:int ->
  callbacks -> t

(** [feed t bytes ~pos ~len] appends one received slice and decodes as
    far as the accumulated bytes allow, running callbacks synchronously.
    @raise Trace_stream.Decode_error on malformed input (and on every
    call after one), with the machine poisoned.
    @raise Invalid_argument when [pos]/[len] do not delimit a valid
    range of [bytes]. *)
val feed : t -> Bytes.t -> pos:int -> len:int -> unit

(** [close t] signals end of stream.  Clean only between traces (or on
    a connection that carried no bytes at all).
    @raise Trace_stream.Decode_error when the stream ends mid-trace or
    with undecodable bytes pending — the truncation report a file
    reader would give. *)
val close : t -> unit

(** Bytes currently buffered awaiting a complete item — bounded by one
    frame header + payload. *)
val pending_bytes : t -> int

(** Traces fully decoded (end marker consumed) so far. *)
val traces_completed : t -> int

(** The poisoning failure, if the machine has one. *)
val failure : t -> string option
