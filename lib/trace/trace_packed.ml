(* Packed event coding — the version-3 event layer.  One packed chunk is
   a self-contained stream of groups over a small per-chunk context
   (current thread, per-thread address registers, pattern dictionary),
   so salvage, the shard index and parallel chunk replay need nothing
   beyond chunk boundaries.  The grammar (first byte of each group):

     1..14        literal event: tag byte, then the operand fields of
                  that tag for the *current* thread — address-bearing
                  args as a zigzag delta against the *second*-most-recent
                  address the thread touched, other args and lengths as
                  absolute zigzags.  Depth-2 history instead of
                  last-address delta because instrumented code revisits
                  on a two-beat: read a / read b / write a / write b
                  (annealing swaps, element exchanges) and alternating
                  src/dst streams (copy loops) both land the delta base
                  exactly two accesses back, turning their operands into
                  zero deltas where a depth-1 register thrashes
     15           routine definition: id, name length, name bytes
     16           set current thread: zigzag tid
     17           repeat: zigzag L, zigzag n — re-decode the L bytes
                  immediately preceding this token n more times
     18           define pattern: zigzag k (2..16), then k tag bytes;
                  pattern ids are assigned sequentially per chunk
     19           use pattern: zigzag id, then the operand fields of
                  every pattern event (tags come from the dictionary)
     32..255      use pattern id (byte - 32), same operands
     0, 20..31    invalid

   Three redundancy mechanisms compose: address deltas make regular
   strides small and repetitive; the tag-pattern dictionary replaces a
   recurring tag sequence (a basic block's instrumentation burst) with
   one token; and the repeat token collapses byte-identical group runs —
   after delta coding, a constant-stride loop iteration *is* byte
   identical.  Correctness of repeat suppression rests on a strict rule:
   the encoder swallows a group into a repeat only when the bytes it
   just produced from the live context equal the region bytes at the
   current phase.  Decoding is deterministic given (bytes, context) and
   the context evolves identically either way, so replaying the region
   reproduces exactly the swallowed events. *)

module Batch = Event.Batch

let bad = Trace_wire.bad
let op_def = 15
let op_set_tid = 16
let op_repeat = 17
let op_defpat = 18
let op_usepat = 19
let first_short_usepat = 32
let pat_kmin = 2
let pat_kmax = 16
let max_pats = 4096

(* Tandem detection windows: how many trailing groups the encoder can
   fold into one repeat region, and how many trailing tags it scans for
   a recurring pattern. *)
let rep_kmax = 32
let ring_cap = 64 (* 2 * rep_kmax, power of two *)
let hist_cap = 32 (* 2 * pat_kmax, power of two *)

(* A region shorter than the repeat token itself is not worth a token. *)
let min_region_bytes = 4

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))

(* ===== encoder ========================================================= *)

type encoder = {
  mutable out : Bytes.t;
  mutable olen : int;
  (* chunk-local event context (mirrored by the decoder) *)
  mutable e_cur_tid : int;
  (* per-tid address history, depth 2: [e_prev2] (the delta base) holds
     the second-most-recent address, [e_prev] the most recent *)
  e_prev : int array;
  e_prev2 : int array;
  e_epoch : int array; (* history valid iff epoch matches *)
  mutable e_cur_epoch : int;
  (* pattern dictionary, reset per chunk *)
  mutable pats : int array array;
  mutable npats : int;
  pat_by_first : int array; (* first tag -> latest pattern id, -1 none *)
  pat_dict : (string, unit) Hashtbl.t;
  (* tag history ring for pattern detection *)
  hist : int array;
  mutable hist_n : int;
  (* active pattern instance (at most one: any interleaving event from
     another thread must flush it to preserve global event order) *)
  mutable inst_pat : int; (* -1 none *)
  mutable inst_phase : int;
  mutable inst_tid : int;
  inst_arg : int array;
  inst_len : int array;
  (* group ring + repeat mode *)
  ring : int array; (* start offsets of recent groups *)
  mutable ring_n : int;
  mutable r_active : bool;
  mutable r_start : int; (* repeat region [r_start, r_start + r_len) *)
  mutable r_len : int;
  mutable r_phase : int; (* matched bytes of the current iteration *)
  mutable r_count : int; (* whole iterations swallowed so far *)
}

let create_encoder () =
  {
    out = Bytes.create 4096;
    olen = 0;
    e_cur_tid = 0;
    e_prev = Array.make (Event.max_tid + 1) 0;
    e_prev2 = Array.make (Event.max_tid + 1) 0;
    e_epoch = Array.make (Event.max_tid + 1) 0;
    e_cur_epoch = 1;
    pats = Array.make 64 [||];
    npats = 0;
    pat_by_first = Array.make 16 (-1);
    pat_dict = Hashtbl.create 32;
    hist = Array.make hist_cap 0;
    hist_n = 0;
    inst_pat = -1;
    inst_phase = 0;
    inst_tid = 0;
    inst_arg = Array.make pat_kmax 0;
    inst_len = Array.make pat_kmax 0;
    ring = Array.make ring_cap 0;
    ring_n = 0;
    r_active = false;
    r_start = 0;
    r_len = 0;
    r_phase = 0;
    r_count = 0;
  }

let chunk_length e = e.olen

let ensure e n =
  if e.olen + n > Bytes.length e.out then begin
    let cap = ref (2 * Bytes.length e.out) in
    while e.olen + n > !cap do
      cap := 2 * !cap
    done;
    let out = Bytes.create !cap in
    Bytes.blit e.out 0 out 0 e.olen;
    e.out <- out
  end

let[@inline] put_byte e b =
  ensure e 1;
  Bytes.unsafe_set e.out e.olen (Char.unsafe_chr b);
  e.olen <- e.olen + 1

let put_varint e n =
  ensure e 10;
  (* The zigzag value is an unsigned word — for [min_int]-magnitude
     inputs it has the top bit set — so the loop test must be the
     logical shift, never a signed comparison. *)
  let v = ref (zigzag n) in
  let p = ref e.olen in
  while !v lsr 7 <> 0 do
    Bytes.unsafe_set e.out !p (Char.unsafe_chr (!v land 0x7f lor 0x80));
    incr p;
    v := !v lsr 7
  done;
  Bytes.unsafe_set e.out !p (Char.unsafe_chr !v);
  e.olen <- !p + 1

let[@inline] prev2_get e tid =
  if e.e_epoch.(tid) = e.e_cur_epoch then e.e_prev2.(tid) else 0

let[@inline] prev_shift e tid v =
  if e.e_epoch.(tid) = e.e_cur_epoch then e.e_prev2.(tid) <- e.e_prev.(tid)
  else begin
    e.e_epoch.(tid) <- e.e_cur_epoch;
    e.e_prev2.(tid) <- 0
  end;
  e.e_prev.(tid) <- v

let bytes_eq b p1 p2 n =
  let i = ref 0 in
  while !i < n && Bytes.unsafe_get b (p1 + !i) = Bytes.unsafe_get b (p2 + !i) do
    incr i
  done;
  !i = n

(* Close the open repeat: emit the token, then re-emit the matched
   prefix of the unfinished iteration literally.  [out] ends exactly at
   the region end whenever repeat mode is on, so the token lands right
   after the region. *)
let finalize_repeat e =
  if e.r_active then begin
    e.r_active <- false;
    let start = e.r_start and phase = e.r_phase in
    put_byte e op_repeat;
    put_varint e e.r_len;
    put_varint e e.r_count;
    if phase > 0 then begin
      ensure e phase;
      Bytes.blit e.out start e.out e.olen phase;
      e.olen <- e.olen + phase
    end;
    e.ring_n <- 0
  end

(* Emitting a group that cannot participate in repeats (definitions,
   pattern definitions): close the repeat and empty the detection ring
   so no region ever spans the barrier. *)
let barrier e =
  finalize_repeat e;
  e.ring_n <- 0

(* Look for a tandem in the trailing groups: the last [k] groups
   byte-equal to the [k] before them.  Smallest [k] first — the tightest
   period swallows the most per token. *)
let detect_tandem e =
  let k = ref 1 in
  let found = ref 0 in
  while !found = 0 && !k <= rep_kmax && 2 * !k <= e.ring_n do
    let off2 = e.ring.((e.ring_n - !k) land (ring_cap - 1)) in
    let off1 = e.ring.((e.ring_n - (2 * !k)) land (ring_cap - 1)) in
    let len1 = off2 - off1 in
    if
      len1 >= min_region_bytes
      && e.olen - off2 = len1
      && bytes_eq e.out off1 off2 len1
    then found := !k
    else incr k
  done;
  if !found > 0 then begin
    let off2 = e.ring.((e.ring_n - !found) land (ring_cap - 1)) in
    let off1 = e.ring.((e.ring_n - (2 * !found)) land (ring_cap - 1)) in
    e.olen <- off2 (* drop the second copy; the region stands for it *);
    e.r_active <- true;
    e.r_start <- off1;
    e.r_len <- off2 - off1;
    e.r_phase <- 0;
    e.r_count <- 1;
    e.ring_n <- 0
  end

(* A group's bytes were just written at [gstart..olen).  In repeat mode,
   swallow it if it extends the byte-identical run; otherwise close the
   repeat and re-append it after the token.  Outside repeat mode, enter
   the detection ring. *)
let commit_group e gstart =
  if e.r_active then begin
    let glen = e.olen - gstart in
    if
      glen <= e.r_len - e.r_phase
      && bytes_eq e.out (e.r_start + e.r_phase) gstart glen
    then begin
      e.olen <- gstart;
      e.r_phase <- e.r_phase + glen;
      if e.r_phase = e.r_len then begin
        e.r_count <- e.r_count + 1;
        e.r_phase <- 0
      end
    end
    else begin
      (* The token will overwrite [gstart..]; save the group first. *)
      let tail = Bytes.sub e.out gstart glen in
      e.olen <- gstart;
      finalize_repeat e;
      let g2 = e.olen in
      ensure e glen;
      Bytes.blit tail 0 e.out e.olen glen;
      e.olen <- e.olen + glen;
      e.ring.(e.ring_n land (ring_cap - 1)) <- g2;
      e.ring_n <- e.ring_n + 1
    end
  end
  else begin
    e.ring.(e.ring_n land (ring_cap - 1)) <- gstart;
    e.ring_n <- e.ring_n + 1;
    detect_tandem e
  end

let put_operands e ~tag ~tid ~arg ~len =
  if (Batch.arg_mask lsr tag) land 1 = 1 then
    if (Batch.addr_mask lsr tag) land 1 = 1 then begin
      put_varint e (arg - prev2_get e tid);
      prev_shift e tid arg
    end
    else put_varint e arg;
  if (Batch.len_mask lsr tag) land 1 = 1 then put_varint e len

(* After each literal tag, look for a fresh tag tandem and, when found,
   publish it as a pattern (a barrier group).  Deduplicated per chunk;
   later occurrences then flow through the instance matcher. *)
let maybe_define_pattern e =
  if e.npats < max_pats then begin
    let n = e.hist_n in
    let k = ref pat_kmin in
    let found = ref 0 in
    while !found = 0 && !k <= pat_kmax && 2 * !k <= min n hist_cap do
      let i = ref 0 in
      while
        !i < !k
        && e.hist.((n - 1 - !i) land (hist_cap - 1))
           = e.hist.((n - 1 - !k - !i) land (hist_cap - 1))
      do
        incr i
      done;
      if !i = !k then found := !k else incr k
    done;
    if !found > 0 then begin
      let k = !found in
      let tags = Array.init k (fun i -> e.hist.((n - k + i) land (hist_cap - 1))) in
      let key = String.init k (fun i -> Char.chr tags.(i)) in
      if not (Hashtbl.mem e.pat_dict key) then begin
        Hashtbl.add e.pat_dict key ();
        if e.npats >= Array.length e.pats then begin
          let grown = Array.make (2 * Array.length e.pats) [||] in
          Array.blit e.pats 0 grown 0 e.npats;
          e.pats <- grown
        end;
        let id = e.npats in
        e.pats.(id) <- tags;
        e.npats <- id + 1;
        e.pat_by_first.(tags.(0)) <- id;
        barrier e;
        put_byte e op_defpat;
        put_varint e k;
        for i = 0 to k - 1 do
          put_byte e tags.(i)
        done
      end
    end
  end

let emit_literal e ~tag ~tid ~arg ~len =
  let g = e.olen in
  if tid <> e.e_cur_tid then begin
    put_byte e op_set_tid;
    put_varint e tid;
    e.e_cur_tid <- tid
  end;
  put_byte e tag;
  put_operands e ~tag ~tid ~arg ~len;
  commit_group e g;
  e.hist.(e.hist_n land (hist_cap - 1)) <- tag;
  e.hist_n <- e.hist_n + 1;
  maybe_define_pattern e

let complete_instance e =
  let id = e.inst_pat in
  let tags = e.pats.(id) in
  let k = Array.length tags in
  let tid = e.inst_tid in
  e.inst_pat <- -1;
  let g = e.olen in
  if tid <> e.e_cur_tid then begin
    put_byte e op_set_tid;
    put_varint e tid;
    e.e_cur_tid <- tid
  end;
  if id < 256 - first_short_usepat then put_byte e (first_short_usepat + id)
  else begin
    put_byte e op_usepat;
    put_varint e id
  end;
  for i = 0 to k - 1 do
    put_operands e ~tag:tags.(i) ~tid ~arg:e.inst_arg.(i) ~len:e.inst_len.(i)
  done;
  commit_group e g

(* Flush a dead instance attempt back out as the literal events it
   buffered; they re-enter history/detection but not instance matching
   ([inst_pat] is already cleared, and [emit_literal] never matches). *)
let abort_instance e =
  if e.inst_pat >= 0 then begin
    let tags = e.pats.(e.inst_pat) in
    let phase = e.inst_phase and tid = e.inst_tid in
    e.inst_pat <- -1;
    for i = 0 to phase - 1 do
      emit_literal e ~tag:tags.(i) ~tid ~arg:e.inst_arg.(i)
        ~len:e.inst_len.(i)
    done
  end

let process_event e ~tag ~tid ~arg ~len =
  let pid = e.pat_by_first.(tag) in
  if pid >= 0 then begin
    (* Patterns are at least two tags long, so the instance cannot
       complete on its first event. *)
    e.inst_pat <- pid;
    e.inst_tid <- tid;
    e.inst_phase <- 1;
    e.inst_arg.(0) <- arg;
    e.inst_len.(0) <- len
  end
  else emit_literal e ~tag ~tid ~arg ~len

let add_event e ~tag ~tid ~arg ~len =
  if tid < 0 || tid > Event.max_tid then
    invalid_arg
      (Printf.sprintf "Trace_codec: tid %d out of range for format version 3"
         tid);
  if e.inst_pat >= 0 then begin
    let tags = e.pats.(e.inst_pat) in
    if tid = e.inst_tid && tag = tags.(e.inst_phase) then begin
      e.inst_arg.(e.inst_phase) <- arg;
      e.inst_len.(e.inst_phase) <- len;
      e.inst_phase <- e.inst_phase + 1;
      if e.inst_phase = Array.length tags then complete_instance e
    end
    else begin
      abort_instance e;
      process_event e ~tag ~tid ~arg ~len
    end
  end
  else process_event e ~tag ~tid ~arg ~len

let add_def e id name =
  abort_instance e;
  barrier e;
  put_byte e op_def;
  put_varint e id;
  let n = String.length name in
  put_varint e n;
  ensure e n;
  Bytes.blit_string name 0 e.out e.olen n;
  e.olen <- e.olen + n

(* Seal the current chunk: flush everything pending, hand the packed
   payload out, and reset the per-chunk context so the next chunk is
   independently decodable. *)
let take_chunk e =
  abort_instance e;
  barrier e;
  let chunk = Bytes.sub e.out 0 e.olen in
  e.olen <- 0;
  e.e_cur_tid <- 0;
  e.e_cur_epoch <- e.e_cur_epoch + 1;
  e.npats <- 0;
  Hashtbl.reset e.pat_dict;
  Array.fill e.pat_by_first 0 16 (-1);
  e.hist_n <- 0;
  e.ring_n <- 0;
  chunk

(* ===== decoder ========================================================= *)

type decoder = {
  mutable src : Bytes.t;
  pos : int ref;
  mutable start : int;
  mutable limit : int;
  mutable d_cur_tid : int;
  (* per-tid address history, depth 2, mirroring the encoder *)
  d_prev : int array;
  d_prev2 : int array;
  d_epoch : int array;
  mutable d_cur_epoch : int;
  mutable d_pats : int array array;
  mutable d_npats : int;
  mutable rep_on : bool;
  mutable rep_rem : int;
  mutable rep_resume : int;
  (* Repeat template: the region is parsed ONCE into rows of
     (tag, tid, operand kind, operand, len) and every iteration replays
     the rows — a few array moves per event instead of a varint re-parse
     per iteration.  [t_kind] is 1 when the operand is an address delta
     to apply against the thread register, 0 when it is stored verbatim.
     [t_idx] is the row cursor, persisted so replay resumes after a
     batch fills mid-iteration; [t_end_tid] is the current-thread value
     after one pass, installed when the repeat completes. *)
  mutable t_tags : int array;
  mutable t_tids : int array;
  mutable t_kind : int array;
  mutable t_args : int array;
  mutable t_lens : int array;
  mutable t_n : int;
  mutable t_idx : int;
  mutable t_end_tid : int;
}

let create_decoder () =
  {
    src = Bytes.empty;
    pos = ref 0;
    start = 0;
    limit = 0;
    d_cur_tid = 0;
    d_prev = Array.make (Event.max_tid + 1) 0;
    d_prev2 = Array.make (Event.max_tid + 1) 0;
    d_epoch = Array.make (Event.max_tid + 1) 0;
    d_cur_epoch = 1;
    d_pats = Array.make 64 [||];
    d_npats = 0;
    rep_on = false;
    rep_rem = 0;
    rep_resume = 0;
    t_tags = Array.make 64 0;
    t_tids = Array.make 64 0;
    t_kind = Array.make 64 0;
    t_args = Array.make 64 0;
    t_lens = Array.make 64 0;
    t_n = 0;
    t_idx = 0;
    t_end_tid = 0;
  }

let start_chunk d src ~pos ~len =
  d.src <- src;
  d.pos := pos;
  d.start <- pos;
  d.limit <- pos + len;
  d.d_cur_tid <- 0;
  d.d_cur_epoch <- d.d_cur_epoch + 1;
  d.d_npats <- 0;
  d.rep_on <- false

let[@inline] dprev2_get d tid =
  if d.d_epoch.(tid) = d.d_cur_epoch then d.d_prev2.(tid) else 0

let[@inline] dprev_shift d tid v =
  if d.d_epoch.(tid) = d.d_cur_epoch then d.d_prev2.(tid) <- d.d_prev.(tid)
  else begin
    d.d_epoch.(tid) <- d.d_cur_epoch;
    d.d_prev2.(tid) <- 0
  end;
  d.d_prev.(tid) <- v

(* Decode the operand fields of one event.  [el] is the effective limit
   (the repeat region end while parsing a template); [fast] means a
   whole record is known to fit below it, entitling the unchecked
   varint path. *)
let[@inline] read_field d el fast =
  if fast then Trace_wire.read_varint_bytes_fast d.src d.pos
  else Trace_wire.read_varint_bytes_checked d.src d.pos el

let ensure_template d k =
  if d.t_n + k > Array.length d.t_tags then begin
    let cap = ref (Array.length d.t_tags) in
    while d.t_n + k > !cap do
      cap := !cap * 2
    done;
    let grow a =
      let g = Array.make !cap 0 in
      Array.blit a 0 g 0 d.t_n;
      g
    in
    d.t_tags <- grow d.t_tags;
    d.t_tids <- grow d.t_tids;
    d.t_kind <- grow d.t_kind;
    d.t_args <- grow d.t_args;
    d.t_lens <- grow d.t_lens
  end

let[@inline] push_row d ~tag ~tid ~kind ~arg ~len =
  ensure_template d 1;
  let i = d.t_n in
  d.t_tags.(i) <- tag;
  d.t_tids.(i) <- tid;
  d.t_kind.(i) <- kind;
  d.t_args.(i) <- arg;
  d.t_lens.(i) <- len;
  d.t_n <- i + 1

(* Parse a repeat region into the template — once, with full validation,
   so the replay loop can trust every row.  Registers are NOT touched:
   address operands are stored as raw deltas and applied per iteration.
   The template's thread ids start from the live current thread, which
   is exactly the byte-replay state: after the region's literal pass the
   current thread either never changed (no [set_tid] inside) or equals
   the region's last [set_tid] — in both cases the value each iteration
   observes at entry. *)
let build_template d lo hi =
  d.t_n <- 0;
  let cur = ref d.d_cur_tid in
  let p = ref lo in
  let src = d.src in
  while !p < hi do
    let op_pos = !p in
    let op = Char.code (Bytes.unsafe_get src op_pos) in
    incr p;
    let field fast =
      if fast then Trace_wire.read_varint_bytes_fast src p
      else Trace_wire.read_varint_bytes_checked src p hi
    in
    let fast = op_pos <= hi - Trace_wire.max_record_bytes in
    if op >= 1 && op <= Batch.max_tag then begin
      let kind = ref 0 in
      let arg =
        if (Batch.arg_mask lsr op) land 1 = 1 then
          if (Batch.addr_mask lsr op) land 1 = 1 then begin
            kind := 1;
            field fast
          end
          else field fast
        else 0
      in
      let len = if (Batch.len_mask lsr op) land 1 = 1 then field fast else 0 in
      push_row d ~tag:op ~tid:!cur ~kind:!kind ~arg ~len
    end
    else if op >= first_short_usepat || op = op_usepat then begin
      let id =
        if op >= first_short_usepat then op - first_short_usepat
        else field fast
      in
      if id < 0 || id >= d.d_npats then
        bad "packed chunk: undefined pattern %d" id;
      let ptags = d.d_pats.(id) in
      for i = 0 to Array.length ptags - 1 do
        let tag = ptags.(i) in
        let fast = !p <= hi - Trace_wire.max_record_bytes in
        let kind = ref 0 in
        let arg =
          if (Batch.arg_mask lsr tag) land 1 = 1 then
            if (Batch.addr_mask lsr tag) land 1 = 1 then begin
              kind := 1;
              field fast
            end
            else field fast
          else 0
        in
        let len =
          if (Batch.len_mask lsr tag) land 1 = 1 then field fast else 0
        in
        push_row d ~tag ~tid:!cur ~kind:!kind ~arg ~len
      done
    end
    else if op = op_set_tid then begin
      let tid = field fast in
      if tid < 0 || tid > Event.max_tid then
        bad "packed chunk: thread id %d out of range" tid;
      cur := tid
    end
    else if op = op_def then bad "packed chunk: definition inside repeat region"
    else if op = op_repeat then bad "packed chunk: nested repeat"
    else if op = op_defpat then
      bad "packed chunk: pattern definition inside repeat region"
    else bad "unknown packed opcode %d" op
  done;
  d.t_end_tid <- !cur

(* Fill [b] from the current chunk until the batch is full or the chunk
   is exhausted; returns [true] on exhaustion.  Resumable: repeat state
   and the stream cursor live in [d], so the caller just calls again
   with a fresh batch.  [b]'s capacity must be at least [pat_kmax].
   With [?keep], operands are always decoded (the registers must stay in
   step) but events failing [keep tag tid] are not stored. *)
let fill d ?keep ~define b =
  let cap = Batch.capacity b in
  let tags_a = Batch.tags b and tids_a = Batch.tids b in
  let args_a = Batch.args b and lens_a = Batch.lens b in
  let pos = d.pos in
  let n = ref (Batch.length b) in
  (* 0 = running, 1 = batch full (deliver), 2 = chunk exhausted. *)
  let state = ref 0 in
  while !state = 0 do
    if d.rep_on then begin
      (* Template replay: the hot path of a repeat-heavy trace. *)
      let t_tags = d.t_tags and t_tids = d.t_tids in
      let t_kind = d.t_kind and t_args = d.t_args and t_lens = d.t_lens in
      let tn = d.t_n in
      let i = ref d.t_idx in
      let looping = ref true in
      while !looping do
        if !i >= tn then begin
          d.rep_rem <- d.rep_rem - 1;
          i := 0;
          if d.rep_rem <= 0 then begin
            d.rep_on <- false;
            d.d_cur_tid <- d.t_end_tid;
            pos := d.rep_resume;
            looping := false
          end
        end
        else if !n >= cap then begin
          looping := false;
          state := 1
        end
        else begin
          let tag = Array.unsafe_get t_tags !i in
          let tid = Array.unsafe_get t_tids !i in
          let v = Array.unsafe_get t_args !i in
          let arg =
            if Array.unsafe_get t_kind !i = 1 then begin
              let a = dprev2_get d tid + v in
              dprev_shift d tid a;
              a
            end
            else v
          in
          let store =
            match keep with None -> true | Some keep -> keep tag tid
          in
          if store then begin
            let j = !n in
            Array.unsafe_set tags_a j tag;
            Array.unsafe_set tids_a j tid;
            Array.unsafe_set args_a j arg;
            Array.unsafe_set lens_a j (Array.unsafe_get t_lens !i);
            n := j + 1
          end;
          incr i
        end
      done;
      d.t_idx <- !i
    end
    else if !n >= cap then state := 1
    else begin
      let el = d.limit in
      if !pos >= el then state := 2
      else begin
        let op_pos = !pos in
        let op = Char.code (Bytes.unsafe_get d.src op_pos) in
        incr pos;
        let fast = op_pos <= el - Trace_wire.max_record_bytes in
        if op >= 1 && op <= Batch.max_tag then begin
          let tid = d.d_cur_tid in
          let arg =
            if (Batch.arg_mask lsr op) land 1 = 1 then
              if (Batch.addr_mask lsr op) land 1 = 1 then begin
                let a = dprev2_get d tid + read_field d el fast in
                dprev_shift d tid a;
                a
              end
              else read_field d el fast
            else 0
          in
          let len =
            if (Batch.len_mask lsr op) land 1 = 1 then read_field d el fast
            else 0
          in
          let store =
            match keep with None -> true | Some keep -> keep op tid
          in
          if store then begin
            let j = !n in
            Array.unsafe_set tags_a j op;
            Array.unsafe_set tids_a j tid;
            Array.unsafe_set args_a j arg;
            Array.unsafe_set lens_a j len;
            n := j + 1
          end
        end
        else if op >= first_short_usepat || op = op_usepat then begin
          let id =
            if op >= first_short_usepat then op - first_short_usepat
            else read_field d el fast
          in
          if id < 0 || id >= d.d_npats then
            bad "packed chunk: undefined pattern %d" id;
          let ptags = d.d_pats.(id) in
          let k = Array.length ptags in
          if cap - !n < k then begin
            if !n = 0 then
              bad "batch capacity %d below pattern length %d" cap k;
            (* Not enough room: rewind to the token and deliver. *)
            pos := op_pos;
            state := 1
          end
          else begin
            let tid = d.d_cur_tid in
            for i = 0 to k - 1 do
              let tag = ptags.(i) in
              let fast = !pos <= el - Trace_wire.max_record_bytes in
              let arg =
                if (Batch.arg_mask lsr tag) land 1 = 1 then
                  if (Batch.addr_mask lsr tag) land 1 = 1 then begin
                    let a = dprev2_get d tid + read_field d el fast in
                    dprev_shift d tid a;
                    a
                  end
                  else read_field d el fast
                else 0
              in
              let len =
                if (Batch.len_mask lsr tag) land 1 = 1 then
                  read_field d el fast
                else 0
              in
              let store =
                match keep with None -> true | Some keep -> keep tag tid
              in
              if store then begin
                let j = !n in
                Array.unsafe_set tags_a j tag;
                Array.unsafe_set tids_a j tid;
                Array.unsafe_set args_a j arg;
                Array.unsafe_set lens_a j len;
                n := j + 1
              end
            done
          end
        end
        else if op = op_set_tid then begin
          let tid = read_field d el fast in
          if tid < 0 || tid > Event.max_tid then
            bad "packed chunk: thread id %d out of range" tid;
          d.d_cur_tid <- tid
        end
        else if op = op_def then begin
          let id = read_field d el fast in
          let nlen = read_field d el fast in
          if nlen < 0 then bad "negative name length";
          if !pos + nlen > el then bad "truncated name";
          define id (Bytes.sub_string d.src !pos nlen);
          pos := !pos + nlen
        end
        else if op = op_repeat then begin
          let l = read_field d el fast in
          let count = read_field d el fast in
          if l < 1 || op_pos - l < d.start then
            bad "packed chunk: repeat region length %d out of range" l;
          if count < 1 || count > 1 lsl 40 then
            bad "packed chunk: implausible repeat count %d" count;
          d.rep_resume <- !pos;
          build_template d (op_pos - l) op_pos;
          (* An event-free region (only thread switches) is idempotent:
             one pass installs the end state, so replaying it [count]
             times would only spin. *)
          d.rep_rem <- (if d.t_n = 0 then 1 else count);
          d.t_idx <- 0;
          d.rep_on <- true
        end
        else if op = op_defpat then begin
          let k = read_field d el fast in
          if k < 1 || k > pat_kmax then
            bad "packed chunk: pattern length %d out of range" k;
          if d.d_npats >= max_pats then bad "packed chunk: too many patterns";
          if !pos + k > el then bad "packed chunk: truncated pattern";
          let tags =
            Array.init k (fun i ->
                let t = Char.code (Bytes.unsafe_get d.src (!pos + i)) in
                if t < 1 || t > Batch.max_tag then
                  bad "packed chunk: invalid tag %d in pattern" t;
                t)
          in
          pos := !pos + k;
          if d.d_npats >= Array.length d.d_pats then begin
            let grown = Array.make (2 * Array.length d.d_pats) [||] in
            Array.blit d.d_pats 0 grown 0 d.d_npats;
            d.d_pats <- grown
          end;
          d.d_pats.(d.d_npats) <- tags;
          d.d_npats <- d.d_npats + 1
        end
        else bad "unknown packed opcode %d" op
      end
    end
  done;
  Batch.unsafe_set_length b !n;
  !state = 2
