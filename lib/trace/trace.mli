(** Execution traces.

    A [Trace.t] is the totally ordered sequence of events the profilers
    consume: per-thread traces are merged on their timestamps (ties broken
    arbitrarily, Section 3) and [Switch_thread] events are inserted between
    any two operations performed by different threads. *)

(** Incremental event streams ({!Trace_stream}) and the binary codec
    ({!Trace_codec}), re-exported for convenience. *)
module Stream = Trace_stream

module Codec = Trace_codec

type t = Event.t Aprof_util.Vec.t

(** [to_stream t] is a single-use stream over [t]'s events. *)
val to_stream : t -> Stream.t

(** [of_stream s] materializes the remainder of [s]. *)
val of_stream : Stream.t -> t

(** An event stamped with the logical time at which its thread issued it.
    Within one thread trace, timestamps must be non-decreasing. *)
type timestamped = { ts : int; ev : Event.t }

type thread_trace = timestamped Aprof_util.Vec.t

(** Tie-breaking policy for events of different threads bearing the same
    timestamp.  [`Lowest_tid] is deterministic; [`Rng] picks uniformly
    among the tied threads, modelling the "no assumption can be made"
    clause of Section 3. *)
type tie_break = [ `Lowest_tid | `Rng of Aprof_util.Rng.t ]

(** [merge ~tie_break threads] merges per-thread traces into a single
    totally ordered trace, preserving each thread's internal order and
    inserting [Switch_thread] events between events of different threads
    (including one before the very first event).
    @raise Invalid_argument if a thread trace has decreasing timestamps or
    contains an event whose [Event.tid] differs from the declared thread. *)
val merge : tie_break:tie_break -> (Event.tid * thread_trace) list -> t

(** [split t] recovers per-thread traces from a merged trace, stamping each
    event with its position in [t]; [Switch_thread] events are dropped.
    [merge] of the result rebuilds [t] up to switch placement. *)
val split : t -> (Event.tid * thread_trace) list

(** [well_formed t] checks structural sanity — balanced call/return per
    thread, non-negative addresses, positive lengths, no events from a
    thread after its [Thread_exit] — and returns human-readable violations
    (empty when the trace is well formed). *)
val well_formed : t -> string list

(** Per-constructor counts and simple shape statistics. *)
type stats = {
  events : int;
  calls : int;
  reads : int;
  writes : int;
  blocks : int;
  block_units : int;
  user_to_kernel : int;
  kernel_to_user : int;
  switches : int;
  threads : int;
  max_call_depth : int;
  distinct_addresses : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [save oc t] / [load ic] (de)serialize a trace, one event per line.
    [load] fails with [Error] on the first malformed line. *)
val save : out_channel -> t -> unit

val load : in_channel -> (t, string) result
