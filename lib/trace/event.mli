(** Instrumentation events.

    This is the vocabulary of Section 3 of the paper: routine activations
    and completions, memory accesses, kernel-mediated I/O
    ([User_to_kernel]/[Kernel_to_user]), and thread switches — extended
    with the events needed by the comparator tools of Section 4
    (basic-block costs for callgrind/aprof, lock operations for helgrind,
    heap events for memcheck). *)

type tid = int
type addr = int
type routine = int

type t =
  | Call of { tid : tid; routine : routine }
      (** Thread [tid] activates [routine]. *)
  | Return of { tid : tid }
      (** Thread [tid] completes its topmost pending activation. *)
  | Read of { tid : tid; addr : addr }  (** Load of one memory cell. *)
  | Write of { tid : tid; addr : addr }  (** Store to one memory cell. *)
  | Block of { tid : tid; units : int }
      (** [units] basic blocks executed by [tid]; the cost metric. *)
  | User_to_kernel of { tid : tid; addr : addr; len : int }
      (** The kernel reads [len] cells starting at [addr] on behalf of
          [tid] (e.g. [write], [sendto]). *)
  | Kernel_to_user of { tid : tid; addr : addr; len : int }
      (** The kernel writes [len] cells starting at [addr] on behalf of
          [tid] (e.g. [read], [recvfrom]); the data is external input. *)
  | Acquire of { tid : tid; lock : int }
      (** [tid] acquires lock/semaphore [lock] (or passes a wait). *)
  | Release of { tid : tid; lock : int }
      (** [tid] releases lock/semaphore [lock] (or posts a signal). *)
  | Alloc of { tid : tid; addr : addr; len : int }
      (** Heap allocation of [len] cells at [addr]. *)
  | Free of { tid : tid; addr : addr; len : int }
      (** Heap release of the block at [addr]. *)
  | Thread_start of { tid : tid }
  | Thread_exit of { tid : tid }
  | Switch_thread of { tid : tid }
      (** Control switches to thread [tid].  Inserted by the trace merge
          (or the VM scheduler) between events of different threads. *)

(** Decode-edge bounds on identifier payloads.  Thread ids are kept
    dense (and packed into 16-bit epoch fields) by the tools, and lock
    ids are packed below bit 31 by the lockset memo tables, so every
    decoder rejects out-of-range values as decode errors — consumers
    past the edge carry no per-access guard. *)

val max_tid : int

val max_lock : int

(** [tid e] is the thread associated with [e]; for [Switch_thread] it is
    the incoming thread. *)
val tid : t -> tid

(** [is_switch e] holds for [Switch_thread]. *)
val is_switch : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [to_line e] serializes [e] on one line; [of_line] parses it back.
    [of_line] returns [Error msg] on malformed input. *)
val to_line : t -> string

val of_line : string -> (t, string) result

val equal : t -> t -> bool

(** Packed event batches: the zero-allocation hot-path representation.

    A batch is a reusable struct-of-arrays buffer — per event one tag,
    one thread id, one primary payload ([args]: routine, address, units
    or lock id) and one secondary payload ([lens]: the length of range
    events) — plus a length cursor.  Producers (the VM interpreter, the
    binary decoder) fill a recycled batch with raw ints; consumers
    (profilers, tools, the encoder) dispatch on the int tag and read the
    arrays directly, so no [Event.t] variant is ever constructed on the
    hot path.  {!pack}ing/unpacking to [Event.t] happens only at the
    edges ({!push}, {!get}, {!iter_events}). *)
module Batch : sig
  type event = t

  type t

  val default_capacity : int

  (** [create ~capacity ()] is an empty batch holding at most [capacity]
      events (default {!default_capacity}).
      @raise Invalid_argument when [capacity <= 0]. *)
  val create : ?capacity:int -> unit -> t

  val capacity : t -> int
  val length : t -> int
  val is_empty : t -> bool
  val is_full : t -> bool

  (** [clear b] resets the cursor; storage is recycled. *)
  val clear : t -> unit

  (** {2 Tags}

      The int tag stored per event.  The numbering is shared with the
      binary codec's record tags, so decode can store the tag byte
      unchanged. *)

  val tag_call : int
  val tag_return : int
  val tag_read : int
  val tag_write : int
  val tag_block : int
  val tag_user_to_kernel : int
  val tag_kernel_to_user : int
  val tag_acquire : int
  val tag_release : int
  val tag_alloc : int
  val tag_free : int
  val tag_thread_start : int
  val tag_thread_exit : int
  val tag_switch_thread : int
  val max_tag : int

  (** [tag_has_arg tag] — does the event kind carry a primary payload
      (routine / addr / units / lock)? *)
  val tag_has_arg : int -> bool

  (** [tag_has_len tag] — does the event kind carry a length? *)
  val tag_has_len : int -> bool

  (** Bitmask forms of {!tag_has_arg}/{!tag_has_len}: bit [tag] is set
      when the field exists.  For decode loops that cannot afford a call
      per record; [tag_has_arg tag = (arg_mask lsr tag) land 1 = 1]. *)

  val arg_mask : int
  val len_mask : int

  (** Bit [tag] set when the payload is a memory address (Read/Write,
      kernel transfers, Alloc/Free). *)
  val addr_mask : int

  (** Bit [tag] set when the payload is a lock id (Acquire/Release). *)
  val lock_mask : int

  (** [validate b] checks every event's thread id against
      [[0, max_tid]], every address-carrying event for a non-negative
      address, and every lock-carrying event against [[0, max_lock]].
      Decoders call this once per batch at the trust boundary, so
      consumers can index page tables, dense per-thread state and
      lockset memo keys with the raw fields and no per-access guard.
      @raise Invalid_argument on the first out-of-range field. *)
  val validate : t -> unit

  val tag_of_event : event -> int

  (** {2 Raw field access}

      The backing arrays; only indices [< length b] are meaningful.
      Consumers must treat them as read-only. *)

  val tags : t -> int array
  val tids : t -> int array
  val args : t -> int array
  val lens : t -> int array

  (** [unsafe_push b ~tag ~tid ~arg ~len] appends raw fields without a
      capacity check: the caller must guarantee [not (is_full b)]. *)
  val unsafe_push : t -> tag:int -> tid:int -> arg:int -> len:int -> unit

  (** [unsafe_set_length b n] declares that rows [0..n-1] of the backing
      arrays are valid, for bulk fillers that bypass {!unsafe_push}; the
      caller must have written all four arrays up to [n]. *)
  val unsafe_set_length : t -> int -> unit

  (** [iter f b] — [f tag tid arg len] per event, allocation-free. *)
  val iter : (int -> int -> int -> int -> unit) -> t -> unit

  (** {2 Pack/unpack edges} *)

  (** [push b ev] packs one event.
      @raise Invalid_argument when the batch is full. *)
  val push : t -> event -> unit

  (** [get b i] unpacks the [i]-th event (constructs a variant). *)
  val get : t -> int -> event

  (** [set b i ev] overwrites the [i]-th event in place. *)
  val set : t -> int -> event -> unit

  (** [iter_events f b] unpacks each event in order. *)
  val iter_events : (event -> unit) -> t -> unit

  (** [map_in_place f b] / [filter_in_place p b]: the per-event
      transformers lifted onto the packed representation; the batch is
      rewritten (and compacted) in place. *)
  val map_in_place : (event -> event) -> t -> unit

  val filter_in_place : (event -> bool) -> t -> unit

  (** [keep_in_place p b] compacts [b] to the events whose packed
      [tag]/[tid] fields satisfy [p tag tid], preserving order.  The raw
      twin of {!filter_in_place}: nothing is unpacked, so sharding a
      batch by thread stays allocation-free. *)
  val keep_in_place : (int -> int -> bool) -> t -> unit

  (** [of_trace tr] packs a whole trace into one batch sized to fit;
      [to_trace] unpacks back. *)
  val of_trace : event Aprof_util.Vec.t -> t

  val to_trace : t -> event Aprof_util.Vec.t
end
