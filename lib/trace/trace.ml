module Vec = Aprof_util.Vec
module Rng = Aprof_util.Rng

(* Incremental sources/sinks and the binary codec live in their own
   modules; re-exported here so consumers can say [Trace.Stream] and
   [Trace.Codec]. *)
module Stream = Trace_stream
module Codec = Trace_codec

type t = Event.t Vec.t

let to_stream = Trace_stream.of_trace
let of_stream = Trace_stream.to_trace

type timestamped = { ts : int; ev : Event.t }

type thread_trace = timestamped Vec.t

type tie_break = [ `Lowest_tid | `Rng of Rng.t ]

let validate_thread_trace tid (tr : thread_trace) =
  let prev = ref min_int in
  Vec.iter
    (fun { ts; ev } ->
      if ts < !prev then
        invalid_arg
          (Printf.sprintf "Trace.merge: decreasing timestamps in thread %d" tid);
      prev := ts;
      if Event.tid ev <> tid then
        invalid_arg
          (Printf.sprintf "Trace.merge: thread %d trace contains event of thread %d"
             tid (Event.tid ev)))
    tr

(* k-way merge on timestamps.  Cursors track the next unconsumed event of
   each thread; at each step we pick, among cursors with the minimal
   timestamp, either the lowest thread id or a uniformly random one. *)
let merge ~tie_break threads =
  List.iter (fun (tid, tr) -> validate_thread_trace tid tr) threads;
  let cursors = Array.of_list (List.map (fun (tid, tr) -> (tid, tr, ref 0)) threads) in
  let n_threads = Array.length cursors in
  let out : t = Vec.create () in
  let current_tid = ref (-1) in
  let candidates = Array.make (max n_threads 1) 0 in
  let rec loop () =
    (* Find minimal head timestamp. *)
    let min_ts = ref max_int in
    let n_cand = ref 0 in
    for i = 0 to n_threads - 1 do
      let _, tr, pos = cursors.(i) in
      if !pos < Vec.length tr then begin
        let ts = (Vec.get tr !pos).ts in
        if ts < !min_ts then begin
          min_ts := ts;
          n_cand := 0;
          candidates.(!n_cand) <- i;
          incr n_cand
        end
        else if ts = !min_ts then begin
          candidates.(!n_cand) <- i;
          incr n_cand
        end
      end
    done;
    if !n_cand > 0 then begin
      let pick =
        match tie_break with
        | `Lowest_tid -> candidates.(0)
        | `Rng rng -> candidates.(Rng.int rng !n_cand)
      in
      let tid, tr, pos = cursors.(pick) in
      let { ev; _ } = Vec.get tr !pos in
      incr pos;
      if tid <> !current_tid then begin
        Vec.push out (Event.Switch_thread { tid });
        current_tid := tid
      end;
      Vec.push out ev;
      loop ()
    end
  in
  loop ();
  out

let split (t : t) =
  let tbl : (int, thread_trace) Hashtbl.t = Hashtbl.create 8 in
  let order = Vec.create () in
  Vec.iteri
    (fun pos ev ->
      if not (Event.is_switch ev) then begin
        let tid = Event.tid ev in
        let tr =
          match Hashtbl.find_opt tbl tid with
          | Some tr -> tr
          | None ->
            let tr = Vec.create () in
            Hashtbl.add tbl tid tr;
            Vec.push order tid;
            tr
        in
        Vec.push tr { ts = pos; ev }
      end)
    t;
  List.map (fun tid -> (tid, Hashtbl.find tbl tid)) (Vec.to_list order)

let well_formed (t : t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let depth : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let exited : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let depth_of tid =
    match Hashtbl.find_opt depth tid with
    | Some d -> d
    | None ->
      let d = ref 0 in
      Hashtbl.add depth tid d;
      d
  in
  Vec.iteri
    (fun pos ev ->
      let tid = Event.tid ev in
      if Hashtbl.mem exited tid && not (Event.is_switch ev) then
        err "event %d: thread %d acts after exit" pos tid;
      match ev with
      | Event.Call _ -> incr (depth_of tid)
      | Event.Return _ ->
        let d = depth_of tid in
        if !d <= 0 then err "event %d: return with empty call stack in thread %d" pos tid
        else decr d
      | Event.Read { addr; _ } | Event.Write { addr; _ } ->
        if addr < 0 then err "event %d: negative address" pos
      | Event.User_to_kernel { addr; len; _ }
      | Event.Kernel_to_user { addr; len; _ }
      | Event.Alloc { addr; len; _ }
      | Event.Free { addr; len; _ } ->
        if addr < 0 then err "event %d: negative address" pos;
        if len <= 0 then err "event %d: non-positive length" pos
      | Event.Block { units; _ } ->
        if units < 0 then err "event %d: negative block units" pos
      | Event.Thread_exit _ -> Hashtbl.replace exited tid ()
      | Event.Thread_start _ | Event.Acquire _ | Event.Release _
      | Event.Switch_thread _ ->
        ())
    t;
  Hashtbl.iter
    (fun tid d -> if !d <> 0 then err "thread %d: %d unbalanced calls" tid !d)
    depth;
  List.rev !errors

type stats = {
  events : int;
  calls : int;
  reads : int;
  writes : int;
  blocks : int;
  block_units : int;
  user_to_kernel : int;
  kernel_to_user : int;
  switches : int;
  threads : int;
  max_call_depth : int;
  distinct_addresses : int;
}

let stats (t : t) =
  let calls = ref 0
  and reads = ref 0
  and writes = ref 0
  and blocks = ref 0
  and block_units = ref 0
  and u2k = ref 0
  and k2u = ref 0
  and switches = ref 0 in
  let threads = Hashtbl.create 8 in
  let addresses = Hashtbl.create 1024 in
  let depth = Hashtbl.create 8 in
  let max_depth = ref 0 in
  let touch_addr a = if not (Hashtbl.mem addresses a) then Hashtbl.add addresses a () in
  Vec.iter
    (fun ev ->
      if not (Event.is_switch ev) then Hashtbl.replace threads (Event.tid ev) ();
      match ev with
      | Event.Call { tid; _ } ->
        incr calls;
        let d = 1 + (Option.value ~default:0 (Hashtbl.find_opt depth tid)) in
        Hashtbl.replace depth tid d;
        if d > !max_depth then max_depth := d
      | Event.Return { tid } ->
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        Hashtbl.replace depth tid (d - 1)
      | Event.Read { addr; _ } ->
        incr reads;
        touch_addr addr
      | Event.Write { addr; _ } ->
        incr writes;
        touch_addr addr
      | Event.Block { units; _ } ->
        incr blocks;
        block_units := !block_units + units
      | Event.User_to_kernel { addr; len; _ } ->
        incr u2k;
        for a = addr to addr + len - 1 do
          touch_addr a
        done
      | Event.Kernel_to_user { addr; len; _ } ->
        incr k2u;
        for a = addr to addr + len - 1 do
          touch_addr a
        done
      | Event.Switch_thread _ -> incr switches
      | Event.Acquire _ | Event.Release _ | Event.Alloc _ | Event.Free _
      | Event.Thread_start _ | Event.Thread_exit _ ->
        ())
    t;
  {
    events = Vec.length t;
    calls = !calls;
    reads = !reads;
    writes = !writes;
    blocks = !blocks;
    block_units = !block_units;
    user_to_kernel = !u2k;
    kernel_to_user = !k2u;
    switches = !switches;
    threads = Hashtbl.length threads;
    max_call_depth = !max_depth;
    distinct_addresses = Hashtbl.length addresses;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>events: %d@ calls: %d@ reads: %d@ writes: %d@ blocks: %d (%d units)@ \
     userToKernel: %d@ kernelToUser: %d@ switches: %d@ threads: %d@ \
     max call depth: %d@ distinct addresses: %d@]"
    s.events s.calls s.reads s.writes s.blocks s.block_units s.user_to_kernel
    s.kernel_to_user s.switches s.threads s.max_call_depth s.distinct_addresses

let save oc (t : t) =
  Vec.iter
    (fun ev ->
      output_string oc (Event.to_line ev);
      output_char oc '\n')
    t

let load ic =
  let out = Vec.create () in
  let rec loop lineno =
    match In_channel.input_line ic with
    | None -> Ok out
    | Some line when String.trim line = "" -> loop (lineno + 1)
    | Some line -> (
      match Event.of_line line with
      | Ok ev ->
        Vec.push out ev;
        loop (lineno + 1)
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  loop 1
