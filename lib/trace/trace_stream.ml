module Vec = Aprof_util.Vec

type t = unit -> Event.t option

exception Decode_error of string

let empty : t = fun () -> None

let of_trace (tr : Event.t Vec.t) : t =
  let pos = ref 0 in
  fun () ->
    if !pos >= Vec.length tr then None
    else begin
      let ev = Vec.get tr !pos in
      incr pos;
      Some ev
    end

let of_list events : t =
  let rest = ref events in
  fun () ->
    match !rest with
    | [] -> None
    | ev :: tl ->
      rest := tl;
      Some ev

let of_fun f : t = f

let of_text_channel ic : t =
  let lineno = ref 0 in
  let rec next () =
    match In_channel.input_line ic with
    | None -> None
    | Some line ->
      incr lineno;
      if String.trim line = "" then next ()
      else
        (match Event.of_line line with
        | Ok ev -> Some ev
        | Error msg ->
          raise (Decode_error (Printf.sprintf "line %d: %s" !lineno msg)))
  in
  next

let map f (s : t) : t =
 fun () ->
  match s () with
  | None -> None
  | Some ev -> Some (f ev)

let filter p (s : t) : t =
  let rec next () =
    match s () with
    | None -> None
    | Some ev when p ev -> Some ev
    | Some _ -> next ()
  in
  next

let take n (s : t) : t =
  let left = ref n in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      s ()
    end

let rec iter f (s : t) =
  match s () with
  | None -> ()
  | Some ev ->
    f ev;
    iter f s

let rec fold f acc (s : t) =
  match s () with
  | None -> acc
  | Some ev -> fold f (f acc ev) s

let to_trace s =
  let tr = Vec.create () in
  iter (Vec.push tr) s;
  tr

let to_list s = List.rev (fold (fun acc ev -> ev :: acc) [] s)

let length s = fold (fun n _ -> n + 1) 0 s

type sink = { emit : Event.t -> unit; close : unit -> unit }

let null_sink = { emit = ignore; close = ignore }

let sink_of_fun f = { emit = f; close = ignore }

let sink_to_trace tr = { emit = Vec.push tr; close = ignore }

let text_sink oc =
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_line ev);
        output_char oc '\n');
    close = ignore;
  }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let connect src dst =
  let n = fold (fun n ev -> dst.emit ev; n + 1) 0 src in
  dst.close ();
  n
