module Vec = Aprof_util.Vec

type t = unit -> Event.t option

exception Decode_error of string

let empty : t = fun () -> None

let of_trace (tr : Event.t Vec.t) : t =
  let pos = ref 0 in
  fun () ->
    if !pos >= Vec.length tr then None
    else begin
      let ev = Vec.get tr !pos in
      incr pos;
      Some ev
    end

let of_list events : t =
  let rest = ref events in
  fun () ->
    match !rest with
    | [] -> None
    | ev :: tl ->
      rest := tl;
      Some ev

let of_fun f : t = f

let of_text_channel ic : t =
  let lineno = ref 0 in
  let rec next () =
    match In_channel.input_line ic with
    | None -> None
    | Some line ->
      incr lineno;
      if String.trim line = "" then next ()
      else
        (match Event.of_line line with
        | Ok ev -> Some ev
        | Error msg ->
          raise (Decode_error (Printf.sprintf "line %d: %s" !lineno msg)))
  in
  next

let map f (s : t) : t =
 fun () ->
  match s () with
  | None -> None
  | Some ev -> Some (f ev)

let filter p (s : t) : t =
  let rec next () =
    match s () with
    | None -> None
    | Some ev when p ev -> Some ev
    | Some _ -> next ()
  in
  next

let take n (s : t) : t =
  let left = ref n in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      s ()
    end

let rec iter f (s : t) =
  match s () with
  | None -> ()
  | Some ev ->
    f ev;
    iter f s

let rec fold f acc (s : t) =
  match s () with
  | None -> acc
  | Some ev -> fold f (f acc ev) s

let to_trace s =
  let tr = Vec.create () in
  iter (Vec.push tr) s;
  tr

let to_list s = List.rev (fold (fun acc ev -> ev :: acc) [] s)

let length s = fold (fun n _ -> n + 1) 0 s

type sink = { emit : Event.t -> unit; close : unit -> unit }

let null_sink = { emit = ignore; close = ignore }

let sink_of_fun f = { emit = f; close = ignore }

let sink_to_trace tr = { emit = Vec.push tr; close = ignore }

let text_sink oc =
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_line ev);
        output_char oc '\n');
    close = ignore;
  }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let connect src dst =
  Fun.protect ~finally:dst.close (fun () ->
      fold
        (fun n ev ->
          dst.emit ev;
          n + 1)
        0 src)

(* Batched streams.  The same pull/push duality as above, but the unit of
   transfer is a recycled {!Event.Batch.t}: each pull refills and returns
   the same buffer, so steady-state transport allocates nothing per
   event. *)

module Batch = Event.Batch

type batch_source = unit -> Batch.t option

type batch_sink = {
  emit_batch : Batch.t -> unit;
  close_batch : unit -> unit;
}

let batches_of_trace ?(batch_size = Batch.default_capacity) (tr : Event.t Vec.t)
    : batch_source =
  let b = Batch.create ~capacity:batch_size () in
  let pos = ref 0 in
  let n = Vec.length tr in
  fun () ->
    if !pos >= n then None
    else begin
      Batch.clear b;
      while (not (Batch.is_full b)) && !pos < n do
        Batch.push b (Vec.get tr !pos);
        incr pos
      done;
      Some b
    end

let batches_of_events ?(batch_size = Batch.default_capacity) (s : t) :
    batch_source =
  let b = Batch.create ~capacity:batch_size () in
  let finished = ref false in
  fun () ->
    if !finished then None
    else begin
      Batch.clear b;
      let continue = ref true in
      while !continue do
        match s () with
        | None ->
          finished := true;
          continue := false
        | Some ev ->
          Batch.push b ev;
          if Batch.is_full b then continue := false
      done;
      if Batch.is_empty b then None else Some b
    end

let events_of_batches (bs : batch_source) : t =
  let current = ref None in
  let pos = ref 0 in
  let rec next () =
    match !current with
    | Some b when !pos < Batch.length b ->
      let ev = Batch.get b !pos in
      incr pos;
      Some ev
    | _ -> (
      match bs () with
      | None ->
        current := None;
        None
      | Some b ->
        current := Some b;
        pos := 0;
        next ())
  in
  next

let map_batches f (bs : batch_source) : batch_source =
 fun () ->
  match bs () with
  | None -> None
  | Some b ->
    Batch.map_in_place f b;
    Some b

let filter_batches p (bs : batch_source) : batch_source =
  let rec next () =
    match bs () with
    | None -> None
    | Some b ->
      Batch.filter_in_place p b;
      if Batch.is_empty b then next () else Some b
  in
  next

let batch_null_sink = { emit_batch = ignore; close_batch = ignore }

let batch_sink_of_fun f = { emit_batch = f; close_batch = ignore }

let batch_sink_to_trace tr =
  {
    emit_batch = (fun b -> Batch.iter_events (Vec.push tr) b);
    close_batch = ignore;
  }

let batch_sink_of_sink (s : sink) =
  {
    emit_batch = (fun b -> Batch.iter_events s.emit b);
    close_batch = s.close;
  }

let sink_of_batches ?(batch_size = Batch.default_capacity) (bs : batch_sink) :
    sink =
  let b = Batch.create ~capacity:batch_size () in
  let flush () =
    if not (Batch.is_empty b) then begin
      bs.emit_batch b;
      Batch.clear b
    end
  in
  {
    emit =
      (fun ev ->
        Batch.push b ev;
        if Batch.is_full b then flush ());
    close =
      (fun () ->
        flush ();
        bs.close_batch ());
  }

let tee_batches a b =
  {
    emit_batch =
      (fun batch ->
        a.emit_batch batch;
        b.emit_batch batch);
    close_batch =
      (fun () ->
        a.close_batch ();
        b.close_batch ());
  }

let connect_batches (src : batch_source) (dst : batch_sink) =
  Fun.protect ~finally:dst.close_batch (fun () ->
      let n = ref 0 in
      let rec loop () =
        match src () with
        | None -> !n
        | Some b ->
          n := !n + Batch.length b;
          dst.emit_batch b;
          loop ()
      in
      loop ())
