(* Container layer: the ATRC header and version negotiation, the ATRI
   shard-index footer (writer side and seekable parse), and the streaming
   cross-check of a framed stream against that footer.  Nothing here
   looks inside a chunk payload — the frame, transform and event layers
   own those bytes. *)

let bad = Trace_wire.bad
let magic = "ATRC"

(* Version 2 frames every flushed chunk with its byte length and a
   CRC32C of the payload, so readers verify integrity before any varint
   decoding touches the bytes; version 1 (a bare record stream) remains
   readable.  Version 3 keeps the exact v2 framing and index but runs
   each payload through the transform layer (delta + pattern packing,
   optional entropy coding) — see {!Trace_transform} and
   {!Trace_packed}.  Writers emit version 2 unless asked otherwise. *)
let version = 2
let max_version = 3

(* The shard-index footer appended after the end-of-trace marker; see
   the .mli for the layout.  Its own magic differs from the header's so
   a footer can never be mistaken for the start of a trace.  The index
   version always equals the trace version: version >= 2 entries carry
   the chunk's CRC32C so a seeking reader needs no second look at the
   chunk frame header. *)
let index_magic = "ATRI"
let index_trailer_bytes = 8 + 4 (* LE64 footer offset + magic *)

(* Header validation shared by the channel and string entry points;
   returns the format version (1..3). *)
let parse_header hdr =
  if String.length hdr < 5 then bad "truncated header";
  if String.sub hdr 0 4 <> magic then bad "bad magic: not a binary trace";
  match Char.code hdr.[4] with
  | v when v >= 1 && v <= max_version -> v
  | v ->
    bad "unsupported trace format version %d (expected 1..%d)" v max_version

let input_header ic =
  match really_input_string ic 5 with
  | hdr -> parse_header hdr
  | exception End_of_file -> bad "truncated header"

(* ----- writer side ----------------------------------------------------- *)

(* What the writer remembers about one flushed chunk, to be serialized
   into the footer on close.  [c_crc] is -1 for version-1 output.  For
   version 3, [c_bytes]/[c_crc] describe the *stored* (transformed)
   payload — the thing a seeking reader fetches and checksums — while
   [c_events] still counts decoded events. *)
type chunk_entry = {
  c_bytes : int;
  c_events : int;
  c_tag_mask : int;
  c_crc : int;
  c_tids : int array; (* distinct, ascending *)
}

let add_footer buf ~format_version chunks =
  Buffer.add_string buf index_magic;
  Buffer.add_char buf (Char.chr format_version);
  Trace_wire.add_varint buf (List.length chunks);
  List.iter
    (fun c ->
      Trace_wire.add_varint buf c.c_bytes;
      Trace_wire.add_varint buf c.c_events;
      Trace_wire.add_varint buf c.c_tag_mask;
      if format_version >= 2 then Trace_wire.add_varint buf c.c_crc;
      Trace_wire.add_varint buf (Array.length c.c_tids);
      (* Ascending tids delta-encode into one byte each in practice. *)
      let prev = ref 0 in
      Array.iter
        (fun tid ->
          Trace_wire.add_varint buf (tid - !prev);
          prev := tid)
        c.c_tids)
    chunks

let check_format_version v =
  if v < 1 || v > max_version then
    invalid_arg
      (Printf.sprintf "Trace_codec: cannot write format version %d (1..%d)" v
         max_version)

(* ----- seekable shard index -------------------------------------------- *)

type shard = {
  offset : int;
  bytes : int;
  events : int;
  tag_mask : int;
  crc : int;
  tids : int array;
}

let shards ?(path = "trace") ic =
  In_channel.seek ic 0L;
  let trace_version = input_header ic in
  let total = Int64.to_int (In_channel.length ic) in
  (* Smallest indexed trace: header, marker, footer magic+version+count,
     trailer.  Anything shorter is an old index-less (or text) file. *)
  if total < 5 + 1 + 6 + index_trailer_bytes then None
  else begin
    In_channel.seek ic (Int64.of_int (total - index_trailer_bytes));
    let trailer = really_input_string ic index_trailer_bytes in
    if String.sub trailer 8 4 <> index_magic then None
    else begin
      let footer_off = ref 0 in
      for i = 7 downto 0 do
        footer_off := (!footer_off lsl 8) lor Char.code trailer.[i]
      done;
      let footer_off = !footer_off in
      let footer_len = total - index_trailer_bytes - footer_off in
      if footer_off < 5 + 1 || footer_len < 6 then
        bad "cannot read shard index of %s: bad footer offset %d" path
          footer_off;
      In_channel.seek ic (Int64.of_int footer_off);
      let footer = really_input_string ic footer_len in
      let pos = ref 0 in
      let read_byte () =
        if !pos >= footer_len then
          bad "cannot read shard index of %s: truncated at byte %d" path
            (footer_off + !pos)
        else begin
          let b = Char.code (String.unsafe_get footer !pos) in
          incr pos;
          b
        end
      in
      String.iter
        (fun c ->
          if read_byte () <> Char.code c then
            bad "cannot read shard index of %s: bad footer magic at byte %d"
              path
              (footer_off + !pos - 1))
        index_magic;
      (match read_byte () with
      | v when v = trace_version -> ()
      | v ->
        bad
          "cannot read shard index of %s: index version %d does not match \
           trace version %d"
          path v trace_version);
      let nchunks = Trace_wire.read_varint read_byte in
      if nchunks < 0 || nchunks > footer_len then
        bad "cannot read shard index of %s: implausible chunk count %d" path
          nchunks;
      let off = ref 5 in
      (* Explicit loops: the parse order must match the byte order. *)
      let out = ref [] in
      for _ = 1 to nchunks do
        let bytes = Trace_wire.read_varint read_byte in
        let events = Trace_wire.read_varint read_byte in
        let tag_mask = Trace_wire.read_varint read_byte in
        let crc =
          if trace_version >= 2 then Trace_wire.read_varint read_byte else -1
        in
        let ntids = Trace_wire.read_varint read_byte in
        if
          bytes < 0 || events < 0 || ntids < 0 || ntids > footer_len
          || (trace_version >= 2 && (crc < 0 || crc > 0xFFFFFFFF))
        then
          bad "cannot read shard index of %s: corrupt chunk entry at byte %d"
            path
            (footer_off + !pos);
        let tids = Array.make ntids 0 in
        let prev = ref 0 in
        for i = 0 to ntids - 1 do
          prev := !prev + Trace_wire.read_varint read_byte;
          tids.(i) <- !prev
        done;
        (* [offset]/[bytes] delimit the stored payload; a version >= 2
           frame puts a length varint and 4 CRC bytes in front of it. *)
        let payload_off =
          if trace_version >= 2 then
            !off + Trace_wire.uvarint_size bytes + 4
          else !off
        in
        out :=
          { offset = payload_off; bytes; events; tag_mask; crc; tids } :: !out;
        off := payload_off + bytes
      done;
      let out = Array.of_list (List.rev !out) in
      if !pos <> footer_len then
        bad "cannot read shard index of %s: %d trailing bytes at byte %d" path
          (footer_len - !pos)
          (footer_off + !pos);
      (* The chunks plus the end-of-trace marker must account for every
         byte up to the footer. *)
      if !off + 1 <> footer_off then
        bad "cannot read shard index of %s: chunks cover %d bytes, footer at %d"
          path !off footer_off;
      Some out
    end
  end

(* ----- streaming footer cross-check ------------------------------------ *)

(* After the end marker of a framed stream: end of file, or an index
   footer.  A duplicated, deleted or reordered frame is internally
   self-consistent — its own checksum still matches — so the streamed
   frame sequence is verified against the footer, the one record of what
   the writer actually flushed.  [frames] is the (payload bytes, crc) of
   every streamed frame, oldest first; [footer_off] is the byte offset
   where the footer would start.  (The seekable paths re-validate the
   footer themselves in {!shards}.) *)
let check_streamed_footer ~trace_version ~input_byte ~footer_off ~frames =
  match input_byte () with
  | -1 -> ()
  | c when c = Char.code index_magic.[0] ->
    for i = 1 to 3 do
      if input_byte () <> Char.code index_magic.[i] then
        bad "trailing data after end-of-trace marker"
    done;
    let rb () =
      match input_byte () with
      | -1 -> bad "truncated shard index footer"
      | b -> b
    in
    (match rb () with
    | v when v = trace_version -> ()
    | v ->
      bad "shard index version %d does not match trace version %d" v
        trace_version);
    let streamed = Array.of_list frames in
    let nchunks = Trace_wire.read_varint rb in
    if nchunks <> Array.length streamed then
      bad "shard index describes %d chunks, the stream carried %d" nchunks
        (Array.length streamed);
    for k = 0 to nchunks - 1 do
      let bytes = Trace_wire.read_varint rb in
      (* events and tag_mask steer seeking readers, not this one. *)
      let _events = Trace_wire.read_varint rb in
      let _tag_mask = Trace_wire.read_varint rb in
      let crc = Trace_wire.read_varint rb in
      let ntids = Trace_wire.read_varint rb in
      if ntids < 0 || ntids > 0x10000 then bad "corrupt shard index entry %d" k;
      for _ = 1 to ntids do
        ignore (Trace_wire.read_varint rb)
      done;
      let sbytes, scrc = streamed.(k) in
      if bytes <> sbytes || crc <> scrc then
        bad "chunk %d does not match its shard index entry" k
    done;
    let off = ref 0 in
    for i = 0 to 7 do
      off := !off lor (rb () lsl (8 * i))
    done;
    if !off <> footer_off then
      bad "shard index trailer points at byte %d, footer is at byte %d" !off
        footer_off;
    for i = 0 to 3 do
      if rb () <> Char.code index_magic.[i] then
        bad "bad shard index trailer magic"
    done;
    if input_byte () <> -1 then bad "trailing data after shard index"
  | _ -> bad "trailing data after end-of-trace marker"
