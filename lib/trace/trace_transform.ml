(* Payload-transform layer (format version 3): the pluggable stage
   between the frame layer and the event layer.  A stored v3 payload is

     stored := enc:byte body

   where [enc] is a bitmask of applied transforms over the packed event
   stream ({!Trace_packed}):

     0x01   packed stream, stored raw
     0x03   packed stream, entropy-coded ({!Trace_huffman})

   The frame CRC covers [stored] exactly as written, so integrity is
   checked before this layer runs, and salvage / the shard index /
   seeking readers treat the payload as an opaque byte range. *)

let bad = Trace_wire.bad
let enc_packed = 0x01
let enc_entropy = 0x02

(* [seal ~entropy packed] wraps one packed chunk payload for storage,
   entropy-coding it when [entropy] is set *and* the coded form is
   actually smaller — tiny or incompressible chunks store raw, so the
   option never costs bytes. *)
let seal ~entropy packed =
  let n = Bytes.length packed in
  let raw () =
    let out = Bytes.create (n + 1) in
    Bytes.unsafe_set out 0 (Char.unsafe_chr enc_packed);
    Bytes.blit packed 0 out 1 n;
    out
  in
  if not entropy then raw ()
  else
    match Trace_huffman.encode packed ~pos:0 ~len:n with
    | Some coded when String.length coded < n ->
      let out = Bytes.create (String.length coded + 1) in
      Bytes.unsafe_set out 0 (Char.unsafe_chr (enc_packed lor enc_entropy));
      Bytes.blit_string coded 0 out 1 (String.length coded);
      out
    | _ -> raw ()

(* [open_payload bytes ~pos ~len ~scratch] peels the transform envelope
   off a stored payload, returning the packed stream as [(buf, pos,
   len)] — either a window into [bytes] itself (raw) or into [!scratch]
   (entropy-decoded; grown as needed and reused across chunks). *)
let open_payload bytes ~pos ~len ~scratch =
  if len < 1 then bad "empty chunk payload";
  let enc = Char.code (Bytes.unsafe_get bytes pos) in
  if enc land enc_packed = 0 || enc land lnot (enc_packed lor enc_entropy) <> 0
  then bad "unknown payload transform 0x%02x" enc;
  if enc land enc_entropy = 0 then (bytes, pos + 1, len - 1)
  else begin
    let raw_len =
      Trace_huffman.decode bytes ~pos:(pos + 1) ~len:(len - 1) ~scratch
    in
    (!scratch, 0, raw_len)
  end
