(* Event layer, plain coding (format versions 1 and 2): one record per
   event, tag byte + zigzag-varint fields, with interleaved routine-name
   definition records.  This is the layer that fills {!Event.Batch}es —
   including the bulk unsafe fast path and its keep-filtered twin — and
   it is shared verbatim by the v1 sliding-window reader, the v2 framed
   reader, and the seekable shard paths. *)

module Batch = Event.Batch

let bad = Trace_wire.bad
let def_tag = 15
let end_tag = 0
let default_routine_name id = Printf.sprintf "routine_%d" id

(* Event record tags are exactly {!Event.Batch}'s tags (1–14), so both
   encode and decode work on the raw packed fields: tid always, then the
   primary payload when the kind has one, then the length when it has
   one.  This is the single plain encoder; every v1/v2 writer entry
   point funnels into it. *)
let add_record buf ~tag ~tid ~arg ~len =
  Buffer.add_char buf (Char.unsafe_chr tag);
  Trace_wire.add_varint buf tid;
  if Batch.tag_has_arg tag then Trace_wire.add_varint buf arg;
  if Batch.tag_has_len tag then Trace_wire.add_varint buf len

let add_def buf id name =
  Buffer.add_char buf (Char.unsafe_chr def_tag);
  Trace_wire.add_varint buf id;
  Trace_wire.add_varint buf (String.length name);
  Buffer.add_string buf name

(* [encoder buf ~routine_name] is the raw per-record encoder, interning
   routine names: the first [Call] of each routine is preceded by its
   definition record.  Matches {!Event.Batch.iter}'s field order. *)
let encoder buf ~routine_name =
  let defined = Hashtbl.create 64 in
  fun tag tid arg len ->
    if tag = Batch.tag_call && not (Hashtbl.mem defined arg) then begin
      Hashtbl.add defined arg ();
      add_def buf arg (routine_name arg)
    end;
    add_record buf ~tag ~tid ~arg ~len

(* Consume exactly one record through the generic byte source, pushing
   event records into [b].  Returns [true] when the record was the
   end-of-trace marker.  [read_string n] must return exactly [n] bytes.
   Plain end of input is a truncation — a complete trace always carries
   the marker, which is what lets truncation at a record boundary be
   told apart from a genuine end. *)
let step_record ~read_byte ~read_string ~define b =
  match read_byte () with
  | -1 -> bad "truncated trace (missing end-of-trace marker)"
  | tag when tag = end_tag ->
    (match read_byte () with
    | -1 -> ()
    | b when b = Char.code Trace_container.index_magic.[0] ->
      (* A shard-index footer may follow the marker.  Sequential readers
         check its magic and skip the rest; the seekable path
         ({!Trace_container.shards}) is the one that validates and uses
         it. *)
      for i = 1 to 3 do
        if read_byte () <> Char.code Trace_container.index_magic.[i] then
          bad "trailing data after end-of-trace marker"
      done;
      while read_byte () <> -1 do
        ()
      done
    | _ -> bad "trailing data after end-of-trace marker");
    true
  | tag when tag = def_tag ->
    let id = Trace_wire.read_varint read_byte in
    let len = Trace_wire.read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    false
  | tag when tag >= 1 && tag <= Batch.max_tag ->
    let tid = Trace_wire.read_varint read_byte in
    let arg =
      if Batch.tag_has_arg tag then Trace_wire.read_varint read_byte else 0
    in
    let len =
      if Batch.tag_has_len tag then Trace_wire.read_varint read_byte else 0
    in
    Batch.unsafe_push b ~tag ~tid ~arg ~len;
    false
  | tag -> bad "unknown record tag %d" tag

(* One record off a chunk's byte range.  A chunk never contains the
   end-of-trace marker, so tag 0 falls through to the error arm.  With
   [?keep], event records failing [keep tag tid] are parsed (the cursor
   always advances past them) but not stored; definitions are always
   processed. *)
let chunk_step ?keep ~read_byte ~read_string ~define b =
  match read_byte () with
  | -1 -> true (* chunk exhausted at a record boundary *)
  | tag when tag = def_tag ->
    let id = Trace_wire.read_varint read_byte in
    let len = Trace_wire.read_varint read_byte in
    if len < 0 then bad "negative name length";
    define id (read_string len);
    false
  | tag when tag >= 1 && tag <= Batch.max_tag ->
    let tid = Trace_wire.read_varint read_byte in
    let arg =
      if Batch.tag_has_arg tag then Trace_wire.read_varint read_byte else 0
    in
    let len =
      if Batch.tag_has_len tag then Trace_wire.read_varint read_byte else 0
    in
    (match keep with
    | None -> Batch.unsafe_push b ~tag ~tid ~arg ~len
    | Some keep ->
      if keep tag tid then Batch.unsafe_push b ~tag ~tid ~arg ~len);
    false
  | tag -> bad "unknown record tag %d in chunk" tag

(* Decoded bytes are untrusted; downstream tools index shadow pages,
   dense per-thread state and lockset memo keys with the raw fields and
   no per-access guard, so the batch edge is where negative addresses
   and out-of-range thread/lock ids must die.  Every fill site calls
   this once per refilled batch. *)
let validate_batch b =
  try Batch.validate b
  with Invalid_argument msg -> bad "%s" msg

let fill_batch ~read_byte ~read_string ~define b =
  let finished = ref false in
  while (not !finished) && not (Batch.is_full b) do
    finished := step_record ~read_byte ~read_string ~define b
  done;
  validate_batch b;
  !finished

(* Bulk fast path over a chunk: decode plain event records directly off
   the bytes while a whole record is guaranteed to fit below [limit],
   without going through the [read_byte] closure.  Stops — leaving [pos]
   on the offending tag — at definition records, the end marker, or any
   malformed tag, which the generic [step_record] then handles. *)
let fill_batch_bytes b chunk pos limit =
  let tags = Batch.tags b and tids = Batch.tids b in
  let args = Batch.args b and lens = Batch.lens b in
  let cap = Array.length tags in
  let arg_mask = Batch.arg_mask and len_mask = Batch.len_mask in
  (* [!p <= last_start] guarantees a whole record fits before [limit]. *)
  let last_start = limit - Trace_wire.max_record_bytes in
  let i = ref (Batch.length b) in
  let p = ref !pos in
  let stop = ref false in
  while (not !stop) && !i < cap && !p <= last_start do
    let tag = Char.code (Bytes.unsafe_get chunk !p) in
    if tag >= 1 && tag <= Batch.max_tag then begin
      incr p;
      let tid = Trace_wire.read_varint_bytes_fast chunk p in
      let arg =
        if (arg_mask lsr tag) land 1 = 1 then
          Trace_wire.read_varint_bytes_fast chunk p
        else 0
      in
      let len =
        if (len_mask lsr tag) land 1 = 1 then
          Trace_wire.read_varint_bytes_fast chunk p
        else 0
      in
      let j = !i in
      Array.unsafe_set tags j tag;
      Array.unsafe_set tids j tid;
      Array.unsafe_set args j arg;
      Array.unsafe_set lens j len;
      i := j + 1
    end
    else stop := true
  done;
  Batch.unsafe_set_length b !i;
  pos := !p

(* Keep-filtered twin of [fill_batch_bytes]: every record is parsed at
   full speed, but only those satisfying [keep tag tid] are stored into
   the batch.  The parallel replay engine pushes its per-shard filter
   down here so that a foreign, non-broadcast event costs only its
   varint decode — it is never materialized, validated, or re-filtered
   from the batch afterwards. *)
let fill_batch_bytes_keep b chunk pos limit ~keep =
  let tags = Batch.tags b and tids = Batch.tids b in
  let args = Batch.args b and lens = Batch.lens b in
  let cap = Array.length tags in
  let arg_mask = Batch.arg_mask and len_mask = Batch.len_mask in
  let last_start = limit - Trace_wire.max_record_bytes in
  let i = ref (Batch.length b) in
  let p = ref !pos in
  let stop = ref false in
  while (not !stop) && !i < cap && !p <= last_start do
    let tag = Char.code (Bytes.unsafe_get chunk !p) in
    if tag >= 1 && tag <= Batch.max_tag then begin
      incr p;
      let tid = Trace_wire.read_varint_bytes_fast chunk p in
      if keep tag tid then begin
        let arg =
          if (arg_mask lsr tag) land 1 = 1 then
            Trace_wire.read_varint_bytes_fast chunk p
          else 0
        in
        let len =
          if (len_mask lsr tag) land 1 = 1 then
            Trace_wire.read_varint_bytes_fast chunk p
          else 0
        in
        let j = !i in
        Array.unsafe_set tags j tag;
        Array.unsafe_set tids j tid;
        Array.unsafe_set args j arg;
        Array.unsafe_set lens j len;
        i := j + 1
      end
      else begin
        (* Discarded: step over the remaining fields without decoding. *)
        if (arg_mask lsr tag) land 1 = 1 then
          Trace_wire.skip_varint_bytes chunk p;
        if (len_mask lsr tag) land 1 = 1 then
          Trace_wire.skip_varint_bytes chunk p
      end
    end
    else stop := true
  done;
  Batch.unsafe_set_length b !i;
  pos := !p
