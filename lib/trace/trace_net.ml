(* Socket-fed ATRC decoding: an incremental, sans-IO state machine that
   accepts the bytes of one connection in arbitrary slices and drives
   callbacks as complete items decode.  The wire format is exactly the
   file format — header, framed chunks (or bare v1 records), end
   marker, optional shard-index footer — so a client can stream a
   recorded trace file verbatim, and several traces may follow each
   other back-to-back on one connection.

   Memory is bounded by one frame: the machine buffers bytes only until
   the item under the cursor (frame header + payload, one v1 record, or
   the footer) is complete, then decodes and releases them.  Callers
   implement backpressure on top: stop feeding when downstream is busy
   and the kernel socket buffer fills — nothing here queues decoded
   work.

   Corruption policy mirrors the file salvage trichotomy.  In strict
   mode the first malformation raises {!Trace_stream.Decode_error} and
   poisons the machine.  With [~salvage:true] a damaged v2/v3 chunk is
   dropped whole (the frame length re-synchronizes the stream) and
   reported through [on_drop]; damage to the framing itself — an
   implausible length, a broken header — is beyond salvage and still
   raises, as does any v1 malformation (bare records offer no boundary
   to re-synchronize on). *)

module Batch = Event.Batch

let bad = Trace_wire.bad

(* Raised internally when the pending bytes end mid-item; the cursor is
   abandoned and the partial item is retried on the next feed. *)
exception Need_more

type callbacks = {
  on_batch : Batch.t -> unit;
      (* one decoded chunk (or a batch of v1 records), validated;
         valid until the next [feed]/[close] *)
  on_define : int -> string -> unit;  (* routine-name definition *)
  on_trace_end : unit -> unit;  (* end-of-trace marker consumed *)
  on_drop : Trace_codec.drop -> unit;
      (* salvage mode: a damaged chunk was skipped; offsets are relative
         to the current trace's first byte *)
}

type state =
  | Header  (* expecting the 5-byte "ATRC" + version header *)
  | Chunks  (* version >= 2: at a frame boundary *)
  | Records  (* version 1: bare record stream *)
  | Trailer  (* after the end marker: EOF, footer, or another trace *)

type decoder =
  defs:(int * string) list ref -> bytes -> int -> events_hint:int -> Batch.t

type t = {
  cb : callbacks;
  salvage : bool;
  max_frame_bytes : int;
  mutable buf : Bytes.t;  (* pending undecoded bytes at [start..start+len) *)
  mutable start : int;
  mutable len : int;
  mutable off : int;  (* connection-stream offset of [start] *)
  mutable state : state;
  mutable failed : string option;
  mutable version : int;
  mutable trace_off : int;  (* stream offset of the current trace's header *)
  mutable chunk_ord : int;
  mutable frames : (int * int) list;  (* streamed (paylen, crc), newest first *)
  mutable traces : int;
  mutable decoders : (int * decoder) list;  (* per-version reusable decoders *)
  mutable scratch : Bytes.t;  (* payload copy handed to the chunk decoder *)
  v1_batch : Batch.t;
}

(* Names travel inside records, so a corrupt length varint could demand
   gigabytes; no real routine name comes close. *)
let max_name_bytes = 1 lsl 20

(* Pending bytes a consume pass may legitimately leave behind: an
   incomplete frame (header + capped payload) or footer. *)
let pending_slack = 64 * 1024

let create ?(salvage = false) ?(max_frame_bytes = 1 lsl 26) ?batch_size cb =
  if max_frame_bytes < 1 || max_frame_bytes > 1 lsl 30 then
    invalid_arg "Trace_net.create: max_frame_bytes";
  {
    cb;
    salvage;
    max_frame_bytes;
    buf = Bytes.create 65536;
    start = 0;
    len = 0;
    off = 0;
    state = Header;
    failed = None;
    version = 0;
    trace_off = 0;
    chunk_ord = 0;
    frames = [];
    traces = 0;
    decoders = [];
    scratch = Bytes.empty;
    v1_batch = Batch.create ?capacity:batch_size ();
  }

let pending_bytes t = t.len
let traces_completed t = t.traces
let failure t = t.failed

let append t bytes pos n =
  if n > 0 then begin
    let cap = Bytes.length t.buf in
    if t.start + t.len + n > cap then
      if t.len + n <= cap then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let nb = Bytes.create (max (t.len + n) (2 * cap)) in
        Bytes.blit t.buf t.start nb 0 t.len;
        t.buf <- nb;
        t.start <- 0
      end;
    Bytes.blit bytes pos t.buf (t.start + t.len) n;
    t.len <- t.len + n
  end

let commit t n =
  t.start <- t.start + n;
  t.len <- t.len - n;
  t.off <- t.off + n

(* Read one pending byte at cursor [cur] (an offset past [start]);
   running out of pending bytes abandons the current item. *)
let u8 t cur =
  if !cur >= t.len then raise Need_more
  else begin
    let b = Char.code (Bytes.unsafe_get t.buf (t.start + !cur)) in
    incr cur;
    b
  end

let decoder t =
  match List.assoc_opt t.version t.decoders with
  | Some d -> d
  | None ->
    let d = Trace_codec.chunk_decoder ~version:t.version () in
    t.decoders <- (t.version, d) :: t.decoders;
    d

let step_header t =
  if t.len < 5 then false
  else begin
    let hdr = Bytes.sub_string t.buf t.start 5 in
    t.version <- Trace_container.parse_header hdr;
    t.trace_off <- t.off;
    t.chunk_ord <- 0;
    t.frames <- [];
    commit t 5;
    t.state <- (if t.version >= 2 then Chunks else Records);
    true
  end

let deliver_v1 t =
  if Batch.length t.v1_batch > 0 then begin
    (try Batch.validate t.v1_batch with Invalid_argument m -> bad "%s" m);
    t.cb.on_batch t.v1_batch;
    Batch.clear t.v1_batch
  end

(* Version-1 records, one at a time: each record commits on its own (a
   mid-record shortfall rolls the cursor back to the record start), and
   decoded events accumulate in a recycled batch that [feed] flushes
   when the slice is drained. *)
let step_records t =
  let progress = ref false in
  (try
     while t.state = Records do
       let cur = ref 0 in
       let tag = u8 t cur in
       if tag = Trace_record.end_tag then begin
         deliver_v1 t;
         commit t !cur;
         progress := true;
         t.traces <- t.traces + 1;
         t.state <- Trailer;
         t.cb.on_trace_end ()
       end
       else if tag = Trace_record.def_tag then begin
         let id = Trace_wire.read_varint (fun () -> u8 t cur) in
         let nlen = Trace_wire.read_varint (fun () -> u8 t cur) in
         if nlen < 0 || nlen > max_name_bytes then
           bad "implausible name length %d" nlen;
         if !cur + nlen > t.len then raise Need_more;
         let name = Bytes.sub_string t.buf (t.start + !cur) nlen in
         cur := !cur + nlen;
         commit t !cur;
         progress := true;
         t.cb.on_define id name
       end
       else if tag >= 1 && tag <= Batch.max_tag then begin
         let tid = Trace_wire.read_varint (fun () -> u8 t cur) in
         let arg =
           if Batch.tag_has_arg tag then
             Trace_wire.read_varint (fun () -> u8 t cur)
           else 0
         in
         let ln =
           if Batch.tag_has_len tag then
             Trace_wire.read_varint (fun () -> u8 t cur)
           else 0
         in
         commit t !cur;
         progress := true;
         if Batch.is_full t.v1_batch then deliver_v1 t;
         Batch.unsafe_push t.v1_batch ~tag ~tid ~arg ~len:ln
       end
       else bad "unknown record tag %d" tag
     done
   with Need_more -> ());
  !progress

(* One framed chunk (or the end marker).  The payload is copied into a
   recycled scratch buffer and its pending bytes committed *before* the
   CRC check and decode, so a damaged chunk is already skipped when
   salvage reports it — the frame length is the re-synchronization
   point, exactly as in the file reader. *)
let step_chunk t =
  let parsed =
    let cur = ref 0 in
    try
      let paylen = Trace_wire.read_uvarint (fun () -> u8 t cur) in
      if paylen = 0 then `End !cur
      else begin
        if paylen > t.max_frame_bytes then
          bad "chunk %d at byte %d: implausible length %d" t.chunk_ord
            (t.off - t.trace_off) paylen;
        let crc = ref 0 in
        for i = 0 to 3 do
          crc := !crc lor (u8 t cur lsl (8 * i))
        done;
        if !cur + paylen > t.len then raise Need_more;
        `Frame (!cur, paylen, !crc)
      end
    with Need_more -> `More
  in
  match parsed with
  | `More -> false
  | `End n ->
    commit t n;
    t.traces <- t.traces + 1;
    t.state <- Trailer;
    t.cb.on_trace_end ();
    true
  | `Frame (hdr, paylen, crc) ->
    let rel_off = t.off + hdr - t.trace_off in
    let ord = t.chunk_ord in
    t.chunk_ord <- ord + 1;
    t.frames <- (paylen, crc) :: t.frames;
    if Bytes.length t.scratch < paylen then
      t.scratch <- Bytes.create (max paylen (2 * Bytes.length t.scratch));
    Bytes.blit t.buf (t.start + hdr) t.scratch 0 paylen;
    commit t (hdr + paylen);
    (match
       let context () = Printf.sprintf "chunk %d at byte %d" ord rel_off in
       Trace_frame.check_payload ~context t.scratch ~pos:0 ~len:paylen ~crc;
       let defs = ref [] in
       let b = (decoder t) ~defs t.scratch paylen ~events_hint:(-1) in
       (b, defs)
     with
    | b, defs ->
      List.iter (fun (id, name) -> t.cb.on_define id name) (List.rev !defs);
      t.cb.on_batch b
    | exception Trace_stream.Decode_error reason ->
      if not t.salvage then bad "%s" reason;
      t.cb.on_drop
        {
          Trace_codec.drop_chunk = ord;
          drop_offset = rel_off;
          drop_bytes = paylen;
          drop_events = -1;
          drop_reason = reason;
        });
    true

(* The shard-index footer, streamed.  In strict mode the streamed frame
   sequence is cross-checked against the footer exactly as the file
   reader does ({!Trace_container.check_streamed_footer}); under
   salvage only the layout is verified (skipped frames make the
   cross-check meaningless).  The trailer offset is checked in both
   modes — it is trace-relative, so a client streaming a file verbatim
   matches. *)
let step_footer t =
  let cur = ref 0 in
  let rb () = u8 t cur in
  let footer_rel = t.off - t.trace_off in
  cur := 4 (* the "ATRI" magic, matched by the caller *);
  (match rb () with
  | v when v = t.version -> ()
  | v ->
    bad "shard index version %d does not match trace version %d" v t.version);
  let strict = (not t.salvage) && t.version >= 2 in
  let frames = if strict then Array.of_list (List.rev t.frames) else [||] in
  let nchunks = Trace_wire.read_varint rb in
  if nchunks < 0 || nchunks > 1 lsl 24 then
    bad "implausible shard index chunk count %d" nchunks;
  if strict && nchunks <> Array.length frames then
    bad "shard index describes %d chunks, the stream carried %d" nchunks
      (Array.length frames);
  for k = 0 to nchunks - 1 do
    let bytes = Trace_wire.read_varint rb in
    let _events = Trace_wire.read_varint rb in
    let _tag_mask = Trace_wire.read_varint rb in
    let crc = if t.version >= 2 then Trace_wire.read_varint rb else -1 in
    let ntids = Trace_wire.read_varint rb in
    if ntids < 0 || ntids > 0x10000 then bad "corrupt shard index entry %d" k;
    for _ = 1 to ntids do
      ignore (Trace_wire.read_varint rb)
    done;
    if strict then begin
      let sbytes, scrc = frames.(k) in
      if bytes <> sbytes || crc <> scrc then
        bad "chunk %d does not match its shard index entry" k
    end
  done;
  let off = ref 0 in
  for i = 0 to 7 do
    off := !off lor (rb () lsl (8 * i))
  done;
  if !off <> footer_rel then
    bad "shard index trailer points at byte %d, footer is at byte %d" !off
      footer_rel;
  String.iter
    (fun c -> if rb () <> Char.code c then bad "bad shard index trailer magic")
    Trace_container.index_magic;
  commit t !cur;
  true

let step_trailer t =
  if t.len = 0 then false
  else if Bytes.get t.buf t.start <> 'A' then
    bad "trailing data after end-of-trace marker"
  else if t.len < 4 then false
  else begin
    let four = Bytes.sub_string t.buf t.start 4 in
    if four = Trace_container.magic then begin
      (* Another trace follows back-to-back; the header step consumes. *)
      t.state <- Header;
      true
    end
    else if four = Trace_container.index_magic then
      try step_footer t with Need_more -> false
    else bad "trailing data after end-of-trace marker"
  end

let check_failed t =
  match t.failed with
  | Some m -> raise (Trace_stream.Decode_error m)
  | None -> ()

let feed t bytes ~pos ~len =
  check_failed t;
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Trace_net.feed";
  try
    append t bytes pos len;
    let progress = ref true in
    while !progress do
      progress :=
        (match t.state with
        | Header -> step_header t
        | Chunks -> step_chunk t
        | Records -> step_records t
        | Trailer -> step_trailer t)
    done;
    (* Deliver what this slice completed even when the next record is
       still open: a live profiler should not wait for a full batch. *)
    if t.state = Records then deliver_v1 t;
    if t.len > t.max_frame_bytes + pending_slack then
      bad "connection buffered %d bytes without a decodable item" t.len
  with Trace_stream.Decode_error m as e ->
    t.failed <- Some m;
    raise e

let close t =
  check_failed t;
  let clean =
    t.len = 0
    && match t.state with Trailer -> true | Header -> t.off = 0 | _ -> false
  in
  if not clean then begin
    let m = "truncated trace (missing end-of-trace marker)" in
    t.failed <- Some m;
    raise (Trace_stream.Decode_error m)
  end
