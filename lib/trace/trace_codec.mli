(** Compact binary trace format.

    The wire format is a 5-byte versioned header (magic ["ATRC"] plus a
    version byte) followed by the record region.  Every record starts
    with a one-byte tag: tags 1–14 are the {!Event.t} variants, whose
    integer fields are zigzag varints (LEB128, so small values — the
    common case for thread ids and interned routine ids — cost one
    byte); tag 15 is a routine-name definition [(id, name)] binding an
    interned routine id to its name.  Definitions are interleaved with
    the events — the writer emits one immediately before the first
    [Call] that references the routine — so the intern table travels
    inside the stream and both ends can operate strictly online, never
    holding more than one I/O chunk in memory.

    Integers round-trip over the full [int] range (zigzag encoding);
    names round-trip byte-exactly, including empty and non-ASCII ones.
    Varints are canonical — a redundant zero continuation group is
    rejected — so each trace has exactly one byte representation.

    {2 Version 2: checksummed chunk frames}

    In format version 2 (the default output), the record region is a
    sequence of self-delimiting frames, each one writer flush unit:

    {v
    frame := paylen:uvarint crc32c:le32 payload[paylen]
    v}

    [paylen] is a plain (non-zigzag) canonical varint and is never 0;
    [crc32c] is the CRC32C of the payload bytes; records never span
    frames.  Readers verify the checksum {e before} any varint decoding,
    so the [unsafe_get] decode fast path never touches corrupt bytes.
    The end-of-trace marker is a single 0 byte where the next frame
    length would be (the same byte as the version-1 marker).  Version-1
    files — a bare record stream, no frames or checksums — remain fully
    readable; writers can still produce them via [?format_version].

    A complete trace ends with the end-of-trace marker, so truncation is
    detected even when it falls exactly on a record boundary.  Any
    malformation — a missing marker, a truncated record, a checksum
    mismatch, trailing bytes after the marker, an unknown tag, a bad
    header — raises {!Trace_stream.Decode_error}.

    {2 Version 3: redundancy-suppressed chunks}

    Format version 3 keeps the version-2 container byte-for-byte — the
    same header, frames, end marker, and shard index — but each frame's
    payload is a {e stored} chunk produced by two extra layers:

    {v
    stored := enc:byte body
    enc    := 0x01                   ; packed event stream, raw
            | 0x03                   ; packed event stream, entropy-coded
    v}

    The packed event stream replaces the per-record [tid] with a current
    thread id (opcode 16 switches it), delta-encodes address arguments
    against a per-(chunk, thread) register, collapses repeated event
    groups into a repeat opcode (17: replay the previous [L] bytes [n]
    more times), and dictionary-codes recurring event-tag sequences
    (18 defines a pattern, 19 / short opcodes 32–255 instantiate one).
    All coding context resets at each chunk boundary, so chunks stay
    independently decodable and the shard index, salvage, and the
    seeking readers work unchanged on the stored bytes.  The optional
    entropy stage is an order-0 canonical Huffman pass over the packed
    bytes, applied only when it shrinks the chunk.

    The frame CRC32C covers the stored payload exactly as written, and
    the index entries describe the stored byte ranges, while [events]
    still counts decoded events.  Version-3 writers additionally flush a
    chunk after 65536 events, so repeat suppression cannot collapse the
    whole trace into one shard and starve the parallel replay of work
    units.  Writers emit version 2 unless [?format_version:3] is
    given.

    {2 Shard index}

    After the end-of-trace marker, {!batch_writer} appends a seekable
    shard-index footer describing every flushed chunk (its byte length,
    event count, the set of record tags present, its CRC32C in version
    2, and the set of thread ids present), so a parallel replay can
    decide which chunks concern it and seek straight to them.  The
    footer layout is:

    {v
    "ATRI" version:byte nchunks:varint chunk*   ; the footer body
    footer_offset:le64 "ATRI"                   ; fixed 12-byte trailer
    chunk := bytes:varint events:varint tag_mask:varint
             [crc:varint]                       ; version >= 2 only
             ntids:varint tid_delta:varint*     ; tids ascending
    v}

    The index version byte always equals the trace version.  The fixed
    trailer lets a reader find the footer from the end of the file; a
    file without the trailing magic is an index-less trace and still
    reads normally (the footer is likewise skipped by the sequential
    readers, so indexed files stay readable by old-style streaming
    consumers of this module). *)

val magic : string

(** The format version writers emit by default (2). *)
val version : int

(** The newest format version this module reads and writes (3). *)
val max_version : int

(** [file_version ic] seeks to the start of [ic] and returns the trace's
    format version.
    @raise Trace_stream.Decode_error on a bad header. *)
val file_version : in_channel -> int

(** {1 Streaming}

    The batch entry points are the primitive ones — they encode/decode a
    whole {!Event.Batch.t} of raw int fields at a time into a reused
    buffer/chunk, never constructing an [Event.t].  The per-event
    {!writer}/{!reader} are thin layers over them
    ({!Trace_stream.sink_of_batches} / {!Trace_stream.events_of_batches})
    kept for glue and tests. *)

(** [batch_writer oc] is a batch sink encoding packed events into [oc].
    Same format, buffering, and close contract as {!writer}.
    @param index write the shard-index footer on close (default [true];
    pass [false] for an old-style index-less trace).
    @param format_version wire format to emit, [1]..[3] (default
    {!version}); version-1 and version-2 output is byte-identical to
    what pre-split writers produced.
    @param entropy version 3 only: entropy-code each chunk when that
    makes it smaller (default [false]: the Huffman pass roughly halves
    the packed bytes again but costs decode throughput, so it is opt-in
    for archival traces rather than replay working sets).
    @raise Invalid_argument on an unsupported [format_version]. *)
val batch_writer :
  ?chunk_bytes:int ->
  ?index:bool ->
  ?format_version:int ->
  ?entropy:bool ->
  ?routine_name:(int -> string) ->
  out_channel ->
  Trace_stream.batch_sink

(** [batch_reader ic] validates the header and returns the routine-name
    table together with a batch source decoding up to [batch_size]
    events per pull into a recycled batch (valid until the next pull).
    The table fills in as batches are pulled.  Both format versions are
    accepted; on version 2 each chunk's checksum is verified before its
    records are decoded, the streamed frame sequence is cross-checked
    against the index footer when one is present (catching duplicated,
    deleted, or reordered frames, which are individually
    self-consistent), and [chunk_bytes] (the version-1 I/O buffer size)
    is ignored because the frames delimit themselves.
    @raise Trace_stream.Decode_error on a bad header; the source raises
    it on malformed records or a checksum mismatch. *)
val batch_reader :
  ?chunk_bytes:int ->
  ?batch_size:int ->
  in_channel ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** [writer oc] is a sink encoding events into [oc].  Output is
    buffered; the sink's [close] writes the end-of-trace marker and
    flushes the buffer (but leaves the channel open) — a trace without
    it is rejected as truncated.  The header is written immediately.
    @param routine_name names embedded in definition records (default
    [fun id -> "routine_<id>"]).
    @param chunk_bytes flush threshold in bytes (default 64 KiB). *)
val writer :
  ?chunk_bytes:int ->
  ?index:bool ->
  ?format_version:int ->
  ?entropy:bool ->
  ?routine_name:(int -> string) ->
  out_channel ->
  Trace_stream.sink

(** [reader ic] validates the header and returns the routine-name table
    together with the event stream.  The table fills in as the stream is
    consumed (definitions decode in stream order); it is complete once
    the stream returns [None].  Reads are buffered, so peak live memory
    is bounded by the chunk, not the trace.
    @raise Trace_stream.Decode_error on a bad header; the returned
    stream raises it on malformed records. *)
val reader :
  ?chunk_bytes:int ->
  in_channel ->
  (int, string) Hashtbl.t * Trace_stream.t

(** {1 Shard index} *)

(** One writer flush unit, as described by the index footer.  [offset]
    and [bytes] delimit its record payload in the file (excluding the
    version-2 frame header); [events] counts event records (definition
    records excluded); [tag_mask] has bit [t] set iff a record with tag
    [t] is present; [crc] is the payload's CRC32C, or [-1] in a
    version-1 file; [tids] are the distinct thread ids appearing in the
    chunk, ascending. *)
type shard = {
  offset : int;
  bytes : int;
  events : int;
  tag_mask : int;
  crc : int;
  tids : int array;
}

(** [shards ~path ic] reads the shard index of a seekable channel.
    [None] means the file carries no index (written before the index
    existed, or with [~index:false]) — fall back to {!batch_reader}.
    The channel position is unspecified afterwards.
    @param path the file name used in error messages (default ["trace"]).
    @raise Trace_stream.Decode_error when the trailing magic is present
    but the footer is truncated or inconsistent; the message names
    [path] and the offending byte offset. *)
val shards : ?path:string -> in_channel -> shard array option

(** [sharded_reader ic shards ~select] is a batch source decoding, in
    file order, exactly the chunks of [shards] that [select] accepts,
    seeking over the rest.  On version-2 files each selected chunk's
    checksum is verified before its bytes are decoded.  Because
    routine-name definition records live in the chunk holding the
    routine's first [Call], the returned name table only covers the
    selected chunks — a parallel replay unions the tables of its
    workers to recover the full one.
    @raise Trace_stream.Decode_error (from the source) on malformed
    chunk contents or a checksum mismatch, naming [path]. *)
val sharded_reader :
  ?path:string ->
  ?batch_size:int ->
  in_channel ->
  shard array ->
  select:(shard -> bool) ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** [seek_chunk ic sh] is [sharded_reader] over the single chunk [sh]. *)
val seek_chunk :
  ?path:string ->
  ?batch_size:int ->
  in_channel ->
  shard ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** [chunk_session ic] is the repeated-seek variant of {!seek_chunk} for
    callers that claim chunks dynamically (the work-stealing replay
    engine): [read sh] seeks to, checksums, and decodes the single
    chunk [sh], reusing one batch, one byte buffer, and one name table
    across calls — so visiting a chunk costs no allocation beyond the
    first, largest chunk.  The name table accumulates the definitions of
    every chunk read so far.  A source returned by [read] must be
    drained (or abandoned) before [read] is called again: it shares the
    session's buffers.

    [keep tag tid] filters event records *inside* the decode loop: a
    record failing it is parsed (and covered by the chunk checksum) but
    never stored into a batch, so skipped events cost only their varint
    decode.  Definition records are always processed.  The parallel
    replay engine uses this to make a shard's foreign, non-broadcast
    events parse-only.  Note that a filtered event also bypasses batch
    validation — the strict sequential path still validates every
    event. *)
val chunk_session :
  ?batch_size:int ->
  ?keep:(int -> int -> bool) ->
  in_channel ->
  (int, string) Hashtbl.t * (shard -> Trace_stream.batch_source)

(** {1 Salvage}

    Reading with [~on_corrupt:(`Skip report)] trades completeness for
    progress: instead of aborting on the first malformed chunk, the
    reader skips it, reports exactly what was dropped, and
    re-synchronizes at the next chunk boundary. *)

(** One skipped region of a damaged trace.  [drop_chunk] is the chunk
    ordinal (0-based; [-1] when the damaged file offers no chunk
    structure to count by), [drop_offset] the file byte offset of the
    dropped region ([-1] if unknown), [drop_bytes] its payload length
    ([-1] if unknown), [drop_events] the event count according to the
    shard index ([-1] when no index is available), and [drop_reason] a
    human-readable cause. *)
type drop = {
  drop_chunk : int;
  drop_offset : int;
  drop_bytes : int;
  drop_events : int;
  drop_reason : string;
}

(** [read ~on_corrupt ic] reads a binary trace from a seekable channel.

    With [`Fail] this is exactly {!batch_reader}.

    With [`Skip report], damaged regions are skipped and [report] is
    called once per skipped region, in file order, as reading
    progresses.  Chunks are delivered all-or-nothing: a chunk either
    decodes completely (and arrives as one batch) or is dropped whole,
    so a surviving prefix of a damaged chunk can never leak into the
    profile.  Re-synchronization uses, in order of preference: the ATRI
    shard index (exact boundaries, exact dropped-event counts — also the
    only way duplicated or reordered chunk frames are detected), the
    version-2 frame lengths (the remainder of the file is dropped once
    the framing itself is damaged), or — for an index-less version-1
    file, which has no boundaries to re-synchronize on — nothing: the
    first malformation drops the rest of the file as one terminal
    region.

    Even under [`Skip] some damage is beyond salvage and raises
    {!Trace_stream.Decode_error}: an unreadable header, and a file whose
    trailer promises an index that then fails to parse (the boundary
    authority itself is untrustworthy).
    @param path the file name used in error messages (default ["trace"]). *)
val read :
  ?chunk_bytes:int ->
  ?batch_size:int ->
  ?path:string ->
  on_corrupt:[ `Fail | `Skip of drop -> unit ] ->
  in_channel ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** {1 Whole-trace convenience} *)

(** [to_string ?routine_name tr] encodes an in-memory trace (without a
    shard index). *)
val to_string :
  ?format_version:int ->
  ?entropy:bool ->
  ?routine_name:(int -> string) ->
  Event.t Aprof_util.Vec.t ->
  string

(** [of_string s] decodes a full binary trace of any version,
    returning the events and the embedded routine-name table (in
    definition order).  All decode failures are reported as [Error]. *)
val of_string :
  string -> (Event.t Aprof_util.Vec.t * (int * string) list, string) result

(** {1 Whole-chunk decoding}

    The building block behind salvage and the socket-fed reader
    ({!Trace_net}): decode one complete framed chunk payload,
    all-or-nothing, into a batch. *)

(** [chunk_decoder ~version ()] is a reusable decoder for the chunk
    payloads of a version-[version] trace ([2] plain records, [>= 3]
    packed).  [decode ~defs chunk n ~events_hint] decodes the payload
    [chunk[0..n)] (already CRC-verified by the caller) into a batch that
    stays valid until the next call; routine-name definitions are
    prepended to [defs] (newest first) only when the whole chunk decodes
    cleanly.  [events_hint] presizes the batch ([-1] when unknown).
    @raise Trace_stream.Decode_error on any malformation — the caller
    decides whether that fails the stream or drops the chunk. *)
val chunk_decoder :
  version:int ->
  unit ->
  defs:(int * string) list ref ->
  bytes ->
  int ->
  events_hint:int ->
  Event.Batch.t

(** {1 Format sniffing} *)

(** [detect ic] peeks at the first bytes of a seekable channel and
    reports whether it holds this binary format or (presumably) the text
    format; the channel is rewound to the start. *)
val detect : in_channel -> [ `Binary | `Text ]
