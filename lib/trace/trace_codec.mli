(** Compact binary trace format.

    The wire format is a 5-byte versioned header (magic ["ATRC"] plus a
    version byte) followed by a flat sequence of records.  Every record
    starts with a one-byte tag: tags 1–14 are the {!Event.t} variants,
    whose integer fields are zigzag varints (LEB128, so small values —
    the common case for thread ids and interned routine ids — cost one
    byte); tag 15 is a routine-name definition [(id, name)] binding an
    interned routine id to its name.  Definitions are interleaved with
    the events — the writer emits one immediately before the first
    [Call] that references the routine — so the intern table travels
    inside the stream and both ends can operate strictly online, never
    holding more than one I/O chunk in memory.

    Integers round-trip over the full [int] range (zigzag encoding);
    names round-trip byte-exactly, including empty and non-ASCII ones.

    A complete trace ends with a one-byte end-of-trace marker (tag 0),
    so truncation is detected even when it falls exactly on a record
    boundary.  Any malformation — a missing marker, a truncated record,
    trailing bytes after the marker, an unknown tag, a bad header —
    raises {!Trace_stream.Decode_error}.

    {2 Shard index}

    After the end-of-trace marker, {!batch_writer} appends a seekable
    shard-index footer describing every flushed chunk (its byte length,
    event count, the set of record tags present, and the set of thread
    ids present), so a parallel replay can decide which chunks concern
    it and seek straight to them.  The footer layout is:

    {v
    "ATRI" version:byte nchunks:varint chunk*   ; the footer body
    footer_offset:le64 "ATRI"                   ; fixed 12-byte trailer
    chunk := bytes:varint events:varint tag_mask:varint
             ntids:varint tid_delta:varint*     ; tids ascending
    v}

    The fixed-size trailer lets a reader find the footer from the end
    of the file; a file without the trailing magic is an old index-less
    trace and still reads normally (the footer is likewise skipped by
    the sequential readers, so indexed files stay readable by old-style
    streaming consumers of this module). *)

val magic : string
val version : int

(** {1 Streaming}

    The batch entry points are the primitive ones — they encode/decode a
    whole {!Event.Batch.t} of raw int fields at a time into a reused
    buffer/chunk, never constructing an [Event.t].  The per-event
    {!writer}/{!reader} are thin layers over them
    ({!Trace_stream.sink_of_batches} / {!Trace_stream.events_of_batches})
    kept for glue and tests. *)

(** [batch_writer oc] is a batch sink encoding packed events into [oc].
    Same format, buffering, and close contract as {!writer}.
    @param index write the shard-index footer on close (default [true];
    pass [false] for an old-style index-less trace). *)
val batch_writer :
  ?chunk_bytes:int ->
  ?index:bool ->
  ?routine_name:(int -> string) ->
  out_channel ->
  Trace_stream.batch_sink

(** [batch_reader ic] validates the header and returns the routine-name
    table together with a batch source decoding up to [batch_size]
    events per pull into a recycled batch (valid until the next pull).
    The table fills in as batches are pulled.
    @raise Trace_stream.Decode_error on a bad header; the source raises
    it on malformed records. *)
val batch_reader :
  ?chunk_bytes:int ->
  ?batch_size:int ->
  in_channel ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** [writer oc] is a sink encoding events into [oc].  Output is
    buffered; the sink's [close] writes the end-of-trace marker and
    flushes the buffer (but leaves the channel open) — a trace without
    it is rejected as truncated.  The header is written immediately.
    @param routine_name names embedded in definition records (default
    [fun id -> "routine_<id>"]).
    @param chunk_bytes flush threshold in bytes (default 64 KiB). *)
val writer :
  ?chunk_bytes:int ->
  ?index:bool ->
  ?routine_name:(int -> string) ->
  out_channel ->
  Trace_stream.sink

(** [reader ic] validates the header and returns the routine-name table
    together with the event stream.  The table fills in as the stream is
    consumed (definitions decode in stream order); it is complete once
    the stream returns [None].  Reads are buffered [chunk_bytes] at a
    time, so peak live memory is bounded by the chunk, not the trace.
    @raise Trace_stream.Decode_error on a bad header; the returned
    stream raises it on malformed records. *)
val reader :
  ?chunk_bytes:int ->
  in_channel ->
  (int, string) Hashtbl.t * Trace_stream.t

(** {1 Shard index} *)

(** One writer flush unit, as described by the index footer.  [offset]
    and [bytes] delimit its records in the file; [events] counts event
    records (definition records excluded); [tag_mask] has bit [t] set
    iff a record with tag [t] is present; [tids] are the distinct
    thread ids appearing in the chunk, ascending. *)
type shard = {
  offset : int;
  bytes : int;
  events : int;
  tag_mask : int;
  tids : int array;
}

(** [shards ~path ic] reads the shard index of a seekable channel.
    [None] means the file carries no index (written before the index
    existed, or with [~index:false]) — fall back to {!batch_reader}.
    The channel position is unspecified afterwards.
    @param path the file name used in error messages (default ["trace"]).
    @raise Trace_stream.Decode_error when the trailing magic is present
    but the footer is truncated or inconsistent; the message names
    [path] and the offending byte offset. *)
val shards : ?path:string -> in_channel -> shard array option

(** [sharded_reader ic shards ~select] is a batch source decoding, in
    file order, exactly the chunks of [shards] that [select] accepts,
    seeking over the rest.  Because routine-name definition records
    live in the chunk holding the routine's first [Call], the returned
    name table only covers the selected chunks — a parallel replay
    unions the tables of its workers to recover the full one.
    @raise Trace_stream.Decode_error (from the source) on malformed
    chunk contents, naming [path]. *)
val sharded_reader :
  ?path:string ->
  ?batch_size:int ->
  in_channel ->
  shard array ->
  select:(shard -> bool) ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** [seek_chunk ic sh] is [sharded_reader] over the single chunk [sh]. *)
val seek_chunk :
  ?path:string ->
  ?batch_size:int ->
  in_channel ->
  shard ->
  (int, string) Hashtbl.t * Trace_stream.batch_source

(** {1 Whole-trace convenience} *)

(** [to_string ?routine_name tr] encodes an in-memory trace. *)
val to_string :
  ?routine_name:(int -> string) -> Event.t Aprof_util.Vec.t -> string

(** [of_string s] decodes a full binary trace, returning the events and
    the embedded routine-name table (in definition order).  All decode
    failures are reported as [Error]. *)
val of_string :
  string -> (Event.t Aprof_util.Vec.t * (int * string) list, string) result

(** {1 Format sniffing} *)

(** [detect ic] peeks at the first bytes of a seekable channel and
    reports whether it holds this binary format or (presumably) the text
    format; the channel is rewound to the start. *)
val detect : in_channel -> [ `Binary | `Text ]
