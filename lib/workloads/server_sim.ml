(* Async-I/O-heavy server miniature: an accept/parse/handle/respond
   pipeline with bursty connection arrivals.

   One listener thread replays a build-time arrival schedule — bursts of
   1..4 connections separated by idle gaps — and fans connection ids
   into a bounded channel; a pool of workers pulls connections and runs
   each request through parse (wire pread), handle (backing-store pread
   + scan), respond (sys_write + shared stats bump).  The connection
   fan-in and the worker-pool competition are thread-induced input; the
   kernel transfers are external input.

   Every request (offsets, lengths, handling cost, burst shape) is drawn
   at build time from the workload seed and executed exactly once by
   whichever worker wins it, so the total and per-routine external-op
   counts are identical under every scheduler — the invariance the
   sched-gate asserts.  Under the [Async_io] policy the preads/writes
   park workers on the completion queue, exercising the event-loop
   schedule; under [Work_stealing] the per-connection jobs migrate
   between cores. *)

open Aprof_vm.Program
module Device = Aprof_vm.Device
module Sync = Aprof_vm.Sync
module Rng = Aprof_util.Rng

type req = { off : int; len : int; cost : int }

let header_cells = 4
let buf_cells = 32 (* >= header_cells and >= any req.len *)

let store_device ~cells ~seed =
  let rng = Rng.create (seed lxor 0x5e12) in
  Device.file (Array.init cells (fun _ -> Rng.int rng 0x10000))

(* The request wire: an infinite stream, positioned reads only. *)
let wire_device () = Device.stream (fun i -> (i * 131) land 0xff)

let parse_request ~wire_fd ~buf ~conn ~r =
  call "parse_request"
    (let* got = sys_pread wire_fd buf header_cells ~pos:((conn * 64) + (r * header_cells)) in
     let* _hdr = Blocks.read_sum buf (min got header_cells) in
     compute 2)

let handle_request ~store_fd ~buf req =
  call "handle_request"
    (let* got = sys_pread store_fd buf req.len ~pos:req.off in
     let* _sum = Blocks.read_sum buf got in
     let* () = compute req.cost in
     return got)

let send_response ~out_fd ~buf ~stats ~stats_lock got =
  call "send_response"
    (let* _n = sys_write out_fd buf got in
     Sync.Mutex.with_lock stats_lock
       (let* served = read stats in
        let* () = write stats (served + 1) in
        let* cells = read (stats + 1) in
        write (stats + 1) (cells + got)))

let handle_conn ~store_fd ~wire_fd ~out_fd ~buf ~stats ~stats_lock ~conn reqs =
  call "handle_conn"
    (iter_list
       (fun (r, req) ->
         let* () = parse_request ~wire_fd ~buf ~conn ~r in
         let* got = handle_request ~store_fd ~buf req in
         send_response ~out_fd ~buf ~stats ~stats_lock got)
       (List.mapi (fun r req -> (r, req)) reqs))

let worker ~conns ~jobs ~stats ~stats_lock =
  call "worker_loop"
    (let* buf = alloc buf_cells in
     let* store_fd = sys_open "store" in
     let* wire_fd = sys_open "wire" in
     let* out_fd = sys_open "client" in
     let rec serve () =
       let* conn = Sync.Channel.recv jobs in
       if conn < 0 then return ()
       else
         let* () =
           handle_conn ~store_fd ~wire_fd ~out_fd ~buf ~stats ~stats_lock
             ~conn conns.(conn)
         in
         serve ()
     in
     serve ())

let accept_loop ~bursts ~jobs =
  call "accept_loop"
    (iter_list
       (fun burst ->
         let* () =
           call "accept_burst"
             (iter_list (fun conn -> Sync.Channel.send jobs conn) burst)
         in
         (* idle gap between bursts *)
         let* () = compute 1 in
         yield)
       bursts)

(* Build-time schedule: connections, their request lists, and the burst
   partition are all functions of the seed. *)
let gen_schedule ~n_conns ~store_cells ~seed =
  let rng = Rng.create (seed lxor 0xac3e) in
  let conns =
    Array.init n_conns (fun _ ->
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let len = header_cells + Rng.int rng (buf_cells - header_cells) in
            let off = Rng.int rng (max 1 (store_cells - buf_cells)) in
            { off; len; cost = 1 + Rng.int rng 5 }))
  in
  let rec burstify next acc =
    if next >= n_conns then List.rev acc
    else
      let size = min (n_conns - next) (1 + Rng.int rng 4) in
      burstify (next + size) (List.init size (fun i -> next + i) :: acc)
  in
  (conns, burstify 0 [])

let workload ~workers ~n_conns ~store_cells ~seed =
  let conns, bursts = gen_schedule ~n_conns ~store_cells ~seed in
  let main =
    call "server_main"
      (let* stats = alloc 4 in
       let* () = Blocks.write_fill stats 4 (fun _ -> 0) in
       let* stats_lock = Sync.Mutex.create () in
       let* jobs = Sync.Channel.create 4 in
       let* tids =
         Blocks.spawn_all
           (List.init workers (fun _ -> worker ~conns ~jobs ~stats ~stats_lock))
       in
       let* () = accept_loop ~bursts ~jobs in
       (* one shutdown sentinel per worker *)
       let* () = for_ 1 workers (fun _ -> Sync.Channel.send jobs (-1)) in
       Blocks.join_all tids)
  in
  {
    Workload.programs = [ main ];
    devices =
      [
        ("store", store_device ~cells:store_cells ~seed);
        ("wire", wire_device ());
        ("client", Device.sink ());
      ];
  }

let spec =
  {
    Workload.name = "server";
    suite = Workload.App;
    description =
      "async-I/O server: accept/parse/handle/respond pipeline with \
       bursty connection arrivals into a worker pool";
    make =
      (fun ~threads ~scale ~seed ->
        workload ~workers:(max 2 threads)
          ~n_conns:(max 3 (scale / 8))
          ~store_cells:(max 64 (scale * 2))
          ~seed);
  }
