let all =
  Patterns.specs @ Sorting.specs
  @ [ Mysql_sim.spec; Vips_sim.spec; Dedup_sim.spec; Stm_sim.spec;
      Server_sim.spec ]
  @ Parsec_sims.specs @ Omp_sims.specs @ Omp_sims2.specs

let find name =
  List.find_opt (fun s -> s.Workload.name = name) all

let by_suite suite = List.filter (fun s -> s.Workload.suite = suite) all

let names () = List.map (fun s -> s.Workload.name) all

let default_threads = 4
let default_scale = 400
let default_seed = 42
