(** Async-I/O server miniature: a listener replays a seeded bursty
    arrival schedule into a bounded channel; a worker pool runs each
    connection's requests through parse (wire pread), handle
    (backing-store pread + scan), respond (sys_write + stats bump).
    Every request is fixed at build time and executed exactly once, so
    external-op counts are schedule-invariant by construction. *)

type req = { off : int; len : int; cost : int }

val workload :
  workers:int -> n_conns:int -> store_cells:int -> seed:int -> Workload.t

val spec : Workload.spec
