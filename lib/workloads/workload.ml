type t = {
  programs : unit Aprof_vm.Program.t list;
  devices : (string * Aprof_vm.Device.t) list;
}

type suite = Parsec | Omp | App | Micro

type spec = {
  name : string;
  suite : suite;
  description : string;
  make : threads:int -> scale:int -> seed:int -> t;
}

let suite_name = function
  | Parsec -> "parsec"
  | Omp -> "omp2012"
  | App -> "app"
  | Micro -> "micro"

let config_of ?(scheduler = Aprof_vm.Scheduler.Round_robin { slice = 64 })
    ?(max_events = 50_000_000) w ~seed =
  ignore (w.programs : unit Aprof_vm.Program.t list);
  {
    Aprof_vm.Interp.scheduler;
    seed;
    devices = w.devices;
    max_events;
    reuse_freed_memory = false;
  }

let run ?scheduler ?max_events w ~seed =
  Aprof_vm.Interp.run (config_of ?scheduler ?max_events w ~seed) w.programs

let run_spec ?scheduler ?max_events spec ~threads ~scale ~seed =
  run ?scheduler ?max_events (spec.make ~threads ~scale ~seed) ~seed

let run_instrumented ?scheduler ?max_events w ~seed ~tool =
  Aprof_vm.Interp.run_instrumented
    (config_of ?scheduler ?max_events w ~seed)
    w.programs ~tool

let run_spec_instrumented ?scheduler ?max_events spec ~threads ~scale ~seed
    ~tool =
  run_instrumented ?scheduler ?max_events (spec.make ~threads ~scale ~seed)
    ~seed ~tool

let run_batched ?scheduler ?max_events w ~seed ~tool =
  Aprof_vm.Interp.run_batched
    (config_of ?scheduler ?max_events w ~seed)
    w.programs ~tool

let run_spec_batched ?scheduler ?max_events spec ~threads ~scale ~seed ~tool =
  run_batched ?scheduler ?max_events (spec.make ~threads ~scale ~seed) ~seed
    ~tool
