(* STM-style workload, modeled on manticore's stm.pml: optimistic
   read/validate/commit transactions over an array of versioned tvars.

   Each tvar is a [version; value] cell pair guarded by its own mutex
   (so the miniature stays race-free under happens-before, like a real
   TL2-style STM whose metadata accesses are atomic).  A transaction
   reads its read set optimistically (logging versions), thinks, then
   revalidates: any version bumped by a concurrent commit aborts the
   attempt and retries after a backoff — the abort-retry re-reads are
   thread-induced input that fluctuates with the schedule, which is
   exactly what the scheduler-sensitivity experiment wants to stress.
   After [max_attempts] failed attempts a transaction falls back to a
   global commit lock, so every transaction terminates under any
   schedule.

   All transaction scripts (read sets, write sets, think time) are drawn
   at build time from the workload seed: the program structure — and in
   particular the total external input, here zero — is identical under
   every scheduler; only the interleaving-driven aborts differ. *)

open Aprof_vm.Program
module Sync = Aprof_vm.Sync
module Rng = Aprof_util.Rng

type txn = {
  reads : int list; (* sorted distinct tvar indices *)
  writes : int list; (* subset of [reads] *)
  think : int;
}

let max_attempts = 6

let rec fold_list f acc = function
  | [] -> return acc
  | x :: rest ->
    let* acc = f acc x in
    fold_list f acc rest

(* tvar [i]: version at [base + 2i], value at [base + 2i + 1]. *)
let ver_cell base i = base + (2 * i)
let val_cell base i = base + (2 * i) + 1

let with_tvar locks i body = Sync.Mutex.with_lock locks.(i) body

(* Optimistic read phase: snapshot each tvar's version into the private
   log and accumulate its value. *)
let stm_read ~base ~locks ~log tx =
  call "stm_read"
    (fold_list
       (fun (p, acc) i ->
         let* v =
           with_tvar locks i
             (let* ver = read (ver_cell base i) in
              let* v = read (val_cell base i) in
              let* () = write (log + p) ver in
              return v)
         in
         return (p + 1, acc + v))
       (0, 0) tx.reads
     |> map snd)

(* Validation: every logged version must still be current. *)
let stm_validate ~base ~locks ~log tx =
  call "stm_validate"
    (fold_list
       (fun (p, ok) i ->
         let* logged = read (log + p) in
         let* ver = with_tvar locks i (read (ver_cell base i)) in
         return (p + 1, ok && ver = logged))
       (0, true) tx.reads
     |> map snd)

(* Commit: bump versions and publish derived values, tvar by tvar. *)
let stm_commit ~base ~locks tx sum =
  call "stm_commit"
    (iter_list
       (fun i ->
         with_tvar locks i
           (let* ver = read (ver_cell base i) in
            let* () = write (ver_cell base i) (ver + 1) in
            write (val_cell base i) ((sum + i) land 0xffff)))
       tx.writes)

let atomic ~base ~locks ~global ~log tx =
  call "atomic"
    (let try_txn () =
       let* sum = stm_read ~base ~locks ~log tx in
       let* () = compute tx.think in
       let* valid = stm_validate ~base ~locks ~log tx in
       if valid then
         let* () = stm_commit ~base ~locks tx sum in
         return true
       else return false
     in
     let rec attempt n =
       let* ok = try_txn () in
       if ok then return ()
       else
         let* () =
           call "stm_abort"
             (let* () = compute (1 + n) in
              yield)
         in
         if n + 1 >= max_attempts then
           (* Pathological contention: give up on optimism and commit
              under the global lock — guarantees progress. *)
           call "stm_fallback"
             (Sync.Mutex.with_lock global
                (let* sum = stm_read ~base ~locks ~log tx in
                 stm_commit ~base ~locks tx sum))
         else attempt (n + 1)
     in
     attempt 0)

let rec make_locks n acc =
  if n = 0 then return (Array.of_list (List.rev acc))
  else
    let* m = Sync.Mutex.create () in
    make_locks (n - 1) (m :: acc)

(* Build-time script generation: all randomness is spent here, so the
   transaction mix is a function of the seed alone. *)
let gen_scripts ~workers ~txns ~n_tvars ~seed =
  let rng = Rng.create (seed lxor 0x57a7) in
  Array.init workers (fun _ ->
      List.init txns (fun _ ->
          let n_reads = min n_tvars (2 + Rng.int rng 4) in
          let rec draw acc k =
            if k = 0 then acc
            else
              let i = Rng.int rng n_tvars in
              if List.mem i acc then draw acc k else draw (i :: acc) (k - 1)
          in
          let reads = List.sort compare (draw [] n_reads) in
          let n_writes = 1 + Rng.int rng (min 2 (List.length reads)) in
          let writes =
            List.filteri (fun p _ -> p < n_writes) reads
          in
          { reads; writes; think = List.length reads + Rng.int rng 3 }))

let workload ~workers ~txns ~n_tvars ~seed =
  let scripts = gen_scripts ~workers ~txns ~n_tvars ~seed in
  let max_reads =
    Array.fold_left
      (fun m txs ->
        List.fold_left (fun m t -> max m (List.length t.reads)) m txs)
      1 scripts
  in
  let main =
    call "stm_main"
      (let* base = alloc (2 * n_tvars) in
       let* () = Blocks.write_fill base (2 * n_tvars) (fun _ -> 0) in
       let* locks = make_locks n_tvars [] in
       let* global = Sync.Mutex.create () in
       Blocks.run_workers workers (fun w ->
           call "txn_worker"
             (let* log = alloc max_reads in
              iter_list
                (fun tx -> atomic ~base ~locks ~global ~log tx)
                scripts.(w))))
  in
  { Workload.programs = [ main ]; devices = [] }

let spec =
  {
    Workload.name = "stm";
    suite = Workload.App;
    description =
      "optimistic STM: read/validate/commit transactions with seeded \
       abort-retry loops over versioned tvars";
    make =
      (fun ~threads ~scale ~seed ->
        workload ~workers:(max 2 threads)
          ~txns:(max 2 (scale / 20))
          ~n_tvars:(max 4 (min 48 (scale / 8)))
          ~seed);
  }
