(** Common shape of every simulated benchmark.

    A workload is a recipe producing VM thread programs plus the devices
    they open; the interpreter turns it into a trace.  [threads] requests
    a worker count (benchmarks spawn their own helper threads on top when
    their structure demands it), [scale] stretches the input size, and
    [seed] drives every random choice. *)

type t = {
  programs : unit Aprof_vm.Program.t list;  (** initial threads *)
  devices : (string * Aprof_vm.Device.t) list;
}

type suite = Parsec | Omp | App | Micro

type spec = {
  name : string;
  suite : suite;
  description : string;
  make : threads:int -> scale:int -> seed:int -> t;
}

val suite_name : suite -> string

(** [run ?scheduler ?max_events w ~seed] executes a workload under the
    interpreter with its devices installed. *)
val run :
  ?scheduler:Aprof_vm.Scheduler.policy ->
  ?max_events:int ->
  t ->
  seed:int ->
  Aprof_vm.Interp.result

(** [run_spec spec ~threads ~scale ~seed] builds and runs in one step. *)
val run_spec :
  ?scheduler:Aprof_vm.Scheduler.policy ->
  ?max_events:int ->
  spec ->
  threads:int ->
  scale:int ->
  seed:int ->
  Aprof_vm.Interp.result

(** [run_instrumented w ~seed ~tool] executes the workload in the
    interpreter's online mode ({!Aprof_vm.Interp.run_instrumented}): no
    trace is materialized; [tool] gets the routine table and sees every
    event as it is emitted. *)
val run_instrumented :
  ?scheduler:Aprof_vm.Scheduler.policy ->
  ?max_events:int ->
  t ->
  seed:int ->
  tool:
    (Aprof_trace.Routine_table.t -> Aprof_trace.Event.t -> unit) ->
  Aprof_vm.Interp.result

(** [run_spec_instrumented] builds and runs online in one step. *)
val run_spec_instrumented :
  ?scheduler:Aprof_vm.Scheduler.policy ->
  ?max_events:int ->
  spec ->
  threads:int ->
  scale:int ->
  seed:int ->
  tool:
    (Aprof_trace.Routine_table.t -> Aprof_trace.Event.t -> unit) ->
  Aprof_vm.Interp.result

(** [run_batched w ~seed ~tool] is {!run_instrumented} through the
    interpreter's packed hot path ({!Aprof_vm.Interp.run_batched}): the
    tool callback receives recycled event batches instead of events. *)
val run_batched :
  ?scheduler:Aprof_vm.Scheduler.policy ->
  ?max_events:int ->
  t ->
  seed:int ->
  tool:
    (Aprof_trace.Routine_table.t -> Aprof_trace.Event.Batch.t -> unit) ->
  Aprof_vm.Interp.result

(** [run_spec_batched] builds and runs batched in one step. *)
val run_spec_batched :
  ?scheduler:Aprof_vm.Scheduler.policy ->
  ?max_events:int ->
  spec ->
  threads:int ->
  scale:int ->
  seed:int ->
  tool:
    (Aprof_trace.Routine_table.t -> Aprof_trace.Event.Batch.t -> unit) ->
  Aprof_vm.Interp.result
