(** STM miniature: optimistic read/validate/commit transactions with
    seeded abort-retry loops, modeled on manticore's [stm.pml].  Abort
    re-reads are thread-induced input that fluctuates with the schedule;
    the workload performs no device I/O, so its external input is zero
    under every scheduler. *)

type txn = { reads : int list; writes : int list; think : int }

(** Attempts before a transaction falls back to the global commit lock. *)
val max_attempts : int

val workload :
  workers:int -> txns:int -> n_tvars:int -> seed:int -> Workload.t

val spec : Workload.spec
