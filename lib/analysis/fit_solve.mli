(** Least-squares machinery under the model family.

    Everything here is defensive about degenerate input: too few distinct
    abscissae, rank-deficient designs, non-finite or non-positive
    observations (log-log fits) all yield [None] instead of NaN
    coefficients — a NaN produced here would otherwise silently poison
    every selection and diff built on top. *)

(** [r_squared ~ys ~predicted] is the coefficient of determination,
    clamped to [0, 1]; a constant series is 1 when reproduced exactly
    and 0 otherwise (same convention as the original estimator). *)
val r_squared : ys:float list -> predicted:float list -> float

(** [linreg points] is [(intercept, slope)] of the ordinary
    least-squares line through [(x, y)] pairs, or [None] when the xs are
    (numerically) all equal. *)
val linreg : (float * float) list -> (float * float) option

(** [fit_terms ?weights ~terms points] solves the weighted least-squares
    problem over an arbitrary design: minimize
    [sum_i w_i * (y_i - sum_j c_j * term_j x_i)^2].  Returns
    [(coefs, rss, r2)]; both [rss] and [r2] are computed under the same
    weights as the fit (with unit weights they coincide with the
    unweighted residuals of the legacy estimator).  [None] when the
    normal equations are singular — collinear or all-zero columns, fewer
    points than terms.  Weights default to 1 and must be positive.

    Columns are rescaled to unit infinity-norm before elimination so
    that mixing [1] with [n^3] over large inputs stays well-conditioned. *)
val fit_terms :
  ?weights:float array ->
  terms:(float -> float) list ->
  (float * float) list ->
  (float array * float * float) option

type fit = {
  cls : Fit_basis.cls;
  coefs : float array;  (** in {!Fit_basis.columns} order; plateau [c0;c1;n0] *)
  rss : float;  (** residual sum of squares, under the fit's weights *)
  r2 : float;  (** under the fit's weights *)
  params : int;  (** {!Fit_basis.param_count} *)
}

(** [predict fit n] evaluates the fitted curve at input size [n]. *)
val predict : fit -> float -> float

(** [fit_cls ?weights cls points] fits one class to [(input, cost)]
    points.  [Plateau] is fitted by scanning every distinct input as the
    breakpoint candidate and keeping the least-RSS solve; other classes
    go through {!fit_terms} on their {!Fit_basis.columns}.  [None] on
    degenerate input (fewer than 3 distinct inputs, singular design, or
    a plateau with no room for a breakpoint). *)
val fit_cls :
  ?weights:float array -> Fit_basis.cls -> (int * float) list -> fit option

(** [power_law points] is [(c, k, r2)] with cost ~ c * n^k from the
    log-log regression.  Points with non-positive input, non-positive
    cost, or non-finite cost are dropped first — a single zero-cost
    observation must not turn the whole regression into NaNs — and
    [None] is returned when fewer than 3 distinct positive points
    survive. *)
val power_law : (int * float) list -> (float * float * float) option

(** [distinct_inputs points] — distinct abscissae count, the guard shared
    by every estimator. *)
val distinct_inputs : (int * float) list -> int
