type cls =
  | Constant
  | Plateau
  | Logarithmic
  | Linear
  | Linearithmic
  | Quadratic
  | Quadratic_log
  | Cubic

let all =
  [
    Constant; Plateau; Logarithmic; Linear; Linearithmic; Quadratic;
    Quadratic_log; Cubic;
  ]

let order = function
  | Constant -> 0
  | Plateau -> 1
  | Logarithmic -> 2
  | Linear -> 3
  | Linearithmic -> 4
  | Quadratic -> 5
  | Quadratic_log -> 6
  | Cubic -> 7

let name = function
  | Constant -> "O(1)"
  | Plateau -> "plateau"
  | Logarithmic -> "O(log n)"
  | Linear -> "O(n)"
  | Linearithmic -> "O(n log n)"
  | Quadratic -> "O(n^2)"
  | Quadratic_log -> "O(n^2 log n)"
  | Cubic -> "O(n^3)"

let token = function
  | Constant -> "const"
  | Plateau -> "plateau"
  | Logarithmic -> "log"
  | Linear -> "linear"
  | Linearithmic -> "nlogn"
  | Quadratic -> "quad"
  | Quadratic_log -> "n2logn"
  | Cubic -> "cubic"

let of_token = function
  | "const" -> Some Constant
  | "plateau" -> Some Plateau
  | "log" -> Some Logarithmic
  | "linear" -> Some Linear
  | "nlogn" -> Some Linearithmic
  | "quad" -> Some Quadratic
  | "n2logn" -> Some Quadratic_log
  | "cubic" -> Some Cubic
  | _ -> None

(* log clamped at n = 1: input sizes of 0 are legal observations
   (a routine that consumed nothing) and must not poison the design. *)
let ln n = log (Float.max n 1.)

let one _ = 1.
let id n = n
let nlogn n = n *. ln n
let sq n = n *. n
let sqlog n = n *. n *. ln n
let cube n = n *. n *. n

let columns = function
  | Constant -> [ one ]
  | Logarithmic -> [ one; ln ]
  | Linear -> [ one; id ]
  | Linearithmic -> [ one; id; nlogn ]
  | Quadratic -> [ one; id; sq ]
  | Quadratic_log -> [ one; id; sq; sqlog ]
  | Cubic -> [ one; id; sq; cube ]
  | Plateau -> invalid_arg "Fit_basis.columns: Plateau has no linear design"

let param_count = function Plateau -> 3 | c -> List.length (columns c)

let eval cls ~coefs n =
  match cls with
  | Plateau -> coefs.(0) +. (coefs.(1) *. Float.min n coefs.(2))
  | _ ->
    List.fold_left
      (fun (acc, i) col -> (acc +. (coefs.(i) *. col n), i + 1))
      (0., 0) (columns cls)
    |> fst

let leading_coef cls coefs =
  match cls with
  | Constant -> None
  | Plateau -> Some coefs.(1)
  | _ -> Some coefs.(Array.length coefs - 1)
