(** Comparing two fitted-model stores: the cost-function regression
    watch.

    [diff old new] matches entries by (routine name, metric) and emits
    findings of three kinds:

    - {b class change} — the penalized selection moved to a different
      complexity class.  A move up the {!Fit_basis.order} ladder is a
      regression, a move down an improvement.  The verdict is
      confidence-gated: unless both runs chose their class with at least
      [min_confidence] bootstrap agreement, the change is reported as
      informational noise, not a regression — a flaky selection must not
      fail CI.
    - {b slope change} — same class, but the leading coefficient moved
      by at least [slope_ratio] in either direction: the asymptotic
      claim stands, the constant factor regressed (or improved).
    - {b divergence change} — the paper's Fig. 4 signature.  Within one
      run a routine is {e divergent} when its rms curve keeps growing
      (class order at least linear) while its drms curve saturates
      (order at most logarithmic — constant, plateau, or log): the
      routine re-reads a bounded working set that rms keeps charging
      for.  A routine becoming divergent (or ceasing to be) between the
      runs is reported, confidence-gated like class changes.

    Stores carrying {!Run_meta} are refused ([Error]) when the metadata
    is incomparable ({!Run_meta.compatible}); a store without metadata is
    refused unless [require_meta] is [false]. *)

type severity = Regression | Improvement | Info

type change =
  | Class_change of {
      old_cls : Fit_basis.cls;
      new_cls : Fit_basis.cls;
      old_confidence : float;
      new_confidence : float;
    }
  | Slope_change of {
      cls : Fit_basis.cls;
      old_coef : float;
      new_coef : float;
      ratio : float;
    }
  | Divergence_change of { was_divergent : bool; now_divergent : bool }

type finding = {
  routine : string;
  metric : Model_store.metric option;
      (** [None] for per-routine findings (divergence) *)
  severity : severity;
  change : change;
}

type report = {
  findings : finding list;  (** sorted by (routine, metric) *)
  compared : int;  (** (routine, metric) pairs present in both stores *)
  only_old : string list;  (** routines absent from the new store *)
  only_new : string list;
  min_confidence : float;
  slope_ratio : float;
}

(** [diff ?min_confidence ?slope_ratio ?require_meta old new] compares
    the stores.  Defaults: [min_confidence = 0.7], [slope_ratio = 2.0],
    [require_meta = true].  [Error] describes why the stores are
    incomparable. *)
val diff :
  ?min_confidence:float ->
  ?slope_ratio:float ->
  ?require_meta:bool ->
  Model_store.t ->
  Model_store.t ->
  (report, string) result

(** [has_regression report] — any finding with severity [Regression]. *)
val has_regression : report -> bool

(** [render report] — the human-readable diff, deterministic line order
    (pinned by a golden test). *)
val render : report -> string

(** [to_json report] — machine-readable summary (hand-rolled, flat). *)
val to_json : report -> string
