type criterion = [ `Aicc | `Bic ]

type selection = {
  best : Fit_solve.fit;
  score : float;
  ranking : (Fit_solve.fit * float) list;
  by_r2 : Fit_solve.fit list;
  n_points : int;
  confidence : float;
  exponent : (float * float * float) option;
}

let score ~criterion ~n_points ~params ~rss ~scale =
  let m = float_of_int n_points in
  (* An exact fit has RSS = 0 and an unbounded log-likelihood; floor the
     per-point residual at a tiny fraction of the observation scale so
     exact fits compare by parameter count instead of -infinity. *)
  let floor_ = Float.max (1e-12 *. (scale +. 1.)) 1e-300 in
  let base = m *. log (Float.max (rss /. m) floor_) in
  let k = float_of_int (params + 1) in
  match criterion with
  | `Bic -> base +. (k *. log m)
  | `Aicc ->
    (* Clamp the small-sample denominator: admissibility already demands
       n_points >= params + 2, but resampled bootstrap sets can shrink. *)
    let denom = Float.max 0.5 (m -. k -. 1.) in
    base +. (2. *. k) +. (2. *. k *. (k +. 1.) /. denom)

let admissible_fits ~criterion points =
  let n_points = List.length points in
  (* Relative-error weighting.  Empirical cost measurements carry noise
     roughly proportional to their magnitude, so an unweighted RSS is
     dominated by the few largest inputs and the parameter penalty never
     bites — exactly the regime where the extra cubic column pays for
     itself by chasing the top point.  Weighting each residual by
     1/y^2 makes the per-point contributions commensurate and the
     information criteria honest.  The weighted RSS is dimensionless
     (a mean squared relative error), hence [~scale:1.] below. *)
  let median_abs =
    match List.map (fun (_, y) -> Float.abs y) points with
    | [] -> 0.
    | ys -> Aprof_util.Stats.percentile 50. ys
  in
  (* Floor each point's scale at a small fraction of the median
     magnitude: a routine whose cost happens to measure (near) zero at
     one input must not receive a near-infinite weight and drag every
     fit through that point. *)
  let weights =
    Array.of_list
      (List.map
         (fun (_, y) ->
           let d =
             Float.max (Float.abs y) (Float.max (1e-3 *. median_abs) 1e-9)
           in
           1. /. (d *. d))
         points)
  in
  List.filter_map
    (fun cls ->
      if n_points < Fit_basis.param_count cls + 2 then None
      else
        match Fit_solve.fit_cls ~weights cls points with
        | None -> None
        | Some fit ->
          (* A non-positive leading coefficient is not an asymptotic
             claim of this class; drop the candidate. *)
          let plausible =
            match Fit_basis.leading_coef cls fit.Fit_solve.coefs with
            | None -> true
            | Some c -> c > 0.
          in
          if not plausible then None
          else
            let s =
              score ~criterion ~n_points ~params:fit.Fit_solve.params
                ~rss:fit.Fit_solve.rss ~scale:1.
            in
            if Float.is_finite s then Some (fit, s) else None)
    Fit_basis.all

let select_core ~criterion points =
  if Fit_solve.distinct_inputs points < 3 then None
  else
    match admissible_fits ~criterion points with
    | [] -> None
    | fits ->
      let ranking =
        List.sort
          (fun (f1, s1) (f2, s2) ->
            compare
              (s1, f1.Fit_solve.params, Fit_basis.order f1.Fit_solve.cls)
              (s2, f2.Fit_solve.params, Fit_basis.order f2.Fit_solve.cls))
          fits
      in
      (* Descending r^2; exact ties (noiseless data) to the simpler
         class, which is the charitable reading of the legacy ranking. *)
      let by_r2 =
        List.sort
          (fun f1 f2 ->
            match compare f2.Fit_solve.r2 f1.Fit_solve.r2 with
            | 0 ->
              compare
                (Fit_basis.order f1.Fit_solve.cls)
                (Fit_basis.order f2.Fit_solve.cls)
            | c -> c)
          (List.map fst fits)
      in
      let best, best_score = List.hd ranking in
      Some (best, best_score, ranking, by_r2)

let select ?(criterion = `Aicc) ?(bootstrap = 120) ?(seed = 1) points =
  let points = List.filter (fun (_, y) -> Float.is_finite y) points in
  match select_core ~criterion points with
  | None -> None
  | Some (best, best_score, ranking, by_r2) ->
    let n_points = List.length points in
    let exponent_estimate = Fit_solve.power_law points in
    let confidence, exponent =
      if bootstrap <= 0 then
        ( 1.,
          Option.map (fun (_, k, _) -> (k, k, k)) exponent_estimate )
      else begin
        let rng = Aprof_util.Rng.create (seed lxor 0x5f17) in
        let arr = Array.of_list points in
        let agree = ref 0 and resolved = ref 0 in
        let exponents = ref [] in
        for _ = 1 to bootstrap do
          let sample =
            List.init n_points (fun _ ->
                arr.(Aprof_util.Rng.int rng n_points))
          in
          (match select_core ~criterion sample with
          | Some (b, _, _, _) ->
            incr resolved;
            if b.Fit_solve.cls = best.Fit_solve.cls then incr agree
          | None -> ());
          match Fit_solve.power_law sample with
          | Some (_, k, _) -> exponents := k :: !exponents
          | None -> ()
        done;
        let confidence =
          if !resolved = 0 then 0.
          else float_of_int !agree /. float_of_int !resolved
        in
        let exponent =
          match (exponent_estimate, !exponents) with
          | Some (_, k, _), (_ :: _ as ks) when List.length ks >= 10 ->
            let lo = Aprof_util.Stats.percentile 2.5 ks in
            let hi = Aprof_util.Stats.percentile 97.5 ks in
            Some (k, lo, hi)
          | Some (_, k, _), _ -> Some (k, k, k)
          | None, _ -> None
        in
        (confidence, exponent)
      end
    in
    Some
      {
        best;
        score = best_score;
        ranking;
        by_r2;
        n_points;
        confidence;
        exponent;
      }
