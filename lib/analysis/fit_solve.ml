let r_squared ~ys ~predicted =
  let n = float_of_int (List.length ys) in
  let mean = List.fold_left ( +. ) 0. ys /. n in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.)) 0. ys in
  let ss_res =
    List.fold_left2 (fun acc y p -> acc +. ((y -. p) ** 2.)) 0. ys predicted
  in
  if ss_tot < 1e-12 then if ss_res < 1e-12 then 1. else 0.
  else Float.max 0. (1. -. (ss_res /. ss_tot))

(* Gaussian elimination with partial pivoting on the normal equations.
   [a] is k x k, [b] length k; both are clobbered.  Returns false on a
   (near-)singular pivot. *)
let solve_inplace a b =
  let k = Array.length b in
  let ok = ref true in
  (try
     for col = 0 to k - 1 do
       let pivot = ref col in
       for row = col + 1 to k - 1 do
         if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then
           pivot := row
       done;
       if Float.abs a.(!pivot).(col) < 1e-10 then raise Exit;
       if !pivot <> col then begin
         let tmp = a.(col) in
         a.(col) <- a.(!pivot);
         a.(!pivot) <- tmp;
         let tb = b.(col) in
         b.(col) <- b.(!pivot);
         b.(!pivot) <- tb
       end;
       for row = col + 1 to k - 1 do
         let f = a.(row).(col) /. a.(col).(col) in
         for j = col to k - 1 do
           a.(row).(j) <- a.(row).(j) -. (f *. a.(col).(j))
         done;
         b.(row) <- b.(row) -. (f *. b.(col))
       done
     done;
     for col = k - 1 downto 0 do
       let s = ref b.(col) in
       for j = col + 1 to k - 1 do
         s := !s -. (a.(col).(j) *. b.(j))
       done;
       b.(col) <- !s /. a.(col).(col)
     done
   with Exit -> ok := false);
  !ok

let fit_terms ?weights ~terms points =
  let m = List.length points in
  let k = List.length terms in
  if m < k || k = 0 then None
  else begin
    let xs = Array.of_list (List.map fst points) in
    let ys = Array.of_list (List.map snd points) in
    let w =
      match weights with
      | Some w when Array.length w = m -> w
      | Some _ -> invalid_arg "Fit_solve.fit_terms: weights/points mismatch"
      | None -> Array.make m 1.
    in
    let design =
      Array.map (fun x -> Array.of_list (List.map (fun t -> t x) terms)) xs
    in
    (* Column scaling: normalize each column of the *weighted* design
       (sqrt w_i * term_j x_i) to unit infinity-norm.  This keeps the
       normal equations solvable when 1 and n^3 share a design, and —
       because the weights are folded in before scaling — keeps every
       diagonal entry of the normal matrix at least 1 even when the
       weights themselves span twenty orders of magnitude (as 1/y^2
       weights do on a cubic curve). *)
    let scale = Array.make k 0. in
    Array.iteri
      (fun i row ->
        let sw = sqrt w.(i) in
        for j = 0 to k - 1 do
          scale.(j) <- Float.max scale.(j) (sw *. Float.abs row.(j))
        done)
      design;
    if Array.exists (fun s -> s < 1e-300 || not (Float.is_finite s)) scale then
      None
    else begin
      Array.iter
        (fun row ->
          for j = 0 to k - 1 do
            row.(j) <- row.(j) /. scale.(j)
          done)
        design;
      let a = Array.make_matrix k k 0. in
      let b = Array.make k 0. in
      for i = 0 to m - 1 do
        let row = design.(i) in
        for p = 0 to k - 1 do
          for q = 0 to k - 1 do
            a.(p).(q) <- a.(p).(q) +. (w.(i) *. row.(p) *. row.(q))
          done;
          b.(p) <- b.(p) +. (w.(i) *. row.(p) *. ys.(i))
        done
      done;
      if not (solve_inplace a b) then None
      else begin
        let coefs = Array.mapi (fun j c -> c /. scale.(j)) b in
        if Array.exists (fun c -> not (Float.is_finite c)) coefs then None
        else begin
          let predict x =
            List.fold_left
              (fun (acc, j) t -> (acc +. (coefs.(j) *. t x), j + 1))
              (0., 0) terms
            |> fst
          in
          (* RSS and r^2 under the same weighting as the fit itself; with
             unit weights this reduces exactly to the unweighted
             residuals of the legacy estimator. *)
          let pred = Array.of_list (List.map (fun (x, _) -> predict x) points) in
          let wsum = Array.fold_left ( +. ) 0. w in
          let mean =
            let s = ref 0. in
            Array.iteri (fun i y -> s := !s +. (w.(i) *. y)) ys;
            !s /. wsum
          in
          let ss_tot = ref 0. and rss = ref 0. in
          Array.iteri
            (fun i y ->
              ss_tot := !ss_tot +. (w.(i) *. ((y -. mean) ** 2.));
              rss := !rss +. (w.(i) *. ((y -. pred.(i)) ** 2.)))
            ys;
          let r2 =
            if !ss_tot < 1e-12 then if !rss < 1e-12 then 1. else 0.
            else Float.max 0. (1. -. (!rss /. !ss_tot))
          in
          Some (coefs, !rss, r2)
        end
      end
    end
  end

let linreg points =
  match fit_terms ~terms:[ (fun _ -> 1.); (fun x -> x) ] points with
  | Some (coefs, _, _) -> Some (coefs.(0), coefs.(1))
  | None -> None

type fit = {
  cls : Fit_basis.cls;
  coefs : float array;
  rss : float;
  r2 : float;
  params : int;
}

let predict fit n = Fit_basis.eval fit.cls ~coefs:fit.coefs n

let distinct_inputs points =
  List.sort_uniq compare (List.map fst points) |> List.length

let float_points points =
  List.map (fun (n, y) -> (float_of_int n, y)) points

let fit_plateau ?weights points =
  let fpoints = float_points points in
  let inputs = List.sort_uniq compare (List.map fst fpoints) in
  (* A breakpoint is only identified when at least two distinct inputs
     lie on the growing side and at least one on the plateau. *)
  let candidates =
    match inputs with
    | _ :: _ :: _ ->
      List.filteri (fun i _ -> i >= 1 && i < List.length inputs - 1) inputs
    | _ -> []
  in
  List.fold_left
    (fun best n0 ->
      match
        fit_terms ?weights
          ~terms:[ (fun _ -> 1.); (fun n -> Float.min n n0) ]
          fpoints
      with
      | None -> best
      | Some (coefs, rss, r2) -> (
        let fit =
          {
            cls = Fit_basis.Plateau;
            coefs = [| coefs.(0); coefs.(1); n0 |];
            rss;
            r2;
            params = 3;
          }
        in
        match best with
        | Some b when b.rss <= rss -> best
        | _ -> Some fit))
    None candidates

let fit_cls ?weights cls points =
  if distinct_inputs points < 3 then None
  else
    match cls with
    | Fit_basis.Plateau -> fit_plateau ?weights points
    | _ -> (
      let terms = Fit_basis.columns cls in
      match fit_terms ?weights ~terms (float_points points) with
      | None -> None
      | Some (coefs, rss, r2) ->
        Some { cls; coefs; rss; r2; params = List.length terms })

let power_law points =
  (* Zero or negative costs have no logarithm: drop them up front rather
     than letting a single log 0 = -inf ride through the sums. *)
  let usable =
    List.filter (fun (n, y) -> n > 0 && Float.is_finite y && y > 0.) points
  in
  if distinct_inputs usable < 3 then None
  else begin
    let logs =
      List.map (fun (n, y) -> (log (float_of_int n), log y)) usable
    in
    match linreg logs with
    | None -> None
    | Some (a, k) ->
      let predicted = List.map (fun (x, _) -> a +. (k *. x)) logs in
      Some (exp a, k, r_squared ~ys:(List.map snd logs) ~predicted)
  end
