(** Identity of a profiling run, carried by saved profiles and fitted
    model stores so that downstream comparisons ({!Cost_diff}) can refuse
    to diff runs that were never comparable in the first place.

    Two runs are comparable when they executed the same workload at the
    same scale with the same thread count under the same scheduler; the
    seed is deliberately free — comparing differently-seeded runs of one
    configuration is exactly the regression-watch use case. *)

type t = {
  workload : string;
  seed : int;
  scale : int;
  threads : int;
  scheduler : string;  (** {!Aprof_vm.Scheduler.policy_name} rendering *)
}

(** [to_fields t] is the CSV field list [workload; seed; scale; threads;
    scheduler], the wire form shared by {!Profile_io} ([meta,...] line)
    and {!Model_store}. *)
val to_fields : t -> string list

(** [of_fields fields] parses {!to_fields} output. *)
val of_fields : string list -> (t, string) result

(** [compatible ~old_run ~new_run] is [Ok ()] when the two runs may be
    diffed: equal workload, scale, threads and scheduler.  [Error]
    carries a human-readable mismatch description. *)
val compatible : old_run:t -> new_run:t -> (unit, string) result

(** One-line rendering for reports. *)
val to_string : t -> string
