type t = {
  workload : string;
  seed : int;
  scale : int;
  threads : int;
  scheduler : string;
}

let to_fields t =
  [
    t.workload;
    string_of_int t.seed;
    string_of_int t.scale;
    string_of_int t.threads;
    t.scheduler;
  ]

let of_fields = function
  | workload :: seed :: scale :: threads :: rest when rest <> [] -> (
    (* The scheduler name is last and may itself contain commas
       (e.g. "random(8-96)" is safe today, but stay robust). *)
    let scheduler = String.concat "," rest in
    match
      (int_of_string_opt seed, int_of_string_opt scale, int_of_string_opt threads)
    with
    | Some seed, Some scale, Some threads ->
      Ok { workload; seed; scale; threads; scheduler }
    | _ -> Error "bad run metadata: non-integer seed/scale/threads")
  | _ -> Error "bad run metadata: expected workload,seed,scale,threads,scheduler"

let compatible ~old_run ~new_run =
  let mismatch what a b = Error (Printf.sprintf "%s differs (%s vs %s)" what a b) in
  if old_run.workload <> new_run.workload then
    mismatch "workload" old_run.workload new_run.workload
  else if old_run.scale <> new_run.scale then
    mismatch "scale" (string_of_int old_run.scale) (string_of_int new_run.scale)
  else if old_run.threads <> new_run.threads then
    mismatch "threads" (string_of_int old_run.threads)
      (string_of_int new_run.threads)
  else if old_run.scheduler <> new_run.scheduler then
    mismatch "scheduler" old_run.scheduler new_run.scheduler
  else Ok ()

let to_string t =
  Printf.sprintf "%s scale=%d threads=%d scheduler=%s seed=%d" t.workload
    t.scale t.threads t.scheduler t.seed
