(** Penalized model selection with bootstrap confidence.

    The former estimator ranked the fitted classes by raw r^2.  Under the
    nested designs of {!Fit_basis} that ranking is broken by
    construction: adding columns can only reduce the residual, so the
    cubic design out-scores every class below it on any noisy curve.
    Selection here ranks by small-sample-corrected AIC (AICc, the
    default) or BIC, both of which charge models for their parameter
    count:

    {v
      AICc = m ln(RSS/m) + 2k + 2k(k+1)/(m-k-1)      k = params + 1
      BIC  = m ln(RSS/m) + k ln m
    v}

    Classes whose leading coefficient comes out non-positive are excluded
    — a negative n^3 term is noise absorption, not an asymptotic claim.

    Confidence comes from a case-resampling bootstrap: the points are
    resampled with replacement [bootstrap] times, selection is re-run on
    each resample, and the chosen class's confidence is the fraction of
    resamples that agree.  The same resamples give a percentile interval
    for the log-log power-law exponent.  Everything is deterministic per
    [seed]. *)

type criterion = [ `Aicc | `Bic ]

type selection = {
  best : Fit_solve.fit;  (** the penalized winner *)
  score : float;  (** its criterion value *)
  ranking : (Fit_solve.fit * float) list;
      (** every admissible fit with its score, best first *)
  by_r2 : Fit_solve.fit list;
      (** the same fits ranked by raw r^2 (descending) — the legacy
          selector, kept to measure how often it overfits *)
  n_points : int;
  confidence : float;  (** bootstrap agreement on [best.cls], in [0,1] *)
  exponent : (float * float * float) option;
      (** power-law exponent (estimate, lo, hi) with a bootstrap 95%
          percentile interval; [None] when the log-log fit is degenerate *)
}

(** [score ~criterion ~n_points ~params ~rss ~scale] is the penalized
    criterion value; [scale] (mean squared observation) regularizes
    RSS = 0 on exact fits.  Exposed for tests and the bench battery. *)
val score :
  criterion:criterion ->
  n_points:int ->
  params:int ->
  rss:float ->
  scale:float ->
  float

(** [select ?criterion ?bootstrap ?seed points] fits every admissible
    class and picks the criterion minimum (ties to fewer parameters,
    then lower asymptotic order).  [None] when fewer than 3 distinct
    inputs survive, or no class is admissible.  [bootstrap] defaults to
    120 resamples; [0] skips the bootstrap (confidence 1.0, no exponent
    interval). *)
val select :
  ?criterion:criterion ->
  ?bootstrap:int ->
  ?seed:int ->
  (int * float) list ->
  selection option
