type severity = Regression | Improvement | Info

type change =
  | Class_change of {
      old_cls : Fit_basis.cls;
      new_cls : Fit_basis.cls;
      old_confidence : float;
      new_confidence : float;
    }
  | Slope_change of {
      cls : Fit_basis.cls;
      old_coef : float;
      new_coef : float;
      ratio : float;
    }
  | Divergence_change of { was_divergent : bool; now_divergent : bool }

type finding = {
  routine : string;
  metric : Model_store.metric option;
  severity : severity;
  change : change;
}

type report = {
  findings : finding list;
  compared : int;
  only_old : string list;
  only_new : string list;
  min_confidence : float;
  slope_ratio : float;
}

let class_finding ~min_confidence routine metric (o : Model_store.entry)
    (n : Model_store.entry) =
  if o.Model_store.cls = n.Model_store.cls then None
  else
    let confident =
      o.Model_store.confidence >= min_confidence
      && n.Model_store.confidence >= min_confidence
    in
    let severity =
      if not confident then Info
      else if
        Fit_basis.order n.Model_store.cls > Fit_basis.order o.Model_store.cls
      then Regression
      else Improvement
    in
    Some
      {
        routine;
        metric = Some metric;
        severity;
        change =
          Class_change
            {
              old_cls = o.Model_store.cls;
              new_cls = n.Model_store.cls;
              old_confidence = o.Model_store.confidence;
              new_confidence = n.Model_store.confidence;
            };
      }

let slope_finding ~slope_ratio routine metric (o : Model_store.entry)
    (n : Model_store.entry) =
  if o.Model_store.cls <> n.Model_store.cls then None
  else
    match
      ( Fit_basis.leading_coef o.Model_store.cls o.Model_store.coefs,
        Fit_basis.leading_coef n.Model_store.cls n.Model_store.coefs )
    with
    | Some old_coef, Some new_coef when old_coef > 0. && new_coef > 0. ->
      let ratio = new_coef /. old_coef in
      let severity =
        if ratio >= slope_ratio then Some Regression
        else if ratio <= 1. /. slope_ratio then Some Improvement
        else None
      in
      Option.map
        (fun severity ->
          {
            routine;
            metric = Some metric;
            severity;
            change =
              Slope_change
                { cls = o.Model_store.cls; old_coef; new_coef; ratio };
          })
        severity
    | _ -> None

(* The paper's Fig. 4 shape: rms keeps growing while drms saturates. *)
let divergent ~drms ~rms =
  Fit_basis.order rms.Model_store.cls >= Fit_basis.order Fit_basis.Linear
  && Fit_basis.order drms.Model_store.cls
     <= Fit_basis.order Fit_basis.Logarithmic

let divergence_finding ~min_confidence routine entries_of =
  let quad store =
    match
      (store ~routine ~metric:`Drms, store ~routine ~metric:`Rms)
    with
    | Some d, Some r -> Some (d, r)
    | _ -> None
  in
  match (quad (fst entries_of), quad (snd entries_of)) with
  | Some (od, or_), Some (nd, nr) ->
    let was_divergent = divergent ~drms:od ~rms:or_ in
    let now_divergent = divergent ~drms:nd ~rms:nr in
    if was_divergent = now_divergent then None
    else
      let confident =
        List.for_all
          (fun (e : Model_store.entry) ->
            e.Model_store.confidence >= min_confidence)
          [ od; or_; nd; nr ]
      in
      let severity =
        if not confident then Info
        else if now_divergent then Regression
        else Improvement
      in
      Some
        {
          routine;
          metric = None;
          severity;
          change = Divergence_change { was_divergent; now_divergent };
        }
  | _ -> None

let diff ?(min_confidence = 0.7) ?(slope_ratio = 2.0) ?(require_meta = true)
    (old_store : Model_store.t) (new_store : Model_store.t) =
  let meta_check =
    match (old_store.Model_store.meta, new_store.Model_store.meta) with
    | Some o, Some n -> Run_meta.compatible ~old_run:o ~new_run:n
    | None, _ | _, None ->
      if require_meta then Error "a store carries no run metadata" else Ok ()
  in
  match meta_check with
  | Error e -> Error (Printf.sprintf "stores are not comparable: %s" e)
  | Ok () ->
    let old_entries = old_store.Model_store.entries in
    let new_entries = new_store.Model_store.entries in
    let find entries ~routine ~metric =
      List.find_opt
        (fun (e : Model_store.entry) ->
          e.Model_store.routine = routine && e.Model_store.metric = metric)
        entries
    in
    let compared = ref 0 in
    let pair_findings =
      List.concat_map
        (fun (o : Model_store.entry) ->
          match
            find new_entries ~routine:o.Model_store.routine
              ~metric:o.Model_store.metric
          with
          | None -> []
          | Some n ->
            incr compared;
            let routine = o.Model_store.routine in
            let metric = o.Model_store.metric in
            List.filter_map
              (fun f -> f)
              [
                class_finding ~min_confidence routine metric o n;
                slope_finding ~slope_ratio routine metric o n;
              ])
        old_entries
    in
    let routines_old = List.map (fun e -> e.Model_store.routine) old_entries in
    let routines_new = List.map (fun e -> e.Model_store.routine) new_entries in
    let all_routines =
      List.sort_uniq compare (routines_old @ routines_new)
    in
    let div_findings =
      List.filter_map
        (fun routine ->
          divergence_finding ~min_confidence routine
            (find old_entries, find new_entries))
        all_routines
    in
    let only_in a b =
      List.sort_uniq compare a
      |> List.filter (fun r -> not (List.mem r b))
    in
    let findings =
      List.sort
        (fun a b ->
          compare
            ( a.routine,
              Option.map Model_store.metric_name a.metric,
              a.severity )
            ( b.routine,
              Option.map Model_store.metric_name b.metric,
              b.severity ))
        (pair_findings @ div_findings)
    in
    Ok
      {
        findings;
        compared = !compared;
        only_old = only_in routines_old routines_new;
        only_new = only_in routines_new routines_old;
        min_confidence;
        slope_ratio;
      }

let has_regression report =
  List.exists (fun f -> f.severity = Regression) report.findings

let severity_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Info -> "info"

let change_line f =
  let where =
    match f.metric with
    | Some m -> Printf.sprintf "%s [%s]" f.routine (Model_store.metric_name m)
    | None -> f.routine
  in
  match f.change with
  | Class_change { old_cls; new_cls; old_confidence; new_confidence } ->
    Printf.sprintf "%-11s %s: class %s -> %s (confidence %.2f -> %.2f)"
      (severity_name f.severity) where (Fit_basis.name old_cls)
      (Fit_basis.name new_cls) old_confidence new_confidence
  | Slope_change { cls; old_coef; new_coef; ratio } ->
    Printf.sprintf
      "%-11s %s: %s leading coefficient %.3g -> %.3g (%.2fx)"
      (severity_name f.severity) where (Fit_basis.name cls) old_coef new_coef
      ratio
  | Divergence_change { now_divergent; _ } ->
    Printf.sprintf "%-11s %s: rms/drms divergence %s"
      (severity_name f.severity) where
      (if now_divergent then "appeared (drms saturates, rms keeps growing)"
       else "disappeared")

let render report =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "cost-model diff: %d routine/metric pairs compared (min confidence %.2f, \
     slope gate %.2fx)\n"
    report.compared report.min_confidence report.slope_ratio;
  List.iter (fun f -> Printf.bprintf buf "  %s\n" (change_line f)) report.findings;
  (match report.only_old with
  | [] -> ()
  | l ->
    Printf.bprintf buf "  only in old store: %s\n" (String.concat ", " l));
  (match report.only_new with
  | [] -> ()
  | l ->
    Printf.bprintf buf "  only in new store: %s\n" (String.concat ", " l));
  let regressions =
    List.length (List.filter (fun f -> f.severity = Regression) report.findings)
  in
  if regressions = 0 && report.findings = [] then
    Buffer.add_string buf "clean: no findings\n"
  else
    Printf.bprintf buf "%d finding(s), %d regression(s)\n"
      (List.length report.findings) regressions;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let buf = Buffer.create 1024 in
  let fnum f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null" in
  Printf.bprintf buf
    "{\n  \"compared\": %d,\n  \"regressions\": %d,\n  \"findings\": [\n"
    report.compared
    (List.length (List.filter (fun f -> f.severity = Regression) report.findings));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf "    {\"routine\": \"%s\", \"severity\": \"%s\""
        (json_escape f.routine)
        (match f.severity with
        | Regression -> "regression"
        | Improvement -> "improvement"
        | Info -> "info");
      (match f.metric with
      | Some m ->
        Printf.bprintf buf ", \"metric\": \"%s\"" (Model_store.metric_name m)
      | None -> ());
      (match f.change with
      | Class_change { old_cls; new_cls; old_confidence; new_confidence } ->
        Printf.bprintf buf
          ", \"kind\": \"class\", \"old_class\": \"%s\", \"new_class\": \
           \"%s\", \"old_confidence\": %s, \"new_confidence\": %s"
          (Fit_basis.token old_cls) (Fit_basis.token new_cls)
          (fnum old_confidence) (fnum new_confidence)
      | Slope_change { cls; old_coef; new_coef; ratio } ->
        Printf.bprintf buf
          ", \"kind\": \"slope\", \"class\": \"%s\", \"old_coef\": %s, \
           \"new_coef\": %s, \"ratio\": %s"
          (Fit_basis.token cls) (fnum old_coef) (fnum new_coef) (fnum ratio)
      | Divergence_change { was_divergent; now_divergent } ->
        Printf.bprintf buf
          ", \"kind\": \"divergence\", \"was_divergent\": %b, \
           \"now_divergent\": %b"
          was_divergent now_divergent);
      Buffer.add_string buf "}")
    report.findings;
  Printf.bprintf buf "\n  ],\n  \"only_old\": [%s],\n  \"only_new\": [%s]\n}\n"
    (String.concat ", "
       (List.map (fun r -> Printf.sprintf "\"%s\"" (json_escape r)) report.only_old))
    (String.concat ", "
       (List.map (fun r -> Printf.sprintf "\"%s\"" (json_escape r)) report.only_new));
  Buffer.contents buf
