type metric = [ `Drms | `Rms ]

let metric_name = function `Drms -> "drms" | `Rms -> "rms"

let metric_of_name = function
  | "drms" -> Some `Drms
  | "rms" -> Some `Rms
  | _ -> None

type entry = {
  routine : string;
  metric : metric;
  cls : Fit_basis.cls;
  coefs : float array;
  n_points : int;
  r2 : float;
  confidence : float;
  exponent : (float * float * float) option;
}

type t = { meta : Run_meta.t option; entries : entry list }

let format_version = 1

let sort_entries entries =
  List.sort
    (fun a b ->
      compare (a.routine, metric_name a.metric) (b.routine, metric_name b.metric))
    entries

let create ?meta entries = { meta; entries = sort_entries entries }

let find t ~routine ~metric =
  List.find_opt (fun e -> e.routine = routine && e.metric = metric) t.entries

let routines t =
  List.map (fun e -> e.routine) t.entries |> List.sort_uniq compare

(* Line shape:
     model,<metric>,<cls>,<n_points>,<r2>,<confidence>,<k>,<lo>,<hi>,
           <ncoefs>,<c0>,...,<routine name (may contain commas)>
   A missing exponent is stored as three [nan] fields. *)
let to_string t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "costmodel,%d" format_version;
  (match t.meta with
  | Some m -> add "meta,%s" (String.concat "," (Run_meta.to_fields m))
  | None -> ());
  List.iter
    (fun e ->
      let k, lo, hi =
        match e.exponent with Some v -> v | None -> (nan, nan, nan)
      in
      add "model,%s,%s,%d,%.17g,%.17g,%.17g,%.17g,%.17g,%d,%s,%s"
        (metric_name e.metric) (Fit_basis.token e.cls) e.n_points e.r2
        e.confidence k lo hi (Array.length e.coefs)
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.17g") e.coefs)))
        e.routine)
    (sort_entries t.entries);
  Buffer.contents buf

let rec take n = function
  | [] -> if n = 0 then Some [] else None
  | x :: rest ->
    if n = 0 then Some []
    else Option.map (fun l -> x :: l) (take (n - 1) rest)

let rec drop n l =
  if n = 0 then Some l
  else match l with [] -> None | _ :: rest -> drop (n - 1) rest

let parse_model_line fields =
  match fields with
  | metric :: cls :: npts :: r2 :: conf :: k :: lo :: hi :: ncoefs :: rest -> (
    match
      ( metric_of_name metric,
        Fit_basis.of_token cls,
        int_of_string_opt npts,
        float_of_string_opt r2,
        float_of_string_opt conf,
        float_of_string_opt k,
        float_of_string_opt lo,
        float_of_string_opt hi,
        int_of_string_opt ncoefs )
    with
    | ( Some metric,
        Some cls,
        Some n_points,
        Some r2,
        Some confidence,
        Some k,
        Some lo,
        Some hi,
        Some nc )
      when nc >= 0 -> (
      match (take nc rest, drop nc rest) with
      | Some coef_fields, Some name_fields when name_fields <> [] ->
        let coefs = List.map float_of_string_opt coef_fields in
        if List.exists Option.is_none coefs then Error "bad coefficient"
        else
          let coefs = Array.of_list (List.map Option.get coefs) in
          let routine = String.concat "," name_fields in
          let exponent = if Float.is_nan k then None else Some (k, lo, hi) in
          Ok { routine; metric; cls; coefs; n_points; r2; confidence; exponent }
      | _ -> Error "bad model record: missing coefficients or routine name")
    | _ -> Error "bad model record")
  | _ -> Error "bad model record"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let fail lineno fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let rec go lineno ~seen_header meta entries = function
    | [] -> Ok { meta; entries = sort_entries (List.rev entries) }
    | line :: rest -> (
      let line = String.trim line in
      match String.split_on_char ',' line with
      | [ "" ] -> go (lineno + 1) ~seen_header meta entries rest
      | [ "costmodel"; v ] -> (
        match int_of_string_opt v with
        | Some v when v >= 1 && v <= format_version ->
          go (lineno + 1) ~seen_header:true meta entries rest
        | Some v ->
          fail lineno "unsupported cost-model format version %d (expected <= %d)"
            v format_version
        | None -> fail lineno "bad cost-model format version %S" v)
      | _ when not seen_header ->
        fail lineno "not a cost-model store (missing costmodel,<version> header)"
      | "meta" :: fields -> (
        match Run_meta.of_fields fields with
        | Ok m -> go (lineno + 1) ~seen_header (Some m) entries rest
        | Error e -> fail lineno "%s" e)
      | "model" :: fields -> (
        match parse_model_line fields with
        | Ok e -> go (lineno + 1) ~seen_header meta (e :: entries) rest
        | Error e -> fail lineno "%s" e)
      | kind :: _ -> fail lineno "unknown record kind %S" kind
      | [] -> go (lineno + 1) ~seen_header meta entries rest)
  in
  go 1 ~seen_header:false None [] lines

let save oc t = output_string oc (to_string t)
let load ic = of_string (In_channel.input_all ic)
