(** Versioned on-disk persistence of fitted cost models.

    A store holds, per (routine, metric) pair, the penalized-selection
    result of one profiling run — chosen class, coefficients, bootstrap
    confidence, power-law exponent interval — plus the {!Run_meta}
    identity of the run, so that two stores can be compared by
    {!Cost_diff} (and refused when they describe incomparable runs).

    The format is line-oriented CSV opened by a [costmodel,<version>]
    header, in the spirit of {!Profile_io}: versions newer than
    {!format_version} are rejected with an explicit error rather than
    misparsed.  Routine names come last on their line so that names
    containing commas survive. *)

type metric = [ `Drms | `Rms ]

val metric_name : metric -> string

type entry = {
  routine : string;  (** routine name (stable across runs, unlike ids) *)
  metric : metric;
  cls : Fit_basis.cls;
  coefs : float array;
  n_points : int;  (** points the fit saw *)
  r2 : float;
  confidence : float;  (** bootstrap class agreement, [0,1] *)
  exponent : (float * float * float) option;  (** (k, lo, hi) *)
}

type t = { meta : Run_meta.t option; entries : entry list }

(** The version written by {!save}; loading rejects anything newer. *)
val format_version : int

val create : ?meta:Run_meta.t -> entry list -> t

(** [find t ~routine ~metric] — the stored model, if any. *)
val find : t -> routine:string -> metric:metric -> entry option

(** [routines t] — distinct routine names, sorted. *)
val routines : t -> string list

val to_string : t -> string

(** [of_string s] parses a dump; [Error] carries a line number. *)
val of_string : string -> (t, string) result

val save : out_channel -> t -> unit
val load : in_channel -> (t, string) result
