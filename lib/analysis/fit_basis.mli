(** The model family of the cost-function estimator.

    Each complexity class is fitted as a {e nested} least-squares design:
    the design matrix of a class contains the columns of the classes
    below it on its chain (e.g. O(n^3) fits [1, n, n^2, n^3]).  Nesting
    makes the residual sum of squares — and hence r^2 — monotone along a
    chain, which is exactly why ranking by raw r^2 degenerates into
    "always pick the biggest model" and why {!Fit_select} ranks by a
    complexity-penalized criterion instead.

    Beyond the classic ladder the family carries two classes motivated by
    the paper's drms plots: [Quadratic_log] (n^2 log n, e.g. repeated
    sorting of growing prefixes) and [Plateau], a piecewise-linear curve
    that grows and then saturates — the shape of a routine whose drms
    stops growing once its working set is reached (the rms-vs-drms
    divergence of Fig. 4).  [Plateau] is not a linear design; it is
    fitted by a breakpoint scan in {!Fit_solve}. *)

type cls =
  | Constant
  | Plateau  (** c0 + c1 * min(n, n0): linear growth saturating at n0 *)
  | Logarithmic
  | Linear
  | Linearithmic
  | Quadratic
  | Quadratic_log  (** n^2 log n *)
  | Cubic

val all : cls list

(** [order cls] ranks classes by asymptotic growth; a {!Cost_diff} class
    change is a regression when the order increases.  [Plateau] sits
    between constant and logarithmic: it is asymptotically constant but
    non-trivial at finite n. *)
val order : cls -> int

(** [name cls] is the human-readable name, ["O(n log n)"] style. *)
val name : cls -> string

(** [token cls] / [of_token] — the stable identifiers used by
    {!Model_store} files. *)
val token : cls -> string

val of_token : string -> cls option

(** [columns cls] are the design-matrix columns (functions of the input
    size), intercept first.
    @raise Invalid_argument on [Plateau] (no linear design). *)
val columns : cls -> (float -> float) list

(** [param_count cls] — coefficients the class estimates ([Plateau]
    counts its breakpoint as a third parameter). *)
val param_count : cls -> int

(** [eval cls ~coefs n] evaluates the fitted curve.  [coefs] are the
    column coefficients in {!columns} order; for [Plateau],
    [| c0; c1; n0 |]. *)
val eval : cls -> coefs:float array -> float -> float

(** [leading_coef cls coefs] is the coefficient of the class-defining
    (highest-order) term — [None] for [Constant], whose only parameter
    is the intercept.  A fitted class is only a plausible asymptotic
    claim when this is positive. *)
val leading_coef : cls -> float array -> float option
