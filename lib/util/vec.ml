type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  (* High-water mark of [len] over the current backing array: slots in
     [len, hiw) hold elements that were pushed and later popped (or
     truncated away), each written by its own [push].  [spare]/[extend]
     recycle them.  Growth replaces the array and copies only the live
     prefix, so [grow] resets the mark. *)
  mutable hiw : int;
}

let create () = { data = [||]; len = 0; hiw = 0 }

let make n x = { data = Array.make (max n 1) x; len = n; hiw = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data';
  v.hiw <- v.len

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  if v.len > v.hiw then v.hiw <- v.len

let has_spare v = v.len < v.hiw

let spare v =
  if v.len >= v.hiw then invalid_arg "Vec.spare: no retained element";
  v.data.(v.len)

let extend v =
  if v.len >= v.hiw then invalid_arg "Vec.extend: no retained element";
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  v.data.(v.len - 1)

let truncate v n = if n < v.len then v.len <- max n 0

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let len = Array.length a in
  { data = Array.copy a; len; hiw = len }

let of_list l = of_array (Array.of_list l)

let map f v =
  if v.len = 0 then create ()
  else begin
    let data = Array.make v.len (f v.data.(0)) in
    for i = 0 to v.len - 1 do
      data.(i) <- f v.data.(i)
    done;
    { data; len = v.len; hiw = v.len }
  end

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
