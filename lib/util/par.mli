(** A minimal fork/join job pool.

    On OCaml 5 tasks run on [Domain]s (one per job, spawned per {!run});
    on 4.x the build selects a sequential backend with identical
    semantics, so callers never need to know which they got — the
    parallel replay engine degrades to ordinary sequential replay.

    Tasks of one {!run} must be independent: they may run in any order,
    concurrently, and must not share mutable state unless that state is
    their own (the intended pattern is one private accumulator per task,
    merged by the caller afterwards). *)

type t

(** [available_parallelism ()] is the number of hardware-backed domains
    worth spawning ([Domain.recommended_domain_count]; 1 on OCaml 4). *)
val available_parallelism : unit -> int

(** [create ?jobs ()] is a pool running at most [jobs] tasks at once
    (default {!available_parallelism}).
    @raise Invalid_argument when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [run t tasks] executes every task and waits for all of them.  If any
    task raised, the exception of the lowest-indexed failing task is
    re-raised after all tasks finished — deterministic regardless of
    scheduling. *)
val run : t -> (unit -> unit) array -> unit

(** [map t f xs] is [Array.map f xs] with the applications of [f] run as
    one task each.  Same exception contract as {!run}. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array
