(** A minimal fork/join job pool.

    On OCaml 5 tasks run on [Domain]s (one per job, spawned per {!run});
    on 4.x the build selects a sequential backend with identical
    semantics, so callers never need to know which they got — the
    parallel replay engine degrades to ordinary sequential replay.

    Tasks of one {!run} must be independent: they may run in any order,
    concurrently, and must not share mutable state unless that state is
    their own (the intended pattern is one private accumulator per task,
    merged by the caller afterwards). *)

type t

(** [available_parallelism ()] is the number of hardware-backed domains
    worth spawning ([Domain.recommended_domain_count]; 1 on OCaml 4). *)
val available_parallelism : unit -> int

(** [create ?jobs ()] is a pool running at most [jobs] tasks at once
    (default {!available_parallelism}).
    @raise Invalid_argument when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [run t tasks] executes every task and waits for all of them.  If any
    task raised, the exception of the lowest-indexed failing task is
    re-raised after all tasks finished — deterministic regardless of
    scheduling. *)
val run : t -> (unit -> unit) array -> unit

(** [map t f xs] is [Array.map f xs] with the applications of [f] run as
    one task each.  Same exception contract as {!run}. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Whether {!run} can actually overlap tasks: [true] on the OCaml 5
    Domain backend, [false] on the 4.x sequential backend.  Benchmarks
    record it so a flat scaling curve is attributable. *)
val parallel_backend : bool

(** Work-stealing scheduler: per-worker deques with manticore-style
    steal-half, built for chunk-granularity trace replay.  Work items
    are stepped one unit at a time; between steps an item sits in a
    deque and may be stolen, so a skewed workload (one item far larger
    than the rest) migrates to idle workers instead of serializing
    behind its initial owner. *)
module Ws : sig
  (** The job pool the worker loops run on. *)
  type pool = t

  (** The per-worker deque, exposed for the invariant unit tests.
      Owner pushes and pops at the newest end; thieves take the oldest
      half.  All operations are linearizable (internally locked) and
      safe from any domain. *)
  module Deque : sig
    type 'a t

    val create : unit -> 'a t
    val push : 'a t -> 'a -> unit

    (** [pop t] removes the newest item, [None] when empty. *)
    val pop : 'a t -> 'a option

    (** [steal_half t] removes the oldest [ceil (length t / 2)] items
        and returns them oldest first ([[]] when empty). *)
    val steal_half : 'a t -> 'a list

    val length : 'a t -> int
  end

  type 'a t

  (** [create ~workers] makes one deque per worker.
      @raise Invalid_argument when [workers < 1]. *)
  val create : workers:int -> 'a t

  (** [seed t ~worker x] enqueues an initial work item on [worker]'s
      deque.  Only valid before {!run}. *)
  val seed : 'a t -> worker:int -> 'a -> unit

  (** [run pool t ~step] runs worker loops on [pool] until every seeded
      item has completed.  [step ~worker item] performs one unit of the
      item's work and returns [Some continuation] to requeue it (on the
      stepping worker's deque, where it can be stolen) or [None] when
      the item is finished.  An exception from [step] aborts the run and
      is re-raised — when several workers fail, the lowest worker index
      wins, deterministically.  A [t] must not be reused after [run]. *)
  val run : pool -> 'a t -> step:(worker:int -> 'a -> 'a option) -> unit
end
