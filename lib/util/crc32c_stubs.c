/* CRC32C (Castagnoli).
 *
 * The polynomial was chosen for the trace codec precisely because
 * commodity CPUs compute it in hardware: SSE4.2 crc32 on x86-64 and the
 * ARMv8 CRC32 extension both implement this exact (reflected)
 * polynomial.  The hardware path runs an order of magnitude faster than
 * any table kernel, which is what keeps per-chunk checksum verification
 * a small fraction of trace decode time (see `bench -e faults`).
 *
 * Dispatch is decided once at runtime; hosts without the instruction
 * fall back to a slicing-by-8 table kernel in C.  The OCaml side keeps
 * a byte-at-a-time implementation of the same function as the
 * executable specification, and the test suite checks the two agree on
 * random inputs.
 *
 * The stub is [@@noalloc] and touches no OCaml heap values beyond
 * reading the bytes, so it needs no CAMLparam bookkeeping; bounds are
 * validated on the OCaml side before the call.
 */

#include <stdint.h>
#include <stddef.h>
#include <string.h>

#include <caml/mlvalues.h>

/* ------------------------------------------------------------------ */
/* Table fallback: slicing-by-8, initialized on first use.            */

#define POLY 0x82F63B78u

static uint32_t slice_tables[8][256];
static int tables_ready = 0;

static void init_tables(void)
{
  for (int i = 0; i < 256; i++) {
    uint32_t c = (uint32_t)i;
    for (int k = 0; k < 8; k++)
      c = (c & 1) ? (c >> 1) ^ POLY : c >> 1;
    slice_tables[0][i] = c;
  }
  for (int k = 1; k < 8; k++)
    for (int i = 0; i < 256; i++) {
      uint32_t prev = slice_tables[k - 1][i];
      slice_tables[k][i] = (prev >> 8) ^ slice_tables[0][prev & 0xff];
    }
  tables_ready = 1;
}

static uint32_t crc_tables(uint32_t crc, const unsigned char *p, size_t len)
{
  if (!tables_ready) init_tables();
  while (len >= 8) {
    uint32_t lo, hi;
    memcpy(&lo, p, 4);
    memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = slice_tables[7][lo & 0xff]
        ^ slice_tables[6][(lo >> 8) & 0xff]
        ^ slice_tables[5][(lo >> 16) & 0xff]
        ^ slice_tables[4][lo >> 24]
        ^ slice_tables[3][hi & 0xff]
        ^ slice_tables[2][(hi >> 8) & 0xff]
        ^ slice_tables[1][(hi >> 16) & 0xff]
        ^ slice_tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len--) {
    crc = (crc >> 8) ^ slice_tables[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

/* ------------------------------------------------------------------ */
/* Hardware paths.                                                    */

#if defined(__x86_64__) && defined(__GNUC__)

#include <nmmintrin.h>

__attribute__((target("sse4.2")))
static uint32_t crc_hw(uint32_t crc, const unsigned char *p, size_t len)
{
  uint64_t c = crc;
  while (len >= 8) {
    uint64_t w;
    memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    len -= 8;
  }
  crc = (uint32_t)c;
  while (len--)
    crc = _mm_crc32_u8(crc, *p++);
  return crc;
}

static int hw_available(void) { return __builtin_cpu_supports("sse4.2"); }

#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)

#include <arm_acle.h>

static uint32_t crc_hw(uint32_t crc, const unsigned char *p, size_t len)
{
  while (len >= 8) {
    uint64_t w;
    memcpy(&w, p, 8);
    crc = __crc32cd(crc, w);
    p += 8;
    len -= 8;
  }
  while (len--)
    crc = __crc32cb(crc, *p++);
  return crc;
}

static int hw_available(void) { return 1; }

#else

static uint32_t crc_hw(uint32_t crc, const unsigned char *p, size_t len)
{
  return crc_tables(crc, p, len);
}

static int hw_available(void) { return 0; }

#endif

/* -1 = undecided, 0 = tables, 1 = hardware.  Races are benign: every
 * thread computes the same answer. */
static int use_hw = -1;

CAMLprim value aprof_crc32c_digest(value vbuf, value vpos, value vlen,
                                   value vcrc)
{
  const unsigned char *p =
      (const unsigned char *)Bytes_val(vbuf) + Long_val(vpos);
  size_t len = (size_t)Long_val(vlen);
  uint32_t crc = (uint32_t)Long_val(vcrc) ^ 0xFFFFFFFFu;
  if (use_hw < 0) use_hw = hw_available();
  crc = use_hw ? crc_hw(crc, p, len) : crc_tables(crc, p, len);
  return Val_long((long)(crc ^ 0xFFFFFFFFu));
}
