(** Growable arrays (OCaml 5.1 has no [Dynarray]).

    A [Vec.t] is a mutable sequence supporting amortized O(1) push at the
    end, O(1) random access, and in-place truncation.  Elements beyond
    [length] are retained internally but never observable. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [make n x] is a vector of length [n] whose cells all hold [x]. *)
val make : int -> 'a -> 'a t

(** [length v] is the number of elements currently in [v]. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element with [x].
    @raise Invalid_argument if [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] at the end of [v]. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** {2 Element recycling}

    A popped element is retained in its slot until a later [push]
    overwrites it.  [spare]/[extend] hand such a retained element back so
    a caller pushing mutable records can reset the old record in place
    instead of allocating a fresh one:

    {[ if Vec.has_spare v then begin
         let r = Vec.spare v in
         (* ... reset r's fields ... *) Vec.extend v
       end else Vec.push v (fresh ()) ]}

    Safe only when every live element was written by its own [push] of a
    distinct value: [make] and [set] can alias one record across several
    slots, after which mutating a spare corrupts live elements.  The
    caller must also not retain a popped element across a later push. *)

(** [has_spare v] is [true] when the slot at index [length v] holds a
    retained (previously pushed, then popped) element. *)
val has_spare : 'a t -> bool

(** [spare v] is the retained element just past the end.
    @raise Invalid_argument when [has_spare v] is [false]. *)
val spare : 'a t -> 'a

(** [extend v] re-appends the retained element [spare v].
    @raise Invalid_argument when [has_spare v] is [false]. *)
val extend : 'a t -> unit

(** [top v] is the last element without removing it.
    @raise Invalid_argument on an empty vector. *)
val top : 'a t -> 'a

(** [truncate v n] shrinks [v] to length [n] (no-op if already shorter). *)
val truncate : 'a t -> int -> unit

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t

(** [map f v] is a fresh vector holding [f x] for each element [x]. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [exists p v] tests whether some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [sort cmp v] sorts [v] in place. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit
