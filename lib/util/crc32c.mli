(** CRC32C (Castagnoli) checksums.

    The polynomial is the iSCSI/ext4 one (0x1EDC6F41, reflected form
    0x82F63B78), chosen over CRC32 (zlib) both for its better
    error-detection properties on short messages and because commodity
    CPUs compute it in hardware — the trace codec checksums each I/O
    chunk with it before any record decoding touches the bytes, so the
    checksum must stay a small fraction of the varint-decode cost.

    {!digest} dispatches (once, at runtime) to the SSE4.2 [crc32]
    instruction on x86-64 or the ARMv8 CRC32 extension, falling back to
    a slicing-by-8 table kernel elsewhere; {!digest_bytewise} is the
    byte-at-a-time executable specification the fast paths are tested
    against.

    Digests are plain non-negative [int]s in [0, 0xFFFF_FFFF].
    Checksums compose incrementally: [digest ~crc:(digest b) b'] equals
    the digest of the concatenation of [b] and [b']. *)

(** [digest ?crc b ~pos ~len] is the CRC32C of bytes
    [pos .. pos+len-1] of [b], continuing from [crc] (default: the empty
    digest, 0).
    @raise Invalid_argument when [pos]/[len] do not delimit a valid
    range of [b]. *)
val digest : ?crc:int -> Bytes.t -> pos:int -> len:int -> int

(** [digest_string ?crc s ~pos ~len] is {!digest} over a string. *)
val digest_string : ?crc:int -> string -> pos:int -> len:int -> int

(** [digest_bytewise ?crc b ~pos ~len] is {!digest}, computed one byte
    at a time in OCaml — the specification the optimized paths are
    differentially tested against.  Slow; use {!digest}. *)
val digest_bytewise : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
