(* Domain-backed parallel backend (OCaml >= 5).  Selected by a dune
   copy rule; the 4.14 build gets the sequential twin instead, so this
   file must be the only place that names [Domain]. *)

let available () = Domain.recommended_domain_count ()

let is_parallel = true

let relax = Domain.cpu_relax

(* Workers pull task indices from a shared atomic counter, so uneven
   task costs balance without any pre-partitioning.  Domains are
   spawned per run: a replay task is milliseconds to seconds, spawn is
   microseconds, and forgoing resident workers means there is no
   lifecycle (shutdown, idle spin) to get wrong. *)
let run ~jobs (tasks : (unit -> unit) array) : exn option =
  let n = Array.length tasks in
  let workers = min jobs n in
  if workers <= 1 then begin
    try
      Array.iter (fun f -> f ()) tasks;
      None
    with e -> Some e
  end
  else begin
    let next = Atomic.make 0 in
    (* First exception wins by task index, so failures are reported
       deterministically no matter which domain hit one first. *)
    let failed : exn option array = Array.make n None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match tasks.(i) () with
          | () -> ()
          | exception e -> failed.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.fold_left
      (fun acc e -> match acc with Some _ -> acc | None -> e)
      None failed
  end
