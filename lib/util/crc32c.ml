(* CRC32C (Castagnoli).

   The hot entry point is a C stub: the polynomial has hardware support
   on x86-64 (SSE4.2 crc32) and ARMv8 (CRC32 extension) — that is why
   the codec uses this CRC and not zlib's — and the stub falls back to a
   slicing-by-8 table kernel in C on other hosts.  Dispatch happens once
   at runtime inside the stub.

   [digest_bytewise] is the executable specification: the textbook
   byte-at-a-time reflected CRC, kept in OCaml and obviously correct.
   The test suite pins the stub to it on random inputs, and both to the
   published check vectors. *)

external unsafe_digest : Bytes.t -> int -> int -> int -> int
  = "aprof_crc32c_digest"
  [@@noalloc]

let digest ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Crc32c.digest: invalid range";
  unsafe_digest b pos len crc

let digest_string ?crc s ~pos ~len =
  digest ?crc (Bytes.unsafe_of_string s) ~pos ~len

let poly = 0x82F63B78

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then (!c lsr 1) lxor poly else !c lsr 1
         done;
         !c))

let digest_bytewise ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Crc32c.digest_bytewise: invalid range";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get t ((!c lxor Char.code (Bytes.get b i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
