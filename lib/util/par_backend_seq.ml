(* Sequential parallel backend (OCaml 4.x, no Domain).  Same observable
   semantics as the domain backend with one worker: tasks run in index
   order, the first exception is captured and returned. *)

let available () = 1

let is_parallel = false

(* No other runner to yield to. *)
let relax () = ()

let run ~jobs:_ (tasks : (unit -> unit) array) : exn option =
  try
    Array.iter (fun f -> f ()) tasks;
    None
  with e -> Some e
