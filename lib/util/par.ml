type t = { jobs : int }

let available_parallelism () = max 1 (Par_backend.available ())

let create ?jobs () =
  let jobs =
    match jobs with Some j -> j | None -> available_parallelism ()
  in
  if jobs < 1 then invalid_arg "Par.create: jobs must be >= 1";
  { jobs }

let jobs t = t.jobs

let run t tasks =
  match Par_backend.run ~jobs:t.jobs tasks with
  | None -> ()
  | Some e -> raise e

let map t f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  run t (Array.init n (fun i () -> out.(i) <- Some (f xs.(i))));
  Array.map
    (function Some v -> v | None -> assert false (* run re-raises *))
    out

let parallel_backend = Par_backend.is_parallel

(* ----- work stealing --------------------------------------------------- *)

module Ws = struct
  type pool = t

  module Deque = struct
    (* A lock-protected ring buffer rather than a lock-free Chase-Lev
       deque: items here are whole trace chunks (tens of microseconds to
       milliseconds each), so the deque is touched orders of magnitude
       less often than the work it schedules and an uncontended spinlock
       acquisition is noise.  The lock is an [Atomic.t] bool, which both
       backends have (the sequential one never contends). *)
    type 'a t = {
      mutable buf : 'a option array;
      mutable head : int; (* index of the oldest item *)
      mutable len : int;
      lock : bool Atomic.t;
    }

    let create () =
      { buf = Array.make 8 None; head = 0; len = 0; lock = Atomic.make false }

    let acquire t =
      while not (Atomic.compare_and_set t.lock false true) do
        Par_backend.relax ()
      done

    let release t = Atomic.set t.lock false

    let grow t =
      let cap = Array.length t.buf in
      let buf = Array.make (cap * 2) None in
      for i = 0 to t.len - 1 do
        buf.(i) <- t.buf.((t.head + i) mod cap)
      done;
      t.buf <- buf;
      t.head <- 0

    (* Owner side: push and pop at the newest end (LIFO), so a stolen
       continuation resumes where the thief left it while fresh seeds
       age toward the steal end. *)
    let push t x =
      acquire t;
      if t.len = Array.length t.buf then grow t;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
      t.len <- t.len + 1;
      release t

    let pop t =
      acquire t;
      let r =
        if t.len = 0 then None
        else begin
          let i = (t.head + t.len - 1) mod Array.length t.buf in
          let x = t.buf.(i) in
          t.buf.(i) <- None;
          t.len <- t.len - 1;
          x
        end
      in
      release t;
      r

    (* Thief side: take the oldest ceil(len/2) items (manticore's
       steal-half policy), returned oldest first.  The caller pushes
       them into its own deque after releasing this lock — two deques
       are never locked at once, so lock order cannot cycle. *)
    let steal_half t =
      acquire t;
      let k = (t.len + 1) / 2 in
      let out = ref [] in
      for i = k - 1 downto 0 do
        let j = (t.head + i) mod Array.length t.buf in
        (match t.buf.(j) with
        | Some x -> out := x :: !out
        | None -> assert false);
        t.buf.(j) <- None
      done;
      t.head <- (t.head + k) mod Array.length t.buf;
      t.len <- t.len - k;
      release t;
      !out

    let length t =
      acquire t;
      let n = t.len in
      release t;
      n
  end

  type 'a t = {
    deques : 'a Deque.t array;
    live : int Atomic.t; (* items seeded and not yet completed *)
  }

  let create ~workers =
    if workers < 1 then invalid_arg "Par.Ws.create: workers < 1";
    {
      deques = Array.init workers (fun _ -> Deque.create ());
      live = Atomic.make 0;
    }

  let seed t ~worker x =
    Atomic.incr t.live;
    Deque.push t.deques.(worker) x

  (* Each pool task runs one worker loop: pop own work, step it, and
     either re-push the continuation (making it stealable between
     steps — that is the chunk-granularity migration) or retire it.
     An empty deque turns the worker into a thief; when every item has
     retired the loop exits.  A step that raises aborts the whole run:
     the first failure by worker index is re-raised after all workers
     have stopped, so errors are deterministic under any schedule. *)
  let run pool t ~step =
    let workers = Array.length t.deques in
    let abort = Atomic.make false in
    let failed = Array.make workers None in
    let worker w () =
      let own = t.deques.(w) in
      let try_steal () =
        let stolen = ref [] in
        let i = ref 1 in
        while !stolen = [] && !i < workers do
          (match Deque.steal_half t.deques.((w + !i) mod workers) with
          | [] -> ()
          | xs -> stolen := xs);
          incr i
        done;
        !stolen
      in
      let rec loop () =
        if not (Atomic.get abort) then
          match Deque.pop own with
          | Some item ->
            (match step ~worker:w item with
            | Some item' -> Deque.push own item'
            | None -> Atomic.decr t.live
            | exception e ->
              failed.(w) <- Some e;
              Atomic.decr t.live;
              Atomic.set abort true);
            loop ()
          | None ->
            if Atomic.get t.live > 0 then begin
              (match try_steal () with
              | [] -> Par_backend.relax ()
              | xs -> List.iter (Deque.push own) xs);
              loop ()
            end
      in
      loop ()
    in
    run pool (Array.init workers worker);
    Array.iter (function Some e -> raise e | None -> ()) failed
end
