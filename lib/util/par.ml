type t = { jobs : int }

let available_parallelism () = max 1 (Par_backend.available ())

let create ?jobs () =
  let jobs =
    match jobs with Some j -> j | None -> available_parallelism ()
  in
  if jobs < 1 then invalid_arg "Par.create: jobs must be >= 1";
  { jobs }

let jobs t = t.jobs

let run t tasks =
  match Par_backend.run ~jobs:t.jobs tasks with
  | None -> ()
  | Some e -> raise e

let map t f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  run t (Array.init n (fun i () -> out.(i) <- Some (f xs.(i))));
  Array.map
    (function Some v -> v | None -> assert false (* run re-raises *))
    out
