module Event = Aprof_trace.Event

let cost_increment = function
  | Event.Block { units; _ } -> units
  | Event.Read _ | Event.Write _ | Event.Call _ -> 1
  | Event.Return _ | Event.User_to_kernel _ | Event.Kernel_to_user _
  | Event.Acquire _ | Event.Release _ | Event.Alloc _ | Event.Free _
  | Event.Thread_start _ | Event.Thread_exit _ | Event.Switch_thread _ ->
    0

(* The same metric from the packed fields (tags 1/3/4 = Call/Read/Write,
   5 = Block whose [arg] is the unit count). *)
let cost_increment_raw ~tag ~arg =
  match tag with 1 | 3 | 4 -> 1 | 5 -> arg | _ -> 0

module Counter = struct
  (* The counter table is consulted for every cost-bearing event, and
     events arrive in scheduler slices of the same thread, so a one-entry
     cache in front of the table turns almost every lookup into an int
     compare.  [last_tid] starts at [min_int] — no real tid — so the
     initial [last] ref is unreachable. *)
  type t = {
    tbl : (int, int ref) Hashtbl.t;
    mutable last_tid : int;
    mutable last : int ref;
  }

  let create () : t =
    { tbl = Hashtbl.create 8; last_tid = min_int; last = ref 0 }

  (* [Hashtbl.find] rather than [find_opt]: the hot path must not box a
     [Some] per cost-bearing event. *)
  let counter_slow t tid =
    let c =
      match Hashtbl.find t.tbl tid with
      | c -> c
      | exception Not_found ->
        let c = ref 0 in
        Hashtbl.add t.tbl tid c;
        c
    in
    t.last_tid <- tid;
    t.last <- c;
    c

  let counter t tid = if tid = t.last_tid then t.last else counter_slow t tid

  let on_event t e =
    let inc = cost_increment e in
    if inc > 0 then begin
      let c = counter t (Event.tid e) in
      c := !c + inc
    end

  let on_raw t ~tag ~tid ~arg =
    let inc = cost_increment_raw ~tag ~arg in
    if inc > 0 then begin
      let c = counter t tid in
      c := !c + inc
    end

  let cost t tid =
    if tid = t.last_tid then !(t.last)
    else
      match Hashtbl.find t.tbl tid with
      | c -> !c
      | exception Not_found -> 0

  let total t = Hashtbl.fold (fun _ c acc -> acc + !c) t.tbl 0
end

let simulated_time_ns rng ~ns_per_block ~jitter cost =
  let base = float_of_int cost *. ns_per_block in
  let noise = Aprof_util.Rng.gaussian rng ~mu:1.0 ~sigma:jitter in
  let overhead = 120. in
  Float.max (0.1 *. base) ((base *. noise) +. overhead)
