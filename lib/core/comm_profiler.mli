(** Shared-memory communication characterization — the direction the
    paper's conclusion sketches: "characterizing how multi-threaded
    applications scale their work and how they communicate via shared
    memory at routine activation rather than thread granularity".

    This profiler tracks, for every induced first-read, *who produced the
    value*: the writing thread and the routine that was executing the
    write (or the kernel).  Aggregated, this yields:

    - a thread-to-thread communication matrix (how many values flowed
      from writer thread to reader thread);
    - a producer/consumer routine matrix (which routine's writes feed
      which routine's reads), the routine-granularity view;
    - per-cell communication degree statistics (how many distinct thread
      pairs communicated through each location).

    Implementation: two extra global shadows hold the last writer's
    thread id + 1 and routine id + 1 per cell, alongside a write-stamp
    shadow; a read by [t] of a cell whose latest write is newer than
    [t]'s latest access is a communication event, credited to the edge
    (writer routine, reader routine) and (writer thread, reader thread).
    Kernel transfers appear as writer id {!kernel_id}. *)

(** Pseudo thread/routine id standing for the OS kernel. *)
val kernel_id : int

type edge = { from_id : int; to_id : int; values : int }

type report = {
  thread_matrix : edge list;  (** sorted by decreasing [values] *)
  routine_matrix : edge list;  (** sorted by decreasing [values] *)
  communicating_cells : int;  (** cells that carried >= 1 communication *)
  single_pair_cells : int;
      (** of those, cells used by exactly one (writer, reader) thread
          pair — the "limited interaction" pattern of Kalibera et al.
          that the paper cites *)
  total_values : int;
}

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit
val run : t -> Aprof_trace.Trace.t -> unit

(** [run_stream t s] feeds the events of [s] incrementally; the stream
    is consumed (the whole trace is never materialized). *)
val run_stream : t -> Aprof_trace.Trace_stream.t -> unit
val report : t -> report

(** [pp ~thread_name ~routine_name ppf report] renders both matrices. *)
val pp :
  routine_name:(int -> string) -> Format.formatter -> report -> unit
