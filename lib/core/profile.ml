type key = { tid : int; routine : int }

type point = {
  input : int;
  calls : int;
  max_cost : int;
  min_cost : int;
  sum_cost : float;
  sum_cost_sq : float;
}

type routine_data = {
  drms_points : point list;
  rms_points : point list;
  activations : int;
  sum_rms : float;
  sum_drms : float;
  total_cost : float;
  first_read_ops : int;
  induced_thread_ops : int;
  induced_external_ops : int;
}

(* All-float records are stored flat, so updating these sums in the hot
   path does not box a float per store — unlike mutable float fields in
   the mixed records below, which would. *)
type fsums = { mutable f_sum : float; mutable f_sum_sq : float }

(* Internal mutable accumulator for one input-size value; converted to
   the immutable [point] on demand.  Mutated in place so an activation
   costs no allocation, where rebuilding a [point] per activation would
   allocate the record plus fresh float boxes. *)
type acc = {
  a_input : int;
  mutable a_calls : int;
  mutable a_max : int;
  mutable a_min : int;
  a_cost : fsums;
}

type totals = {
  mutable t_rms : float;
  mutable t_drms : float;
  mutable t_cost : float;
}

(* Internal mutable accumulator; converted to [routine_data] on demand.
   [last_drms_acc]/[last_rms_acc] cache the accumulator of the most
   recent input size per metric: activations of a routine overwhelmingly
   repeat the previous input size, and the cache turns both point-table
   lookups of an activation into an int compare.  The cached accumulator
   is the live table entry, so updates through either path agree; the
   shared [sentinel_acc] ([a_input = min_int], below any real size)
   stands for "empty" and is never written. *)
type cell = {
  k_tid : int;
  k_routine : int;
  drms_tbl : (int, acc) Hashtbl.t;
  rms_tbl : (int, acc) Hashtbl.t;
  mutable last_drms_acc : acc;
  mutable last_rms_acc : acc;
  mutable acts : int;
  sums : totals;
  mutable plain : int;
  mutable ind_thread : int;
  mutable ind_external : int;
}

(* Cells are keyed by the packed (tid, routine) pair: profilers hit this
   table on every call and return, and an int key avoids both the key
   record allocation and the generic structural hash of a record key.
   Routine ids (including CCT node ids) fit well below 2^32, tids below
   2^30.  [last] is a one-entry cache: activations cluster by routine,
   so consecutive lookups usually repeat the previous key. *)
type t = {
  cells : (int, cell) Hashtbl.t;
  mutable last_code : int;
  mutable last_cell : cell option;
}

let code ~tid ~routine = (tid lsl 32) lor (routine land 0xFFFFFFFF)

let create () : t =
  { cells = Hashtbl.create 64; last_code = min_int; last_cell = None }

let sentinel_acc =
  {
    a_input = min_int;
    a_calls = 0;
    a_max = 0;
    a_min = 0;
    a_cost = { f_sum = 0.; f_sum_sq = 0. };
  }

let fresh_cell ~tid ~routine =
  {
    k_tid = tid;
    k_routine = routine;
    drms_tbl = Hashtbl.create 8;
    rms_tbl = Hashtbl.create 8;
    last_drms_acc = sentinel_acc;
    last_rms_acc = sentinel_acc;
    acts = 0;
    sums = { t_rms = 0.; t_drms = 0.; t_cost = 0. };
    plain = 0;
    ind_thread = 0;
    ind_external = 0;
  }

let cell_slow t ~tid ~routine c =
  let cl =
    match Hashtbl.find t.cells c with
    | cl -> cl
    | exception Not_found ->
      let cl = fresh_cell ~tid ~routine in
      Hashtbl.add t.cells c cl;
      cl
  in
  t.last_code <- c;
  t.last_cell <- Some cl;
  cl

let cell t ~tid ~routine =
  let c = code ~tid ~routine in
  if c = t.last_code then
    match t.last_cell with Some cl -> cl | None -> assert false
  else cell_slow t ~tid ~routine c

let bump_acc a cost fcost =
  a.a_calls <- a.a_calls + 1;
  if cost > a.a_max then a.a_max <- cost;
  if cost < a.a_min then a.a_min <- cost;
  a.a_cost.f_sum <- a.a_cost.f_sum +. fcost;
  a.a_cost.f_sum_sq <- a.a_cost.f_sum_sq +. (fcost *. fcost)

(* Find-or-create the accumulator of [input], already bumped by [cost]. *)
let acc_for tbl input cost fcost =
  match Hashtbl.find tbl input with
  | a ->
    bump_acc a cost fcost;
    a
  | exception Not_found ->
    let a =
      {
        a_input = input;
        a_calls = 1;
        a_max = cost;
        a_min = cost;
        a_cost = { f_sum = fcost; f_sum_sq = fcost *. fcost };
      }
    in
    Hashtbl.add tbl input a;
    a

let record_into c ~rms ~drms ~cost =
  c.acts <- c.acts + 1;
  c.sums.t_rms <- c.sums.t_rms +. float_of_int rms;
  c.sums.t_drms <- c.sums.t_drms +. float_of_int drms;
  c.sums.t_cost <- c.sums.t_cost +. float_of_int cost;
  let fcost = float_of_int cost in
  let da = c.last_drms_acc in
  if da.a_input = drms then bump_acc da cost fcost
  else c.last_drms_acc <- acc_for c.drms_tbl drms cost fcost;
  let ra = c.last_rms_acc in
  if ra.a_input = rms then bump_acc ra cost fcost
  else c.last_rms_acc <- acc_for c.rms_tbl rms cost fcost

let record_activation t ~tid ~routine ~rms ~drms ~cost =
  record_into (cell t ~tid ~routine) ~rms ~drms ~cost

let record_ops t ~tid ~routine ~plain ~induced_thread ~induced_external =
  let c = cell t ~tid ~routine in
  c.plain <- c.plain + plain;
  c.ind_thread <- c.ind_thread + induced_thread;
  c.ind_external <- c.ind_external + induced_external

type ops_handle = cell

let ops_handle t ~tid ~routine = cell t ~tid ~routine
let bump_plain c = c.plain <- c.plain + 1
let bump_induced_thread c = c.ind_thread <- c.ind_thread + 1
let bump_induced_external c = c.ind_external <- c.ind_external + 1

let point_of_acc a =
  {
    input = a.a_input;
    calls = a.a_calls;
    max_cost = a.a_max;
    min_cost = a.a_min;
    sum_cost = a.a_cost.f_sum;
    sum_cost_sq = a.a_cost.f_sum_sq;
  }

let points_of_tbl tbl =
  Hashtbl.fold (fun _ a acc -> point_of_acc a :: acc) tbl []
  |> List.sort (fun a b -> compare a.input b.input)

let data_of_cell c =
  {
    drms_points = points_of_tbl c.drms_tbl;
    rms_points = points_of_tbl c.rms_tbl;
    activations = c.acts;
    sum_rms = c.sums.t_rms;
    sum_drms = c.sums.t_drms;
    total_cost = c.sums.t_cost;
    first_read_ops = c.plain;
    induced_thread_ops = c.ind_thread;
    induced_external_ops = c.ind_external;
  }

let keys t =
  Hashtbl.fold
    (fun _ c acc -> { tid = c.k_tid; routine = c.k_routine } :: acc)
    t.cells []

let data t key =
  Option.map data_of_cell
    (Hashtbl.find_opt t.cells (code ~tid:key.tid ~routine:key.routine))

let routines t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun _ c -> Hashtbl.replace seen c.k_routine ()) t.cells;
  Hashtbl.fold (fun r () acc -> r :: acc) seen []
  |> List.sort compare

let merge_accs target src =
  let merge_tbl dst src_tbl =
    Hashtbl.iter
      (fun input a ->
        match Hashtbl.find_opt dst input with
        | None ->
          Hashtbl.add dst input
            {
              a_input = a.a_input;
              a_calls = a.a_calls;
              a_max = a.a_max;
              a_min = a.a_min;
              a_cost = { f_sum = a.a_cost.f_sum; f_sum_sq = a.a_cost.f_sum_sq };
            }
        | Some q ->
          q.a_calls <- q.a_calls + a.a_calls;
          if a.a_max > q.a_max then q.a_max <- a.a_max;
          if a.a_min < q.a_min then q.a_min <- a.a_min;
          q.a_cost.f_sum <- q.a_cost.f_sum +. a.a_cost.f_sum;
          q.a_cost.f_sum_sq <- q.a_cost.f_sum_sq +. a.a_cost.f_sum_sq)
      src_tbl
  in
  merge_tbl target.drms_tbl src.drms_tbl;
  merge_tbl target.rms_tbl src.rms_tbl;
  target.acts <- target.acts + src.acts;
  target.sums.t_rms <- target.sums.t_rms +. src.sums.t_rms;
  target.sums.t_drms <- target.sums.t_drms +. src.sums.t_drms;
  target.sums.t_cost <- target.sums.t_cost +. src.sums.t_cost;
  target.plain <- target.plain + src.plain;
  target.ind_thread <- target.ind_thread + src.ind_thread;
  target.ind_external <- target.ind_external + src.ind_external

(* Cells and fit points are associative aggregates by construction
   (counts and sums add, maxes max), so combining two profiles is a
   cell-wise [merge_accs]: the result is what one profiler would have
   produced had it seen both event sets.  The destination's one-entry
   caches stay valid — [merge_accs] mutates live table entries in
   place and never replaces them. *)
let merge_into ?keep ~into src =
  Hashtbl.iter
    (fun _ s ->
      let wanted =
        match keep with
        | None -> true
        | Some f -> f { tid = s.k_tid; routine = s.k_routine }
      in
      if wanted then
        merge_accs (cell into ~tid:s.k_tid ~routine:s.k_routine) s)
    src.cells

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let merge_threads t =
  let merged : (int, cell) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ src ->
      let dst =
        match Hashtbl.find_opt merged src.k_routine with
        | Some c -> c
        | None ->
          let c = fresh_cell ~tid:0 ~routine:src.k_routine in
          Hashtbl.add merged src.k_routine c;
          c
      in
      merge_accs dst src)
    t.cells;
  Hashtbl.fold (fun r c acc -> (r, data_of_cell c) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_activations t =
  Hashtbl.fold (fun _ c acc -> acc + c.acts) t.cells 0

let restore_point t ~tid ~routine ~metric (p : point) =
  let c = cell t ~tid ~routine in
  let tbl = match metric with `Drms -> c.drms_tbl | `Rms -> c.rms_tbl in
  match Hashtbl.find_opt tbl p.input with
  | None ->
    Hashtbl.add tbl p.input
      {
        a_input = p.input;
        a_calls = p.calls;
        a_max = p.max_cost;
        a_min = p.min_cost;
        a_cost = { f_sum = p.sum_cost; f_sum_sq = p.sum_cost_sq };
      }
  | Some q ->
    q.a_calls <- q.a_calls + p.calls;
    if p.max_cost > q.a_max then q.a_max <- p.max_cost;
    if p.min_cost < q.a_min then q.a_min <- p.min_cost;
    q.a_cost.f_sum <- q.a_cost.f_sum +. p.sum_cost;
    q.a_cost.f_sum_sq <- q.a_cost.f_sum_sq +. p.sum_cost_sq

let restore_aggregates t ~tid ~routine ~activations ~sum_rms ~sum_drms
    ~total_cost =
  let c = cell t ~tid ~routine in
  c.acts <- activations;
  c.sums.t_rms <- sum_rms;
  c.sums.t_drms <- sum_drms;
  c.sums.t_cost <- total_cost

let pp name ppf t =
  let entries =
    keys t
    |> List.sort (fun a b -> compare (a.routine, a.tid) (b.routine, b.tid))
  in
  List.iter
    (fun k ->
      match data t k with
      | None -> ()
      | Some d ->
        Format.fprintf ppf "@[<v 2>%s (thread %d): %d activations@," (name k.routine)
          k.tid d.activations;
        Format.fprintf ppf "drms points:";
        List.iter
          (fun p -> Format.fprintf ppf "@, input=%d calls=%d max_cost=%d" p.input p.calls p.max_cost)
          d.drms_points;
        Format.fprintf ppf "@]@.")
    entries
