(** Reference implementation of the drms by the naive approach of
    Figure 7: every pending routine activation of every thread carries an
    explicit set [L_{r,t}] of accessed memory locations; writes by other
    threads (and kernel writes) remove locations from the sets of every
    other thread, and a read counts toward the drms of each pending
    activation whose set misses the location.

    Time and space are deliberately terrible — O(stack depth) per access
    and one set per pending activation — exactly as the paper describes.
    Its purpose is to serve as the differential-testing oracle for
    {!Drms_profiler}: on any well-formed trace both must produce identical
    profiles. *)

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit
val run : t -> Aprof_trace.Trace.t -> unit

(** [run_stream t s] feeds the events of [s] incrementally; the stream
    is consumed (the whole trace is never materialized). *)
val run_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [finish t] collects pending activations and returns the profile.
    Per-activation rms/drms/cost and per-routine first-read operation
    counts follow the same conventions as {!Drms_profiler}. *)
val finish : t -> Profile.t

val profile : t -> Profile.t

(** [merge_into ~into src] finishes both profilers and merges [src]'s
    profile into [into]'s; the same per-trace soundness caveat as
    {!Drms_profiler.merge_into} applies. *)
val merge_into : into:t -> t -> unit

(** [current_drms t ~tid] mirrors {!Drms_profiler.current_drms}: the drms
    of each pending activation of [tid], bottom first. *)
val current_drms : t -> tid:int -> int list
