let metric_name = function `Drms -> "drms" | `Rms -> "rms"

(* Version history:
   1 — the original unversioned dump (agg/ops/point/routine records, no
       header); still accepted on load.
   2 — identical records, prefixed by an explicit [format,2] header so
       readers (and [aprof merge], which combines dumps from different
       runs) can reject formats they do not understand instead of
       misparsing them.
   3 — adds an optional [meta,<run metadata>] line (workload, seed,
       scale, threads, scheduler — see {!Aprof_analysis.Run_meta}) so a
       dump records the run that produced it and the regression watch
       can refuse to compare apples to oranges. *)
let format_version = 3

let save_buf buf ?routine_name ?meta (t : Profile.t) =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "format,%d" format_version;
  (match meta with
  | None -> ()
  | Some m ->
    add "meta,%s"
      (String.concat "," (Aprof_analysis.Run_meta.to_fields m)));
  let keys =
    Profile.keys t
    |> List.sort (fun a b ->
           compare
             (a.Profile.routine, a.Profile.tid)
             (b.Profile.routine, b.Profile.tid))
  in
  (match routine_name with
  | None -> ()
  | Some name ->
    let seen = Hashtbl.create 16 in
    List.iter
      (fun k ->
        let r = k.Profile.routine in
        if not (Hashtbl.mem seen r) then begin
          Hashtbl.add seen r ();
          add "routine,%d,%s" r (name r)
        end)
      keys);
  List.iter
    (fun k ->
      match Profile.data t k with
      | None -> ()
      | Some d ->
        let tid = k.Profile.tid and routine = k.Profile.routine in
        add "agg,%d,%d,%d,%.17g,%.17g,%.17g" tid routine d.Profile.activations
          d.Profile.sum_rms d.Profile.sum_drms d.Profile.total_cost;
        add "ops,%d,%d,%d,%d,%d" tid routine d.Profile.first_read_ops
          d.Profile.induced_thread_ops d.Profile.induced_external_ops;
        List.iter
          (fun (metric, points) ->
            List.iter
              (fun (p : Profile.point) ->
                add "point,%d,%d,%s,%d,%d,%d,%d,%.17g,%.17g" tid routine
                  (metric_name metric) p.Profile.input p.Profile.calls
                  p.Profile.max_cost p.Profile.min_cost p.Profile.sum_cost
                  p.Profile.sum_cost_sq)
              points)
          [ (`Drms, d.Profile.drms_points); (`Rms, d.Profile.rms_points) ])
    keys

let to_string ?routine_name ?meta t =
  let buf = Buffer.create 4096 in
  save_buf buf ?routine_name ?meta t;
  Buffer.contents buf

let save oc ?routine_name ?meta t =
  output_string oc (to_string ?routine_name ?meta t)

let parse_line lineno profile names meta line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  match String.split_on_char ',' (String.trim line) with
  | [ "" ] -> Ok ()
  | [ "format"; v ] -> (
    (* A dump without this header is a version-1 file; with it, the
       version must be one this reader understands. *)
    match int_of_string_opt v with
    | Some v when v >= 1 && v <= format_version -> Ok ()
    | Some v ->
      fail "unsupported profile format version %d (expected <= %d)" v
        format_version
    | None -> fail "bad format version %S" v)
  | "meta" :: fields -> (
    match Aprof_analysis.Run_meta.of_fields fields with
    | Ok m ->
      meta := Some m;
      Ok ()
    | Error e -> fail "%s" e)
  | "routine" :: id :: rest -> (
    match int_of_string_opt id with
    | Some id ->
      (* names may themselves contain commas *)
      names := (id, String.concat "," rest) :: !names;
      Ok ()
    | None -> fail "bad routine id")
  | [ "agg"; tid; routine; acts; sr; sd; tc ] -> (
    match
      ( int_of_string_opt tid,
        int_of_string_opt routine,
        int_of_string_opt acts,
        float_of_string_opt sr,
        float_of_string_opt sd,
        float_of_string_opt tc )
    with
    | Some tid, Some routine, Some acts, Some sr, Some sd, Some tc ->
      Profile.restore_aggregates profile ~tid ~routine ~activations:acts
        ~sum_rms:sr ~sum_drms:sd ~total_cost:tc;
      Ok ()
    | _ -> fail "bad agg record")
  | [ "ops"; tid; routine; plain; ith; iex ] -> (
    match
      ( int_of_string_opt tid,
        int_of_string_opt routine,
        int_of_string_opt plain,
        int_of_string_opt ith,
        int_of_string_opt iex )
    with
    | Some tid, Some routine, Some plain, Some ith, Some iex ->
      Profile.record_ops profile ~tid ~routine ~plain ~induced_thread:ith
        ~induced_external:iex;
      Ok ()
    | _ -> fail "bad ops record")
  | [ "point"; tid; routine; metric; input; calls; mx; mn; sum; sumsq ] -> (
    match
      ( int_of_string_opt tid,
        int_of_string_opt routine,
        (match metric with
        | "drms" -> Some `Drms
        | "rms" -> Some `Rms
        | _ -> None),
        int_of_string_opt input,
        int_of_string_opt calls,
        int_of_string_opt mx,
        int_of_string_opt mn,
        float_of_string_opt sum,
        float_of_string_opt sumsq )
    with
    | ( Some tid,
        Some routine,
        Some metric,
        Some input,
        Some calls,
        Some max_cost,
        Some min_cost,
        Some sum_cost,
        Some sum_cost_sq ) ->
      Profile.restore_point profile ~tid ~routine ~metric
        { Profile.input; calls; max_cost; min_cost; sum_cost; sum_cost_sq };
      Ok ()
    | _ -> fail "bad point record")
  | kind :: _ -> fail "unknown record kind %S" kind
  | [] -> Ok ()

let of_string_meta s =
  let profile = Profile.create () in
  let names = ref [] in
  let meta = ref None in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> Ok (profile, List.rev !names, !meta)
    | line :: rest -> (
      match parse_line lineno profile names meta line with
      | Ok () -> go (lineno + 1) rest
      | Error e -> Error e)
  in
  go 1 lines

let of_string s =
  Result.map (fun (profile, names, _) -> (profile, names)) (of_string_meta s)

let load ic = of_string (In_channel.input_all ic)
let load_meta ic = of_string_meta (In_channel.input_all ic)

let render_report ~routine_name profile =
  Format.asprintf "%a@.dynamic input volume: %.3f@."
    (Profile.pp routine_name) profile
    (Metrics.dynamic_input_volume profile)
