module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory
module Vec = Aprof_util.Vec

let kernel_id = -2

type edge = { from_id : int; to_id : int; values : int }

type report = {
  thread_matrix : edge list;
  routine_matrix : edge list;
  communicating_cells : int;
  single_pair_cells : int;
  total_values : int;
}

type thread_state = {
  ts_local : Shadow.t; (* latest access stamp, as in the drms algorithm *)
  stack : int Vec.t; (* routine ids only: we need the current routine *)
}

type t = {
  mutable count : int;
  wts : Shadow.t; (* latest write stamp per cell (thread or kernel) *)
  wtid : Shadow.t; (* latest writer thread id + 3 (0 = none, 1 = kernel) *)
  wrtn : Shadow.t; (* latest writer routine id + 3 (0 = none, 1 = kernel) *)
  threads : (int, thread_state) Hashtbl.t;
  thread_edges : (int * int, int ref) Hashtbl.t;
  routine_edges : (int * int, int ref) Hashtbl.t;
  (* per-cell: the single (writer tid, reader tid) pair seen, or -1 when
     several distinct pairs used the cell *)
  cell_pairs : (int, (int * int) ref) Hashtbl.t;
  mutable total : int;
  mutable finished : bool;
}

(* Shadow words are offset by 3 so that 0 keeps meaning "never written"
   and the kernel (id -2) maps to 1. *)
let encode_id id = id + 3
let decode_id w = w - 3

let create () =
  {
    count = 0;
    wts = Shadow.create ();
    wtid = Shadow.create ();
    wrtn = Shadow.create ();
    threads = Hashtbl.create 8;
    thread_edges = Hashtbl.create 64;
    routine_edges = Hashtbl.create 256;
    cell_pairs = Hashtbl.create 1024;
    total = 0;
    finished = false;
  }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st = { ts_local = Shadow.create (); stack = Vec.create () } in
    Hashtbl.add t.threads tid st;
    st

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let note_cell t addr pair =
  match Hashtbl.find_opt t.cell_pairs addr with
  | None -> Hashtbl.add t.cell_pairs addr (ref pair)
  | Some r -> if !r <> pair && !r <> (-1, -1) then r := (-1, -1)

let on_read t tid addr =
  let st = thread_state t tid in
  let ts_l = Shadow.get st.ts_local addr in
  let w = Shadow.get t.wts addr in
  if ts_l < w then begin
    (* a value flowed into this thread: credit the producing edge *)
    let writer_tid = decode_id (Shadow.get t.wtid addr) in
    let writer_rtn = decode_id (Shadow.get t.wrtn addr) in
    let reader_rtn = if Vec.is_empty st.stack then -1 else Vec.top st.stack in
    bump t.thread_edges (writer_tid, tid);
    bump t.routine_edges (writer_rtn, reader_rtn);
    note_cell t addr (writer_tid, tid);
    t.total <- t.total + 1
  end;
  Shadow.set st.ts_local addr t.count

let on_write t tid addr =
  let st = thread_state t tid in
  let rtn = if Vec.is_empty st.stack then -1 else Vec.top st.stack in
  Shadow.set st.ts_local addr t.count;
  Shadow.set t.wts addr t.count;
  Shadow.set t.wtid addr (encode_id tid);
  Shadow.set t.wrtn addr (encode_id rtn)

let on_event t e =
  if t.finished then invalid_arg "Comm_profiler: event after report";
  match e with
  | Event.Call { tid; routine } ->
    t.count <- t.count + 1;
    Vec.push (thread_state t tid).stack routine
  | Event.Return { tid } ->
    let st = thread_state t tid in
    if Vec.is_empty st.stack then
      invalid_arg "Comm_profiler: return with empty stack";
    ignore (Vec.pop st.stack)
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } -> on_write t tid addr
  | Event.Switch_thread _ -> t.count <- t.count + 1
  | Event.Kernel_to_user { addr; len; _ } ->
    t.count <- t.count + 1;
    Shadow.set_range t.wts ~addr ~len t.count;
    Shadow.set_range t.wtid ~addr ~len (encode_id kernel_id);
    Shadow.set_range t.wrtn ~addr ~len (encode_id kernel_id)
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_read t tid a
    done
  | Event.Free { addr; len; _ } ->
    (* Mirror the drms profiler: recycled addresses start fresh. *)
    Shadow.set_range t.wts ~addr ~len 0;
    Shadow.set_range t.wtid ~addr ~len 0;
    Shadow.set_range t.wrtn ~addr ~len 0;
    Hashtbl.iter (fun _ st -> Shadow.set_range st.ts_local ~addr ~len 0) t.threads
  | Event.Block _ | Event.Acquire _ | Event.Release _ | Event.Alloc _
  | Event.Thread_start _ | Event.Thread_exit _ ->
    ()

let run t trace = Vec.iter (on_event t) trace

let run_stream t s = Aprof_trace.Trace_stream.iter (on_event t) s

let edges_of tbl =
  Hashtbl.fold
    (fun (from_id, to_id) r acc -> { from_id; to_id; values = !r } :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.values a.values)

let report t =
  t.finished <- true;
  let single =
    Hashtbl.fold
      (fun _ r acc -> if !r <> (-1, -1) then acc + 1 else acc)
      t.cell_pairs 0
  in
  {
    thread_matrix = edges_of t.thread_edges;
    routine_matrix = edges_of t.routine_edges;
    communicating_cells = Hashtbl.length t.cell_pairs;
    single_pair_cells = single;
    total_values = t.total;
  }

let pp ~routine_name ppf r =
  let id_name f = function
    | -2 -> "<kernel>"
    | -1 -> "<toplevel>"
    | id -> f id
  in
  Format.fprintf ppf "@[<v>shared-memory communication: %d values over %d cells \
                      (%d single-pair cells)@,"
    r.total_values r.communicating_cells r.single_pair_cells;
  Format.fprintf ppf "thread matrix (writer -> reader):@,";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %10s -> %-10s %8d@,"
        (id_name string_of_int e.from_id)
        (id_name string_of_int e.to_id)
        e.values)
    r.thread_matrix;
  Format.fprintf ppf "routine matrix (producer -> consumer):@,";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %24s -> %-24s %8d@,"
        (id_name routine_name e.from_id)
        (id_name routine_name e.to_id)
        e.values)
    r.routine_matrix;
  Format.fprintf ppf "@]"
