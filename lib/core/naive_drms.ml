module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

type frame = {
  rtn : int;
  drms_set : (int, unit) Hashtbl.t; (* L_{r,t} of Figure 7 *)
  rms_set : (int, unit) Hashtbl.t; (* same, but never depleted *)
  mutable drms : int;
  mutable rms : int;
  cost_at_entry : int;
}

type writer = By_thread of int | By_kernel

type thread_state = {
  tid : int;
  stack : frame Vec.t;
  (* Locations accessed by this thread since the latest foreign write:
     determines whether a missing location is an *induced* first-read
     (Definition 2) for attribution purposes. *)
  accessed_since : (int, unit) Hashtbl.t;
}

type t = {
  threads : (int, thread_state) Hashtbl.t;
  last_writer : (int, writer) Hashtbl.t;
  costs : Cost_model.Counter.t;
  profile : Profile.t;
  mutable finished : bool;
}

let create () =
  {
    threads = Hashtbl.create 8;
    last_writer = Hashtbl.create 1024;
    costs = Cost_model.Counter.create ();
    profile = Profile.create ();
    finished = false;
  }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st = { tid; stack = Vec.create (); accessed_since = Hashtbl.create 256 } in
    Hashtbl.add t.threads tid st;
    st

let getcost t tid = Cost_model.Counter.cost t.costs tid

let on_call t tid rtn =
  let st = thread_state t tid in
  Vec.push st.stack
    {
      rtn;
      drms_set = Hashtbl.create 16;
      rms_set = Hashtbl.create 16;
      drms = 0;
      rms = 0;
      cost_at_entry = getcost t tid;
    }

let on_return t tid =
  let st = thread_state t tid in
  if Vec.is_empty st.stack then
    invalid_arg "Naive_drms: return with empty shadow stack";
  let fr = Vec.pop st.stack in
  Profile.record_activation t.profile ~tid ~routine:fr.rtn ~rms:fr.rms
    ~drms:fr.drms ~cost:(getcost t tid - fr.cost_at_entry)

(* A location enters every pending activation's sets on any access. *)
let note_access st addr =
  Vec.iter
    (fun fr ->
      Hashtbl.replace fr.drms_set addr ();
      Hashtbl.replace fr.rms_set addr ())
    st.stack;
  Hashtbl.replace st.accessed_since addr ()

let on_read t tid addr =
  let st = thread_state t tid in
  if not (Vec.is_empty st.stack) then begin
    let top = Vec.top st.stack in
    (* Attribution: induced iff some write happened and this thread has
       not accessed the location since the latest foreign write. *)
    (if not (Hashtbl.mem top.drms_set addr) then begin
       let induced =
         (not (Hashtbl.mem st.accessed_since addr))
         &&
         match Hashtbl.find_opt t.last_writer addr with
         | Some (By_thread t') -> t' <> tid
         | Some By_kernel -> true
         | None -> false
       in
       let external_ =
         induced
         && match Hashtbl.find_opt t.last_writer addr with
            | Some By_kernel -> true
            | Some (By_thread _) | None -> false
       in
       if induced then
         Profile.record_ops t.profile ~tid ~routine:top.rtn ~plain:0
           ~induced_thread:(if external_ then 0 else 1)
           ~induced_external:(if external_ then 1 else 0)
       else
         Profile.record_ops t.profile ~tid ~routine:top.rtn ~plain:1
           ~induced_thread:0 ~induced_external:0
     end);
    Vec.iter
      (fun fr ->
        if not (Hashtbl.mem fr.drms_set addr) then fr.drms <- fr.drms + 1;
        if not (Hashtbl.mem fr.rms_set addr) then fr.rms <- fr.rms + 1)
      st.stack
  end;
  note_access st addr

let remove_from_others t ~writer addr =
  Hashtbl.iter
    (fun tid st ->
      let foreign =
        match writer with
        | By_thread w -> w <> tid
        | By_kernel -> true
      in
      if foreign then begin
        Vec.iter (fun fr -> Hashtbl.remove fr.drms_set addr) st.stack;
        Hashtbl.remove st.accessed_since addr
      end)
    t.threads

let on_write t tid addr =
  let st = thread_state t tid in
  note_access st addr;
  Hashtbl.replace t.last_writer addr (By_thread tid);
  remove_from_others t ~writer:(By_thread tid) addr

let on_kernel_to_user t addr len =
  for a = addr to addr + len - 1 do
    Hashtbl.replace t.last_writer a By_kernel;
    remove_from_others t ~writer:By_kernel a
  done

let on_event t e =
  if t.finished then invalid_arg "Naive_drms: event after finish";
  Cost_model.Counter.on_event t.costs e;
  match e with
  | Event.Call { tid; routine } -> on_call t tid routine
  | Event.Return { tid } -> on_return t tid
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } -> on_write t tid addr
  | Event.Kernel_to_user { addr; len; _ } -> on_kernel_to_user t addr len
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_read t tid a
    done
  | Event.Free { addr; len; _ } ->
    for a = addr to addr + len - 1 do
      Hashtbl.remove t.last_writer a;
      Hashtbl.iter
        (fun _ st ->
          Vec.iter
            (fun fr ->
              Hashtbl.remove fr.drms_set a;
              Hashtbl.remove fr.rms_set a)
            st.stack;
          Hashtbl.remove st.accessed_since a)
        t.threads
    done
  | Event.Block _ | Event.Acquire _ | Event.Release _ | Event.Alloc _
  | Event.Thread_start _ | Event.Thread_exit _ | Event.Switch_thread _ ->
    ()

let run t trace = Vec.iter (on_event t) trace

let run_stream t s = Aprof_trace.Trace_stream.iter (on_event t) s

let profile t = t.profile

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Hashtbl.iter
      (fun tid st ->
        for i = Vec.length st.stack - 1 downto 0 do
          let fr = Vec.get st.stack i in
          Profile.record_activation t.profile ~tid ~routine:fr.rtn ~rms:fr.rms
            ~drms:fr.drms ~cost:(getcost t tid - fr.cost_at_entry)
        done;
        Vec.clear st.stack)
      t.threads
  end;
  t.profile

let merge_into ~into src = Profile.merge_into ~into:(finish into) (finish src)

let current_drms t ~tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> []
  | Some st -> List.map (fun fr -> fr.drms) (Vec.to_list st.stack)
