(** Saving and loading profiles.

    The format is plain CSV, opened by a [format,<version>] header line
    (see {!format_version}; dumps without the header are read as the
    original version-1 format), followed by records of two kinds, one
    line each:

    - [point,<tid>,<routine>,<metric>,<input>,<calls>,<max>,<min>,<sum>,<sumsq>]
      — one performance point ([metric] is [drms] or [rms]);
    - [ops,<tid>,<routine>,<plain>,<induced_thread>,<induced_external>]
      — the first-read operation counters.

    A [routine,<id>,<name>] line per interned routine makes dumps
    self-describing, and (since format 3) an optional
    [meta,<workload>,<seed>,<scale>,<threads>,<scheduler>] line records
    the run that produced the dump ({!Aprof_analysis.Run_meta}) — the
    regression watch uses it to refuse comparisons across different
    setups.  Loading rebuilds an equivalent {!Profile.t} (point
    aggregates are reconstructed exactly; per-activation history is not
    retained by profiles in the first place). *)

(** The version written by {!save}.  Loading accepts any version up to
    this one (and headerless version-1 dumps); newer versions are
    rejected with an explicit error rather than misparsed. *)
val format_version : int

(** [save oc ?routine_name ?meta profile] writes the profile as CSV.
    [routine_name] adds the name table and [meta] the run-metadata line
    when available. *)
val save :
  out_channel ->
  ?routine_name:(int -> string) ->
  ?meta:Aprof_analysis.Run_meta.t ->
  Profile.t ->
  unit

(** [load ic] parses a dump; returns the profile and the routine name
    table found in it (empty list when the dump had none).
    Returns [Error] with a line number on malformed input. *)
val load :
  in_channel -> (Profile.t * (int * string) list, string) result

(** [load_meta ic] is {!load} plus the run metadata, when the dump
    carries a [meta] line. *)
val load_meta :
  in_channel ->
  ( Profile.t * (int * string) list * Aprof_analysis.Run_meta.t option,
    string )
  result

(** [to_string] / [of_string] / [of_string_meta] — same, via strings
    (for tests). *)
val to_string :
  ?routine_name:(int -> string) ->
  ?meta:Aprof_analysis.Run_meta.t ->
  Profile.t ->
  string

val of_string : string -> (Profile.t * (int * string) list, string) result

val of_string_meta :
  string ->
  ( Profile.t * (int * string) list * Aprof_analysis.Run_meta.t option,
    string )
  result

(** [render_report ~routine_name profile] is the canonical textual
    rendering used by [aprof report]: the profile table followed by the
    dynamic-input-volume line.  Shared with the golden-file regression
    tests so the CLI output is pinned. *)
val render_report : routine_name:(int -> string) -> Profile.t -> string
