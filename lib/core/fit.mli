(** Empirical cost function estimation — facade over the layered
    analysis stack.

    Given the performance points of a routine profile (input size vs.
    worst-case cost), fit the observations against standard complexity
    models by least squares and select the best-explaining model — the
    step that turns the paper's cost plots into an asymptotic guess.

    The historical estimators are preserved: [fit_models] fits
    [a + b * g(n)] for a fixed family of growth terms and ranks by raw
    r^2, and [power_law] is the log-log regression of Goldsmith et al.
    (the paper's [8]).  Both now delegate their arithmetic to
    {!Aprof_analysis.Fit_solve}.  The modern path is [analyze]: the
    penalized selection of {!Aprof_analysis.Fit_select} over the richer
    {!Aprof_analysis.Fit_basis} family (plateau, n^2 log n), producing
    {!Aprof_analysis.Model_store} entries for persistence and the
    [aprof diff] regression watch. *)

type model = Constant | Logarithmic | Linear | Linearithmic | Quadratic | Cubic

val model_name : model -> string

(** [eval_model m ~a ~b n] is [a + b * g(n)] where [g] is the model's
    growth term. *)
val eval_model : model -> a:float -> b:float -> float -> float

type fit_result = {
  model : model;
  a : float;  (** intercept *)
  b : float;  (** slope on the growth term *)
  r_squared : float;  (** coefficient of determination, in [0, 1] *)
}

(** [fit_models points] fits every model and returns the results sorted
    by decreasing [r_squared]; empty if fewer than 3 distinct points.
    Points are (input size, cost) pairs; non-positive input sizes are
    dropped for logarithmic models. *)
val fit_models : (int * float) list -> fit_result list

(** [best_fit points] is the head of [fit_models], if any. *)
val best_fit : (int * float) list -> fit_result option

(** [power_law points] is [(c, k, r2)] such that cost ≈ c * n^k, from a
    least-squares line through the log-log points; [None] with fewer than
    3 distinct positive points. *)
val power_law : (int * float) list -> (float * float * float) option

(** [points_of_profile ~metric ~cost data] extracts (input, cost) pairs
    from a routine profile, using the worst-case ([`Max]) or mean
    ([`Mean]) cost per input size — the paper plots worst-case. *)
val points_of_profile :
  metric:[ `Drms | `Rms ] ->
  cost:[ `Max | `Mean ] ->
  Profile.routine_data ->
  (int * float) list

(** [analyze ?cost ?bootstrap ?seed ~routine_name profile] runs the
    penalized selection ({!Aprof_analysis.Fit_select.select}) on every
    routine's drms and rms curves after folding the thread dimension
    away ({!Profile.merge_threads}), and returns one model-store entry
    per (routine, metric) whose curve supports a fit (at least 3
    distinct input sizes).  [cost] defaults to [`Max], the paper's
    worst-case plots; [bootstrap] and [seed] are passed through to the
    selection. *)
val analyze :
  ?cost:[ `Max | `Mean ] ->
  ?bootstrap:int ->
  ?seed:int ->
  routine_name:(int -> string) ->
  Profile.t ->
  Aprof_analysis.Model_store.entry list
