(** Routine profiles: the profiler's output.

    For each (routine, thread) pair the profile stores a set of
    performance points — one per distinct observed input size, keyed both
    by drms and by rms — plus activation totals and the breakdown of
    (possibly induced) first-read operations used by the workload
    characterization metrics of Section 4.1.

    Profiles are thread-sensitive (Section 3); [merge_threads] merges them
    into per-routine profiles in a subsequent step, as the paper does for
    the [|rms_r|]/[|drms_r|] counts. *)

type key = { tid : Aprof_trace.Event.tid; routine : Aprof_trace.Event.routine }

(** Cost summary of all activations sharing one input-size value. *)
type point = {
  input : int;  (** the drms (or rms) value *)
  calls : int;  (** activations observed with this input size *)
  max_cost : int;  (** worst-case cost — the paper's cost plots *)
  min_cost : int;
  sum_cost : float;  (** for mean/variance *)
  sum_cost_sq : float;
}

(** Aggregate data of one (routine, thread) — or merged routine — profile. *)
type routine_data = {
  drms_points : point list;  (** sorted by increasing input *)
  rms_points : point list;  (** sorted by increasing input *)
  activations : int;
  sum_rms : float;  (** Σ rms over activations (input-volume metric) *)
  sum_drms : float;
  total_cost : float;
  first_read_ops : int;  (** plain first-reads performed (line 5 hits) *)
  induced_thread_ops : int;  (** line 2 hits whose latest writer is a thread *)
  induced_external_ops : int;  (** line 2 hits whose latest writer is the kernel *)
}

type t

val create : unit -> t

(** [record_activation t ~tid ~routine ~rms ~drms ~cost] accounts one
    completed activation. *)
val record_activation :
  t -> tid:int -> routine:int -> rms:int -> drms:int -> cost:int -> unit

(** [record_ops t ~tid ~routine ~plain ~induced_thread ~induced_external]
    adds first-read operation counts attributed to [routine] (the topmost
    routine executing the reads). *)
val record_ops :
  t ->
  tid:int ->
  routine:int ->
  plain:int ->
  induced_thread:int ->
  induced_external:int ->
  unit

(** A cursor on one (routine, thread)'s counters, letting the profilers
    bump counts and record activations without a table lookup per memory
    access or return. *)
type ops_handle

val ops_handle : t -> tid:int -> routine:int -> ops_handle
val bump_plain : ops_handle -> unit
val bump_induced_thread : ops_handle -> unit
val bump_induced_external : ops_handle -> unit

(** [record_into h ~rms ~drms ~cost] is
    {!record_activation}[ t ~tid ~routine ...] for the (routine, thread)
    pair [h] was obtained for, skipping the cell lookup: a shadow-stack
    frame already holds the handle it was entered with. *)
val record_into : ops_handle -> rms:int -> drms:int -> cost:int -> unit

(** [keys t] lists the (routine, thread) pairs with data, in unspecified
    order. *)
val keys : t -> key list

(** [data t key] is the profile of [key], if any. *)
val data : t -> key -> routine_data option

(** [routines t] lists the distinct routine ids with data. *)
val routines : t -> int list

(** {2 Merging partial profiles}

    Profiles form a commutative monoid under {!merge} with {!create} as
    identity: every per-cell aggregate is a count, a sum, or an extremum,
    and points with equal input sizes combine exactly as
    {!record_activation} would have accumulated them in one pass.  This
    is what lets partial profiles from trace shards, parallel replay
    workers, or separate runs compose into the profile a single
    sequential pass would have produced.  (Float sums are associative
    only up to rounding, as in any summation order change.) *)

(** [merge_into ~into src] folds every cell of [src] into [into];
    [src] is not modified.  With [?keep], only the cells whose key
    satisfies it are folded — the sharded accumulators of the ingest
    daemon use this to split one partial profile across key-hashed
    shards without materializing intermediate profiles. *)
val merge_into : ?keep:(key -> bool) -> into:t -> t -> unit

(** [merge a b] is a fresh profile holding the combined data. *)
val merge : t -> t -> t

(** [merge_threads t] folds the thread dimension away: one [routine_data]
    per routine, where points with equal input sizes are combined
    (max of maxes, sum of calls, ...). *)
val merge_threads : t -> (int * routine_data) list

(** [total_activations t] over all keys. *)
val total_activations : t -> int

(** [pp names ppf t] prints a human-readable profile using [names] to
    resolve routine ids. *)
val pp : (int -> string) -> Format.formatter -> t -> unit

(** {2 Restoration}

    Raw insertion used by {!Profile_io} to rebuild saved profiles;
    profilers should use {!record_activation}/{!record_ops} instead. *)

(** [restore_point t ~tid ~routine ~metric point] merges a saved point. *)
val restore_point :
  t -> tid:int -> routine:int -> metric:[ `Drms | `Rms ] -> point -> unit

(** [restore_aggregates t ~tid ~routine ...] sets the per-cell totals. *)
val restore_aggregates :
  t ->
  tid:int ->
  routine:int ->
  activations:int ->
  sum_rms:float ->
  sum_drms:float ->
  total_cost:float ->
  unit
