module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory
module Vec = Aprof_util.Vec

type frame = {
  rtn : int;
  ts : int;
  mutable rms : int;
  cost_at_entry : int;
  ops : Profile.ops_handle;
}

type thread_state = {
  tid : int;
  ts_local : Shadow.t;
  stack : frame Vec.t;
}

type t = {
  mutable count : int;
  threads : (int, thread_state) Hashtbl.t;
  costs : Cost_model.Counter.t;
  profile : Profile.t;
  mutable finished : bool;
}

let create () =
  {
    count = 0;
    threads = Hashtbl.create 8;
    costs = Cost_model.Counter.create ();
    profile = Profile.create ();
    finished = false;
  }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st = { tid; ts_local = Shadow.create (); stack = Vec.create () } in
    Hashtbl.add t.threads tid st;
    st

let getcost t tid = Cost_model.Counter.cost t.costs tid

let deepest_ancestor stack ts =
  let lo = ref 0 and hi = ref (Vec.length stack - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if (Vec.get stack mid).ts <= ts then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let on_read t tid addr =
  let st = thread_state t tid in
  if not (Vec.is_empty st.stack) then begin
    let ts_l = Shadow.get st.ts_local addr in
    let top = Vec.top st.stack in
    if ts_l < top.ts then begin
      top.rms <- top.rms + 1;
      Profile.bump_plain top.ops;
      if ts_l <> 0 then begin
        let i = deepest_ancestor st.stack ts_l in
        if i >= 0 then begin
          let anc = Vec.get st.stack i in
          anc.rms <- anc.rms - 1
        end
      end
    end
  end;
  Shadow.set st.ts_local addr t.count

let on_event t e =
  if t.finished then invalid_arg "Rms_profiler: event after finish";
  Cost_model.Counter.on_event t.costs e;
  match e with
  | Event.Call { tid; routine } ->
    t.count <- t.count + 1;
    let st = thread_state t tid in
    Vec.push st.stack
      {
        rtn = routine;
        ts = t.count;
        rms = 0;
        cost_at_entry = getcost t tid;
        ops = Profile.ops_handle t.profile ~tid ~routine;
      }
  | Event.Return { tid } ->
    let st = thread_state t tid in
    if Vec.is_empty st.stack then
      invalid_arg "Rms_profiler: return with empty shadow stack";
    let fr = Vec.pop st.stack in
    Profile.record_activation t.profile ~tid ~routine:fr.rtn ~rms:fr.rms
      ~drms:fr.rms ~cost:(getcost t tid - fr.cost_at_entry);
    if not (Vec.is_empty st.stack) then begin
      let parent = Vec.top st.stack in
      parent.rms <- parent.rms + fr.rms
    end
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } ->
    let st = thread_state t tid in
    Shadow.set st.ts_local addr t.count
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_read t tid a
    done
  | Event.Switch_thread _ -> t.count <- t.count + 1
  | Event.Free { addr; len; _ } ->
    Hashtbl.iter (fun _ st -> Shadow.set_range st.ts_local ~addr ~len 0) t.threads
  | Event.Kernel_to_user _ | Event.Block _ | Event.Acquire _ | Event.Release _
  | Event.Alloc _ | Event.Thread_start _ | Event.Thread_exit _ ->
    ()

let run t trace = Vec.iter (on_event t) trace

let run_stream t s = Aprof_trace.Trace_stream.iter (on_event t) s

let profile t = t.profile

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Hashtbl.iter
      (fun tid st ->
        let suffix = ref 0 in
        for i = Vec.length st.stack - 1 downto 0 do
          let fr = Vec.get st.stack i in
          suffix := !suffix + fr.rms;
          Profile.record_activation t.profile ~tid ~routine:fr.rtn
            ~rms:!suffix ~drms:!suffix
            ~cost:(getcost t tid - fr.cost_at_entry)
        done;
        Vec.clear st.stack)
      t.threads
  end;
  t.profile

let space_words t =
  let frame_words = 4 in
  let acc = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      acc := !acc + Shadow.space_words st.ts_local
             + (frame_words * Vec.length st.stack))
    t.threads;
  !acc
