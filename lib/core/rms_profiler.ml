module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory
module Vec = Aprof_util.Vec

(* Every field is mutable: popped frames are recycled through
   {!Vec.spare} on the next call, so a push after warm-up allocates
   nothing. *)
type frame = {
  mutable rtn : int;
  mutable ts : int;
  mutable rms : int;
  mutable cost_at_entry : int;
  mutable ops : Profile.ops_handle;
}

type thread_state = {
  tid : int;
  ts_local : Shadow.t;
  stack : frame Vec.t;
  (* Executed basic blocks of this thread (the getCost() metric); lives
     here so the cost bump rides the thread-state lookup the dispatcher
     performs anyway. *)
  mutable cost : int;
}

type t = {
  mutable count : int;
  threads : (int, thread_state) Hashtbl.t;
  (* One-entry cache over [threads]: events arrive in scheduler slices of
     the same thread, so the per-event lookup is usually a repeat of the
     previous one.  [last_tid] starts at [min_int] — no real tid — so the
     [None] state is never consulted. *)
  mutable last_tid : int;
  mutable last_state : thread_state option;
  profile : Profile.t;
  mutable finished : bool;
}

let create () =
  {
    count = 0;
    threads = Hashtbl.create 8;
    last_tid = min_int;
    last_state = None;
    profile = Profile.create ();
    finished = false;
  }

(* [Hashtbl.find] rather than [find_opt]: this lookup runs once per
   event, and the hot path must not box a [Some] each time. *)
let thread_state_slow t tid =
  let st =
    match Hashtbl.find t.threads tid with
    | st -> st
    | exception Not_found ->
      let st =
        { tid; ts_local = Shadow.create (); stack = Vec.create (); cost = 0 }
      in
      Hashtbl.add t.threads tid st;
      st
  in
  t.last_tid <- tid;
  t.last_state <- Some st;
  st

let thread_state t tid =
  if tid = t.last_tid then
    match t.last_state with Some st -> st | None -> assert false
  else thread_state_slow t tid

let deepest_ancestor stack ts =
  let lo = ref 0 and hi = ref (Vec.length stack - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if (Vec.get stack mid).ts <= ts then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let on_read t st addr =
  (* One chunk resolution covers both halves of the first-access scheme:
     read the old thread-local stamp, store the new one. *)
  let ts_l = Shadow.exchange st.ts_local addr t.count in
  if not (Vec.is_empty st.stack) then begin
    let top = Vec.top st.stack in
    if ts_l < top.ts then begin
      top.rms <- top.rms + 1;
      Profile.bump_plain top.ops;
      if ts_l <> 0 then begin
        let i = deepest_ancestor st.stack ts_l in
        if i >= 0 then begin
          let anc = Vec.get st.stack i in
          anc.rms <- anc.rms - 1
        end
      end
    end
  end

let on_call t st routine =
  t.count <- t.count + 1;
  let ops = Profile.ops_handle t.profile ~tid:st.tid ~routine in
  let stack = st.stack in
  if Vec.has_spare stack then begin
    let fr = Vec.spare stack in
    fr.rtn <- routine;
    fr.ts <- t.count;
    fr.rms <- 0;
    fr.cost_at_entry <- st.cost;
    fr.ops <- ops;
    Vec.extend stack
  end
  else
    Vec.push stack
      { rtn = routine; ts = t.count; rms = 0; cost_at_entry = st.cost; ops }

let on_return st =
  if Vec.is_empty st.stack then
    invalid_arg "Rms_profiler: return with empty shadow stack";
  let fr = Vec.pop st.stack in
  (* The frame carries the profile cell it was entered with. *)
  Profile.record_into fr.ops ~rms:fr.rms ~drms:fr.rms
    ~cost:(st.cost - fr.cost_at_entry);
  if not (Vec.is_empty st.stack) then begin
    let parent = Vec.top st.stack in
    parent.rms <- parent.rms + fr.rms
  end

let on_write t st addr = Shadow.set st.ts_local addr t.count

let on_user_to_kernel t st addr len =
  for a = addr to addr + len - 1 do
    on_read t st a
  done

let on_free t addr len =
  Hashtbl.iter (fun _ st -> Shadow.set_range st.ts_local ~addr ~len 0) t.threads

(* Cost bumps (the basic-block model of {!Cost_model}) happen at
   dispatch, riding the thread-state lookup the handler needs anyway:
   calls, reads and writes count 1, a [Block] counts its units. *)
let on_event t e =
  if t.finished then invalid_arg "Rms_profiler: event after finish";
  match e with
  | Event.Call { tid; routine } ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_call t st routine
  | Event.Return { tid } -> on_return (thread_state t tid)
  | Event.Read { tid; addr } ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_read t st addr
  | Event.Write { tid; addr } ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_write t st addr
  | Event.Block { tid; units } ->
    let st = thread_state t tid in
    st.cost <- st.cost + units
  | Event.User_to_kernel { tid; addr; len } ->
    on_user_to_kernel t (thread_state t tid) addr len
  | Event.Switch_thread _ -> t.count <- t.count + 1
  | Event.Free { addr; len; _ } -> on_free t addr len
  | Event.Kernel_to_user _ | Event.Acquire _ | Event.Release _ | Event.Alloc _
  | Event.Thread_start _ | Event.Thread_exit _ ->
    ()

(* Packed-field twin of [on_event]; tag literals are {!Event.Batch}'s. *)
let on_raw t ~tag ~tid ~arg ~len =
  if t.finished then invalid_arg "Rms_profiler: event after finish";
  match tag with
  | 1 ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_call t st arg
  | 2 -> on_return (thread_state t tid)
  | 3 ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_read t st arg
  | 4 ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_write t st arg
  | 5 ->
    let st = thread_state t tid in
    st.cost <- st.cost + arg
  | 6 -> on_user_to_kernel t (thread_state t tid) arg len
  | 11 -> on_free t arg len
  | 14 -> t.count <- t.count + 1
  | _ -> ()

(* Direct loop over the field arrays rather than [Batch.iter]: the
   closure indirection per event is measurable at this path's speed.
   Indices below [length b] are in bounds for all four arrays. *)
let on_batch t b =
  let tags = Event.Batch.tags b and tids = Event.Batch.tids b in
  let args = Event.Batch.args b and lens = Event.Batch.lens b in
  for i = 0 to Event.Batch.length b - 1 do
    on_raw t ~tag:(Array.unsafe_get tags i) ~tid:(Array.unsafe_get tids i)
      ~arg:(Array.unsafe_get args i) ~len:(Array.unsafe_get lens i)
  done

let run t trace = Vec.iter (on_event t) trace

let run_stream t s = Aprof_trace.Trace_stream.iter (on_event t) s

let run_batches t (src : Aprof_trace.Trace_stream.batch_source) =
  let rec loop () =
    match src () with
    | None -> ()
    | Some b ->
      on_batch t b;
      loop ()
  in
  loop ()

let profile t = t.profile

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Hashtbl.iter
      (fun _ st ->
        let suffix = ref 0 in
        for i = Vec.length st.stack - 1 downto 0 do
          let fr = Vec.get st.stack i in
          suffix := !suffix + fr.rms;
          Profile.record_into fr.ops ~rms:!suffix ~drms:!suffix
            ~cost:(st.cost - fr.cost_at_entry)
        done;
        Vec.clear st.stack)
      t.threads
  end;
  t.profile

let merge_into ~into src = Profile.merge_into ~into:(finish into) (finish src)

let space_words t =
  let frame_words = 4 in
  let acc = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      acc := !acc + Shadow.space_words st.ts_local
             + (frame_words * Vec.length st.stack))
    t.threads;
  !acc
