(** The baseline input-sensitive profiler of Coppa et al., PLDI 2012 —
    the paper's [aprof] comparator.

    Computes the plain read memory size (rms, Definition 1) with the
    latest-access algorithm: per-thread shadow memories and shadow stacks,
    but *no* global write-timestamp shadow, hence no induced first-reads.
    Kept separate from {!Drms_profiler} so the Table 1 comparison measures
    the true marginal cost of recognizing induced first-reads (the paper
    reports ~29% run-time overhead and the extra global shadow memory). *)

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit

(** [on_raw t ~tag ~tid ~arg ~len] is {!on_event} on the packed fields
    of {!Aprof_trace.Event.Batch}; no variant is constructed. *)
val on_raw : t -> tag:int -> tid:int -> arg:int -> len:int -> unit

(** [on_batch t b] feeds every packed event of [b] through {!on_raw}. *)
val on_batch : t -> Aprof_trace.Event.Batch.t -> unit

val run : t -> Aprof_trace.Trace.t -> unit

(** [run_stream t s] feeds the events of [s] incrementally; the stream
    is consumed (the whole trace is never materialized). *)
val run_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [run_batches t src] drains a batch source through {!on_batch}. *)
val run_batches : t -> Aprof_trace.Trace_stream.batch_source -> unit

(** [finish t] collects pending activations and returns the profile.  In
    the resulting profile drms fields are copies of the rms values (this
    profiler cannot see dynamic input). *)
val finish : t -> Profile.t

val profile : t -> Profile.t

(** [merge_into ~into src] finishes both profilers (collecting pending
    activations) and merges [src]'s profile into [into]'s, so partial
    replays — trace shards partitioned by thread, or separate runs —
    compose into one profile.  Afterwards {!finish}[ into] returns the
    combined profile; neither profiler accepts further events. *)
val merge_into : into:t -> t -> unit

(** [space_words t] for the Table 1 space comparison. *)
val space_words : t -> int
