(* Facade over the layered analysis stack (lib/analysis).

   The original estimator lived here as a monolith: model family, least
   squares, and "selection" (a raw r^2 sort) in one file.  Those layers
   now live in {!Aprof_analysis.Fit_basis}, {!Aprof_analysis.Fit_solve}
   and {!Aprof_analysis.Fit_select}; this module keeps the historical
   interface — single growth-term fits ranked by r^2 — exactly as it
   was, delegating the arithmetic, and adds [analyze], the bridge from a
   profile to the penalized selection and the model store. *)

module Basis = Aprof_analysis.Fit_basis
module Solve = Aprof_analysis.Fit_solve
module Select = Aprof_analysis.Fit_select
module Store = Aprof_analysis.Model_store

type model = Constant | Logarithmic | Linear | Linearithmic | Quadratic | Cubic

let cls_of_model = function
  | Constant -> Basis.Constant
  | Logarithmic -> Basis.Logarithmic
  | Linear -> Basis.Linear
  | Linearithmic -> Basis.Linearithmic
  | Quadratic -> Basis.Quadratic
  | Cubic -> Basis.Cubic

let model_name m = Basis.name (cls_of_model m)

let growth model n =
  match model with
  | Constant -> 0.
  | Logarithmic -> log (Float.max n 1.)
  | Linear -> n
  | Linearithmic -> n *. log (Float.max n 1.)
  | Quadratic -> n *. n
  | Cubic -> n *. n *. n

let eval_model model ~a ~b n = a +. (b *. growth model n)

type fit_result = { model : model; a : float; b : float; r_squared : float }

let all_models = [ Constant; Logarithmic; Linear; Linearithmic; Quadratic; Cubic ]

(* The legacy single-growth-term design: intercept plus one column.
   This is deliberately NOT the nested design of {!Fit_basis.columns} —
   the historical interface promised [a + b * g(n)] fits. *)
let fit_one model points =
  let points = List.map (fun (n, y) -> (float_of_int n, y)) points in
  match model with
  | Constant -> (
    match Solve.fit_terms ~terms:[ (fun _ -> 1.) ] points with
    | None -> None
    | Some (coefs, _, r2) ->
      Some { model; a = coefs.(0); b = 0.; r_squared = r2 })
  | _ -> (
    match
      Solve.fit_terms ~terms:[ (fun _ -> 1.); growth model ] points
    with
    | None -> None
    | Some (coefs, _, r2) ->
      Some { model; a = coefs.(0); b = coefs.(1); r_squared = r2 })

let distinct_inputs points =
  List.sort_uniq compare (List.map fst points) |> List.length

let fit_models points =
  if distinct_inputs points < 3 then []
  else
    List.filter_map (fun m -> fit_one m points) all_models
    |> List.sort (fun r1 r2 -> compare r2.r_squared r1.r_squared)

let best_fit points =
  match fit_models points with [] -> None | r :: _ -> Some r

let power_law = Solve.power_law

let points_of_profile ~metric ~cost (d : Profile.routine_data) =
  let points =
    match metric with
    | `Drms -> d.Profile.drms_points
    | `Rms -> d.Profile.rms_points
  in
  List.map
    (fun (p : Profile.point) ->
      let c =
        match cost with
        | `Max -> float_of_int p.Profile.max_cost
        | `Mean -> p.Profile.sum_cost /. float_of_int p.Profile.calls
      in
      (p.Profile.input, c))
    points

let analyze ?cost:(cost_kind = `Max) ?bootstrap ?seed ~routine_name profile =
  Profile.merge_threads profile
  |> List.concat_map (fun (rid, data) ->
         List.filter_map
           (fun metric ->
             let points = points_of_profile ~metric ~cost:cost_kind data in
             match Select.select ?bootstrap ?seed points with
             | None -> None
             | Some sel ->
               Some
                 {
                   Store.routine = routine_name rid;
                   metric;
                   cls = sel.Select.best.Solve.cls;
                   coefs = sel.Select.best.Solve.coefs;
                   n_points = sel.Select.n_points;
                   r2 = sel.Select.best.Solve.r2;
                   confidence = sel.Select.confidence;
                   exponent = sel.Select.exponent;
                 })
           [ `Drms; `Rms ])
