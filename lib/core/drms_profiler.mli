(** The read/write timestamping algorithm (Figures 8 and 9 of the paper).

    Computes, for every routine activation of every thread, the dynamic
    read memory size (drms) — the number of first-reads and induced
    first-reads performed by the activation or its descendants — together
    with the classic read memory size (rms) and the executed-basic-block
    cost, producing performance points in a {!Profile.t}.

    Data structures mirror the paper: a global counter of thread switches
    and routine activations, a global shadow memory [wts] holding the
    timestamp of the latest write to each location by any thread (or the
    kernel), and per-thread shadow memories [ts_t] plus shadow run-time
    stacks whose entries carry partial drms values satisfying Invariant 2
    (the drms of the i-th pending activation is the suffix sum of partial
    values from i to the top).

    All events run in O(1) except reads resolving an ancestor first
    access, which binary-search the shadow stack in O(log depth).

    Induced first-reads are attributed to a source — another thread or the
    kernel — via a parallel shadow holding the kind of the latest writer;
    the attribution feeds the thread-input / external-input metrics.

    The global counter is renumbered in place when it reaches
    [overflow_limit], preserving the relative order of all live
    timestamps (the paper's counter-overflow mitigation); a tiny limit
    exercises that path deterministically in tests. *)

type t

(** Which dynamic input sources the profiler recognizes.  [`Both] is the
    full drms; the restricted modes reproduce Figure 6b (external input
    only) and allow ablations.  With [`None] the drms degenerates to the
    rms. *)
type induction_mode = [ `Both | `External_only | `Thread_only | `None ]

(** [create ()] is a fresh profiler.
    @param overflow_limit renumber timestamps when the global counter
    reaches this value (default [max_int - 1]).
    @param mode which induced first-reads count toward the drms
    (default [`Both]).
    @param track_contexts also collect a calling-context-sensitive
    profile (default false): activations are additionally recorded by
    their {!Cct} node, separating a routine's behaviour by call path.
    @param ancestor_search how line 7 of Figure 8 locates the deepest
    ancestor that had counted a location: [`Binary] (default, the
    paper's O(log depth) bound) or [`Linear] (the naive walk) — results
    are identical; only the ablation benchmark cares. *)
val create :
  ?overflow_limit:int ->
  ?mode:induction_mode ->
  ?track_contexts:bool ->
  ?ancestor_search:[ `Binary | `Linear ] ->
  unit ->
  t

(** [set_owner t owns] puts [t] in shard mode for parallel replay:
    [owns tid] says whether this instance owns thread [tid].  The
    instance must then be fed the shard-filtered substream — every event
    of its owned threads plus every event whose tag is in
    {!shard_broadcast}, in trace order.  Foreign events are replayed for
    their global effects only: calls and thread switches tick the
    counter, writes stamp the write-timestamp shadow, kernel fills and
    frees run in full.  Every counter tick is broadcast, so the sharded
    clock stamps each owned access in the same relative order as the
    sequential clock, and the resulting profile is exactly the
    sequential profile restricted to the owned threads; disjoint shards
    then combine with {!merge_into} (see DESIGN.md 4c).
    @raise Invalid_argument if [t] has already been fed events. *)
val set_owner : t -> (int -> bool) -> unit

(** The {!Aprof_trace.Event.Batch} tag mask a sharded instance must
    observe regardless of owner: [Call], [Write], [Kernel_to_user],
    [Free] and [Switch_thread] — the counter-ticking and
    write-shadow-mutating events. *)
val shard_broadcast : int

(** [on_event t e] processes one trace event. *)
val on_event : t -> Aprof_trace.Event.t -> unit

(** [on_raw t ~tag ~tid ~arg ~len] is {!on_event} on the packed fields
    of {!Aprof_trace.Event.Batch} — the zero-allocation hot entry: no
    variant is constructed, and events whose kind carries no payload
    ignore [arg]/[len]. *)
val on_raw : t -> tag:int -> tid:int -> arg:int -> len:int -> unit

(** [on_batch t b] feeds every packed event of [b] through {!on_raw}. *)
val on_batch : t -> Aprof_trace.Event.Batch.t -> unit

(** [run t trace] feeds a whole trace. *)
val run : t -> Aprof_trace.Trace.t -> unit

(** [run_stream t s] feeds the events of [s] incrementally; the stream
    is consumed (the whole trace is never materialized). *)
val run_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [run_batches t src] drains a batch source through {!on_batch}. *)
val run_batches : t -> Aprof_trace.Trace_stream.batch_source -> unit

(** [finish t] collects every still-pending activation (as a profiler
    does at program exit) and returns the accumulated profile.  The
    profiler must not be fed further events afterwards. *)
val finish : t -> Profile.t

(** [profile t] is the profile accumulated so far (completed activations
    only), without collecting pending ones. *)
val profile : t -> Profile.t

(** [merge_into ~into src] finishes both profilers and merges [src]'s
    profile into [into]'s ({!Profile.merge_into}).  Sound when the two
    instances saw disjoint sets of activations: profiles of separate
    traces, or shards of one trace under the {!set_owner} contract
    (owned threads disjoint, broadcast events replayed by both) —
    profile cells are keyed by (thread, routine), so disjoint owners
    touch disjoint cells and the merge is exact. *)
val merge_into : into:t -> t -> unit

(** [renumber_count t] is the number of timestamp renumberings performed
    (for tests and the overhead report). *)
val renumber_count : t -> int

(** [space_words t] estimates the words held by shadow memories and
    shadow stacks, for the Table 1 space comparison. *)
val space_words : t -> int

(** [current_drms t ~tid] is the drms of every pending activation of
    [tid], bottom of the stack first, computed from the partial values
    via Invariant 2.  Exposed for the invariant tests. *)
val current_drms : t -> tid:int -> int list

(** [context_results t] — with [~track_contexts:true], the context tree
    and a profile whose [routine] field holds {!Cct} node ids; [None]
    otherwise. *)
val context_results : t -> (Cct.t * Profile.t) option
