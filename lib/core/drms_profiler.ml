module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory
module Vec = Aprof_util.Vec

type induction_mode = [ `Both | `External_only | `Thread_only | `None ]

(* Every field is mutable: popped frames are recycled through
   {!Vec.spare} on the next call, so a push after warm-up allocates
   nothing. *)
type frame = {
  mutable rtn : int;
  mutable ts : int; (* invocation timestamp (renumbering rewrites it) *)
  mutable drms : int; (* partial drms (Invariant 2 suffix-sum scheme) *)
  mutable rms : int; (* partial rms, maintained with the same scheme *)
  mutable cost_at_entry : int;
  mutable ops : Profile.ops_handle; (* first-read op counters of (rtn, tid) *)
  mutable context : Cct.node; (* calling-context node, Cct.root when untracked *)
}

type thread_state = {
  tid : int;
  ts_local : Shadow.t; (* ts_t[l]: latest access (read or write) by t *)
  stack : frame Vec.t;
  (* Executed basic blocks of this thread (the getCost() metric).  Held
     here rather than in a separate counter table: the dispatchers
     already resolve the thread state per event, so the cost bump rides
     on the same lookup. *)
  mutable cost : int;
}

type t = {
  overflow_limit : int;
  mode : induction_mode;
  ancestor_search : [ `Binary | `Linear ];
  mutable count : int;
  (* Write timestamps.  In the default [`Both] mode ([use_combined]) a
     single shadow [wts_max] is kept, as in the paper: write stamps are
     non-decreasing, so the latest writer holds the largest stamp, and
     the cell packs [(stamp lsl 1) lor kernel_bit] so the induced-read
     attribution (kernel vs thread writer) survives in the same word —
     one shadow lookup per read instead of two.  The restricted
     induction modes (Figure 6b) must test against kernel-only or
     thread-only stamps, which the latest-writer shadow cannot recover,
     so they split the stamps by writer kind into [wts_thread] and
     [wts_kernel]; each mode maintains only its own shadow(s). *)
  use_combined : bool;
  wts_max : Shadow.t;
  wts_thread : Shadow.t;
  wts_kernel : Shadow.t;
  threads : (int, thread_state) Hashtbl.t;
  (* One-entry cache over [threads]: events arrive in scheduler slices of
     the same thread, so the per-event lookup is usually a repeat of the
     previous one.  [last_tid] starts at [min_int] — no real tid — so the
     [None] state is never consulted. *)
  mutable last_tid : int;
  mutable last_state : thread_state option;
  profile : Profile.t;
  contexts : (Cct.t * Profile.t) option;
  mutable renumberings : int;
  mutable finished : bool;
  (* Shard-owner predicate for parallel replay.  [None] (the default)
     is the sequential profiler.  With [Some owns] the instance expects
     the shard-filtered substream — every event of its own threads plus
     every broadcast-tag event ({!shard_broadcast}) — and processes
     foreign events for their global effects only: a foreign call or
     thread switch ticks the counter, a foreign write stamps [wts], and
     kernel fills / frees run in full.  Because every event that ticks
     the counter is broadcast, the instance's clock assigns each of its
     own accesses a stamp order-isomorphic to the sequential clock's,
     which makes the sharded profile exactly the sequential one
     restricted to the owned threads (see DESIGN.md 4c). *)
  mutable owner : (int -> bool) option;
}

let create ?(overflow_limit = max_int - 1) ?(mode = `Both)
    ?(track_contexts = false) ?(ancestor_search = `Binary) () =
  if overflow_limit < 8 then
    invalid_arg "Drms_profiler.create: overflow_limit too small";
  {
    overflow_limit;
    mode;
    ancestor_search;
    count = 0;
    use_combined = (mode = `Both);
    wts_max = Shadow.create ();
    wts_thread = Shadow.create ();
    wts_kernel = Shadow.create ();
    threads = Hashtbl.create 8;
    last_tid = min_int;
    last_state = None;
    profile = Profile.create ();
    contexts =
      (if track_contexts then Some (Cct.create (), Profile.create ()) else None);
    renumberings = 0;
    finished = false;
    owner = None;
  }

let set_owner t owns =
  if t.count > 0 || Hashtbl.length t.threads > 0 then
    invalid_arg "Drms_profiler.set_owner: profiler already fed";
  t.owner <- Some owns

(* The tags a sharded instance must see from every thread: everything
   that ticks the global counter (Call, Switch_thread, Kernel_to_user)
   plus everything that mutates the global write-timestamp shadow
   (Write, Kernel_to_user, Free). *)
let shard_broadcast =
  let module B = Event.Batch in
  (1 lsl B.tag_call) lor (1 lsl B.tag_write)
  lor (1 lsl B.tag_kernel_to_user)
  lor (1 lsl B.tag_free)
  lor (1 lsl B.tag_switch_thread)

(* [Hashtbl.find] rather than [find_opt]: this lookup runs once per
   event, and the hot path must not box a [Some] each time. *)
let thread_state_slow t tid =
  let st =
    match Hashtbl.find t.threads tid with
    | st -> st
    | exception Not_found ->
      let st =
        { tid; ts_local = Shadow.create (); stack = Vec.create (); cost = 0 }
      in
      Hashtbl.add t.threads tid st;
      st
  in
  t.last_tid <- tid;
  t.last_state <- Some st;
  st

let thread_state t tid =
  if tid = t.last_tid then
    match t.last_state with Some st -> st | None -> assert false
  else thread_state_slow t tid

(* --- Counter-overflow renumbering ------------------------------------

   Gather every live timestamp (global [wts], each thread's [ts_t], every
   shadow-stack [ts] field), rank them, and rewrite each as its rank.
   Ranks start at 1 so that 0 keeps meaning "never accessed"; the relative
   order of all timestamps — hence every comparison the algorithm ever
   performs — is preserved, and [count] restarts from the highest rank. *)
let renumber t =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let note v = if v <> 0 then Hashtbl.replace live v () in
  (* [wts_max] packs the stamp above a writer bit; the others are raw. *)
  Shadow.iter_set (fun _ v -> note (v lsr 1)) t.wts_max;
  Shadow.iter_set (fun _ v -> note v) t.wts_thread;
  Shadow.iter_set (fun _ v -> note v) t.wts_kernel;
  Hashtbl.iter
    (fun _ st ->
      Shadow.iter_set (fun _ v -> note v) st.ts_local;
      Vec.iter (fun fr -> note fr.ts) st.stack)
    t.threads;
  let sorted = Hashtbl.fold (fun v () acc -> v :: acc) live [] in
  let sorted = Array.of_list sorted in
  Array.sort compare sorted;
  let rank : (int, int) Hashtbl.t = Hashtbl.create (Array.length sorted) in
  Array.iteri (fun i v -> Hashtbl.add rank v (i + 1)) sorted;
  let remap v = if v = 0 then 0 else Hashtbl.find rank v in
  Shadow.map_in_place
    (fun v -> if v = 0 then 0 else (Hashtbl.find rank (v lsr 1) lsl 1) lor (v land 1))
    t.wts_max;
  Shadow.map_in_place remap t.wts_thread;
  Shadow.map_in_place remap t.wts_kernel;
  Hashtbl.iter
    (fun _ st ->
      Shadow.map_in_place remap st.ts_local;
      Vec.iter (fun fr -> fr.ts <- remap fr.ts) st.stack)
    t.threads;
  t.count <- Array.length sorted;
  t.renumberings <- t.renumberings + 1

let tick t =
  if t.count >= t.overflow_limit then renumber t;
  t.count <- t.count + 1

(* Deepest ancestor whose invocation timestamp is <= [ts]: stack [ts]
   fields increase with depth, so binary search gives O(log depth).  The
   linear walk exists only for the ablation benchmark. *)
let deepest_ancestor search stack ts =
  match search with
  | `Binary ->
    let n = Vec.length stack in
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if (Vec.get stack mid).ts <= ts then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !best
  | `Linear ->
    let rec down i =
      if i < 0 then -1
      else if (Vec.get stack i).ts <= ts then i
      else down (i - 1)
    in
    down (Vec.length stack - 1)

let on_call t st rtn =
  tick t;
  let context =
    match t.contexts with
    | None -> Cct.root
    | Some (tree, _) ->
      let parent =
        if Vec.is_empty st.stack then Cct.root else (Vec.top st.stack).context
      in
      Cct.child tree parent rtn
  in
  let ops = Profile.ops_handle t.profile ~tid:st.tid ~routine:rtn in
  let stack = st.stack in
  if Vec.has_spare stack then begin
    let fr = Vec.spare stack in
    fr.rtn <- rtn;
    fr.ts <- t.count;
    fr.drms <- 0;
    fr.rms <- 0;
    fr.cost_at_entry <- st.cost;
    fr.ops <- ops;
    fr.context <- context;
    Vec.extend stack
  end
  else
    Vec.push stack
      {
        rtn;
        ts = t.count;
        drms = 0;
        rms = 0;
        cost_at_entry = st.cost;
        ops;
        context;
      }

let collect t st fr ~drms ~rms ~cost =
  (* The frame carries the profile cell it was entered with. *)
  Profile.record_into fr.ops ~rms ~drms ~cost;
  match t.contexts with
  | None -> ()
  | Some (_, cprofile) ->
    Profile.record_activation cprofile ~tid:st.tid ~routine:fr.context ~rms
      ~drms ~cost

let on_return t st =
  if Vec.is_empty st.stack then
    invalid_arg "Drms_profiler: return with empty shadow stack";
  let fr = Vec.pop st.stack in
  (* At the top of the stack, partial drms = full drms (Invariant 2). *)
  collect t st fr ~drms:fr.drms ~rms:fr.rms ~cost:(st.cost - fr.cost_at_entry);
  if not (Vec.is_empty st.stack) then begin
    let parent = Vec.top st.stack in
    parent.drms <- parent.drms + fr.drms;
    parent.rms <- parent.rms + fr.rms
  end

let on_read t st addr =
  (* One chunk resolution covers both halves of the first-access scheme:
     read the old thread-local stamp, store the new one. *)
  let ts_l = Shadow.exchange st.ts_local addr t.count in
  if not (Vec.is_empty st.stack) then begin
    (* The write timestamp the current mode tests against (line 1 of
       Figure 8), packed as [(stamp lsl 1) lor kernel_bit].  Full mode
       reads it straight from [wts_max]; the restricted modes rebuild
       the same packing from the split shadows. *)
    let c =
      if t.use_combined then Shadow.get t.wts_max addr
      else begin
        let wt = Shadow.get t.wts_thread addr in
        let wk = Shadow.get t.wts_kernel addr in
        let kbit = if wk > wt then 1 else 0 in
        match t.mode with
        | `External_only -> (wk lsl 1) lor kbit
        | `Thread_only -> (wt lsl 1) lor kbit
        | _ -> 0 (* `None; `Both uses [wts_max] *)
      end
    in
    let w = c lsr 1 in
    let top = Vec.top st.stack in
    (* Both metrics run the first-access scheme of aprof (lines 4-10 of
       Figure 8) on the partial counters; the test and the ancestor
       search depend only on [ts_l], so one fused pass serves rms and
       drms — the search is the expensive part, and this code runs for
       every read.  The drms side diverges only on an induced first-read
       (ts_l < w), which charges the top frame without an ancestor
       decrement: the paper's scheme treats the external write as making
       the location new again, wherever it was read before. *)
    if ts_l < top.ts then begin
      let anc_i =
        if ts_l = 0 then -1
        else deepest_ancestor t.ancestor_search st.stack ts_l
      in
      (* rms side: the plain first-access rule, blind to writes. *)
      top.rms <- top.rms + 1;
      if anc_i >= 0 then begin
        let anc = Vec.get st.stack anc_i in
        anc.rms <- anc.rms - 1
      end;
      if ts_l < w then begin
        (* Induced first-read.  Attribute to the latest writer: the
           kernel bit is set iff the kernel stamp is strictly above the
           thread stamp (a thread writing after a kernelToUser in the
           same tick window reuses the same count, so ties resolve to
           the thread). *)
        top.drms <- top.drms + 1;
        if c land 1 = 1 then Profile.bump_induced_external top.ops
        else Profile.bump_induced_thread top.ops
      end
      else begin
        Profile.bump_plain top.ops;
        top.drms <- top.drms + 1;
        if anc_i >= 0 then begin
          let anc = Vec.get st.stack anc_i in
          anc.drms <- anc.drms - 1
        end
      end
    end
    else if ts_l < w then begin
      (* Seen this activation, but externally rewritten since: induced
         for drms, a no-op for rms. *)
      top.drms <- top.drms + 1;
      if c land 1 = 1 then Profile.bump_induced_external top.ops
      else Profile.bump_induced_thread top.ops
    end
  end

let on_write t st addr =
  Shadow.set st.ts_local addr t.count;
  if t.use_combined then Shadow.set t.wts_max addr (t.count lsl 1)
  else Shadow.set t.wts_thread addr t.count

let on_kernel_to_user t addr len =
  (* Figure 9: bump the counter once, then stamp the buffer with a global
     write timestamp larger than any thread-local one. *)
  tick t;
  if t.use_combined then
    Shadow.set_range t.wts_max ~addr ~len ((t.count lsl 1) lor 1)
  else Shadow.set_range t.wts_kernel ~addr ~len t.count

let on_user_to_kernel t st addr len =
  (* The kernel reads the buffer on the thread's behalf: treat each
     location as a read by the thread, as if the call were a subroutine. *)
  for a = addr to addr + len - 1 do
    on_read t st a
  done

(* A freed block may be recycled by the allocator: drop every stamp so
   reads of a later allocation at the same addresses are plain
   first-reads again, not stale re-reads. *)
let on_free t addr len =
  if t.use_combined then Shadow.set_range t.wts_max ~addr ~len 0
  else begin
    Shadow.set_range t.wts_thread ~addr ~len 0;
    Shadow.set_range t.wts_kernel ~addr ~len 0
  end;
  Hashtbl.iter (fun _ st -> Shadow.set_range st.ts_local ~addr ~len 0) t.threads

(* A write by a thread this instance does not own: stamp [wts] exactly
   as {!on_write} would, but touch no thread-local state — the foreign
   thread's [ts_local] only feeds that thread's own reads, which its
   owning shard replays. *)
let on_foreign_write t addr =
  if t.use_combined then Shadow.set t.wts_max addr (t.count lsl 1)
  else Shadow.set t.wts_thread addr t.count

(* Cost bumps (the basic-block model of {!Cost_model}) happen at
   dispatch, riding the thread-state lookup the handler needs anyway:
   calls, reads and writes count 1, a [Block] counts its units. *)
let on_event_own t e =
  if t.finished then invalid_arg "Drms_profiler: event after finish";
  match e with
  | Event.Call { tid; routine } ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_call t st routine
  | Event.Return { tid } -> on_return t (thread_state t tid)
  | Event.Read { tid; addr } ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_read t st addr
  | Event.Write { tid; addr } ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_write t st addr
  | Event.Block { tid; units } ->
    let st = thread_state t tid in
    st.cost <- st.cost + units
  | Event.Switch_thread _ -> tick t
  | Event.Kernel_to_user { addr; len; _ } -> on_kernel_to_user t addr len
  | Event.User_to_kernel { tid; addr; len } ->
    on_user_to_kernel t (thread_state t tid) addr len
  | Event.Free { addr; len; _ } -> on_free t addr len
  | Event.Acquire _ | Event.Release _ | Event.Alloc _ | Event.Thread_start _
  | Event.Thread_exit _ ->
    ()

(* Foreign events carrying a global effect.  Kernel fills, frees and
   thread switches run identically to the owned path; only calls
   (tick-without-frame) and writes (stamp-without-[ts_local]) differ. *)
let on_event_foreign t e =
  if t.finished then invalid_arg "Drms_profiler: event after finish";
  match e with
  | Event.Call _ | Event.Switch_thread _ -> tick t
  | Event.Write { addr; _ } -> on_foreign_write t addr
  | Event.Kernel_to_user { addr; len; _ } -> on_kernel_to_user t addr len
  | Event.Free { addr; len; _ } -> on_free t addr len
  | _ -> ()

let on_event t e =
  match t.owner with
  | None -> on_event_own t e
  | Some owns ->
    if owns (Event.tid e) then on_event_own t e else on_event_foreign t e

(* The packed-field twin of [on_event]: dispatch on the int tag (an
   OCaml integer match compiles to a jump table) and hand the raw fields
   to the same helpers, constructing no variant.  Tag literals are
   {!Event.Batch}'s: 1 Call, 2 Return, 3 Read, 4 Write, 6 U2k, 7 K2u,
   5 Block, 11 Free, 14 Switch_thread. *)
let on_raw t ~tag ~tid ~arg ~len =
  if t.finished then invalid_arg "Drms_profiler: event after finish";
  match tag with
  | 1 ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_call t st arg
  | 2 -> on_return t (thread_state t tid)
  | 3 ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_read t st arg
  | 4 ->
    let st = thread_state t tid in
    st.cost <- st.cost + 1;
    on_write t st arg
  | 5 ->
    let st = thread_state t tid in
    st.cost <- st.cost + arg
  | 6 -> on_user_to_kernel t (thread_state t tid) arg len
  | 7 -> on_kernel_to_user t arg len
  | 11 -> on_free t arg len
  | 14 -> tick t
  | _ -> ()

(* {!on_raw} restricted to foreign events (sharded replay).  Tags 7, 11
   and 14 take the same global path as the owned dispatch; foreign
   reads, returns, blocks and syscall reads never reach a non-owner
   (they are not broadcast), so they have no case here. *)
let on_raw_foreign t ~tag ~arg ~len =
  if t.finished then invalid_arg "Drms_profiler: event after finish";
  match tag with
  | 1 | 14 -> tick t
  | 4 -> on_foreign_write t arg
  | 7 -> on_kernel_to_user t arg len
  | 11 -> on_free t arg len
  | _ -> ()

(* Direct loop over the field arrays rather than [Batch.iter]: the
   closure indirection per event is measurable at this path's speed.
   Indices below [length b] are in bounds for all four arrays.  The
   owner check branches once per batch, so the sequential hot loop is
   exactly what it was before sharding existed. *)
let on_batch t b =
  let tags = Event.Batch.tags b and tids = Event.Batch.tids b in
  let args = Event.Batch.args b and lens = Event.Batch.lens b in
  match t.owner with
  | None ->
    for i = 0 to Event.Batch.length b - 1 do
      on_raw t ~tag:(Array.unsafe_get tags i) ~tid:(Array.unsafe_get tids i)
        ~arg:(Array.unsafe_get args i) ~len:(Array.unsafe_get lens i)
    done
  | Some owns ->
    for i = 0 to Event.Batch.length b - 1 do
      let tid = Array.unsafe_get tids i in
      if owns tid then
        on_raw t ~tag:(Array.unsafe_get tags i) ~tid
          ~arg:(Array.unsafe_get args i) ~len:(Array.unsafe_get lens i)
      else
        on_raw_foreign t ~tag:(Array.unsafe_get tags i)
          ~arg:(Array.unsafe_get args i) ~len:(Array.unsafe_get lens i)
    done

let run t trace = Vec.iter (on_event t) trace

let run_stream t s = Aprof_trace.Trace_stream.iter (on_event t) s

let run_batches t (src : Aprof_trace.Trace_stream.batch_source) =
  let rec loop () =
    match src () with
    | None -> ()
    | Some b ->
      on_batch t b;
      loop ()
  in
  loop ()

let profile t = t.profile

let finish t =
  if not t.finished then begin
    t.finished <- true;
    (* Collect pending activations: by Invariant 2 the drms of frame i is
       the suffix sum of partial values; walk each stack top-down. *)
    Hashtbl.iter
      (fun _ st ->
        let drms_suffix = ref 0 and rms_suffix = ref 0 in
        for i = Vec.length st.stack - 1 downto 0 do
          let fr = Vec.get st.stack i in
          drms_suffix := !drms_suffix + fr.drms;
          rms_suffix := !rms_suffix + fr.rms;
          collect t st fr ~drms:!drms_suffix ~rms:!rms_suffix
            ~cost:(st.cost - fr.cost_at_entry)
        done;
        Vec.clear st.stack)
      t.threads
  end;
  t.profile

let merge_into ~into src = Profile.merge_into ~into:(finish into) (finish src)

let renumber_count t = t.renumberings

let context_results t = t.contexts

let space_words t =
  let frame_words = 5 in
  let acc =
    ref
      (Shadow.space_words t.wts_max + Shadow.space_words t.wts_thread
      + Shadow.space_words t.wts_kernel)
  in
  Hashtbl.iter
    (fun _ st ->
      acc := !acc + Shadow.space_words st.ts_local
             + (frame_words * Vec.length st.stack))
    t.threads;
  !acc

let current_drms t ~tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> []
  | Some st ->
    let n = Vec.length st.stack in
    let suffix = ref 0 in
    let out = ref [] in
    for i = n - 1 downto 0 do
      suffix := !suffix + (Vec.get st.stack i).drms;
      out := !suffix :: !out
    done;
    !out
