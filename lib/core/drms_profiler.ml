module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory
module Vec = Aprof_util.Vec

type induction_mode = [ `Both | `External_only | `Thread_only | `None ]

type frame = {
  rtn : int;
  mutable ts : int; (* invocation timestamp (renumbering rewrites it) *)
  mutable drms : int; (* partial drms (Invariant 2 suffix-sum scheme) *)
  mutable rms : int; (* partial rms, maintained with the same scheme *)
  cost_at_entry : int;
  ops : Profile.ops_handle; (* first-read op counters of (rtn, tid) *)
  context : Cct.node; (* calling-context node, Cct.root when untracked *)
}

type thread_state = {
  tid : int;
  ts_local : Shadow.t; (* ts_t[l]: latest access (read or write) by t *)
  stack : frame Vec.t;
}

type t = {
  overflow_limit : int;
  mode : induction_mode;
  ancestor_search : [ `Binary | `Linear ];
  mutable count : int;
  (* The paper's single global [wts] is split by writer kind so that the
     restricted induction modes (Figure 6b) can test against kernel writes
     only.  The full-mode test uses their pointwise max, which equals the
     single-shadow value: write stamps are non-decreasing, so the latest
     writer holds the largest stamp. *)
  wts_thread : Shadow.t;
  wts_kernel : Shadow.t;
  threads : (int, thread_state) Hashtbl.t;
  costs : Cost_model.Counter.t;
  profile : Profile.t;
  contexts : (Cct.t * Profile.t) option;
  mutable renumberings : int;
  mutable finished : bool;
}

let create ?(overflow_limit = max_int - 1) ?(mode = `Both)
    ?(track_contexts = false) ?(ancestor_search = `Binary) () =
  if overflow_limit < 8 then
    invalid_arg "Drms_profiler.create: overflow_limit too small";
  {
    overflow_limit;
    mode;
    ancestor_search;
    count = 0;
    wts_thread = Shadow.create ();
    wts_kernel = Shadow.create ();
    threads = Hashtbl.create 8;
    costs = Cost_model.Counter.create ();
    profile = Profile.create ();
    contexts =
      (if track_contexts then Some (Cct.create (), Profile.create ()) else None);
    renumberings = 0;
    finished = false;
  }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st = { tid; ts_local = Shadow.create (); stack = Vec.create () } in
    Hashtbl.add t.threads tid st;
    st

(* --- Counter-overflow renumbering ------------------------------------

   Gather every live timestamp (global [wts], each thread's [ts_t], every
   shadow-stack [ts] field), rank them, and rewrite each as its rank.
   Ranks start at 1 so that 0 keeps meaning "never accessed"; the relative
   order of all timestamps — hence every comparison the algorithm ever
   performs — is preserved, and [count] restarts from the highest rank. *)
let renumber t =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let note v = if v <> 0 then Hashtbl.replace live v () in
  Shadow.iter_set (fun _ v -> note v) t.wts_thread;
  Shadow.iter_set (fun _ v -> note v) t.wts_kernel;
  Hashtbl.iter
    (fun _ st ->
      Shadow.iter_set (fun _ v -> note v) st.ts_local;
      Vec.iter (fun fr -> note fr.ts) st.stack)
    t.threads;
  let sorted = Hashtbl.fold (fun v () acc -> v :: acc) live [] in
  let sorted = Array.of_list sorted in
  Array.sort compare sorted;
  let rank : (int, int) Hashtbl.t = Hashtbl.create (Array.length sorted) in
  Array.iteri (fun i v -> Hashtbl.add rank v (i + 1)) sorted;
  let remap v = if v = 0 then 0 else Hashtbl.find rank v in
  Shadow.map_in_place remap t.wts_thread;
  Shadow.map_in_place remap t.wts_kernel;
  Hashtbl.iter
    (fun _ st ->
      Shadow.map_in_place remap st.ts_local;
      Vec.iter (fun fr -> fr.ts <- remap fr.ts) st.stack)
    t.threads;
  t.count <- Array.length sorted;
  t.renumberings <- t.renumberings + 1

let tick t =
  if t.count >= t.overflow_limit then renumber t;
  t.count <- t.count + 1

(* Deepest ancestor whose invocation timestamp is <= [ts]: stack [ts]
   fields increase with depth, so binary search gives O(log depth).  The
   linear walk exists only for the ablation benchmark. *)
let deepest_ancestor search stack ts =
  match search with
  | `Binary ->
    let n = Vec.length stack in
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if (Vec.get stack mid).ts <= ts then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !best
  | `Linear ->
    let rec down i =
      if i < 0 then -1
      else if (Vec.get stack i).ts <= ts then i
      else down (i - 1)
    in
    down (Vec.length stack - 1)

let getcost t tid = Cost_model.Counter.cost t.costs tid

let on_call t tid rtn =
  tick t;
  let st = thread_state t tid in
  let context =
    match t.contexts with
    | None -> Cct.root
    | Some (tree, _) ->
      let parent =
        if Vec.is_empty st.stack then Cct.root else (Vec.top st.stack).context
      in
      Cct.child tree parent rtn
  in
  Vec.push st.stack
    {
      rtn;
      ts = t.count;
      drms = 0;
      rms = 0;
      cost_at_entry = getcost t tid;
      ops = Profile.ops_handle t.profile ~tid ~routine:rtn;
      context;
    }

let collect t st fr ~drms ~rms ~cost =
  Profile.record_activation t.profile ~tid:st.tid ~routine:fr.rtn ~rms ~drms
    ~cost;
  match t.contexts with
  | None -> ()
  | Some (_, cprofile) ->
    Profile.record_activation cprofile ~tid:st.tid ~routine:fr.context ~rms
      ~drms ~cost

let on_return t tid =
  let st = thread_state t tid in
  if Vec.is_empty st.stack then
    invalid_arg "Drms_profiler: return with empty shadow stack";
  let fr = Vec.pop st.stack in
  (* At the top of the stack, partial drms = full drms (Invariant 2). *)
  collect t st fr ~drms:fr.drms ~rms:fr.rms ~cost:(getcost t tid - fr.cost_at_entry);
  if not (Vec.is_empty st.stack) then begin
    let parent = Vec.top st.stack in
    parent.drms <- parent.drms + fr.drms;
    parent.rms <- parent.rms + fr.rms
  end

(* The rms side of a read: the latest-access scheme of aprof (lines 4-10
   of Figure 8), operating on the [sel] partial counters. *)
let first_access_update search stack ~ts_l ~get ~set =
  let top = Vec.top stack in
  if ts_l < top.ts then begin
    set top (get top + 1);
    if ts_l <> 0 then begin
      let i = deepest_ancestor search stack ts_l in
      if i >= 0 then begin
        let anc = Vec.get stack i in
        set anc (get anc - 1)
      end
    end
  end

let on_read t tid addr =
  let st = thread_state t tid in
  if not (Vec.is_empty st.stack) then begin
    let ts_l = Shadow.get st.ts_local addr in
    let wt = Shadow.get t.wts_thread addr in
    let wk = Shadow.get t.wts_kernel addr in
    (* The write timestamp the current mode tests against (line 1 of
       Figure 8).  In full mode this is max(wt, wk) = the single-shadow
       [wts] of the paper. *)
    let w =
      match t.mode with
      | `Both -> max wt wk
      | `External_only -> wk
      | `Thread_only -> wt
      | `None -> 0
    in
    let top = Vec.top st.stack in
    if ts_l < w then begin
      (* Induced first-read.  Attribute to the latest writer: a kernel
         stamp strictly above the thread stamp means the kernel wrote
         last (a thread writing after a kernelToUser in the same tick
         window reuses the same count, so ties resolve to the thread). *)
      top.drms <- top.drms + 1;
      if wk > wt then Profile.bump_induced_external top.ops
      else Profile.bump_induced_thread top.ops
    end
    else begin
      if ts_l < top.ts then Profile.bump_plain top.ops;
      first_access_update t.ancestor_search st.stack ~ts_l
        ~get:(fun fr -> fr.drms)
        ~set:(fun fr v -> fr.drms <- v)
    end;
    (* rms side: always the plain first-access rule, blind to writes. *)
    first_access_update t.ancestor_search st.stack ~ts_l
      ~get:(fun fr -> fr.rms)
      ~set:(fun fr v -> fr.rms <- v)
  end;
  Shadow.set st.ts_local addr t.count

let on_write t tid addr =
  let st = thread_state t tid in
  Shadow.set st.ts_local addr t.count;
  Shadow.set t.wts_thread addr t.count

let on_kernel_to_user t addr len =
  (* Figure 9: bump the counter once, then stamp the buffer with a global
     write timestamp larger than any thread-local one. *)
  tick t;
  Shadow.set_range t.wts_kernel ~addr ~len t.count

let on_user_to_kernel t tid addr len =
  (* The kernel reads the buffer on the thread's behalf: treat each
     location as a read by the thread, as if the call were a subroutine. *)
  for a = addr to addr + len - 1 do
    on_read t tid a
  done

let on_event t e =
  if t.finished then invalid_arg "Drms_profiler: event after finish";
  Cost_model.Counter.on_event t.costs e;
  match e with
  | Event.Call { tid; routine } -> on_call t tid routine
  | Event.Return { tid } -> on_return t tid
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } -> on_write t tid addr
  | Event.Switch_thread _ -> tick t
  | Event.Kernel_to_user { addr; len; _ } -> on_kernel_to_user t addr len
  | Event.User_to_kernel { tid; addr; len } -> on_user_to_kernel t tid addr len
  | Event.Free { addr; len; _ } ->
    (* A freed block may be recycled by the allocator: drop every stamp
       so reads of a later allocation at the same addresses are plain
       first-reads again, not stale re-reads. *)
    Shadow.set_range t.wts_thread ~addr ~len 0;
    Shadow.set_range t.wts_kernel ~addr ~len 0;
    Hashtbl.iter (fun _ st -> Shadow.set_range st.ts_local ~addr ~len 0) t.threads
  | Event.Block _ | Event.Acquire _ | Event.Release _ | Event.Alloc _
  | Event.Thread_start _ | Event.Thread_exit _ ->
    ()

let run t trace = Vec.iter (on_event t) trace

let run_stream t s = Aprof_trace.Trace_stream.iter (on_event t) s

let profile t = t.profile

let finish t =
  if not t.finished then begin
    t.finished <- true;
    (* Collect pending activations: by Invariant 2 the drms of frame i is
       the suffix sum of partial values; walk each stack top-down. *)
    Hashtbl.iter
      (fun tid st ->
        let drms_suffix = ref 0 and rms_suffix = ref 0 in
        for i = Vec.length st.stack - 1 downto 0 do
          let fr = Vec.get st.stack i in
          drms_suffix := !drms_suffix + fr.drms;
          rms_suffix := !rms_suffix + fr.rms;
          collect t st fr ~drms:!drms_suffix ~rms:!rms_suffix
            ~cost:(getcost t tid - fr.cost_at_entry)
        done;
        Vec.clear st.stack)
      t.threads
  end;
  t.profile

let renumber_count t = t.renumberings

let context_results t = t.contexts

let space_words t =
  let frame_words = 5 in
  let acc = ref (Shadow.space_words t.wts_thread + Shadow.space_words t.wts_kernel) in
  Hashtbl.iter
    (fun _ st ->
      acc := !acc + Shadow.space_words st.ts_local
             + (frame_words * Vec.length st.stack))
    t.threads;
  !acc

let current_drms t ~tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> []
  | Some st ->
    let n = Vec.length st.stack in
    let suffix = ref 0 in
    let out = ref [] in
    for i = n - 1 downto 0 do
      suffix := !suffix + (Vec.get st.stack i).drms;
      out := !suffix :: !out
    done;
    !out
