(** The cost metric.

    Like the paper (Section 4.1), the cost of a routine activation is the
    number of executed basic blocks, which yields the same trends as
    running time with much lower variance.  Every profiler and comparator
    tool derives costs from trace events through this single definition so
    their figures are comparable.

    [simulated_time_ns] converts a basic-block count into a noisy
    simulated running time, modelling the effect shown in Figure 10
    (timing measurements produce scattered plots; basic blocks produce
    clean ones). *)

(** [cost_increment e] is the number of basic blocks implied by [e]:
    [units] for a [Block] event, 1 for each memory access and each call
    (address computation and call dispatch execute a block), 0 otherwise. *)
val cost_increment : Aprof_trace.Event.t -> int

(** [cost_increment_raw ~tag ~arg] is the same metric computed from a
    packed event's raw fields ({!Aprof_trace.Event.Batch} tags; [arg] is
    the [Block] unit count). *)
val cost_increment_raw : tag:int -> arg:int -> int

(** Per-thread executed-basic-block counters. *)
module Counter : sig
  type t

  val create : unit -> t

  (** [on_event c e] advances the issuing thread's counter. *)
  val on_event : t -> Aprof_trace.Event.t -> unit

  (** [on_raw c ~tag ~tid ~arg] is {!on_event} on packed fields; it does
      not allocate. *)
  val on_raw : t -> tag:int -> tid:int -> arg:int -> unit

  (** [cost c tid] is the number of basic blocks executed so far by
      [tid] (0 for an unseen thread) — the profiler's [getCost()]. *)
  val cost : t -> Aprof_trace.Event.tid -> int

  (** [total c] is the sum over all threads. *)
  val total : t -> int
end

(** [simulated_time_ns rng ~ns_per_block ~jitter cost] is a simulated
    wall-clock measurement of [cost] basic blocks: multiplicative Gaussian
    noise of relative magnitude [jitter] plus a constant overhead,
    truncated below at 10% of the noiseless value. *)
val simulated_time_ns :
  Aprof_util.Rng.t -> ns_per_block:float -> jitter:float -> int -> float
