(* Three levels: top (growable array) -> mid (fixed array) -> leaf (int
   array).  Address decomposition, with L = leaf_bits and M = mid_bits:
     top index  = addr lsr (M + L)
     mid index  = (addr lsr L) land (2^M - 1)
     leaf index = addr land (2^L - 1)                                     *)

type mid = int array option array

type t = {
  leaf_bits : int;
  mid_bits : int;
  leaf_mask : int;
  mid_mask : int;
  mutable top : mid option array;
  mutable leaves : int; (* materialized leaf count, for space accounting *)
  mutable mids : int;
  (* One-entry leaf cache: profiled code touches runs of consecutive
     addresses, so the leaf resolved by the previous access usually
     serves the next one.  [last_page] is [addr lsr leaf_bits], or -1
     when empty — the cached array is the live leaf itself, so writes
     through either path stay coherent; only [clear], which replaces the
     whole table, must invalidate.  Missing leaves are never cached: a
     later [set] may materialize them. *)
  mutable last_page : int;
  mutable last_leaf : int array;
}

let create ?(leaf_bits = 10) ?(mid_bits = 10) () =
  let check name v =
    if v < 4 || v > 20 then
      invalid_arg (Printf.sprintf "Shadow_memory.create: %s = %d not in [4,20]" name v)
  in
  check "leaf_bits" leaf_bits;
  check "mid_bits" mid_bits;
  {
    leaf_bits;
    mid_bits;
    leaf_mask = (1 lsl leaf_bits) - 1;
    mid_mask = (1 lsl mid_bits) - 1;
    top = Array.make 4 None;
    leaves = 0;
    mids = 0;
    last_page = -1;
    last_leaf = [||];
  }

(* [get]/[set]/[exchange] do not guard against negative addresses: they
   run once per trace event, and every producer validates at its edge —
   the codec calls [Event.Batch.validate] per decoded batch, the
   VM allocator only hands out non-negative addresses.  [check_addr] is
   exported for edges that take addresses from elsewhere (CLI arguments,
   bulk [set_range]).  A negative address that slipped through cannot
   corrupt memory: [lsr] is logical, so the top index becomes a huge
   positive int — [get] misses the (bounds-checked) top table and reads
   0, [set] dies in [Array.make].

   [unsafe_get]/[unsafe_set] on cache hits are in bounds by construction:
   a leaf has [leaf_mask + 1] entries and the index is masked. *)

let check_addr addr =
  if addr < 0 then invalid_arg "Shadow_memory: negative address"

let get_slow t addr page =
  let ti = addr lsr (t.mid_bits + t.leaf_bits) in
  if ti >= Array.length t.top then 0
  else
    match t.top.(ti) with
    | None -> 0
    | Some mid -> (
      match mid.((addr lsr t.leaf_bits) land t.mid_mask) with
      | None -> 0
      | Some leaf ->
        t.last_page <- page;
        t.last_leaf <- leaf;
        leaf.(addr land t.leaf_mask))

let get t addr =
  let page = addr lsr t.leaf_bits in
  if page = t.last_page then Array.unsafe_get t.last_leaf (addr land t.leaf_mask)
  else get_slow t addr page

let grow_top t ti =
  let cap = Array.length t.top in
  if ti >= cap then begin
    let cap' = max (ti + 1) (cap * 2) in
    let top' = Array.make cap' None in
    Array.blit t.top 0 top' 0 cap;
    t.top <- top'
  end

let leaf_for t addr =
  let ti = addr lsr (t.mid_bits + t.leaf_bits) in
  grow_top t ti;
  let mid =
    match t.top.(ti) with
    | Some mid -> mid
    | None ->
      let mid = Array.make (t.mid_mask + 1) None in
      t.top.(ti) <- Some mid;
      t.mids <- t.mids + 1;
      mid
  in
  let mi = (addr lsr t.leaf_bits) land t.mid_mask in
  match mid.(mi) with
  | Some leaf -> leaf
  | None ->
    let leaf = Array.make (t.leaf_mask + 1) 0 in
    mid.(mi) <- Some leaf;
    t.leaves <- t.leaves + 1;
    leaf

let set t addr v =
  let page = addr lsr t.leaf_bits in
  if page = t.last_page then
    Array.unsafe_set t.last_leaf (addr land t.leaf_mask) v
  else begin
    let leaf = leaf_for t addr in
    t.last_page <- page;
    t.last_leaf <- leaf;
    leaf.(addr land t.leaf_mask) <- v
  end

(* [get] followed by [set] at the same address, resolving the leaf once:
   the first-access tests of the profilers read the old stamp and store
   the new one on every single read event. *)
let exchange t addr v =
  let page = addr lsr t.leaf_bits in
  if page = t.last_page then begin
    let i = addr land t.leaf_mask in
    let leaf = t.last_leaf in
    let old = Array.unsafe_get leaf i in
    Array.unsafe_set leaf i v;
    old
  end
  else begin
    let leaf = leaf_for t addr in
    t.last_page <- page;
    t.last_leaf <- leaf;
    let i = addr land t.leaf_mask in
    let old = leaf.(i) in
    leaf.(i) <- v;
    old
  end

let set_range t ~addr ~len v =
  check_addr addr;
  if len < 0 then invalid_arg "Shadow_memory.set_range: negative length";
  (* Walk leaf by leaf to avoid re-resolving the tables per cell. *)
  let stop = addr + len in
  let a = ref addr in
  while !a < stop do
    let leaf = leaf_for t !a in
    let li = !a land t.leaf_mask in
    let chunk = min (stop - !a) (t.leaf_mask + 1 - li) in
    Array.fill leaf li chunk v;
    a := !a + chunk
  done

let iter_set f t =
  Array.iteri
    (fun ti mid_opt ->
      match mid_opt with
      | None -> ()
      | Some mid ->
        Array.iteri
          (fun mi leaf_opt ->
            match leaf_opt with
            | None -> ()
            | Some leaf ->
              let base = (ti lsl (t.mid_bits + t.leaf_bits)) lor (mi lsl t.leaf_bits) in
              Array.iteri (fun li v -> if v <> 0 then f (base lor li) v) leaf)
          mid)
    t.top

let map_in_place f t =
  if f 0 <> 0 then invalid_arg "Shadow_memory.map_in_place: f 0 <> 0";
  Array.iter
    (fun mid_opt ->
      match mid_opt with
      | None -> ()
      | Some mid ->
        Array.iter
          (fun leaf_opt ->
            match leaf_opt with
            | None -> ()
            | Some leaf ->
              for i = 0 to Array.length leaf - 1 do
                leaf.(i) <- f leaf.(i)
              done)
          mid)
    t.top

let space_words t =
  Array.length t.top
  + (t.mids * (t.mid_mask + 1))
  + (t.leaves * (t.leaf_mask + 1))

let clear t =
  t.top <- Array.make 4 None;
  t.leaves <- 0;
  t.mids <- 0;
  t.last_page <- -1;
  t.last_leaf <- [||]
