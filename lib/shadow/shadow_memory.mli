(** Shadow memory: one integer word per simulated memory cell.

    Implemented, as in the paper's aprof-drms (Section 4.1), with
    three-level lookup tables so that only chunks related to cells
    actually accessed need to be materialized.  Unset cells read as [0],
    the "never accessed" timestamp.

    The default geometry (10-bit leaves, 10-bit mid tables) shadows a
    1M-cell space with a single top table; the top table grows on demand
    for larger spaces. *)

type t

(** [create ()] is an empty shadow memory; every cell reads as [0].
    [leaf_bits] and [mid_bits] control the chunk geometry (for tests).
    @raise Invalid_argument if either is not in [4, 20]. *)
val create : ?leaf_bits:int -> ?mid_bits:int -> unit -> t

(** [check_addr addr] rejects a negative address.  The per-access
    operations below do {e not} call it: addresses are validated once at
    the trust boundary ({!Aprof_trace.Event.Batch.validate} at the
    codec's batch edge; the VM allocator never produces negatives), so
    edges that accept addresses from elsewhere must call this first.
    @raise Invalid_argument on a negative address. *)
val check_addr : int -> unit

(** [get t addr] is the word shadowing [addr] ([0] if never set).
    [addr] must be non-negative — see {!check_addr}. *)
val get : t -> int -> int

(** [set t addr v] stores [v] at [addr], materializing chunks as needed.
    [addr] must be non-negative — see {!check_addr}. *)
val set : t -> int -> int -> unit

(** [exchange t addr v] stores [v] at [addr] and returns the previous
    word, resolving the chunk once — equivalent to [get] then [set].
    [addr] must be non-negative — see {!check_addr}. *)
val exchange : t -> int -> int -> int

(** [set_range t ~addr ~len v] stores [v] on [addr .. addr+len-1]. *)
val set_range : t -> addr:int -> len:int -> int -> unit

(** [iter_set f t] applies [f addr v] to every cell holding a non-zero
    word, in increasing address order. *)
val iter_set : (int -> int -> unit) -> t -> unit

(** [map_in_place f t] replaces every materialized word [v] by [f v]
    (including zeros, so [f] must map [0] to [0] to preserve the
    "never accessed" reading).
    @raise Invalid_argument if [f 0 <> 0]. *)
val map_in_place : (int -> int) -> t -> unit

(** [space_words t] is the number of machine words held by the lookup
    tables and materialized chunks — the space-accounting figure used by
    Table 1's overhead comparison. *)
val space_words : t -> int

(** [clear t] resets every cell to [0] and releases all chunks. *)
val clear : t -> unit
