module Rng = Aprof_util.Rng
module Vec = Aprof_util.Vec
module Deque = Aprof_util.Par.Ws.Deque

type policy =
  | Round_robin of { slice : int }
  | Random_preemptive of { min_slice : int; max_slice : int }
  | Serialized
  | Work_stealing of { workers : int; slice : int }
  | Async_io of { slice : int; io_delay : int }

(* The serialized sentinel: effectively unbounded for any real run
   (default event budget is 50M), but far enough from [max_int] that
   adding a slice to a consumed-event counter can never overflow. *)
let max_slice = 1 lsl 30

type ws_state = {
  queues : int Deque.t array;
  mutable turn : int; (* the virtual core scheduled this round *)
  mutable running_worker : int; (* core that popped the current thread *)
  mutable ws_queued : int; (* threads sitting in some deque *)
}

type async_state = {
  run_q : int Queue.t;
  (* Completion queue, sorted by (wake turn, submission seq): threads
     parked after submitting I/O, woken in deadline order. *)
  mutable parked : (int * int * int) list;
  mutable now : int; (* scheduling turns elapsed *)
  mutable seq : int;
  mutable io_pending : bool; (* running thread submitted I/O this slice *)
  io_delay : int;
}

type queues =
  | Fifo of int Queue.t (* Round_robin, Serialized *)
  | Bag of int Vec.t (* Random_preemptive: FIFO order, random removal *)
  | Ws of ws_state
  | Async of async_state

type t = { policy : policy; rng : Rng.t; q : queues }

let check_slice what s =
  if s <= 0 || s > max_slice then
    invalid_arg (Printf.sprintf "Scheduler: %s out of (0, 2^30]" what)

let create policy rng =
  let q =
    match policy with
    | Round_robin { slice } ->
      check_slice "slice" slice;
      Fifo (Queue.create ())
    | Serialized -> Fifo (Queue.create ())
    | Random_preemptive { min_slice; max_slice = hi } ->
      check_slice "min_slice" min_slice;
      check_slice "max_slice" hi;
      if hi < min_slice then invalid_arg "Scheduler: bad slice range";
      Bag (Vec.create ())
    | Work_stealing { workers; slice } ->
      check_slice "slice" slice;
      if workers < 2 then invalid_arg "Scheduler: work stealing needs >= 2 workers";
      Ws
        {
          queues = Array.init workers (fun _ -> Deque.create ());
          turn = 0;
          running_worker = 0;
          ws_queued = 0;
        }
    | Async_io { slice; io_delay } ->
      check_slice "slice" slice;
      if io_delay < 1 then invalid_arg "Scheduler: io_delay must be >= 1";
      Async
        {
          run_q = Queue.create ();
          parked = [];
          now = 0;
          seq = 0;
          io_pending = false;
          io_delay;
        }
  in
  { policy; rng; q }

let slice t =
  match t.policy with
  | Round_robin { slice } | Work_stealing { slice; _ } | Async_io { slice; _ }
    ->
    slice
  | Random_preemptive { min_slice; max_slice } ->
    Rng.int_in t.rng min_slice max_slice
  | Serialized -> max_slice

let enqueue t tid =
  match t.q with
  | Fifo q -> Queue.add tid q
  | Bag v -> Vec.push v tid
  | Ws s ->
    (* Home placement: spawn/wake locality by tid. *)
    Deque.push s.queues.(tid mod Array.length s.queues) tid;
    s.ws_queued <- s.ws_queued + 1
  | Async a -> Queue.add tid a.run_q

let park_sorted a entry =
  let rec ins = function
    | [] -> [ entry ]
    | e :: rest -> if entry < e then entry :: e :: rest else e :: ins rest
  in
  a.parked <- ins a.parked

let requeue t tid =
  match t.q with
  | Fifo q -> Queue.add tid q
  | Bag v -> Vec.push v tid
  | Ws s ->
    (* A preempted thread stays on the core that ran it; idle cores pull
       it over by stealing the old end of this deque. *)
    Deque.push s.queues.(s.running_worker) tid;
    s.ws_queued <- s.ws_queued + 1
  | Async a ->
    if a.io_pending then begin
      a.io_pending <- false;
      let delay = Rng.int_in t.rng 1 a.io_delay in
      park_sorted a (a.now + delay, a.seq, tid);
      a.seq <- a.seq + 1
    end
    else Queue.add tid a.run_q

(* Order-preserving removal: the random-preemptive bag keeps FIFO order
   between draws so that, e.g., two wakeups of the same semaphore stay
   in post order.  Thread counts are small; O(n) shift is noise. *)
let bag_remove v i =
  let x = Vec.get v i in
  let last = Vec.length v - 1 in
  for j = i to last - 1 do
    Vec.set v j (Vec.get v (j + 1))
  done;
  Vec.truncate v last;
  x

let ws_next t s =
  if s.ws_queued = 0 then None
  else begin
    let workers = Array.length s.queues in
    let w = s.turn in
    (* Cores are time-multiplexed round-robin onto the single VM loop:
       each scheduling turn belongs to the next virtual core. *)
    s.turn <- (s.turn + 1) mod workers;
    let tid =
      match Deque.pop s.queues.(w) with
      | Some tid -> tid
      | None ->
        (* Empty deque: steal the oldest half of the first non-empty
           victim, scanning from a seeded-random start.  ws_queued > 0
           and our own deque is empty, so a victim must exist. *)
        let start = Rng.int t.rng workers in
        let stolen = ref [] in
        let k = ref 0 in
        while !stolen = [] && !k < workers do
          let v = (start + !k) mod workers in
          if v <> w then
            (match Deque.steal_half s.queues.(v) with
            | [] -> ()
            | xs -> stolen := xs);
          incr k
        done;
        (match !stolen with
        | [] -> assert false
        | xs ->
          List.iter (Deque.push s.queues.(w)) xs;
          (match Deque.pop s.queues.(w) with
          | Some tid -> tid
          | None -> assert false))
    in
    s.running_worker <- w;
    s.ws_queued <- s.ws_queued - 1;
    Some tid
  end

let async_next a =
  a.io_pending <- false;
  a.now <- a.now + 1;
  let release () =
    let rec go = function
      | (wake, _, tid) :: rest when wake <= a.now ->
        Queue.add tid a.run_q;
        go rest
      | rest -> a.parked <- rest
    in
    go a.parked
  in
  release ();
  if Queue.is_empty a.run_q then
    (* Everyone is waiting on I/O: fast-forward the event loop to the
       earliest completion instead of reporting a deadlock. *)
    match a.parked with
    | [] -> None
    | (wake, _, _) :: _ ->
      a.now <- wake;
      release ();
      Queue.take_opt a.run_q
  else Queue.take_opt a.run_q

let next t =
  match t.q with
  | Fifo q -> Queue.take_opt q
  | Bag v ->
    if Vec.is_empty v then None
    else Some (bag_remove v (Rng.int t.rng (Vec.length v)))
  | Ws s -> ws_next t s
  | Async a -> async_next a

let pending t =
  match t.q with
  | Fifo q -> Queue.length q
  | Bag v -> Vec.length v
  | Ws s -> s.ws_queued
  | Async a -> Queue.length a.run_q + List.length a.parked

let note_io t _tid =
  match t.q with Async a -> a.io_pending <- true | Fifo _ | Bag _ | Ws _ -> ()

let must_yield t =
  match t.q with Async a -> a.io_pending | Fifo _ | Bag _ | Ws _ -> false

let policy_name = function
  | Round_robin { slice } -> Printf.sprintf "round-robin(%d)" slice
  | Random_preemptive { min_slice; max_slice } ->
    Printf.sprintf "random(%d-%d)" min_slice max_slice
  | Serialized -> "serialized"
  | Work_stealing { workers; slice } ->
    Printf.sprintf "work-stealing(%dw,%d)" workers slice
  | Async_io { slice; io_delay } ->
    Printf.sprintf "async-io(%d,d%d)" slice io_delay
