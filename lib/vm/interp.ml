module Event = Aprof_trace.Event
module Batch = Event.Batch
module Trace = Aprof_trace.Trace
module Routine_table = Aprof_trace.Routine_table
module Vec = Aprof_util.Vec
module Rng = Aprof_util.Rng
open Program

type config = {
  scheduler : Scheduler.policy;
  seed : int;
  devices : (string * Device.t) list;
  max_events : int;
  reuse_freed_memory : bool;
}

let default_config =
  {
    scheduler = Scheduler.Round_robin { slice = 64 };
    seed = 42;
    devices = [];
    max_events = 50_000_000;
    reuse_freed_memory = false;
  }

type result = {
  trace : Trace.t;
  routines : Routine_table.t;
  threads_spawned : int;
  memory_high_water : int;
  events_emitted : int;
}

exception Run_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Run_error s)) fmt

type thread = {
  tid : int;
  exit_sync : int; (* sync-object id for spawn/join happens-before edges *)
  mutable prog : prog option; (* None while blocked or exited *)
  mutable depth : int;
  mutable exited : bool;
  mutable joiners : (int * (unit -> prog)) list;
}

type semaphore = { mutable count : int; sem_waiters : (int * (unit -> prog)) Queue.t }

type barrier_state = {
  parties : int;
  bar_sync : int;
  mutable arrived : int;
  mutable bar_waiters : (int * (unit -> prog)) list;
}

type state = {
  cfg : config;
  batch : Batch.t; (* recycled emission buffer, flushed when full *)
  flush : Batch.t -> unit;
  routines : Routine_table.t;
  rng : Rng.t;
  sched : Scheduler.t;
  memory : (int, int) Hashtbl.t;
  mutable next_addr : int;
  mutable free_list : (int * int) list; (* (addr, len) of recycled blocks *)
  mutable allocated : int;
  mutable high_water : int;
  threads : thread Vec.t;
  mutable live : int; (* threads not yet exited *)
  mutable sync_ids : int;
  sems : (int, semaphore) Hashtbl.t;
  bars : (int, barrier_state) Hashtbl.t;
  fds : (int, Device.t) Hashtbl.t;
  mutable next_fd : int;
  device_table : (string * Device.t) list;
  mutable events : int;
  mutable current : int; (* tid owning the last Switch_thread, -1 initially *)
}

(* The hot emitters: raw fields go straight into the recycled batch; no
   [Event.t] is constructed.  The batch is handed to [flush] when full
   and once more, partially filled, at the end of the run. *)
let emit_raw st ~tag ~tid ~arg ~len =
  st.events <- st.events + 1;
  if st.events > st.cfg.max_events then
    fail "event budget exhausted (%d events): runaway program?" st.cfg.max_events;
  if Batch.is_full st.batch then begin
    st.flush st.batch;
    Batch.clear st.batch
  end;
  Batch.unsafe_push st.batch ~tag ~tid ~arg ~len

let emit_flush st =
  if not (Batch.is_empty st.batch) then begin
    st.flush st.batch;
    Batch.clear st.batch
  end

let emit_plain st tag tid = emit_raw st ~tag ~tid ~arg:0 ~len:0
let emit_arg st tag tid arg = emit_raw st ~tag ~tid ~arg ~len:0
let emit_range st tag tid ~addr ~len = emit_raw st ~tag ~tid ~arg:addr ~len

let fresh_sync st =
  let id = st.sync_ids in
  st.sync_ids <- id + 1;
  id

let thread st tid =
  if tid < 0 || tid >= Vec.length st.threads then fail "unknown thread %d" tid;
  Vec.get st.threads tid

let new_thread st prog =
  let tid = Vec.length st.threads in
  let th =
    {
      tid;
      exit_sync = fresh_sync st;
      prog = Some prog;
      depth = 0;
      exited = false;
      joiners = [];
    }
  in
  Vec.push st.threads th;
  Scheduler.enqueue st.sched tid;
  st.live <- st.live + 1;
  emit_plain st Batch.tag_thread_start tid;
  th

let make_runnable st tid k =
  let th = thread st tid in
  th.prog <- Some (k ());
  Scheduler.enqueue st.sched tid

let mem_read st addr =
  if addr < 0 then fail "read from negative address %d" addr;
  Option.value ~default:0 (Hashtbl.find_opt st.memory addr)

let mem_write st addr v =
  if addr < 0 then fail "write to negative address %d" addr;
  Hashtbl.replace st.memory addr v

(* Execute one DSL step of thread [th].  Returns [true] while the thread
   can keep its slice (still runnable), [false] when it blocked, exited,
   or yielded. *)
let step st th =
  match th.prog with
  | None -> fail "stepping a parked thread %d" th.tid
  | Some p -> (
    let tid = th.tid in
    let continue_with p' =
      th.prog <- Some p';
      true
    in
    let park () =
      th.prog <- None;
      false
    in
    match p with
    | Halt ->
      if th.depth <> 0 then
        fail "thread %d exits with %d unbalanced calls" tid th.depth;
      th.prog <- None;
      th.exited <- true;
      st.live <- st.live - 1;
      (* The exit publishes through the exit sync: current joiners wake
         here, late joiners acquire in the [Join] handler. *)
      emit_arg st Batch.tag_release tid th.exit_sync;
      List.iter
        (fun (jtid, k) ->
          emit_arg st Batch.tag_acquire jtid th.exit_sync;
          make_runnable st jtid k)
        (List.rev th.joiners);
      th.joiners <- [];
      emit_plain st Batch.tag_thread_exit tid;
      false
    | Read (addr, k) ->
      let v = mem_read st addr in
      emit_arg st Batch.tag_read tid addr;
      continue_with (k v)
    | Write (addr, v, k) ->
      mem_write st addr v;
      emit_arg st Batch.tag_write tid addr;
      continue_with (k ())
    | Compute (units, k) ->
      if units < 0 then fail "negative compute units";
      if units > 0 then emit_arg st Batch.tag_block tid units;
      continue_with (k ())
    | Enter (name, k) ->
      let routine = Routine_table.intern st.routines name in
      th.depth <- th.depth + 1;
      emit_arg st Batch.tag_call tid routine;
      continue_with (k ())
    | Leave k ->
      if th.depth <= 0 then fail "thread %d: return without call" tid;
      th.depth <- th.depth - 1;
      emit_plain st Batch.tag_return tid;
      continue_with (k ())
    | Alloc (n, k) ->
      if n <= 0 then fail "alloc of %d cells" n;
      (* first fit in the free list when recycling is enabled *)
      let recycled =
        if not st.cfg.reuse_freed_memory then None
        else begin
          let rec take acc = function
            | [] -> None
            | (a, l) :: rest when l >= n ->
              st.free_list <- List.rev_append acc
                  (if l = n then rest else (a + n, l - n) :: rest);
              Some a
            | blk :: rest -> take (blk :: acc) rest
          in
          take [] st.free_list
        end
      in
      let base =
        match recycled with
        | Some a -> a
        | None ->
          let a = st.next_addr in
          st.next_addr <- a + n;
          a
      in
      (* recycled cells must read as zero, like fresh ones *)
      (if recycled <> None then
         for a = base to base + n - 1 do
           Hashtbl.remove st.memory a
         done);
      st.allocated <- st.allocated + n;
      if st.allocated > st.high_water then st.high_water <- st.allocated;
      emit_range st Batch.tag_alloc tid ~addr:base ~len:n;
      continue_with (k base)
    | Dealloc (addr, n, k) ->
      if n <= 0 then fail "dealloc of %d cells" n;
      st.allocated <- st.allocated - n;
      if st.cfg.reuse_freed_memory then
        st.free_list <- (addr, n) :: st.free_list;
      emit_range st Batch.tag_free tid ~addr ~len:n;
      continue_with (k ())
    | Sem_create (n, k) ->
      if n < 0 then fail "semaphore with negative count";
      let id = fresh_sync st in
      Hashtbl.add st.sems id { count = n; sem_waiters = Queue.create () };
      continue_with (k (Program.unsafe_sem_of_id id))
    | Sem_wait (s, k) -> (
      let id = Program.sem_id s in
      match Hashtbl.find_opt st.sems id with
      | None -> fail "wait on unknown semaphore %d" id
      | Some sem ->
        if sem.count > 0 then begin
          sem.count <- sem.count - 1;
          emit_arg st Batch.tag_acquire tid id;
          continue_with (k ())
        end
        else begin
          Queue.add (tid, k) sem.sem_waiters;
          park ()
        end)
    | Sem_trywait (s, k) -> (
      let id = Program.sem_id s in
      match Hashtbl.find_opt st.sems id with
      | None -> fail "trywait on unknown semaphore %d" id
      | Some sem ->
        if sem.count > 0 then begin
          sem.count <- sem.count - 1;
          emit_arg st Batch.tag_acquire tid id;
          continue_with (k true)
        end
        else continue_with (k false))
    | Sem_post (s, k) -> (
      let id = Program.sem_id s in
      match Hashtbl.find_opt st.sems id with
      | None -> fail "post on unknown semaphore %d" id
      | Some sem ->
        emit_arg st Batch.tag_release tid id;
        (if Queue.is_empty sem.sem_waiters then sem.count <- sem.count + 1
         else begin
           let wtid, wk = Queue.pop sem.sem_waiters in
           emit_arg st Batch.tag_acquire wtid id;
           make_runnable st wtid wk
         end);
        continue_with (k ()))
    | Barrier_create (n, k) ->
      if n <= 0 then fail "barrier with %d parties" n;
      let id = fresh_sync st in
      Hashtbl.add st.bars id
        { parties = n; bar_sync = id; arrived = 0; bar_waiters = [] };
      continue_with (k (Program.unsafe_barrier_of_id id))
    | Barrier_wait (b, k) -> (
      let id = Program.barrier_id b in
      match Hashtbl.find_opt st.bars id with
      | None -> fail "wait on unknown barrier %d" id
      | Some bar ->
        (* Arrival publishes; departure observes every arrival. *)
        emit_arg st Batch.tag_release tid bar.bar_sync;
        if bar.arrived + 1 < bar.parties then begin
          bar.arrived <- bar.arrived + 1;
          bar.bar_waiters <- (tid, k) :: bar.bar_waiters;
          park ()
        end
        else begin
          emit_arg st Batch.tag_acquire tid bar.bar_sync;
          List.iter
            (fun (wtid, wk) ->
              emit_arg st Batch.tag_acquire wtid bar.bar_sync;
              make_runnable st wtid wk)
            (List.rev bar.bar_waiters);
          bar.arrived <- 0;
          bar.bar_waiters <- [];
          continue_with (k ())
        end)
    | Spawn (body, k) ->
      let child = new_thread st body in
      (* Parent's prior work happens-before the child's first step. *)
      emit_arg st Batch.tag_release tid child.exit_sync;
      emit_arg st Batch.tag_acquire child.tid child.exit_sync;
      continue_with (k child.tid)
    | Join (target, k) ->
      let tgt = thread st target in
      if tgt.exited then begin
        emit_arg st Batch.tag_acquire tid tgt.exit_sync;
        continue_with (k ())
      end
      else begin
        tgt.joiners <- (tid, k) :: tgt.joiners;
        park ()
      end
    | Self k -> continue_with (k tid)
    | Yield k ->
      th.prog <- Some (k ());
      false
    | Sys_open (name, k) -> (
      match List.assoc_opt name st.device_table with
      | None -> fail "sys_open: unknown device %S" name
      | Some dev ->
        let fd = st.next_fd in
        st.next_fd <- fd + 1;
        Hashtbl.add st.fds fd dev;
        continue_with (k fd))
    | Sys_read (fd, buf, len, k) -> (
      if len < 0 then fail "sys_read: negative length";
      match Hashtbl.find_opt st.fds fd with
      | None -> fail "sys_read: bad fd %d" fd
      | Some dev ->
        let data = Device.read dev len in
        let got = Array.length data in
        Array.iteri (fun i v -> mem_write st (buf + i) v) data;
        if got > 0 then emit_range st Batch.tag_kernel_to_user tid ~addr:buf ~len:got;
        Scheduler.note_io st.sched tid;
        continue_with (k got))
    | Sys_pread (fd, buf, len, pos, k) -> (
      if len < 0 || pos < 0 then fail "sys_pread: negative argument";
      match Hashtbl.find_opt st.fds fd with
      | None -> fail "sys_pread: bad fd %d" fd
      | Some dev ->
        let data = Device.read_at dev ~pos len in
        let got = Array.length data in
        Array.iteri (fun i v -> mem_write st (buf + i) v) data;
        if got > 0 then emit_range st Batch.tag_kernel_to_user tid ~addr:buf ~len:got;
        Scheduler.note_io st.sched tid;
        continue_with (k got))
    | Sys_write (fd, buf, len, k) -> (
      if len < 0 then fail "sys_write: negative length";
      match Hashtbl.find_opt st.fds fd with
      | None -> fail "sys_write: bad fd %d" fd
      | Some dev ->
        let data = Array.init len (fun i -> mem_read st (buf + i)) in
        if len > 0 then emit_range st Batch.tag_user_to_kernel tid ~addr:buf ~len;
        let _accepted = Device.write dev data in
        Scheduler.note_io st.sched tid;
        continue_with (k len))
    | Sys_close (fd, k) ->
      Hashtbl.remove st.fds fd;
      continue_with (k ())
    | Random_int (bound, k) -> continue_with (k (Rng.int st.rng bound)))

let run_loop st =
  while st.live > 0 do
    match Scheduler.next st.sched with
    | None ->
      let blocked =
        Vec.fold_left
          (fun acc th -> if th.exited then acc else th.tid :: acc)
          [] st.threads
      in
      fail "deadlock: threads %s are blocked"
        (String.concat "," (List.map string_of_int (List.rev blocked)))
    | Some tid -> (
      let th = thread st tid in
      match th.prog with
      | None -> () (* woken and re-parked stale entry: skip *)
      | Some _ ->
        if st.current <> tid then begin
          emit_plain st Batch.tag_switch_thread tid;
          st.current <- tid
        end;
        let slice = Scheduler.slice st.sched in
        let budget = ref slice in
        let running = ref true in
        (* [must_yield] ends the slice right after an async I/O submit:
           the thread parks on the completion queue in [requeue]. *)
        while !running && !budget > 0 && not (Scheduler.must_yield st.sched) do
          decr budget;
          running := step st th
        done;
        (* Preempted mid-run: back to the scheduler's queues. *)
        if th.prog <> None && not th.exited then Scheduler.requeue st.sched tid)
  done

let setup config flush =
  let rng = Rng.create config.seed in
  {
    cfg = config;
    batch = Batch.create ();
    flush;
    routines = Routine_table.create ();
    rng;
    sched = Scheduler.create config.scheduler (Rng.split rng);
    memory = Hashtbl.create 4096;
    next_addr = 0x1000;
    free_list = [];
    allocated = 0;
    high_water = 0;
    threads = Vec.create ();
    live = 0;
    sync_ids = 1;
    sems = Hashtbl.create 16;
    bars = Hashtbl.create 16;
    fds = Hashtbl.create 16;
    next_fd = 3;
    device_table = config.devices;
    events = 0;
    current = -1;
  }

(* [make_flush] receives the (initially empty) routine intern table
   before the first event fires, so an online tool can resolve routine
   ids to names while the workload executes: the interpreter interns a
   name before emitting the corresponding [Call]. *)
let run_internal config threads make_flush =
  if threads = [] then invalid_arg "Interp.run: no threads";
  let flush = ref (fun (_ : Batch.t) -> ()) in
  let st = setup config (fun b -> !flush b) in
  flush := make_flush st.routines;
  List.iter (fun body -> ignore (new_thread st (Program.to_prog body))) threads;
  run_loop st;
  emit_flush st;
  { trace = Vec.create (); routines = st.routines;
    threads_spawned = Vec.length st.threads;
    memory_high_water = st.high_water; events_emitted = st.events }

let run_batched config threads ~tool = run_internal config threads tool

let run config threads =
  let trace = Vec.create () in
  let result =
    run_internal config threads (fun _ b -> Batch.iter_events (Vec.push trace) b)
  in
  { result with trace }

let run_to_sink config threads ~sink =
  run_internal config threads (fun _ b -> Batch.iter_events sink b)

let run_instrumented config threads ~tool =
  run_internal config threads (fun routines ->
      let f = tool routines in
      fun b -> Batch.iter_events f b)
