(** The interpreter: executes a multi-threaded DSL program and emits the
    totally ordered instrumentation trace.

    This is the repository's stand-in for Valgrind's dynamic binary
    instrumentation: the profilers and tools of the paper consume the
    event stream this module produces.  A run is a pure function of the
    program, the scheduler policy and the seed. *)

type config = {
  scheduler : Scheduler.policy;
  seed : int;
  devices : (string * Device.t) list;
      (** named devices available to [sys_open] *)
  max_events : int;  (** abort runaway programs (default 50M) *)
  reuse_freed_memory : bool;
      (** when true the allocator recycles freed blocks (first fit),
          exercising the profilers' address-recycling path; default
          false gives a pure bump allocator with fresh addresses *)
}

val default_config : config

type result = {
  trace : Aprof_trace.Trace.t;
  routines : Aprof_trace.Routine_table.t;
  threads_spawned : int;
  memory_high_water : int;  (** peak allocated simulated cells *)
  events_emitted : int;
      (** total events the run produced — also meaningful for streaming
          runs, whose [trace] field stays empty *)
}

(** Raised on deadlock, unbalanced call/return, unknown device, negative
    allocation, join on an unknown thread, or event-budget exhaustion. *)
exception Run_error of string

(** [run config threads] executes the initial [threads] (thread ids 0, 1,
    ... in list order) to completion and returns the recorded trace.
    @raise Run_error as described above. *)
val run : config -> unit Program.t list -> result

(** [run_to_sink config threads ~sink] is [run] streaming each event to
    [sink] instead of materializing the trace; returns the same metadata
    with an empty trace. *)
val run_to_sink :
  config -> unit Program.t list -> sink:(Aprof_trace.Event.t -> unit) -> result

(** [run_instrumented config threads ~tool] is the online-profiling mode:
    [tool] receives the run's routine intern table *before* the first
    event and returns the event callback, so an analysis (a profiler, a
    trace encoder) can observe the workload while it executes and resolve
    routine ids to names as they are interned — the interpreter interns a
    routine's name before emitting its [Call] event.  No trace is
    materialized. *)
val run_instrumented :
  config ->
  unit Program.t list ->
  tool:(Aprof_trace.Routine_table.t -> Aprof_trace.Event.t -> unit) ->
  result

(** [run_batched config threads ~tool] is the hot-path variant of
    {!run_instrumented}: the interpreter packs events straight into a
    recycled {!Aprof_trace.Event.Batch.t} — no [Event.t] is ever
    constructed — and hands it to the callback when full, plus once more
    (partially filled) at the end of the run.  The callback must not
    retain the batch: it is cleared and reused after each call.  The
    per-event entry points above are thin wrappers over this one. *)
val run_batched :
  config ->
  unit Program.t list ->
  tool:(Aprof_trace.Routine_table.t -> Aprof_trace.Event.Batch.t -> unit) ->
  result
