(** Thread-scheduling policies for the interpreter.

    The scheduler owns the run queues: the interpreter hands it every
    thread that becomes runnable ({!enqueue}) or is preempted at the end
    of its slice ({!requeue}) and asks it for the next thread to run
    ({!next}).  This stateful shape is what lets policies keep private
    structure — per-worker deques for work stealing, a completion queue
    for the async event loop — instead of picking an index into a ready
    vector the interpreter owns.

    Policies:
    - [Round_robin] rotates through runnable threads FIFO with a fixed
      event budget per turn.
    - [Random_preemptive] picks the next thread and its slice length at
      random (seeded) — used by the scheduler-sensitivity experiment.
    - [Serialized] runs each thread until it blocks or exits, mimicking
      Valgrind's big-lock serialization.  Its slice is the {!max_slice}
      sentinel, never [max_int], so budget arithmetic that adds a slice
      to an event counter cannot overflow.
    - [Work_stealing] multiplexes runnable threads over [workers]
      virtual cores, one per-core deque: a new or woken thread lands on
      its home deque ([tid mod workers]), a preempted thread goes back
      to the core that ran it, and a core whose deque is empty steals
      the oldest half of a seeded-random victim's deque (manticore's
      local-deque discipline, same invariants as [Aprof_util.Par.Ws]).
      Requires [workers >= 2] — with a single deque the owner-LIFO pop
      could starve older threads, since there is no thief to drain the
      old end.
    - [Async_io] is an event loop: a thread that performs device I/O
      ({!note_io}) loses the rest of its slice and parks on a completion
      queue for a seeded delay of 1..[io_delay] scheduling turns;
      completions wake in deadline order onto a FIFO run queue.  When
      every runnable thread is parked the loop fast-forwards to the
      earliest completion, so I/O waits never deadlock the VM.

    Every policy is a deterministic function of its creation RNG, so
    same-seed runs replay byte-identical traces. *)

type policy =
  | Round_robin of { slice : int }
  | Random_preemptive of { min_slice : int; max_slice : int }
  | Serialized
  | Work_stealing of { workers : int; slice : int }
  | Async_io of { slice : int; io_delay : int }

type t

(** Upper bound on any slice (2^30).  [Serialized] returns exactly this
    sentinel; every other policy's slice is validated against it at
    {!create} time.  Guaranteed well below [max_int / 2] so
    [events + slice] never wraps. *)
val max_slice : int

(** [create policy rng] is a fresh scheduler state with empty queues.
    @raise Invalid_argument on out-of-range parameters (non-positive or
    over-[max_slice] slices, [workers < 2], [io_delay < 1]). *)
val create : policy -> Aprof_util.Rng.t -> t

(** [slice t] is the event budget for the next turn, in
    [1, ]{!max_slice}[]. *)
val slice : t -> int

(** [enqueue t tid] makes [tid] runnable: a newly spawned thread or one
    woken by a semaphore post, barrier release, or join. *)
val enqueue : t -> int -> unit

(** [requeue t tid] returns a thread preempted at the end of its slice.
    Under [Async_io], a thread that called {!note_io} during the slice
    parks on the completion queue instead of the run queue. *)
val requeue : t -> int -> unit

(** [next t] dequeues the next thread to run, [None] when no thread is
    queued anywhere (the interpreter's deadlock signal).  Every returned
    tid was previously {!enqueue}d or {!requeue}d and is returned
    exactly once per enqueue. *)
val next : t -> int option

(** [pending t] is the number of queued threads, including any parked on
    the async completion queue. *)
val pending : t -> int

(** [note_io t tid] records that the running thread [tid] performed
    device I/O this slice.  Only [Async_io] reacts: {!must_yield} turns
    true and the following {!requeue} parks the thread. *)
val note_io : t -> int -> unit

(** [must_yield t] is true when the current slice should end now
    (async I/O submitted); always false for synchronous policies. *)
val must_yield : t -> bool

val policy_name : policy -> string
