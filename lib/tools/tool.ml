module Event = Aprof_trace.Event
module Stream = Aprof_trace.Trace_stream

type t = {
  name : string;
  on_event : Event.t -> unit;
  on_batch : Event.Batch.t -> unit;
  space_words : unit -> int;
  summary : unit -> string;
}

type factory = { tool_name : string; create : unit -> t }

let make ?on_batch ~name ~on_event ~space_words ~summary () =
  let on_batch =
    match on_batch with
    | Some f -> f
    | None -> fun b -> Event.Batch.iter_events on_event b
  in
  { name; on_event; on_batch; space_words; summary }

let replay tool trace = Aprof_util.Vec.iter tool.on_event trace

let replay_stream tool source = Stream.iter tool.on_event source

let replay_batches tool (src : Stream.batch_source) =
  let rec loop n =
    match src () with
    | None -> n
    | Some b ->
      tool.on_batch b;
      loop (n + Event.Batch.length b)
  in
  loop 0

let sink tool = Stream.sink_of_fun tool.on_event

let batch_sink tool = Stream.batch_sink_of_fun tool.on_batch

(* ----- mergeable tools ------------------------------------------------- *)

module type S = sig
  type state

  val name : string
  val create : unit -> state
  val tool : state -> t
  val merge : into:state -> state -> unit
  val broadcast : int
end

let shard_keep ~jobs ~worker ~broadcast =
 fun tag tid -> tid mod jobs = worker || (broadcast lsr tag) land 1 = 1

let replay_parallel (type a) ~pool ~jobs ~open_source
    (module M : S with type state = a) =
  if jobs < 1 then invalid_arg "Tool.replay_parallel: jobs < 1";
  let states = Array.init jobs (fun _ -> M.create ()) in
  let counts = Array.make jobs 0 in
  let worker w () =
    let tool = M.tool states.(w) in
    let src = open_source ~worker:w in
    let keep = shard_keep ~jobs ~worker:w ~broadcast:M.broadcast in
    let rec loop n =
      match src () with
      | None -> counts.(w) <- n
      | Some b ->
        (* One worker keeps everything — and stays byte-for-byte the
           sequential replay, which is what the [-j N ≡ -j 1]
           differential suite pins. *)
        if jobs > 1 then Event.Batch.keep_in_place keep b;
        tool.on_batch b;
        loop (n + Event.Batch.length b)
    in
    loop 0
  in
  Aprof_util.Par.run pool (Array.init jobs worker);
  for w = 1 to jobs - 1 do
    M.merge ~into:states.(0) states.(w)
  done;
  (states.(0), Array.fold_left ( + ) 0 counts)
