module Event = Aprof_trace.Event
module Stream = Aprof_trace.Trace_stream

type t = {
  name : string;
  on_event : Event.t -> unit;
  on_batch : Event.Batch.t -> unit;
  space_words : unit -> int;
  summary : unit -> string;
}

type factory = { tool_name : string; create : unit -> t }

let make ?on_batch ~name ~on_event ~space_words ~summary () =
  let on_batch =
    match on_batch with
    | Some f -> f
    | None -> fun b -> Event.Batch.iter_events on_event b
  in
  { name; on_event; on_batch; space_words; summary }

let replay tool trace = Aprof_util.Vec.iter tool.on_event trace

let replay_stream tool source = Stream.iter tool.on_event source

let replay_batches tool (src : Stream.batch_source) =
  let rec loop n =
    match src () with
    | None -> n
    | Some b ->
      tool.on_batch b;
      loop (n + Event.Batch.length b)
  in
  loop 0

let sink tool = Stream.sink_of_fun tool.on_event

let batch_sink tool = Stream.batch_sink_of_fun tool.on_batch
