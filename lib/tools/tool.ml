module Event = Aprof_trace.Event
module Stream = Aprof_trace.Trace_stream

type t = {
  name : string;
  on_event : Event.t -> unit;
  on_batch : Event.Batch.t -> unit;
  space_words : unit -> int;
  summary : unit -> string;
}

type factory = { tool_name : string; create : unit -> t }

let make ?on_batch ~name ~on_event ~space_words ~summary () =
  let on_batch =
    match on_batch with
    | Some f -> f
    | None -> fun b -> Event.Batch.iter_events on_event b
  in
  { name; on_event; on_batch; space_words; summary }

let replay tool trace = Aprof_util.Vec.iter tool.on_event trace

let replay_stream tool source = Stream.iter tool.on_event source

let replay_batches tool (src : Stream.batch_source) =
  let rec loop n =
    match src () with
    | None -> n
    | Some b ->
      tool.on_batch b;
      loop (n + Event.Batch.length b)
  in
  loop 0

let sink tool = Stream.sink_of_fun tool.on_event

let batch_sink tool = Stream.batch_sink_of_fun tool.on_batch

(* ----- mergeable tools ------------------------------------------------- *)

type sharding = [ `By_chunk | `By_thread ]

module type S = sig
  type state

  val name : string
  val create : unit -> state
  val tool : state -> t
  val merge : into:state -> state -> unit
  val broadcast : int
  val sharding : sharding
  val set_owner : state -> (int -> bool) -> unit
end

let shard_keep ~owns ~broadcast =
 fun tag tid -> (broadcast lsr tag) land 1 = 1 || owns tid

(* ----- chunked trace sources ------------------------------------------- *)

module Shards = struct
  module Codec = Aprof_trace.Trace_codec
  module Vec = Aprof_util.Vec

  type chunk = { events : int; tag_mask : int; tids : int array }

  type session = {
    names : (int, string) Hashtbl.t;
    read : int -> Stream.batch_source;
    close : unit -> unit;
  }

  type nonrec t = {
    chunks : chunk array;
    open_session : ?keep:(int -> int -> bool) -> unit -> session;
  }

  let of_file path =
    let probe =
      In_channel.with_open_bin path (fun ic ->
          match Codec.detect ic with
          | `Text -> None
          | `Binary -> Codec.shards ~path ic)
    in
    match probe with
    | None -> None
    | Some shs ->
      let chunks =
        Array.map
          (fun (sh : Codec.shard) ->
            {
              events = sh.Codec.events;
              tag_mask = sh.Codec.tag_mask;
              tids = sh.Codec.tids;
            })
          shs
      in
      let open_session ?keep () =
        let ic = In_channel.open_bin path in
        let names, read = Codec.chunk_session ?keep ic in
        {
          names;
          read = (fun i -> read shs.(i));
          close = (fun () -> In_channel.close ic);
        }
      in
      Some { chunks; open_session }

  let of_trace ?(chunk_events = 4096) trace =
    if chunk_events < 1 then invalid_arg "Shards.of_trace: chunk_events < 1";
    let n = Vec.length trace in
    let nchunks = (n + chunk_events - 1) / chunk_events in
    let bounds i = (i * chunk_events, min n ((i + 1) * chunk_events)) in
    let chunks =
      Array.init nchunks (fun i ->
          let lo, hi = bounds i in
          let mask = ref 0 in
          let tids = Hashtbl.create 8 in
          for j = lo to hi - 1 do
            let ev = Vec.get trace j in
            mask := !mask lor (1 lsl Event.Batch.tag_of_event ev);
            Hashtbl.replace tids (Event.tid ev) ()
          done;
          let tids = Hashtbl.fold (fun tid () acc -> tid :: acc) tids [] in
          let tids = Array.of_list tids in
          Array.sort compare tids;
          { events = hi - lo; tag_mask = !mask; tids })
    in
    let names : (int, string) Hashtbl.t = Hashtbl.create 1 in
    let open_session ?keep () =
      let keep = match keep with None -> fun _ _ -> true | Some k -> k in
      let b = Event.Batch.create () in
      let read i =
        let lo, hi = bounds i in
        let pos = ref lo in
        fun () ->
          if !pos >= hi then None
          else begin
            Event.Batch.clear b;
            while !pos < hi && not (Event.Batch.is_full b) do
              let ev = Vec.get trace !pos in
              incr pos;
              if keep (Event.Batch.tag_of_event ev) (Event.tid ev) then
                Event.Batch.push b ev
            done;
            Some b
          end
      in
      { names; read; close = (fun () -> ()) }
    in
    { chunks; open_session }
end

(* ----- work-stealing parallel replay ----------------------------------- *)

module Par = Aprof_util.Par

let union_into ~into tbl = Hashtbl.iter (Hashtbl.replace into) tbl

(* Sequential replay over the chunk source — the [jobs = 1] path, and
   byte-for-byte what a plain [replay_batches] over the file performs,
   which is what lets the differential suite pin [-j N ≡ -j 1]. *)
let replay_chunks_sequential (type a) ~shards
    (module M : S with type state = a) =
  let st = M.create () in
  let tool = M.tool st in
  let s = shards.Shards.open_session () in
  Fun.protect
    ~finally:(fun () -> s.Shards.close ())
    (fun () ->
      let count = ref 0 in
      for i = 0 to Array.length shards.Shards.chunks - 1 do
        count := !count + replay_batches tool (s.Shards.read i)
      done;
      (st, !count, s.Shards.names))

(* Order-independent tools: any worker may replay any chunk, so the
   deque items are bare chunk ordinals, seeded in contiguous runs (for
   seek locality) and rebalanced purely by stealing. *)
let replay_by_chunk (type a) ~pool ~jobs ~shards
    (module M : S with type state = a) =
  let chunks = shards.Shards.chunks in
  let n = Array.length chunks in
  let states = Array.init jobs (fun _ -> M.create ()) in
  let tools = Array.map M.tool states in
  let sessions = Array.make jobs None in
  let counts = Array.make jobs 0 in
  let session w =
    match sessions.(w) with
    | Some s -> s
    | None ->
      let s = shards.Shards.open_session () in
      sessions.(w) <- Some s;
      s
  in
  let ws = Par.Ws.create ~workers:jobs in
  for i = 0 to n - 1 do
    Par.Ws.seed ws ~worker:(i * jobs / n) i
  done;
  let step ~worker i =
    let s = session worker in
    counts.(worker) <-
      counts.(worker) + replay_batches tools.(worker) (s.Shards.read i);
    None
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (Option.iter (fun s -> s.Shards.close ())) sessions)
    (fun () -> Par.Ws.run pool ws ~step);
  let names = Hashtbl.create 64 in
  Array.iter
    (Option.iter (fun s -> union_into ~into:names s.Shards.names))
    sessions;
  for w = 1 to jobs - 1 do
    M.merge ~into:states.(0) states.(w)
  done;
  (states.(0), Array.fold_left ( + ) 0 counts, names)

(* Thread-sharded tools: threads are partitioned into at most [jobs]
   shards (longest-processing-time first on estimated event counts, so
   a hot thread gets a shard to itself), and each shard replays its
   selected chunks *in file order* through one tool instance — order
   within a thread is what the tools' state machines depend on.  The
   deque item is the shard itself; it returns to a deque after every
   chunk, so an idle worker steals the remainder of a lagging shard at
   chunk granularity. *)
let replay_by_thread (type a) ~pool ~jobs ~shards
    (module M : S with type state = a) =
  let chunks = shards.Shards.chunks in
  let tid_max =
    Array.fold_left
      (fun acc (c : Shards.chunk) -> Array.fold_left max acc c.tids)
      (-1) chunks
  in
  if tid_max < 0 then replay_chunks_sequential ~shards (module M)
  else begin
    (* Estimated events per thread: chunks do not record per-tid counts,
       so spread each chunk's events evenly over its threads. *)
    let est = Array.make (tid_max + 1) 0 in
    Array.iter
      (fun (c : Shards.chunk) ->
        if Array.length c.tids > 0 then begin
          let share = max 1 (c.events / Array.length c.tids) in
          Array.iter (fun tid -> est.(tid) <- est.(tid) + share) c.tids
        end)
      chunks;
    let tids =
      List.filter (fun tid -> est.(tid) > 0)
        (List.init (tid_max + 1) Fun.id)
      |> List.sort (fun a b -> compare est.(b) est.(a))
    in
    let n_shards = min jobs (List.length tids) in
    let owner = Array.make (tid_max + 1) (-1) in
    let loads = Array.make (max n_shards 1) 0 in
    List.iter
      (fun tid ->
        let s = ref 0 in
        for i = 1 to n_shards - 1 do
          if loads.(i) < loads.(!s) then s := i
        done;
        owner.(tid) <- !s;
        loads.(!s) <- loads.(!s) + est.(tid))
      tids;
    let owns s tid = tid >= 0 && tid <= tid_max && owner.(tid) = s in
    let chunk_list s =
      let out = ref [] in
      for i = Array.length chunks - 1 downto 0 do
        let c = chunks.(i) in
        if
          c.Shards.tag_mask land M.broadcast <> 0
          || Array.exists (fun tid -> owner.(tid) = s) c.Shards.tids
        then out := i :: !out
      done;
      Array.of_list !out
    in
    let states = Array.init n_shards (fun _ -> M.create ()) in
    Array.iteri (fun s st -> M.set_owner st (owns s)) states;
    let tools = Array.map M.tool states in
    let lists = Array.init n_shards chunk_list in
    let cursors = Array.make n_shards 0 in
    let sessions = Array.make n_shards None in
    let counts = Array.make n_shards 0 in
    (* [shard_keep], pushed down into the session's decode loop so a
       foreign non-broadcast event is parse-only, with the owned-event
       count fused in.  A shard is held by one worker at a time (it
       lives in exactly one deque slot), so the bare [counts.(s)]
       update is single-writer; the deque lock orders the handoffs. *)
    let keeps =
      Array.init n_shards (fun s ->
          let owns = owns s in
          let broadcast = M.broadcast in
          fun tag tid ->
            if owns tid then begin
              counts.(s) <- counts.(s) + 1;
              true
            end
            else (broadcast lsr tag) land 1 = 1)
    in
    let step ~worker:_ s =
      let list = lists.(s) in
      let cur = cursors.(s) in
      if cur >= Array.length list then None
      else begin
        cursors.(s) <- cur + 1;
        let sess =
          match sessions.(s) with
          | Some sess -> sess
          | None ->
            let sess = shards.Shards.open_session ~keep:keeps.(s) () in
            sessions.(s) <- Some sess;
            sess
        in
        let src = sess.Shards.read list.(cur) in
        let tool = tools.(s) in
        let rec drain () =
          match src () with
          | None -> ()
          | Some b ->
            tool.on_batch b;
            drain ()
        in
        drain ();
        if cursors.(s) >= Array.length list then None else Some s
      end
    in
    let ws = Par.Ws.create ~workers:jobs in
    for s = 0 to n_shards - 1 do
      Par.Ws.seed ws ~worker:s s
    done;
    (* Sessions are closed — and their name tables unioned — back on the
       calling domain after the join: workers only open and read them,
       so no shared table is ever mutated concurrently. *)
    Fun.protect
      ~finally:(fun () ->
        Array.iter (Option.iter (fun s -> s.Shards.close ())) sessions)
      (fun () -> Par.Ws.run pool ws ~step);
    let names = Hashtbl.create 64 in
    Array.iter
      (Option.iter (fun s -> union_into ~into:names s.Shards.names))
      sessions;
    for s = 1 to n_shards - 1 do
      M.merge ~into:states.(0) states.(s)
    done;
    (states.(0), Array.fold_left ( + ) 0 counts, names)
  end

(* Every event is counted exactly once: in [`By_chunk] mode each chunk
   is claimed by one worker, and in [`By_thread] mode each worker counts
   only the events of threads it owns — broadcast copies replayed for
   their side effects are excluded, so the total equals the sequential
   event count whatever [jobs] is. *)
let replay_parallel (type a) ~pool ~jobs ~shards
    (module M : S with type state = a) =
  if jobs < 1 then invalid_arg "Tool.replay_parallel: jobs < 1";
  if jobs = 1 || Array.length shards.Shards.chunks = 0 then
    replay_chunks_sequential ~shards (module M)
  else
    match M.sharding with
    | `By_chunk -> replay_by_chunk ~pool ~jobs ~shards (module M)
    | `By_thread -> replay_by_thread ~pool ~jobs ~shards (module M)
