type t = {
  name : string;
  on_event : Aprof_trace.Event.t -> unit;
  space_words : unit -> int;
  summary : unit -> string;
}

type factory = { tool_name : string; create : unit -> t }

let replay tool trace = Aprof_util.Vec.iter tool.on_event trace

let replay_stream tool source =
  Aprof_trace.Trace_stream.iter tool.on_event source

let sink tool = Aprof_trace.Trace_stream.sink_of_fun tool.on_event
