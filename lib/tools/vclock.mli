(** Vector clocks over dense thread ids, the happens-before machinery of
    the race detector. *)

type t

(** [create ()] is the zero clock. *)
val create : unit -> t

(** [get c tid] is the component for [tid] (0 if never touched). *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** [tick c tid] increments [tid]'s component and returns its new value. *)
val tick : t -> int -> int

(** [join dst src] sets [dst] to the pointwise maximum. *)
val join : t -> t -> unit

val copy : t -> t

(** [reset c] zeroes every component in place, keeping the allocated
    capacity — recycling for the read-vector pool of the race detector. *)
val reset : t -> unit

(** [leq a b] is the pointwise order: every component of [a] is <= the
    corresponding component of [b]. *)
val leq : t -> t -> bool

(** [size c] is the number of allocated components (space accounting). *)
val size : t -> int

val pp : Format.formatter -> t -> unit
