(* The original vector-clock race detector, kept verbatim as the test
   oracle for the epoch-based {!Helgrind_lite}: one full [Vclock.t] read
   vector and a boxed lockset per cell, a hashtable from address to
   cell.  Slow (it is the reason the epoch rewrite exists) but simple
   enough to audit, and the differential suite pins the production
   detector's race reports to this one's on random programs. *)

module Event = Aprof_trace.Event

type race = {
  addr : int;
  kind : [ `Write_write | `Read_write | `Write_read ];
  prev_tid : int;
  tid : int;
}

type cell = {
  mutable wtid : int; (* last writer, -1 if none *)
  mutable wclk : int; (* last writer's clock at the write *)
  reads : Vclock.t; (* per-thread clock of the latest read *)
  mutable lockset : int list; (* Eraser candidate set; [-1] means virgin *)
}

type t = {
  thread_clocks : (int, Vclock.t) Hashtbl.t;
  sync_clocks : (int, Vclock.t) Hashtbl.t;
  cells : (int, cell) Hashtbl.t;
  held : (int, int list ref) Hashtbl.t; (* locks currently held per thread *)
  mutable lockset_empty : int; (* cells whose candidate set drained *)
  mutable race_list : race list;
  seen : (int * [ `Write_write | `Read_write | `Write_read ], unit) Hashtbl.t;
}

let create () =
  {
    thread_clocks = Hashtbl.create 8;
    sync_clocks = Hashtbl.create 32;
    cells = Hashtbl.create 4096;
    held = Hashtbl.create 8;
    lockset_empty = 0;
    race_list = [];
    seen = Hashtbl.create 64;
  }

let thread_clock t tid =
  match Hashtbl.find_opt t.thread_clocks tid with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    ignore (Vclock.tick c tid);
    Hashtbl.add t.thread_clocks tid c;
    c

let sync_clock t id =
  match Hashtbl.find_opt t.sync_clocks id with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    Hashtbl.add t.sync_clocks id c;
    c

let cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> c
  | None ->
    let c = { wtid = -1; wclk = 0; reads = Vclock.create (); lockset = [ -1 ] } in
    Hashtbl.add t.cells addr c;
    c

let held_locks t tid =
  match Hashtbl.find_opt t.held tid with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.held tid l;
    l

let refine_lockset t tid c =
  let held = !(held_locks t tid) in
  let before = c.lockset in
  (match before with
  | [ -1 ] -> c.lockset <- held
  | locks -> c.lockset <- List.filter (fun l -> List.mem l held) locks);
  if c.lockset = [] && before <> [] then t.lockset_empty <- t.lockset_empty + 1

let report t addr kind prev_tid tid =
  let key = (addr, kind) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.race_list <- { addr; kind; prev_tid; tid } :: t.race_list
  end

let on_write t tid addr =
  let c = cell t addr in
  refine_lockset t tid c;
  let clk = thread_clock t tid in
  (* write-write: previous write must happen-before this one. *)
  if c.wtid >= 0 && c.wtid <> tid && c.wclk > Vclock.get clk c.wtid then
    report t addr `Write_write c.wtid tid;
  (* read-write: every previous read must happen-before this write. *)
  if not (Vclock.leq c.reads clk) then begin
    let offender = ref tid in
    for rtid = 0 to Vclock.size c.reads - 1 do
      if rtid <> tid && Vclock.get c.reads rtid > Vclock.get clk rtid then
        offender := rtid
    done;
    report t addr `Read_write !offender tid
  end;
  c.wtid <- tid;
  c.wclk <- Vclock.get clk tid;
  (* writes subsume reads: restart read tracking *)
  for rtid = 0 to Vclock.size c.reads - 1 do
    Vclock.set c.reads rtid 0
  done

let on_read t tid addr =
  let c = cell t addr in
  refine_lockset t tid c;
  let clk = thread_clock t tid in
  if c.wtid >= 0 && c.wtid <> tid && c.wclk > Vclock.get clk c.wtid then
    report t addr `Write_read c.wtid tid;
  Vclock.set c.reads tid (Vclock.get clk tid)

let on_event t = function
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } -> on_write t tid addr
  | Event.Kernel_to_user { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_write t tid a
    done
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_read t tid a
    done
  | Event.Release { tid; lock } ->
    let clk = thread_clock t tid in
    Vclock.join (sync_clock t lock) clk;
    ignore (Vclock.tick clk tid);
    let held = held_locks t tid in
    held := List.filter (fun l -> l <> lock) !held
  | Event.Acquire { tid; lock } ->
    Vclock.join (thread_clock t tid) (sync_clock t lock);
    let held = held_locks t tid in
    if not (List.mem lock !held) then held := lock :: !held
  | Event.Thread_start { tid } -> ignore (thread_clock t tid)
  | Event.Call _ | Event.Return _ | Event.Block _ | Event.Alloc _
  | Event.Free _ | Event.Thread_exit _ | Event.Switch_thread _ ->
    ()

let races t = List.rev t.race_list
