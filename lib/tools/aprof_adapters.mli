(** {!Tool} adapters for the input-sensitive profilers of [aprof_core],
    so they line up next to the comparator tools in the Table 1 harness. *)

(** The rms-only baseline profiler (the paper's [aprof] column). *)
val aprof_rms : Tool.factory

(** Thread-sharded parallel replay of the rms profiler: broadcast is
    [Free] only (the one cross-thread rms effect).  Merging finishes
    both profilers.  The drms profiler has no such module — its
    write-timestamp order is global, see DESIGN.md. *)
module Rms_mergeable : Tool.S with type state = Aprof_core.Rms_profiler.t

(** The full drms profiler (the paper's [aprof-drms] column). *)
val aprof_drms : Tool.factory
