(** {!Tool} adapters for the input-sensitive profilers of [aprof_core],
    so they line up next to the comparator tools in the Table 1 harness. *)

(** The rms-only baseline profiler (the paper's [aprof] column). *)
val aprof_rms : Tool.factory

(** Thread-sharded parallel replay of the rms profiler: broadcast is
    [Free] only (the one cross-thread rms effect).  Merging finishes
    both profilers. *)
module Rms_mergeable : Tool.S with type state = Aprof_core.Rms_profiler.t

(** The full drms profiler (the paper's [aprof-drms] column). *)
val aprof_drms : Tool.factory

(** Thread-sharded parallel replay of the drms profiler.  The global
    write-timestamp order is preserved by broadcasting every event that
    ticks the counter or stamps the write shadow
    ({!Aprof_core.Drms_profiler.shard_broadcast}); each shard then
    computes exactly the sequential profile of its own threads — see
    {!Aprof_core.Drms_profiler.set_owner} for the argument.  [-j N ≡
    -j 1] is enforced by the parallel differential suite. *)
module Drms_mergeable : Tool.S with type state = Aprof_core.Drms_profiler.t

(** Thread-sharded parallel replay of the naive set-based drms oracle
    (broadcast: writes, kernel fills, frees — it keeps no clock), so
    [replay --profiler naive -j N] shards too. *)
module Naive_mergeable : Tool.S with type state = Aprof_core.Naive_drms.t
