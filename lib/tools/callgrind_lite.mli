(** A callgrind-style call-graph profiler: exclusive and inclusive
    basic-block costs per routine and per call-graph edge, from the same
    event stream as the other tools.  Costs follow {!Aprof_core.Cost_model}. *)

type routine_costs = {
  routine : int;
  calls : int;
  exclusive : int;  (** cost in the routine's own frames *)
  inclusive : int;  (** cost including completed descendants *)
}

type edge_costs = {
  caller : int;  (** -1 for calls from the thread's toplevel *)
  callee : int;
  count : int;
  edge_inclusive : int;
}

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit

(** [on_batch t b] is {!on_event} over the packed events of [b],
    dispatching on raw tags without constructing variants. *)
val on_batch : t -> Aprof_trace.Event.Batch.t -> unit

(** [routine_costs t] sorted by decreasing inclusive cost.  Pending
    activations contribute on [Return] only; call once the trace ended. *)
val routine_costs : t -> routine_costs list

(** [edges t] sorted by decreasing inclusive cost. *)
val edges : t -> edge_costs list

(** [merge ~into src] adds [src]'s per-routine and per-edge costs into
    [into].  Pending (unreturned) frames transfer only for threads
    [into] has not seen — merging halves of one thread's stack is
    rejected, as thread-sharded replays never produce that. *)
val merge : into:t -> t -> unit

(** [tool_of t] wraps existing state; [tool ()] makes a fresh one. *)
val tool_of : t -> Tool.t

val tool : unit -> Tool.t
val factory : Tool.factory

module Mergeable : Tool.S with type state = t
