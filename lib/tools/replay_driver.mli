(** Trace-file replay, factored out of the [aprof replay] command so the
    failure-isolation and salvage behavior is testable as a library.

    The driver replays one or more recorded trace files (binary or text,
    auto-detected) through a profiler — and optionally through every
    standard analysis tool — and returns everything as data: profiles
    merged over the files that decoded, per-file drop reports from
    salvage mode, buffered tool summaries, and per-file errors.  It
    never writes to any channel, so a caller can order and route the
    output after the fact — in particular, nothing of a file that failed
    mid-replay is ever surfaced as if it were complete.

    Failure isolation: a {!Aprof_trace.Trace_stream.Decode_error} or
    [Sys_error] while replaying one file discards that file's partial
    state and is recorded in its {!file_report}; every other file still
    replays.  [keep_going] additionally salvages damaged binary files
    chunk-by-chunk ({!Aprof_trace.Trace_codec.read}), recording what was
    dropped instead of failing the file. *)

type profiler = [ `Drms | `Naive | `Rms ]

(** One tool's buffered result on one file. *)
type tool_run = {
  tool_name : string;
  summary : string;  (** the summary line(s), unprinted *)
  tool_events : int;
  tool_seconds : float;
}

(** What happened to one input file.  [error = Some _] means the file
    contributed nothing to the merged profile (and ran no tools);
    [drops] are the regions salvage skipped, in file order — a file can
    have drops and still no error, which is a successful salvage. *)
type file_report = {
  path : string;
  format : string;
      (** what the file carries: ["text"], ["binary-vN"] (the trace
          format version), or ["unknown"] when the header is unreadable *)
  events : int;
  seconds : float;
  drops : Aprof_trace.Trace_codec.drop list;
  error : string option;
  tool_runs : tool_run list;
}

type t = {
  files : file_report list;  (** in input order *)
  profile : Aprof_core.Profile.t;  (** merged over the files that decoded *)
  names : (int, string) Hashtbl.t;
  events : int;  (** total events profiled *)
  seconds : float;
  failed : bool;  (** some file has [error = Some _] *)
}

(** [replay ~now paths] replays every file in [paths].

    [jobs] (default 1) bounds parallelism: several files replay
    concurrently (one profiler instance per file, profiles merged), and
    a single binary file with a chunk index shards across workers
    through the work-stealing engine ({!Tool.replay_parallel}) for
    every profiler — drms, rms and naive all have mergeable adapters.
    [keep_going] (default false) switches damaged binary files to chunk
    salvage instead of failing them; salvage is a sequential read path,
    so it also disables the sharded replay.
    [now] supplies wall-clock timestamps (e.g. [Unix.gettimeofday]) —
    a parameter because this library does not link unix.
    @raise Invalid_argument when [jobs < 1]. *)
val replay :
  ?jobs:int ->
  ?profiler:profiler ->
  ?with_tools:bool ->
  ?keep_going:bool ->
  now:(unit -> float) ->
  string list ->
  t
