type t = { mutable comps : int array }

let create () = { comps = [||] }

(* Grow to exactly [tid + 1] components.  No capacity doubling: clocks
   join each other in both directions, and doubling on either side of an
   asymmetric join makes the two lengths leapfrog exponentially. *)
let ensure t tid =
  let n = Array.length t.comps in
  if tid >= n then begin
    let comps = Array.make (max (tid + 1) 4) 0 in
    Array.blit t.comps 0 comps 0 n;
    t.comps <- comps
  end

let get t tid = if tid < Array.length t.comps then t.comps.(tid) else 0

let set t tid v =
  ensure t tid;
  t.comps.(tid) <- v

let tick t tid =
  ensure t tid;
  t.comps.(tid) <- t.comps.(tid) + 1;
  t.comps.(tid)

let join dst src =
  ensure dst (Array.length src.comps - 1);
  Array.iteri (fun i v -> if v > dst.comps.(i) then dst.comps.(i) <- v) src.comps

let copy t = { comps = Array.copy t.comps }

let reset t = Array.fill t.comps 0 (Array.length t.comps) 0

let leq a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > get b i then ok := false) a.comps;
  !ok

let size t = Array.length t.comps

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.comps)))
