(** Hash-consed lock sets for the race detector's Eraser machinery.

    Every distinct set of lock ids is interned once and named by a small
    dense int, so a shadow cell's candidate lockset is a single
    immediate word and the per-access refinement is a memoized
    intersection of two ids.  All operations are amortized O(1) per
    distinct (id, operand) pair; the table grows with the program's
    lock-nesting structure, not its event count. *)

type t

(** The id of the empty set, in every table. *)
val empty : int

(** The largest admissible lock id: memo keys pack the lock operand
    into 31 bits, so [intern]/[add]/[remove] reject anything outside
    [[0, max_lock]] (the trace decode edge enforces the same bound). *)
val max_lock : int

val create : unit -> t

(** [intern t locks] is the id of the set of [locks] (order and
    duplicates ignored).
    @raise Invalid_argument on a lock id outside [[0, max_lock]]. *)
val intern : t -> int list -> int

(** [add t id lock] is the id of [id ∪ {lock}].
    @raise Invalid_argument on a lock id outside [[0, max_lock]]. *)
val add : t -> int -> int -> int

(** [remove t id lock] is the id of [id ∖ {lock}].
    @raise Invalid_argument on a lock id outside [[0, max_lock]]. *)
val remove : t -> int -> int -> int

(** [inter t a b] is the id of [a ∩ b]. *)
val inter : t -> int -> int -> int

val mem : t -> int -> int -> bool
val cardinal : t -> int -> int

(** [to_list t id] is the set, sorted ascending. *)
val to_list : t -> int -> int list

(** [count t] is the number of distinct interned sets. *)
val count : t -> int

val space_words : t -> int
