module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

type routine_costs = {
  routine : int;
  calls : int;
  exclusive : int;
  inclusive : int;
}

type edge_costs = {
  caller : int;
  callee : int;
  count : int;
  edge_inclusive : int;
}

type frame = {
  rtn : int;
  caller : int;
  mutable own : int; (* cost charged while this frame was on top *)
  mutable children : int; (* inclusive cost of completed children *)
}

type racc = { mutable calls : int; mutable excl : int; mutable incl : int }
type eacc = { mutable cnt : int; mutable einc : int }

type t = {
  stacks : (int, frame Vec.t) Hashtbl.t;
  by_routine : (int, racc) Hashtbl.t;
  by_edge : (int * int, eacc) Hashtbl.t;
}

let create () =
  {
    stacks = Hashtbl.create 8;
    by_routine = Hashtbl.create 64;
    by_edge = Hashtbl.create 64;
  }

let stack t tid =
  match Hashtbl.find_opt t.stacks tid with
  | Some s -> s
  | None ->
    let s = Vec.create () in
    Hashtbl.add t.stacks tid s;
    s

let charge t tid units =
  let s = stack t tid in
  if not (Vec.is_empty s) then begin
    let top = Vec.top s in
    top.own <- top.own + units
  end

let racc t rtn =
  match Hashtbl.find_opt t.by_routine rtn with
  | Some r -> r
  | None ->
    let r = { calls = 0; excl = 0; incl = 0 } in
    Hashtbl.add t.by_routine rtn r;
    r

let eacc t key =
  match Hashtbl.find_opt t.by_edge key with
  | Some e -> e
  | None ->
    let e = { cnt = 0; einc = 0 } in
    Hashtbl.add t.by_edge key e;
    e

let on_event t e =
  let cost = Aprof_core.Cost_model.cost_increment e in
  (match e with
  | Event.Call { tid; routine } ->
    let s = stack t tid in
    let caller = if Vec.is_empty s then -1 else (Vec.top s).rtn in
    Vec.push s { rtn = routine; caller; own = 0; children = 0 };
    (racc t routine).calls <- (racc t routine).calls + 1
  | Event.Return { tid } ->
    let s = stack t tid in
    if Vec.is_empty s then invalid_arg "Callgrind_lite: return without call";
    let fr = Vec.pop s in
    let inclusive = fr.own + fr.children in
    let r = racc t fr.rtn in
    r.excl <- r.excl + fr.own;
    r.incl <- r.incl + inclusive;
    let edge = eacc t (fr.caller, fr.rtn) in
    edge.cnt <- edge.cnt + 1;
    edge.einc <- edge.einc + inclusive;
    if not (Vec.is_empty s) then begin
      let parent = Vec.top s in
      parent.children <- parent.children + inclusive
    end
  | Event.Read { tid; _ }
  | Event.Write { tid; _ }
  | Event.Block { tid; _ } ->
    charge t tid cost
  | Event.User_to_kernel _ | Event.Kernel_to_user _ | Event.Acquire _
  | Event.Release _ | Event.Alloc _ | Event.Free _ | Event.Thread_start _
  | Event.Thread_exit _ | Event.Switch_thread _ ->
    ());
  (* The Call event's own dispatch cost belongs to the callee. *)
  match e with
  | Event.Call { tid; _ } -> charge t tid cost
  | _ -> ()

(* Packed-field twin of [on_event]; tag literals are {!Event.Batch}'s:
   1 Call, 2 Return, 3 Read, 4 Write, 5 Block.  The Call arm charges the
   dispatch cost after pushing, so it lands on the callee, exactly as
   the two-step variant dispatch above does. *)
let on_raw t ~tag ~tid ~arg =
  match tag with
  | 1 ->
    let s = stack t tid in
    let caller = if Vec.is_empty s then -1 else (Vec.top s).rtn in
    Vec.push s { rtn = arg; caller; own = 0; children = 0 };
    let r = racc t arg in
    r.calls <- r.calls + 1;
    charge t tid 1
  | 2 ->
    let s = stack t tid in
    if Vec.is_empty s then invalid_arg "Callgrind_lite: return without call";
    let fr = Vec.pop s in
    let inclusive = fr.own + fr.children in
    let r = racc t fr.rtn in
    r.excl <- r.excl + fr.own;
    r.incl <- r.incl + inclusive;
    let edge = eacc t (fr.caller, fr.rtn) in
    edge.cnt <- edge.cnt + 1;
    edge.einc <- edge.einc + inclusive;
    if not (Vec.is_empty s) then begin
      let parent = Vec.top s in
      parent.children <- parent.children + inclusive
    end
  | 3 | 4 -> charge t tid 1
  | 5 -> charge t tid arg
  | _ -> ()

let on_batch t b =
  Event.Batch.iter (fun tag tid arg _len -> on_raw t ~tag ~tid ~arg) b

let routine_costs t =
  Hashtbl.fold
    (fun routine r acc ->
      { routine; calls = r.calls; exclusive = r.excl; inclusive = r.incl } :: acc)
    t.by_routine []
  |> List.sort (fun a b -> compare b.inclusive a.inclusive)

let edges t =
  Hashtbl.fold
    (fun (caller, callee) e acc ->
      { caller; callee; count = e.cnt; edge_inclusive = e.einc } :: acc)
    t.by_edge []
  |> List.sort (fun a b -> compare b.edge_inclusive a.edge_inclusive)

let space_words t =
  let stack_words =
    Hashtbl.fold (fun _ s acc -> acc + (4 * Vec.length s)) t.stacks 0
  in
  stack_words + (4 * Hashtbl.length t.by_routine)
  + (4 * Hashtbl.length t.by_edge)

let merge ~into src =
  Hashtbl.iter
    (fun rtn (r : racc) ->
      let d = racc into rtn in
      d.calls <- d.calls + r.calls;
      d.excl <- d.excl + r.excl;
      d.incl <- d.incl + r.incl)
    src.by_routine;
  Hashtbl.iter
    (fun key (e : eacc) ->
      let d = eacc into key in
      d.cnt <- d.cnt + e.cnt;
      d.einc <- d.einc + e.einc)
    src.by_edge;
  (* Pending frames carry over only when the two halves saw disjoint
     threads — the invariant thread-sharding guarantees. *)
  Hashtbl.iter
    (fun tid s ->
      if not (Vec.is_empty s) then
        match Hashtbl.find_opt into.stacks tid with
        | Some s' when not (Vec.is_empty s') ->
          invalid_arg "Callgrind_lite.merge: thread seen by both halves"
        | _ -> Hashtbl.replace into.stacks tid s)
    src.stacks

let tool_of t =
  Tool.make ~name:"callgrind" ~on_event:(on_event t) ~on_batch:(on_batch t)
    ~space_words:(fun () -> space_words t)
    ~summary:(fun () ->
      Printf.sprintf "callgrind: %d routines, %d edges"
        (Hashtbl.length t.by_routine)
        (Hashtbl.length t.by_edge))
    ()

let tool () = tool_of (create ())

let factory = { Tool.tool_name = "callgrind"; create = tool }

module Mergeable = struct
  type state = t

  let name = "callgrind"
  let create = create
  let tool = tool_of
  let merge = merge

  (* Calls, returns and cost charges are all keyed by the event's own
     thread; nothing crosses threads. *)
  let broadcast = 0
  let sharding = `By_thread
  let set_owner _ _ = ()
end
