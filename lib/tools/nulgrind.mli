(** The null tool: consumes events, collecting nothing useful — the
    instrumentation-only baseline all slowdowns are normalized against,
    exactly the role [nulgrind] plays in Table 1. *)

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit

(** [on_batch t b] counts a whole batch in O(1). *)
val on_batch : t -> Aprof_trace.Event.Batch.t -> unit

(** [events t] is the number of events consumed. *)
val events : t -> int

(** [merge ~into src] adds [src]'s event count into [into]. *)
val merge : into:t -> t -> unit

(** [tool_of t] wraps existing state; [tool ()] makes a fresh one. *)
val tool_of : t -> Tool.t

val tool : unit -> Tool.t
val factory : Tool.factory

module Mergeable : Tool.S with type state = t
