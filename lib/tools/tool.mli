(** The common face of every trace-analysis tool, mirroring how the
    Valgrind tools of Table 1 share one instrumentation substrate: each
    tool consumes the same event stream and exposes its memory footprint
    for the space-overhead comparison.

    Tools have two entry points: the per-event [on_event] and the packed
    [on_batch].  The two must be observationally equivalent —
    [on_batch b] behaves exactly like [on_event] over the unpacked
    events of [b] — which the qcheck batch/per-event differential suite
    checks for every standard tool.  Replaying through [on_batch] is the
    hot path: tools with a native batch implementation process raw int
    fields without constructing variants. *)

type t = {
  name : string;
  on_event : Aprof_trace.Event.t -> unit;
  on_batch : Aprof_trace.Event.Batch.t -> unit;
      (** must not retain the batch: the producer recycles it *)
  space_words : unit -> int;
      (** current footprint of the tool's own data structures, in words *)
  summary : unit -> string;  (** one-paragraph human-readable result *)
}

(** A tool factory: fresh state per run. *)
type factory = { tool_name : string; create : unit -> t }

(** [make ~name ~on_event ~space_words ~summary ()] builds a tool.  When
    [?on_batch] is omitted it defaults to unpacking the batch through
    [on_event] — correct for every tool, so a native batch
    implementation is purely an optimization. *)
val make :
  ?on_batch:(Aprof_trace.Event.Batch.t -> unit) ->
  name:string ->
  on_event:(Aprof_trace.Event.t -> unit) ->
  space_words:(unit -> int) ->
  summary:(unit -> string) ->
  unit ->
  t

(** [replay tool trace] feeds every event. *)
val replay : t -> Aprof_trace.Trace.t -> unit

(** [replay_stream tool source] feeds every event of [source]
    incrementally, never materializing the trace. *)
val replay_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [replay_batches tool src] drains [src] through [on_batch] and
    returns the number of events replayed. *)
val replay_batches : t -> Aprof_trace.Trace_stream.batch_source -> int

(** [sink tool] views the tool as an event sink (close is a no-op). *)
val sink : t -> Aprof_trace.Trace_stream.sink

(** [batch_sink tool] views the tool as a batch sink (close is a
    no-op). *)
val batch_sink : t -> Aprof_trace.Trace_stream.batch_sink

(** {1 Mergeable tools}

    A mergeable tool exposes its state so that several instances can
    each replay a *part* of a trace and be combined afterwards: the
    trace is sharded by thread ([tid mod jobs] picks the owning
    worker), every worker replays its own threads' events plus the
    tool's broadcast events, and [merge] folds the partial states.

    [merge] must be associative, with a fresh [create ()] as identity,
    over states produced from thread-disjoint event streams — exactly
    what the shard filter yields.  [broadcast] is the bit mask (over
    {!Aprof_trace.Event.Batch} tags) of the events carrying cross-thread
    effects, which every worker must observe regardless of the owning
    thread: e.g. [Free] for the rms profiler (a free clears every
    thread's shadow stamps), nothing at all for nulgrind (whose count
    would otherwise double).  Globally-ordered tools (helgrind,
    aprof-drms) cannot be sharded this way and provide no such module —
    see DESIGN.md for the ordering argument. *)
module type S = sig
  type state

  val name : string
  val create : unit -> state

  (** [tool st] views the state as a plain {!t} feeding [st]. *)
  val tool : state -> t

  val merge : into:state -> state -> unit

  (** Tag mask of events every worker must see. *)
  val broadcast : int
end

(** [shard_keep ~jobs ~worker ~broadcast] is the per-event filter of
    worker [worker]: keep events of its own threads plus broadcast
    ones. *)
val shard_keep : jobs:int -> worker:int -> broadcast:int -> int -> int -> bool

(** [replay_parallel ~pool ~jobs ~open_source (module M)] replays a
    trace through [jobs] instances of [M], each draining its own batch
    source from [open_source ~worker] (workers run on [pool], so the
    source must be private to the worker — typically a separate channel
    on the same file), filtering with {!shard_keep}, and merges the
    partial states into the first.  Returns the merged state and the
    total number of events delivered post-filter (broadcast events
    count once per worker).  With [jobs = 1] this is exactly a
    sequential {!replay_batches}. *)
val replay_parallel :
  pool:Aprof_util.Par.t ->
  jobs:int ->
  open_source:(worker:int -> Aprof_trace.Trace_stream.batch_source) ->
  (module S with type state = 'a) ->
  'a * int
