(** The common face of every trace-analysis tool, mirroring how the
    Valgrind tools of Table 1 share one instrumentation substrate: each
    tool consumes the same event stream and exposes its memory footprint
    for the space-overhead comparison.

    Tools have two entry points: the per-event [on_event] and the packed
    [on_batch].  The two must be observationally equivalent —
    [on_batch b] behaves exactly like [on_event] over the unpacked
    events of [b] — which the qcheck batch/per-event differential suite
    checks for every standard tool.  Replaying through [on_batch] is the
    hot path: tools with a native batch implementation process raw int
    fields without constructing variants. *)

type t = {
  name : string;
  on_event : Aprof_trace.Event.t -> unit;
  on_batch : Aprof_trace.Event.Batch.t -> unit;
      (** must not retain the batch: the producer recycles it *)
  space_words : unit -> int;
      (** current footprint of the tool's own data structures, in words *)
  summary : unit -> string;  (** one-paragraph human-readable result *)
}

(** A tool factory: fresh state per run. *)
type factory = { tool_name : string; create : unit -> t }

(** [make ~name ~on_event ~space_words ~summary ()] builds a tool.  When
    [?on_batch] is omitted it defaults to unpacking the batch through
    [on_event] — correct for every tool, so a native batch
    implementation is purely an optimization. *)
val make :
  ?on_batch:(Aprof_trace.Event.Batch.t -> unit) ->
  name:string ->
  on_event:(Aprof_trace.Event.t -> unit) ->
  space_words:(unit -> int) ->
  summary:(unit -> string) ->
  unit ->
  t

(** [replay tool trace] feeds every event. *)
val replay : t -> Aprof_trace.Trace.t -> unit

(** [replay_stream tool source] feeds every event of [source]
    incrementally, never materializing the trace. *)
val replay_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [replay_batches tool src] drains [src] through [on_batch] and
    returns the number of events replayed. *)
val replay_batches : t -> Aprof_trace.Trace_stream.batch_source -> int

(** [sink tool] views the tool as an event sink (close is a no-op). *)
val sink : t -> Aprof_trace.Trace_stream.sink

(** [batch_sink tool] views the tool as a batch sink (close is a
    no-op). *)
val batch_sink : t -> Aprof_trace.Trace_stream.batch_sink
