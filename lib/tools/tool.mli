(** The common face of every trace-analysis tool, mirroring how the
    Valgrind tools of Table 1 share one instrumentation substrate: each
    tool consumes the same event stream and exposes its memory footprint
    for the space-overhead comparison. *)

type t = {
  name : string;
  on_event : Aprof_trace.Event.t -> unit;
  space_words : unit -> int;
      (** current footprint of the tool's own data structures, in words *)
  summary : unit -> string;  (** one-paragraph human-readable result *)
}

(** A tool factory: fresh state per run. *)
type factory = { tool_name : string; create : unit -> t }

(** [replay tool trace] feeds every event. *)
val replay : t -> Aprof_trace.Trace.t -> unit

(** [replay_stream tool source] feeds every event of [source]
    incrementally, never materializing the trace. *)
val replay_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [sink tool] views the tool as an event sink (close is a no-op). *)
val sink : t -> Aprof_trace.Trace_stream.sink
