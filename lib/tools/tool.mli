(** The common face of every trace-analysis tool, mirroring how the
    Valgrind tools of Table 1 share one instrumentation substrate: each
    tool consumes the same event stream and exposes its memory footprint
    for the space-overhead comparison.

    Tools have two entry points: the per-event [on_event] and the packed
    [on_batch].  The two must be observationally equivalent —
    [on_batch b] behaves exactly like [on_event] over the unpacked
    events of [b] — which the qcheck batch/per-event differential suite
    checks for every standard tool.  Replaying through [on_batch] is the
    hot path: tools with a native batch implementation process raw int
    fields without constructing variants. *)

type t = {
  name : string;
  on_event : Aprof_trace.Event.t -> unit;
  on_batch : Aprof_trace.Event.Batch.t -> unit;
      (** must not retain the batch: the producer recycles it *)
  space_words : unit -> int;
      (** current footprint of the tool's own data structures, in words *)
  summary : unit -> string;  (** one-paragraph human-readable result *)
}

(** A tool factory: fresh state per run. *)
type factory = { tool_name : string; create : unit -> t }

(** [make ~name ~on_event ~space_words ~summary ()] builds a tool.  When
    [?on_batch] is omitted it defaults to unpacking the batch through
    [on_event] — correct for every tool, so a native batch
    implementation is purely an optimization. *)
val make :
  ?on_batch:(Aprof_trace.Event.Batch.t -> unit) ->
  name:string ->
  on_event:(Aprof_trace.Event.t -> unit) ->
  space_words:(unit -> int) ->
  summary:(unit -> string) ->
  unit ->
  t

(** [replay tool trace] feeds every event. *)
val replay : t -> Aprof_trace.Trace.t -> unit

(** [replay_stream tool source] feeds every event of [source]
    incrementally, never materializing the trace. *)
val replay_stream : t -> Aprof_trace.Trace_stream.t -> unit

(** [replay_batches tool src] drains [src] through [on_batch] and
    returns the number of events replayed. *)
val replay_batches : t -> Aprof_trace.Trace_stream.batch_source -> int

(** [sink tool] views the tool as an event sink (close is a no-op). *)
val sink : t -> Aprof_trace.Trace_stream.sink

(** [batch_sink tool] views the tool as a batch sink (close is a
    no-op). *)
val batch_sink : t -> Aprof_trace.Trace_stream.batch_sink

(** {1 Mergeable tools}

    A mergeable tool exposes its state so that several instances can
    each replay a *part* of a trace and be combined afterwards.  How the
    trace is split is the tool's {!sharding} mode:

    - [`By_chunk]: any instance may replay any chunk of the trace, in
      any order — only valid for order-independent analyses (nulgrind's
      event count).  [broadcast] must be 0.
    - [`By_thread]: threads are partitioned over the instances; each
      instance replays its own threads' events, in trace order, plus
      every event whose tag is in [broadcast] — the events carrying
      cross-thread effects (e.g. [Free] for the rms profiler, the
      counter-ticking and write-stamping tags for the drms profiler).
      {!set_owner} tells a state which threads it owns before replay
      begins; tools whose handlers never need to distinguish foreign
      events (they are either harmless or intended globally) implement
      it as a no-op.

    [merge] must be associative, with a fresh [create ()] as identity,
    over states produced from such complementary part-streams. *)
module type S = sig
  type state

  val name : string
  val create : unit -> state

  (** [tool st] views the state as a plain {!t} feeding [st]. *)
  val tool : state -> t

  val merge : into:state -> state -> unit

  (** Tag mask of events every worker must see ([`By_thread] only). *)
  val broadcast : int

  val sharding : [ `By_chunk | `By_thread ]

  (** [set_owner st owns] tells [st] which threads it owns, before any
      event is fed.  A no-op for tools that need no distinction. *)
  val set_owner : state -> (int -> bool) -> unit
end

type sharding = [ `By_chunk | `By_thread ]

(** [shard_keep ~owns ~broadcast] is the per-event filter of a
    [`By_thread] shard: keep events of the owned threads plus broadcast
    ones. *)
val shard_keep : owns:(int -> bool) -> broadcast:int -> int -> int -> bool

(** {1 Chunked trace sources}

    The parallel engine schedules work in chunks — the unit of recorded
    I/O (and of the ATRI shard index) for trace files, a fixed event
    count for in-memory traces.  A {!Shards.t} describes the chunks
    (event count, tag mask, thread set — enough to plan a shard) and
    opens independent read sessions over them. *)
module Shards : sig
  type chunk = { events : int; tag_mask : int; tids : int array }

  (** One independent reader over the chunk source.  [read i] returns a
      batch source draining chunk [i] alone; it must be exhausted before
      the next [read] on the same session (sessions recycle one buffer).
      [names] accumulates the routine-name definitions seen by this
      session's reads.  Sessions are single-domain; open one per
      worker. *)
  type session = {
    names : (int, string) Hashtbl.t;
    read : int -> Aprof_trace.Trace_stream.batch_source;
    close : unit -> unit;
  }

  (** [open_session ?keep ()] opens an independent reader.  [keep tag
      tid] is applied inside the decode loop: events failing it are
      parsed but never surface in a batch — the [`By_thread] engine
      passes {!shard_keep} here so a shard's foreign, non-broadcast
      events are parse-only rather than filtered after the fact. *)
  type t = {
    chunks : chunk array;
    open_session : ?keep:(int -> int -> bool) -> unit -> session;
  }

  (** [of_file path] describes an indexed binary trace via its ATRI
      footer; sessions seek ({!Aprof_trace.Trace_codec.chunk_session}).
      [None] for text or index-less traces — callers fall back to
      sequential replay. *)
  val of_file : string -> t option

  (** [of_trace trace] slices an in-memory trace into synthetic chunks
      of [chunk_events] events (default 4096) — the test harness's way
      to drive the parallel engine without a file. *)
  val of_trace : ?chunk_events:int -> Aprof_trace.Trace.t -> t
end

(** [replay_parallel ~pool ~jobs ~shards (module M)] replays the trace
    behind [shards] through up to [jobs] instances of [M], scheduled by
    work stealing at chunk granularity ({!Aprof_util.Par.Ws}): an idle
    worker steals queued chunks ([`By_chunk]) or the remainder of
    another shard ([`By_thread]) instead of waiting behind a skewed
    thread.  Partial states merge into the first; partial name tables
    union.  Returns [(state, events, names)] where [events] counts each
    trace event exactly once — broadcast copies replayed for their side
    effects are not counted — so the total is independent of [jobs].
    With [jobs = 1] (or an empty chunk list) this is exactly a
    sequential {!replay_batches} over the chunks in file order: no
    filtering, no reordering — the [-j N ≡ -j 1] differential suite
    relies on it. *)
val replay_parallel :
  pool:Aprof_util.Par.t ->
  jobs:int ->
  shards:Shards.t ->
  (module S with type state = 'a) ->
  'a * int * (int, string) Hashtbl.t
