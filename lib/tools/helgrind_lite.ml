module Event = Aprof_trace.Event

type race = {
  addr : int;
  kind : [ `Write_write | `Read_write | `Write_read ];
  prev_tid : int;
  tid : int;
}

let kind_name = function
  | `Write_write -> "write-write"
  | `Read_write -> "read-write"
  | `Write_read -> "write-read"

let pp_race ppf r =
  Format.fprintf ppf "%s race on %#x between threads %d and %d"
    (kind_name r.kind) r.addr r.prev_tid r.tid

type cell = {
  mutable wtid : int; (* last writer, -1 if none *)
  mutable wclk : int; (* last writer's clock at the write *)
  reads : Vclock.t; (* per-thread clock of the latest read *)
  mutable lockset : int list; (* Eraser candidate set: locks held on every
                                 access so far; [-1] means "virgin" *)
}

type t = {
  thread_clocks : (int, Vclock.t) Hashtbl.t;
  sync_clocks : (int, Vclock.t) Hashtbl.t;
  cells : (int, cell) Hashtbl.t;
  held : (int, int list ref) Hashtbl.t; (* locks currently held per thread *)
  mutable lockset_empty : int; (* cells whose candidate set drained *)
  mutable race_list : race list;
  seen : (int * [ `Write_write | `Read_write | `Write_read ], unit) Hashtbl.t;
}

let create () =
  {
    thread_clocks = Hashtbl.create 8;
    sync_clocks = Hashtbl.create 32;
    cells = Hashtbl.create 4096;
    held = Hashtbl.create 8;
    lockset_empty = 0;
    race_list = [];
    seen = Hashtbl.create 64;
  }

let thread_clock t tid =
  match Hashtbl.find_opt t.thread_clocks tid with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    ignore (Vclock.tick c tid);
    Hashtbl.add t.thread_clocks tid c;
    c

let sync_clock t id =
  match Hashtbl.find_opt t.sync_clocks id with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    Hashtbl.add t.sync_clocks id c;
    c

let cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> c
  | None ->
    let c = { wtid = -1; wclk = 0; reads = Vclock.create (); lockset = [ -1 ] } in
    Hashtbl.add t.cells addr c;
    c

let held_locks t tid =
  match Hashtbl.find_opt t.held tid with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.held tid l;
    l

(* Eraser refinement: a cell's candidate lockset shrinks to the locks
   held on every access.  [-1] marks a virgin cell whose set is still
   "all locks". *)
let refine_lockset t tid c =
  let held = !(held_locks t tid) in
  let before = c.lockset in
  (match before with
  | [ -1 ] -> c.lockset <- held
  | locks -> c.lockset <- List.filter (fun l -> List.mem l held) locks);
  if c.lockset = [] && before <> [] then t.lockset_empty <- t.lockset_empty + 1

let report t addr kind prev_tid tid =
  let key = (addr, kind) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.race_list <- { addr; kind; prev_tid; tid } :: t.race_list
  end

let on_write t tid addr =
  let c = cell t addr in
  refine_lockset t tid c;
  let clk = thread_clock t tid in
  (* write-write: previous write must happen-before this one. *)
  if c.wtid >= 0 && c.wtid <> tid && c.wclk > Vclock.get clk c.wtid then
    report t addr `Write_write c.wtid tid;
  (* read-write: every previous read must happen-before this write. *)
  if not (Vclock.leq c.reads clk) then begin
    (* find one offending reader for the report *)
    let offender = ref tid in
    for rtid = 0 to Vclock.size c.reads - 1 do
      if rtid <> tid && Vclock.get c.reads rtid > Vclock.get clk rtid then
        offender := rtid
    done;
    report t addr `Read_write !offender tid
  end;
  c.wtid <- tid;
  c.wclk <- Vclock.get clk tid;
  (* writes subsume reads: restart read tracking *)
  for rtid = 0 to Vclock.size c.reads - 1 do
    Vclock.set c.reads rtid 0
  done

let on_read t tid addr =
  let c = cell t addr in
  refine_lockset t tid c;
  let clk = thread_clock t tid in
  if c.wtid >= 0 && c.wtid <> tid && c.wclk > Vclock.get clk c.wtid then
    report t addr `Write_read c.wtid tid;
  Vclock.set c.reads tid (Vclock.get clk tid)

let on_event t = function
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } -> on_write t tid addr
  | Event.Kernel_to_user { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_write t tid a
    done
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_read t tid a
    done
  | Event.Release { tid; lock } ->
    let clk = thread_clock t tid in
    Vclock.join (sync_clock t lock) clk;
    ignore (Vclock.tick clk tid);
    let held = held_locks t tid in
    held := List.filter (fun l -> l <> lock) !held
  | Event.Acquire { tid; lock } ->
    Vclock.join (thread_clock t tid) (sync_clock t lock);
    let held = held_locks t tid in
    if not (List.mem lock !held) then held := lock :: !held
  | Event.Thread_start { tid } -> ignore (thread_clock t tid)
  | Event.Call _ | Event.Return _ | Event.Block _ | Event.Alloc _
  | Event.Free _ | Event.Thread_exit _ | Event.Switch_thread _ ->
    ()

let races t = List.rev t.race_list

let space_words t =
  let vc_words tbl =
    Hashtbl.fold (fun _ c acc -> acc + Vclock.size c) tbl 0
  in
  (* Per-cell footprint, counting what the OCaml heap actually holds:
     hash bucket (3 words), cell record (1 header + 4 fields), read
     vector (header + components + wrapper), and 3 words per lockset
     link. *)
  let cell_words =
    Hashtbl.fold
      (fun _ c acc ->
        acc + 3 + 5 + (2 + Vclock.size c.reads) + (3 * List.length c.lockset))
      t.cells 0
  in
  vc_words t.thread_clocks + vc_words t.sync_clocks + cell_words

let tool () =
  let t = create () in
  Tool.make ~name:"helgrind" ~on_event:(on_event t)
    ~space_words:(fun () -> space_words t)
    ~summary:(fun () ->
      Printf.sprintf "helgrind: %d races on %d cells (%d drained locksets)"
        (List.length (races t))
        (Hashtbl.length t.cells) t.lockset_empty)
    ()

let factory = { Tool.tool_name = "helgrind"; create = tool }
