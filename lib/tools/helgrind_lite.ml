(* FastTrack-style happens-before race detection: the per-cell state is
   packed epochs instead of full vector clocks.

   An epoch is one immediate int, [clk lsl tid_bits lor tid] — a thread
   id and that thread's clock component at the access.  Each shadow cell
   holds the last-write epoch and a read state that is an epoch in the
   common case, promoted to a full [Vclock.t] only when genuinely
   concurrent reads are observed (and demoted back at the next write).
   The dominant access patterns — a thread re-reading or re-writing data
   it already touched this epoch — exit after two loads and a compare,
   without touching vector clocks, locksets, or hashtables.

   The cell store is the {!Shadow_memory} page table: the shadow word at
   an address is (arena index + 1), and the arena is three parallel int
   arrays (write epoch, read state, lockset id), so a cell costs three
   words instead of a boxed record + hashtable bucket + clock vectors.
   Locksets are hash-consed in a {!Lockset} table: candidate sets are
   small int ids and the Eraser refinement is a memoized intersection.

   Equivalence with the full-vector-clock oracle ({!Helgrind_ref}): the
   epoch read state prunes exactly the reads that happen-before a
   retained read, and by vector-clock transitivity a pruned read can
   only race with a later write when its dominator does too — so races
   are detected at the same events, with the same (addr, kind, accessor)
   triples; the differential suite pins this on random programs.  The
   same-epoch exits skip the Eraser lockset refinement: a same-epoch
   access adds no happens-before information, and with an unchanged held
   set no lockset information either, so only the reported
   drained-lockset count can differ from refine-on-every-access, never a
   race. *)

module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory
module Vec = Aprof_util.Vec

type race = {
  addr : int;
  kind : [ `Write_write | `Read_write | `Write_read ];
  prev_tid : int;
  tid : int;
}

let kind_name = function
  | `Write_write -> "write-write"
  | `Read_write -> "read-write"
  | `Write_read -> "write-read"

let pp_race ppf r =
  Format.fprintf ppf "%s race on %#x between threads %d and %d"
    (kind_name r.kind) r.addr r.prev_tid r.tid

(* 16 bits of thread id leave 46 clock bits on 64-bit ints: a thread
   would need 2^46 release operations to overflow. *)
let tid_bits = 16
let tid_mask = (1 lsl tid_bits) - 1
let max_tid = tid_mask

(* The decode edge (Event.Batch.validate, Event.of_line) enforces the
   same bound, so no decoded trace can reach the range check in
   [thread] — only direct API callers can. *)
let () = assert (max_tid = Event.max_tid)

type thread = {
  clk : Vclock.t;
  mutable held : int; (* interned id of the locks currently held *)
}

(* Cell lockset ids, stored in [ls]: [-1] marks a virgin cell whose
   Eraser candidate set is still "all locks". *)
let ls_virgin = -1

type t = {
  shadow : Shadow.t; (* addr -> cell-arena index + 1, 0 = no cell *)
  (* The cell arena, three ints per cell.  [w] is the last-write epoch
     (0 = never written); [r] is 0 (no reads since the last write), a
     packed epoch (> 0, single last read), or [-(vid + 1)] naming a
     promoted read vector in [rvecs]. *)
  mutable w : int array;
  mutable r : int array;
  mutable ls : int array;
  mutable ncells : int;
  rvecs : Vclock.t Vec.t; (* promoted read vectors *)
  free_rvecs : int Vec.t; (* recycled [rvecs] slots, zeroed *)
  mutable promotions : int; (* lifetime count, for the summary *)
  (* Per-thread state, dense by tid.  [epochs.(tid)] caches the packed
     epoch of thread [tid] (0 = thread unseen) so the same-epoch exits
     never dereference the thread record. *)
  mutable epochs : int array;
  mutable threads : thread option array;
  sync_clocks : (int, Vclock.t) Hashtbl.t;
  locks : Lockset.t;
  mutable drained : int; (* cells whose candidate lockset emptied *)
  mutable race_count : int;
  mutable race_list : race list;
  seen : (int, unit) Hashtbl.t; (* (addr lsl 2) lor kind-code *)
}

let create () =
  {
    shadow = Shadow.create ();
    w = Array.make 4096 0;
    r = Array.make 4096 0;
    ls = Array.make 4096 ls_virgin;
    ncells = 0;
    rvecs = Vec.create ();
    free_rvecs = Vec.create ();
    promotions = 0;
    epochs = Array.make 16 0;
    threads = Array.make 16 None;
    sync_clocks = Hashtbl.create 32;
    locks = Lockset.create ();
    drained = 0;
    race_count = 0;
    race_list = [];
    seen = Hashtbl.create 64;
  }

let thread t tid =
  if tid < 0 || tid > max_tid then
    invalid_arg (Printf.sprintf "Helgrind_lite: thread id %d out of range" tid);
  if tid >= Array.length t.epochs then begin
    let n = Array.length t.epochs in
    let n' = max (tid + 1) (2 * n) in
    let epochs = Array.make n' 0 in
    Array.blit t.epochs 0 epochs 0 n;
    t.epochs <- epochs;
    let threads = Array.make n' None in
    Array.blit t.threads 0 threads 0 n;
    t.threads <- threads
  end;
  match t.threads.(tid) with
  | Some th -> th
  | None ->
    let clk = Vclock.create () in
    ignore (Vclock.tick clk tid);
    let th = { clk; held = Lockset.empty } in
    t.threads.(tid) <- Some th;
    t.epochs.(tid) <- (1 lsl tid_bits) lor tid;
    th

let sync_clock t id =
  match Hashtbl.find_opt t.sync_clocks id with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    Hashtbl.add t.sync_clocks id c;
    c

let kind_code = function `Write_write -> 0 | `Read_write -> 1 | `Write_read -> 2

let report t addr kind prev_tid tid =
  let key = (addr lsl 2) lor kind_code kind in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.race_count <- t.race_count + 1;
    t.race_list <- { addr; kind; prev_tid; tid } :: t.race_list
  end

(* Eraser refinement, on slow-path accesses: the candidate set shrinks
   to its intersection with the locks held now.  Fast outs for the two
   ubiquitous cases (set already drained; set equals the held set) keep
   the memo table out of steady-state loops. *)
let refine t i held =
  let old = Array.unsafe_get t.ls i in
  if old <> held && old <> Lockset.empty then begin
    let nw = if old = ls_virgin then held else Lockset.inter t.locks old held in
    if nw <> old then begin
      Array.unsafe_set t.ls i nw;
      if nw = Lockset.empty then t.drained <- t.drained + 1
    end
  end

let new_cell t addr =
  let i = t.ncells in
  if i = Array.length t.w then begin
    let n' = 2 * i in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 i;
      a'
    in
    t.w <- grow t.w 0;
    t.r <- grow t.r 0;
    t.ls <- grow t.ls ls_virgin
  end;
  t.ncells <- i + 1;
  Shadow.set t.shadow addr (i + 1);
  i

let rvec t id = Vec.get t.rvecs id

let alloc_rvec t =
  t.promotions <- t.promotions + 1;
  if Vec.is_empty t.free_rvecs then begin
    Vec.push t.rvecs (Vclock.create ());
    Vec.length t.rvecs - 1
  end
  else Vec.pop t.free_rvecs

let free_rvec t id =
  Vclock.reset (rvec t id);
  Vec.push t.free_rvecs id

(* ----- the slow paths -------------------------------------------------- *)

let read_slow t tid i addr =
  let th = thread t tid in
  refine t i th.held;
  let clk = th.clk in
  let w0 = Array.unsafe_get t.w i in
  (if w0 <> 0 then begin
     let wt = w0 land tid_mask in
     if wt <> tid && w0 lsr tid_bits > Vclock.get clk wt then
       report t addr `Write_read wt tid
   end);
  let ep = t.epochs.(tid) in
  let re = Array.unsafe_get t.r i in
  if re = 0 then Array.unsafe_set t.r i ep
  else if re > 0 then begin
    let rt = re land tid_mask in
    (* A read that happens-before this one is subsumed: by clock
       transitivity it can only race with a later write when this read
       does too, so the epoch replaces it.  Genuinely concurrent reads
       promote to a vector. *)
    if rt = tid || re lsr tid_bits <= Vclock.get clk rt then
      Array.unsafe_set t.r i ep
    else begin
      let vid = alloc_rvec t in
      let v = rvec t vid in
      Vclock.set v rt (re lsr tid_bits);
      Vclock.set v tid (Vclock.get clk tid);
      Array.unsafe_set t.r i (-(vid + 1))
    end
  end
  else Vclock.set (rvec t (-re - 1)) tid (Vclock.get clk tid)

let write_slow t tid i addr =
  let th = thread t tid in
  refine t i th.held;
  let clk = th.clk in
  let w0 = Array.unsafe_get t.w i in
  (if w0 <> 0 then begin
     let wt = w0 land tid_mask in
     if wt <> tid && w0 lsr tid_bits > Vclock.get clk wt then
       report t addr `Write_write wt tid
   end);
  let re = Array.unsafe_get t.r i in
  (if re > 0 then begin
     let rt = re land tid_mask in
     if rt <> tid && re lsr tid_bits > Vclock.get clk rt then
       report t addr `Read_write rt tid
   end
   else if re < 0 then begin
     let vid = -re - 1 in
     let v = rvec t vid in
     (* The oracle's ascending scan keeps the last offender, i.e. the
        largest offending tid; mirror it so reports coincide. *)
     let offender = ref (-1) in
     for rtid = 0 to Vclock.size v - 1 do
       if rtid <> tid && Vclock.get v rtid > Vclock.get clk rtid then
         offender := rtid
     done;
     if !offender >= 0 then report t addr `Read_write !offender tid;
     (* Writes subsume reads: demote, recycling the vector. *)
     free_rvec t vid
   end);
  Array.unsafe_set t.w i t.epochs.(tid);
  Array.unsafe_set t.r i 0

(* ----- the hot paths --------------------------------------------------- *)

(* Arena indexes decoded from the shadow word are < ncells by
   construction, so the unsafe reads are in bounds; [epochs] is indexed
   only after explicit bounds checks on both ends — a negative or
   oversized tid falls through to the slow path, where [thread] rejects
   it — and 0 ("thread unseen") can never equal a nonzero cell state. *)

let on_read t tid addr =
  let idx = Shadow.get t.shadow addr in
  if idx = 0 then read_slow t tid (new_cell t addr) addr
  else begin
    let i = idx - 1 in
    let re = Array.unsafe_get t.r i in
    (* Read-same-epoch: the last read of this cell was by this thread in
       its current epoch.  No write intervened (a write zeroes [r]), the
       write-read verdict is monotone in the clock, and the read state
       update is idempotent — nothing observable is skipped. *)
    if
      re > 0
      && tid >= 0
      && tid < Array.length t.epochs
      && re = Array.unsafe_get t.epochs tid
    then ()
    else read_slow t tid i addr
  end

let on_write t tid addr =
  let idx = Shadow.get t.shadow addr in
  if idx = 0 then write_slow t tid (new_cell t addr) addr
  else begin
    let i = idx - 1 in
    (* Write-same-epoch: this thread already wrote this cell in its
       current epoch and nothing read it since, so the checks are
       vacuous and the update a no-op. *)
    if
      Array.unsafe_get t.r i = 0
      && tid >= 0
      && tid < Array.length t.epochs
      && Array.unsafe_get t.w i = Array.unsafe_get t.epochs tid
      && Array.unsafe_get t.w i <> 0
    then ()
    else write_slow t tid i addr
  end

let on_acquire t tid lock =
  let th = thread t tid in
  Vclock.join th.clk (sync_clock t lock);
  th.held <- Lockset.add t.locks th.held lock

let on_release t tid lock =
  let th = thread t tid in
  Vclock.join (sync_clock t lock) th.clk;
  let c = Vclock.tick th.clk tid in
  t.epochs.(tid) <- (c lsl tid_bits) lor tid;
  th.held <- Lockset.remove t.locks th.held lock

let on_event t = function
  | Event.Read { tid; addr } -> on_read t tid addr
  | Event.Write { tid; addr } -> on_write t tid addr
  | Event.Kernel_to_user { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_write t tid a
    done
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      on_read t tid a
    done
  | Event.Acquire { tid; lock } -> on_acquire t tid lock
  | Event.Release { tid; lock } -> on_release t tid lock
  | Event.Thread_start { tid } -> ignore (thread t tid)
  | Event.Call _ | Event.Return _ | Event.Block _ | Event.Alloc _
  | Event.Free _ | Event.Thread_exit _ | Event.Switch_thread _ ->
    ()

(* Packed-field dispatch for the batch pipeline; tag literals are
   {!Event.Batch}'s. *)
let on_raw t ~tag ~tid ~arg ~len =
  match tag with
  | 3 -> on_read t tid arg
  | 4 -> on_write t tid arg
  | 6 ->
    for a = arg to arg + len - 1 do
      on_read t tid a
    done
  | 7 ->
    for a = arg to arg + len - 1 do
      on_write t tid a
    done
  | 8 -> on_acquire t tid arg
  | 9 -> on_release t tid arg
  | 12 -> ignore (thread t tid)
  | _ -> ()

let on_batch t b =
  Event.Batch.iter (fun tag tid arg len -> on_raw t ~tag ~tid ~arg ~len) b

let races t = List.rev t.race_list

let space_words t =
  let rvec_words = ref 0 in
  Vec.iter (fun v -> rvec_words := !rvec_words + 2 + Vclock.size v) t.rvecs;
  let thread_words = ref (2 * Array.length t.epochs) in
  Array.iter
    (function
      | None -> ()
      | Some th -> thread_words := !thread_words + 4 + Vclock.size th.clk)
    t.threads;
  let sync_words =
    Hashtbl.fold (fun _ c acc -> acc + 3 + Vclock.size c) t.sync_clocks 0
  in
  (* Arena capacity (three int arrays), the shadow page table, promoted
     read vectors, locksets, thread and sync clocks. *)
  (3 * Array.length t.w)
  + Shadow.space_words t.shadow
  + !rvec_words + !thread_words + sync_words
  + Lockset.space_words t.locks

let summary t =
  Printf.sprintf
    "helgrind: %d races on %d cells (%d drained locksets, %d read-vector \
     promotions)"
    t.race_count t.ncells t.drained t.promotions

let render_report t =
  let buf = Buffer.create 256 in
  List.iter
    (fun r -> Buffer.add_string buf (Format.asprintf "%a@." pp_race r))
    (races t);
  Buffer.add_string buf (summary t);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let tool () =
  let t = create () in
  Tool.make ~name:"helgrind" ~on_event:(on_event t) ~on_batch:(on_batch t)
    ~space_words:(fun () -> space_words t)
    ~summary:(fun () -> summary t)
    ()

let factory = { Tool.tool_name = "helgrind"; create = tool }
