(* Incremental merge driver: the live-ingest sibling of
   {!Replay_driver}.  A replay owns its whole file; an ingest
   connection receives batches as they decode off a socket, so the
   driver is push-based — feed it batches, tell it when a trace ends,
   and it finishes the profiler and hands the completed trace's profile
   to [on_profile], then starts a fresh profiler for the next trace on
   the same connection.  An aborted trace (connection died, terminal
   decode error) discards the partial state without surfacing anything,
   the same all-or-nothing contract the replay driver keeps per file.

   Salvaged streams need the same orphaned-return filter as salvaged
   files: a dropped chunk can swallow the [Call]s whose activations a
   later chunk closes, and the orphaned [Return]s would pop an empty
   shadow stack and abort the profiler.  Per-thread call depth is
   tracked across the whole trace (it must already be correct when the
   first drop happens), and once a drop is noted every unmatched return
   is compacted out of the batch in place. *)

module Batch = Aprof_trace.Event.Batch
module Profile = Aprof_core.Profile

type profiler = Replay_driver.profiler

type instance =
  | Drms of Aprof_core.Drms_profiler.t
  | Rms of Aprof_core.Rms_profiler.t
  | Naive of Aprof_core.Naive_drms.t

type t = {
  kind : profiler;
  on_profile : profile:Profile.t -> events:int -> unit;
  mutable inst : instance;
  mutable events : int;  (* events of the current (partial) trace *)
  mutable salvaging : bool;  (* a drop was noted for the current trace *)
  depth : (int, int) Hashtbl.t;  (* per-thread call depth *)
}

let fresh = function
  | `Drms -> Drms (Aprof_core.Drms_profiler.create ())
  | `Rms -> Rms (Aprof_core.Rms_profiler.create ())
  | `Naive -> Naive (Aprof_core.Naive_drms.create ())

let create ?(profiler = (`Drms : profiler)) ~on_profile () =
  {
    kind = profiler;
    on_profile;
    inst = fresh profiler;
    events = 0;
    salvaging = false;
    depth = Hashtbl.create 8;
  }

(* Track per-thread call depth; once salvaging, additionally compact
   unmatched returns out of the batch (same filter as
   {!Replay_driver}'s, applied in place per batch). *)
let track_and_filter t b =
  let tags = Batch.tags b and tids = Batch.tids b in
  let args = Batch.args b and lens = Batch.lens b in
  let kept = ref 0 in
  let filtering = t.salvaging in
  for i = 0 to Batch.length b - 1 do
    let tag = Array.unsafe_get tags i in
    let tid = Array.unsafe_get tids i in
    let keep =
      if tag = Batch.tag_call then begin
        Hashtbl.replace t.depth tid
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.depth tid));
        true
      end
      else if tag = Batch.tag_return then begin
        match Hashtbl.find_opt t.depth tid with
        | Some d when d > 0 ->
          Hashtbl.replace t.depth tid (d - 1);
          true
        | _ -> not filtering  (* fatal downstream unless salvaging *)
      end
      else true
    in
    if keep && filtering then begin
      let j = !kept in
      if j < i then begin
        Array.unsafe_set tags j tag;
        Array.unsafe_set tids j tid;
        Array.unsafe_set args j (Array.unsafe_get args i);
        Array.unsafe_set lens j (Array.unsafe_get lens i)
      end;
      incr kept
    end
  done;
  if filtering then Batch.unsafe_set_length b !kept

let on_batch t b =
  track_and_filter t b;
  t.events <- t.events + Batch.length b;
  match t.inst with
  | Drms p -> Aprof_core.Drms_profiler.on_batch p b
  | Rms p -> Aprof_core.Rms_profiler.on_batch p b
  | Naive p -> Batch.iter_events (Aprof_core.Naive_drms.on_event p) b

let note_drop t = t.salvaging <- true

let reset t =
  t.inst <- fresh t.kind;
  t.events <- 0;
  t.salvaging <- false;
  Hashtbl.reset t.depth

let trace_end t =
  let profile =
    match t.inst with
    | Drms p -> Aprof_core.Drms_profiler.finish p
    | Rms p -> Aprof_core.Rms_profiler.finish p
    | Naive p -> Aprof_core.Naive_drms.finish p
  in
  let events = t.events in
  reset t;
  t.on_profile ~profile ~events

let abort t = reset t
let events t = t.events
let salvaging t = t.salvaging
