let aprof_rms =
  {
    Tool.tool_name = "aprof";
    create =
      (fun () ->
        let p = Aprof_core.Rms_profiler.create () in
        Tool.make ~name:"aprof"
          ~on_event:(Aprof_core.Rms_profiler.on_event p)
          ~on_batch:(Aprof_core.Rms_profiler.on_batch p)
          ~space_words:(fun () -> Aprof_core.Rms_profiler.space_words p)
          ~summary:(fun () ->
            let profile = Aprof_core.Rms_profiler.finish p in
            Printf.sprintf "aprof: %d activations over %d routines"
              (Aprof_core.Profile.total_activations profile)
              (List.length (Aprof_core.Profile.routines profile)))
          ());
  }

let aprof_drms =
  {
    Tool.tool_name = "aprof-drms";
    create =
      (fun () ->
        let p = Aprof_core.Drms_profiler.create () in
        Tool.make ~name:"aprof-drms"
          ~on_event:(Aprof_core.Drms_profiler.on_event p)
          ~on_batch:(Aprof_core.Drms_profiler.on_batch p)
          ~space_words:(fun () -> Aprof_core.Drms_profiler.space_words p)
          ~summary:(fun () ->
            let profile = Aprof_core.Drms_profiler.finish p in
            Printf.sprintf "aprof-drms: %d activations over %d routines"
              (Aprof_core.Profile.total_activations profile)
              (List.length (Aprof_core.Profile.routines profile)))
          ());
  }
