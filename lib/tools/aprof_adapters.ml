let rms_tool p =
  Tool.make ~name:"aprof"
    ~on_event:(Aprof_core.Rms_profiler.on_event p)
    ~on_batch:(Aprof_core.Rms_profiler.on_batch p)
    ~space_words:(fun () -> Aprof_core.Rms_profiler.space_words p)
    ~summary:(fun () ->
      let profile = Aprof_core.Rms_profiler.finish p in
      Printf.sprintf "aprof: %d activations over %d routines"
        (Aprof_core.Profile.total_activations profile)
        (List.length (Aprof_core.Profile.routines profile)))
    ()

let aprof_rms =
  {
    Tool.tool_name = "aprof";
    create = (fun () -> rms_tool (Aprof_core.Rms_profiler.create ()));
  }

module Rms_mergeable = struct
  type state = Aprof_core.Rms_profiler.t

  let name = "aprof"
  let create () = Aprof_core.Rms_profiler.create ()
  let tool = rms_tool
  let merge = Aprof_core.Rms_profiler.merge_into

  (* A free clears every thread's shadow stamps (see
     {!Aprof_core.Rms_profiler}), so every worker must see it; all
     other rms state is per-thread, and the global activation counter
     only feeds order comparisons between one thread's own stamps,
     which dropping foreign events preserves. *)
  let broadcast = 1 lsl Aprof_trace.Event.Batch.tag_free
  let sharding = `By_thread
  let set_owner _ _ = ()
end

let drms_tool p =
  Tool.make ~name:"aprof-drms"
    ~on_event:(Aprof_core.Drms_profiler.on_event p)
    ~on_batch:(Aprof_core.Drms_profiler.on_batch p)
    ~space_words:(fun () -> Aprof_core.Drms_profiler.space_words p)
    ~summary:(fun () ->
      let profile = Aprof_core.Drms_profiler.finish p in
      Printf.sprintf "aprof-drms: %d activations over %d routines"
        (Aprof_core.Profile.total_activations profile)
        (List.length (Aprof_core.Profile.routines profile)))
    ()

let aprof_drms =
  {
    Tool.tool_name = "aprof-drms";
    create = (fun () -> drms_tool (Aprof_core.Drms_profiler.create ()));
  }

module Drms_mergeable = struct
  type state = Aprof_core.Drms_profiler.t

  let name = "aprof-drms"
  let create () = Aprof_core.Drms_profiler.create ()
  let tool = drms_tool
  let merge = Aprof_core.Drms_profiler.merge_into

  (* Every counter-ticking event (Call, Switch_thread, Kernel_to_user)
     and every write-shadow mutation (Write, Kernel_to_user, Free) is
     broadcast, so each shard's clock stamps its own threads' accesses
     in the sequential order and its profile is exactly the sequential
     one restricted to the threads it owns — the ordering argument is
     in {!Aprof_core.Drms_profiler.set_owner} and DESIGN.md 4c. *)
  let broadcast = Aprof_core.Drms_profiler.shard_broadcast
  let sharding = `By_thread
  let set_owner = Aprof_core.Drms_profiler.set_owner
end

module Naive_mergeable = struct
  type state = Aprof_core.Naive_drms.t

  let name = "naive-drms"

  let create () = Aprof_core.Naive_drms.create ()

  let tool p =
    Tool.make ~name:"naive-drms"
      ~on_event:(Aprof_core.Naive_drms.on_event p)
      ~space_words:(fun () -> 0)
      ~summary:(fun () ->
        let profile = Aprof_core.Naive_drms.finish p in
        Printf.sprintf "naive-drms: %d activations"
          (Aprof_core.Profile.total_activations profile))
      ()

  let merge = Aprof_core.Naive_drms.merge_into

  (* The naive oracle keeps no clock — its cross-thread state is the
     last-writer table and the per-activation location sets, both driven
     only by writes, kernel fills and frees.  Foreign writes arriving
     through the ordinary handler are harmless: they update last_writer
     and deplete other threads' sets (intended), and touch otherwise
     only the foreign thread's own (never-read) state. *)
  let broadcast =
    let module B = Aprof_trace.Event.Batch in
    (1 lsl B.tag_write) lor (1 lsl B.tag_kernel_to_user)
    lor (1 lsl B.tag_free)

  let sharding = `By_thread
  let set_owner _ _ = ()
end
