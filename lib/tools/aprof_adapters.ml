let rms_tool p =
  Tool.make ~name:"aprof"
    ~on_event:(Aprof_core.Rms_profiler.on_event p)
    ~on_batch:(Aprof_core.Rms_profiler.on_batch p)
    ~space_words:(fun () -> Aprof_core.Rms_profiler.space_words p)
    ~summary:(fun () ->
      let profile = Aprof_core.Rms_profiler.finish p in
      Printf.sprintf "aprof: %d activations over %d routines"
        (Aprof_core.Profile.total_activations profile)
        (List.length (Aprof_core.Profile.routines profile)))
    ()

let aprof_rms =
  {
    Tool.tool_name = "aprof";
    create = (fun () -> rms_tool (Aprof_core.Rms_profiler.create ()));
  }

module Rms_mergeable = struct
  type state = Aprof_core.Rms_profiler.t

  let name = "aprof"
  let create () = Aprof_core.Rms_profiler.create ()
  let tool = rms_tool
  let merge = Aprof_core.Rms_profiler.merge_into

  (* A free clears every thread's shadow stamps (see
     {!Aprof_core.Rms_profiler}), so every worker must see it; all
     other rms state is per-thread, and the global activation counter
     only feeds order comparisons between one thread's own stamps,
     which dropping foreign events preserves. *)
  let broadcast = 1 lsl Aprof_trace.Event.Batch.tag_free
end

let aprof_drms =
  {
    Tool.tool_name = "aprof-drms";
    create =
      (fun () ->
        let p = Aprof_core.Drms_profiler.create () in
        Tool.make ~name:"aprof-drms"
          ~on_event:(Aprof_core.Drms_profiler.on_event p)
          ~on_batch:(Aprof_core.Drms_profiler.on_batch p)
          ~space_words:(fun () -> Aprof_core.Drms_profiler.space_words p)
          ~summary:(fun () ->
            let profile = Aprof_core.Drms_profiler.finish p in
            Printf.sprintf "aprof-drms: %d activations over %d routines"
              (Aprof_core.Profile.total_activations profile)
              (List.length (Aprof_core.Profile.routines profile)))
          ());
  }
