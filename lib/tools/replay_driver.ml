module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Batch = Aprof_trace.Event.Batch
module Profile = Aprof_core.Profile

type profiler = [ `Drms | `Rms | `Naive ]

type tool_run = {
  tool_name : string;
  summary : string;
  tool_events : int;
  tool_seconds : float;
}

type file_report = {
  path : string;
  format : string;
  events : int;
  seconds : float;
  drops : Codec.drop list;
  error : string option;
  tool_runs : tool_run list;
}

type t = {
  files : file_report list;
  profile : Profile.t;
  names : (int, string) Hashtbl.t;
  events : int;
  seconds : float;
  failed : bool;
}

(* What encoding a file carries, for the reports: the text format, or
   "binary-vN".  Unreadable or headerless files report "unknown" — the
   replay itself surfaces the actual error. *)
let trace_format path =
  match
    In_channel.with_open_bin path (fun ic ->
        match Codec.detect ic with
        | `Text -> "text"
        | `Binary -> Printf.sprintf "binary-v%d" (Codec.file_version ic))
  with
  | s -> s
  | exception (Stream.Decode_error _ | Sys_error _ | End_of_file) -> "unknown"

let union_names tables =
  let out = Hashtbl.create 64 in
  List.iter (Hashtbl.iter (fun k v -> Hashtbl.replace out k v)) tables;
  out

let drain batches on_batch =
  let rec loop n =
    match batches () with
    | None -> n
    | Some b ->
      on_batch b;
      loop (n + Batch.length b)
  in
  loop 0

(* A dropped chunk can swallow the [Call]s whose activations a later
   chunk closes; the orphaned [Return]s would then pop an empty shadow
   stack and abort every profiler.  Those returns belong to the regions
   the drop report already advertises, so salvage filters them out of
   the stream — compacting each batch in place, tracking per-thread
   call depth across the whole file.  On an undamaged file every return
   is matched and the stream passes through unchanged. *)
let drop_unmatched_returns batches =
  let depth = Hashtbl.create 8 in
  fun () ->
    match batches () with
    | None -> None
    | Some b ->
      let tags = Batch.tags b and tids = Batch.tids b in
      let args = Batch.args b and lens = Batch.lens b in
      let kept = ref 0 in
      for i = 0 to Batch.length b - 1 do
        let tag = Array.unsafe_get tags i in
        let tid = Array.unsafe_get tids i in
        let keep =
          if tag = Batch.tag_call then (
            Hashtbl.replace depth tid
              (1 + Option.value ~default:0 (Hashtbl.find_opt depth tid));
            true)
          else if tag = Batch.tag_return then (
            match Hashtbl.find_opt depth tid with
            | Some d when d > 0 ->
              Hashtbl.replace depth tid (d - 1);
              true
            | _ -> false)
          else true
        in
        if keep then (
          let j = !kept in
          if j < i then (
            Array.unsafe_set tags j tag;
            Array.unsafe_set tids j tid;
            Array.unsafe_set args j (Array.unsafe_get args i);
            Array.unsafe_set lens j (Array.unsafe_get lens i));
          incr kept)
      done;
      Batch.unsafe_set_length b !kept;
      Some b

(* Per-file source selection.  [drops] collects what salvage skipped;
   in [`Fail] mode it stays empty and the first malformation raises. *)
let open_batches ~keep_going ~drops path ic =
  match Codec.detect ic with
  | `Binary ->
    if keep_going then (
      let names, batches =
        Codec.read ~path ~on_corrupt:(`Skip (fun d -> drops := d :: !drops)) ic
      in
      (names, drop_unmatched_returns batches))
    else Codec.read ~path ~on_corrupt:`Fail ic
  | `Text ->
    (Hashtbl.create 1, Stream.batches_of_events (Stream.of_text_channel ic))

(* One trace file through one fresh profiler instance, sequentially. *)
let sequential_profile ~keep_going ~profiler ~drops path =
  In_channel.with_open_bin path (fun ic ->
      let names, batches = open_batches ~keep_going ~drops path ic in
      let n, profile =
        match profiler with
        | `Drms ->
          let p = Aprof_core.Drms_profiler.create () in
          let n = drain batches (Aprof_core.Drms_profiler.on_batch p) in
          (n, Aprof_core.Drms_profiler.finish p)
        | `Rms ->
          let p = Aprof_core.Rms_profiler.create () in
          let n = drain batches (Aprof_core.Rms_profiler.on_batch p) in
          (n, Aprof_core.Rms_profiler.finish p)
        | `Naive ->
          let p = Aprof_core.Naive_drms.create () in
          let n = ref 0 in
          Aprof_core.Naive_drms.run_stream p
            (Stream.map
               (fun ev ->
                 incr n;
                 ev)
               (Stream.events_of_batches batches));
          (!n, Aprof_core.Naive_drms.finish p)
      in
      (n, profile, names))

(* One trace file through the work-stealing engine (see
   {!Tool.replay_parallel}); all three profilers have mergeable
   adapters, so any [--profiler] choice shards within the file. *)
let parallel_profile ~pool ~jobs ~profiler shards =
  match profiler with
  | `Drms ->
    let p, n, names =
      Tool.replay_parallel ~pool ~jobs ~shards
        (module Aprof_adapters.Drms_mergeable)
    in
    (n, Aprof_core.Drms_profiler.finish p, names)
  | `Rms ->
    let p, n, names =
      Tool.replay_parallel ~pool ~jobs ~shards
        (module Aprof_adapters.Rms_mergeable)
    in
    (n, Aprof_core.Rms_profiler.finish p, names)
  | `Naive ->
    let p, n, names =
      Tool.replay_parallel ~pool ~jobs ~shards
        (module Aprof_adapters.Naive_mergeable)
    in
    (n, Aprof_core.Naive_drms.finish p, names)

(* Sharding needs the chunk index: binary traces with an ATRI footer
   only, and never under salvage ([--keep-going] replays the salvaged
   sequential stream).  Text traces and index-less files return [None]
   here and take the sequential path. *)
let shards_of ~jobs ~keep_going path =
  if jobs > 1 && not keep_going then Tool.Shards.of_file path else None

(* Everything a tool prints is buffered here and only surfaced once the
   file has replayed completely: a decode error halfway through must not
   leave a half-report on stdout that looks like a full one. *)
let run_tools ~now ~pool ~jobs ~keep_going path =
  let mergeables = Harness.standard_mergeable () in
  let find_mergeable name =
    List.find_opt
      (fun (Harness.Mergeable (module M)) -> M.name = name)
      mergeables
  in
  (* The chunk index is probed once per file; every mergeable tool
     reuses it (each opens its own read sessions). *)
  let shards = shards_of ~jobs ~keep_going path in
  List.map
    (fun f ->
      let tool_name = f.Tool.tool_name in
      match
        match shards with
        | Some _ -> find_mergeable tool_name
        | None -> None
      with
      | Some (Harness.Mergeable (module M)) ->
        let shards = Option.get shards in
        let t0 = now () in
        let st, n, _names = Tool.replay_parallel ~pool ~jobs ~shards (module M) in
        let dt = now () -. t0 in
        let tool = M.tool st in
        {
          tool_name;
          summary = tool.Tool.summary ();
          tool_events = n;
          tool_seconds = dt;
        }
      | None ->
        In_channel.with_open_bin path (fun ic ->
            (* Drops were already reported by the profile pass over the
               same bytes; discard the duplicates. *)
            let tool_drops = ref [] in
            let _, batches = open_batches ~keep_going ~drops:tool_drops path ic in
            let tool = f.Tool.create () in
            let t0 = now () in
            let n = Tool.replay_batches tool batches in
            let dt = now () -. t0 in
            {
              tool_name;
              summary = tool.Tool.summary ();
              tool_events = n;
              tool_seconds = dt;
            }))
    (Harness.standard_factories ())

let replay ?(jobs = 1) ?(profiler = (`Drms : profiler)) ?(with_tools = false)
    ?(keep_going = false) ~now paths =
  if jobs < 1 then invalid_arg "Replay_driver.replay: jobs < 1";
  let pool = Aprof_util.Par.create ~jobs () in
  let t0 = now () in
  (* Phase 1: one profiler instance per file.  Failures are contained to
     the file that raised: its partial state is discarded, every other
     file still replays, and the error travels in the report. *)
  let profile_file path =
    let fstart = now () in
    let format = trace_format path in
    let drops = ref [] in
    match
      match
        if jobs > 1 && List.compare_length_with paths 1 = 0 then
          shards_of ~jobs ~keep_going path
        else None
      with
      | Some shards -> parallel_profile ~pool ~jobs ~profiler shards
      | None -> sequential_profile ~keep_going ~profiler ~drops path
    with
    | n, profile, names ->
      ( {
          path;
          format;
          events = n;
          seconds = now () -. fstart;
          drops = List.rev !drops;
          error = None;
          tool_runs = [];
        },
        Some (profile, names) )
    | exception (Stream.Decode_error msg | Sys_error msg) ->
      ( {
          path;
          format;
          events = 0;
          seconds = now () -. fstart;
          drops = List.rev !drops;
          error = Some msg;
          tool_runs = [];
        },
        None )
  in
  let files = Array.of_list paths in
  let out = Array.map (fun path () -> profile_file path) files in
  let results = Array.make (Array.length files) None in
  (match files with
  | [| path |] -> results.(0) <- Some (profile_file path)
  | _ ->
    (* Several traces: one worker per file, merge the profiles. *)
    Aprof_util.Par.run pool
      (Array.mapi (fun i task () -> results.(i) <- Some (task ())) out));
  let results = Array.map Option.get results in
  (* Phase 2: tools, sequentially per file, skipping files whose profile
     pass already failed (the same bytes would fail again). *)
  let results =
    if not with_tools then results
    else
      Array.map
        (fun (report, payload) ->
          match payload with
          | None -> (report, payload)
          | Some _ -> (
            match run_tools ~now ~pool ~jobs ~keep_going report.path with
            | tool_runs -> ({ report with tool_runs }, payload)
            | exception (Stream.Decode_error msg | Sys_error msg) ->
              ({ report with error = Some msg; tool_runs = [] }, None)))
        results
  in
  let merged = Profile.create () in
  let tables = ref [] in
  let events = ref 0 in
  Array.iter
    (fun ((report : file_report), payload) ->
      match payload with
      | None -> ()
      | Some (profile, names) ->
        Profile.merge_into ~into:merged profile;
        tables := names :: !tables;
        events := !events + report.events)
    results;
  let reports = Array.to_list (Array.map fst results) in
  {
    files = reports;
    profile = merged;
    names = union_names (List.rev !tables);
    events = !events;
    seconds = now () -. t0;
    failed = List.exists (fun r -> r.error <> None) reports;
  }
