(** The original full-vector-clock race detector, retained verbatim as
    the differential-test oracle for the epoch-based {!Helgrind_lite}.

    Per cell it keeps a complete [Vclock.t] of last reads and a boxed
    lockset list, with a hashtable from address to cell — O(threads)
    space and work per access, which is why it is test-only.  The qcheck
    differential suite checks that the epoch detector reports the
    identical race set on random VM programs under every scheduler. *)

type race = {
  addr : int;
  kind : [ `Write_write | `Read_write | `Write_read ];
  prev_tid : int;
  tid : int;
}

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit

(** [races t] in detection order, deduplicated per (address, kind). *)
val races : t -> race list
