(** A happens-before data race detector in the style of helgrind /
    FastTrack: per-thread and per-sync-object vector clocks, but O(1)
    packed-epoch metadata per memory cell.

    Each cell stores the last-write epoch ([clk lsl tid_bits lor tid])
    and a read state that is a single epoch until genuinely concurrent
    reads force promotion to a full {!Vclock.t} (demoted again at the
    next write).  Same-epoch reads and writes exit after two loads and a
    compare.  Cells live in a {!Shadow_memory} arena (three ints per
    cell) and Eraser candidate locksets are hash-consed {!Lockset} ids.

    Race reports are equivalent to the full-vector-clock oracle
    {!Helgrind_ref}: identical (address, kind, accessing thread) sets,
    detected at the same events — the differential suite pins this.

    Synchronization events ([Acquire]/[Release] from semaphores,
    barriers, spawn/join edges) transfer clocks through the sync
    object's vector clock with accumulate-join semantics, which is
    conservative (may miss races through over-synchronization) but never
    reports a false race on these traces.

    Kernel transfers are attributed to the issuing thread, as Valgrind
    does for syscall buffers. *)

type race = {
  addr : int;
  kind : [ `Write_write | `Read_write | `Write_read ];
  prev_tid : int;
  tid : int;
}

val pp_race : Format.formatter -> race -> unit

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit

(** Packed-field dispatch used by the batch pipeline; [tag] is an
    {!Aprof_trace.Event.Batch} wire tag. *)
val on_raw : t -> tag:int -> tid:int -> arg:int -> len:int -> unit

val on_batch : t -> Aprof_trace.Event.Batch.t -> unit

(** [races t] in detection order, deduplicated per (address, kind). *)
val races : t -> race list

(** [render_report t] is the races, one per line, followed by the
    summary — what `aprof tools` prints and the golden test pins. *)
val render_report : t -> string

val tool : unit -> Tool.t
val factory : Tool.factory
