(** A memcheck-style memory error detector over the trace vocabulary:
    shadow addressability (A) and definedness (V) state per cell.

    Detected errors:
    - invalid read/write: access to a cell outside any live allocation
      (including use-after-free);
    - uninitialized read: load of an addressable but never-written cell;
    - invalid free / double free;
    - leaked blocks still live when [report] is taken.

    Cells below the heap base that were never allocated are treated as
    statically addressable and defined (globals/stack), so hand-built
    traces with absolute addresses do not drown the report. *)

type t

type error =
  | Invalid_read of { tid : int; addr : int }
  | Invalid_write of { tid : int; addr : int }
  | Uninitialized_read of { tid : int; addr : int }
  | Invalid_free of { tid : int; addr : int }
  | Leak of { addr : int; len : int }

val pp_error : Format.formatter -> error -> unit

(** [create ()] — [heap_base] marks where tracked allocations start
    (default 0x1000, the VM allocator's base). *)
val create : ?heap_base:int -> unit -> t

val on_event : t -> Aprof_trace.Event.t -> unit

(** [errors t] in detection order, deduplicated per (kind, address). *)
val errors : t -> error list

(** [leaks t] — live blocks (call after the trace ends). *)
val leaks : t -> error list

(** [merge ~into src] folds [src]'s error reports into [into],
    deduplicating identical ones; [into]'s shadow and block tables are
    kept.  Meaningful for thread-sharded replays of {e one} trace
    (where {!Mergeable.broadcast} makes every worker's shadow state
    identical), not for combining runs over different traces. *)
val merge : into:t -> t -> unit

(** [tool_of t] wraps existing state; [tool ()] makes a fresh one. *)
val tool_of : t -> Tool.t

val tool : unit -> Tool.t
val factory : Tool.factory

module Mergeable : Tool.S with type state = t
