(* Hash-consed lock sets: every distinct sorted set of lock ids is
   interned once and named by a small int, so a shadow cell's Eraser
   candidate set is one immediate word and set operations on the hot
   path are memo-table hits instead of list walks.

   Ids are dense and start at 0 = the empty set.  The three operations
   the race detector needs — [add], [remove] (thread held-set updates on
   acquire/release) and [inter] (candidate-set refinement on access) —
   are memoized on packed (id, operand) keys, so each distinct pair is
   computed at most once over a run.  The number of distinct sets is
   bounded by the lock-nesting structure of the program, not by the
   event count, which keeps both tables tiny. *)

type t = {
  mutable sets : int array array; (* id -> sorted, duplicate-free locks *)
  mutable n : int;
  ids : (int array, int) Hashtbl.t; (* canonical array -> id *)
  add_memo : (int, int) Hashtbl.t; (* (id, lock) -> id *)
  remove_memo : (int, int) Hashtbl.t; (* (id, lock) -> id *)
  inter_memo : (int, int) Hashtbl.t; (* (id, id) -> id *)
}

let empty = 0

let create () =
  let t =
    {
      sets = Array.make 16 [||];
      n = 0;
      ids = Hashtbl.create 64;
      add_memo = Hashtbl.create 64;
      remove_memo = Hashtbl.create 64;
      inter_memo = Hashtbl.create 64;
    }
  in
  t.sets.(0) <- [||];
  t.n <- 1;
  Hashtbl.add t.ids [||] 0;
  t

let count t = t.n

let intern_sorted t arr =
  match Hashtbl.find_opt t.ids arr with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = Array.length t.sets then begin
      let sets = Array.make (2 * id) [||] in
      Array.blit t.sets 0 sets 0 id;
      t.sets <- sets
    end;
    t.sets.(id) <- arr;
    t.n <- id + 1;
    Hashtbl.add t.ids arr id;
    id

let check t id =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Lockset: unknown id %d" id)

(* Memo keys pack the lock operand into the low 31 bits (see [key]), so
   every entry point that takes a raw lock id must bound it — otherwise
   a stray id aliases another pair's memo slot and silently corrupts
   held/candidate sets. *)
let max_lock = (1 lsl 31) - 1

let check_lock name lock =
  if lock < 0 || lock > max_lock then
    invalid_arg (Printf.sprintf "Lockset.%s: lock id %d out of range" name lock)

let intern t locks =
  let arr = Array.of_list (List.sort_uniq compare locks) in
  Array.iter (check_lock "intern") arr;
  intern_sorted t arr

let to_list t id =
  check t id;
  Array.to_list t.sets.(id)

let cardinal t id =
  check t id;
  Array.length t.sets.(id)

let mem t id lock =
  check t id;
  let arr = t.sets.(id) in
  let rec go lo hi =
    if lo >= hi then false
    else
      let m = (lo + hi) / 2 in
      if arr.(m) = lock then true
      else if arr.(m) < lock then go (m + 1) hi
      else go lo m
  in
  go 0 (Array.length arr)

(* Memo keys pack the operand into the id: injective only while
   [0 <= b < 2^31].  Both operand kinds satisfy it — lock ids are
   bounded by [check_lock] at every entry point, and set ids are dense
   (< [t.n], far below 2^31). *)
let key a b = (a lsl 31) lor b

let add t id lock =
  check t id;
  check_lock "add" lock;
  let k = key id lock in
  match Hashtbl.find_opt t.add_memo k with
  | Some r -> r
  | None ->
    let r =
      if mem t id lock then id
      else begin
        let arr = t.sets.(id) in
        let n = Array.length arr in
        let out = Array.make (n + 1) lock in
        let i = ref 0 in
        while !i < n && arr.(!i) < lock do
          out.(!i) <- arr.(!i);
          incr i
        done;
        Array.blit arr !i out (!i + 1) (n - !i);
        intern_sorted t out
      end
    in
    Hashtbl.add t.add_memo k r;
    r

let remove t id lock =
  check t id;
  check_lock "remove" lock;
  let k = key id lock in
  match Hashtbl.find_opt t.remove_memo k with
  | Some r -> r
  | None ->
    let r =
      if not (mem t id lock) then id
      else
        intern_sorted t
          (Array.of_seq
             (Seq.filter (fun l -> l <> lock) (Array.to_seq t.sets.(id))))
    in
    Hashtbl.add t.remove_memo k r;
    r

let inter t a b =
  check t a;
  check t b;
  if a = b then a
  else begin
    (* Normalize the key order: intersection is commutative, so one memo
       entry serves both argument orders. *)
    let a, b = if a < b then (a, b) else (b, a) in
    let k = key a b in
    match Hashtbl.find_opt t.inter_memo k with
    | Some r -> r
    | None ->
      let xa = t.sets.(a) and xb = t.sets.(b) in
      let na = Array.length xa and nb = Array.length xb in
      let out = Array.make (min na nb) 0 in
      let w = ref 0 and i = ref 0 and j = ref 0 in
      while !i < na && !j < nb do
        let va = xa.(!i) and vb = xb.(!j) in
        if va = vb then begin
          out.(!w) <- va;
          incr w;
          incr i;
          incr j
        end
        else if va < vb then incr i
        else incr j
      done;
      let r = intern_sorted t (Array.sub out 0 !w) in
      Hashtbl.add t.inter_memo k r;
      r
  end

let space_words t =
  (* Interned arrays (header + elements) plus roughly three words per
     table binding; the memo tables dominate, the sets are tiny. *)
  let arrays = ref 0 in
  for i = 0 to t.n - 1 do
    arrays := !arrays + 1 + Array.length t.sets.(i)
  done;
  !arrays + Array.length t.sets
  + 3
    * (Hashtbl.length t.ids + Hashtbl.length t.add_memo
     + Hashtbl.length t.remove_memo + Hashtbl.length t.inter_memo)
