(** Incremental merge driver: the live-ingest sibling of
    {!Replay_driver}.

    One driver serves one connection.  Feed it decoded batches
    ({!on_batch}) as {!Aprof_trace.Trace_net} produces them; at each
    end-of-trace marker call {!trace_end}, which finishes the current
    profiler, hands the completed trace's profile to [on_profile], and
    starts a fresh profiler for the next trace on the same connection.
    {!abort} discards partial state (connection died mid-trace) without
    surfacing anything — the per-file all-or-nothing contract of the
    replay driver, transplanted to connections.

    Folding only completed traces is what makes live aggregation exact:
    the accumulated result equals an offline merge of the same traces.

    Like the rest of [lib/tools], this module is sans-IO: it never
    touches a socket or a clock. *)

type profiler = Replay_driver.profiler

type t

(** [create ~on_profile ()] builds a driver.  [on_profile] receives each
    completed trace's finished profile and its event count, synchronously
    from inside {!trace_end}.
    @param profiler which profiler backs each trace (default [`Drms]). *)
val create :
  ?profiler:profiler ->
  on_profile:(profile:Aprof_core.Profile.t -> events:int -> unit) ->
  unit ->
  t

(** [on_batch t b] feeds one decoded batch to the current trace's
    profiler.  After {!note_drop}, unmatched returns are compacted out
    in place (mutating [b]), exactly as salvage replay filters files. *)
val on_batch : t -> Aprof_trace.Event.Batch.t -> unit

(** [note_drop t] records that salvage dropped a chunk of the current
    trace, arming the orphaned-return filter until the trace ends. *)
val note_drop : t -> unit

(** [trace_end t] finishes the current profiler, reports through
    [on_profile], and resets for the next trace. *)
val trace_end : t -> unit

(** [abort t] discards the current trace's partial state. *)
val abort : t -> unit

(** Events fed to the current (partial) trace so far. *)
val events : t -> int

(** Whether the orphaned-return filter is armed for the current trace. *)
val salvaging : t -> bool
