module Vec = Aprof_util.Vec

type measurement = {
  tool : string;
  time_s : float;
  slowdown_native : float;
  slowdown_nulgrind : float;
  space_words : int;
  space_overhead : float;
  summary : string;
}

let standard_factories () =
  [
    Nulgrind.factory;
    Memcheck_lite.factory;
    Callgrind_lite.factory;
    Helgrind_lite.factory;
    Aprof_adapters.aprof_rms;
    Aprof_adapters.aprof_drms;
  ]

type mergeable = Mergeable : (module Tool.S with type state = 'a) -> mergeable

let standard_mergeable () =
  [
    Mergeable (module Nulgrind.Mergeable);
    Mergeable (module Memcheck_lite.Mergeable);
    Mergeable (module Callgrind_lite.Mergeable);
    Mergeable (module Aprof_adapters.Rms_mergeable);
    Mergeable (module Aprof_adapters.Drms_mergeable);
  ]

let global_factories () = [ Helgrind_lite.factory ]

(* Mean CPU seconds of [f] per call, repeating until [min_time] total. *)
let time_of ~min_time f =
  let runs = ref 0 in
  let start = Sys.time () in
  let elapsed () = Sys.time () -. start in
  while !runs = 0 || elapsed () < min_time do
    f ();
    incr runs
  done;
  elapsed () /. float_of_int !runs

(* The measurement core, parameterized over how a tool consumes the
   events: [replay] feeds one fresh tool instance the whole event
   sequence, [native] enumerates it with an empty handler (our stand-in
   for uninstrumented execution).  [measure] instantiates it with direct
   vector iteration, [measure_stream] with incremental stream pulls. *)
let measure_with ~min_time ~native ~replay ~program_words factories =
  let native_time = time_of ~min_time native in
  let nulgrind_time =
    time_of ~min_time (fun () -> replay (Nulgrind.tool ()))
  in
  let program_words = max program_words 1 in
  List.map
    (fun f ->
      (* Time fresh instances end to end... *)
      let time_s =
        time_of ~min_time (fun () -> replay (f.Tool.create ()))
      in
      (* ...and keep one instance for space and summary. *)
      let t = f.Tool.create () in
      replay t;
      let space_words = t.Tool.space_words () in
      {
        tool = t.Tool.name;
        time_s;
        slowdown_native = time_s /. Float.max native_time 1e-9;
        slowdown_nulgrind = time_s /. Float.max nulgrind_time 1e-9;
        space_words;
        space_overhead =
          float_of_int (program_words + space_words)
          /. float_of_int program_words;
        summary = t.Tool.summary ();
      })
    factories

(* A handler-free replay standing in for native execution: forces the
   trace walk without analysis work.  The accumulator escapes through a
   ref so the loop cannot be optimized away. *)
let native_replay trace =
  let acc = ref 0 in
  Vec.iter (fun ev -> acc := !acc + Aprof_trace.Event.tid ev) trace;
  ignore !acc

let measure ?(min_time = 0.05) ~trace ~program_words factories =
  measure_with ~min_time
    ~native:(fun () -> native_replay trace)
    ~replay:(fun t -> Tool.replay t trace)
    ~program_words factories

let native_replay_stream source =
  let acc =
    Aprof_trace.Trace_stream.fold
      (fun acc ev -> acc + Aprof_trace.Event.tid ev)
      0 source
  in
  ignore (Sys.opaque_identity acc)

let measure_stream ?(min_time = 0.05) ~source ~program_words factories =
  measure_with ~min_time
    ~native:(fun () -> native_replay_stream (source ()))
    ~replay:(fun t -> Tool.replay_stream t (source ()))
    ~program_words factories

let geometric_rows per_benchmark =
  match per_benchmark with
  | [] -> []
  | first :: _ ->
    List.map
      (fun (m0 : measurement) ->
        let same =
          List.filter_map
            (fun ms ->
              List.find_opt (fun (m : measurement) -> m.tool = m0.tool) ms)
            per_benchmark
        in
        let geo f = Aprof_util.Stats.geometric_mean (List.map f same) in
        ( m0.tool,
          geo (fun m -> m.slowdown_native),
          geo (fun m -> m.slowdown_nulgrind),
          geo (fun m -> m.space_overhead) ))
      first

let pp_measurement ppf m =
  Format.fprintf ppf
    "%-10s time=%.4fs slowdown(native)=%.1fx slowdown(nulgrind)=%.1fx \
     space=%d words (%.2fx)"
    m.tool m.time_s m.slowdown_native m.slowdown_nulgrind m.space_words
    m.space_overhead
