module Event = Aprof_trace.Event
module Shadow = Aprof_shadow.Shadow_memory

type error =
  | Invalid_read of { tid : int; addr : int }
  | Invalid_write of { tid : int; addr : int }
  | Uninitialized_read of { tid : int; addr : int }
  | Invalid_free of { tid : int; addr : int }
  | Leak of { addr : int; len : int }

let pp_error ppf = function
  | Invalid_read { tid; addr } ->
    Format.fprintf ppf "invalid read of %#x by thread %d" addr tid
  | Invalid_write { tid; addr } ->
    Format.fprintf ppf "invalid write of %#x by thread %d" addr tid
  | Uninitialized_read { tid; addr } ->
    Format.fprintf ppf "read of uninitialized %#x by thread %d" addr tid
  | Invalid_free { tid; addr } ->
    Format.fprintf ppf "invalid free of %#x by thread %d" addr tid
  | Leak { addr; len } ->
    Format.fprintf ppf "leak: %d cells at %#x still allocated" len addr

(* Per-cell shadow state, one word per cell:
   0 = untracked, 1 = addressable, 2 = addressable + defined. *)
let s_untracked = 0
let s_alloc = 1
let s_defined = 2

type t = {
  heap_base : int;
  shadow : Shadow.t;
  blocks : (int, int) Hashtbl.t; (* base -> length of live allocations *)
  mutable errs : error list;
  seen : (error, unit) Hashtbl.t; (* dedup identical reports *)
}

let create ?(heap_base = 0x1000) () =
  {
    heap_base;
    shadow = Shadow.create ();
    blocks = Hashtbl.create 64;
    errs = [];
    seen = Hashtbl.create 64;
  }

let report t err =
  if not (Hashtbl.mem t.seen err) then begin
    Hashtbl.add t.seen err ();
    t.errs <- err :: t.errs
  end

(* Below the heap base, memory is considered static and pre-initialized. *)
let is_static t addr = addr < t.heap_base

let check_read t tid addr =
  if not (is_static t addr) then begin
    match Shadow.get t.shadow addr with
    | s when s = s_defined -> ()
    | s when s = s_alloc -> report t (Uninitialized_read { tid; addr })
    | _ -> report t (Invalid_read { tid; addr })
  end

let check_write t tid addr =
  if not (is_static t addr) then begin
    if Shadow.get t.shadow addr = s_untracked then
      report t (Invalid_write { tid; addr })
    else Shadow.set t.shadow addr s_defined
  end

let on_event t = function
  | Event.Read { tid; addr } -> check_read t tid addr
  | Event.Write { tid; addr } -> check_write t tid addr
  | Event.Alloc { addr; len; _ } ->
    Hashtbl.replace t.blocks addr len;
    Shadow.set_range t.shadow ~addr ~len s_alloc
  | Event.Free { tid; addr; len = _ } -> (
    match Hashtbl.find_opt t.blocks addr with
    | None -> report t (Invalid_free { tid; addr })
    | Some len ->
      Hashtbl.remove t.blocks addr;
      Shadow.set_range t.shadow ~addr ~len s_untracked)
  | Event.Kernel_to_user { addr; len; _ } ->
    (* The kernel defined the buffer; flag writes landing outside live
       allocations like ordinary stores. *)
    for a = addr to addr + len - 1 do
      check_write t 0 a
    done
  | Event.User_to_kernel { tid; addr; len } ->
    for a = addr to addr + len - 1 do
      check_read t tid a
    done
  | Event.Call _ | Event.Return _ | Event.Block _ | Event.Acquire _
  | Event.Release _ | Event.Thread_start _ | Event.Thread_exit _
  | Event.Switch_thread _ ->
    ()

let errors t = List.rev t.errs

let leaks t =
  Hashtbl.fold (fun addr len acc -> Leak { addr; len } :: acc) t.blocks []
  |> List.sort compare

let merge ~into src = List.iter (report into) (errors src)

let tool_of t =
  Tool.make ~name:"memcheck" ~on_event:(on_event t)
    ~space_words:(fun () ->
      Shadow.space_words t.shadow + (2 * Hashtbl.length t.blocks))
    ~summary:(fun () ->
      Printf.sprintf "memcheck: %d errors, %d leaked blocks"
        (List.length (errors t))
        (List.length (leaks t)))
    ()

let tool () = tool_of (create ())

let factory = { Tool.tool_name = "memcheck"; create = tool }

module Mergeable = struct
  type state = t

  let name = "memcheck"
  let create () = create ()
  let tool = tool_of
  let merge = merge

  (* Writes, allocations, frees and kernel fills all mutate the global
     addressability/definedness state that any thread's next access is
     checked against, so every worker replays them; with those
     broadcast, each worker holds the full shadow and block table, and
     merging reduces to deduplicating the error reports. *)
  let broadcast =
    let module B = Aprof_trace.Event.Batch in
    (1 lsl B.tag_write) lor (1 lsl B.tag_alloc) lor (1 lsl B.tag_free)
    lor (1 lsl B.tag_kernel_to_user)

  let sharding = `By_thread
  let set_owner _ _ = ()
end
