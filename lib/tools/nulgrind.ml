type t = { mutable events : int }

let create () = { events = 0 }

let on_event t _ = t.events <- t.events + 1

let on_batch t b = t.events <- t.events + Aprof_trace.Event.Batch.length b

let events t = t.events

let merge ~into src = into.events <- into.events + src.events

let tool_of t =
  Tool.make ~name:"nulgrind" ~on_event:(on_event t) ~on_batch:(on_batch t)
    ~space_words:(fun () -> 1)
    ~summary:(fun () -> Printf.sprintf "nulgrind: %d events replayed" t.events)
    ()

let tool () = tool_of (create ())

let factory = { Tool.tool_name = "nulgrind"; create = tool }

module Mergeable = struct
  type state = t

  let name = "nulgrind"
  let create = create
  let tool = tool_of
  let merge = merge

  (* No broadcast: every event must reach exactly one worker or the
     merged count would double. *)
  let broadcast = 0

  (* Counting is order-independent, so any worker may take any chunk —
     the only tool that load-balances below thread granularity. *)
  let sharding = `By_chunk
  let set_owner _ _ = ()
end
