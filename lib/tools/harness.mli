(** The slowdown/space measurement harness behind Table 1 and Figure 16.

    Every tool replays the *same* materialized trace; time is CPU seconds
    over enough repetitions to dominate timer noise, and slowdown is
    reported against two baselines:

    - [vs_native]: replaying the trace with an empty handler — our
      equivalent of native execution (the program "runs" when its trace
      is enumerated; tools add analysis work on top);
    - [vs_nulgrind]: against the null tool, the paper's shared
      instrumentation baseline.

    Space overhead is (program footprint + tool footprint) / program
    footprint, with the program footprint given by the simulated memory
    high-water mark — the analogue of comparing a tool's resident size
    against the native process. *)

type measurement = {
  tool : string;
  time_s : float;  (** mean CPU seconds per replay *)
  slowdown_native : float;
  slowdown_nulgrind : float;
  space_words : int;
  space_overhead : float;
  summary : string;
}

(** [standard_factories ()] is the Table 1 tool set, in column order:
    nulgrind, memcheck, callgrind, helgrind, aprof, aprof-drms. *)
val standard_factories : unit -> Tool.factory list

(** A packed mergeable tool, for heterogeneous lists. *)
type mergeable = Mergeable : (module Tool.S with type state = 'a) -> mergeable

(** [standard_mergeable ()] is the subset of the standard tools that
    shard within a trace (see {!Tool.S}): nulgrind (by chunk), memcheck,
    callgrind, aprof and aprof-drms (by thread).  {!global_factories}
    is the rest — helgrind alone, whose lockset intersections depend on
    the interleaved global event order and replay sequentially
    (parallelize it across tools and traces instead). *)
val standard_mergeable : unit -> mergeable list

val global_factories : unit -> Tool.factory list

(** [measure ~trace ~program_words factories] replays [trace] through a
    fresh instance of each factory.
    @param min_time keep repeating until this much CPU time was sampled
    per tool (default 0.05 s). *)
val measure :
  ?min_time:float ->
  trace:Aprof_trace.Trace.t ->
  program_words:int ->
  Tool.factory list ->
  measurement list

(** [measure_stream ~source ~program_words factories] is {!measure} over
    an incremental event source instead of a materialized trace.
    [source] must produce a fresh stream per call (streams are
    single-use); it is re-invoked for every timed repetition, so its own
    cost — decoding a file, re-running a workload — is part of the
    measured time. *)
val measure_stream :
  ?min_time:float ->
  source:(unit -> Aprof_trace.Trace_stream.t) ->
  program_words:int ->
  Tool.factory list ->
  measurement list

(** [geometric_rows per_benchmark] aggregates measurements of the same
    tool across benchmarks by geometric mean (Table 1's aggregation):
    rows are (tool, slowdown_native, slowdown_nulgrind, space_overhead). *)
val geometric_rows :
  measurement list list -> (string * float * float * float) list

val pp_measurement : Format.formatter -> measurement -> unit
