(* Golden-file regression tests for the CLI `report` pipeline: a fixed
   (workload, threads, scale, seed, scheduler) runs under the default
   deterministic round-robin scheduler, the profile is saved as CSV
   (exactly what `aprof run -o` writes) and rendered (exactly what
   `aprof report` prints), and both are compared against committed
   expectations under test/golden/.

   Output is normalized — CRLF and trailing whitespace stripped — so the
   comparison survives editors and platforms; everything else is pinned,
   including float formatting.  To regenerate after an intentional
   change:

     APROF_WRITE_GOLDEN=$PWD/test/golden dune exec test/test_main.exe -- test golden *)

open Helpers
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Profile_io = Aprof_core.Profile_io
module Interp = Aprof_vm.Interp

let normalize s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let line =
           if String.length line > 0 && line.[String.length line - 1] = '\r'
           then String.sub line 0 (String.length line - 1)
           else line
         in
         let n = ref (String.length line) in
         while !n > 0 && line.[!n - 1] = ' ' do
           decr n
         done;
         String.sub line 0 !n)
  |> String.concat "\n"
  |> String.trim

let golden_path file = Filename.concat "golden" file

let check_golden file actual =
  match Sys.getenv_opt "APROF_WRITE_GOLDEN" with
  | Some dir ->
    Out_channel.with_open_bin (Filename.concat dir file) (fun oc ->
        output_string oc actual);
    Printf.printf "wrote %s\n" (Filename.concat dir file)
  | None ->
    let expected =
      try In_channel.with_open_bin (golden_path file) In_channel.input_all
      with Sys_error e ->
        Alcotest.failf
          "missing golden file %s (%s) — regenerate with \
           APROF_WRITE_GOLDEN=.../test/golden"
          file e
    in
    Alcotest.(check string)
      (Printf.sprintf "%s matches" file)
      (normalize expected) (normalize actual)

let run_case ~workload ~threads ~scale () =
  let spec =
    match Registry.find workload with
    | Some s -> s
    | None -> Alcotest.failf "unknown workload %s" workload
  in
  (* The default round-robin scheduler: fully deterministic. *)
  let result = Workload.run_spec spec ~threads ~scale ~seed:42 in
  let profile = run_drms result.Interp.trace in
  let routine_name =
    Aprof_trace.Routine_table.name result.Interp.routines
  in
  let csv = Profile_io.to_string ~routine_name profile in
  check_golden (workload ^ ".profile.csv") csv;
  (* The `report` path renders what it loads from the CSV, names included. *)
  (match Profile_io.of_string csv with
  | Error e -> Alcotest.failf "saved CSV does not load back: %s" e
  | Ok (loaded, names) ->
    let name id =
      match List.assoc_opt id names with
      | Some n -> n
      | None -> Printf.sprintf "routine_%d" id
    in
    check_golden (workload ^ ".report.txt")
      (Profile_io.render_report ~routine_name:name loaded))

(* The helgrind race report is pinned too: race lines and summary, as
   `aprof tools` prints them.  The round-robin scheduler makes the
   interleaving — hence the detected races and their order — exact. *)
let helgrind_case ~workload ~threads ~scale () =
  let spec =
    match Registry.find workload with
    | Some s -> s
    | None -> Alcotest.failf "unknown workload %s" workload
  in
  let result = Workload.run_spec spec ~threads ~scale ~seed:42 in
  let h = Aprof_tools.Helgrind_lite.create () in
  Aprof_util.Vec.iter
    (Aprof_tools.Helgrind_lite.on_event h)
    result.Interp.trace;
  check_golden (workload ^ ".helgrind.txt")
    (Aprof_tools.Helgrind_lite.render_report h)

(* The `aprof diff` rendering is pinned from a hand-built store pair
   exercising every finding kind: a confident class regression, a
   below-gate (info) class change, a slope regression, a divergence
   appearance, and routines present on only one side. *)
let diff_case () =
  let module Basis = Aprof_analysis.Fit_basis in
  let module Store = Aprof_analysis.Model_store in
  let module Diff = Aprof_analysis.Cost_diff in
  let meta seed =
    {
      Aprof_analysis.Run_meta.workload = "mysqlslap";
      seed;
      scale = 40;
      threads = 4;
      scheduler = "round-robin(64)";
    }
  in
  let entry routine metric cls coefs confidence =
    {
      Store.routine;
      metric;
      cls;
      coefs;
      n_points = 12;
      r2 = 0.99;
      confidence;
      exponent = Some (1.0, 0.9, 1.1);
    }
  in
  let old_store =
    Store.create ~meta:(meta 1)
      [
        entry "query_exec" `Drms Basis.Linear [| 5.; 3. |] 0.95;
        entry "query_exec" `Rms Basis.Linear [| 5.; 3. |] 0.95;
        entry "row_scan" `Drms Basis.Quadratic [| 1.; 0.; 0.5 |] 0.6;
        entry "cache_probe" `Drms Basis.Linear [| 2.; 8. |] 0.9;
        entry "cache_probe" `Rms Basis.Linear [| 2.; 8. |] 0.9;
        entry "hash_insert" `Drms Basis.Linear [| 2.; 3. |] 0.9;
        entry "retired" `Drms Basis.Constant [| 7. |] 1.0;
      ]
  in
  let new_store =
    Store.create ~meta:(meta 2)
      [
        entry "query_exec" `Drms Basis.Quadratic [| 5.; 3.; 0.2 |] 0.92;
        entry "query_exec" `Rms Basis.Linear [| 5.; 3. |] 0.95;
        entry "row_scan" `Drms Basis.Cubic [| 1.; 0.; 0.; 0.1 |] 0.55;
        entry "cache_probe" `Drms Basis.Plateau [| 2.; 8.; 600. |] 0.9;
        entry "cache_probe" `Rms Basis.Linear [| 2.; 8. |] 0.9;
        entry "hash_insert" `Drms Basis.Linear [| 2.; 9. |] 0.9;
        entry "fresh" `Drms Basis.Logarithmic [| 1.; 4. |] 1.0;
      ]
  in
  match Diff.diff old_store new_store with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok report ->
    Alcotest.(check bool) "has regression" true (Diff.has_regression report);
    check_golden "cost_diff.report.txt" (Diff.render report);
    check_golden "cost_diff.report.json" (Diff.to_json report ^ "\n")

let suite =
  [
    Alcotest.test_case "producer_consumer report" `Quick
      (run_case ~workload:"producer_consumer" ~threads:4 ~scale:60);
    Alcotest.test_case "cost diff report" `Quick diff_case;
    Alcotest.test_case "mysqlslap report" `Quick
      (run_case ~workload:"mysqlslap" ~threads:4 ~scale:40);
    Alcotest.test_case "producer_consumer helgrind report" `Quick
      (helgrind_case ~workload:"producer_consumer" ~threads:4 ~scale:60);
  ]
