(* Unit tests of the core support modules: profile store, metrics
   formulas, cost model, and the empirical cost-function fitting. *)

module Profile = Aprof_core.Profile
module Metrics = Aprof_core.Metrics
module Fit = Aprof_core.Fit
module Cost_model = Aprof_core.Cost_model
module Event = Aprof_trace.Event

(* --- profile store ---------------------------------------------------- *)

let test_profile_points () =
  let p = Profile.create () in
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:5 ~drms:10 ~cost:100;
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:5 ~drms:10 ~cost:80;
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:5 ~drms:20 ~cost:300;
  let d = Option.get (Profile.data p { Profile.tid = 0; routine = 1 }) in
  Alcotest.(check int) "activations" 3 d.Profile.activations;
  Alcotest.(check int) "two drms points" 2 (List.length d.Profile.drms_points);
  Alcotest.(check int) "one rms point" 1 (List.length d.Profile.rms_points);
  (match d.Profile.drms_points with
  | [ p10; p20 ] ->
    Alcotest.(check int) "sorted by input" 10 p10.Profile.input;
    Alcotest.(check int) "worst-case cost" 100 p10.Profile.max_cost;
    Alcotest.(check int) "min cost" 80 p10.Profile.min_cost;
    Alcotest.(check int) "calls" 2 p10.Profile.calls;
    Alcotest.(check int) "second point" 300 p20.Profile.max_cost
  | _ -> Alcotest.fail "point structure");
  Alcotest.(check (float 1e-9)) "sum drms" 40. d.Profile.sum_drms

let test_profile_merge_threads () =
  let p = Profile.create () in
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:5 ~drms:10 ~cost:100;
  Profile.record_activation p ~tid:1 ~routine:1 ~rms:5 ~drms:10 ~cost:200;
  Profile.record_activation p ~tid:1 ~routine:2 ~rms:1 ~drms:1 ~cost:5;
  let merged = Profile.merge_threads p in
  Alcotest.(check int) "two routines" 2 (List.length merged);
  let d1 = List.assoc 1 merged in
  Alcotest.(check int) "merged activations" 2 d1.Profile.activations;
  (match d1.Profile.drms_points with
  | [ pt ] ->
    Alcotest.(check int) "max across threads" 200 pt.Profile.max_cost;
    Alcotest.(check int) "calls summed" 2 pt.Profile.calls
  | _ -> Alcotest.fail "merge should combine equal inputs")

(* --- metrics ----------------------------------------------------------- *)

let data_with ~drms_inputs ~rms_inputs ~ops =
  let p = Profile.create () in
  List.iter2
    (fun d r -> Profile.record_activation p ~tid:0 ~routine:0 ~rms:r ~drms:d ~cost:1)
    drms_inputs rms_inputs;
  let plain, thread, external_ = ops in
  Profile.record_ops p ~tid:0 ~routine:0 ~plain ~induced_thread:thread
    ~induced_external:external_;
  (p, Option.get (Profile.data p { Profile.tid = 0; routine = 0 }))

let test_richness () =
  let _, d =
    data_with ~drms_inputs:[ 1; 2; 3; 4 ] ~rms_inputs:[ 1; 1; 2; 2 ]
      ~ops:(0, 0, 0)
  in
  (* |drms| = 4, |rms| = 2 -> (4-2)/2 = 1 *)
  Alcotest.(check (float 1e-9)) "richness" 1. (Metrics.profile_richness d)

let test_input_volume () =
  let p, d =
    data_with ~drms_inputs:[ 10; 10 ] ~rms_inputs:[ 5; 5 ] ~ops:(0, 0, 0)
  in
  Alcotest.(check (float 1e-9)) "routine volume" 0.5
    (Metrics.routine_input_volume d);
  Alcotest.(check (float 1e-9)) "whole-profile volume" 0.5
    (Metrics.dynamic_input_volume p)

let test_input_sources () =
  let _, d =
    data_with ~drms_inputs:[ 1 ] ~rms_inputs:[ 1 ] ~ops:(2, 6, 2)
  in
  Alcotest.(check (float 1e-9)) "thread input" 0.6 (Metrics.thread_input d);
  Alcotest.(check (float 1e-9)) "external input" 0.2 (Metrics.external_input d);
  match Metrics.induced_breakdown d with
  | Some (t, e) ->
    Alcotest.(check (float 1e-9)) "breakdown thread" 0.75 t;
    Alcotest.(check (float 1e-9)) "breakdown external" 0.25 e
  | None -> Alcotest.fail "expected breakdown"

let test_curves_shape () =
  let p, _ =
    data_with ~drms_inputs:[ 1; 2 ] ~rms_inputs:[ 1; 1 ] ~ops:(1, 1, 0)
  in
  let curve = Metrics.richness_curve p in
  Alcotest.(check int) "standard fractions" 9 (List.length curve);
  (* Tail curves are non-increasing in x. *)
  let ys = List.map snd curve in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (non_increasing ys)

(* --- cost model -------------------------------------------------------- *)

let test_cost_increments () =
  Alcotest.(check int) "block" 7
    (Cost_model.cost_increment (Event.Block { tid = 0; units = 7 }));
  Alcotest.(check int) "read" 1
    (Cost_model.cost_increment (Event.Read { tid = 0; addr = 0 }));
  Alcotest.(check int) "call" 1
    (Cost_model.cost_increment (Event.Call { tid = 0; routine = 0 }));
  Alcotest.(check int) "return free" 0
    (Cost_model.cost_increment (Event.Return { tid = 0 }))

let test_cost_counter () =
  let c = Cost_model.Counter.create () in
  Cost_model.Counter.on_event c (Event.Block { tid = 0; units = 5 });
  Cost_model.Counter.on_event c (Event.Read { tid = 1; addr = 0 });
  Cost_model.Counter.on_event c (Event.Write { tid = 0; addr = 0 });
  Alcotest.(check int) "thread 0" 6 (Cost_model.Counter.cost c 0);
  Alcotest.(check int) "thread 1" 1 (Cost_model.Counter.cost c 1);
  Alcotest.(check int) "unknown thread" 0 (Cost_model.Counter.cost c 9);
  Alcotest.(check int) "total" 7 (Cost_model.Counter.total c)

let test_simulated_time () =
  let rng = Aprof_util.Rng.create 1 in
  let t = Cost_model.simulated_time_ns rng ~ns_per_block:2. ~jitter:0.1 1000 in
  Alcotest.(check bool) "positive and near 2000" true (t > 200. && t < 20000.)

(* --- fit ---------------------------------------------------------------- *)

let planted model ~a ~b ~noise ~seed ns =
  let rng = Aprof_util.Rng.create seed in
  List.map
    (fun n ->
      let y = Fit.eval_model model ~a ~b (float_of_int n) in
      (n, y *. Aprof_util.Rng.gaussian rng ~mu:1.0 ~sigma:noise))
    ns

let sizes = [ 10; 20; 40; 80; 160; 320; 640 ]

let test_fit_recovers_planted () =
  List.iter
    (fun model ->
      let points = planted model ~a:50. ~b:3. ~noise:0.01 ~seed:5 sizes in
      match Fit.best_fit points with
      | Some r ->
        Alcotest.(check string)
          ("recovers " ^ Fit.model_name model)
          (Fit.model_name model)
          (Fit.model_name r.Fit.model)
      | None -> Alcotest.fail "no fit")
    [ Fit.Linear; Fit.Linearithmic; Fit.Quadratic; Fit.Cubic ]

let test_fit_constant () =
  let points = List.map (fun n -> (n, 42.)) sizes in
  match Fit.best_fit points with
  | Some r ->
    Alcotest.(check string) "constant" "O(1)" (Fit.model_name r.Fit.model);
    Alcotest.(check (float 1e-6)) "intercept" 42. r.Fit.a
  | None -> Alcotest.fail "no fit"

let test_fit_too_few_points () =
  Alcotest.(check bool) "fewer than 3 distinct inputs" true
    (Fit.fit_models [ (1, 1.); (1, 2.); (2, 3.) ] = [])

let test_power_law () =
  let points = List.map (fun n -> (n, 2. *. (float_of_int n ** 1.5))) sizes in
  match Fit.power_law points with
  | Some (c, k, r2) ->
    Alcotest.(check (float 0.01)) "coefficient" 2. c;
    Alcotest.(check (float 0.01)) "exponent" 1.5 k;
    Alcotest.(check bool) "r2" true (r2 > 0.999)
  | None -> Alcotest.fail "no power law"

(* A zero-cost activation used to put -inf into the log-log regression
   and poison every coefficient with NaN; such points are now dropped
   like non-positive inputs. *)
let test_power_law_zero_cost () =
  let points = List.map (fun n -> (n, 2. *. (float_of_int n ** 1.5))) sizes in
  (match Fit.power_law ((5, 0.) :: (7, nan) :: points) with
  | Some (c, k, r2) ->
    Alcotest.(check bool) "coefficient finite" true (Float.is_finite c);
    Alcotest.(check bool) "exponent finite" true (Float.is_finite k);
    Alcotest.(check bool) "r2 finite" true (Float.is_finite r2);
    Alcotest.(check (float 0.01)) "coefficient unchanged" 2. c;
    Alcotest.(check (float 0.01)) "exponent unchanged" 1.5 k
  | None -> Alcotest.fail "clean subset should still fit");
  (* All points degenerate: no fit rather than NaN. *)
  Alcotest.(check bool) "all-zero costs" true
    (Fit.power_law (List.map (fun n -> (n, 0.)) sizes) = None)

let test_points_of_profile_cost_kinds () =
  let p = Profile.create () in
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:3 ~drms:10 ~cost:100;
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:3 ~drms:10 ~cost:50;
  Profile.record_activation p ~tid:0 ~routine:1 ~rms:4 ~drms:20 ~cost:300;
  let d = Option.get (Profile.data p { Profile.tid = 0; routine = 1 }) in
  Alcotest.(check (list (pair int (float 1e-9))))
    "drms worst-case"
    [ (10, 100.); (20, 300.) ]
    (Fit.points_of_profile ~metric:`Drms ~cost:`Max d);
  Alcotest.(check (list (pair int (float 1e-9))))
    "drms mean"
    [ (10, 75.); (20, 300.) ]
    (Fit.points_of_profile ~metric:`Drms ~cost:`Mean d);
  Alcotest.(check (list (pair int (float 1e-9))))
    "rms worst-case"
    [ (3, 100.); (4, 300.) ]
    (Fit.points_of_profile ~metric:`Rms ~cost:`Max d);
  Alcotest.(check (list (pair int (float 1e-9))))
    "rms mean"
    [ (3, 75.); (4, 300.) ]
    (Fit.points_of_profile ~metric:`Rms ~cost:`Mean d)

let fit_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fit r_squared in [0,1]" ~count:100
       QCheck2.Gen.(
         list_size (int_range 4 20) (pair (int_range 1 1000) (float_range 1. 1e6)))
       (fun points ->
         List.for_all
           (fun r -> r.Fit.r_squared >= 0. && r.Fit.r_squared <= 1.)
           (Fit.fit_models points)))

let suite =
  [
    Alcotest.test_case "profile points" `Quick test_profile_points;
    Alcotest.test_case "profile merge" `Quick test_profile_merge_threads;
    Alcotest.test_case "richness" `Quick test_richness;
    Alcotest.test_case "input volume" `Quick test_input_volume;
    Alcotest.test_case "input sources" `Quick test_input_sources;
    Alcotest.test_case "curve shape" `Quick test_curves_shape;
    Alcotest.test_case "cost increments" `Quick test_cost_increments;
    Alcotest.test_case "cost counter" `Quick test_cost_counter;
    Alcotest.test_case "simulated time" `Quick test_simulated_time;
    Alcotest.test_case "fit recovers planted models" `Quick
      test_fit_recovers_planted;
    Alcotest.test_case "fit constant" `Quick test_fit_constant;
    Alcotest.test_case "fit needs 3 points" `Quick test_fit_too_few_points;
    Alcotest.test_case "power law" `Quick test_power_law;
    Alcotest.test_case "power law ignores zero-cost points" `Quick
      test_power_law_zero_cost;
    Alcotest.test_case "points_of_profile cost kinds" `Quick
      test_points_of_profile_cost_kinds;
    fit_prop;
  ]
