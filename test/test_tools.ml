(* The comparator tools: helgrind on racy and race-free programs,
   memcheck on seeded memory bugs, callgrind cost invariants. *)

open Aprof_vm.Program
module Interp = Aprof_vm.Interp
module Scheduler = Aprof_vm.Scheduler
module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

let run ?(scheduler = Scheduler.Random_preemptive { min_slice = 1; max_slice = 8 })
    ?(seed = 3) ?(devices = []) threads =
  Interp.run { Interp.scheduler; seed; devices; max_events = 1_000_000;
      reuse_freed_memory = false } threads

(* --- helgrind ------------------------------------------------------- *)

let races_of trace =
  let t = Aprof_tools.Helgrind_lite.create () in
  Vec.iter (Aprof_tools.Helgrind_lite.on_event t) trace;
  Aprof_tools.Helgrind_lite.races t

let test_helgrind_clean_producer_consumer () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Patterns.producer_consumer ~n:20)
      ~seed:5
  in
  Alcotest.(check int) "no races" 0
    (List.length (races_of r.Interp.trace))

let test_helgrind_clean_workloads () =
  List.iter
    (fun name ->
      let spec = Option.get (Aprof_workloads.Registry.find name) in
      let r =
        Aprof_workloads.Workload.run_spec
          ~scheduler:(Scheduler.Random_preemptive { min_slice = 4; max_slice = 32 })
          spec ~threads:3 ~scale:120 ~seed:5
      in
      Alcotest.(check int) (name ^ " race-free") 0
        (List.length (races_of r.Interp.trace)))
    [ "dedup"; "fluidanimate"; "nab"; "mysqlslap" ]

let test_helgrind_detects_race () =
  (* Two threads write the same cell with no synchronization at all. *)
  let racy =
    let* cell = alloc 1 in
    let worker =
      for_ 1 10 (fun i ->
          let* () = write cell i in
          let* _ = read cell in
          return ())
    in
    let* a = spawn worker in
    let* b = spawn worker in
    let* () = join a in
    join b
  in
  let r = run [ racy ] in
  let races = races_of r.Interp.trace in
  Alcotest.(check bool) "race reported" true (races <> []);
  Alcotest.(check bool) "write-write among them" true
    (List.exists
       (fun ra -> ra.Aprof_tools.Helgrind_lite.kind = `Write_write)
       races)

(* An out-of-range tid handed straight to the API (bypassing the decode
   edge, which rejects it) must hit the range check in [thread], not the
   same-epoch fast path's unsafe [epochs] read — a negative tid passes
   the upper-bound check alone on any address that already has a cell. *)
let test_helgrind_rejects_bad_tid () =
  let t = Aprof_tools.Helgrind_lite.create () in
  (* Leave the cell with both a write epoch and a read epoch so the bad
     tid reaches each same-epoch guard rather than an empty-state path. *)
  Aprof_tools.Helgrind_lite.on_event t (Event.Write { tid = 0; addr = 5 });
  Aprof_tools.Helgrind_lite.on_event t (Event.Read { tid = 0; addr = 5 });
  List.iter
    (fun tid ->
      List.iter
        (fun ev ->
          Alcotest.check_raises
            (Printf.sprintf "tid %d rejected" tid)
            (Invalid_argument
               (Printf.sprintf "Helgrind_lite: thread id %d out of range" tid))
            (fun () -> Aprof_tools.Helgrind_lite.on_event t ev))
        [ Event.Read { tid; addr = 5 }; Event.Write { tid; addr = 5 } ])
    [ -1; min_int; Event.max_tid + 1 ]

let test_helgrind_lock_prevents_race () =
  let clean =
    let* cell = alloc 1 in
    let* m = Aprof_vm.Sync.Mutex.create () in
    let worker =
      for_ 1 10 (fun i ->
          Aprof_vm.Sync.Mutex.with_lock m
            (let* v = read cell in
             write cell (v + i)))
    in
    let* a = spawn worker in
    let* b = spawn worker in
    let* () = join a in
    join b
  in
  let r = run [ clean ] in
  Alcotest.(check int) "no race under mutex" 0
    (List.length (races_of r.Interp.trace))

(* --- memcheck -------------------------------------------------------- *)

let memcheck_on trace =
  let t = Aprof_tools.Memcheck_lite.create () in
  Vec.iter (Aprof_tools.Memcheck_lite.on_event t) trace;
  t

let has_error pred t =
  List.exists pred (Aprof_tools.Memcheck_lite.errors t)

let test_memcheck_uninitialized () =
  let buggy =
    let* a = alloc 4 in
    let* _ = read (a + 2) in
    (* never written *)
    return ()
  in
  let r = run [ buggy ] in
  let t = memcheck_on r.Interp.trace in
  Alcotest.(check bool) "uninitialized read reported" true
    (has_error
       (function
         | Aprof_tools.Memcheck_lite.Uninitialized_read _ -> true | _ -> false)
       t)

let test_memcheck_use_after_free () =
  let buggy =
    let* a = alloc 4 in
    let* () = write a 1 in
    let* () = dealloc a 4 in
    let* _ = read a in
    return ()
  in
  let r = run [ buggy ] in
  let t = memcheck_on r.Interp.trace in
  Alcotest.(check bool) "use after free reported" true
    (has_error
       (function Aprof_tools.Memcheck_lite.Invalid_read _ -> true | _ -> false)
       t)

let test_memcheck_double_free_and_leak () =
  let buggy =
    let* a = alloc 4 in
    let* () = write a 1 in
    let* () = dealloc a 4 in
    let* () = dealloc a 4 in
    let* _leaked = alloc 8 in
    return ()
  in
  let r = run [ buggy ] in
  let t = memcheck_on r.Interp.trace in
  Alcotest.(check bool) "double free reported" true
    (has_error
       (function Aprof_tools.Memcheck_lite.Invalid_free _ -> true | _ -> false)
       t);
  Alcotest.(check int) "one leak" 1
    (List.length (Aprof_tools.Memcheck_lite.leaks t))

let test_memcheck_clean_program () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Sorting.merge_sort_run ~n:40 ~seed:3)
      ~seed:3
  in
  let t = memcheck_on r.Interp.trace in
  (* A random array is written before sorting reads it, the temp buffer is
     written by the copy phase first: no errors. *)
  Alcotest.(check (list string)) "no errors" []
    (List.map
       (fun e -> Format.asprintf "%a" Aprof_tools.Memcheck_lite.pp_error e)
       (Aprof_tools.Memcheck_lite.errors t))

(* --- callgrind ------------------------------------------------------- *)

let test_callgrind_inclusive_exclusive () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Mysql_sim.select_sweep ~row_counts:[ 50; 100 ] ~seed:3)
      ~seed:3
  in
  let t = Aprof_tools.Callgrind_lite.create () in
  Vec.iter (Aprof_tools.Callgrind_lite.on_event t) r.Interp.trace;
  let costs = Aprof_tools.Callgrind_lite.routine_costs t in
  (* inclusive >= exclusive everywhere *)
  List.iter
    (fun (c : Aprof_tools.Callgrind_lite.routine_costs) ->
      Alcotest.(check bool) "incl >= excl" true (c.inclusive >= c.exclusive))
    costs;
  (* the root routine's inclusive cost equals the whole trace cost *)
  let total =
    Vec.fold_left
      (fun acc ev -> acc + Aprof_core.Cost_model.cost_increment ev)
      0 r.Interp.trace
  in
  let root =
    List.find
      (fun (c : Aprof_tools.Callgrind_lite.routine_costs) -> c.calls = 1)
      costs
  in
  Alcotest.(check int) "root inclusive = total cost" total root.inclusive;
  (* sum of exclusive costs equals total too *)
  let sum_excl =
    List.fold_left
      (fun acc (c : Aprof_tools.Callgrind_lite.routine_costs) ->
        acc + c.exclusive)
      0 costs
  in
  Alcotest.(check int) "sum exclusive = total" total sum_excl

let test_callgrind_edges () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Mysql_sim.select_sweep ~row_counts:[ 50 ] ~seed:3)
      ~seed:3
  in
  let t = Aprof_tools.Callgrind_lite.create () in
  Vec.iter (Aprof_tools.Callgrind_lite.on_event t) r.Interp.trace;
  let edges = Aprof_tools.Callgrind_lite.edges t in
  let tbl = r.Interp.routines in
  let id n = Option.get (Aprof_trace.Routine_table.find tbl n) in
  let edge =
    List.find
      (fun (e : Aprof_tools.Callgrind_lite.edge_costs) ->
        e.caller = id "handle_query" && e.callee = id "mysql_select")
      edges
  in
  Alcotest.(check int) "one select per query" 1 edge.count

(* --- nulgrind and harness -------------------------------------------- *)

let test_nulgrind_counts () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Patterns.stream_reader ~n:10)
      ~seed:3
  in
  let t = Aprof_tools.Nulgrind.create () in
  Vec.iter (Aprof_tools.Nulgrind.on_event t) r.Interp.trace;
  Alcotest.(check int) "event count" (Vec.length r.Interp.trace)
    (Aprof_tools.Nulgrind.events t)

let test_harness_measures () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Patterns.producer_consumer ~n:200)
      ~seed:3
  in
  let ms =
    Aprof_tools.Harness.measure ~min_time:0.01 ~trace:r.Interp.trace
      ~program_words:r.Interp.memory_high_water
      (Aprof_tools.Harness.standard_factories ())
  in
  Alcotest.(check int) "six tools" 6 (List.length ms);
  List.iter
    (fun (m : Aprof_tools.Harness.measurement) ->
      Alcotest.(check bool) (m.tool ^ " positive time") true (m.time_s > 0.);
      Alcotest.(check bool) (m.tool ^ " space overhead >= 1") true
        (m.space_overhead >= 1.))
    ms

let test_vclock_laws () =
  let module V = Aprof_tools.Vclock in
  let a = V.create () and b = V.create () in
  V.set a 0 3;
  V.set a 2 1;
  V.set b 0 1;
  V.set b 1 5;
  Alcotest.(check bool) "not leq" false (V.leq a b);
  V.join b a;
  Alcotest.(check bool) "leq after join" true (V.leq a b);
  Alcotest.(check int) "join is pointwise max" 5 (V.get b 1);
  Alcotest.(check int) "join takes larger" 3 (V.get b 0);
  Alcotest.(check int) "tick increments" 4 (V.tick a 0);
  let c = V.copy a in
  ignore (V.tick a 0);
  Alcotest.(check int) "copy is independent" 4 (V.get c 0)

let suite =
  [
    Alcotest.test_case "helgrind: clean producer-consumer" `Quick
      test_helgrind_clean_producer_consumer;
    Alcotest.test_case "helgrind: clean workloads" `Slow
      test_helgrind_clean_workloads;
    Alcotest.test_case "helgrind: detects race" `Quick test_helgrind_detects_race;
    Alcotest.test_case "helgrind: mutex prevents race" `Quick
      test_helgrind_lock_prevents_race;
    Alcotest.test_case "helgrind: out-of-range tid rejected" `Quick
      test_helgrind_rejects_bad_tid;
    Alcotest.test_case "memcheck: uninitialized" `Quick test_memcheck_uninitialized;
    Alcotest.test_case "memcheck: use after free" `Quick
      test_memcheck_use_after_free;
    Alcotest.test_case "memcheck: double free and leak" `Quick
      test_memcheck_double_free_and_leak;
    Alcotest.test_case "memcheck: clean program" `Quick test_memcheck_clean_program;
    Alcotest.test_case "callgrind: cost invariants" `Quick
      test_callgrind_inclusive_exclusive;
    Alcotest.test_case "callgrind: edges" `Quick test_callgrind_edges;
    Alcotest.test_case "nulgrind: counts" `Quick test_nulgrind_counts;
    Alcotest.test_case "harness: measurements" `Quick test_harness_measures;
    Alcotest.test_case "vclock laws" `Quick test_vclock_laws;
  ]
