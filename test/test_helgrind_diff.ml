(* Differential for the epoch-based race detector: on random VM
   programs under every scheduler policy, {!Aprof_tools.Helgrind_lite}
   (adaptive epochs, interned locksets, shadow-arena cells) must report
   the identical race set as the retained full-vector-clock oracle
   {!Aprof_tools.Helgrind_ref}.

   Races are compared as ordered (addr, kind, accessing tid) triples:
   detection order and accessor are pinned exactly.  The reported peer
   of a read-write race is allowed to differ — the epoch detector prunes
   reads that happen-before a retained read, so when several past reads
   race with one write it may name a different (equally racy) reader
   than the oracle's full vector scan.

   Random workloads alone rarely synthesize rich racy interleavings, so
   a second battery replays hand-built racy/clean programs (unprotected
   counters, read-write tearing, kernel-buffer overlap, lock-protected
   twins) under every scheduler too. *)

open Aprof_vm.Program
module Interp = Aprof_vm.Interp
module Workload = Aprof_workloads.Workload
module Vec = Aprof_util.Vec
module Hl = Aprof_tools.Helgrind_lite
module Href = Aprof_tools.Helgrind_ref

let epoch_races trace =
  let t = Hl.create () in
  Vec.iter (Hl.on_event t) trace;
  List.map (fun (r : Hl.race) -> (r.addr, r.kind, r.tid)) (Hl.races t)

let ref_races trace =
  let t = Href.create () in
  Vec.iter (Href.on_event t) trace;
  List.map (fun (r : Href.race) -> (r.addr, r.kind, r.tid)) (Href.races t)

let kind_name = function
  | `Write_write -> "write-write"
  | `Read_write -> "read-write"
  | `Write_read -> "write-read"

let show races =
  String.concat "; "
    (List.map
       (fun (addr, kind, tid) ->
         Printf.sprintf "%s@%#x(t%d)" (kind_name kind) addr tid)
       races)

let check_trace label trace =
  let e = epoch_races trace and r = ref_races trace in
  if e <> r then
    Alcotest.failf "%s: race sets differ@.epoch: %s@.ref:   %s" label (show e)
      (show r)

let check_program ~sched_name ~scheduler seed =
  let w =
    { Workload.programs = Test_vm_differential.gen_program seed;
        devices = Test_vm_differential.gen_devices () }
  in
  let result = Workload.run ~scheduler w ~seed in
  check_trace
    (Printf.sprintf "seed %d (%s)" seed sched_name)
    result.Interp.trace

(* --- adversarial programs: actual races of every kind ----------------- *)

let unlocked_counter =
  let* cell = alloc 1 in
  let worker =
    for_ 1 8 (fun i ->
        let* v = read cell in
        write cell (v + i))
  in
  let* a = spawn worker in
  let* b = spawn worker in
  let* () = join a in
  join b

let write_only_race =
  let* cell = alloc 2 in
  let worker k = for_ 1 6 (fun i -> write (cell + k) i) in
  let* a = spawn (worker 0) in
  let* b = spawn (worker 0) in
  let* () = write (cell + 1) 1 in
  let* () = join a in
  join b

let reader_vs_writer =
  let* cell = alloc 1 in
  let* () = write cell 1 in
  let reader =
    for_ 1 6 (fun _ ->
        let* _ = read cell in
        return ())
  in
  let* a = spawn reader in
  let* b = spawn reader in
  let* () = for_ 1 6 (fun i -> write cell i) in
  let* () = join a in
  join b

let locked_twin =
  let* cell = alloc 1 in
  let* m = Aprof_vm.Sync.Mutex.create () in
  let worker =
    for_ 1 8 (fun i ->
        Aprof_vm.Sync.Mutex.with_lock m
          (let* v = read cell in
           write cell (v + i)))
  in
  let* a = spawn worker in
  let* b = spawn worker in
  let* () = join a in
  join b

let half_locked =
  (* One thread protects the cell, the other does not: the lock edge
     creates partial happens-before, the remainder still races. *)
  let* cell = alloc 1 in
  let* m = Aprof_vm.Sync.Mutex.create () in
  let locked =
    for_ 1 6 (fun i ->
        Aprof_vm.Sync.Mutex.with_lock m
          (let* v = read cell in
           write cell (v + i)))
  in
  let unlocked =
    for_ 1 6 (fun i ->
        let* _ = read cell in
        write cell i)
  in
  let* a = spawn locked in
  let* b = spawn unlocked in
  let* () = join a in
  join b

let adversarial = [
  ("unlocked-counter", unlocked_counter);
  ("write-only-race", write_only_race);
  ("reader-vs-writer", reader_vs_writer);
  ("locked-twin", locked_twin);
  ("half-locked", half_locked);
]

let check_adversarial ~sched_name ~scheduler () =
  List.iter
    (fun (name, program) ->
      for seed = 0 to 9 do
        let result =
          Interp.run
            { Interp.scheduler; seed; devices = []; max_events = 1_000_000;
              reuse_freed_memory = false }
            [ program ]
        in
        check_trace
          (Printf.sprintf "%s seed %d (%s)" name seed sched_name)
          result.Interp.trace
      done)
    adversarial

let suite =
  List.concat_map
    (fun (sched_name, scheduler) ->
      [
        Alcotest.test_case
          (Printf.sprintf "epoch = reference: %d random programs (%s)"
             Test_vm_differential.n_programs sched_name)
          `Slow
          (fun () ->
            for seed = 0 to Test_vm_differential.n_programs - 1 do
              check_program ~sched_name ~scheduler seed
            done);
        Alcotest.test_case
          (Printf.sprintf "epoch = reference: racy programs (%s)" sched_name)
          `Quick
          (check_adversarial ~sched_name ~scheduler);
      ])
    Test_vm_differential.schedulers
