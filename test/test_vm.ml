(* The interpreter: determinism, scheduling, synchronization semantics,
   system calls, and error detection. *)

open Aprof_vm.Program
module Interp = Aprof_vm.Interp
module Scheduler = Aprof_vm.Scheduler
module Device = Aprof_vm.Device
module Sync = Aprof_vm.Sync
module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

let config ?(scheduler = Scheduler.Round_robin { slice = 8 }) ?(seed = 3)
    ?(devices = []) ?(max_events = 1_000_000) () =
  { Interp.scheduler; seed; devices; max_events; reuse_freed_memory = false }

let run ?scheduler ?seed ?devices ?max_events threads =
  Interp.run (config ?scheduler ?seed ?devices ?max_events ()) threads

let lines result =
  Vec.to_list result.Interp.trace |> List.map Event.to_line

let test_determinism () =
  let mk () =
    Aprof_workloads.Patterns.producer_consumer ~n:20
  in
  let r1 =
    Aprof_workloads.Workload.run (mk ())
      ~scheduler:(Scheduler.Random_preemptive { min_slice = 4; max_slice = 32 })
      ~seed:9
  in
  let r2 =
    Aprof_workloads.Workload.run (mk ())
      ~scheduler:(Scheduler.Random_preemptive { min_slice = 4; max_slice = 32 })
      ~seed:9
  in
  Alcotest.(check (list string)) "same seed, same trace" (lines r1) (lines r2);
  let r3 =
    Aprof_workloads.Workload.run (mk ())
      ~scheduler:(Scheduler.Random_preemptive { min_slice = 4; max_slice = 32 })
      ~seed:10
  in
  Alcotest.(check bool) "different seed, different trace" true
    (lines r1 <> lines r3)

let all_policies =
  [
    Scheduler.Round_robin { slice = 8 };
    Scheduler.Serialized;
    Scheduler.Random_preemptive { min_slice = 1; max_slice = 16 };
    Scheduler.Work_stealing { workers = 3; slice = 8 };
    Scheduler.Async_io { slice = 8; io_delay = 5 };
  ]

let test_schedulers_well_formed () =
  List.iter
    (fun sched ->
      let r =
        Aprof_workloads.Workload.run
          (Aprof_workloads.Patterns.producer_consumer ~n:15)
          ~scheduler:sched ~seed:5
      in
      Alcotest.(check (list string))
        (Scheduler.policy_name sched ^ " well-formed")
        []
        (Aprof_trace.Trace.well_formed r.Interp.trace))
    ([
       Scheduler.Round_robin { slice = 1 };
       Scheduler.Round_robin { slice = 1000 };
       Scheduler.Random_preemptive { min_slice = 1; max_slice = 4 };
       Scheduler.Work_stealing { workers = 2; slice = 1 };
       Scheduler.Async_io { slice = 1; io_delay = 1 };
     ]
    @ all_policies)

(* Same seed must replay a byte-identical trace under every policy — the
   property the golden traces and committed BENCH files rest on. *)
let test_policies_deterministic () =
  List.iter
    (fun sched ->
      let go () =
        Aprof_workloads.Workload.run
          (Aprof_workloads.Patterns.producer_consumer ~n:25)
          ~scheduler:sched ~seed:11
      in
      Alcotest.(check (list string))
        (Scheduler.policy_name sched ^ " deterministic")
        (lines (go ())) (lines (go ())))
    all_policies

(* Regression for the Serialized slice sentinel: it used to be [max_int],
   so any interpreter arithmetic of the shape [events + slice] wrapped to
   a negative budget.  The clamp guarantees headroom. *)
let test_serialized_slice_clamped () =
  let t = Scheduler.create Scheduler.Serialized (Aprof_util.Rng.create 1) in
  Alcotest.(check int) "serialized slice is the sentinel" Scheduler.max_slice
    (Scheduler.slice t);
  Alcotest.(check bool) "sentinel leaves additive headroom" true
    (Scheduler.max_slice < max_int / 2);
  Alcotest.(check bool) "sentinel + event budget cannot wrap" true
    (Scheduler.max_slice + 1_000_000_000 > 0)

let test_create_validation () =
  let invalid p =
    try
      ignore (Scheduler.create p (Aprof_util.Rng.create 1));
      false
    with Invalid_argument _ -> true
  in
  List.iter
    (fun (label, p) -> Alcotest.(check bool) label true (invalid p))
    [
      ("zero rr slice", Scheduler.Round_robin { slice = 0 });
      ( "oversized rr slice",
        Scheduler.Round_robin { slice = Scheduler.max_slice + 1 } );
      ( "inverted random range",
        Scheduler.Random_preemptive { min_slice = 5; max_slice = 4 } );
      ("single ws worker", Scheduler.Work_stealing { workers = 1; slice = 8 });
      ("zero async delay", Scheduler.Async_io { slice = 8; io_delay = 0 })
    ]

let test_memory_and_alloc () =
  let out = ref (-1) in
  let prog =
    let* a = alloc 4 in
    let* b = alloc 2 in
    let* () = write (a + 3) 7 in
    let* v = read (a + 3) in
    let* unset = read b in
    let* () = compute 1 in
    out := v * 10 + unset;
    return ()
  in
  let _ = run [ prog ] in
  Alcotest.(check int) "write/read and zero default" 70 !out

let test_join_and_spawn () =
  let order = ref [] in
  let prog =
    let* child =
      spawn
        (let* () = compute 1 in
         order := `Child :: !order;
         return ())
    in
    let* () = join child in
    order := `Parent :: !order;
    return ()
  in
  let _ = run [ prog ] in
  Alcotest.(check bool) "child completes before joined parent continues" true
    (!order = [ `Parent; `Child ])

let test_deadlock_detection () =
  let prog =
    let* s = sem_create 0 in
    sem_wait s
  in
  Alcotest.(check bool) "deadlock raises" true
    (try
       ignore (run [ prog ]);
       false
     with Interp.Run_error msg -> String.length msg > 0)

let test_unbalanced_call () =
  (* Build a body that enters a routine and never leaves by using the raw
     constructor, which the combinators normally prevent. *)
  let prog = unsafe_of_prog (Enter ("broken", fun () -> Halt)) in
  Alcotest.(check bool) "unbalanced call raises" true
    (try
       ignore (Interp.run (config ()) [ prog ]);
       false
     with Interp.Run_error _ -> true)

let test_event_budget () =
  let prog = while_ (fun () -> return true) (compute 1) in
  Alcotest.(check bool) "event budget raises" true
    (try
       ignore (run ~max_events:500 [ prog ]);
       false
     with Interp.Run_error _ -> true)

let test_sys_read_eof () =
  let got = ref [] in
  let prog =
    let* fd = sys_open "f" in
    let* buf = alloc 4 in
    let* a = sys_read fd buf 4 in
    let* b = sys_read fd buf 4 in
    let* c = sys_read fd buf 4 in
    got := [ a; b; c ];
    return ()
  in
  let dev = Device.file [| 1; 2; 3; 4; 5; 6 |] in
  let _ = run ~devices:[ ("f", dev) ] [ prog ] in
  Alcotest.(check (list int)) "reads then EOF" [ 4; 2; 0 ] !got

let test_sys_pread_isolated () =
  let got = ref (-1) in
  let prog =
    let* fd = sys_open "f" in
    let* buf = alloc 2 in
    let* _ = sys_read fd buf 2 in
    (* cursor at 2 *)
    let* _ = sys_pread fd buf 2 ~pos:4 in
    let* v = read buf in
    let* _ = sys_read fd buf 1 in
    (* cursor must still be at 2 *)
    let* w = read buf in
    got := (v * 100) + w;
    return ()
  in
  let dev = Device.file [| 10; 11; 12; 13; 14; 15 |] in
  let _ = run ~devices:[ ("f", dev) ] [ prog ] in
  Alcotest.(check int) "pread does not move cursor" 1412 !got

let test_unknown_device () =
  let prog =
    let* _ = sys_open "nope" in
    return ()
  in
  Alcotest.(check bool) "unknown device raises" true
    (try
       ignore (run [ prog ]);
       false
     with Interp.Run_error _ -> true)

let test_channel_fifo () =
  let received = ref [] in
  let n = 30 in
  let prog =
    let* ch = Sync.Channel.create 3 in
    let* producer = spawn (for_ 1 n (fun i -> Sync.Channel.send ch i)) in
    let* () =
      for_ 1 n (fun _ ->
          let* v = Sync.Channel.recv ch in
          received := v :: !received;
          return ())
    in
    join producer
  in
  let _ =
    run ~scheduler:(Scheduler.Random_preemptive { min_slice = 1; max_slice = 7 })
      [ prog ]
  in
  Alcotest.(check (list int)) "FIFO order" (List.init n (fun i -> i + 1))
    (List.rev !received)

let test_try_recv () =
  let seen = ref [] in
  let prog =
    let* ch = Sync.Channel.create 2 in
    let* a = Sync.Channel.try_recv ch in
    let* () = Sync.Channel.send ch 5 in
    let* b = Sync.Channel.try_recv ch in
    let* c = Sync.Channel.try_recv ch in
    seen := [ a; b; c ];
    return ()
  in
  let _ = run [ prog ] in
  Alcotest.(check (list (option int))) "try_recv" [ None; Some 5; None ] !seen

let test_barrier_rounds () =
  (* Two threads alternate turns across barrier rounds; a violation of
     barrier semantics would let one thread run two rounds in a row. *)
  let log = ref [] in
  let rounds = 5 in
  let coordinator =
    let* bar = barrier_create 2 in
    let worker id =
      for_ 1 rounds (fun r ->
          let* () = compute 1 in
          log := (id, r) :: !log;
          barrier_wait bar)
    in
    let* a = spawn (worker 0) in
    let* b = spawn (worker 1) in
    let* () = join a in
    join b
  in
  let _ =
    run ~scheduler:(Scheduler.Random_preemptive { min_slice = 1; max_slice = 5 })
      [ coordinator ]
  in
  let per_round =
    List.init rounds (fun r ->
        List.filter (fun (_, r') -> r' = r + 1) !log |> List.length)
  in
  Alcotest.(check (list int)) "each round has both threads"
    (List.init rounds (fun _ -> 2))
    per_round

let test_mutex_mutual_exclusion () =
  (* Increment a shared counter 50 times from each of 3 threads under a
     mutex; lost updates would show as a final value below 150. *)
  let final = ref 0 in
  let coordinator =
    let* cell = alloc 1 in
    let* () = write cell 0 in
    let* m = Sync.Mutex.create () in
    let worker =
      for_ 1 50 (fun _ ->
          Sync.Mutex.with_lock m
            (let* v = read cell in
             let* () = yield in
             write cell (v + 1)))
    in
    let* tids = Aprof_workloads.Blocks.spawn_all [ worker; worker; worker ] in
    let* () = Aprof_workloads.Blocks.join_all tids in
    let* v = read cell in
    final := v;
    return ()
  in
  let _ =
    run ~scheduler:(Scheduler.Random_preemptive { min_slice = 1; max_slice = 3 })
      [ coordinator ]
  in
  Alcotest.(check int) "no lost updates" 150 !final

let test_random_int_deterministic () =
  let draws seed =
    let out = ref [] in
    let prog =
      for_ 1 10 (fun _ ->
          let* v = random_int 100 in
          out := v :: !out;
          return ())
    in
    let _ = run ~seed [ prog ] in
    !out
  in
  Alcotest.(check (list int)) "vm rng deterministic" (draws 4) (draws 4)

(* --- qcheck: scheduler queue discipline vs a multiset oracle ---------
   Random op programs drive a scheduler directly through its stateful
   API, mirrored against a bag of queued tids.  Whatever the policy:
   [next] may only return a queued tid, returns each enqueue exactly
   once, is [None] iff nothing is queued; [pending] tracks the bag size;
   [slice] stays within the declared bounds; and the whole run is a
   deterministic function of the creation seed. *)

type sched_op =
  | Spawn of int  (** enqueue this tid *)
  | Turn of { io : bool; back : bool }
      (** run one slice: [next]; optionally [note_io]; requeue the
          thread ([back]) or let it block/exit (not [back]) *)

let gen_sched_program =
  let open QCheck2.Gen in
  let policy =
    oneof
      [
        map (fun s -> Scheduler.Round_robin { slice = s }) (int_range 1 20);
        return Scheduler.Serialized;
        map2
          (fun a b ->
            Scheduler.Random_preemptive
              { min_slice = min a b; max_slice = max a b })
          (int_range 1 20) (int_range 1 20);
        map2
          (fun w s -> Scheduler.Work_stealing { workers = w; slice = s })
          (int_range 2 5) (int_range 1 20);
        map2
          (fun s d -> Scheduler.Async_io { slice = s; io_delay = d })
          (int_range 1 20) (int_range 1 6);
      ]
  in
  let op =
    frequency
      [
        (2, map (fun tid -> Spawn tid) (int_range 0 9));
        ( 5,
          map2 (fun io back -> Turn { io; back }) (int_range 0 1 >|= ( = ) 1)
            (int_range 0 3 >|= fun b -> b > 0) );
      ]
  in
  triple policy (int_range 0 1000) (list_size (int_range 1 80) op)

let print_sched_program (policy, seed, ops) =
  Printf.sprintf "%s seed=%d [%s]"
    (Scheduler.policy_name policy)
    seed
    (String.concat ";"
       (List.map
          (function
            | Spawn tid -> Printf.sprintf "spawn %d" tid
            | Turn { io; back } ->
              Printf.sprintf "turn io=%b back=%b" io back)
          ops))

(* Interpret [ops], checking the oracle at every step; returns the
   sequence of [next] results for the determinism check. *)
let run_sched_program (policy, seed, ops) =
  let t = Scheduler.create policy (Aprof_util.Rng.create seed) in
  let bag = Hashtbl.create 16 in
  let bag_size = ref 0 in
  let bag_add tid =
    Hashtbl.replace bag tid (1 + Option.value ~default:0 (Hashtbl.find_opt bag tid));
    incr bag_size
  in
  let bag_remove tid =
    match Hashtbl.find_opt bag tid with
    | Some n when n > 0 ->
      if n = 1 then Hashtbl.remove bag tid else Hashtbl.replace bag tid (n - 1);
      decr bag_size;
      true
    | _ -> false
  in
  let min_slice, max_slice =
    match policy with
    | Scheduler.Round_robin { slice } -> (slice, slice)
    | Scheduler.Serialized -> (Scheduler.max_slice, Scheduler.max_slice)
    | Scheduler.Random_preemptive { min_slice; max_slice } ->
      (min_slice, max_slice)
    | Scheduler.Work_stealing { slice; _ } -> (slice, slice)
    | Scheduler.Async_io { slice; _ } -> (slice, slice)
  in
  let picks = ref [] in
  let ok = ref true in
  let check b = if not b then ok := false in
  List.iter
    (fun op ->
      (match op with
      | Spawn tid ->
        Scheduler.enqueue t tid;
        bag_add tid
      | Turn { io; back } -> (
        let s = Scheduler.slice t in
        check (s >= min_slice && s <= max_slice);
        match Scheduler.next t with
        | None ->
          picks := (-1) :: !picks;
          check (!bag_size = 0)
        | Some tid ->
          picks := tid :: !picks;
          (* only a queued tid may run, and each enqueue runs once *)
          check (bag_remove tid);
          if io then Scheduler.note_io t tid;
          if back then (
            Scheduler.requeue t tid;
            bag_add tid)));
      check (Scheduler.pending t = !bag_size))
    ops;
  (!ok, List.rev !picks)

let sched_oracle_agrees program = fst (run_sched_program program)

let sched_deterministic program =
  let ok1, picks1 = run_sched_program program in
  let ok2, picks2 = run_sched_program program in
  ok1 && ok2 && picks1 = picks2

let suite =
  [
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "policies deterministic" `Quick
      test_policies_deterministic;
    Alcotest.test_case "serialized slice clamped" `Quick
      test_serialized_slice_clamped;
    Alcotest.test_case "policy validation" `Quick test_create_validation;
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"scheduler = multiset oracle"
         ~print:print_sched_program gen_sched_program sched_oracle_agrees);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"scheduler same-seed determinism"
         ~print:print_sched_program gen_sched_program sched_deterministic);
    Alcotest.test_case "schedulers well-formed" `Quick test_schedulers_well_formed;
    Alcotest.test_case "memory and alloc" `Quick test_memory_and_alloc;
    Alcotest.test_case "spawn and join" `Quick test_join_and_spawn;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "unbalanced call" `Quick test_unbalanced_call;
    Alcotest.test_case "event budget" `Quick test_event_budget;
    Alcotest.test_case "sys_read EOF" `Quick test_sys_read_eof;
    Alcotest.test_case "sys_pread isolation" `Quick test_sys_pread_isolated;
    Alcotest.test_case "unknown device" `Quick test_unknown_device;
    Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
    Alcotest.test_case "try_recv" `Quick test_try_recv;
    Alcotest.test_case "barrier rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_mutual_exclusion;
    Alcotest.test_case "vm rng determinism" `Quick test_random_int_deterministic;
  ]
