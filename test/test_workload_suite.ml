(* End-to-end sweep over every registered workload at a small scale:
   the trace must be well-formed, the timestamping profiler must agree
   exactly with the naive oracle (a differential test on *real*
   program-shaped traces, not just random ones), Inequality 1 must hold,
   and the synchronization must be race-free under happens-before. *)

open Helpers
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry

let small_scale spec =
  (* keep the naive-oracle runs affordable *)
  match spec.Workload.name with
  | "vips" -> 30
  | "dedup" -> 60
  | _ -> 80

let run_with scheduler spec =
  Workload.run_spec ~scheduler spec ~threads:3 ~scale:(small_scale spec)
    ~seed:13

let run_one spec =
  run_with
    (Aprof_vm.Scheduler.Random_preemptive { min_slice = 4; max_slice = 48 })
    spec

let test_well_formed_and_differential spec () =
  let result = run_one spec in
  let trace = result.Aprof_vm.Interp.trace in
  Alcotest.(check (list string)) "well-formed" [] (Trace.well_formed trace);
  let p1 = run_drms trace in
  let p2 = run_naive trace in
  check_profiles_equal "timestamping = naive" p1 p2;
  check_ops_equal "attribution agrees" p1 p2;
  (* Inequality 1 on every activation *)
  List.iter
    (fun k ->
      match Profile.data p1 k with
      | None -> ()
      | Some d ->
        Alcotest.(check bool) "drms >= rms" true
          (d.Profile.sum_drms >= d.Profile.sum_rms))
    (Profile.keys p1)

let test_race_free spec () =
  let result = run_one spec in
  let t = Aprof_tools.Helgrind_lite.create () in
  Aprof_util.Vec.iter (Aprof_tools.Helgrind_lite.on_event t) result.Aprof_vm.Interp.trace;
  Alcotest.(check (list string)) "race-free" []
    (List.map
       (fun r -> Format.asprintf "%a" Aprof_tools.Helgrind_lite.pp_race r)
       (Aprof_tools.Helgrind_lite.races t))

(* The full policy menu: every workload must be schedulable — and keep
   its external input — under every policy, not just the default. *)
let policies =
  [
    ("rr", Aprof_vm.Scheduler.Round_robin { slice = 16 });
    ("serialized", Aprof_vm.Scheduler.Serialized);
    ( "random",
      Aprof_vm.Scheduler.Random_preemptive { min_slice = 4; max_slice = 48 } );
    ("ws", Aprof_vm.Scheduler.Work_stealing { workers = 3; slice = 16 });
    ("async", Aprof_vm.Scheduler.Async_io { slice = 16; io_delay = 4 });
  ]

(* mysqlslap draws its request mix from the shared VM rng at run time, so
   its external demand legitimately depends on the interleaving; every
   other workload fixes external input at build time and must show
   identical per-routine external-op counts under every scheduler. *)
let external_ops_by_name result =
  let p = run_drms result.Aprof_vm.Interp.trace in
  List.map
    (fun (id, d) ->
      ( Aprof_trace.Routine_table.name result.Aprof_vm.Interp.routines id,
        d.Profile.induced_external_ops ))
    (Profile.merge_threads p)
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort compare

let test_scheduler_matrix spec () =
  let counts =
    List.map
      (fun (pname, scheduler) ->
        let result = run_with scheduler spec in
        let trace = result.Aprof_vm.Interp.trace in
        Alcotest.(check (list string))
          (pname ^ " well-formed") [] (Trace.well_formed trace);
        let p1 = run_drms trace and p2 = run_naive trace in
        check_profiles_equal (pname ^ ": timestamping = naive") p1 p2;
        (pname, external_ops_by_name result))
      policies
  in
  if spec.Workload.name <> "mysqlslap" then
    match counts with
    | [] -> ()
    | (p0, c0) :: rest ->
      List.iter
        (fun (p, c) ->
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "external ops: %s = %s" p p0)
            c0 c)
        rest

let suite =
  List.concat_map
    (fun spec ->
      let name = spec.Workload.name in
      [
        Alcotest.test_case (name ^ ": differential") `Slow
          (test_well_formed_and_differential spec);
        Alcotest.test_case (name ^ ": race-free") `Slow (test_race_free spec);
        Alcotest.test_case (name ^ ": scheduler matrix") `Slow
          (test_scheduler_matrix spec);
      ])
    Registry.all
