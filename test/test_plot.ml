(* The ASCII plotting layer: geometry, legends, CSV shape. *)

module Plot = Aprof_plot.Ascii_plot

let test_render_contains_points () =
  let p =
    Plot.create ~width:40 ~height:10 ~title:"T" ~x_label:"x" ~y_label:"y" ()
  in
  Plot.add_series p ~name:"s" ~marker:'*' [ (0., 0.); (1., 1.); (0.5, 0.5) ];
  let s = Plot.render_string p in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "has marker" true (String.contains s '*');
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has legend" true (contains_sub s "*=s")

let test_render_empty () =
  let p = Plot.create ~title:"empty" ~x_label:"x" ~y_label:"y" () in
  Alcotest.(check bool) "renders without points" true
    (String.length (Plot.render_string p) > 0)

let test_degenerate_ranges () =
  let p = Plot.create ~title:"flat" ~x_label:"x" ~y_label:"y" () in
  Plot.add_series p ~name:"s" ~marker:'#' [ (5., 7.); (5., 7.) ];
  Alcotest.(check bool) "single point ok" true
    (String.contains (Plot.render_string p) '#')

let test_single_point () =
  let p = Plot.create ~title:"one" ~x_label:"x" ~y_label:"y" () in
  Plot.add_series p ~name:"s" ~marker:'@' [ (3., 9.) ];
  Alcotest.(check bool) "single point drawn" true
    (String.contains (Plot.render_string p) '@')

let test_constant_series () =
  (* Zero y-range: every point shares one value, so the y scale is
     degenerate; the plot must still place the markers, not divide by
     the empty range. *)
  let p = Plot.create ~title:"const" ~x_label:"x" ~y_label:"y" () in
  Plot.add_series p ~name:"s" ~marker:'+'
    (List.init 6 (fun i -> (float_of_int (i + 1), 42.)));
  let s = Plot.render_string p in
  Alcotest.(check bool) "constant series drawn" true (String.contains s '+');
  (* Also degenerate in x: a vertical stack of distinct ys. *)
  let q = Plot.create ~title:"vert" ~x_label:"x" ~y_label:"y" () in
  Plot.add_series q ~name:"s" ~marker:'o'
    (List.init 4 (fun i -> (5., float_of_int (10 * (i + 1)))));
  Alcotest.(check bool) "vertical series drawn" true
    (String.contains (Plot.render_string q) 'o')

let test_small_grid_rejected () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Ascii_plot.create: grid too small") (fun () ->
      ignore (Plot.create ~width:2 ~height:2 ~title:"" ~x_label:"" ~y_label:"" ()))

let test_csv () =
  let s = Plot.csv ~header:[ "a"; "b" ] [ [ 1.; 2. ]; [ 3.5; 4. ] ] in
  Alcotest.(check string) "csv format" "a,b\n1,2\n3.5,4\n" s

let test_histogram () =
  let s =
    Plot.histogram ~title:"H"
      ~rows:[ ("row1", [ ("x", 75.); ("y", 25.) ]); ("row2", [ ("x", 0.) ]) ]
  in
  Alcotest.(check bool) "title" true (String.sub s 0 1 = "H");
  Alcotest.(check bool) "bars drawn" true (String.contains s '#')

let suite =
  [
    Alcotest.test_case "render contains points" `Quick test_render_contains_points;
    Alcotest.test_case "render empty" `Quick test_render_empty;
    Alcotest.test_case "degenerate ranges" `Quick test_degenerate_ranges;
    Alcotest.test_case "single point" `Quick test_single_point;
    Alcotest.test_case "constant series" `Quick test_constant_series;
    Alcotest.test_case "small grid rejected" `Quick test_small_grid_rejected;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
