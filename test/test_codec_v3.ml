(* Differential battery for format version 3, the redundancy-suppressed
   trace encoding: on every trace we can generate — random event
   vectors, every registered workload, 50 random VM programs — the v3
   encode/decode cycle must agree event-for-event (and name-for-name)
   with both the in-memory trace and the v2 cycle, with and without the
   entropy stage, through the in-memory, streaming-file, seeking, and
   keep-filtered read paths, and parallel replay of a v3 file must equal
   sequential replay.  The v3 byte stream for a tiny trace is pinned so
   the packed grammar cannot drift silently. *)

module Event = Aprof_trace.Event
module Batch = Event.Batch
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Vec = Aprof_util.Vec
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Interp = Aprof_vm.Interp
module Tool = Aprof_tools.Tool

let decode_exn = Test_codec.decode_exn
let trace_equal = Test_codec.trace_equal
let decode_source = Test_codec.decode_source

let write_v3 ?(chunk_bytes = 256) ?(entropy = true) ?routine_name trace file =
  Out_channel.with_open_bin file (fun oc ->
      let sink =
        Codec.batch_writer ~chunk_bytes ~format_version:3 ~entropy
          ?routine_name oc
      in
      let batches = Stream.batches_of_trace ~batch_size:16 trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ())

let with_tmp f =
  let file = Filename.temp_file "aprof_v3" ".atrc" in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

(* The three-way check at the heart of the battery: trace = decode(v2) =
   decode(v3, entropy) = decode(v3, raw), names identical across
   versions. *)
let check_trace ~label ?routine_name trace =
  let s2 = Codec.to_string ?routine_name trace in
  let s3 = Codec.to_string ~format_version:3 ?routine_name trace in
  let s3r =
    Codec.to_string ~format_version:3 ~entropy:false ?routine_name trace
  in
  let t2, n2 = decode_exn s2 in
  let t3, n3 = decode_exn s3 in
  let t3r, n3r = decode_exn s3r in
  trace_equal (label ^ ": v2 = trace") t2 trace;
  trace_equal (label ^ ": v3 = trace") t3 trace;
  trace_equal (label ^ ": v3 raw = trace") t3r trace;
  Alcotest.(check (list (pair int string)))
    (label ^ ": v3 names = v2 names")
    n2 n3;
  Alcotest.(check (list (pair int string)))
    (label ^ ": v3 raw names = v2 names")
    n2 n3r

(* Same trace through the on-disk streaming path with small chunks, so
   the per-chunk context resets, the repeat/pattern state machine and
   the footer cross-check all fire. *)
let check_file ~label ?routine_name trace =
  List.iter
    (fun entropy ->
      with_tmp (fun file ->
          write_v3 ~entropy ?routine_name trace file;
          In_channel.with_open_bin file (fun ic ->
              Alcotest.(check int)
                (label ^ ": file version") 3 (Codec.file_version ic));
          In_channel.with_open_bin file (fun ic ->
              let _, src = Codec.batch_reader ic in
              trace_equal
                (Printf.sprintf "%s: v3 file (entropy %b) = trace" label
                   entropy)
                (decode_source src) trace);
          (* And through the shard index, chunk by chunk. *)
          In_channel.with_open_bin file (fun ic ->
              match Codec.shards ~path:file ic with
              | None -> Alcotest.failf "%s: v3 file has no shard index" label
              | Some shs ->
                let total =
                  Array.fold_left (fun a sh -> a + sh.Codec.events) 0 shs
                in
                Alcotest.(check int)
                  (label ^ ": index event total")
                  (Vec.length trace) total;
                let _, src =
                  Codec.sharded_reader ~path:file ic shs ~select:(fun _ ->
                      true)
                in
                trace_equal
                  (label ^ ": v3 sharded read = trace")
                  (decode_source src) trace)))
    [ true; false ]

(* --- random event vectors --------------------------------------------- *)

let gen_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"v3 = v2 = trace on random traces" ~count:150
       ~print:Gen_trace.print
       (Gen_trace.gen ())
       (fun trace ->
         check_trace ~label:"gen" trace;
         true))

let single_events_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"v3 round-trips every event variant"
       ~count:1000 ~print:Event.to_string Test_codec.gen_event (fun ev ->
         let tr, _ =
           decode_exn (Codec.to_string ~format_version:3 (Vec.of_list [ ev ]))
         in
         Vec.length tr = 1 && Event.equal (Vec.get tr 0) ev))

(* --- workload registry ------------------------------------------------ *)

let registry_differential () =
  List.iter
    (fun (spec : Workload.spec) ->
      let result = Workload.run_spec spec ~threads:2 ~scale:60 ~seed:11 in
      let trace = result.Interp.trace in
      let routine_name =
        Aprof_trace.Routine_table.name result.Interp.routines
      in
      check_trace ~label:spec.Workload.name ~routine_name trace)
    Registry.all

(* One workload also goes through the file path: the in-memory
   [to_string] shares the encoder but not the flush/footer plumbing. *)
let registry_files () =
  List.iter
    (fun name ->
      let spec = Option.get (Registry.find name) in
      let result = Workload.run_spec spec ~threads:3 ~scale:80 ~seed:3 in
      let routine_name =
        Aprof_trace.Routine_table.name result.Interp.routines
      in
      check_file ~label:name ~routine_name result.Interp.trace)
    [ "canneal"; "dedup"; "mysqlslap" ]

(* --- random VM programs ----------------------------------------------- *)

let program_differential () =
  for seed = 0 to 49 do
    let w =
      { Workload.programs = Test_vm_differential.gen_program seed;
        devices = Test_vm_differential.gen_devices () }
    in
    let result =
      Workload.run ~scheduler:(Aprof_vm.Scheduler.Round_robin { slice = 8 }) w
        ~seed
    in
    check_trace ~label:(Printf.sprintf "program %d" seed) result.Interp.trace
  done;
  (* A few of them through the chunked file path too. *)
  for seed = 0 to 9 do
    let w =
      { Workload.programs = Test_vm_differential.gen_program seed;
        devices = Test_vm_differential.gen_devices () }
    in
    let result =
      Workload.run ~scheduler:(Aprof_vm.Scheduler.Round_robin { slice = 8 }) w
        ~seed
    in
    check_file ~label:(Printf.sprintf "program %d" seed) result.Interp.trace
  done

(* --- keep-filtered session reads -------------------------------------- *)

(* The work-stealing engine pushes its shard filter into the decoder;
   on v3 the filter must skip events without desynchronizing the delta
   registers.  Events kept through [chunk_session ~keep] must equal the
   plain filter over the decoded trace. *)
let keep_filter_session () =
  let spec = Option.get (Registry.find "dedup") in
  let result = Workload.run_spec spec ~threads:3 ~scale:80 ~seed:9 in
  let trace = result.Interp.trace in
  let keep tag tid = tid mod 2 = 0 || tag = Batch.tag_call in
  let expected = ref [] in
  let batches = Stream.batches_of_trace trace in
  let rec loop () =
    match batches () with
    | None -> ()
    | Some b ->
      Batch.iter
        (fun tag tid arg len ->
          if keep tag tid then expected := (tag, tid, arg, len) :: !expected)
        b;
      loop ()
  in
  loop ();
  let expected = List.rev !expected in
  with_tmp (fun file ->
      write_v3 trace file;
      In_channel.with_open_bin file (fun ic ->
          let shs =
            match Codec.shards ~path:file ic with
            | Some shs -> shs
            | None -> Alcotest.fail "no shard index"
          in
          let _, read = Codec.chunk_session ~keep ic in
          let got = ref [] in
          Array.iter
            (fun sh ->
              let src = read sh in
              let rec drain () =
                match src () with
                | None -> ()
                | Some b ->
                  Batch.iter
                    (fun tag tid arg len ->
                      got := (tag, tid, arg, len) :: !got)
                    b;
                  drain ()
              in
              drain ())
            shs;
          let got = List.rev !got in
          Alcotest.(check int)
            "kept event count" (List.length expected) (List.length got);
          if got <> expected then
            Alcotest.fail "keep-filtered v3 session diverges from plain filter"))

(* --- parallel replay on v3 files -------------------------------------- *)

let parallel_v3_files () =
  List.iter
    (fun name ->
      let spec = Option.get (Registry.find name) in
      let result =
        Workload.run_spec
          ~scheduler:
            (Aprof_vm.Scheduler.Random_preemptive
               { min_slice = 4; max_slice = 32 })
          spec ~threads:3 ~scale:120 ~seed:5
      in
      let trace = result.Interp.trace in
      with_tmp (fun file ->
          write_v3 ~chunk_bytes:1024
            ~routine_name:
              (Aprof_trace.Routine_table.name result.Interp.routines)
            trace file;
          match Tool.Shards.of_file file with
          | None -> Alcotest.failf "%s: v3 file has no chunk index" name
          | Some shards ->
            Test_parallel_differential.check_shards
              ~label:(name ^ " (v3 file)")
              ~trace_events:(Vec.length trace) shards))
    [ "mysqlslap"; "dedup" ]

(* --- byte pin --------------------------------------------------------- *)

(* The packed grammar for a tiny trace, assembled by hand: def(0,"f") is
   opcode 15 + id + name-length + bytes, Call rides the implicit current
   tid (no set_tid at tid 0) with an absolute routine argument, Return is
   its bare tag.  The stored payload prepends the transform byte 0x01
   (packed, raw: 8 bytes is far below the entropy threshold), and the
   frame is the v2 layout over those stored bytes. *)
let v3_golden_bytes () =
  let trace =
    Vec.of_list [ Event.Call { tid = 0; routine = 0 }; Event.Return { tid = 0 } ]
  in
  let stored = "\x01\x0f\x00\x02f\x01\x00\x02" in
  let crc =
    Aprof_util.Crc32c.digest_string stored ~pos:0 ~len:(String.length stored)
  in
  let le32 = String.init 4 (fun i -> Char.chr ((crc lsr (8 * i)) land 0xff)) in
  let s =
    Codec.to_string ~format_version:3 ~routine_name:(fun _ -> "f") trace
  in
  Alcotest.(check string)
    "v3 golden"
    ("ATRC\x03\x08" ^ le32 ^ stored ^ "\x00")
    s

(* --- compression smoke ------------------------------------------------ *)

(* A strided sweep — the shape the delta + repeat stages exist for —
   must compress hard; the CI gate enforces the real workload ratio, this
   pins the mechanism itself. *)
let compression_smoke () =
  let tr = Vec.create () in
  Vec.push tr (Event.Call { tid = 0; routine = 0 });
  for i = 0 to 49_999 do
    Vec.push tr (Event.Read { tid = 0; addr = 4096 + (8 * i) });
    Vec.push tr (Event.Write { tid = 0; addr = 1_048_576 + (8 * i) })
  done;
  Vec.push tr (Event.Return { tid = 0 });
  let v2 = String.length (Codec.to_string tr) in
  let v3 = String.length (Codec.to_string ~format_version:3 tr) in
  if v3 * 5 > v2 then
    Alcotest.failf "strided sweep: v3 is %d bytes, v2 %d (want >= 5x)" v3 v2;
  (* The decoded stream must still be exact. *)
  let t3, _ = decode_exn (Codec.to_string ~format_version:3 tr) in
  trace_equal "compressed sweep round-trips" t3 tr

let suite =
  [
    gen_round_trip;
    single_events_round_trip;
    Alcotest.test_case "v3 = v2 = memory on every registered workload" `Slow
      registry_differential;
    Alcotest.test_case "v3 file paths on workload traces" `Slow registry_files;
    Alcotest.test_case "v3 = v2 = memory on 50 random programs" `Slow
      program_differential;
    Alcotest.test_case "keep-filtered v3 session = plain filter" `Quick
      keep_filter_session;
    Alcotest.test_case "parallel replay of v3 files, -j {2,3,4}" `Slow
      parallel_v3_files;
    Alcotest.test_case "v3 byte stream is pinned" `Quick v3_golden_bytes;
    Alcotest.test_case "strided sweep compresses >= 5x" `Quick
      compression_smoke;
  ]
