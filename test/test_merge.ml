(* Mergeable profiler state and the sharded parallel replay engine.

   Profile.merge must be a commutative monoid (associative, commutative,
   Profile.create () as identity) on profiles produced from real traces,
   and replaying through [Tool.replay_parallel] at several jobs must
   agree with sequential replay for every thread-shardable tool — the
   differential that licenses `aprof replay -j N`. *)

open Helpers
module Profile = Aprof_core.Profile
module Stream = Aprof_trace.Trace_stream
module Tool = Aprof_tools.Tool
module Par = Aprof_util.Par
module Vec = Aprof_util.Vec
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Interp = Aprof_vm.Interp

(* --- Profile.merge laws ---------------------------------------------- *)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a +. Float.abs b)

(* Exact agreement on points, activations, and op counters; float
   aggregates up to accumulation-order rounding. *)
let agree p q =
  signature p = signature q
  && ops_signature p = ops_signature q
  && List.for_all
       (fun k ->
         match (Profile.data p k, Profile.data q k) with
         | Some a, Some b ->
           close a.Profile.sum_rms b.Profile.sum_rms
           && close a.Profile.sum_drms b.Profile.sum_drms
           && close a.Profile.total_cost b.Profile.total_cost
         | _ -> false)
       (Profile.keys p)

let merge_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Profile.merge is commutative" ~count:40
       QCheck2.Gen.(pair (Gen_trace.gen ()) (Gen_trace.gen ()))
       (fun (t1, t2) ->
         let a = run_drms t1 and b = run_drms t2 in
         agree (Profile.merge a b) (Profile.merge b a)))

let merge_associative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Profile.merge is associative" ~count:40
       QCheck2.Gen.(triple (Gen_trace.gen ()) (Gen_trace.gen ()) (Gen_trace.gen ()))
       (fun (t1, t2, t3) ->
         let a = run_drms t1 and b = run_drms t2 and c = run_drms t3 in
         agree
           (Profile.merge (Profile.merge a b) c)
           (Profile.merge a (Profile.merge b c))))

let merge_identity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Profile.create is the merge identity" ~count:40
       (Gen_trace.gen ())
       (fun t ->
         let p = run_drms t in
         agree (Profile.merge p (Profile.create ())) p
         && agree (Profile.merge (Profile.create ()) p) p))

(* --- parallel replay = sequential replay ------------------------------ *)

let workloads = [ "mysqlslap"; "dedup" ]

let registry_trace name =
  let spec = Option.get (Registry.find name) in
  let r =
    Workload.run_spec
      ~scheduler:
        (Aprof_vm.Scheduler.Random_preemptive { min_slice = 4; max_slice = 32 })
      spec ~threads:3 ~scale:120 ~seed:5
  in
  r.Interp.trace

(* Every worker gets a fresh batch source over the whole trace; the
   engine's shard filter does the partitioning. *)
let replay_jobs (type a) (module M : Tool.S with type state = a) trace jobs :
    a * int =
  let pool = Par.create ~jobs () in
  Tool.replay_parallel ~pool ~jobs
    ~open_source:(fun ~worker:_ -> Stream.batches_of_trace trace)
    (module M)

let test_parallel_nulgrind () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let module M = Aprof_tools.Nulgrind.Mergeable in
      let st1, n1 = replay_jobs (module M) trace 1 in
      let st3, n3 = replay_jobs (module M) trace 3 in
      (* No broadcast events: each event reaches exactly one worker. *)
      Alcotest.(check int) (name ^ ": delivered once each") n1 n3;
      Alcotest.(check int)
        (name ^ ": merged count = sequential count")
        (Aprof_tools.Nulgrind.events st1)
        (Aprof_tools.Nulgrind.events st3);
      Alcotest.(check int) (name ^ ": whole trace") (Vec.length trace)
        (Aprof_tools.Nulgrind.events st3))
    workloads

let test_parallel_callgrind () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let module C = Aprof_tools.Callgrind_lite in
      let st1, _ = replay_jobs (module C.Mergeable) trace 1 in
      let st3, _ = replay_jobs (module C.Mergeable) trace 3 in
      (* Hashtable fold order is not deterministic: compare sorted. *)
      let costs t = List.sort compare (C.routine_costs t) in
      let edges t = List.sort compare (C.edges t) in
      Alcotest.(check bool)
        (name ^ ": routine costs agree")
        true
        (costs st1 = costs st3);
      Alcotest.(check bool) (name ^ ": edges agree") true (edges st1 = edges st3))
    workloads

(* A multi-threaded program seeded with memory bugs: errors found in
   different workers' shards must union into the sequential report. *)
let buggy_trace () =
  let open Aprof_vm.Program in
  let prog =
    let* a = alloc 8 in
    let worker base =
      let* _ = read (a + base) in
      (* uninitialized *)
      let* () = write (a + base) 1 in
      let* _ = read (a + base) in
      return ()
    in
    let* t1 = spawn (worker 0) in
    let* t2 = spawn (worker 2) in
    let* () = join t1 in
    let* () = join t2 in
    let* () = dealloc a 8 in
    let* _ = read a in
    (* use after free *)
    return ()
  in
  let r =
    Interp.run
      {
        Interp.scheduler =
          Aprof_vm.Scheduler.Random_preemptive { min_slice = 1; max_slice = 8 };
        seed = 3;
        devices = [];
        max_events = 1_000_000;
        reuse_freed_memory = false;
      }
      [ prog ]
  in
  r.Interp.trace

let test_parallel_memcheck () =
  let module M = Aprof_tools.Memcheck_lite in
  List.iter
    (fun (name, trace) ->
      let st1, _ = replay_jobs (module M.Mergeable) trace 1 in
      let st3, _ = replay_jobs (module M.Mergeable) trace 3 in
      let errs t =
        List.sort compare
          (List.map (Format.asprintf "%a" M.pp_error) (M.errors t))
      in
      Alcotest.(check (list string)) (name ^ ": errors agree") (errs st1)
        (errs st3);
      Alcotest.(check bool) (name ^ ": leaks agree") true
        (List.sort compare (M.leaks st1) = List.sort compare (M.leaks st3)))
    [
      ("mysqlslap", registry_trace "mysqlslap");
      ("seeded bugs", buggy_trace ());
    ]

let test_parallel_rms () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let st3, _ =
        replay_jobs (module Aprof_tools.Aprof_adapters.Rms_mergeable) trace 3
      in
      let p3 = Aprof_core.Rms_profiler.finish st3 in
      let p1 = run_rms trace in
      check_profiles_equal (name ^ ": rms parallel = sequential") p1 p3;
      check_ops_equal (name ^ ": op counters agree") p1 p3)
    workloads

(* --- the job pool itself ---------------------------------------------- *)

let test_par_map () =
  List.iter
    (fun jobs ->
      let pool = Par.create ~jobs () in
      Alcotest.(check int) "jobs" jobs (Par.jobs pool);
      let xs = Array.init 37 (fun i -> i) in
      Alcotest.(check (array int))
        (Printf.sprintf "map at %d jobs" jobs)
        (Array.map (fun x -> x * x) xs)
        (Par.map pool (fun x -> x * x) xs))
    [ 1; 2; 3 ]

let test_par_exceptions () =
  let pool = Par.create ~jobs:2 () in
  (match
     Par.run pool
       [|
         (fun () -> ());
         (fun () -> failwith "b");
         (fun () -> failwith "c");
       |]
   with
  | () -> Alcotest.fail "expected an exception"
  | exception Failure m ->
    Alcotest.(check string) "lowest-index failure wins" "b" m);
  match Par.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs = 0 accepted"

let suite =
  [
    merge_commutative;
    merge_associative;
    merge_identity;
    Alcotest.test_case "parallel nulgrind = sequential" `Quick
      test_parallel_nulgrind;
    Alcotest.test_case "parallel callgrind = sequential" `Quick
      test_parallel_callgrind;
    Alcotest.test_case "parallel memcheck = sequential" `Quick
      test_parallel_memcheck;
    Alcotest.test_case "parallel rms = sequential" `Quick test_parallel_rms;
    Alcotest.test_case "par: map matches sequential map" `Quick test_par_map;
    Alcotest.test_case "par: deterministic exception" `Quick test_par_exceptions;
  ]
