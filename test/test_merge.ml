(* Mergeable profiler state and the sharded parallel replay engine.

   Profile.merge must be a commutative monoid (associative, commutative,
   Profile.create () as identity) on profiles produced from real traces,
   and replaying through [Tool.replay_parallel] at several jobs must
   agree with sequential replay for every thread-shardable tool — the
   differential that licenses `aprof replay -j N`. *)

open Helpers
module Profile = Aprof_core.Profile
module Stream = Aprof_trace.Trace_stream
module Tool = Aprof_tools.Tool
module Par = Aprof_util.Par
module Vec = Aprof_util.Vec
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Interp = Aprof_vm.Interp

(* --- Profile.merge laws ---------------------------------------------- *)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a +. Float.abs b)

(* Exact agreement on points, activations, and op counters; float
   aggregates up to accumulation-order rounding. *)
let agree p q =
  signature p = signature q
  && ops_signature p = ops_signature q
  && List.for_all
       (fun k ->
         match (Profile.data p k, Profile.data q k) with
         | Some a, Some b ->
           close a.Profile.sum_rms b.Profile.sum_rms
           && close a.Profile.sum_drms b.Profile.sum_drms
           && close a.Profile.total_cost b.Profile.total_cost
         | _ -> false)
       (Profile.keys p)

let merge_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Profile.merge is commutative" ~count:40
       QCheck2.Gen.(pair (Gen_trace.gen ()) (Gen_trace.gen ()))
       (fun (t1, t2) ->
         let a = run_drms t1 and b = run_drms t2 in
         agree (Profile.merge a b) (Profile.merge b a)))

let merge_associative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Profile.merge is associative" ~count:40
       QCheck2.Gen.(triple (Gen_trace.gen ()) (Gen_trace.gen ()) (Gen_trace.gen ()))
       (fun (t1, t2, t3) ->
         let a = run_drms t1 and b = run_drms t2 and c = run_drms t3 in
         agree
           (Profile.merge (Profile.merge a b) c)
           (Profile.merge a (Profile.merge b c))))

let merge_identity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Profile.create is the merge identity" ~count:40
       (Gen_trace.gen ())
       (fun t ->
         let p = run_drms t in
         agree (Profile.merge p (Profile.create ())) p
         && agree (Profile.merge (Profile.create ()) p) p))

(* --- parallel replay = sequential replay ------------------------------ *)

let workloads = [ "mysqlslap"; "dedup" ]

let registry_trace name =
  let spec = Option.get (Registry.find name) in
  let r =
    Workload.run_spec
      ~scheduler:
        (Aprof_vm.Scheduler.Random_preemptive { min_slice = 4; max_slice = 32 })
      spec ~threads:3 ~scale:120 ~seed:5
  in
  r.Interp.trace

(* Synthetic chunking over the in-memory trace (small chunks, so every
   trace spans many chunks and the deques actually migrate work); the
   engine's shard filter does the partitioning. *)
let replay_jobs (type a) ?(chunk_events = 256)
    (module M : Tool.S with type state = a) trace jobs : a * int =
  let pool = Par.create ~jobs () in
  let shards = Tool.Shards.of_trace ~chunk_events trace in
  let st, n, _names = Tool.replay_parallel ~pool ~jobs ~shards (module M) in
  (st, n)

let test_parallel_nulgrind () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let module M = Aprof_tools.Nulgrind.Mergeable in
      let st1, n1 = replay_jobs (module M) trace 1 in
      let st3, n3 = replay_jobs (module M) trace 3 in
      (* No broadcast events: each event reaches exactly one worker. *)
      Alcotest.(check int) (name ^ ": delivered once each") n1 n3;
      Alcotest.(check int)
        (name ^ ": merged count = sequential count")
        (Aprof_tools.Nulgrind.events st1)
        (Aprof_tools.Nulgrind.events st3);
      Alcotest.(check int) (name ^ ": whole trace") (Vec.length trace)
        (Aprof_tools.Nulgrind.events st3))
    workloads

let test_parallel_callgrind () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let module C = Aprof_tools.Callgrind_lite in
      let st1, _ = replay_jobs (module C.Mergeable) trace 1 in
      let st3, _ = replay_jobs (module C.Mergeable) trace 3 in
      (* Hashtable fold order is not deterministic: compare sorted. *)
      let costs t = List.sort compare (C.routine_costs t) in
      let edges t = List.sort compare (C.edges t) in
      Alcotest.(check bool)
        (name ^ ": routine costs agree")
        true
        (costs st1 = costs st3);
      Alcotest.(check bool) (name ^ ": edges agree") true (edges st1 = edges st3))
    workloads

(* A multi-threaded program seeded with memory bugs: errors found in
   different workers' shards must union into the sequential report. *)
let buggy_trace () =
  let open Aprof_vm.Program in
  let prog =
    let* a = alloc 8 in
    let worker base =
      let* _ = read (a + base) in
      (* uninitialized *)
      let* () = write (a + base) 1 in
      let* _ = read (a + base) in
      return ()
    in
    let* t1 = spawn (worker 0) in
    let* t2 = spawn (worker 2) in
    let* () = join t1 in
    let* () = join t2 in
    let* () = dealloc a 8 in
    let* _ = read a in
    (* use after free *)
    return ()
  in
  let r =
    Interp.run
      {
        Interp.scheduler =
          Aprof_vm.Scheduler.Random_preemptive { min_slice = 1; max_slice = 8 };
        seed = 3;
        devices = [];
        max_events = 1_000_000;
        reuse_freed_memory = false;
      }
      [ prog ]
  in
  r.Interp.trace

let test_parallel_memcheck () =
  let module M = Aprof_tools.Memcheck_lite in
  List.iter
    (fun (name, trace) ->
      let st1, _ = replay_jobs (module M.Mergeable) trace 1 in
      let st3, _ = replay_jobs (module M.Mergeable) trace 3 in
      let errs t =
        List.sort compare
          (List.map (Format.asprintf "%a" M.pp_error) (M.errors t))
      in
      Alcotest.(check (list string)) (name ^ ": errors agree") (errs st1)
        (errs st3);
      Alcotest.(check bool) (name ^ ": leaks agree") true
        (List.sort compare (M.leaks st1) = List.sort compare (M.leaks st3)))
    [
      ("mysqlslap", registry_trace "mysqlslap");
      ("seeded bugs", buggy_trace ());
    ]

let test_parallel_rms () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let st3, _ =
        replay_jobs (module Aprof_tools.Aprof_adapters.Rms_mergeable) trace 3
      in
      let p3 = Aprof_core.Rms_profiler.finish st3 in
      let p1 = run_rms trace in
      check_profiles_equal (name ^ ": rms parallel = sequential") p1 p3;
      check_ops_equal (name ^ ": op counters agree") p1 p3)
    workloads

let test_parallel_drms () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let st3, n3 =
        replay_jobs (module Aprof_tools.Aprof_adapters.Drms_mergeable) trace 3
      in
      Alcotest.(check int)
        (name ^ ": unique events = trace length")
        (Vec.length trace) n3;
      let p3 = Aprof_core.Drms_profiler.finish st3 in
      let p1 = run_drms trace in
      check_profiles_equal (name ^ ": drms parallel = sequential") p1 p3;
      check_ops_equal (name ^ ": op counters agree") p1 p3)
    workloads

let test_parallel_naive () =
  List.iter
    (fun name ->
      let trace = registry_trace name in
      let st3, _ =
        replay_jobs (module Aprof_tools.Aprof_adapters.Naive_mergeable) trace 3
      in
      let p3 = Aprof_core.Naive_drms.finish st3 in
      let p1 = run_naive trace in
      check_profiles_equal (name ^ ": naive parallel = sequential") p1 p3)
    workloads

(* --- sharded drms merge laws ------------------------------------------ *)

module Drms = Aprof_core.Drms_profiler
module Event = Aprof_trace.Event

(* A drms shard built by hand: the profiler owns the threads [owns]
   selects and is fed its own threads' events plus every
   broadcast-tagged event, in trace order — exactly the substream
   {!Tool.replay_parallel} delivers. *)
let drms_shard ?overflow_limit owns trace =
  let p = Drms.create ?overflow_limit () in
  Drms.set_owner p owns;
  Vec.iter
    (fun ev ->
      let tag = Event.Batch.tag_of_event ev in
      if (Drms.shard_broadcast lsr tag) land 1 = 1 || owns (Event.tid ev) then
        Drms.on_event p ev)
    trace;
  p

let shard_agree msg expected merged =
  check_profiles_equal msg expected merged;
  check_ops_equal (msg ^ " (ops)") expected merged

(* The shard merge is commutative: merging odd-owner into even-owner
   equals the reverse, and both equal sequential replay.  Run once with
   a tiny overflow limit, so the law holds up to (repeated) timestamp
   renumbering of each shard's clock. *)
let sharded_merge_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sharded drms merge is commutative" ~count:25
       (Gen_trace.gen ())
       (fun t ->
         let sequential = run_drms t in
         let even tid = tid mod 2 = 0 and odd tid = tid mod 2 = 1 in
         List.iter
           (fun overflow_limit ->
             let shard owns = drms_shard ?overflow_limit owns t in
             let a = shard even and b = shard odd in
             Drms.merge_into ~into:a b;
             shard_agree "even <- odd = sequential" sequential
               (Drms.profile a);
             let a = shard even and b = shard odd in
             Drms.merge_into ~into:b a;
             shard_agree "odd <- even = sequential" sequential
               (Drms.profile b))
           [ None; Some 64 ];
         true))

let sharded_merge_associative =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sharded drms merge is associative" ~count:25
       (Gen_trace.gen ())
       (fun t ->
         let sequential = run_drms t in
         let shard r = drms_shard (fun tid -> tid mod 3 = r) t in
         (* (a <- b) <- c ... *)
         let a = shard 0 and b = shard 1 and c = shard 2 in
         Drms.merge_into ~into:a b;
         Drms.merge_into ~into:a c;
         shard_agree "(a+b)+c = sequential" sequential (Drms.profile a);
         (* ... versus a <- (b <- c). *)
         let a = shard 0 and b = shard 1 and c = shard 2 in
         Drms.merge_into ~into:b c;
         Drms.merge_into ~into:a b;
         shard_agree "a+(b+c) = sequential" sequential (Drms.profile a);
         true))

let sharded_merge_identity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"empty shard is the drms merge identity"
       ~count:25 (Gen_trace.gen ())
       (fun t ->
         let sequential = run_drms t in
         (* A shard owning no thread still replays the broadcast events;
            its profile is empty and merging it changes nothing. *)
         let all = drms_shard (fun _ -> true) t in
         let none = drms_shard (fun _ -> false) t in
         Drms.merge_into ~into:all none;
         shard_agree "all <- none = sequential" sequential (Drms.profile all);
         let all = drms_shard (fun _ -> true) t in
         let none = drms_shard (fun _ -> false) t in
         Drms.merge_into ~into:none all;
         shard_agree "none <- all = sequential" sequential
           (Drms.profile none);
         true))

(* Merged-wts renumbering inside shards must preserve the paper's
   rms-vs-drms distinction: the producer-consumer consumer still shows
   rms = 1, drms = n after a parallel replay whose shards renumbered
   their clocks many times mid-trace. *)
let test_renumbering_preserves_distinction () =
  let n = 25 in
  let result =
    run_workload (Aprof_workloads.Patterns.producer_consumer ~n)
  in
  let trace = result.Interp.trace in
  let tbl = result.Interp.routines in
  let module M = struct
    include Aprof_tools.Aprof_adapters.Drms_mergeable

    let create () = Drms.create ~overflow_limit:32 ()
  end in
  let st, _ = replay_jobs ~chunk_events:64 (module M) trace 3 in
  Alcotest.(check bool) "shard renumbered at least once" true
    (Drms.renumber_count st > 0);
  let profile = Drms.finish st in
  let consumer = routine_id tbl "consumer" in
  let keys =
    List.filter (fun k -> k.Profile.routine = consumer) (Profile.keys profile)
  in
  match keys with
  | [ k ] ->
    Alcotest.(check (list int))
      "consumer rms = 1" [ 1 ]
      (rms_values profile ~tid:k.Profile.tid ~routine:consumer);
    Alcotest.(check (list int))
      "consumer drms = n" [ n ]
      (drms_values profile ~tid:k.Profile.tid ~routine:consumer)
  | _ -> Alcotest.fail "expected exactly one consumer activation key"

(* --- the job pool itself ---------------------------------------------- *)

let test_par_map () =
  List.iter
    (fun jobs ->
      let pool = Par.create ~jobs () in
      Alcotest.(check int) "jobs" jobs (Par.jobs pool);
      let xs = Array.init 37 (fun i -> i) in
      Alcotest.(check (array int))
        (Printf.sprintf "map at %d jobs" jobs)
        (Array.map (fun x -> x * x) xs)
        (Par.map pool (fun x -> x * x) xs))
    [ 1; 2; 3 ]

let test_par_exceptions () =
  let pool = Par.create ~jobs:2 () in
  (match
     Par.run pool
       [|
         (fun () -> ());
         (fun () -> failwith "b");
         (fun () -> failwith "c");
       |]
   with
  | () -> Alcotest.fail "expected an exception"
  | exception Failure m ->
    Alcotest.(check string) "lowest-index failure wins" "b" m);
  match Par.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs = 0 accepted"

let suite =
  [
    merge_commutative;
    merge_associative;
    merge_identity;
    Alcotest.test_case "parallel nulgrind = sequential" `Quick
      test_parallel_nulgrind;
    Alcotest.test_case "parallel callgrind = sequential" `Quick
      test_parallel_callgrind;
    Alcotest.test_case "parallel memcheck = sequential" `Quick
      test_parallel_memcheck;
    Alcotest.test_case "parallel rms = sequential" `Quick test_parallel_rms;
    Alcotest.test_case "parallel drms = sequential" `Quick test_parallel_drms;
    Alcotest.test_case "parallel naive = sequential" `Quick test_parallel_naive;
    sharded_merge_commutative;
    sharded_merge_associative;
    sharded_merge_identity;
    Alcotest.test_case "renumbering keeps rms < drms on producer-consumer"
      `Quick test_renumbering_preserves_distinction;
    Alcotest.test_case "par: map matches sequential map" `Quick test_par_map;
    Alcotest.test_case "par: deterministic exception" `Quick test_par_exceptions;
  ]
