(* The differential that licenses [aprof replay --profiler {drms,naive}
   -j N]: parallel replay through the work-stealing engine must produce
   exactly the sequential profile — same points, same activation
   counts, same attribution counters — for 50 random VM programs under
   every scheduler policy at N ∈ {2, 3, 4}, and for real workload
   traces round-tripped through the on-disk chunk index. *)

open Helpers
module Interp = Aprof_vm.Interp
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Tool = Aprof_tools.Tool
module Par = Aprof_util.Par
module Drms = Aprof_core.Drms_profiler
module Naive = Aprof_core.Naive_drms

let jobs_list = [ 2; 3; 4 ]

let check_shards ~label ~trace_events shards =
  let drms1, naive1 =
    (* Sequential baselines through the same engine entry point. *)
    let pool = Par.create ~jobs:1 () in
    let d, _, _ =
      Tool.replay_parallel ~pool ~jobs:1 ~shards
        (module Aprof_tools.Aprof_adapters.Drms_mergeable)
    in
    let n, _, _ =
      Tool.replay_parallel ~pool ~jobs:1 ~shards
        (module Aprof_tools.Aprof_adapters.Naive_mergeable)
    in
    (Drms.finish d, Naive.finish n)
  in
  List.iter
    (fun jobs ->
      let pool = Par.create ~jobs () in
      let st, n, _ =
        Tool.replay_parallel ~pool ~jobs ~shards
          (module Aprof_tools.Aprof_adapters.Drms_mergeable)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s -j%d: unique events" label jobs)
        trace_events n;
      let p = Drms.finish st in
      check_profiles_equal
        (Printf.sprintf "%s -j%d: drms = -j1" label jobs)
        drms1 p;
      check_ops_equal
        (Printf.sprintf "%s -j%d: drms attribution = -j1" label jobs)
        drms1 p;
      let st, _, _ =
        Tool.replay_parallel ~pool ~jobs ~shards
          (module Aprof_tools.Aprof_adapters.Naive_mergeable)
      in
      check_profiles_equal
        (Printf.sprintf "%s -j%d: naive = -j1" label jobs)
        naive1
        (Naive.finish st))
    jobs_list

let check_program ~sched_name ~scheduler seed =
  let w =
    { Workload.programs = Test_vm_differential.gen_program seed;
        devices = Test_vm_differential.gen_devices () }
  in
  let result = Workload.run ~scheduler w ~seed in
  let trace = result.Interp.trace in
  (* Small chunks, so even these short traces span enough chunks for the
     deques to migrate work. *)
  check_shards
    ~label:(Printf.sprintf "seed %d (%s)" seed sched_name)
    ~trace_events:(Vec.length trace)
    (Tool.Shards.of_trace ~chunk_events:64 trace)

let program_tests =
  List.map
    (fun (sched_name, scheduler) ->
      Alcotest.test_case
        (Printf.sprintf "50 random programs (%s), -j {2,3,4}" sched_name)
        `Slow
        (fun () ->
          for seed = 0 to 49 do
            check_program ~sched_name ~scheduler seed
          done))
    Test_vm_differential.schedulers

(* Same differential, but through the real on-disk path: record the
   trace to a binary file (chunked, with the ATRI shard index) and
   shard via {!Tool.Shards.of_file} — seeks, checksums and the shared
   name table included. *)
let test_file_roundtrip () =
  List.iter
    (fun name ->
      let spec = Option.get (Registry.find name) in
      let result =
        Workload.run_spec
          ~scheduler:
            (Aprof_vm.Scheduler.Random_preemptive
               { min_slice = 4; max_slice = 32 })
          spec ~threads:3 ~scale:120 ~seed:5
      in
      let trace = result.Interp.trace in
      let path = Filename.temp_file "aprof_pardiff" ".atrc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Out_channel.with_open_bin path (fun oc ->
              let sink =
                Codec.batch_writer
                  ~routine_name:
                    (Aprof_trace.Routine_table.name result.Interp.routines)
                  oc
              in
              let batches = Stream.batches_of_trace trace in
              let rec loop () =
                match batches () with
                | None -> ()
                | Some b ->
                  sink.Stream.emit_batch b;
                  loop ()
              in
              loop ();
              sink.Stream.close_batch ());
          match Tool.Shards.of_file path with
          | None -> Alcotest.failf "%s: recorded file has no chunk index" name
          | Some shards ->
            check_shards ~label:(name ^ " (file)")
              ~trace_events:(Vec.length trace) shards))
    [ "mysqlslap"; "dedup" ]

let suite =
  program_tests
  @ [ Alcotest.test_case "workload files via the chunk index" `Quick
        test_file_roundtrip ]
