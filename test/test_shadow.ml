(* Shadow memory: model-based equivalence against a Hashtbl, plus the
   renumbering and space-accounting contracts. *)

module Shadow = Aprof_shadow.Shadow_memory

type op = Set of int * int | Set_range of int * int * int | Get of int

let gen_ops =
  let open QCheck2.Gen in
  let addr = int_range 0 5000 in
  let op =
    frequency
      [
        (4, map2 (fun a v -> Set (a, v)) addr (int_range 0 1000));
        (1, map3 (fun a l v -> Set_range (a, l, v)) addr (int_range 0 50) (int_range 1 1000));
        (4, map (fun a -> Get a) addr);
      ]
  in
  list_size (int_range 1 300) op

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Set (a, v) -> Printf.sprintf "set %d %d" a v
         | Set_range (a, l, v) -> Printf.sprintf "range %d %d %d" a l v
         | Get a -> Printf.sprintf "get %d" a)
       ops)

let model_equivalence ops =
  (* exercise a tiny geometry so chunk boundaries are crossed often *)
  let s = Shadow.create ~leaf_bits:4 ~mid_bits:4 () in
  let model = Hashtbl.create 64 in
  List.for_all
    (function
      | Set (a, v) ->
        Shadow.set s a v;
        Hashtbl.replace model a v;
        true
      | Set_range (a, l, v) ->
        Shadow.set_range s ~addr:a ~len:l v;
        for x = a to a + l - 1 do
          Hashtbl.replace model x v
        done;
        true
      | Get a ->
        Shadow.get s a = Option.value ~default:0 (Hashtbl.find_opt model a))
    ops

let iter_matches_model ops =
  let s = Shadow.create ~leaf_bits:4 ~mid_bits:4 () in
  let model = Hashtbl.create 64 in
  List.iter
    (function
      | Set (a, v) ->
        Shadow.set s a v;
        Hashtbl.replace model a v
      | Set_range (a, l, v) ->
        Shadow.set_range s ~addr:a ~len:l v;
        for x = a to a + l - 1 do
          Hashtbl.replace model x v
        done
      | Get _ -> ())
    ops;
  let from_iter = ref [] in
  Shadow.iter_set (fun a v -> from_iter := (a, v) :: !from_iter) s;
  let expected =
    Hashtbl.fold (fun a v acc -> if v <> 0 then (a, v) :: acc else acc) model []
    |> List.sort compare
  in
  List.sort compare !from_iter = expected

let map_preserves_order ops =
  let s = Shadow.create ~leaf_bits:4 ~mid_bits:4 () in
  List.iter
    (function
      | Set (a, v) -> Shadow.set s a (v + 1)
      | Set_range (a, l, v) -> Shadow.set_range s ~addr:a ~len:l (v + 1)
      | Get _ -> ())
    ops;
  Shadow.map_in_place (fun v -> if v = 0 then 0 else (2 * v) + 1) s;
  let ok = ref true in
  Shadow.iter_set (fun _ v -> if v land 1 = 0 then ok := false) s;
  !ok

let test_basics () =
  let s = Shadow.create () in
  Alcotest.(check int) "unset reads 0" 0 (Shadow.get s 123456);
  Shadow.set s 0 7;
  Shadow.set s 123456 9;
  Alcotest.(check int) "set/get low" 7 (Shadow.get s 0);
  Alcotest.(check int) "set/get high" 9 (Shadow.get s 123456);
  (* get/set themselves no longer guard (addresses are validated at the
     batch edge); the exported edge check still rejects. *)
  Alcotest.check_raises "negative address"
    (Invalid_argument "Shadow_memory: negative address") (fun () ->
      Shadow.check_addr (-1));
  Alcotest.(check int) "negative get misses harmlessly" 0 (Shadow.get s (-1))

let test_space_accounting () =
  let s = Shadow.create ~leaf_bits:8 ~mid_bits:8 () in
  let before = Shadow.space_words s in
  Shadow.set s 0 1;
  let after_one = Shadow.space_words s in
  Alcotest.(check bool) "materializing grows space" true (after_one > before);
  Shadow.set s 1 1;
  Alcotest.(check int) "same leaf, same space" after_one (Shadow.space_words s);
  Shadow.set s (1 lsl 20) 1;
  Alcotest.(check bool) "distant leaf grows space" true
    (Shadow.space_words s > after_one);
  Shadow.clear s;
  Alcotest.(check int) "clear read" 0 (Shadow.get s 0)

let test_map_rejects_bad_zero () =
  let s = Shadow.create () in
  Shadow.set s 3 1;
  Alcotest.check_raises "f 0 <> 0 rejected"
    (Invalid_argument "Shadow_memory.map_in_place: f 0 <> 0") (fun () ->
      Shadow.map_in_place (fun v -> v + 1) s)

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:200 ~print:print_ops gen_ops f)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "space accounting" `Quick test_space_accounting;
    Alcotest.test_case "map_in_place zero guard" `Quick test_map_rejects_bad_zero;
    prop "get/set model equivalence" model_equivalence;
    prop "iter_set matches model" iter_matches_model;
    prop "map_in_place hits every set cell" map_preserves_order;
  ]
