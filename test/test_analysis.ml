(* The layered analysis stack: penalized model selection, versioned
   model stores, and the cost-diff regression watch. *)

module Basis = Aprof_analysis.Fit_basis
module Solve = Aprof_analysis.Fit_solve
module Select = Aprof_analysis.Fit_select
module Store = Aprof_analysis.Model_store
module Diff = Aprof_analysis.Cost_diff
module Run_meta = Aprof_analysis.Run_meta
module Profile = Aprof_core.Profile
module Fit = Aprof_core.Fit

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- synthetic battery -------------------------------------------------- *)

let battery_classes : (Basis.cls * float array) list =
  [
    (Basis.Constant, [| 40. |]);
    (Basis.Plateau, [| 30.; 4.; 900. |]);
    (Basis.Logarithmic, [| 20.; 15. |]);
    (Basis.Linear, [| 40.; 3. |]);
    (Basis.Linearithmic, [| 30.; 2.; 0.7 |]);
    (Basis.Quadratic, [| 50.; 5.; 0.08 |]);
    (Basis.Quadratic_log, [| 40.; 2.; 0.05; 0.02 |]);
    (Basis.Cubic, [| 40.; 1.; 0.01; 0.002 |]);
  ]

let battery_sizes =
  let rec go acc n =
    if n > 20000. then List.rev acc else go (int_of_float n :: acc) (n *. 1.68)
  in
  go [] 8.

let plant rng cls coefs ~noise =
  List.map
    (fun n ->
      let y = Basis.eval cls ~coefs (float_of_int n) in
      let f = Float.max 0.05 (Aprof_util.Rng.gaussian rng ~mu:1.0 ~sigma:noise) in
      (n, y *. f))
    battery_sizes

(* The tentpole property: on noisy curves of known class, the penalized
   selection recovers the truth at least 90% of the time, while the
   legacy raw-r^2 ranking — monotone in model size under the nested
   designs — overfits upward on a substantial fraction.  Deterministic:
   fixed seeds, fixed sizes. *)
let test_battery_recovery () =
  let total = ref 0 and ok = ref 0 and r2_ok = ref 0 and overfit = ref 0 in
  List.iter
    (fun (cls, coefs) ->
      List.iter
        (fun noise ->
          for seed = 1 to 8 do
            let rng =
              Aprof_util.Rng.create
                ((seed * 7919) + int_of_float (noise *. 1000.))
            in
            let points = plant rng cls coefs ~noise in
            match Select.select ~bootstrap:0 ~seed points with
            | None -> Alcotest.failf "no selection for %s" (Basis.name cls)
            | Some sel ->
              incr total;
              if sel.Select.best.Solve.cls = cls then incr ok;
              (match sel.Select.by_r2 with
              | top :: _ ->
                if top.Solve.cls = cls then incr r2_ok
                else if Basis.order top.Solve.cls > Basis.order cls then
                  incr overfit
              | [] -> ())
          done)
        [ 0.05; 0.12 ])
    battery_classes;
  let frac a = float_of_int !a /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "penalized recovery >= 90%% (got %.1f%%)" (100. *. frac ok))
    true
    (frac ok >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "r2-only demonstrably worse (got %.1f%%)"
       (100. *. frac r2_ok))
    true
    (frac r2_ok < frac ok -. 0.15);
  Alcotest.(check bool)
    (Printf.sprintf "r2-only overfits upward (got %.1f%%)"
       (100. *. frac overfit))
    true
    (frac overfit >= 0.2)

let test_noiseless_ties_to_simplest () =
  let points = List.map (fun n -> (n, 40. +. (3. *. float_of_int n))) battery_sizes in
  match Select.select ~bootstrap:0 points with
  | None -> Alcotest.fail "no selection"
  | Some sel ->
    Alcotest.(check string) "exact linear data selects O(n)" "O(n)"
      (Basis.name sel.Select.best.Solve.cls)

let test_plateau_recovery () =
  let coefs = [| 30.; 4.; 900. |] in
  let points =
    List.map (fun n -> (n, Basis.eval Basis.Plateau ~coefs (float_of_int n)))
      battery_sizes
  in
  match Select.select ~bootstrap:0 points with
  | None -> Alcotest.fail "no selection"
  | Some sel ->
    Alcotest.(check string) "plateau class" "plateau"
      (Basis.name sel.Select.best.Solve.cls);
    let n0 = sel.Select.best.Solve.coefs.(2) in
    Alcotest.(check bool)
      (Printf.sprintf "breakpoint near 900 (got %.0f)" n0)
      true
      (n0 >= 300. && n0 <= 2600.)

let test_select_deterministic () =
  let rng = Aprof_util.Rng.create 3 in
  let points = plant rng Basis.Quadratic [| 50.; 5.; 0.08 |] ~noise:0.1 in
  match (Select.select ~seed:9 points, Select.select ~seed:9 points) with
  | Some a, Some b ->
    Alcotest.(check string) "same class"
      (Basis.name a.Select.best.Solve.cls)
      (Basis.name b.Select.best.Solve.cls);
    Alcotest.(check (float 0.)) "same confidence" a.Select.confidence
      b.Select.confidence;
    Alcotest.(check bool) "confidence in [0,1]" true
      (a.Select.confidence >= 0. && a.Select.confidence <= 1.)
  | _ -> Alcotest.fail "no selection"

let test_select_degenerate () =
  Alcotest.(check bool) "empty" true (Select.select [] = None);
  Alcotest.(check bool) "two distinct inputs" true
    (Select.select [ (1, 2.); (1, 3.); (2, 4.) ] = None);
  (* Non-finite costs are dropped, not propagated. *)
  match
    Select.select ~bootstrap:0
      [ (1, 1.); (2, 2.); (4, 4.); (8, 8.); (16, nan); (32, infinity) ]
  with
  | None -> Alcotest.fail "finite subset should still fit"
  | Some sel ->
    List.iter
      (fun (f, score) ->
        Alcotest.(check bool) "finite score" true (Float.is_finite score);
        Array.iter
          (fun c -> Alcotest.(check bool) "finite coef" true (Float.is_finite c))
          f.Solve.coefs)
      sel.Select.ranking

let test_exponent_interval () =
  let rng = Aprof_util.Rng.create 11 in
  let points =
    List.map
      (fun n ->
        let y = 2. *. (float_of_int n ** 1.5) in
        (n, y *. Aprof_util.Rng.gaussian rng ~mu:1.0 ~sigma:0.05))
      battery_sizes
  in
  match Select.select ~seed:4 points with
  | Some { Select.exponent = Some (k, lo, hi); _ } ->
    Alcotest.(check bool)
      (Printf.sprintf "interval brackets estimate (%.2f in %.2f..%.2f)" k lo hi)
      true
      (lo <= k && k <= hi);
    Alcotest.(check (float 0.15)) "exponent near 1.5" 1.5 k
  | _ -> Alcotest.fail "expected an exponent interval"

(* --- model store -------------------------------------------------------- *)

let meta ?(seed = 1) () =
  {
    Run_meta.workload = "synthetic";
    seed;
    scale = 100;
    threads = 2;
    scheduler = "round-robin(64)";
  }

let entry ?(routine = "r") ?(metric = `Drms) ?(cls = Basis.Linear)
    ?(coefs = [| 5.; 3. |]) ?(confidence = 0.95) ?(exponent = Some (1.0, 0.9, 1.1))
    () =
  {
    Store.routine;
    metric;
    cls;
    coefs;
    n_points = 12;
    r2 = 0.99;
    confidence;
    exponent;
  }

let check_entry_equal msg (a : Store.entry) (b : Store.entry) =
  Alcotest.(check string) (msg ^ ": routine") a.Store.routine b.Store.routine;
  Alcotest.(check string)
    (msg ^ ": metric")
    (Store.metric_name a.Store.metric)
    (Store.metric_name b.Store.metric);
  Alcotest.(check string)
    (msg ^ ": class")
    (Basis.name a.Store.cls) (Basis.name b.Store.cls);
  Alcotest.(check int) (msg ^ ": n_points") a.Store.n_points b.Store.n_points;
  Alcotest.(check (float 0.)) (msg ^ ": r2") a.Store.r2 b.Store.r2;
  Alcotest.(check (float 0.))
    (msg ^ ": confidence")
    a.Store.confidence b.Store.confidence;
  Alcotest.(check int)
    (msg ^ ": coef count")
    (Array.length a.Store.coefs)
    (Array.length b.Store.coefs);
  Array.iteri
    (fun i c -> Alcotest.(check (float 0.)) (msg ^ ": coef") c b.Store.coefs.(i))
    a.Store.coefs;
  match (a.Store.exponent, b.Store.exponent) with
  | None, None -> ()
  | Some (k, lo, hi), Some (k', lo', hi') ->
    Alcotest.(check (float 0.)) (msg ^ ": k") k k';
    Alcotest.(check (float 0.)) (msg ^ ": lo") lo lo';
    Alcotest.(check (float 0.)) (msg ^ ": hi") hi hi'
  | _ -> Alcotest.failf "%s: exponent presence differs" msg

let test_store_roundtrip () =
  let entries =
    [
      entry ~routine:"plain" ();
      entry ~routine:"name, with, commas" ~metric:`Rms ~cls:Basis.Plateau
        ~coefs:[| 1.; 2.; 300. |] ~exponent:None ();
      entry ~routine:"cubic one" ~cls:Basis.Cubic ~coefs:[| 1.; 0.; 0.; 2e-3 |]
        ();
    ]
  in
  let store = Store.create ~meta:(meta ()) entries in
  match Store.of_string (Store.to_string store) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok back ->
    Alcotest.(check int) "entry count" (List.length entries)
      (List.length back.Store.entries);
    List.iter2 (check_entry_equal "entry") store.Store.entries
      back.Store.entries;
    (match back.Store.meta with
    | Some m ->
      Alcotest.(check string) "meta workload" "synthetic" m.Run_meta.workload;
      Alcotest.(check string) "meta scheduler" "round-robin(64)"
        m.Run_meta.scheduler
    | None -> Alcotest.fail "meta lost");
    (* Entries come back sorted and findable. *)
    (match Store.find back ~routine:"name, with, commas" ~metric:`Rms with
    | Some e ->
      Alcotest.(check string) "comma name preserved" "name, with, commas"
        e.Store.routine
    | None -> Alcotest.fail "comma-named routine not found");
    Alcotest.(check (list string)) "routines sorted"
      [ "cubic one"; "name, with, commas"; "plain" ]
      (Store.routines back)

let test_store_versioning () =
  let dump = Store.to_string (Store.create [ entry () ]) in
  (* A future version is refused, not misparsed. *)
  let future =
    "costmodel,99\n"
    ^ String.concat "\n" (List.tl (String.split_on_char '\n' dump))
  in
  (match Store.of_string future with
  | Error e ->
    Alcotest.(check bool) "error names the version" true
      (contains_sub e "unsupported")
  | Ok _ -> Alcotest.fail "future store version accepted");
  (* A file without the header is not a store. *)
  (match Store.of_string "model,drms,linear,3,1,1,1,1,1,2,1,2,r\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "headerless store accepted");
  (* Unknown record kinds and malformed models are rejected with a line. *)
  List.iter
    (fun s ->
      match Store.of_string ("costmodel,1\n" ^ s) with
      | Error e ->
        Alcotest.(check bool) "mentions line" true
          (contains_sub e "line")
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      "bogus,1\n";
      "model,drms,linear,3\n";
      "model,drms,nosuch,3,1,1,1,1,1,2,1,2,r\n";
      "model,drms,linear,3,1,1,1,1,1,5,1,2,r\n";
    ]

(* --- cost diff ---------------------------------------------------------- *)

let sizes8 = [ 10; 20; 40; 80; 160; 320; 640; 1280 ]

let profile_with cost_fn =
  let p = Profile.create () in
  List.iter
    (fun n ->
      Profile.record_activation p ~tid:0 ~routine:1 ~rms:n ~drms:n
        ~cost:(cost_fn n))
    sizes8;
  p

let analyze_with ~seed p =
  Fit.analyze ~bootstrap:40 ~seed ~routine_name:(fun i -> Printf.sprintf "r%d" i)
    p

let test_planted_regression () =
  (* A routine that was linear in its drms and turned quadratic: the
     regression watch's reason to exist.  Real profiles, real analyze. *)
  let old_profile = profile_with (fun n -> 50 + (3 * n)) in
  let new_profile = profile_with (fun n -> 50 + (n * n / 10)) in
  let old_store =
    Store.create ~meta:(meta ~seed:1 ()) (analyze_with ~seed:1 old_profile)
  in
  let new_store =
    Store.create ~meta:(meta ~seed:2 ()) (analyze_with ~seed:2 new_profile)
  in
  match Diff.diff old_store new_store with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok report ->
    Alcotest.(check bool) "regression found" true (Diff.has_regression report);
    let class_regressions =
      List.filter
        (fun (f : Diff.finding) ->
          f.Diff.severity = Diff.Regression
          &&
          match f.Diff.change with
          | Diff.Class_change { old_cls; new_cls; _ } ->
            old_cls = Basis.Linear && new_cls = Basis.Quadratic
          | _ -> false)
        report.Diff.findings
    in
    Alcotest.(check bool) "linear -> quadratic class change" true
      (class_regressions <> []);
    List.iter
      (fun (f : Diff.finding) ->
        Alcotest.(check string) "on routine r1" "r1" f.Diff.routine)
      report.Diff.findings

let test_self_diff_clean () =
  let profile = profile_with (fun n -> 50 + (3 * n)) in
  let store =
    Store.create ~meta:(meta ~seed:1 ()) (analyze_with ~seed:1 profile)
  in
  match Diff.diff store store with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok report ->
    Alcotest.(check int) "no findings" 0 (List.length report.Diff.findings);
    Alcotest.(check bool) "clean" false (Diff.has_regression report);
    Alcotest.(check bool) "compared something" true (report.Diff.compared > 0)

(* The acceptance path on a real workload: the same seed produces the
   same profile, hence the same store, hence a clean diff. *)
let test_workload_self_diff_clean () =
  let run () =
    let spec = Option.get (Aprof_workloads.Registry.find "mysqlslap") in
    let result =
      Aprof_workloads.Workload.run_spec spec ~threads:3 ~scale:30 ~seed:42
    in
    let p = Aprof_core.Drms_profiler.create () in
    Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
    let profile = Aprof_core.Drms_profiler.finish p in
    let routine_name =
      Aprof_trace.Routine_table.name result.Aprof_vm.Interp.routines
    in
    Store.create
      ~meta:
        {
          Run_meta.workload = "mysqlslap";
          seed = 42;
          scale = 30;
          threads = 3;
          scheduler = "round-robin(64)";
        }
      (Fit.analyze ~bootstrap:60 ~seed:42 ~routine_name profile)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "store has models" true (a.Store.entries <> []);
  match Diff.diff a b with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok report ->
    Alcotest.(check int) "same-seed self-diff is clean" 0
      (List.length report.Diff.findings)

let test_confidence_gate () =
  let mk confidence cls =
    Store.create ~meta:(meta ())
      [ entry ~cls ~coefs:(if cls = Basis.Linear then [| 5.; 3. |] else [| 5.; 3.; 2. |]) ~confidence () ]
  in
  (* Below the gate: the change is reported, but as info, and does not
     fail the watch. *)
  (match Diff.diff (mk 0.5 Basis.Linear) (mk 0.9 Basis.Quadratic) with
  | Ok report ->
    Alcotest.(check bool) "not a regression" false (Diff.has_regression report);
    (match report.Diff.findings with
    | [ f ] ->
      Alcotest.(check bool) "severity info" true (f.Diff.severity = Diff.Info)
    | l -> Alcotest.failf "expected one finding, got %d" (List.length l))
  | Error e -> Alcotest.failf "diff refused: %s" e);
  (* At the gate: a real regression. *)
  match Diff.diff (mk 0.9 Basis.Linear) (mk 0.9 Basis.Quadratic) with
  | Ok report ->
    Alcotest.(check bool) "regression" true (Diff.has_regression report)
  | Error e -> Alcotest.failf "diff refused: %s" e

let test_slope_change () =
  let mk b =
    Store.create ~meta:(meta ()) [ entry ~coefs:[| 5.; b |] () ]
  in
  (match Diff.diff (mk 3.) (mk 9.) with
  | Ok report -> (
    match report.Diff.findings with
    | [ { Diff.severity = Diff.Regression; change = Diff.Slope_change s; _ } ] ->
      Alcotest.(check (float 1e-9)) "ratio" 3. s.ratio
    | _ -> Alcotest.fail "expected one slope regression")
  | Error e -> Alcotest.failf "diff refused: %s" e);
  (match Diff.diff (mk 9.) (mk 3.) with
  | Ok report -> (
    match report.Diff.findings with
    | [ { Diff.severity = Diff.Improvement; change = Diff.Slope_change _; _ } ]
      ->
      ()
    | _ -> Alcotest.fail "expected one slope improvement")
  | Error e -> Alcotest.failf "diff refused: %s" e);
  (* Within the gate: silence. *)
  match Diff.diff (mk 3.) (mk 4.) with
  | Ok report -> Alcotest.(check int) "no finding" 0 (List.length report.Diff.findings)
  | Error e -> Alcotest.failf "diff refused: %s" e

let test_divergence_change () =
  let mk drms_cls =
    Store.create ~meta:(meta ())
      [
        entry ~metric:`Drms ~cls:drms_cls
          ~coefs:(if drms_cls = Basis.Constant then [| 5. |] else [| 5.; 3. |])
          ();
        entry ~metric:`Rms ~cls:Basis.Linear ();
      ]
  in
  (* drms saturating under a growing rms is the paper's Fig. 4 shape;
     its appearance is a regression (a bounded working set started being
     re-read), its disappearance an improvement.  The class-change
     finding for drms rides along. *)
  match Diff.diff (mk Basis.Linear) (mk Basis.Constant) with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok report ->
    let div =
      List.filter
        (fun (f : Diff.finding) ->
          match f.Diff.change with
          | Diff.Divergence_change d ->
            Alcotest.(check bool) "now divergent" true d.now_divergent;
            Alcotest.(check bool) "metric-less finding" true (f.Diff.metric = None);
            true
          | _ -> false)
        report.Diff.findings
    in
    Alcotest.(check int) "one divergence finding" 1 (List.length div)

let test_meta_discipline () =
  let s1 = Store.create ~meta:(meta ()) [ entry () ] in
  let s2 =
    Store.create
      ~meta:{ (meta ()) with Run_meta.scale = 999 }
      [ entry () ]
  in
  (match Diff.diff s1 s2 with
  | Error e ->
    Alcotest.(check bool) "names the field" true
      (contains_sub e "scale")
  | Ok _ -> Alcotest.fail "incomparable scales diffed");
  (* Different seeds are comparable by design. *)
  (match
     Diff.diff s1 (Store.create ~meta:(meta ~seed:77 ()) [ entry () ])
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed should not block a diff: %s" e);
  (* Missing metadata: refused by default, allowed explicitly. *)
  let bare = Store.create [ entry () ] in
  (match Diff.diff s1 bare with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing meta accepted by default");
  match Diff.diff ~require_meta:false s1 bare with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "require_meta:false still refused: %s" e

let test_only_in_lists () =
  let s_old =
    Store.create ~meta:(meta ()) [ entry ~routine:"gone" (); entry ~routine:"both" () ]
  in
  let s_new =
    Store.create ~meta:(meta ()) [ entry ~routine:"both" (); entry ~routine:"fresh" () ]
  in
  match Diff.diff s_old s_new with
  | Error e -> Alcotest.failf "diff refused: %s" e
  | Ok report ->
    Alcotest.(check (list string)) "only old" [ "gone" ] report.Diff.only_old;
    Alcotest.(check (list string)) "only new" [ "fresh" ] report.Diff.only_new;
    Alcotest.(check int) "compared the shared pair" 1 report.Diff.compared

(* --- run metadata ------------------------------------------------------- *)

let test_run_meta_fields () =
  let m =
    {
      Run_meta.workload = "mysqlslap";
      seed = 7;
      scale = 120;
      threads = 4;
      scheduler = "random(8-96)";
    }
  in
  (match Run_meta.of_fields (Run_meta.to_fields m) with
  | Ok back ->
    Alcotest.(check string) "workload" m.Run_meta.workload back.Run_meta.workload;
    Alcotest.(check int) "seed" m.Run_meta.seed back.Run_meta.seed;
    Alcotest.(check int) "scale" m.Run_meta.scale back.Run_meta.scale;
    Alcotest.(check int) "threads" m.Run_meta.threads back.Run_meta.threads;
    Alcotest.(check string) "scheduler" m.Run_meta.scheduler
      back.Run_meta.scheduler
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (* The scheduler field is last on the line: embedded commas survive. *)
  let weird = { m with Run_meta.scheduler = "custom,with,commas" } in
  (match Run_meta.of_fields (Run_meta.to_fields weird) with
  | Ok back ->
    Alcotest.(check string) "comma scheduler" "custom,with,commas"
      back.Run_meta.scheduler
  | Error e -> Alcotest.failf "comma round trip failed: %s" e);
  match Run_meta.of_fields [ "w"; "notanint"; "1"; "1"; "s" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad seed accepted"

let suite =
  [
    Alcotest.test_case "battery: penalized beats r2" `Quick
      test_battery_recovery;
    Alcotest.test_case "noiseless ties to simplest" `Quick
      test_noiseless_ties_to_simplest;
    Alcotest.test_case "plateau recovery" `Quick test_plateau_recovery;
    Alcotest.test_case "selection deterministic" `Quick test_select_deterministic;
    Alcotest.test_case "degenerate selection inputs" `Quick
      test_select_degenerate;
    Alcotest.test_case "exponent interval" `Quick test_exponent_interval;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store versioning" `Quick test_store_versioning;
    Alcotest.test_case "planted regression flagged" `Quick
      test_planted_regression;
    Alcotest.test_case "self diff clean" `Quick test_self_diff_clean;
    Alcotest.test_case "workload self diff clean" `Quick
      test_workload_self_diff_clean;
    Alcotest.test_case "confidence gate" `Quick test_confidence_gate;
    Alcotest.test_case "slope change" `Quick test_slope_change;
    Alcotest.test_case "divergence change" `Quick test_divergence_change;
    Alcotest.test_case "meta discipline" `Quick test_meta_discipline;
    Alcotest.test_case "only-in lists" `Quick test_only_in_lists;
    Alcotest.test_case "run meta fields" `Quick test_run_meta_fields;
  ]
