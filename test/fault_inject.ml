(* Fault-injection harness for the binary trace pipeline.

   Every injected fault — a flipped byte, a truncation, a duplicated,
   deleted or reordered chunk frame — must land in exactly one arm of
   the trichotomy:

   - {e identical decode}: the fault touched bytes that do not affect
     decoding (e.g. index fields the streaming reader ignores) and the
     trace reads back exactly as written;
   - {e clean error}: the strict reader raises
     {!Aprof_trace.Trace_stream.Decode_error} — never [Invalid_argument]
     from a wild [unsafe_get], and never any other exception;
   - {e salvage}: under [~on_corrupt:`Skip] the reader delivers a
     subsequence of the original events (whole surviving chunks, in
     order) and advertises a drop whenever anything is missing.

   What must never happen is the fourth outcome: a decode that
   "succeeds" with events that differ from what was written — a wrong
   profile.  Version-1 files cannot make that promise (no checksums:
   a flipped varint byte decodes silently into a different value), which
   is exactly why version 2 exists; for them the harness only asserts
   that nothing escapes except [Decode_error]. *)

module Event = Aprof_trace.Event
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Vec = Aprof_util.Vec

(* A deterministic trace big enough to span many 128-byte chunks, using
   several threads, routines (so definition records appear), and every
   field shape (args, lens, locks). *)
let reference_trace =
  let v = Vec.create () in
  for i = 0 to 499 do
    let tid = i mod 3 in
    match i mod 7 with
    | 0 -> Vec.push v (Event.Call { tid; routine = i mod 5 })
    | 1 -> Vec.push v (Event.Read { tid; addr = i * 17 })
    | 2 -> Vec.push v (Event.Write { tid; addr = (i * 13) + 1 })
    | 3 -> Vec.push v (Event.Acquire { tid; lock = i mod 11 })
    | 4 -> Vec.push v (Event.Release { tid; lock = i mod 11 })
    | 5 -> Vec.push v (Event.Alloc { tid; addr = i * 29; len = 8 + (i mod 9) })
    | _ -> Vec.push v (Event.Return { tid })
  done;
  v

let routine_name id = Printf.sprintf "fault_routine_%d" id

let write_trace ?index ?format_version ?entropy file =
  Out_channel.with_open_bin file (fun oc ->
      let sink =
        Codec.batch_writer ~chunk_bytes:128 ?index ?format_version ?entropy
          ~routine_name oc
      in
      let batches = Stream.batches_of_trace ~batch_size:16 reference_trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ())

let read_all file = In_channel.with_open_bin file In_channel.input_all
let write_all file s = Out_channel.with_open_bin file (fun oc -> output_string oc s)

let lines_of tr = List.map Event.to_line (Vec.to_list tr)

let sorted_names tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let ref_lines = lines_of reference_trace

let ref_names =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Event.Call { routine; _ } -> Some (routine, routine_name routine)
         | _ -> None)
       (Vec.to_list reference_trace))

(* [xs] is a subsequence of [ys]: every delivered event is a real event,
   in the original order — the "never a wrong profile" core. *)
let is_subsequence xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> if String.equal x y then go xs' ys' else go xs ys'
  in
  go xs ys

(* Fault counter, summed across campaigns and checked against the floor
   at the end of the suite. *)
let faults = ref 0

(* Strict read of a (possibly damaged) file.  The only exception with
   permission to escape the decoder is [Decode_error]. *)
let strict_outcome ~fault file =
  incr faults;
  match
    In_channel.with_open_bin file (fun ic ->
        let names, src = Codec.batch_reader ic in
        let tr = Stream.to_trace (Stream.events_of_batches src) in
        (lines_of tr, sorted_names names))
  with
  | lines, names -> `Decoded (lines, names)
  | exception Stream.Decode_error _ -> `Clean_error
  | exception e ->
    Alcotest.failf "%s: strict read leaked exception %s" fault
      (Printexc.to_string e)

let salvage_outcome ~fault file =
  match
    In_channel.with_open_bin file (fun ic ->
        let drops = ref [] in
        let _names, src =
          Codec.read ~path:file
            ~on_corrupt:(`Skip (fun d -> drops := d :: !drops))
            ic
        in
        let tr = Stream.to_trace (Stream.events_of_batches src) in
        (lines_of tr, List.rev !drops))
  with
  | lines, drops -> `Salvaged (lines, drops)
  | exception Stream.Decode_error _ -> `Clean_error
  | exception e ->
    Alcotest.failf "%s: salvage read leaked exception %s" fault
      (Printexc.to_string e)

(* The full trichotomy: strict read is identical or cleanly refused, and
   salvage delivers an advertised subsequence or cleanly refuses. *)
let assert_trichotomy ~fault file =
  (match strict_outcome ~fault file with
  | `Clean_error -> ()
  | `Decoded (lines, names) ->
    if not (List.equal String.equal lines ref_lines) then
      Alcotest.failf "%s: strict decode succeeded with WRONG events" fault;
    if names <> ref_names then
      Alcotest.failf "%s: strict decode succeeded with wrong names" fault);
  match salvage_outcome ~fault file with
  | `Clean_error -> ()
  | `Salvaged (lines, drops) ->
    if not (is_subsequence lines ref_lines) then
      Alcotest.failf "%s: salvage delivered events not in the original trace"
        fault;
    if (not (List.equal String.equal lines ref_lines)) && drops = [] then
      Alcotest.failf "%s: salvage lost events without advertising a drop"
        fault

(* Version-1 files carry no checksums, so a flipped byte can decode
   silently into different events; the harness can only demand that
   nothing crashes. *)
let assert_no_crash ~fault file =
  (match strict_outcome ~fault file with _ -> ());
  match salvage_outcome ~fault file with _ -> ()

let with_pristine ?index ?format_version ?entropy f =
  let src = Filename.temp_file "aprof_fault_src" ".atrc" in
  let dst = Filename.temp_file "aprof_fault" ".atrc" in
  write_trace ?index ?format_version ?entropy src;
  let bytes = read_all src in
  Sys.remove src;
  Fun.protect ~finally:(fun () -> Sys.remove dst) (fun () -> f bytes dst)

let flip s i mask =
  String.mapi
    (fun j c -> if j = i then Char.chr (Char.code c lxor mask) else c)
    s

(* --- campaigns -------------------------------------------------------- *)

let byte_flips_v2 () =
  with_pristine (fun bytes file ->
      write_all file bytes;
      assert_trichotomy ~fault:"pristine" file;
      String.iteri
        (fun i _ ->
          List.iter
            (fun mask ->
              write_all file (flip bytes i mask);
              assert_trichotomy
                ~fault:(Printf.sprintf "flip byte %d mask %#x" i mask)
                file)
            [ 0x01; 0x80 ])
        bytes)

let byte_flips_v2_indexless () =
  with_pristine ~index:false (fun bytes file ->
      String.iteri
        (fun i _ ->
          write_all file (flip bytes i 0x01);
          assert_trichotomy
            ~fault:(Printf.sprintf "index-less flip byte %d" i)
            file)
        bytes)

let truncations_v2 () =
  with_pristine (fun bytes file ->
      for n = 0 to String.length bytes - 1 do
        write_all file (String.sub bytes 0 n);
        assert_trichotomy ~fault:(Printf.sprintf "truncate to %d bytes" n) file
      done)

(* Whole-frame splices: each frame is internally self-consistent (its
   own checksum matches), so only the index footer can expose the edit.
   The footer is left untouched — it describes what the writer flushed. *)
let frame_splices_v2 () =
  with_pristine (fun bytes file ->
      write_all file bytes;
      let shs =
        In_channel.with_open_bin file (fun ic ->
            Option.get (Codec.shards ~path:file ic))
      in
      let rec usize v = if v < 0x80 then 1 else 1 + usize (v lsr 7) in
      (* [start, stop) of chunk [k]'s whole frame, header included. *)
      let frame k =
        let sh = shs.(k) in
        let start = sh.Codec.offset - usize sh.Codec.bytes - 4 in
        (start, sh.Codec.offset + sh.Codec.bytes)
      in
      let nchunks = Array.length shs in
      let _, last_stop = frame (nchunks - 1) in
      let tail = String.sub bytes last_stop (String.length bytes - last_stop) in
      let slice (a, b) = String.sub bytes a (b - a) in
      let rebuild frames = String.sub bytes 0 5 ^ String.concat "" frames ^ tail in
      let all = List.init nchunks (fun k -> slice (frame k)) in
      let splice name frames =
        write_all file (rebuild frames);
        assert_trichotomy ~fault:name file
      in
      for k = 0 to nchunks - 1 do
        splice
          (Printf.sprintf "duplicate chunk %d" k)
          (List.concat_map
             (fun j -> if j = k then [ List.nth all j; List.nth all j ]
               else [ List.nth all j ])
             (List.init nchunks Fun.id));
        splice
          (Printf.sprintf "delete chunk %d" k)
          (List.filteri (fun j _ -> j <> k) all);
        if k + 1 < nchunks then
          splice
            (Printf.sprintf "swap chunks %d and %d" k (k + 1))
            (List.mapi
               (fun j f ->
                 if j = k then List.nth all (k + 1)
                 else if j = k + 1 then List.nth all k
                 else f)
               all)
      done;
      splice "reverse all chunks" (List.rev all))

(* --- version 3: faults through the transform layer -------------------- *)

(* The v3 trichotomy is the same promise as v2's — the container framing
   is identical and every stored payload sits behind the frame CRC, so a
   flip anywhere in a chunk is caught before the transform or packed
   layers ever run.  The campaigns re-run the full battery over v3
   files, entropy on (transform byte 0x03 paths) and off (0x01). *)

let byte_flips_v3 () =
  List.iter
    (fun entropy ->
      with_pristine ~format_version:3 ~entropy (fun bytes file ->
          write_all file bytes;
          assert_trichotomy ~fault:"pristine v3" file;
          String.iteri
            (fun i _ ->
              List.iter
                (fun mask ->
                  write_all file (flip bytes i mask);
                  assert_trichotomy
                    ~fault:
                      (Printf.sprintf "v3 flip byte %d mask %#x (entropy %b)"
                         i mask entropy)
                    file)
                [ 0x01; 0x80 ])
            bytes))
    [ true; false ]

let truncations_v3 () =
  with_pristine ~format_version:3 (fun bytes file ->
      for n = 0 to String.length bytes - 1 do
        write_all file (String.sub bytes 0 n);
        assert_trichotomy
          ~fault:(Printf.sprintf "v3 truncate to %d bytes" n)
          file
      done)

let frame_splices_v3 () =
  with_pristine ~format_version:3 (fun bytes file ->
      write_all file bytes;
      let shs =
        In_channel.with_open_bin file (fun ic ->
            Option.get (Codec.shards ~path:file ic))
      in
      let rec usize v = if v < 0x80 then 1 else 1 + usize (v lsr 7) in
      let frame k =
        let sh = shs.(k) in
        let start = sh.Codec.offset - usize sh.Codec.bytes - 4 in
        (start, sh.Codec.offset + sh.Codec.bytes)
      in
      let nchunks = Array.length shs in
      let _, last_stop = frame (nchunks - 1) in
      let tail = String.sub bytes last_stop (String.length bytes - last_stop) in
      let slice (a, b) = String.sub bytes a (b - a) in
      let rebuild frames =
        String.sub bytes 0 5 ^ String.concat "" frames ^ tail
      in
      let all = List.init nchunks (fun k -> slice (frame k)) in
      let splice name frames =
        write_all file (rebuild frames);
        assert_trichotomy ~fault:name file
      in
      for k = 0 to nchunks - 1 do
        splice
          (Printf.sprintf "v3 duplicate chunk %d" k)
          (List.concat_map
             (fun j ->
               if j = k then [ List.nth all j; List.nth all j ]
               else [ List.nth all j ])
             (List.init nchunks Fun.id));
        splice
          (Printf.sprintf "v3 delete chunk %d" k)
          (List.filteri (fun j _ -> j <> k) all)
      done;
      splice "v3 reverse all chunks" (List.rev all))

(* Deep faults below the checksum: flip a stored payload byte and
   re-stamp the frame CRC, simulating a writer that produced garbage.
   The checksum no longer vouches for the bytes, so wrong-but-decodable
   events are possible (as in v1) — what must still hold is that the
   transform and packed decoders map arbitrary garbage to
   [Decode_error], never to a crash, a wild [unsafe_get], or an
   out-of-range batch. *)
let packed_garbage_no_crash () =
  List.iter
    (fun entropy ->
      with_pristine ~format_version:3 ~index:false ~entropy
        (fun bytes file ->
          let n = String.length bytes in
          (* Walk the frames: header at 5, each [len:uvarint crc:le32
             payload], a zero length byte is the end marker. *)
          let pos = ref 5 in
          let continue = ref true in
          while !continue do
            let p0 = !pos in
            let paylen = ref 0 in
            let shift = ref 0 in
            let more = ref true in
            while !more do
              let b = Char.code bytes.[!pos] in
              incr pos;
              paylen := !paylen lor ((b land 0x7f) lsl !shift);
              shift := !shift + 7;
              more := b land 0x80 <> 0
            done;
            if !paylen = 0 then continue := false
            else begin
              let crc_off = !pos in
              let body_off = crc_off + 4 in
              (* Flip a spread of payload bytes; re-stamp the CRC. *)
              let step = max 1 (!paylen / 13) in
              let k = ref 0 in
              while !k < !paylen do
                let damaged =
                  flip (String.sub bytes 0 n) (body_off + !k) 0x11
                in
                let crc =
                  Aprof_util.Crc32c.digest_string damaged ~pos:body_off
                    ~len:!paylen
                in
                let restamped =
                  String.mapi
                    (fun j c ->
                      if j >= crc_off && j < body_off then
                        Char.chr ((crc lsr (8 * (j - crc_off))) land 0xff)
                      else c)
                    damaged
                in
                write_all file restamped;
                assert_no_crash
                  ~fault:
                    (Printf.sprintf
                       "v3 packed garbage at frame %d + %d (entropy %b)" p0 !k
                       entropy)
                  file;
                k := !k + step
              done;
              pos := body_off + !paylen
            end
          done))
    [ true; false ]

let v1_no_crash () =
  with_pristine ~format_version:1 (fun bytes file ->
      (* Pristine v1 must decode identically — the compat guarantee. *)
      write_all file bytes;
      (match strict_outcome ~fault:"pristine v1" file with
      | `Decoded (lines, names) ->
        Alcotest.(check bool) "pristine v1 decodes identically" true
          (List.equal String.equal lines ref_lines && names = ref_names)
      | `Clean_error -> Alcotest.fail "pristine v1 rejected");
      String.iteri
        (fun i _ ->
          write_all file (flip bytes i 0x01);
          assert_no_crash ~fault:(Printf.sprintf "v1 flip byte %d" i) file)
        bytes;
      for n = 0 to String.length bytes - 1 do
        write_all file (String.sub bytes 0 n);
        assert_no_crash ~fault:(Printf.sprintf "v1 truncate to %d" n) file
      done)

let enough_faults () =
  Alcotest.(check bool)
    (Printf.sprintf "at least 1000 faults injected (got %d)" !faults)
    true (!faults >= 1000)

let suite =
  [
    Alcotest.test_case "byte flips, indexed v2" `Quick byte_flips_v2;
    Alcotest.test_case "byte flips, index-less v2" `Quick
      byte_flips_v2_indexless;
    Alcotest.test_case "truncation at every offset" `Quick truncations_v2;
    Alcotest.test_case "duplicated/deleted/reordered chunks" `Quick
      frame_splices_v2;
    Alcotest.test_case "v1 faults never crash" `Quick v1_no_crash;
    Alcotest.test_case "byte flips, indexed v3" `Quick byte_flips_v3;
    Alcotest.test_case "truncation at every offset, v3" `Quick truncations_v3;
    Alcotest.test_case "duplicated/deleted/reordered chunks, v3" `Quick
      frame_splices_v3;
    Alcotest.test_case "packed garbage below the checksum never crashes"
      `Quick packed_garbage_no_crash;
    Alcotest.test_case "fault budget" `Quick enough_faults;
  ]
