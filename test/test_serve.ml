(* The ingest daemon, bottom-up: the bounded inbox (backpressure), the
   socket-fed decoder state machine at hostile slice sizes, the sharded
   accumulators' fold/snapshot consistency, and the live server over
   real sockets — N concurrent clients must aggregate to exactly the
   offline merge, and one corrupt stream must never perturb the
   others. *)

module Event = Aprof_trace.Event
module Codec = Aprof_trace.Trace_codec
module Trace_net = Aprof_trace.Trace_net
module Stream = Aprof_trace.Trace_stream
module Inbox = Aprof_serve.Inbox
module Shard_acc = Aprof_serve.Shard_acc
module Fleet = Aprof_serve.Fleet
module Server = Aprof_serve.Server
module Profile = Aprof_core.Profile
module Vec = Aprof_util.Vec
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry

(* ---------------------------------------------------------------- *)
(* Inbox *)

let test_inbox_round_trip () =
  let ib = Inbox.create ~capacity:1000 ~buffer_bytes:16 () in
  let b1 = Inbox.take_buffer ib in
  Bytes.fill b1 0 16 'a';
  Inbox.push ib b1 10;
  Alcotest.(check int) "queued" 10 (Inbox.queued_bytes ib);
  (match Inbox.pop ib with
  | Some (Inbox.Data (b, 10)) ->
    Alcotest.(check string) "contents" (String.make 10 'a')
      (Bytes.sub_string b 0 10);
    Inbox.recycle ib b
  | _ -> Alcotest.fail "expected Data");
  Alcotest.(check int) "drained" 0 (Inbox.queued_bytes ib);
  (* The recycled slice comes back out of take_buffer. *)
  let b2 = Inbox.take_buffer ib in
  Alcotest.(check bool) "recycled buffer reused" true (b1 == b2);
  Inbox.push_eof ib;
  (match Inbox.pop ib with
  | Some Inbox.Eof -> ()
  | _ -> Alcotest.fail "expected Eof");
  Alcotest.(check bool) "empty" true (Inbox.is_empty ib)

let test_inbox_oversized_when_empty () =
  let ib = Inbox.create ~capacity:10 ~buffer_bytes:64 () in
  (* Must not block: an empty queue accepts one slice of any size. *)
  Inbox.push ib (Bytes.create 64) 64;
  Alcotest.(check int) "accepted" 64 (Inbox.queued_bytes ib)

let test_inbox_backpressure () =
  let ib = Inbox.create ~capacity:100 ~buffer_bytes:64 () in
  Inbox.push ib (Bytes.create 64) 80;
  (* 80 queued; another 50 would exceed capacity, so the producer must
     block until the consumer pops. *)
  let second_done = Atomic.make false in
  let producer =
    Thread.create
      (fun () ->
        Inbox.push ib (Bytes.create 64) 50;
        Atomic.set second_done true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "producer blocked" false (Atomic.get second_done);
  Alcotest.(check int) "only first queued" 80 (Inbox.queued_bytes ib);
  (match Inbox.pop ib with
  | Some (Inbox.Data (_, 80)) -> ()
  | _ -> Alcotest.fail "expected first slice");
  Thread.join producer;
  Alcotest.(check bool) "producer unblocked" true (Atomic.get second_done);
  Alcotest.(check int) "second queued" 50 (Inbox.queued_bytes ib)

let test_inbox_close_neuters () =
  let ib = Inbox.create ~capacity:100 ~buffer_bytes:64 () in
  Inbox.push ib (Bytes.create 64) 80;
  (* A producer blocked on capacity must be released by close... *)
  let blocked =
    Thread.create (fun () -> Inbox.push ib (Bytes.create 64) 50) ()
  in
  Thread.delay 0.02;
  Inbox.close ib;
  Thread.join blocked;
  (* ...and everything queued is gone; later pushes are dropped. *)
  Alcotest.(check (option reject)) "queue cleared" None (Inbox.pop ib);
  Inbox.push ib (Bytes.create 64) 10;
  Alcotest.(check (option reject)) "push after close dropped" None
    (Inbox.pop ib)

(* ---------------------------------------------------------------- *)
(* Trace_net: the socket-fed decoder vs the whole-file reference *)

let small_run =
  lazy
    (let spec =
       match Registry.find "mysqlslap" with
       | Some s -> s
       | None -> failwith "mysqlslap missing"
     in
     Workload.run_spec
       ~scheduler:(Aprof_vm.Scheduler.Round_robin { slice = 64 })
       spec ~threads:3 ~scale:30 ~seed:11)

let trace_bytes ~version =
  let result = Lazy.force small_run in
  Codec.to_string ~format_version:version
    ~routine_name:
      (Aprof_trace.Routine_table.name result.Aprof_vm.Interp.routines)
    result.Aprof_vm.Interp.trace

type collected = {
  mutable lines : string list;  (* reversed *)
  mutable defs : (int * string) list;  (* reversed *)
  mutable ends : int;
  mutable drops : int;
}

let collector () =
  let c = { lines = []; defs = []; ends = 0; drops = 0 } in
  let cb =
    {
      Trace_net.on_batch =
        (fun b ->
          Event.Batch.iter_events
            (fun e -> c.lines <- Event.to_line e :: c.lines)
            b);
      on_define = (fun id name -> c.defs <- (id, name) :: c.defs);
      on_trace_end = (fun () -> c.ends <- c.ends + 1);
      on_drop = (fun _ -> c.drops <- c.drops + 1);
    }
  in
  (c, cb)

let feed_in_slices net s ~slice =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    let len = min slice (n - !pos) in
    Trace_net.feed net b ~pos:!pos ~len;
    pos := !pos + len
  done

let reference_lines s =
  match Codec.of_string s with
  | Ok (tr, names) -> (List.map Event.to_line (Vec.to_list tr), names)
  | Error e -> Alcotest.failf "reference decode failed: %s" e

let test_net_matches_reference () =
  List.iter
    (fun version ->
      let s = trace_bytes ~version in
      let expected_lines, expected_names = reference_lines s in
      List.iter
        (fun slice ->
          let c, cb = collector () in
          let net = Trace_net.create cb in
          feed_in_slices net s ~slice;
          Trace_net.close net;
          Alcotest.(check (list string))
            (Printf.sprintf "v%d slice=%d events" version slice)
            expected_lines
            (List.rev c.lines);
          Alcotest.(check (list (pair int string)))
            (Printf.sprintf "v%d slice=%d defs" version slice)
            expected_names (List.rev c.defs);
          Alcotest.(check int)
            (Printf.sprintf "v%d slice=%d trace ends" version slice)
            1 c.ends;
          Alcotest.(check int)
            (Printf.sprintf "v%d slice=%d completed" version slice)
            1
            (Trace_net.traces_completed net);
          Alcotest.(check int)
            (Printf.sprintf "v%d slice=%d nothing pending" version slice)
            0
            (Trace_net.pending_bytes net))
        [ 1; 3; 7; String.length s ])
    [ 1; 2; 3 ]

let test_net_back_to_back_traces () =
  let s = trace_bytes ~version:2 in
  let expected_lines, _ = reference_lines s in
  let c, cb = collector () in
  let net = Trace_net.create cb in
  feed_in_slices net (s ^ s ^ s) ~slice:13;
  Trace_net.close net;
  Alcotest.(check int) "three traces" 3 (Trace_net.traces_completed net);
  Alcotest.(check int) "three ends" 3 c.ends;
  Alcotest.(check int) "triple events"
    (3 * List.length expected_lines)
    (List.length c.lines)

let test_net_with_footer () =
  (* batch_writer with the shard index exercises the footer path,
     including the strict streamed-frames cross-check. *)
  let result = Lazy.force small_run in
  let file = Filename.temp_file "aprof_serve_footer" ".atrc" in
  Out_channel.with_open_bin file (fun oc ->
      let sink =
        Codec.batch_writer ~chunk_bytes:256 ~index:true
          ~routine_name:
            (Aprof_trace.Routine_table.name result.Aprof_vm.Interp.routines)
          oc
      in
      let batches = Stream.batches_of_trace result.Aprof_vm.Interp.trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ());
  let s = In_channel.with_open_bin file In_channel.input_all in
  Sys.remove file;
  let expected_lines, _ = reference_lines s in
  List.iter
    (fun slice ->
      let c, cb = collector () in
      let net = Trace_net.create cb in
      feed_in_slices net s ~slice;
      Trace_net.close net;
      Alcotest.(check (list string))
        (Printf.sprintf "footer slice=%d events" slice)
        expected_lines
        (List.rev c.lines))
    [ 7; String.length s ]

let test_net_truncation_detected () =
  let s = trace_bytes ~version:2 in
  let c, cb = collector () in
  ignore c;
  let net = Trace_net.create cb in
  let cut = String.sub s 0 (String.length s - 1) in
  feed_in_slices net cut ~slice:64;
  (match Trace_net.close net with
  | () -> Alcotest.fail "truncated stream accepted"
  | exception Stream.Decode_error _ -> ());
  Alcotest.(check bool) "poisoned" true (Trace_net.failure net <> None)

let test_net_strict_fails_on_corruption () =
  let s = trace_bytes ~version:2 in
  let b = Bytes.of_string s in
  (* Offset 40 is well inside the first chunk payload for this trace. *)
  Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0xff));
  let _, cb = collector () in
  let net = Trace_net.create cb in
  match feed_in_slices net (Bytes.to_string b) ~slice:64 with
  | () -> Alcotest.fail "corrupt stream accepted"
  | exception Stream.Decode_error _ ->
    Alcotest.(check bool) "poisoned" true (Trace_net.failure net <> None);
    (* Every later call re-raises. *)
    (match Trace_net.feed net (Bytes.create 1) ~pos:0 ~len:1 with
    | () -> Alcotest.fail "poisoned machine accepted bytes"
    | exception Stream.Decode_error _ -> ())

let test_net_salvage_drops_chunk () =
  let s = trace_bytes ~version:2 in
  let b = Bytes.of_string s in
  Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0xff));
  let expected_lines, _ = reference_lines s in
  let c, cb = collector () in
  let net = Trace_net.create ~salvage:true cb in
  feed_in_slices net (Bytes.to_string b) ~slice:64;
  Trace_net.close net;
  Alcotest.(check int) "one drop" 1 c.drops;
  Alcotest.(check int) "trace still completes" 1
    (Trace_net.traces_completed net);
  (* The dropped chunk's events are gone (for this small trace that can
     be all of them); nothing extra may appear. *)
  Alcotest.(check bool) "no events invented" true
    (List.length c.lines < List.length expected_lines)

(* ---------------------------------------------------------------- *)
(* Shard accumulators *)

let synthetic_profile ~routines ~tids =
  let p = Profile.create () in
  List.iter
    (fun r ->
      List.iter
        (fun tid ->
          Profile.record_activation p ~tid ~routine:r ~rms:(r + tid)
            ~drms:r ~cost:(10 * (r + 1)))
        tids)
    routines;
  p

let test_shard_fold_equals_merge () =
  let acc = Shard_acc.create ~shards:4 () in
  let parts =
    List.init 6 (fun i ->
        synthetic_profile
          ~routines:[ i; i + 1; (2 * i) + 3 ]
          ~tids:[ 0; 1; i mod 3 ])
  in
  List.iter (Shard_acc.fold acc) parts;
  Shard_acc.define acc 0 "zero";
  Shard_acc.define acc 1 "one";
  let expected = Profile.create () in
  List.iter (fun p -> Profile.merge_into ~into:expected p) parts;
  let got, names = Shard_acc.snapshot acc in
  Helpers.check_profiles_equal "sharded fold = offline merge" expected got;
  Alcotest.(check (option string)) "names copied" (Some "one")
    (Hashtbl.find_opt names 1);
  Alcotest.(check int) "folds counted" 6 (Shard_acc.folds acc);
  (* Every key sits on the shard its routine hashes to. *)
  for i = 0 to Shard_acc.shard_count acc - 1 do
    List.iter
      (fun (k : Profile.key) ->
        Alcotest.(check int)
          (Printf.sprintf "key routine %d on shard %d" k.Profile.routine i)
          i
          (Shard_acc.shard_of acc k.Profile.routine))
      (Shard_acc.shard_keys acc i)
  done

let test_shard_concurrent_folds () =
  let acc = Shard_acc.create ~shards:4 () in
  let parts =
    List.init 16 (fun i ->
        synthetic_profile ~routines:[ i mod 5; 7; i ] ~tids:[ 0; i mod 4 ])
  in
  let folders =
    List.map (fun p -> Thread.create (fun () -> Shard_acc.fold acc p) ()) parts
  in
  (* Snapshots racing the folds must each be internally consistent;
     the final one must equal the offline merge. *)
  for _ = 1 to 5 do
    ignore (Shard_acc.snapshot acc)
  done;
  List.iter Thread.join folders;
  let expected = Profile.create () in
  List.iter (fun p -> Profile.merge_into ~into:expected p) parts;
  let got, _ = Shard_acc.snapshot acc in
  Helpers.check_profiles_equal "concurrent folds = offline merge" expected got

(* ---------------------------------------------------------------- *)
(* Fleet CSV *)

let test_fleet_render () =
  let profile = synthetic_profile ~routines:[ 0; 1; 2 ] ~tids:[ 0; 1 ] in
  let clients =
    [
      {
        Fleet.name = "unix:#0";
        events = 100;
        traces = 2;
        drops = 0;
        bytes = 400;
        seconds = 2.0;
        error = None;
      };
      {
        Fleet.name = "weird,\"name\"";
        events = 50;
        traces = 1;
        drops = 3;
        bytes = 200;
        seconds = 1.0;
        error = Some "decode error";
      };
    ]
  in
  let doc =
    Fleet.render ~top:2 ~seconds:4.0
      ~name_of:(fun r -> Printf.sprintf "r%d" r)
      ~profile clients
  in
  let lines = String.split_on_char '\n' (String.trim doc) in
  Alcotest.(check string) "header" Fleet.header (List.hd lines);
  (* header + 2 clients + aggregate + 2 routine rows *)
  Alcotest.(check int) "row count" 6 (List.length lines);
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  Alcotest.(check int) "client rows" 2
    (List.length (List.filter (has_prefix "client,") lines));
  (match List.find_opt (has_prefix "aggregate,") lines with
  | Some agg ->
    Alcotest.(check bool) "aggregate sums events" true
      (String.length agg > 0
      && String.split_on_char ',' agg |> fun f -> List.nth f 2 = "150")
  | None -> Alcotest.fail "no aggregate row");
  (* The quoted client name survives RFC-4180 escaping. *)
  Alcotest.(check bool) "quoting" true
    (List.exists (has_prefix "client,\"weird,\"\"name\"\"\"") lines);
  (* Routine rows are ranked by total cost: routine 2 costs most. *)
  (match List.filter (has_prefix "routine,") lines with
  | first :: _ ->
    Alcotest.(check bool) "top mover first" true (has_prefix "routine,r2" first)
  | [] -> Alcotest.fail "no routine rows")

(* ---------------------------------------------------------------- *)
(* Live server over real sockets *)

let temp_sock () =
  let p = Filename.temp_file "aprof_serve_test" ".sock" in
  Sys.remove p;
  p

let push_bytes ?flip ~sock ~repeat s =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let b = Bytes.of_string s in
  (match flip with
  | Some off -> Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff))
  | None -> ());
  let n = Bytes.length b in
  for _ = 1 to repeat do
    let rec write o =
      if o < n then
        match Unix.write fd b o (n - o) with
        | 0 -> failwith "closed"
        | k -> write (o + k)
    in
    (try write 0 with Unix.Unix_error _ -> ())
  done;
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let one = Bytes.create 1 in
  (try while Unix.read fd one 0 1 > 0 do () done with Unix.Unix_error _ -> ());
  Unix.close fd

let expected_merge ~copies =
  let result = Lazy.force small_run in
  let one = Helpers.run_drms result.Aprof_vm.Interp.trace in
  let expected = Profile.create () in
  for _ = 1 to copies do
    Profile.merge_into ~into:expected one
  done;
  expected

let start_test_server ?(salvage = false) sock =
  Server.start
    {
      Server.default_config with
      unix_path = Some sock;
      jobs = 2;
      shards = 4;
      salvage;
    }

let test_server_differential () =
  let s = trace_bytes ~version:2 in
  let sock = temp_sock () in
  let srv = start_test_server sock in
  (* 6 concurrent clients; two stream the trace twice back-to-back. *)
  let repeats = [ 1; 2; 1; 1; 2; 1 ] in
  let clients =
    List.map
      (fun repeat -> Thread.create (fun () -> push_bytes ~sock ~repeat s) ())
      repeats
  in
  List.iter Thread.join clients;
  let stats = Server.stats srv in
  Alcotest.(check int) "all traces folded"
    (List.fold_left ( + ) 0 repeats)
    stats.Server.s_traces;
  Alcotest.(check int) "no drops" 0 stats.Server.s_drops;
  let got, names = Server.snapshot srv in
  Server.stop srv;
  Helpers.check_profiles_equal "live ingest = offline merge"
    (expected_merge ~copies:(List.fold_left ( + ) 0 repeats))
    got;
  Alcotest.(check bool) "names arrived" true (Hashtbl.length names > 0)

let test_server_corruption_isolation () =
  let s = trace_bytes ~version:2 in
  let sock = temp_sock () in
  let srv = start_test_server sock in
  let good =
    List.init 4 (fun _ ->
        Thread.create (fun () -> push_bytes ~sock ~repeat:1 s) ())
  in
  let bad = Thread.create (fun () -> push_bytes ~flip:40 ~sock ~repeat:1 s) () in
  List.iter Thread.join (bad :: good);
  let stats = Server.stats srv in
  Alcotest.(check int) "all connections seen" 5 stats.Server.s_conns;
  Alcotest.(check int) "only good traces folded" 4 stats.Server.s_traces;
  let got, _ = Server.snapshot srv in
  Server.stop srv;
  (* The corrupt stream contributed nothing: the aggregate equals the
     merge of the four good streams exactly. *)
  Helpers.check_profiles_equal "corrupt stream isolated"
    (expected_merge ~copies:4) got;
  (* ...and its connection reports a terminal error. *)
  Alcotest.(check int) "one errored client" 1
    (List.length
       (List.filter
          (fun (c : Fleet.client) -> c.Fleet.error <> None)
          (Server.clients srv)))

let test_server_salvage_keeps_stream () =
  let s = trace_bytes ~version:2 in
  let sock = temp_sock () in
  let srv = start_test_server ~salvage:true sock in
  push_bytes ~flip:40 ~sock ~repeat:1 s;
  push_bytes ~sock ~repeat:1 s;
  let stats = Server.stats srv in
  Server.stop srv;
  (* Under salvage the damaged chunk is dropped but both traces fold. *)
  Alcotest.(check int) "both traces folded" 2 stats.Server.s_traces;
  Alcotest.(check int) "chunk dropped" 1 stats.Server.s_drops

let suite =
  [
    Alcotest.test_case "inbox: round trip and recycling" `Quick
      test_inbox_round_trip;
    Alcotest.test_case "inbox: empty queue accepts oversized slice" `Quick
      test_inbox_oversized_when_empty;
    Alcotest.test_case "inbox: push blocks over capacity" `Quick
      test_inbox_backpressure;
    Alcotest.test_case "inbox: close releases and neuters producers" `Quick
      test_inbox_close_neuters;
    Alcotest.test_case "net: every version and slice size = file reference"
      `Quick test_net_matches_reference;
    Alcotest.test_case "net: back-to-back traces on one connection" `Quick
      test_net_back_to_back_traces;
    Alcotest.test_case "net: indexed trace (footer) decodes" `Quick
      test_net_with_footer;
    Alcotest.test_case "net: truncation detected at close" `Quick
      test_net_truncation_detected;
    Alcotest.test_case "net: strict mode poisons on corruption" `Quick
      test_net_strict_fails_on_corruption;
    Alcotest.test_case "net: salvage drops the damaged chunk only" `Quick
      test_net_salvage_drops_chunk;
    Alcotest.test_case "shards: fold/snapshot = offline merge + partition"
      `Quick test_shard_fold_equals_merge;
    Alcotest.test_case "shards: concurrent folds against snapshots" `Quick
      test_shard_concurrent_folds;
    Alcotest.test_case "fleet: CSV shape, quoting, ranking" `Quick
      test_fleet_render;
    Alcotest.test_case "server: N live clients = offline merge" `Quick
      test_server_differential;
    Alcotest.test_case "server: corrupt stream never perturbs others" `Quick
      test_server_corruption_isolation;
    Alcotest.test_case "server: salvage keeps a damaged stream alive" `Quick
      test_server_salvage_keeps_stream;
  ]
