let () =
  Alcotest.run "aprof-drms"
    [
      ("util", Test_util.suite);
      ("shadow", Test_shadow.suite);
      ("trace", Test_trace.suite);
      ("stream", Test_stream.suite);
      ("codec", Test_codec.suite);
      ("codec-v3", Test_codec_v3.suite);
      ("fault-inject", Fault_inject.suite);
      ("batch", Test_batch.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("differential", Test_differential.suite);
      ("vm-differential", Test_vm_differential.suite);
      ("golden", Test_golden.suite);
      ("workloads", Test_workloads.suite);
      ("vm", Test_vm.suite);
      ("tools", Test_tools.suite);
      ("replay-driver", Test_replay_driver.suite);
      ("lockset", Test_lockset.suite);
      ("helgrind-diff", Test_helgrind_diff.suite);
      ("core-units", Test_core_units.suite);
      ("comm", Test_comm.suite);
      ("reuse", Test_reuse.suite);
      ("merge", Test_merge.suite);
      ("work-stealing", Test_par_ws.suite);
      ("parallel-differential", Test_parallel_differential.suite);
      ("profile-io", Test_profile_io.suite);
      ("analysis", Test_analysis.suite);
      ("modes", Test_modes.suite);
      ("cct", Test_cct.suite);
      ("plot", Test_plot.suite);
      ("workload-suite", Test_workload_suite.suite);
      ("serve", Test_serve.suite);
    ]
