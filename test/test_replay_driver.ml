(* Failure isolation and output buffering in the replay driver.

   The two regressions pinned here: (1) one corrupt file in a multi-file
   replay must not abort the other files — it is reported, everything
   else replays, and the run is marked failed; (2) a decode error
   surfacing mid-file must not leak a partial tool summary — the driver
   buffers everything per file and returns nothing for a file that
   failed. *)

module Event = Aprof_trace.Event
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Driver = Aprof_tools.Replay_driver
module Vec = Aprof_util.Vec

let now = Sys.time

(* A well-formed trace: balanced activations over two threads, with
   reads so the profile has input sizes. *)
let mk_trace n =
  let v = Vec.create () in
  for i = 0 to n - 1 do
    let tid = i mod 2 in
    Vec.push v (Event.Call { tid; routine = i mod 4 });
    Vec.push v (Event.Read { tid; addr = i * 7 });
    Vec.push v (Event.Write { tid; addr = (i * 7) + 1 });
    Vec.push v (Event.Return { tid })
  done;
  v

let write_trace trace file =
  Out_channel.with_open_bin file (fun oc ->
      let sink = Codec.batch_writer ~chunk_bytes:128 oc in
      let batches = Stream.batches_of_trace ~batch_size:16 trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ())

(* Flip one byte inside chunk [k]'s payload (counted from the end when
   negative). *)
let corrupt_chunk file k =
  let shs =
    In_channel.with_open_bin file (fun ic ->
        Option.get (Codec.shards ~path:file ic))
  in
  let k = if k < 0 then Array.length shs + k else k in
  let sh = shs.(k) in
  let i = sh.Codec.offset + (sh.Codec.bytes / 2) in
  let bytes = In_channel.with_open_bin file In_channel.input_all in
  Out_channel.with_open_bin file (fun oc ->
      output_string oc
        (String.mapi
           (fun j c -> if j = i then Char.chr (Char.code c lxor 0x10) else c)
           bytes));
  sh.Codec.events

let with_files n f =
  let files = List.init n (fun _ -> Filename.temp_file "aprof_rd" ".atrc") in
  Fun.protect ~finally:(fun () -> List.iter Sys.remove files) (fun () -> f files)

let report_for (result : Driver.t) path =
  List.find (fun (r : Driver.file_report) -> r.path = path) result.files

let two_files_one_corrupt () =
  with_files 2 (fun files ->
      let good, bad = match files with [ a; b ] -> (a, b) | _ -> assert false in
      let trace = mk_trace 300 in
      write_trace trace good;
      write_trace trace bad;
      ignore (corrupt_chunk bad 1);
      (* Corrupt file first: the failure must not take the rest down. *)
      let result = Driver.replay ~now [ bad; good ] in
      Alcotest.(check bool) "run marked failed" true result.failed;
      let rb = report_for result bad and rg = report_for result good in
      Alcotest.(check bool) "corrupt file reports its error" true
        (match rb.error with Some _ -> true | None -> false);
      Alcotest.(check int) "corrupt file contributed nothing" 0 rb.events;
      Alcotest.(check (option string)) "good file has no error" None rg.error;
      Alcotest.(check int) "good file fully replayed" (Vec.length trace)
        rg.events;
      (* The merged profile is exactly the good file's. *)
      let solo = Driver.replay ~now [ good ] in
      Alcotest.(check string) "profile = good file alone"
        (Aprof_core.Profile_io.render_report
           ~routine_name:string_of_int solo.profile)
        (Aprof_core.Profile_io.render_report
           ~routine_name:string_of_int result.profile))

let corrupt_tail_buffers_summaries () =
  with_files 1 (fun files ->
      let file = List.hd files in
      let trace = mk_trace 300 in
      write_trace trace file;
      (* Pristine file first: every tool returns a buffered summary. *)
      let ok = Driver.replay ~now ~with_tools:true [ file ] in
      let n_tools =
        List.length (report_for ok file).Driver.tool_runs
      in
      Alcotest.(check bool) "tools ran on the pristine file" true (n_tools > 0);
      List.iter
        (fun (t : Driver.tool_run) ->
          Alcotest.(check bool)
            (t.tool_name ^ " summary buffered, not printed")
            true
            (String.length t.summary > 0))
        (report_for ok file).Driver.tool_runs;
      (* Corrupt the tail: the file decodes for a while and then fails —
         no tool summary may surface, not even a partial one. *)
      ignore (corrupt_chunk file (-1));
      let result = Driver.replay ~now ~with_tools:true [ file ] in
      let r = report_for result file in
      Alcotest.(check bool) "tail corruption detected" true result.failed;
      Alcotest.(check (list string)) "no tool summaries for the failed file"
        []
        (List.map (fun (t : Driver.tool_run) -> t.tool_name) r.tool_runs);
      Alcotest.(check int) "failed file contributed no events" 0 r.events)

let keep_going_salvages () =
  with_files 1 (fun files ->
      let file = List.hd files in
      let trace = mk_trace 300 in
      write_trace trace file;
      let dropped = corrupt_chunk file 1 in
      let result =
        Driver.replay ~now ~keep_going:true ~with_tools:true [ file ]
      in
      let r = report_for result file in
      Alcotest.(check bool) "salvage succeeds" false result.failed;
      Alcotest.(check (option string)) "no error" None r.error;
      (match r.drops with
      | [ d ] ->
        Alcotest.(check int) "drop advertises the chunk" 1 d.Codec.drop_chunk;
        Alcotest.(check int) "drop advertises the event count" dropped
          d.Codec.drop_events
      | ds -> Alcotest.failf "expected one drop, got %d" (List.length ds));
      Alcotest.(check int) "salvaged events + dropped events = total"
        (Vec.length trace) (r.events + dropped);
      Alcotest.(check bool) "tools still ran on the salvaged stream" true
        (r.tool_runs <> []))

let suite =
  [
    Alcotest.test_case "two files, one corrupt: isolation" `Quick
      two_files_one_corrupt;
    Alcotest.test_case "corrupt tail: summaries stay buffered" `Quick
      corrupt_tail_buffers_summaries;
    Alcotest.test_case "--keep-going salvages with accurate drops" `Quick
      keep_going_salvages;
  ]
