(* Differential testing on random *programs*, not just random traces: 50
   seeded random VM programs are executed under each scheduler policy,
   and on every resulting trace (a) the timestamping profiler must agree
   exactly with the naive oracle, and (b) streaming replay — feeding each
   standard tool online while the VM runs — must leave every tool in the
   same state as a materialized replay of the recorded trace.

   Programs are deadlock-free by construction: the only blocking
   operation is [join] on a spawned child, and children always halt. *)

open Helpers
module Program = Aprof_vm.Program
module Interp = Aprof_vm.Interp
module Workload = Aprof_workloads.Workload
module Tool = Aprof_tools.Tool

type op =
  | Read of int
  | Write of int * int
  | Compute of int
  | Yield
  | AllocTouch of int
  | Pread of int
  | Call of string * op list
  | Spawn of op list

let n_addrs = 16
let routines = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |]

(* [List.init] does not guarantee an application order, so draw in an
   explicit left-to-right loop: the op tree — and hence the program — is
   a deterministic function of the seed on every OCaml version. *)
let init_ordered n f =
  let rec go i = if i >= n then [] else let x = f () in x :: go (i + 1) in
  go 0

(* Generate the pure op tree first (all randomness up front), then close
   it into a Program.t. *)
let rec gen_ops st ~len ~depth ~spawns =
  init_ordered len (fun () ->
      match Random.State.int st 100 with
      | c when c < 25 -> Read (Random.State.int st n_addrs)
      | c when c < 45 ->
        Write (Random.State.int st n_addrs, Random.State.int st 100)
      | c when c < 55 -> Compute (1 + Random.State.int st 4)
      | c when c < 62 -> Yield
      | c when c < 67 -> AllocTouch (1 + Random.State.int st 4)
      (* Device reads give Async_io's completion queue something to park:
         without I/O the event loop degenerates to round-robin. *)
      | c when c < 70 -> Pread (Random.State.int st 32)
      | c when c < 90 && depth > 0 ->
        Call
          ( routines.(Random.State.int st (Array.length routines)),
            gen_ops st ~len:(1 + Random.State.int st 6) ~depth:(depth - 1)
              ~spawns:(ref 0) )
      | c when c >= 90 && !spawns > 0 ->
        decr spawns;
        Spawn
          (gen_ops st ~len:(2 + Random.State.int st 8) ~depth:(max 0 (depth - 1))
             ~spawns:(ref 0))
      | _ -> Read (Random.State.int st n_addrs))

let rec build (ops : op list) : unit Program.t =
  let open Program in
  match ops with
  | [] -> return ()
  | Read a :: rest ->
    let* _ = read a in
    build rest
  | Write (a, v) :: rest ->
    let* () = write a v in
    build rest
  | Compute n :: rest ->
    let* () = compute n in
    build rest
  | Yield :: rest ->
    let* () = yield in
    build rest
  | AllocTouch n :: rest ->
    let* base = alloc n in
    let* () = for_ 0 (n - 1) (fun i -> write (base + i) i) in
    let* _ = read base in
    let* () = dealloc base n in
    build rest
  | Pread pos :: rest ->
    let* fd = sys_open "dev" in
    let* buf = alloc 2 in
    let* _ = sys_pread fd buf 2 ~pos in
    let* _ = read buf in
    let* () = dealloc buf 2 in
    build rest
  | Call (name, body) :: rest ->
    let* () = call name (build body) in
    build rest
  | Spawn body :: rest ->
    let* tid = spawn (build body) in
    (* Join only after the remaining ops, so the child truly interleaves
       with the parent; children always halt, so this cannot deadlock. *)
    let* () = build rest in
    join tid

let gen_program seed =
  let st = Random.State.make [| 0x5eed; seed |] in
  let n_threads = 1 + Random.State.int st 3 in
  init_ordered n_threads (fun () ->
      build
        (gen_ops st
           ~len:(6 + Random.State.int st 14)
           ~depth:3 ~spawns:(ref 2)))

(* Every harness replaying [gen_program] output must supply this device
   set: the generated programs open "dev" for positional reads. *)
let gen_devices () =
  [ ("dev", Aprof_vm.Device.file (Array.init 64 (fun i -> (i * 3) land 0xff))) ]

let schedulers =
  [
    ("round-robin", Aprof_vm.Scheduler.Round_robin { slice = 8 });
    ("serialized", Aprof_vm.Scheduler.Serialized);
    ( "seeded-preemptive",
      Aprof_vm.Scheduler.Random_preemptive { min_slice = 2; max_slice = 24 } );
    ( "work-stealing",
      Aprof_vm.Scheduler.Work_stealing { workers = 3; slice = 8 } );
    ("async-io", Aprof_vm.Scheduler.Async_io { slice = 8; io_delay = 4 });
  ]

let n_programs = 50

let tool_state t =
  (t.Tool.space_words (), t.Tool.summary ())

let check_program ~sched_name ~scheduler seed =
  let w = { Workload.programs = gen_program seed; devices = gen_devices () } in
  let result = Workload.run ~scheduler w ~seed in
  let trace = result.Interp.trace in
  (match Sys.getenv_opt "APROF_DEBUG_SIZES" with
  | Some _ ->
    Printf.eprintf "seed %d (%s): %d events, %d threads, %d routines\n" seed
      sched_name (Vec.length trace) result.Interp.threads_spawned
      (Aprof_trace.Routine_table.size result.Interp.routines)
  | None -> ());
  (match Trace.well_formed trace with
  | [] -> ()
  | errs ->
    Alcotest.failf "seed %d (%s): ill-formed trace: %s" seed sched_name
      (String.concat "; " errs));
  (* (a) timestamping = naive oracle, rms and drms alike *)
  let p1 = run_drms trace and p2 = run_naive trace in
  check_profiles_equal
    (Printf.sprintf "seed %d (%s): drms = naive" seed sched_name)
    p1 p2;
  check_ops_equal
    (Printf.sprintf "seed %d (%s): attribution = naive" seed sched_name)
    p1 p2;
  (* (b) streaming = materialized for every standard tool *)
  List.iter
    (fun f ->
      let materialized = f.Tool.create () in
      Tool.replay materialized trace;
      let streamed = f.Tool.create () in
      let live =
        Workload.run_instrumented ~scheduler w ~seed ~tool:(fun _ ->
            streamed.Tool.on_event)
      in
      if live.Interp.events_emitted <> Vec.length trace then
        Alcotest.failf "seed %d (%s): %s: event counts differ" seed sched_name
          f.Tool.tool_name;
      let sw, ssum = tool_state streamed and mw, msum = tool_state materialized in
      if (sw, ssum) <> (mw, msum) then
        Alcotest.failf
          "seed %d (%s): tool %s diverges between streaming and \
           materialized replay:\n%s\nvs\n%s"
          seed sched_name f.Tool.tool_name ssum msum)
    (Aprof_tools.Harness.standard_factories ())

let suite =
  List.map
    (fun (sched_name, scheduler) ->
      Alcotest.test_case
        (Printf.sprintf "%d random programs (%s)" n_programs sched_name)
        `Slow
        (fun () ->
          for seed = 0 to n_programs - 1 do
            check_program ~sched_name ~scheduler seed
          done))
    schedulers
