(* The batch hot path: packed {!Event.Batch} containers, the
   batch ≡ per-event equivalence contract of {!Tool.t}, and the
   allocation budget of batched replay (the reason the path exists). *)

module Event = Aprof_trace.Event
module Batch = Aprof_trace.Event.Batch
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Tool = Aprof_tools.Tool
module Harness = Aprof_tools.Harness
module Vec = Aprof_util.Vec

let event = Alcotest.testable Event.pp Event.equal

let sample_events =
  [
    Event.Call { tid = 0; routine = 3 };
    Event.Read { tid = 0; addr = 17 };
    Event.Write { tid = 1; addr = max_int };
    Event.Block { tid = 2; units = 5 };
    Event.User_to_kernel { tid = 0; addr = 4; len = 9 };
    Event.Kernel_to_user { tid = 1; addr = 0; len = 2 };
    Event.Acquire { tid = 3; lock = 1 };
    Event.Release { tid = 3; lock = 1 };
    Event.Alloc { tid = 0; addr = 100; len = 8 };
    Event.Free { tid = 0; addr = 100; len = 8 };
    Event.Thread_start { tid = 4 };
    Event.Thread_exit { tid = 4 };
    Event.Switch_thread { tid = 2 };
    Event.Return { tid = 0 };
  ]

let test_push_get_roundtrip () =
  let b = Batch.create ~capacity:(List.length sample_events) () in
  List.iter (Batch.push b) sample_events;
  Alcotest.(check int) "length" (List.length sample_events) (Batch.length b);
  Alcotest.(check bool) "full" true (Batch.is_full b);
  List.iteri
    (fun i e -> Alcotest.check event "round-trip" e (Batch.get b i))
    sample_events

let test_of_trace_to_trace () =
  let tr = Vec.of_list sample_events in
  let b = Batch.of_trace tr in
  let tr' = Batch.to_trace b in
  Alcotest.(check (list event)) "of_trace/to_trace" sample_events
    (Vec.to_list tr')

let test_filter_in_place () =
  let b = Batch.of_trace (Vec.of_list sample_events) in
  let keep = function Event.Read _ | Event.Write _ -> true | _ -> false in
  Batch.filter_in_place keep b;
  Alcotest.(check (list event))
    "only reads and writes"
    (List.filter keep sample_events)
    (Vec.to_list (Batch.to_trace b))

let test_clear_reuse () =
  let b = Batch.create ~capacity:4 () in
  List.iter (Batch.push b) [ List.hd sample_events ];
  Batch.clear b;
  Alcotest.(check int) "cleared" 0 (Batch.length b);
  Alcotest.(check bool) "not full" false (Batch.is_full b);
  (* The container is recycled: a second fill sees no residue. *)
  List.iter (Batch.push b) [ Event.Return { tid = 9 } ];
  Alcotest.check event "fresh content" (Event.Return { tid = 9 }) (Batch.get b 0)

(* --- batch ≡ per-event, for every standard tool ----------------------

   [Tool.on_batch] must be observationally equivalent to [on_event] over
   the unpacked events.  A tiny batch size forces many boundaries, so
   state carried across batches is exercised too. *)

let equivalence_test (factory : Tool.factory) =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:("batch = per-event: " ^ factory.Tool.tool_name)
       ~print:Gen_trace.print (Gen_trace.gen ())
       (fun trace ->
         let per_event = factory.Tool.create () in
         Tool.replay per_event trace;
         let batched = factory.Tool.create () in
         let n =
           Tool.replay_batches batched
             (Stream.batches_of_trace ~batch_size:7 trace)
         in
         if n <> Vec.length trace then
           QCheck2.Test.fail_reportf "replayed %d of %d events" n
             (Vec.length trace);
         let s1 = per_event.Tool.summary () in
         let s2 = batched.Tool.summary () in
         if s1 <> s2 then
           QCheck2.Test.fail_reportf "summaries differ:@.%s@.-- vs --@.%s" s1
             s2;
         per_event.Tool.space_words () = batched.Tool.space_words ()))

let equivalence_tests () = List.map equivalence_test (Harness.standard_factories ())

(* --- allocation regression -------------------------------------------

   The batched pipeline exists to keep the per-event heap cost at the
   decode edge: replaying a binary trace into nulgrind must run the
   whole decode + dispatch path without allocating per event, and the
   drms profiler must stay within a small constant (shadow leaves and
   fresh profile accumulators amortize to well under a word per event at
   this trace size). *)

let synth_trace n =
  let tr = Vec.create () in
  let i = ref 0 in
  let tid = ref 0 in
  while Vec.length tr < n do
    tid := (!tid + 1) land 1;
    Vec.push tr (Event.Switch_thread { tid = !tid });
    Vec.push tr (Event.Call { tid = !tid; routine = !i mod 7 });
    for k = 0 to 7 do
      let addr = ((!i * 17) + (k * 3)) land 1023 in
      if k land 1 = 0 then Vec.push tr (Event.Read { tid = !tid; addr })
      else Vec.push tr (Event.Write { tid = !tid; addr })
    done;
    Vec.push tr (Event.Return { tid = !tid });
    incr i
  done;
  tr

let batched_minor_words_per_event (factory : Tool.factory) trace =
  let file = Filename.temp_file "aprof_batch_alloc" ".atrc" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let n =
    Out_channel.with_open_bin file (fun oc ->
        Stream.connect_batches
          (Stream.batches_of_trace trace)
          (Codec.batch_writer oc))
  in
  In_channel.with_open_bin file (fun ic ->
      let tool = factory.Tool.create () in
      let _names, batches = Codec.batch_reader ic in
      Gc.full_major ();
      let m0 = Gc.minor_words () in
      let n' = Tool.replay_batches tool batches in
      let words = Gc.minor_words () -. m0 in
      Alcotest.(check int) "replay count" n n';
      words /. float_of_int n)

let factory_named name =
  List.find
    (fun (f : Tool.factory) -> f.Tool.tool_name = name)
    (Harness.standard_factories ())

let test_nulgrind_allocation_free () =
  let w = batched_minor_words_per_event (factory_named "nulgrind") (synth_trace 100_000) in
  if w >= 1.0 then
    Alcotest.failf "batched nulgrind replay allocates %.2f minor words/event" w

let test_drms_allocation_budget () =
  let w =
    batched_minor_words_per_event (factory_named "aprof-drms") (synth_trace 100_000)
  in
  if w >= 3.0 then
    Alcotest.failf "batched drms replay allocates %.2f minor words/event" w

let suite =
  [
    Alcotest.test_case "push/get round-trip" `Quick test_push_get_roundtrip;
    Alcotest.test_case "of_trace/to_trace" `Quick test_of_trace_to_trace;
    Alcotest.test_case "filter_in_place" `Quick test_filter_in_place;
    Alcotest.test_case "clear recycles" `Quick test_clear_reuse;
    Alcotest.test_case "nulgrind batched replay allocation-free" `Quick
      test_nulgrind_allocation_free;
    Alcotest.test_case "drms batched replay allocation budget" `Quick
      test_drms_allocation_budget;
  ]
  @ equivalence_tests ()
