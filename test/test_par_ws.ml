(* The work-stealing scheduler: deque invariants (owner-LIFO push/pop,
   steal-half takes the oldest half, nothing lost or duplicated under
   concurrent stealing), the worker loop (continuations requeue,
   exceptions propagate), and the replay engine under the chunk
   distributions that stress stealing — a hot thread owning ~90% of the
   events, single-chunk traces, more jobs than chunks or threads, and
   the empty trace. *)

open Helpers
module Par = Aprof_util.Par
module Ws = Aprof_util.Par.Ws
module Tool = Aprof_tools.Tool
module Interp = Aprof_vm.Interp

let drain d =
  let rec go acc =
    match Ws.Deque.pop d with
    | None -> acc (* newest popped first, so [acc] ends oldest-first *)
    | Some x -> go (x :: acc)
  in
  go []

let test_deque_lifo () =
  let d = Ws.Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Ws.Deque.pop d);
  Alcotest.(check int) "empty length" 0 (Ws.Deque.length d);
  List.iter (Ws.Deque.push d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length" 5 (Ws.Deque.length d);
  Alcotest.(check (list int)) "owner pops newest first" [ 1; 2; 3; 4; 5 ]
    (drain d);
  Alcotest.(check (option int)) "drained" None (Ws.Deque.pop d)

let test_deque_steal_half () =
  let d = Ws.Deque.create () in
  Alcotest.(check (list int)) "steal from empty" [] (Ws.Deque.steal_half d);
  List.iter (Ws.Deque.push d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "oldest half, oldest first" [ 1; 2; 3 ]
    (Ws.Deque.steal_half d);
  Alcotest.(check int) "two left" 2 (Ws.Deque.length d);
  Alcotest.(check (option int)) "owner end untouched" (Some 5)
    (Ws.Deque.pop d);
  Alcotest.(check (list int)) "steal of a singleton" [ 4 ]
    (Ws.Deque.steal_half d);
  Alcotest.(check int) "empty again" 0 (Ws.Deque.length d)

(* Growth and ring wraparound: interleave pushes and steals past the
   initial capacity and check the item multiset is preserved. *)
let test_deque_wrap_grow () =
  let d = Ws.Deque.create () in
  for i = 1 to 100 do
    Ws.Deque.push d i
  done;
  let stolen = Ws.Deque.steal_half d in
  Alcotest.(check int) "stole 50" 50 (List.length stolen);
  for i = 101 to 120 do
    Ws.Deque.push d i
  done;
  let all = List.sort compare (stolen @ drain d) in
  Alcotest.(check (list int))
    "no item lost or duplicated"
    (List.init 120 (fun i -> i + 1))
    all

(* One pusher and three concurrent thieves hammer a single deque; on the
   Domain backend they genuinely race, on 4.14 they serialize — either
   way every pushed item must end up in exactly one place. *)
let test_deque_concurrent_steal () =
  let d = Ws.Deque.create () in
  let n = 2000 in
  let stolen = Array.init 3 (fun _ -> ref []) in
  let pool = Par.create ~jobs:4 () in
  let pusher () =
    for i = 1 to n do
      Ws.Deque.push d i
    done
  in
  let thief t () =
    let acc = stolen.(t) in
    for _ = 1 to 500 do
      match Ws.Deque.steal_half d with
      | [] -> ()
      | xs -> acc := List.rev_append xs !acc
    done
  in
  Par.run pool (Array.append [| pusher |] (Array.init 3 thief));
  let total =
    drain d @ List.concat_map (fun r -> !r) (Array.to_list stolen)
  in
  Alcotest.(check int) "count preserved" n (List.length total);
  Alcotest.(check (list int))
    "multiset preserved"
    (List.init n (fun i -> i + 1))
    (List.sort compare total)

(* Every item is stepped exactly [rounds] times even though items hop
   between deques: an item is owned by one worker at a time, so the
   plain counters cannot race. *)
let ws_rounds ~seed_worker () =
  let workers = 4 and n = 100 and rounds = 5 in
  let counts = Array.make n 0 in
  let ws = Ws.create ~workers in
  for i = 0 to n - 1 do
    Ws.seed ws ~worker:(seed_worker ~workers i) (i, rounds)
  done;
  let pool = Par.create ~jobs:workers () in
  Ws.run pool ws ~step:(fun ~worker:_ (i, left) ->
      counts.(i) <- counts.(i) + 1;
      if left > 1 then Some (i, left - 1) else None);
  Alcotest.(check (array int))
    "every item stepped exactly rounds times" (Array.make n rounds) counts

let test_ws_spread = ws_rounds ~seed_worker:(fun ~workers i -> i mod workers)

(* All work seeded on worker 0: the other three only make progress by
   stealing, so this hangs or undercounts if stealing is broken. *)
let test_ws_all_on_one = ws_rounds ~seed_worker:(fun ~workers:_ _ -> 0)

let test_ws_exception () =
  let ws = Ws.create ~workers:3 in
  for i = 0 to 20 do
    Ws.seed ws ~worker:(i mod 3) i
  done;
  let pool = Par.create ~jobs:3 () in
  (match
     Ws.run pool ws ~step:(fun ~worker:_ i ->
         if i = 13 then failwith "boom";
         None)
   with
  | () -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "propagated" "boom" m);
  match Ws.create ~workers:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workers = 0 accepted"

(* --- the engine under skewed chunk distributions ----------------------- *)

(* A trace whose thread 0 carries the overwhelming majority of the
   events, interleaved in random bursts with three light threads: the
   LPT partition gives thread 0 a shard of its own, and that shard's
   chunks must migrate to idle workers for the replay to balance. *)
let skewed_trace () =
  let st = Random.State.make [| 0xbeef |] in
  let stream tid events_per_thread =
    Gen_trace.gen_thread_stream st
      { Gen_trace.default_params with events_per_thread }
      tid 4
  in
  let streams =
    Array.init 4 (fun tid -> ref (stream tid (if tid = 0 then 6000 else 80)))
  in
  let trace = Vec.create () in
  let current = ref (-1) in
  let nonempty () =
    Array.to_list streams
    |> List.mapi (fun i s -> (i, s))
    |> List.filter (fun (_, s) -> !s <> [])
  in
  let rec go () =
    match nonempty () with
    | [] -> ()
    | live ->
      let i, s = List.nth live (Random.State.int st (List.length live)) in
      let burst = 1 + Random.State.int st 16 in
      for _ = 1 to burst do
        match !s with
        | [] -> ()
        | e :: rest ->
          if i <> !current then begin
            Vec.push trace (Event.Switch_thread { tid = i });
            current := i
          end;
          Vec.push trace e;
          s := rest
      done;
      go ()
  in
  go ();
  trace

let engine_drms_equal ?(chunk_events = 64) name trace jobs =
  let pool = Par.create ~jobs () in
  let shards = Tool.Shards.of_trace ~chunk_events trace in
  let st, n, _names =
    Tool.replay_parallel ~pool ~jobs ~shards
      (module Aprof_tools.Aprof_adapters.Drms_mergeable)
  in
  Alcotest.(check int) (name ^ ": unique events") (Vec.length trace) n;
  check_profiles_equal
    (name ^ ": parallel = sequential")
    (run_drms trace)
    (Aprof_core.Drms_profiler.finish st)

let test_engine_hot_thread () =
  let trace = skewed_trace () in
  engine_drms_equal "hot thread, -j4" trace 4;
  (* And the order-independent mode on the same skew: every chunk is
     claimed exactly once, so the count is the trace length. *)
  let pool = Par.create ~jobs:4 () in
  let shards = Tool.Shards.of_trace ~chunk_events:64 trace in
  let st, n, _ =
    Tool.replay_parallel ~pool ~jobs:4 ~shards
      (module Aprof_tools.Nulgrind.Mergeable)
  in
  Alcotest.(check int) "nulgrind count" (Vec.length trace) n;
  Alcotest.(check int)
    "nulgrind state" (Vec.length trace)
    (Aprof_tools.Nulgrind.events st)

let test_engine_single_chunk () =
  let trace = skewed_trace () in
  engine_drms_equal ~chunk_events:10_000_000 "single chunk, -j4" trace 4

let test_engine_more_jobs_than_chunks () =
  let trace = skewed_trace () in
  let chunk_events = 1 + (Vec.length trace / 2) in
  engine_drms_equal ~chunk_events "2 chunks, -j8" trace 8

let test_engine_more_jobs_than_threads () =
  (* Two threads, six workers: only two thread shards exist and the
     other four workers must idle out cleanly. *)
  let open Aprof_vm.Program in
  let prog =
    let* a = alloc 4 in
    let* () = write a 1 in
    let child =
      let* _ = read a in
      let* () = call "leaf" (write (a + 1) 2) in
      return ()
    in
    let* t = spawn child in
    let* _ = read (a + 1) in
    let* () = join t in
    dealloc a 4
  in
  let r =
    Interp.run
      {
        Interp.scheduler =
          Aprof_vm.Scheduler.Random_preemptive { min_slice = 1; max_slice = 4 };
        seed = 9;
        devices = [];
        max_events = 100_000;
        reuse_freed_memory = false;
      }
      [ prog ]
  in
  engine_drms_equal ~chunk_events:4 "2 threads, -j6" r.Interp.trace 6

let test_engine_empty_trace () =
  let trace = Vec.create () in
  engine_drms_equal "empty trace, -j4" trace 4

let suite =
  [
    Alcotest.test_case "deque: owner LIFO" `Quick test_deque_lifo;
    Alcotest.test_case "deque: steal-half semantics" `Quick
      test_deque_steal_half;
    Alcotest.test_case "deque: growth and wraparound" `Quick
      test_deque_wrap_grow;
    Alcotest.test_case "deque: concurrent stealing loses nothing" `Quick
      test_deque_concurrent_steal;
    Alcotest.test_case "ws: seeded spread, continuations requeue" `Quick
      test_ws_spread;
    Alcotest.test_case "ws: all work on one deque is stolen" `Quick
      test_ws_all_on_one;
    Alcotest.test_case "ws: exceptions propagate" `Quick test_ws_exception;
    Alcotest.test_case "engine: hot thread owns 90% of chunks" `Quick
      test_engine_hot_thread;
    Alcotest.test_case "engine: single-chunk trace" `Quick
      test_engine_single_chunk;
    Alcotest.test_case "engine: more jobs than chunks" `Quick
      test_engine_more_jobs_than_chunks;
    Alcotest.test_case "engine: more jobs than threads" `Quick
      test_engine_more_jobs_than_threads;
    Alcotest.test_case "engine: empty trace" `Quick test_engine_empty_trace;
  ]
