(* Unit and property tests of the utility layer. *)

module Vec = Aprof_util.Vec
module Stats = Aprof_util.Stats
module Rng = Aprof_util.Rng

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "top" 99 (Vec.top v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Vec.truncate v 10;
  Alcotest.(check int) "truncate" 10 (Vec.length v);
  Alcotest.(check (list int)) "to_list" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 3 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop (Vec.create ())))

let test_vec_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
       QCheck2.Gen.(list int)
       (fun l -> Vec.to_list (Vec.of_list l) = l))

let test_vec_sort =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"vec sort agrees with List.sort" ~count:200
       QCheck2.Gen.(list int)
       (fun l ->
         let v = Vec.of_list l in
         Vec.sort compare v;
         Vec.to_list v = List.sort compare l))

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 4. (Stats.geometric_mean [ 2.; 8. ]);
  Alcotest.(check (float 1e-9)) "variance" (8. /. 3.) (Stats.variance [ 1.; 3.; 5. ]);
  Alcotest.(check (float 1e-9)) "p50" 2. (Stats.percentile 50. [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "tail" 0.5
    (Stats.tail_fraction ~at_least:2.5 [ 1.; 2.; 3.; 4. ])

let test_value_at_top_fraction () =
  let xs = [ 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90.; 100. ] in
  (* top 10% of ten samples is the single largest *)
  Alcotest.(check (float 1e-9)) "top 10%" 100.
    (Stats.value_at_top_fraction ~fraction:0.1 xs);
  Alcotest.(check (float 1e-9)) "top 50%" 60.
    (Stats.value_at_top_fraction ~fraction:0.5 xs);
  Alcotest.(check (float 1e-9)) "top 100%" 10.
    (Stats.value_at_top_fraction ~fraction:1.0 xs)

let test_geomean_positive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"geomean between min and max" ~count:200
       QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.1 1000.))
       (fun xs ->
         let g = Stats.geometric_mean xs in
         let mn = List.fold_left Float.min infinity xs in
         let mx = List.fold_left Float.max neg_infinity xs in
         g >= mn -. 1e-9 && g <= mx +. 1e-9))

let test_acc () =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 3.; 1.; 2. ];
  Alcotest.(check int) "count" 3 (Stats.Acc.count a);
  Alcotest.(check (float 1e-9)) "sum" 6. (Stats.Acc.sum a);
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.Acc.mean a);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Acc.min a);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.Acc.max a)

let test_rng_determinism () =
  let draw seed =
    let rng = Rng.create seed in
    List.init 20 (fun _ -> Rng.int rng 1000)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw 7) (draw 7);
  Alcotest.(check bool) "different seeds differ" true (draw 7 <> draw 8)

let test_rng_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"rng int_in within range" ~count:500
       QCheck2.Gen.(pair (int_range (-100) 100) (int_range 0 100))
       (fun (lo, span) ->
         let rng = Rng.create (lo + span) in
         let v = Rng.int_in rng lo (lo + span) in
         v >= lo && v <= lo + span))

let test_shuffle_permutes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"shuffle is a permutation" ~count:200
       QCheck2.Gen.(list int)
       (fun l ->
         let a = Array.of_list l in
         Rng.shuffle (Rng.create 3) a;
         List.sort compare (Array.to_list a) = List.sort compare l))

let test_crc32c_vectors () =
  let crc s = Aprof_util.Crc32c.digest_string s ~pos:0 ~len:(String.length s) in
  (* Published CRC32C (iSCSI) test vectors. *)
  Alcotest.(check int) "empty" 0 (crc "");
  Alcotest.(check int) "123456789" 0xE3069283 (crc "123456789");
  Alcotest.(check int) "32 zero bytes" 0x8A9136AA (crc (String.make 32 '\x00'));
  Alcotest.(check int) "fox"
    0x22620404
    (crc "The quick brown fox jumps over the lazy dog");
  (* Sub-range addressing. *)
  Alcotest.(check int) "pos/len window" (crc "123456789")
    (Aprof_util.Crc32c.digest_string "xx123456789yy" ~pos:2 ~len:9);
  Alcotest.check_raises "bad range"
    (Invalid_argument "Crc32c.digest: invalid range") (fun () ->
      ignore (Aprof_util.Crc32c.digest (Bytes.create 4) ~pos:2 ~len:3))

let test_crc32c_incremental =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"crc32c composes incrementally" ~count:300
       QCheck2.Gen.(pair string string)
       (fun (a, b) ->
         let digest ?crc s =
           Aprof_util.Crc32c.digest_string ?crc s ~pos:0
             ~len:(String.length s)
         in
         digest ~crc:(digest a) b = digest (a ^ b)))

(* The stub (hardware or C tables, picked at runtime) against the
   byte-at-a-time OCaml specification, over random windows so every
   tail-length path of the 8-byte kernels is exercised. *)
let test_crc32c_matches_spec =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"crc32c stub matches bytewise spec" ~count:500
       QCheck2.Gen.(triple string small_nat small_nat)
       (fun (s, skip, cut) ->
         let b = Bytes.of_string s in
         let pos = min skip (Bytes.length b) in
         let len = max 0 (min (Bytes.length b - pos) (Bytes.length b - cut)) in
         Aprof_util.Crc32c.digest b ~pos ~len
         = Aprof_util.Crc32c.digest_bytewise b ~pos ~len))

let suite =
  [
    Alcotest.test_case "vec basics" `Quick test_vec_basics;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    test_vec_roundtrip;
    test_vec_sort;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "value at top fraction" `Quick test_value_at_top_fraction;
    test_geomean_positive;
    Alcotest.test_case "acc" `Quick test_acc;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    test_rng_bounds;
    test_shuffle_permutes;
    Alcotest.test_case "crc32c known vectors" `Quick test_crc32c_vectors;
    test_crc32c_incremental;
    test_crc32c_matches_spec;
  ]
