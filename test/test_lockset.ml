(* The hash-consed lockset table: interning gives one id per distinct
   set, and add/remove/inter agree with a naive sorted-list model. *)

module Lockset = Aprof_tools.Lockset

let test_intern_basics () =
  let t = Lockset.create () in
  Alcotest.(check int) "empty interned at 0" Lockset.empty (Lockset.intern t []);
  let a = Lockset.intern t [ 3; 1; 2 ] in
  let b = Lockset.intern t [ 2; 3; 1; 1 ] in
  Alcotest.(check int) "order and duplicates ignored" a b;
  Alcotest.(check (list int)) "sorted set back" [ 1; 2; 3 ] (Lockset.to_list t a);
  let c = Lockset.intern t [ 1; 2 ] in
  Alcotest.(check bool) "distinct sets, distinct ids" true (a <> c);
  Alcotest.(check int) "three sets interned" 3 (Lockset.count t)

let test_operations () =
  let t = Lockset.create () in
  let ab = Lockset.intern t [ 1; 2 ] in
  let abc = Lockset.add t ab 3 in
  Alcotest.(check (list int)) "add" [ 1; 2; 3 ] (Lockset.to_list t abc);
  Alcotest.(check int) "add existing is identity" abc (Lockset.add t abc 2);
  Alcotest.(check int) "remove" ab (Lockset.remove t abc 3);
  Alcotest.(check int) "remove absent is identity" ab (Lockset.remove t ab 9);
  let bc = Lockset.intern t [ 2; 3 ] in
  let b = Lockset.inter t ab bc in
  Alcotest.(check (list int)) "inter" [ 2 ] (Lockset.to_list t b);
  Alcotest.(check int) "inter commutes" b (Lockset.inter t bc ab);
  Alcotest.(check int) "inter with self" ab (Lockset.inter t ab ab);
  Alcotest.(check int) "inter with empty drains" Lockset.empty
    (Lockset.inter t ab Lockset.empty);
  Alcotest.(check bool) "mem positive" true (Lockset.mem t ab 2);
  Alcotest.(check bool) "mem negative" false (Lockset.mem t ab 3);
  Alcotest.(check int) "cardinal" 2 (Lockset.cardinal t ab)

let test_hash_consing () =
  let t = Lockset.create () in
  let a = Lockset.intern t [ 5; 7 ] in
  (* Reaching the same set through different operation chains yields the
     same id — the property the race detector's two-int cells rely on. *)
  let via_add = Lockset.add t (Lockset.intern t [ 5 ]) 7 in
  let via_remove = Lockset.remove t (Lockset.intern t [ 5; 6; 7 ]) 6 in
  let via_inter = Lockset.inter t (Lockset.intern t [ 5; 7; 9 ]) (Lockset.intern t [ 4; 5; 7 ]) in
  Alcotest.(check int) "add reaches interned id" a via_add;
  Alcotest.(check int) "remove reaches interned id" a via_remove;
  Alcotest.(check int) "inter reaches interned id" a via_inter

(* Out-of-range lock ids would alias other pairs' memo slots (keys pack
   the lock into 31 bits), so every raw-lock entry point must reject
   them — [remove] included, which is where a stray Release id would
   otherwise corrupt a thread's held set silently. *)
let test_rejects_bad_lock_ids () =
  let t = Lockset.create () in
  let huge = Lockset.max_lock + 1 in
  Alcotest.check_raises "intern negative"
    (Invalid_argument "Lockset.intern: lock id -3 out of range") (fun () ->
      ignore (Lockset.intern t [ -3 ]));
  Alcotest.check_raises "add negative"
    (Invalid_argument "Lockset.add: lock id -1 out of range") (fun () ->
      ignore (Lockset.add t Lockset.empty (-1)));
  Alcotest.check_raises "remove negative"
    (Invalid_argument "Lockset.remove: lock id -1 out of range") (fun () ->
      ignore (Lockset.remove t Lockset.empty (-1)));
  Alcotest.check_raises "add beyond max_lock"
    (Invalid_argument
       (Printf.sprintf "Lockset.add: lock id %d out of range" huge))
    (fun () -> ignore (Lockset.add t Lockset.empty huge));
  Alcotest.check_raises "remove beyond max_lock"
    (Invalid_argument
       (Printf.sprintf "Lockset.remove: lock id %d out of range" huge))
    (fun () -> ignore (Lockset.remove t Lockset.empty huge));
  (* max_lock itself is admissible. *)
  let id = Lockset.add t Lockset.empty Lockset.max_lock in
  Alcotest.(check int) "remove max_lock round-trips" Lockset.empty
    (Lockset.remove t id Lockset.max_lock)

(* --- qcheck vs a naive sorted-list oracle ----------------------------
   Random operation programs over a small lock universe, interpreted in
   parallel against sorted int lists; every step must agree, and equal
   model sets must share one interned id (hash-consing). *)

type op = Intern of int list | Add of int * int | Remove of int * int | Inter of int * int

let gen_ops =
  let open QCheck2.Gen in
  let lock = int_range 0 7 in
  let slot = int_range 0 3 in
  let op =
    frequency
      [
        (2, map (fun ls -> Intern ls) (list_size (int_range 0 5) lock));
        (3, map2 (fun s l -> Add (s, l)) slot lock);
        (2, map2 (fun s l -> Remove (s, l)) slot lock);
        (3, map2 (fun a b -> Inter (a, b)) slot slot);
      ]
  in
  list_size (int_range 1 60) op

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Intern ls ->
           "intern[" ^ String.concat "," (List.map string_of_int ls) ^ "]"
         | Add (s, l) -> Printf.sprintf "add %d %d" s l
         | Remove (s, l) -> Printf.sprintf "rem %d %d" s l
         | Inter (a, b) -> Printf.sprintf "int %d %d" a b)
       ops)

let model_agreement ops =
  let t = Lockset.create () in
  (* Four slots holding (id, model) pairs that the ops mutate. *)
  let slots = Array.make 4 (Lockset.empty, []) in
  let ok = ref true in
  let store s id model =
    (* Hash-consing invariant: same model set -> same id, everywhere. *)
    Array.iter
      (fun (id', model') -> if model' = model && id' <> id then ok := false)
      slots;
    slots.(s) <- (id, model);
    if Lockset.to_list t id <> model then ok := false
  in
  List.iter
    (fun op ->
      match op with
      | Intern ls -> store 0 (Lockset.intern t ls) (List.sort_uniq compare ls)
      | Add (s, l) ->
        let id, model = slots.(s) in
        store s (Lockset.add t id l) (List.sort_uniq compare (l :: model))
      | Remove (s, l) ->
        let id, model = slots.(s) in
        store s (Lockset.remove t id l) (List.filter (fun x -> x <> l) model)
      | Inter (a, b) ->
        let ida, ma = slots.(a) and idb, mb = slots.(b) in
        store a (Lockset.inter t ida idb)
          (List.filter (fun x -> List.mem x mb) ma))
    ops;
  !ok

let suite =
  [
    Alcotest.test_case "intern basics" `Quick test_intern_basics;
    Alcotest.test_case "add/remove/inter" `Quick test_operations;
    Alcotest.test_case "hash-consing across operation chains" `Quick
      test_hash_consing;
    Alcotest.test_case "out-of-range lock ids rejected" `Quick
      test_rejects_bad_lock_ids;
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"lockset = sorted-list oracle"
         ~print:print_ops gen_ops model_agreement);
  ]
