(* Round-trip properties of the binary trace codec: every event variant
   must survive encode/decode over the full int range, whole traces must
   decode identically through the binary and the text format, and
   routine-name definition records must carry arbitrary (empty, unicode)
   names byte-exactly.  Malformed input must be rejected, not crash. *)

module Event = Aprof_trace.Event
module Trace = Aprof_trace.Trace
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Vec = Aprof_util.Vec

let gen_payload =
  QCheck2.Gen.(
    frequency
      [
        (4, small_nat);
        (2, int_bound 1_000_000);
        (2, int);
        ( 1,
          oneofl [ 0; 1; -1; max_int; max_int - 1; min_int; min_int + 1 ] );
      ])

let gen_event =
  let open QCheck2.Gen in
  let* tag = int_range 1 14 in
  let* a = gen_payload in
  let* b = gen_payload in
  let* c = gen_payload in
  (* Decoders validate at the batch edge — addresses non-negative, tids
     in [0, max_tid], locks in [0, max_lock] — so those fields must be
     in range for a round trip; masking keeps the extreme magnitudes.
     Unconstrained payloads still sweep the full int range. *)
  let addr = b land max_int in
  let tid = a land Event.max_tid in
  let lock = b land Event.max_lock in
  return
    (match tag with
    | 1 -> Event.Call { tid; routine = b }
    | 2 -> Event.Return { tid }
    | 3 -> Event.Read { tid; addr }
    | 4 -> Event.Write { tid; addr }
    | 5 -> Event.Block { tid; units = b }
    | 6 -> Event.User_to_kernel { tid; addr; len = c }
    | 7 -> Event.Kernel_to_user { tid; addr; len = c }
    | 8 -> Event.Acquire { tid; lock }
    | 9 -> Event.Release { tid; lock }
    | 10 -> Event.Alloc { tid; addr; len = c }
    | 11 -> Event.Free { tid; addr; len = c }
    | 12 -> Event.Thread_start { tid }
    | 13 -> Event.Thread_exit { tid }
    | _ -> Event.Switch_thread { tid })

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let decode_exn s =
  match Codec.of_string s with
  | Ok (tr, names) -> (tr, names)
  | Error e -> Alcotest.failf "decode failed: %s" e

let event_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"decode (encode e) = e, every variant"
       ~count:2000 ~print:Event.to_string gen_event (fun ev ->
         let tr, _ = decode_exn (Codec.to_string (Vec.of_list [ ev ])) in
         Vec.length tr = 1 && Event.equal (Vec.get tr 0) ev))

let trace_equal name a b =
  Alcotest.(check (list string))
    name
    (List.map Event.to_line (Vec.to_list a))
    (List.map Event.to_line (Vec.to_list b))

let whole_trace_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"binary and text decode agree on whole traces"
       ~count:300 ~print:Gen_trace.print (Gen_trace.gen ()) (fun trace ->
         let from_binary, _ = decode_exn (Codec.to_string trace) in
         (* Same trace through the text format. *)
         let from_text =
           Stream.to_trace
             (Stream.of_list
                (List.map
                   (fun ev ->
                     match Event.of_line (Event.to_line ev) with
                     | Ok e -> e
                     | Error m -> Alcotest.failf "text decode: %s" m)
                   (Vec.to_list trace)))
         in
         trace_equal "binary round trip" from_binary trace;
         trace_equal "binary = text" from_binary from_text;
         true))

let names_round_trip () =
  let names = [| ""; "h\xc3\xa9llo \xe2\x86\x92 \xe4\xb8\x96\xe7\x95\x8c"; "plain name with spaces" |] in
  let trace =
    Vec.of_list
      [
        Event.Call { tid = 0; routine = 2 };
        Event.Return { tid = 0 };
        Event.Call { tid = 0; routine = 0 };
        Event.Call { tid = 0; routine = 1 };
        Event.Return { tid = 0 };
        Event.Return { tid = 0 };
        Event.Call { tid = 0; routine = 1 };
        Event.Return { tid = 0 };
      ]
  in
  let s = Codec.to_string ~routine_name:(fun id -> names.(id)) trace in
  let decoded, table = decode_exn s in
  trace_equal "events" decoded trace;
  (* One definition per routine, in first-use order, names byte-exact. *)
  Alcotest.(check (list (pair int string)))
    "embedded name table"
    [ (2, names.(2)); (0, names.(0)); (1, names.(1)) ]
    table

let channel_round_trip () =
  let trace =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) (Gen_trace.gen ())
  in
  let file = Filename.temp_file "aprof_test" ".atrc" in
  Out_channel.with_open_bin file (fun oc ->
      (* A tiny chunk forces many flushes. *)
      let sink = Codec.writer ~chunk_bytes:64 oc in
      Stream.iter sink.Stream.emit (Trace.to_stream trace);
      sink.Stream.close ());
  let decoded, names =
    In_channel.with_open_bin file (fun ic ->
        match Codec.detect ic with
        | `Text -> Alcotest.fail "binary file detected as text"
        | `Binary ->
          let names, stream = Codec.reader ~chunk_bytes:64 ic in
          let tr = Stream.to_trace stream in
          (tr, names))
  in
  Sys.remove file;
  trace_equal "channel round trip" decoded trace;
  (* Every routine referenced by a Call must have been defined. *)
  Vec.iter
    (function
      | Event.Call { routine; _ } ->
        if not (Hashtbl.mem names routine) then
          Alcotest.failf "routine %d has no definition record" routine
      | _ -> ())
    trace

let rejects_garbage () =
  let check_error name s =
    match Codec.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected decode error" name
    | Error _ -> ()
  in
  check_error "empty" "";
  check_error "bad magic" "NOPE\x01";
  check_error "bad version" "ATRC\x63";
  check_error "truncated header" "ATR";
  let valid = Codec.to_string (Vec.of_list [ Event.Read { tid = 1; addr = 2 } ]) in
  (* [valid] ends with the end-of-trace marker byte. *)
  let unterminated = String.sub valid 0 (String.length valid - 1) in
  check_error "truncated mid-record" (String.sub valid 0 (String.length valid - 2));
  check_error "truncated at a record boundary (marker missing)" unterminated;
  check_error "unknown tag" (unterminated ^ "\xff\x00");
  check_error "trailing data after marker" (valid ^ "x");
  (* Text files must not be mistaken for binary ones. *)
  let file = Filename.temp_file "aprof_test" ".trace" in
  Out_channel.with_open_bin file (fun oc -> output_string oc "C 0 1\nR 0\n");
  let fmt = In_channel.with_open_bin file Codec.detect in
  Sys.remove file;
  Alcotest.(check bool) "text detected" true (fmt = `Text)

(* Negative addresses die at the decode edge, not inside a tool's shadow
   lookup: the codec happily encodes them (zigzag covers the full int
   range), so the decoder must be the one to refuse. *)
let rejects_negative_addrs () =
  List.iter
    (fun (name, ev) ->
      let s = Codec.to_string (Vec.of_list [ ev ]) in
      (match Codec.of_string s with
      | Ok _ -> Alcotest.failf "%s: negative address was accepted" name
      | Error msg ->
        Alcotest.(check bool)
          (name ^ ": error names the address") true
          (contains ~sub:"negative address" msg));
      (* The streaming batch reader rejects too. *)
      let file = Filename.temp_file "aprof_negaddr" ".atrc" in
      Out_channel.with_open_bin file (fun oc -> output_string oc s);
      (match
         In_channel.with_open_bin file (fun ic ->
             let _names, batches = Codec.batch_reader ic in
             batches ())
       with
      | exception Stream.Decode_error _ -> ()
      | _ -> Alcotest.failf "%s: batch reader accepted it" name);
      Sys.remove file)
    [
      ("read", Event.Read { tid = 0; addr = -1 });
      ("write", Event.Write { tid = 0; addr = min_int });
      ("user-to-kernel", Event.User_to_kernel { tid = 0; addr = -7; len = 3 });
      ("kernel-to-user", Event.Kernel_to_user { tid = 0; addr = -7; len = 3 });
      ("alloc", Event.Alloc { tid = 0; addr = -2; len = 1 });
      ("free", Event.Free { tid = 0; addr = -2; len = 1 });
    ];
  (* The text edge rejects identically. *)
  List.iter
    (fun line ->
      match Event.of_line line with
      | Error msg ->
        Alcotest.(check bool)
          (line ^ ": text error names the address") true
          (contains ~sub:"negative address" msg)
      | Ok _ -> Alcotest.failf "%S: text decode accepted a negative address" line)
    [ "L 0 -1"; "S 0 -9"; "U 0 -2 3"; "K 0 -2 3"; "M 0 -4 1"; "F 0 -4 1" ];
  (* Negative payloads that are not addresses still round trip. *)
  let ev = Event.Block { tid = 0; units = -5 } in
  match Codec.of_string (Codec.to_string (Vec.of_list [ ev ])) with
  | Ok (tr, _) ->
    Alcotest.(check bool) "negative non-address payload survives" true
      (Vec.length tr = 1 && Event.equal (Vec.get tr 0) ev)
  | Error msg -> Alcotest.failf "negative units rejected: %s" msg

(* Out-of-range thread and lock ids die at the same edge: tools keep
   per-thread state dense in the tid (and pack it into 16-bit epochs),
   and lockset memo keys pack the lock id below bit 31, so a tid or lock
   the encoder happily zigzags must be refused on decode — as a decode
   error, not an Invalid_argument from inside a tool mid-replay. *)
let rejects_bad_ids () =
  List.iter
    (fun (name, sub, ev) ->
      match Codec.of_string (Codec.to_string (Vec.of_list [ ev ])) with
      | Ok _ -> Alcotest.failf "%s: out-of-range id was accepted" name
      | Error msg ->
        Alcotest.(check bool)
          (name ^ ": error names the field") true (contains ~sub msg))
    [
      ("negative tid", "thread id", Event.Read { tid = -1; addr = 0 });
      ( "tid beyond max_tid",
        "thread id",
        Event.Write { tid = Event.max_tid + 1; addr = 0 } );
      ("huge tid", "thread id", Event.Thread_start { tid = max_int });
      ("negative lock", "lock id", Event.Acquire { tid = 0; lock = -1 });
      ( "lock beyond max_lock",
        "lock id",
        Event.Release { tid = 0; lock = Event.max_lock + 1 } );
    ];
  (* The text edge rejects identically. *)
  List.iter
    (fun (line, sub) ->
      match Event.of_line line with
      | Error msg ->
        Alcotest.(check bool)
          (line ^ ": text error names the field") true (contains ~sub msg)
      | Ok _ -> Alcotest.failf "%S: text decode accepted an out-of-range id" line)
    [
      ("L -1 0", "thread id");
      (Printf.sprintf "S %d 0" (Event.max_tid + 1), "thread id");
      ("A 0 -1", "lock id");
      (Printf.sprintf "E 0 %d" (Event.max_lock + 1), "lock id");
    ];
  (* The bounds themselves are admissible. *)
  let ev = Event.Acquire { tid = Event.max_tid; lock = Event.max_lock } in
  match Codec.of_string (Codec.to_string (Vec.of_list [ ev ])) with
  | Ok (tr, _) ->
    Alcotest.(check bool) "boundary ids survive" true
      (Vec.length tr = 1 && Event.equal (Vec.get tr 0) ev)
  | Error msg -> Alcotest.failf "boundary ids rejected: %s" msg

(* --- shard index ------------------------------------------------------ *)

let sample_trace seed =
  QCheck2.Gen.generate1 ~rand:(Random.State.make [| seed |]) (Gen_trace.gen ())

(* Small chunks and batches so even the generator's short traces span
   several index entries. *)
let write_binary ?(index = true) ?format_version trace file =
  Out_channel.with_open_bin file (fun oc ->
      let sink = Codec.batch_writer ~chunk_bytes:128 ~index ?format_version oc in
      let batches = Stream.batches_of_trace ~batch_size:16 trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ())

let decode_source src = Stream.to_trace (Stream.events_of_batches src)

let rec uvarint_size v = if v < 0x80 then 1 else 1 + uvarint_size (v lsr 7)

let shard_index_round_trip () =
  let trace = sample_trace 11 in
  let file = Filename.temp_file "aprof_test" ".atrc" in
  write_binary trace file;
  In_channel.with_open_bin file (fun ic ->
      match Codec.shards ~path:file ic with
      | None -> Alcotest.fail "indexed file reports no shard index"
      | Some shs ->
        Alcotest.(check bool) "several chunks" true (Array.length shs >= 2);
        (* Chunk payloads tile the record region, starting right after
           the 5-byte header; each version-2 frame puts a length varint
           and 4 CRC bytes in front of its payload. *)
        let off = ref 5 in
        Array.iter
          (fun (sh : Codec.shard) ->
            Alcotest.(check int) "contiguous offsets"
              (!off + uvarint_size sh.Codec.bytes + 4)
              sh.Codec.offset;
            Alcotest.(check bool) "index carries the payload checksum" true
              (sh.Codec.crc >= 0);
            off := sh.Codec.offset + sh.Codec.bytes)
          shs;
        Alcotest.(check int) "every event accounted for" (Vec.length trace)
          (Array.fold_left (fun acc sh -> acc + sh.Codec.events) 0 shs);
        (* Selecting every chunk reproduces the whole trace, and the
           name table then covers every Call. *)
        let names, src =
          Codec.sharded_reader ~path:file ic shs ~select:(fun _ -> true)
        in
        let decoded = decode_source src in
        trace_equal "sharded read = original" decoded trace;
        Vec.iter
          (function
            | Event.Call { routine; _ } ->
              if not (Hashtbl.mem names routine) then
                Alcotest.failf "routine %d lost its definition" routine
            | _ -> ())
          trace);
  Sys.remove file

let seek_chunk_reads_one_chunk () =
  let trace = sample_trace 12 in
  let file = Filename.temp_file "aprof_test" ".atrc" in
  write_binary trace file;
  In_channel.with_open_bin file (fun ic ->
      let shs = Option.get (Codec.shards ~path:file ic) in
      let parts = ref [] in
      Array.iter
        (fun (sh : Codec.shard) ->
          let _, src = Codec.seek_chunk ~path:file ic sh in
          let part = decode_source src in
          Alcotest.(check int) "chunk event count" sh.Codec.events
            (Vec.length part);
          (* The index's tid set really describes the chunk. *)
          Vec.iter
            (fun ev ->
              let tid = Event.tid ev in
              if not (Array.exists (( = ) tid) sh.Codec.tids) then
                Alcotest.failf "tid %d missing from the chunk's tid set" tid)
            part;
          parts := Vec.to_list part :: !parts)
        shs;
      let glued = Vec.of_list (List.concat (List.rev !parts)) in
      trace_equal "chunks glue back into the trace" glued trace);
  Sys.remove file

let index_compat () =
  let trace = sample_trace 13 in
  let file = Filename.temp_file "aprof_test" ".atrc" in
  (* Index-less files (the pre-index format, or ~index:false) decode as
     before and report no shards. *)
  write_binary ~index:false trace file;
  In_channel.with_open_bin file (fun ic ->
      Alcotest.(check bool) "no index" true (Codec.shards ~path:file ic = None);
      In_channel.seek ic 0L;
      let _, src = Codec.batch_reader ic in
      trace_equal "index-less file decodes" (decode_source src) trace);
  (* Old-style streaming consumers skip the footer of an indexed file. *)
  write_binary ~index:true trace file;
  In_channel.with_open_bin file (fun ic ->
      let _, src = Codec.batch_reader ic in
      trace_equal "streaming read of an indexed file" (decode_source src) trace);
  In_channel.with_open_bin file (fun ic ->
      let _, stream = Codec.reader ic in
      trace_equal "per-event read of an indexed file" (Stream.to_trace stream)
        trace);
  Sys.remove file

let corrupt_footer_is_named () =
  let trace = sample_trace 14 in
  let file = Filename.temp_file "aprof_corrupt" ".atrc" in
  write_binary trace file;
  let bytes = In_channel.with_open_bin file In_channel.input_all in
  let total = String.length bytes in
  let footer_off =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code bytes.[total - 12 + i]
    done;
    !v
  in
  let expect ?(wants_offset = true) name mutated =
    Out_channel.with_open_bin file (fun oc -> output_string oc mutated);
    In_channel.with_open_bin file (fun ic ->
        match Codec.shards ~path:file ic with
        | exception Stream.Decode_error msg ->
          Alcotest.(check bool) (name ^ ": names the file") true
            (contains ~sub:file msg);
          if wants_offset then
            Alcotest.(check bool) (name ^ ": names a byte offset") true
              (contains ~sub:"byte" msg)
        | Some _ -> Alcotest.failf "%s: corrupt index was accepted" name
        | None -> Alcotest.failf "%s: corrupt index read as index-less" name)
  in
  let set i c = String.mapi (fun j x -> if j = i then c else x) bytes in
  expect "bad footer magic" (set footer_off 'X');
  expect ~wants_offset:false "unsupported index version"
    (set (footer_off + 4) '\x63');
  (* A byte chopped out of the footer body desynchronizes the parse:
     the error must still point into the file, not crash. *)
  expect "truncated footer body"
    (String.sub bytes 0 (footer_off + 6)
    ^ String.sub bytes (footer_off + 7) (total - footer_off - 7));
  Sys.remove file

(* --- format versions -------------------------------------------------- *)

(* The version-1 byte stream is frozen: pre-checksum readers and files
   must keep interoperating, so the writer's v1 output is pinned to a
   hand-assembled golden vector. *)
let v1_golden_bytes () =
  let trace =
    Vec.of_list [ Event.Call { tid = 0; routine = 0 }; Event.Return { tid = 0 } ]
  in
  let s =
    Codec.to_string ~format_version:1 ~routine_name:(fun _ -> "f") trace
  in
  (* header, def(0,"f"), Call(0,0), Return(0), end marker *)
  Alcotest.(check string) "v1 golden"
    "ATRC\x01\x0f\x00\x02f\x01\x00\x00\x02\x00\x00" s;
  (* And the same trace in version 2: one frame of the same 9 record
     bytes, length-prefixed and checksummed. *)
  let payload = "\x0f\x00\x02f\x01\x00\x00\x02\x00" in
  let crc =
    Aprof_util.Crc32c.digest_string payload ~pos:0 ~len:(String.length payload)
  in
  let le32 =
    String.init 4 (fun i -> Char.chr ((crc lsr (8 * i)) land 0xff))
  in
  let v2 = Codec.to_string ~routine_name:(fun _ -> "f") trace in
  Alcotest.(check string) "v2 golden"
    ("ATRC\x02\x09" ^ le32 ^ payload ^ "\x00")
    v2

let v1_compat () =
  let trace = sample_trace 15 in
  let file = Filename.temp_file "aprof_v1" ".atrc" in
  write_binary ~format_version:1 trace file;
  (* A version-1 file replays identically through every read path. *)
  In_channel.with_open_bin file (fun ic ->
      let _, src = Codec.batch_reader ic in
      trace_equal "v1 streaming read" (decode_source src) trace);
  In_channel.with_open_bin file (fun ic ->
      match Codec.shards ~path:file ic with
      | None -> Alcotest.fail "v1 indexed file reports no shard index"
      | Some shs ->
        (* v1 chunks have no frame headers and no stored checksum. *)
        let off = ref 5 in
        Array.iter
          (fun (sh : Codec.shard) ->
            Alcotest.(check int) "v1 contiguous offsets" !off sh.Codec.offset;
            Alcotest.(check int) "v1 has no checksum" (-1) sh.Codec.crc;
            off := !off + sh.Codec.bytes)
          shs;
        let _, src =
          Codec.sharded_reader ~path:file ic shs ~select:(fun _ -> true)
        in
        trace_equal "v1 sharded read" (decode_source src) trace);
  (* Writing the same trace twice yields the same bytes (v1 and v2). *)
  let read_all f = In_channel.with_open_bin f In_channel.input_all in
  let first = read_all file in
  write_binary ~format_version:1 trace file;
  Alcotest.(check bool) "v1 deterministic" true (read_all file = first);
  write_binary trace file;
  let v2_first = read_all file in
  write_binary trace file;
  Alcotest.(check bool) "v2 deterministic" true (read_all file = v2_first);
  Sys.remove file

(* --- canonical varints ------------------------------------------------ *)

(* Every value has exactly one encoding: a redundant zero continuation
   tail (0x80 0x00) decodes to the same value through a lax reader, so
   it must be rejected — otherwise two distinct byte streams compare
   unequal yet replay identically, breaking byte-diffability. *)
let rejects_noncanonical_varints () =
  let check_error name expect s =
    match Codec.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected decode error" name
    | Error msg ->
      Alcotest.(check bool)
        (name ^ ": error says " ^ expect)
        true (contains ~sub:expect msg)
  in
  (* Return{tid=0} is tag 0x02 then tid varint; canonical tid 0 is a
     single 0x00 byte. *)
  let v1 body = "ATRC\x01" ^ body ^ "\x00" in
  check_error "overlong zero tid" "non-canonical"
    (v1 "\x02\x80\x00");
  check_error "doubly overlong tid" "non-canonical"
    (v1 "\x02\x80\x80\x00");
  check_error "overlong tid 1" "non-canonical" (v1 "\x02\x82\x80\x00");
  (* Ten continuation groups shift past the int width: overflow, not
     Invalid_argument from a wild [lsl]. *)
  check_error "varint overflow" "overflows"
    (v1 ("\x02" ^ String.make 9 '\xff' ^ "\x7f"));
  (* A canonical 9-byte varint fills the 63-bit int exactly; a tenth
     group always falls off the top. *)
  check_error "ten-group overflow" "overflows"
    (v1 ("\x02" ^ String.make 9 '\x81' ^ "\x01"));
  (* The same bytes inside a correctly-checksummed v2 frame must die in
     the record decoder, not sneak past the CRC. *)
  let v2_frame payload =
    let crc =
      Aprof_util.Crc32c.digest_string payload ~pos:0
        ~len:(String.length payload)
    in
    "ATRC\x02"
    ^ String.make 1 (Char.chr (String.length payload))
    ^ String.init 4 (fun i -> Char.chr ((crc lsr (8 * i)) land 0xff))
    ^ payload ^ "\x00"
  in
  check_error "overlong varint inside a valid v2 frame" "non-canonical"
    (v2_frame "\x02\x80\x00");
  (* Canonical encodings at the width boundary still round trip. *)
  List.iter
    (fun v ->
      let ev = Event.Block { tid = 0; units = v } in
      match Codec.of_string (Codec.to_string (Vec.of_list [ ev ])) with
      | Ok (tr, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "boundary value %d survives" v)
          true
          (Vec.length tr = 1 && Event.equal (Vec.get tr 0) ev)
      | Error msg -> Alcotest.failf "boundary value %d rejected: %s" v msg)
    [ max_int; min_int; max_int asr 1; min_int asr 1; 1 lsl 55; -(1 lsl 55) ]

(* --- checksums -------------------------------------------------------- *)

(* A flipped payload byte must be caught by the CRC before any record
   decoding — both in the streaming reader and the seeking one. *)
let checksum_mismatch_detected () =
  let trace = sample_trace 16 in
  let file = Filename.temp_file "aprof_crc" ".atrc" in
  write_binary trace file;
  let bytes = In_channel.with_open_bin file In_channel.input_all in
  let shs =
    In_channel.with_open_bin file (fun ic ->
        Option.get (Codec.shards ~path:file ic))
  in
  let sh = shs.(Array.length shs / 2) in
  (* Flip a byte in the middle of that chunk's payload. *)
  let i = sh.Codec.offset + (sh.Codec.bytes / 2) in
  let corrupt =
    String.mapi
      (fun j c -> if j = i then Char.chr (Char.code c lxor 0x40) else c)
      bytes
  in
  Out_channel.with_open_bin file (fun oc -> output_string oc corrupt);
  (match
     In_channel.with_open_bin file (fun ic ->
         let _, src = Codec.batch_reader ic in
         ignore (decode_source src))
   with
  | exception Stream.Decode_error msg ->
    Alcotest.(check bool) "streaming read names the checksum" true
      (contains ~sub:"checksum" msg)
  | () -> Alcotest.fail "streaming read accepted a corrupt chunk");
  (match
     In_channel.with_open_bin file (fun ic ->
         let _, src =
           Codec.sharded_reader ~path:file ic shs ~select:(fun _ -> true)
         in
         ignore (decode_source src))
   with
  | exception Stream.Decode_error msg ->
    Alcotest.(check bool) "sharded read names the checksum" true
      (contains ~sub:"checksum" msg && contains ~sub:file msg)
  | () -> Alcotest.fail "sharded read accepted a corrupt chunk");
  (* Salvage mode recovers every other chunk and reports the drop. *)
  let drops = ref [] in
  let names, src =
    In_channel.with_open_bin file (fun ic ->
        let names, src =
          Codec.read ~path:file ~on_corrupt:(`Skip (fun d -> drops := d :: !drops)) ic
        in
        (names, decode_source src))
  in
  ignore names;
  (match !drops with
  | [ d ] ->
    Alcotest.(check int) "dropped the corrupt chunk"
      (Array.length shs / 2) d.Codec.drop_chunk;
    Alcotest.(check int) "drop names the offset" sh.Codec.offset
      d.Codec.drop_offset;
    Alcotest.(check int) "drop advertises the event count" sh.Codec.events
      d.Codec.drop_events;
    Alcotest.(check bool) "drop names the cause" true
      (contains ~sub:"checksum" d.Codec.drop_reason)
  | ds -> Alcotest.failf "expected exactly one drop, got %d" (List.length ds));
  Alcotest.(check int) "salvage recovers the other chunks"
    (Array.fold_left (fun acc (s : Codec.shard) -> acc + s.Codec.events) 0 shs
    - sh.Codec.events)
    (Vec.length src);
  Sys.remove file

let suite =
  [
    event_round_trip;
    whole_trace_round_trip;
    Alcotest.test_case "routine names round trip (empty, unicode)" `Quick
      names_round_trip;
    Alcotest.test_case "writer/reader channel round trip" `Quick
      channel_round_trip;
    Alcotest.test_case "malformed input is rejected" `Quick rejects_garbage;
    Alcotest.test_case "negative addresses rejected at the decode edge"
      `Quick rejects_negative_addrs;
    Alcotest.test_case "out-of-range thread/lock ids rejected at the decode edge"
      `Quick rejects_bad_ids;
    Alcotest.test_case "shard index round trip" `Quick shard_index_round_trip;
    Alcotest.test_case "seek_chunk reads exactly one chunk" `Quick
      seek_chunk_reads_one_chunk;
    Alcotest.test_case "index-less and indexed files interoperate" `Quick
      index_compat;
    Alcotest.test_case "corrupt shard index names file and offset" `Quick
      corrupt_footer_is_named;
    Alcotest.test_case "v1/v2 byte streams are pinned" `Quick v1_golden_bytes;
    Alcotest.test_case "version-1 files stay fully readable" `Quick v1_compat;
    Alcotest.test_case "non-canonical varints are rejected" `Quick
      rejects_noncanonical_varints;
    Alcotest.test_case "chunk checksum mismatches are caught and salvageable"
      `Quick checksum_mismatch_detected;
  ]
