(* Round-trip properties of the binary trace codec: every event variant
   must survive encode/decode over the full int range, whole traces must
   decode identically through the binary and the text format, and
   routine-name definition records must carry arbitrary (empty, unicode)
   names byte-exactly.  Malformed input must be rejected, not crash. *)

module Event = Aprof_trace.Event
module Trace = Aprof_trace.Trace
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Vec = Aprof_util.Vec

let gen_payload =
  QCheck2.Gen.(
    frequency
      [
        (4, small_nat);
        (2, int_bound 1_000_000);
        (2, int);
        ( 1,
          oneofl [ 0; 1; -1; max_int; max_int - 1; min_int; min_int + 1 ] );
      ])

let gen_event =
  let open QCheck2.Gen in
  let* tag = int_range 1 14 in
  let* a = gen_payload in
  let* b = gen_payload in
  let* c = gen_payload in
  return
    (match tag with
    | 1 -> Event.Call { tid = a; routine = b }
    | 2 -> Event.Return { tid = a }
    | 3 -> Event.Read { tid = a; addr = b }
    | 4 -> Event.Write { tid = a; addr = b }
    | 5 -> Event.Block { tid = a; units = b }
    | 6 -> Event.User_to_kernel { tid = a; addr = b; len = c }
    | 7 -> Event.Kernel_to_user { tid = a; addr = b; len = c }
    | 8 -> Event.Acquire { tid = a; lock = b }
    | 9 -> Event.Release { tid = a; lock = b }
    | 10 -> Event.Alloc { tid = a; addr = b; len = c }
    | 11 -> Event.Free { tid = a; addr = b; len = c }
    | 12 -> Event.Thread_start { tid = a }
    | 13 -> Event.Thread_exit { tid = a }
    | _ -> Event.Switch_thread { tid = a })

let decode_exn s =
  match Codec.of_string s with
  | Ok (tr, names) -> (tr, names)
  | Error e -> Alcotest.failf "decode failed: %s" e

let event_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"decode (encode e) = e, every variant"
       ~count:2000 ~print:Event.to_string gen_event (fun ev ->
         let tr, _ = decode_exn (Codec.to_string (Vec.of_list [ ev ])) in
         Vec.length tr = 1 && Event.equal (Vec.get tr 0) ev))

let trace_equal name a b =
  Alcotest.(check (list string))
    name
    (List.map Event.to_line (Vec.to_list a))
    (List.map Event.to_line (Vec.to_list b))

let whole_trace_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"binary and text decode agree on whole traces"
       ~count:300 ~print:Gen_trace.print (Gen_trace.gen ()) (fun trace ->
         let from_binary, _ = decode_exn (Codec.to_string trace) in
         (* Same trace through the text format. *)
         let from_text =
           Stream.to_trace
             (Stream.of_list
                (List.map
                   (fun ev ->
                     match Event.of_line (Event.to_line ev) with
                     | Ok e -> e
                     | Error m -> Alcotest.failf "text decode: %s" m)
                   (Vec.to_list trace)))
         in
         trace_equal "binary round trip" from_binary trace;
         trace_equal "binary = text" from_binary from_text;
         true))

let names_round_trip () =
  let names = [| ""; "h\xc3\xa9llo \xe2\x86\x92 \xe4\xb8\x96\xe7\x95\x8c"; "plain name with spaces" |] in
  let trace =
    Vec.of_list
      [
        Event.Call { tid = 0; routine = 2 };
        Event.Return { tid = 0 };
        Event.Call { tid = 0; routine = 0 };
        Event.Call { tid = 0; routine = 1 };
        Event.Return { tid = 0 };
        Event.Return { tid = 0 };
        Event.Call { tid = 0; routine = 1 };
        Event.Return { tid = 0 };
      ]
  in
  let s = Codec.to_string ~routine_name:(fun id -> names.(id)) trace in
  let decoded, table = decode_exn s in
  trace_equal "events" decoded trace;
  (* One definition per routine, in first-use order, names byte-exact. *)
  Alcotest.(check (list (pair int string)))
    "embedded name table"
    [ (2, names.(2)); (0, names.(0)); (1, names.(1)) ]
    table

let channel_round_trip () =
  let trace =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) (Gen_trace.gen ())
  in
  let file = Filename.temp_file "aprof_test" ".atrc" in
  Out_channel.with_open_bin file (fun oc ->
      (* A tiny chunk forces many flushes. *)
      let sink = Codec.writer ~chunk_bytes:64 oc in
      Stream.iter sink.Stream.emit (Trace.to_stream trace);
      sink.Stream.close ());
  let decoded, names =
    In_channel.with_open_bin file (fun ic ->
        match Codec.detect ic with
        | `Text -> Alcotest.fail "binary file detected as text"
        | `Binary ->
          let names, stream = Codec.reader ~chunk_bytes:64 ic in
          let tr = Stream.to_trace stream in
          (tr, names))
  in
  Sys.remove file;
  trace_equal "channel round trip" decoded trace;
  (* Every routine referenced by a Call must have been defined. *)
  Vec.iter
    (function
      | Event.Call { routine; _ } ->
        if not (Hashtbl.mem names routine) then
          Alcotest.failf "routine %d has no definition record" routine
      | _ -> ())
    trace

let rejects_garbage () =
  let check_error name s =
    match Codec.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected decode error" name
    | Error _ -> ()
  in
  check_error "empty" "";
  check_error "bad magic" "NOPE\x01";
  check_error "bad version" "ATRC\x63";
  check_error "truncated header" "ATR";
  let valid = Codec.to_string (Vec.of_list [ Event.Read { tid = 1; addr = 2 } ]) in
  (* [valid] ends with the end-of-trace marker byte. *)
  let unterminated = String.sub valid 0 (String.length valid - 1) in
  check_error "truncated mid-record" (String.sub valid 0 (String.length valid - 2));
  check_error "truncated at a record boundary (marker missing)" unterminated;
  check_error "unknown tag" (unterminated ^ "\xff\x00");
  check_error "trailing data after marker" (valid ^ "x");
  (* Text files must not be mistaken for binary ones. *)
  let file = Filename.temp_file "aprof_test" ".trace" in
  Out_channel.with_open_bin file (fun oc -> output_string oc "C 0 1\nR 0\n");
  let fmt = In_channel.with_open_bin file Codec.detect in
  Sys.remove file;
  Alcotest.(check bool) "text detected" true (fmt = `Text)

let suite =
  [
    event_round_trip;
    whole_trace_round_trip;
    Alcotest.test_case "routine names round trip (empty, unicode)" `Quick
      names_round_trip;
    Alcotest.test_case "writer/reader channel round trip" `Quick
      channel_round_trip;
    Alcotest.test_case "malformed input is rejected" `Quick rejects_garbage;
  ]
