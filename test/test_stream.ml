(* The stream pipeline: combinator sanity, text-channel sources, and the
   load-bearing equivalence — streaming consumption (live VM callbacks,
   binary or text decode) must produce bit-identical profiles to
   materialized replay, on every registered workload. *)

open Helpers
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Interp = Aprof_vm.Interp

let ev_list = Alcotest.(list string)
let lines tr = List.map Event.to_line (Vec.to_list tr)

let combinators () =
  let events =
    [
      Event.Switch_thread { tid = 0 };
      Event.Call { tid = 0; routine = 1 };
      Event.Read { tid = 0; addr = 3 };
      Event.Write { tid = 0; addr = 4 };
      Event.Return { tid = 0 };
    ]
  in
  let tr = Vec.of_list events in
  Alcotest.check ev_list "of_trace/to_trace identity" (lines tr)
    (lines (Stream.to_trace (Trace.to_stream tr)));
  Alcotest.(check int) "length" 5 (Stream.length (Stream.of_list events));
  Alcotest.(check int) "take" 2 (Stream.length (Stream.take 2 (Stream.of_list events)));
  let reads =
    Stream.to_list
      (Stream.filter
         (function Event.Read _ -> true | _ -> false)
         (Stream.of_list events))
  in
  Alcotest.(check int) "filter" 1 (List.length reads);
  let bumped =
    Stream.to_list
      (Stream.map
         (function
           | Event.Read { tid; addr } -> Event.Read { tid; addr = addr + 1 }
           | ev -> ev)
         (Stream.of_list events))
  in
  (match List.nth bumped 2 with
  | Event.Read { addr; _ } -> Alcotest.(check int) "map" 4 addr
  | _ -> Alcotest.fail "map changed the shape");
  (* tee duplicates, connect counts and closes. *)
  let a = Vec.create () and b = Vec.create () in
  let closed = ref 0 in
  let counting base =
    { base with Stream.close = (fun () -> incr closed) }
  in
  let n =
    Stream.connect (Stream.of_list events)
      (Stream.tee (counting (Stream.sink_to_trace a)) (counting (Stream.sink_to_trace b)))
  in
  Alcotest.(check int) "connect count" 5 n;
  Alcotest.(check int) "both closed" 2 !closed;
  Alcotest.check ev_list "tee left" (lines tr) (lines a);
  Alcotest.check ev_list "tee right" (lines tr) (lines b)

let text_channel_source () =
  let tr =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 11 |]) (Gen_trace.gen ())
  in
  let file = Filename.temp_file "aprof_test" ".trace" in
  Out_channel.with_open_bin file (fun oc ->
      Stream.connect (Trace.to_stream tr) (Stream.text_sink oc) |> ignore);
  let decoded =
    In_channel.with_open_bin file (fun ic ->
        Stream.to_trace (Stream.of_text_channel ic))
  in
  Sys.remove file;
  Alcotest.check ev_list "text channel round trip" (lines tr) (lines decoded);
  Out_channel.with_open_bin file (fun oc -> output_string oc "C 1\nnot an event\n");
  let raises =
    In_channel.with_open_bin file (fun ic ->
        match Stream.to_trace (Stream.of_text_channel ic) with
        | _ -> false
        | exception Stream.Decode_error _ -> true)
  in
  Sys.remove file;
  Alcotest.(check bool) "malformed line raises Decode_error" true raises

(* [connect]/[connect_batches] guarantee the sink is closed exactly once
   even when the source raises mid-stream — a binary writer's end marker
   must be flushed before the exception propagates. *)
let connect_closes_on_raise () =
  let exception Boom in
  let raising_source () =
    let n = ref 0 in
    fun () ->
      incr n;
      if !n > 2 then raise Boom else Some (Event.Switch_thread { tid = 0 })
  in
  let closed = ref 0 in
  let sink =
    { Stream.emit = ignore; close = (fun () -> incr closed) }
  in
  (match Stream.connect (raising_source ()) sink with
  | _ -> Alcotest.fail "expected the source's exception to propagate"
  | exception Boom -> ());
  Alcotest.(check int) "event sink closed exactly once" 1 !closed;
  let raising_batches () =
    let n = ref 0 in
    let b = Event.Batch.create ~capacity:1 () in
    Event.Batch.push b (Event.Switch_thread { tid = 0 });
    fun () ->
      incr n;
      if !n > 2 then raise Boom else Some b
  in
  let closed_b = ref 0 in
  let bsink =
    {
      Stream.emit_batch = (fun (_ : Event.Batch.t) -> ());
      close_batch = (fun () -> incr closed_b);
    }
  in
  (match Stream.connect_batches (raising_batches ()) bsink with
  | _ -> Alcotest.fail "expected the source's exception to propagate"
  | exception Boom -> ());
  Alcotest.(check int) "batch sink closed exactly once" 1 !closed_b

(* --- streaming = materialized, on every registered workload ----------- *)

let small_scale spec =
  match spec.Workload.name with "vips" -> 30 | "dedup" -> 60 | _ -> 80

let scheduler =
  Aprof_vm.Scheduler.Random_preemptive { min_slice = 4; max_slice = 48 }

let streaming_equals_materialized spec () =
  let threads = 3 and scale = small_scale spec and seed = 13 in
  (* Materialized: record the trace, then replay it into the profiler. *)
  let result = Workload.run_spec ~scheduler spec ~threads ~scale ~seed in
  let p_mat = run_drms result.Interp.trace in
  (* Live: profile while the VM executes, no trace anywhere. *)
  let live = Aprof_core.Drms_profiler.create () in
  let live_result =
    Workload.run_spec_instrumented ~scheduler spec ~threads ~scale ~seed
      ~tool:(fun _routines -> Aprof_core.Drms_profiler.on_event live)
  in
  Alcotest.(check int)
    "same event count" (Vec.length result.Interp.trace)
    live_result.Interp.events_emitted;
  Alcotest.(check int)
    "streamed run materializes nothing" 0
    (Vec.length live_result.Interp.trace);
  check_profiles_equal "live streaming = materialized" p_mat
    (Aprof_core.Drms_profiler.finish live);
  (* Through the binary codec: encode, stream-decode, profile. *)
  let routine_name =
    Aprof_trace.Routine_table.name result.Interp.routines
  in
  let encoded = Codec.to_string ~routine_name result.Interp.trace in
  match Codec.of_string encoded with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok (decoded, _) ->
    let p_decoded = run_drms decoded in
    check_profiles_equal "binary round trip preserves profile" p_mat p_decoded

let suite =
  Alcotest.test_case "stream combinators" `Quick combinators
  :: Alcotest.test_case "text channel source" `Quick text_channel_source
  :: Alcotest.test_case "connect closes sink on raise" `Quick
       connect_closes_on_raise
  :: List.map
       (fun spec ->
         Alcotest.test_case
           (spec.Workload.name ^ ": streaming = materialized")
           `Slow
           (streaming_equals_materialized spec))
       Registry.all
