(* Profile serialization: save/load must reproduce the profile exactly
   (points, aggregates, op counters, routine names). *)

open Helpers
module Profile = Aprof_core.Profile
module Profile_io = Aprof_core.Profile_io

let roundtrip profile =
  match Profile_io.of_string (Profile_io.to_string profile) with
  | Ok (p, _) -> p
  | Error e -> Alcotest.failf "load failed: %s" e

let test_roundtrip_workload () =
  let result =
    run_workload (Aprof_workloads.Mysql_sim.mysqlslap ~clients:3 ~queries:4
                    ~rows:80 ~seed:2)
  in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let back = roundtrip profile in
  check_profiles_equal "points survive roundtrip" profile back;
  check_ops_equal "ops survive roundtrip" profile back;
  (* aggregates too *)
  List.iter
    (fun k ->
      let a = Option.get (Profile.data profile k) in
      let b = Option.get (Profile.data back k) in
      Alcotest.(check int) "activations" a.Profile.activations b.Profile.activations;
      Alcotest.(check (float 1e-9)) "sum_rms" a.Profile.sum_rms b.Profile.sum_rms;
      Alcotest.(check (float 1e-9)) "sum_drms" a.Profile.sum_drms b.Profile.sum_drms;
      Alcotest.(check (float 1e-9)) "total_cost" a.Profile.total_cost b.Profile.total_cost)
    (Profile.keys profile)

let test_routine_names () =
  let result = run_workload (Aprof_workloads.Patterns.producer_consumer ~n:5) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let dump =
    Profile_io.to_string ~routine_name:(Aprof_trace.Routine_table.name tbl)
      profile
  in
  match Profile_io.of_string dump with
  | Ok (_, names) ->
    let consumer = routine_id tbl "consumer" in
    Alcotest.(check (option string)) "name preserved" (Some "consumer")
      (List.assoc_opt consumer names)
  | Error e -> Alcotest.failf "load failed: %s" e

let test_metrics_survive () =
  let result = run_workload (Aprof_workloads.Patterns.stream_reader ~n:20) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let back = roundtrip profile in
  Alcotest.(check (float 1e-9)) "input volume preserved"
    (Aprof_core.Metrics.dynamic_input_volume profile)
    (Aprof_core.Metrics.dynamic_input_volume back)

let test_format_versions () =
  let result = run_workload (Aprof_workloads.Patterns.producer_consumer ~n:5) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let dump = Profile_io.to_string profile in
  let header = Printf.sprintf "format,%d\n" Profile_io.format_version in
  Alcotest.(check bool) "dump leads with the version header" true
    (String.length dump >= String.length header
    && String.sub dump 0 (String.length header) = header);
  (* The pre-versioning format had no header at all: such dumps must
     keep loading (as version 1). *)
  let headerless =
    String.sub dump (String.length header)
      (String.length dump - String.length header)
  in
  (match Profile_io.of_string headerless with
  | Ok (p, _) -> check_profiles_equal "headerless (v1) dump loads" profile p
  | Error e -> Alcotest.failf "headerless dump rejected: %s" e);
  (* An explicit version 1 header is accepted too. *)
  (match Profile_io.of_string ("format,1\n" ^ headerless) with
  | Ok (p, _) -> check_profiles_equal "explicit v1 header loads" profile p
  | Error e -> Alcotest.failf "v1 header rejected: %s" e);
  (* Versions we do not know how to read are refused, not misread. *)
  match Profile_io.of_string ("format,99\n" ^ headerless) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future format version accepted"

let test_meta_roundtrip () =
  let result = run_workload (Aprof_workloads.Patterns.producer_consumer ~n:5) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let meta =
    {
      Aprof_analysis.Run_meta.workload = "producer_consumer";
      seed = 7;
      scale = 5;
      threads = 2;
      scheduler = "round-robin(64)";
    }
  in
  let dump = Profile_io.to_string ~meta profile in
  (match Profile_io.of_string_meta dump with
  | Ok (p, _, Some m) ->
    check_profiles_equal "profile survives with meta" profile p;
    Alcotest.(check string) "workload" "producer_consumer"
      m.Aprof_analysis.Run_meta.workload;
    Alcotest.(check int) "seed" 7 m.Aprof_analysis.Run_meta.seed;
    Alcotest.(check int) "scale" 5 m.Aprof_analysis.Run_meta.scale;
    Alcotest.(check int) "threads" 2 m.Aprof_analysis.Run_meta.threads;
    Alcotest.(check string) "scheduler" "round-robin(64)"
      m.Aprof_analysis.Run_meta.scheduler
  | Ok (_, _, None) -> Alcotest.fail "meta line lost"
  | Error e -> Alcotest.failf "load failed: %s" e);
  (* A dump without the meta line loads with [None], and the plain
     loader ignores the meta line entirely. *)
  (match Profile_io.of_string_meta (Profile_io.to_string profile) with
  | Ok (_, _, None) -> ()
  | Ok (_, _, Some _) -> Alcotest.fail "phantom meta"
  | Error e -> Alcotest.failf "load failed: %s" e);
  (match Profile_io.of_string dump with
  | Ok (p, _) -> check_profiles_equal "plain loader skips meta" profile p
  | Error e -> Alcotest.failf "plain load failed: %s" e);
  (* A malformed meta line is an error, not a silent None. *)
  match Profile_io.of_string_meta "format,3\nmeta,w,notanint,1,1,s\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad meta accepted"

let test_malformed () =
  List.iter
    (fun s ->
      match Profile_io.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure on %S" s)
    [ "bogus,1,2"; "point,1,2,xxx,1,1,1,1,1,1"; "agg,a,b,c,d,e,f" ]

let suite =
  [
    Alcotest.test_case "roundtrip equals original" `Quick test_roundtrip_workload;
    Alcotest.test_case "routine names" `Quick test_routine_names;
    Alcotest.test_case "metrics survive" `Quick test_metrics_survive;
    Alcotest.test_case "format versions" `Quick test_format_versions;
    Alcotest.test_case "run metadata roundtrip" `Quick test_meta_roundtrip;
    Alcotest.test_case "malformed input rejected" `Quick test_malformed;
  ]
