lib/plot/ascii_plot.mli: Format
