lib/plot/ascii_plot.ml: Array Buffer Float Format List Printf String
