(** Terminal scatter/line plots and CSV output for the experiment
    drivers: the worst-case cost plots (Figures 4-6, 10) and the tail
    curves (Figures 11-14) render as fixed-size character grids. *)

type t

(** [create ~title ~x_label ~y_label ()] — an empty plot.
    [width]/[height] are the grid size in characters (defaults 64x20). *)
val create :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  unit ->
  t

(** [add_series t ~name ~marker points] — a scatter series drawn with
    [marker]. *)
val add_series : t -> name:string -> marker:char -> (float * float) list -> unit

(** [render t] draws all series on one grid with axis ranges covering
    every point. *)
val render : Format.formatter -> t -> unit

(** [render_string t] is [render] into a string. *)
val render_string : t -> string

(** [csv ~header rows] formats comma-separated data (floats printed with
    [%g]). *)
val csv : header:string list -> float list list -> string

(** [histogram ~title ~rows] renders labelled horizontal stacked bars;
    each row is (label, segments) with segments (name, value) shown
    proportionally on a 50-char bar. *)
val histogram :
  title:string -> rows:(string * (string * float) list) list -> string
