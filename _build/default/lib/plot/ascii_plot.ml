type series = { name : string; marker : char; points : (float * float) list }

type t = {
  width : int;
  height : int;
  title : string;
  x_label : string;
  y_label : string;
  mutable series : series list;
}

let create ?(width = 64) ?(height = 20) ~title ~x_label ~y_label () =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.create: grid too small";
  { width; height; title; x_label; y_label; series = [] }

let add_series t ~name ~marker points =
  t.series <- t.series @ [ { name; marker; points } ]

let bounds t =
  let all = List.concat_map (fun s -> s.points) t.series in
  match all with
  | [] -> (0., 1., 0., 1.)
  | (x0, y0) :: rest ->
    List.fold_left
      (fun (xmin, xmax, ymin, ymax) (x, y) ->
        (Float.min xmin x, Float.max xmax x, Float.min ymin y, Float.max ymax y))
      (x0, x0, y0, y0) rest

let render ppf t =
  let xmin, xmax, ymin, ymax = bounds t in
  let xspan = if xmax -. xmin < 1e-12 then 1. else xmax -. xmin in
  let yspan = if ymax -. ymin < 1e-12 then 1. else ymax -. ymin in
  let grid = Array.make_matrix t.height t.width ' ' in
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float ((x -. xmin) /. xspan *. float_of_int (t.width - 1))
          in
          let cy =
            int_of_float ((y -. ymin) /. yspan *. float_of_int (t.height - 1))
          in
          let cx = max 0 (min (t.width - 1) cx) in
          let cy = max 0 (min (t.height - 1) cy) in
          grid.(t.height - 1 - cy).(cx) <- s.marker)
        s.points)
    t.series;
  Format.fprintf ppf "%s@." t.title;
  let legend =
    String.concat "  "
      (List.map (fun s -> Printf.sprintf "%c=%s" s.marker s.name) t.series)
  in
  if legend <> "" then Format.fprintf ppf "[%s]@." legend;
  Format.fprintf ppf "%9.3g +%s@." ymax (String.make t.width '-');
  Array.iteri
    (fun i row ->
      if i = 0 then () (* top border printed above *)
      else Format.fprintf ppf "%9s |%s@." "" (String.init t.width (fun j -> row.(j))))
    grid;
  Format.fprintf ppf "%9.3g +%s@." ymin (String.make t.width '-');
  Format.fprintf ppf "%9s  %.3g%s%.3g@." "" xmin
    (String.make (max 1 (t.width - 12)) ' ')
    xmax;
  Format.fprintf ppf "%9s  x: %s, y: %s@." "" t.x_label t.y_label

let render_string t = Format.asprintf "%a" render t

let csv ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let histogram ~title ~rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let bar_width = 50 in
  let markers = [| '#'; '.'; '~'; '+' |] in
  List.iter
    (fun (label, segments) ->
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. segments in
      let bar = Buffer.create bar_width in
      List.iteri
        (fun i (_, v) ->
          let cells =
            if total <= 0. then 0
            else int_of_float (v /. total *. float_of_int bar_width +. 0.5)
          in
          Buffer.add_string bar
            (String.make (min cells (bar_width - Buffer.length bar))
               markers.(i mod Array.length markers)))
        segments;
      let seg_text =
        String.concat " "
          (List.mapi
             (fun i (name, v) ->
               Printf.sprintf "%c %s=%.1f" markers.(i mod Array.length markers) name v)
             segments)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-16s |%-*s| %s\n" label bar_width (Buffer.contents bar)
           seg_text))
    rows;
  Buffer.contents buf
