(** Small statistics helpers used by the metrics and benchmark harness. *)

(** [mean xs] is the arithmetic mean. @raise Invalid_argument on []. *)
val mean : float list -> float

(** [geometric_mean xs] is the geometric mean of strictly positive values
    (the aggregation used by Table 1 of the paper).
    @raise Invalid_argument on [] or non-positive inputs. *)
val geometric_mean : float list -> float

(** [variance xs] is the population variance. @raise Invalid_argument on []. *)
val variance : float list -> float

val stddev : float list -> float

(** [percentile p xs] is the [p]-th percentile ([0. <= p <= 100.]) computed
    with linear interpolation on the sorted sample.
    @raise Invalid_argument on []. *)
val percentile : float -> float list -> float

(** [tail_fraction ~at_least xs] is the fraction of samples [>= at_least],
    in [0,1].  Used for the "x% of routines have metric >= y" curves
    (Figures 11, 12 and 14). *)
val tail_fraction : at_least:float -> float list -> float

(** [value_at_top_fraction ~fraction xs] is the largest [y] such that at
    least [fraction] of the samples are [>= y]; i.e. the y-coordinate at
    abscissa [fraction] in the paper's tail curves.
    @raise Invalid_argument on [] or a fraction outside (0,1]. *)
val value_at_top_fraction : fraction:float -> float list -> float

(** Streaming min/max/sum/count accumulator. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float
end
