lib/util/rng.mli:
