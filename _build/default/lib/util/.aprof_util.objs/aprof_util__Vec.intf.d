lib/util/vec.mli:
