lib/util/stats.mli:
