lib/util/rng.ml: Array Float Random
