(** Deterministic pseudo-random streams.

    Every randomized component of the simulator (schedulers, device data,
    workload generators, noise models) draws from an explicit [Rng.t] so
    that a run is a pure function of its seed — a requirement for the
    differential tests and for reproducible experiment rows. *)

type t

(** [create seed] is a fresh generator determined only by [seed]. *)
val create : int -> t

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

val float : t -> float -> float

(** [choose t arr] picks a uniform element. @raise Invalid_argument on [||]. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [gaussian t ~mu ~sigma] samples a normal variate (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float
