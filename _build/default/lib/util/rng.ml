type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x85ebca6b |]

let split t =
  let seed = Random.State.bits t in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Random.State.int t bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Random.State.bool t

let chance t p = Random.State.float t 1.0 < p

let float t bound = Random.State.float t bound

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let gaussian t ~mu ~sigma =
  let u1 = max (Random.State.float t 1.0) 1e-12 in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
