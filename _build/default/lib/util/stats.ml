let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | _ :: _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive value"
        else acc +. log x)
      0. xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
  sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let tail_fraction ~at_least xs =
  match xs with
  | [] -> 0.
  | _ :: _ ->
    let n = List.length xs in
    let k = List.length (List.filter (fun x -> x >= at_least) xs) in
    float_of_int k /. float_of_int n

let value_at_top_fraction ~fraction xs =
  check_nonempty "Stats.value_at_top_fraction" xs;
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Stats.value_at_top_fraction: fraction out of (0,1]";
  let a = Array.of_list xs in
  (* Sort in decreasing order: the value at abscissa [fraction] is the
     smallest of the top ceil(fraction * n) samples. *)
  Array.sort (fun x y -> compare y x) a;
  let n = Array.length a in
  let k = int_of_float (ceil (fraction *. float_of_int n)) in
  let k = min (max k 1) n in
  a.(k - 1)

module Acc = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () = { count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let sum t = t.sum

  let mean t =
    if t.count = 0 then invalid_arg "Stats.Acc.mean: empty"
    else t.sum /. float_of_int t.count

  let min t =
    if t.count = 0 then invalid_arg "Stats.Acc.min: empty" else t.min_v

  let max t =
    if t.count = 0 then invalid_arg "Stats.Acc.max: empty" else t.max_v
end
