type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  v.data.(v.len - 1)

let truncate v n = if n < v.len then v.len <- max n 0

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let map f v =
  if v.len = 0 then create ()
  else begin
    let data = Array.make v.len (f v.data.(0)) in
    for i = 0 to v.len - 1 do
      data.(i) <- f v.data.(i)
    done;
    { data; len = v.len }
  end

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
