open Aprof_vm.Program
module Device = Aprof_vm.Device
module Sync = Aprof_vm.Sync
module Rng = Aprof_util.Rng

(* Parameter file loaded once at startup: the small external-input
   component every kernel shares. *)
let params_device ~seed n =
  let rng = Rng.create seed in
  Device.file (Array.init n (fun _ -> 1 + Rng.int rng 9))

let load_params n =
  call "load_params"
    (let* fd = sys_open "params" in
     let* buf = alloc n in
     let* _ = sys_read fd buf n in
     let* s = Blocks.read_sum buf n in
     return (1 + (s mod 7)))

(* ------------------------------------------------------------------ *)
(* nab: molecular dynamics where every atom's force term samples
   positions across the whole array (written by all workers). *)

let nab ~workers ~atoms ~steps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "nab_main"
      (let* _scale = load_params 8 in
       let* pos = alloc atoms in
       let* force = alloc atoms in
       let* () = Blocks.write_fill pos atoms (fun i -> i * 11) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "nab_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:atoms in
              for_ 1 steps (fun s ->
                  let* () =
                    call "compute_energy"
                      (for_ lo (hi - 1) (fun i ->
                           let* xi = read (pos + i) in
                           (* sample a few distant interaction partners *)
                           let* f =
                             fold_range 1 3 0 (fun k acc ->
                                 let j = (i + (k * s * 31)) mod atoms in
                                 let* xj = read (pos + j) in
                                 let* () = compute 2 in
                                 return (acc + abs (xi - xj)))
                           in
                           write (force + i) f))
                  in
                  let* () = Blocks.Spin_barrier.wait bar in
                  let* () =
                    call "integrate"
                      (for_ lo (hi - 1) (fun i ->
                           let* xi = read (pos + i) in
                           let* fi = read (force + i) in
                           let* () = compute 1 in
                           write (pos + i) ((xi + (fi mod 17)) land 0xffff)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:1 8) ] }

(* md: neighbour-list variant — forces read only adjacent atoms. *)
let md ~workers ~atoms ~steps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "md_main"
      (let* _scale = load_params 6 in
       let* pos = alloc atoms in
       let* vel = alloc atoms in
       let* () = Blocks.write_fill pos atoms (fun i -> i * 5) in
       let* () = Blocks.write_fill vel atoms (fun _ -> 0) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "md_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:atoms in
              for_ 1 steps (fun _ ->
                  let* () =
                    call "md_forces"
                      (for_ lo (hi - 1) (fun i ->
                           let* xi = read (pos + i) in
                           let* xl = if i > 0 then read (pos + i - 1) else return 0 in
                           let* xr =
                             if i < atoms - 1 then read (pos + i + 1) else return 0
                           in
                           let* vi = read (vel + i) in
                           let* () = compute 3 in
                           write (vel + i) ((vi + xl + xr - (2 * xi)) mod 1000)))
                  in
                  let* () = Blocks.Spin_barrier.wait bar in
                  let* () =
                    call "md_update"
                      (for_ lo (hi - 1) (fun i ->
                           let* xi = read (pos + i) in
                           let* vi = read (vel + i) in
                           write (pos + i) ((xi + vi) land 0xffff)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:2 6) ] }

(* ------------------------------------------------------------------ *)
(* smithwa: wavefront DP.  The score matrix is processed in blocks; a
   block needs its left and top border cells, produced by other
   workers' blocks in earlier waves. *)

let smithwa ~workers ~seq_len ~seed =
  let workers = max 1 workers in
  let block = 8 in
  let nb = (seq_len + block - 1) / block in
  let rng = Rng.create seed in
  let seq_a = Array.init seq_len (fun _ -> Rng.int rng 4) in
  let seq_b = Array.init seq_len (fun _ -> Rng.int rng 4) in
  let main =
    call "smithwa_main"
      (let* _scale = load_params 4 in
       let* a = alloc seq_len in
       let* b = alloc seq_len in
       let* () = Blocks.write_fill a seq_len (fun i -> seq_a.(i)) in
       let* () = Blocks.write_fill b seq_len (fun i -> seq_b.(i)) in
       (* score matrix: one row of border cells per block row suffices
          for the recurrence shape: keep a full (nb*block)^... use one
          row vector + one column vector of carried borders. *)
       let* row_border = alloc seq_len in
       let* col_border = alloc seq_len in
       let* () = Blocks.write_fill row_border seq_len (fun _ -> 0) in
       let* () = Blocks.write_fill col_border seq_len (fun _ -> 0) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "smithwa_worker"
             (* waves of anti-diagonals: in wave d, blocks (i, d-i). *)
             (for_ 0 (2 * (nb - 1)) (fun d ->
                  let* () =
                    call "align_block"
                      (fold_range 0 (nb - 1) () (fun bi () ->
                           let bj = d - bi in
                           if bj < 0 || bj >= nb || bi mod workers <> w then
                             return ()
                           else begin
                             let ilo = bi * block and jlo = bj * block in
                             let ihi = min (ilo + block) seq_len in
                             let jhi = min (jlo + block) seq_len in
                             for_ ilo (ihi - 1) (fun i ->
                                 let* ai = read (a + i) in
                                 let* carry = read (row_border + i) in
                                 let* best =
                                   fold_range jlo (jhi - 1) carry (fun j acc ->
                                       let* bj_ = read (b + j) in
                                       let* top = read (col_border + j) in
                                       let* () = compute 2 in
                                       let score =
                                         if ai = bj_ then acc + 2
                                         else max (max (acc - 1) (top - 1)) 0
                                       in
                                       let* () = write (col_border + j) score in
                                       return score)
                                 in
                                 write (row_border + i) best)
                           end))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:3 4) ] }

(* ------------------------------------------------------------------ *)
(* kdtree: the main thread builds a binary space partition over shared
   points (writing node records); workers then run range queries that
   traverse nodes and points. *)

let kdtree ~workers ~points ~queries ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "kdtree_main"
      (let* _scale = load_params 4 in
       let* pts = alloc points in
       let* () = Blocks.write_fill pts points (fun i -> (i * 2654435761) land 0xfff) in
       (* implicit heap layout: node k splits on stored pivot *)
       let n_nodes = max 1 (points / 4) in
       let* nodes = alloc n_nodes in
       let* () =
         call "build_tree"
           (for_ 0 (n_nodes - 1) (fun k ->
                let* p = read (pts + (k * 4 mod points)) in
                let* q = read (pts + ((k * 4) + 2) mod points) in
                let* () = compute 2 in
                write (nodes + k) ((p + q) / 2)))
       in
       Blocks.run_workers workers (fun w ->
           call "query_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:queries in
              for_ lo (hi - 1) (fun q ->
                  call "range_query"
                    (let key = (q * 73) land 0xfff in
                     let rec descend k acc depth =
                       if k >= n_nodes || depth > 10 then return acc
                       else
                         let* pivot = read (nodes + k) in
                         let* () = compute 1 in
                         let child = (2 * k) + (if key < pivot then 1 else 2) in
                         descend child (acc + 1) (depth + 1)
                     in
                     let* visited = descend 0 0 0 in
                     let* () = compute visited in
                     let* _ = read (pts + (key mod points)) in
                     return ())))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:4 4) ] }

(* ------------------------------------------------------------------ *)
(* botsalgn: a task pool of pairwise alignments distributed through a
   channel; sequences are shared, written by the main thread. *)

let botsalgn ~workers ~sequences ~seed:_ =
  let workers = max 1 workers in
  let seq_cells = 12 in
  let main =
    call "botsalgn_main"
      (let* _scale = load_params 4 in
       let total = sequences * seq_cells in
       let* seqs = alloc total in
       let* () = Blocks.write_fill seqs total (fun i -> (i * 7) land 3) in
       let* tasks = Sync.Channel.create 8 in
       let* results = alloc (sequences * sequences) in
       let* tids =
         Blocks.spawn_all
           (List.init workers (fun _ ->
                call "align_worker"
                  (let rec serve () =
                     let* t = Sync.Channel.recv tasks in
                     if t < 0 then return ()
                     else begin
                       let i = t / sequences and j = t mod sequences in
                       let* () =
                         call "pairwise_align"
                           (let* si = Blocks.read_sum (seqs + (i * seq_cells)) seq_cells in
                            let* sj = Blocks.read_sum (seqs + (j * seq_cells)) seq_cells in
                            let* () = compute seq_cells in
                            write (results + t) (abs (si - sj)))
                       in
                       serve ()
                     end
                   in
                   serve ())))
       in
       let* () =
         for_ 0 (sequences - 1) (fun i ->
             for_ (i + 1) (sequences - 1) (fun j ->
                 Sync.Channel.send tasks ((i * sequences) + j)))
       in
       let* () = for_ 1 workers (fun _ -> Sync.Channel.send tasks (-1)) in
       Blocks.join_all tids)
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:5 4) ] }

(* ------------------------------------------------------------------ *)
(* imagick: 2-D convolution sweeps with halo rows exchanged between
   neighbouring workers' bands. *)

let imagick ~workers ~rows ~cols ~sweeps ~seed =
  let workers = max 1 workers in
  let rng = Rng.create seed in
  let img = Array.init (rows * cols) (fun _ -> Rng.int rng 256) in
  let main =
    call "imagick_main"
      (let* _scale = load_params 4 in
       let* fd = sys_open "input.miff" in
       let* pix_a = alloc (rows * cols) in
       let* pix_b = alloc (rows * cols) in
       let* _ = sys_read fd pix_a (rows * cols) in
       let* () = Blocks.write_fill pix_b (rows * cols) (fun _ -> 0) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "magick_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:rows in
              for_ 1 sweeps (fun sw ->
                  let src = if sw land 1 = 1 then pix_a else pix_b in
                  let dst = if sw land 1 = 1 then pix_b else pix_a in
                  let* () =
                    call "convolve_rows"
                      (for_ lo (hi - 1) (fun r ->
                           for_ 0 (cols - 1) (fun c ->
                               let at base rr cc = base + (rr * cols) + cc in
                               let* v = read (at src r c) in
                               let* up = if r > 0 then read (at src (r - 1) c) else return v in
                               let* dn =
                                 if r < rows - 1 then read (at src (r + 1) c) else return v
                               in
                               let* () = compute 2 in
                               write (at dst r c) ((up + (2 * v) + dn) / 4))))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("input.miff", Device.file img); ("params", params_device ~seed:6 4) ] }

(* ------------------------------------------------------------------ *)
(* swim: 1-D shallow-water stencil over three coupled fields. *)

let swim ~workers ~cells ~steps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "swim_main"
      (let* _scale = load_params 4 in
       let* u = alloc cells in
       let* v = alloc cells in
       let* p = alloc cells in
       let* () = Blocks.write_fill u cells (fun i -> i land 0xff) in
       let* () = Blocks.write_fill v cells (fun i -> (i * 3) land 0xff) in
       let* () = Blocks.write_fill p cells (fun _ -> 100) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "swim_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:cells in
              for_ 1 steps (fun _ ->
                  let* () =
                    call "calc_uvp"
                      (for_ lo (hi - 1) (fun i ->
                           let left = if i = 0 then cells - 1 else i - 1 in
                           let right = (i + 1) mod cells in
                           let* ui = read (u + i) in
                           let* vl = read (v + left) in
                           let* vr = read (v + right) in
                           let* pi = read (p + i) in
                           let* () = compute 3 in
                           let* () = write (u + i) ((ui + vl - vr) land 0xffff) in
                           write (p + i) ((pi + (ui mod 5)) land 0xffff)))
                  in
                  let* () = Blocks.Spin_barrier.wait bar in
                  let* () =
                    call "calc_v"
                      (for_ lo (hi - 1) (fun i ->
                           let* ui = read (u + ((i + 1) mod cells)) in
                           let* vi = read (v + i) in
                           let* () = compute 1 in
                           write (v + i) ((vi + ui) land 0xffff)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:7 4) ] }

(* mgrid: red-black relaxation — alternating halves of the array, so
   every read of the other colour was written by some other sweep
   (possibly another thread's band). *)
let mgrid ~workers ~cells ~sweeps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "mgrid_main"
      (let* _scale = load_params 4 in
       let* grid = alloc cells in
       let* () = Blocks.write_fill grid cells (fun i -> (i * 29) land 0xff) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "mgrid_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:cells in
              for_ 1 sweeps (fun s ->
                  let colour = s land 1 in
                  let* () =
                    call "relax"
                      (for_ lo (hi - 1) (fun i ->
                           if i land 1 <> colour || i = 0 || i = cells - 1 then
                             return ()
                           else
                             let* l = read (grid + i - 1) in
                             let* r = read (grid + i + 1) in
                             let* () = compute 2 in
                             write (grid + i) ((l + r) / 2)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:8 4) ] }

(* ------------------------------------------------------------------ *)

let specs =
  [
    {
      Workload.name = "nab";
      suite = Workload.Omp;
      description = "molecular dynamics with long-range interactions";
      make =
        (fun ~threads ~scale ~seed -> nab ~workers:threads ~atoms:scale ~steps:6 ~seed);
    };
    {
      Workload.name = "md";
      suite = Workload.Omp;
      description = "neighbour-list molecular dynamics";
      make =
        (fun ~threads ~scale ~seed -> md ~workers:threads ~atoms:scale ~steps:6 ~seed);
    };
    {
      Workload.name = "smithwa";
      suite = Workload.Omp;
      description = "Smith-Waterman wavefront alignment";
      make =
        (fun ~threads ~scale ~seed ->
          smithwa ~workers:threads ~seq_len:(max 16 (scale / 4)) ~seed);
    };
    {
      Workload.name = "kdtree";
      suite = Workload.Omp;
      description = "space-partitioning tree build and queries";
      make =
        (fun ~threads ~scale ~seed ->
          kdtree ~workers:threads ~points:scale ~queries:(max 8 (scale / 4)) ~seed);
    };
    {
      Workload.name = "botsalgn";
      suite = Workload.Omp;
      description = "task-pool pairwise sequence alignment";
      make =
        (fun ~threads ~scale ~seed ->
          botsalgn ~workers:threads ~sequences:(max 4 (scale / 25)) ~seed);
    };
    {
      Workload.name = "imagick";
      suite = Workload.Omp;
      description = "image convolution with halo exchange";
      make =
        (fun ~threads ~scale ~seed ->
          imagick ~workers:threads ~rows:(max 8 (scale / 16)) ~cols:16 ~sweeps:18
            ~seed);
    };
    {
      Workload.name = "swim";
      suite = Workload.Omp;
      description = "shallow-water stencil over coupled fields";
      make =
        (fun ~threads ~scale ~seed -> swim ~workers:threads ~cells:scale ~steps:6 ~seed);
    };
    {
      Workload.name = "mgrid";
      suite = Workload.Omp;
      description = "red-black relaxation sweeps";
      make =
        (fun ~threads ~scale ~seed -> mgrid ~workers:threads ~cells:scale ~sweeps:8 ~seed);
    };
  ]
