module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

let build events =
  let trace = Vec.create () in
  let current = ref (-1) in
  List.iter
    (fun ev ->
      let tid = Event.tid ev in
      if tid <> !current then begin
        Vec.push trace (Event.Switch_thread { tid });
        current := tid
      end;
      Vec.push trace ev)
    events;
  trace

let table names =
  let tbl = Aprof_trace.Routine_table.create () in
  List.iter (fun n -> ignore (Aprof_trace.Routine_table.intern tbl n)) names;
  tbl

let x = 0x1000

let fig1a () =
  let tbl = table [ "f"; "g" ] in
  let f = 0 and g = 1 in
  let events =
    [
      Event.Call { tid = 0; routine = f };
      Event.Read { tid = 0; addr = x };
      Event.Call { tid = 1; routine = g };
      Event.Write { tid = 1; addr = x };
      Event.Return { tid = 1 };
      Event.Read { tid = 0; addr = x };
      Event.Return { tid = 0 };
    ]
  in
  (build events, tbl)

let fig1b () =
  let tbl = table [ "f"; "g"; "h" ] in
  let f = 0 and g = 1 and h = 2 in
  let events =
    [
      Event.Call { tid = 0; routine = f };
      Event.Read { tid = 0; addr = x };
      Event.Call { tid = 1; routine = g };
      Event.Write { tid = 1; addr = x };
      Event.Return { tid = 1 };
      Event.Call { tid = 0; routine = h };
      Event.Read { tid = 0; addr = x };
      Event.Return { tid = 0 };
      Event.Read { tid = 0; addr = x };
      Event.Return { tid = 0 };
    ]
  in
  (build events, tbl)

let ancestor_decrement () =
  let tbl = table [ "parent"; "child" ] in
  let parent = 0 and child = 1 in
  let events =
    [
      Event.Call { tid = 0; routine = parent };
      Event.Read { tid = 0; addr = x };
      (* parent first-reads x *)
      Event.Call { tid = 0; routine = child };
      Event.Read { tid = 0; addr = x };
      (* first access *within* child, but already input of parent: child's
         rms/drms gain 1 and the parent's partial value drops by 1 so the
         suffix-sum invariant keeps parent's total at 1 *)
      Event.Return { tid = 0 };
      Event.Return { tid = 0 };
    ]
  in
  (build events, tbl)

let external_refill ~n =
  let tbl = table [ "main"; "consume" ] in
  let main = 0 and consume = 1 in
  let buf = x in
  let body =
    List.concat_map
      (fun _ ->
        [
          Event.Kernel_to_user { tid = 0; addr = buf; len = 1 };
          Event.Call { tid = 0; routine = consume };
          Event.Read { tid = 0; addr = buf };
          Event.Return { tid = 0 };
        ])
      (List.init n (fun i -> i))
  in
  let events =
    (Event.Call { tid = 0; routine = main } :: body)
    @ [ Event.Return { tid = 0 } ]
  in
  (build events, tbl)
